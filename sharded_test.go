package prefillonly

// Root-level serial-vs-sharded oracles through the public facade: the
// SimulationConfig.Shards knob must never change results — only the wall
// clock. These complement internal/sim's kernel-level oracle and
// internal/experiments' sweep-level ones by covering the facade's own
// wiring: routed clusters, PP engine pairs, the elastic pool's mid-run
// instance creation, and tracing.

import "testing"

// recordKey is the part of a completion record the oracles compare.
type recordKey struct {
	id                     int64
	arrival, start, finish float64
	instance               string
}

func recordKeys(t *testing.T, recs []Record) []recordKey {
	t.Helper()
	out := make([]recordKey, len(recs))
	for i, r := range recs {
		out[i] = recordKey{r.Req.ID, r.Arrival, r.Start, r.Finish, r.Instance}
	}
	return out
}

func requireSameRecords(t *testing.T, label string, serial, sharded []recordKey) {
	t.Helper()
	if len(serial) != len(sharded) {
		t.Fatalf("%s: %d records, serial had %d", label, len(sharded), len(serial))
	}
	for i := range serial {
		if serial[i] != sharded[i] {
			t.Fatalf("%s: record %d diverged: serial %+v sharded %+v", label, i, serial[i], sharded[i])
		}
	}
}

// TestSimulationShardedRoutedCluster: four routed PrefillOnly instances,
// each on its own shard clock, with router decisions and admission on the
// coordinator.
func TestSimulationShardedRoutedCluster(t *testing.T) {
	run := func(shards int) []recordKey {
		s, err := NewSimulation(SimulationConfig{
			GPUs: 4, MaxInputLen: 6000,
			RoutingPolicy: "affinity", MaxBacklogSeconds: 25, Shards: shards,
		})
		if err != nil {
			t.Fatal(err)
		}
		ds := NewSkewed(SkewedConfig{Users: 12, Requests: 72, ProfileMean: 2500,
			ProfileStd: 500, ProfileMin: 1500, ProfileMax: 4000, Seed: 7})
		if err := s.SubmitDataset(ds, 14, 11); err != nil {
			t.Fatal(err)
		}
		return recordKeys(t, s.Run())
	}
	serial := run(0)
	if len(serial) == 0 {
		t.Fatal("serial run completed nothing")
	}
	for _, shards := range []int{1, 2, 8} {
		requireSameRecords(t, "routed cluster", serial, run(shards))
	}
}

// TestSimulationShardedPipelineParallel: PP=2 engine pairs — the stage
// handoff events inside each pair stay on that instance's shard.
func TestSimulationShardedPipelineParallel(t *testing.T) {
	run := func(shards int) []recordKey {
		s, err := NewSimulation(SimulationConfig{
			Engine: EnginePipelineParallel, GPUs: 8, MaxInputLen: 6000, Shards: shards,
		})
		if err != nil {
			t.Fatal(err)
		}
		ds := NewPostRecommendation(PostRecommendationConfig{Users: 6, PostsPerUser: 8, Seed: 5})
		if err := s.SubmitDataset(ds, 10, 13); err != nil {
			t.Fatal(err)
		}
		return recordKeys(t, s.Run())
	}
	serial := run(0)
	if len(serial) == 0 {
		t.Fatal("serial run completed nothing")
	}
	for _, shards := range []int{2, 4} {
		requireSameRecords(t, "pipeline parallel", serial, run(shards))
	}
}

// TestSimulationShardedAutoscale: the elastic pool under a square-wave
// burst — cold starts priced on the coordinator, mid-run scale-ups
// assigning fresh instances to shard clocks, drains retiring them.
func TestSimulationShardedAutoscale(t *testing.T) {
	type result struct {
		recs               []recordKey
		rejected           int
		scaleUps, peak     int
		coldStartSeconds   float64
		gpuSeconds, endSim float64
	}
	run := func(shards int) result {
		s, err := NewSimulation(SimulationConfig{
			GPUs: 4, MaxInputLen: 5000,
			RoutingPolicy: "affinity", MaxBacklogSeconds: 20, Shards: shards,
			Autoscale: &AutoscaleConfig{MinInstances: 1, UpBacklogSeconds: 2},
		})
		if err != nil {
			t.Fatal(err)
		}
		ds := NewSkewed(SkewedConfig{Users: 16, Requests: 96, ProfileMean: 2500,
			ProfileStd: 500, ProfileMin: 1500, ProfileMax: 4000, Seed: 3})
		arrivals, err := AssignOpenLoopArrivals(ds, SquareWaveRate(1, 12, 30, 0.4), 12, 3)
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range arrivals {
			s.SubmitAt(a.Time, a.Req)
		}
		recs := s.Run()
		ctl := s.Autoscaler()
		if err := ctl.Err(); err != nil {
			t.Fatal(err)
		}
		st := ctl.Stats()
		return result{
			recs: recordKeys(t, recs), rejected: s.Rejected(),
			scaleUps: st.ScaleUps, peak: st.PeakInstances,
			coldStartSeconds: st.ColdStartSeconds,
			gpuSeconds:       ctl.GPUSeconds(s.Now()), endSim: s.Now(),
		}
	}
	serial := run(1)
	if serial.scaleUps == 0 {
		t.Fatal("burst did not grow the pool; the oracle would not cover churn")
	}
	for _, shards := range []int{2, 4} {
		got := run(shards)
		requireSameRecords(t, "autoscale", serial.recs, got.recs)
		if got.rejected != serial.rejected || got.scaleUps != serial.scaleUps ||
			got.peak != serial.peak || got.coldStartSeconds != serial.coldStartSeconds ||
			got.gpuSeconds != serial.gpuSeconds || got.endSim != serial.endSim {
			t.Fatalf("shards=%d: controller state diverged: serial %+v sharded %+v", shards, serial, got)
		}
	}
}

// TestSimulationShardedTracingDoesNotPerturb extends the serial kernel's
// tracing-invariance guarantee to the sharded one: a traced sharded run
// must equal the untraced serial run, and the ring's accounting must stay
// exact with shard workers emitting concurrently.
func TestSimulationShardedTracingDoesNotPerturb(t *testing.T) {
	run := func(shards, spans int) ([]recordKey, *Simulation) {
		s, err := NewSimulation(SimulationConfig{
			GPUs: 4, MaxInputLen: 6000,
			RoutingPolicy: "affinity", Shards: shards, TraceSpans: spans,
		})
		if err != nil {
			t.Fatal(err)
		}
		ds := NewSkewed(SkewedConfig{Users: 12, Requests: 60, ProfileMean: 2500,
			ProfileStd: 500, ProfileMin: 1500, ProfileMax: 4000, Seed: 9})
		if err := s.SubmitDataset(ds, 12, 17); err != nil {
			t.Fatal(err)
		}
		return recordKeys(t, s.Run()), s
	}
	serial, _ := run(1, 0)
	traced, s := run(4, 128)
	requireSameRecords(t, "traced sharded", serial, traced)
	rec := s.Trace()
	if rec == nil {
		t.Fatal("no recorder")
	}
	if rec.TotalEmitted() == 0 {
		t.Fatal("traced run emitted nothing")
	}
	if got, want := rec.Dropped()+uint64(rec.Len()), rec.TotalEmitted(); got != want {
		t.Fatalf("ring invariant broken: dropped %d + held %d != emitted %d",
			rec.Dropped(), rec.Len(), rec.TotalEmitted())
	}
}
