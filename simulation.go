package prefillonly

import (
	"errors"
	"fmt"

	"repro/internal/autoscale"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/router"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/timeseries"
	"repro/internal/tokenizer"
	"repro/internal/trace"
)

// EngineName selects a serving engine implementation.
type EngineName string

// The five engines the paper compares.
const (
	// EnginePrefillOnly is the paper's engine: hybrid prefilling, suffix
	// KV discarding, SRJF with continuous JCT calibration.
	EnginePrefillOnly EngineName = "prefillonly"
	// EnginePagedAttention is the vLLM baseline (standard prefill, FCFS).
	EnginePagedAttention EngineName = "pagedattention"
	// EngineChunkedPrefill is the Sarathi-Serve baseline.
	EngineChunkedPrefill EngineName = "chunked-prefill"
	// EngineTensorParallel is TP=2 across a GPU pair.
	EngineTensorParallel EngineName = "tensor-parallel"
	// EnginePipelineParallel is PP=2 across a GPU pair.
	EnginePipelineParallel EngineName = "pipeline-parallel"
)

// SimulationConfig configures NewSimulation. Zero values take the paper's
// low-end setup: PrefillOnly on two L4 GPUs serving Llama-3.1-8B.
type SimulationConfig struct {
	// Engine selects the serving engine (default EnginePrefillOnly).
	Engine EngineName
	// Model is the served model (default Llama31_8B()).
	Model *ModelConfig
	// GPU is the device type (default L4()).
	GPU *GPUSpec
	// GPUs is the total device count (default 2). Parallel engines span
	// pairs; serial engines get one instance per GPU with user-id
	// routing.
	GPUs int
	// MaxInputLen is the profile-run length (default: 20000, or set it
	// to your workload's maximum).
	MaxInputLen int
	// Lambda is PrefillOnly's fairness parameter in ms of JCT credit per
	// second queued (default 500; negative means 0).
	Lambda float64
	// HostCacheBytes enables the §9 CPU KV-offload extension: evicted
	// prefix KV demotes to a host tier of this size and is restored over
	// the host link when that beats recomputation (0 = discard, the
	// paper's default).
	HostCacheBytes int64
	// RoutingPolicy selects the cluster frontend. Empty keeps the paper's
	// §7.1 first-appearance round-robin (internal/cluster); "userhash",
	// "leastloaded" or "affinity" route through internal/router by live
	// load and prefix-cache affinity.
	RoutingPolicy string
	// MaxBacklogSeconds enables admission control in routed mode: requests
	// whose projected completion wait exceeds the bound are rejected and
	// counted (see Rejected) instead of queued. Requires RoutingPolicy.
	MaxBacklogSeconds float64
	// ClassBacklogSeconds overrides MaxBacklogSeconds per SLO class in
	// routed mode: a batch budget below the interactive bound sheds batch
	// load before interactive load is ever touched. Requires
	// RoutingPolicy.
	ClassBacklogSeconds map[Class]float64
	// ClassWeights deprioritizes SLO classes in PrefillOnly's calibrated
	// scheduler (class JCT × weight inside the heap key; batch weight > 1
	// makes batch yield to interactive). Requires EnginePrefillOnly.
	ClassWeights map[Class]float64
	// Autoscale enables the elastic instance pool (internal/autoscale):
	// the cluster starts at Autoscale.MinInstances engines and scales
	// between that floor and Autoscale.MaxInstances (default: the GPUs
	// fleet size) from live backlog and admission signals, paying a
	// model-load cold start per scale-up. Requires RoutingPolicy; the
	// cold-start delay derives from this config's Model and GPU unless
	// set explicitly.
	Autoscale *AutoscaleConfig
	// TraceSpans enables the sim-time flight recorder when non-zero: the
	// ring keeps that many recent spans (negative = DefaultMaxSpans).
	// Read it back with Trace(); its WriteTrace exports Perfetto-loadable
	// Chrome trace JSON. Disabled tracing costs nothing on the hot path.
	TraceSpans int
	// TraceSampleSeconds is the fleet-gauge sampling interval in sim
	// seconds when tracing is enabled (default 0.5).
	TraceSampleSeconds float64
	// TimeseriesSeconds enables the windowed time-series collector
	// (internal/timeseries) with that window width in sim seconds:
	// per-window throughput, arrival and shed rates, per-class latency
	// quantiles, fleet gauges and rolling SLO burn rate. Read it back
	// with Timeseries(); export with its WriteJSON/WriteCSV. Disabled
	// (0) costs nothing on the hot path; enabled it never perturbs the
	// simulation — records are bit-identical either way.
	TimeseriesSeconds float64
	// Shards selects the event kernel: <= 1 runs the serial kernel, >= 2
	// runs the sharded kernel with that many shard workers — engine
	// instances round-robin onto shard clocks and execute their pass and
	// dispatch events in parallel inside conservative time windows, while
	// arrivals, routing, autoscaling and gauge sampling stay on the
	// coordinator. Results are identical to the serial kernel (the window
	// lookahead derives from the catalogs' minimum priced pass time);
	// only the wall clock changes.
	Shards int
}

// Simulation is a deterministic serving cluster on a virtual clock.
type Simulation struct {
	cfg             SimulationConfig
	kern            *engine.Kernel
	clock           sim.Clock             // the kernel's coordinator-side clock
	cluster         *cluster.Cluster      // legacy §7.1 routing ("" policy)
	router          *router.Router        // load/affinity routing (non-empty policy)
	ctl             *autoscale.Controller // elastic pool (Autoscale config)
	rec             *trace.Recorder       // flight recorder (TraceSpans config)
	sampler         *trace.Sampler        // fleet-gauge ticks on the sim clock
	ts              *timeseries.Collector // windowed series (TimeseriesSeconds config)
	tok             *tokenizer.Tokenizer
	records         []Record
	rejected        int
	rejectedByClass [sched.NumClasses]int
	nextID          int64
	// instances lists every engine ever created (autoscaled additions
	// included, released ones retained) for cumulative cache statistics.
	instances []engine.Engine
}

// NewSimulation builds the cluster (running each engine's profile run and
// sizing its prefix-cache pool) and returns a ready simulation.
func NewSimulation(cfg SimulationConfig) (*Simulation, error) {
	if cfg.Engine == "" {
		cfg.Engine = EnginePrefillOnly
	}
	if cfg.Model == nil {
		cfg.Model = Llama31_8B()
	}
	if cfg.GPU == nil {
		cfg.GPU = L4()
	}
	if cfg.GPUs == 0 {
		cfg.GPUs = 2
	}
	if cfg.GPUs < 0 {
		return nil, fmt.Errorf("prefillonly: GPUs must be positive, got %d", cfg.GPUs)
	}
	if cfg.MaxInputLen == 0 {
		cfg.MaxInputLen = 20000
	}
	// Validate routing config before the engines' expensive profile runs.
	var pol router.Policy
	if cfg.RoutingPolicy != "" {
		var err error
		pol, err = router.PolicyByName(cfg.RoutingPolicy)
		if err != nil {
			return nil, err
		}
	} else if cfg.MaxBacklogSeconds != 0 {
		return nil, fmt.Errorf("prefillonly: MaxBacklogSeconds requires a RoutingPolicy")
	} else if len(cfg.ClassBacklogSeconds) != 0 {
		return nil, fmt.Errorf("prefillonly: ClassBacklogSeconds requires a RoutingPolicy")
	} else if cfg.Autoscale != nil {
		return nil, fmt.Errorf("prefillonly: Autoscale requires a RoutingPolicy")
	}
	if len(cfg.ClassWeights) != 0 && cfg.Engine != EnginePrefillOnly {
		return nil, fmt.Errorf("prefillonly: ClassWeights requires the %s engine", EnginePrefillOnly)
	}
	if cfg.Shards < 0 {
		return nil, fmt.Errorf("prefillonly: Shards must be >= 0, got %d", cfg.Shards)
	}
	kern := engine.NewKernel(cfg.Shards, engine.MinEventSeconds(cfg.Model, cfg.GPU))
	s := &Simulation{cfg: cfg, kern: kern, clock: kern.Clock(), tok: tokenizer.New()}
	if cfg.TraceSpans != 0 {
		s.rec = trace.New(cfg.TraceSpans)
		interval := cfg.TraceSampleSeconds
		if interval <= 0 {
			interval = 0.5
		}
		s.sampler = trace.NewSampler(s.clock, interval, s.sampleGauges)
	}
	if cfg.TimeseriesSeconds > 0 {
		s.ts = timeseries.New(timeseries.Config{
			IntervalSeconds: cfg.TimeseriesSeconds,
			Sample:          s.timeseriesGauges,
		})
		s.ts.Attach(s.clock)
	}

	sinkFor := kern.CompletionSinks(func(r Record) {
		if s.router != nil {
			s.router.Completed(r)
		}
		s.records = append(s.records, r)
		// Completions carry their own event time: on the sharded kernel
		// this sink runs at window barriers, after the coordinator clock
		// has passed the finish time.
		s.ts.Complete(r.Finish, r.Req.Class, r.Latency())
	})
	ecfg := engine.Config{
		Model:          cfg.Model,
		GPU:            cfg.GPU,
		ProfileMaxLen:  cfg.MaxInputLen,
		HostCacheBytes: cfg.HostCacheBytes,
		Tracer:         s.rec,
	}
	var instances []engine.Engine
	mk := func() (engine.Engine, error) {
		// Each instance schedules on its own shard clock (round-robin;
		// the serial kernel hands every instance the same Sim) and emits
		// completions through its shard's merged sink.
		c := ecfg
		c.Sim = kern.InstanceClock(len(s.instances))
		c.OnComplete = sinkFor(len(s.instances))
		switch cfg.Engine {
		case EnginePrefillOnly:
			return core.New(c, core.Options{Lambda: cfg.Lambda, ClassWeights: cfg.ClassWeights})
		case EnginePagedAttention:
			return engine.NewPagedAttention(c)
		case EngineChunkedPrefill:
			return engine.NewChunkedPrefill(c, 0)
		case EngineTensorParallel:
			return engine.NewTensorParallel(c)
		case EnginePipelineParallel:
			return engine.NewPipelineParallel(c)
		default:
			return nil, fmt.Errorf("prefillonly: unknown engine %q", cfg.Engine)
		}
	}
	perInstance := 1
	switch cfg.Engine {
	case EngineTensorParallel, EnginePipelineParallel:
		perInstance = 2
		if cfg.GPUs%2 != 0 {
			return nil, fmt.Errorf("prefillonly: %s needs an even GPU count, got %d", cfg.Engine, cfg.GPUs)
		}
	}
	factory := func() (engine.Engine, error) {
		e, err := mk()
		if err != nil {
			return nil, err
		}
		s.instances = append(s.instances, e)
		return e, nil
	}
	initial := cfg.GPUs / perInstance
	var acfg *AutoscaleConfig
	if cfg.Autoscale != nil {
		// Copy: the controller's defaults must not write back into the
		// caller's config. The elastic pool starts at its floor; GPUs
		// sizes the default ceiling.
		a := *cfg.Autoscale
		acfg = &a
		if acfg.MaxInstances <= 0 {
			acfg.MaxInstances = cfg.GPUs / perInstance
		}
		if acfg.Model == nil {
			acfg.Model = cfg.Model
		}
		if acfg.GPU == nil {
			acfg.GPU = cfg.GPU
		}
		if acfg.Tracer == nil {
			acfg.Tracer = s.rec
		}
		initial = acfg.MinInstances
		if initial <= 0 {
			initial = 1
		}
	}
	for g := 0; g < initial; g++ {
		if _, err := factory(); err != nil {
			return nil, err
		}
	}
	instances = s.instances
	if pol != nil {
		rt, err := router.New(router.Config{
			Policy:              pol,
			MaxBacklogSeconds:   cfg.MaxBacklogSeconds,
			ClassBacklogSeconds: cfg.ClassBacklogSeconds,
			Tracer:              s.rec,
		}, instances...)
		if err != nil {
			return nil, err
		}
		s.router = rt
		if acfg != nil {
			ctl, err := autoscale.New(*acfg, s.clock, rt, factory)
			if err != nil {
				return nil, err
			}
			s.ctl = ctl
			ctl.Start()
		}
		return s, nil
	}
	cl, err := cluster.New(instances...)
	if err != nil {
		return nil, err
	}
	s.cluster = cl
	return s, nil
}

// submit routes one request through the active frontend, counting
// admission-control sheds in routed mode. Any other routing failure is a
// programming error (e.g. a policy picking an out-of-range instance) and
// fails loudly rather than being miscounted as load shedding.
func (s *Simulation) submit(r *Request) {
	if s.sampler != nil {
		// Re-arm the gauge sampler if it wound down after a previous Run
		// drained the event queue (same discipline as the autoscaler).
		s.sampler.Start()
	}
	s.ts.Arrival(s.clock.Now(), r.Class)
	s.ts.Start()
	if s.router != nil {
		if s.ctl != nil {
			// Revive the controller's tick loop if it wound down after a
			// previous Run drained the event queue.
			s.ctl.Start()
		}
		if err := s.router.Submit(r); err != nil {
			var rej *router.RejectError
			if !errors.As(err, &rej) {
				panic(fmt.Sprintf("prefillonly: routing request %d: %v", r.ID, err))
			}
			s.rejected++
			if int(rej.Class) < len(s.rejectedByClass) {
				s.rejectedByClass[rej.Class]++
			}
			s.ts.Reject(s.clock.Now(), rej.Class, rej.Reason)
		}
		return
	}
	s.cluster.Submit(r)
}

// Now returns the current simulated time in seconds.
func (s *Simulation) Now() float64 { return s.clock.Now() }

// SubmitAt schedules a request's arrival at absolute simulated time t.
func (s *Simulation) SubmitAt(t float64, r *Request) {
	r.ArrivalTime = t
	s.clock.At(t, func() { s.submit(r) })
}

// SubmitText tokenizes a prompt and schedules its arrival at time t,
// returning the created request.
func (s *Simulation) SubmitText(t float64, userID int, prompt string, allowed []string) *Request {
	s.nextID++
	r := &Request{
		ID:            s.nextID,
		UserID:        userID,
		Tokens:        s.tok.Encode(prompt),
		AllowedTokens: allowed,
	}
	s.SubmitAt(t, r)
	return r
}

// SubmitDataset schedules an entire dataset with Poisson arrivals at the
// given request rate.
func (s *Simulation) SubmitDataset(d *Dataset, qps float64, seed int64) error {
	arrivals, err := AssignPoissonArrivals(d, qps, seed)
	if err != nil {
		return err
	}
	for _, a := range arrivals {
		a := a
		s.clock.At(a.Time, func() { s.submit(a.Req) })
	}
	return nil
}

// Run drains the event queue (serving every submitted request) and returns
// the completion records in finish order.
func (s *Simulation) Run() []Record {
	s.kern.Run()
	return s.records
}

// Records returns the completions so far.
func (s *Simulation) Records() []Record { return s.records }

// Rejected returns the requests shed by admission control so far (always 0
// without a RoutingPolicy and MaxBacklogSeconds).
func (s *Simulation) Rejected() int { return s.rejected }

// RejectedClass returns the requests of one SLO class shed so far.
func (s *Simulation) RejectedClass(c Class) int {
	if int(c) >= len(s.rejectedByClass) {
		return 0
	}
	return s.rejectedByClass[c]
}

// sampleGauges is the trace sampler's tick: per-instance load gauges (in
// routed mode, where the router prices backlog), cache residency per
// engine, and the pool size.
func (s *Simulation) sampleGauges(now float64) {
	if s.router != nil {
		for _, info := range s.router.InstanceInfos() {
			s.rec.LoadGauge(now, info.ID, info.Load.QueuedRequests, info.Load.BacklogSeconds)
		}
		pending := 0
		if s.ctl != nil {
			pending = s.ctl.Size() - s.router.Routable()
		}
		s.rec.PoolGauge(now, s.router.Routable(), pending)
	} else {
		s.rec.PoolGauge(now, len(s.instances), 0)
	}
	s.rec.SampleCaches(now)
}

// timeseriesGauges samples fleet state for the time-series collector at
// window close: fleet-wide queue depth and backlog (routed mode), pool
// size and pending cold starts, cumulative cache hit ratio, and
// GPU-seconds (the controller's accrued integral, or fleet size × time
// for a fixed fleet).
func (s *Simulation) timeseriesGauges(now float64) timeseries.Gauges {
	var g timeseries.Gauges
	if s.router != nil {
		for _, info := range s.router.InstanceInfos() {
			g.QueuedRequests += info.Load.QueuedRequests
			g.BacklogSeconds += info.Load.BacklogSeconds
		}
		g.PoolSize = s.router.Routable()
		if s.ctl != nil {
			g.PendingInstances = s.ctl.Size() - s.router.Routable()
		}
	} else {
		g.PoolSize = len(s.instances)
	}
	if s.ctl != nil {
		g.GPUSeconds = s.ctl.GPUSeconds(now)
	} else {
		g.GPUSeconds = now * float64(s.cfg.GPUs)
	}
	g.CacheHitRatio = s.CacheHitRate()
	return g
}

// Timeseries returns the windowed collector (nil unless
// TimeseriesSeconds was set).
func (s *Simulation) Timeseries() *timeseries.Collector { return s.ts }

// Trace returns the flight recorder (nil unless TraceSpans was set). Its
// WriteTrace exports the run as Chrome trace-event JSON for Perfetto.
func (s *Simulation) Trace() *trace.Recorder { return s.rec }

// Router returns the routing frontend (nil when the legacy §7.1 cluster is
// active).
func (s *Simulation) Router() *router.Router { return s.router }

// Autoscaler returns the elastic pool controller (nil without an
// Autoscale config).
func (s *Simulation) Autoscaler() *autoscale.Controller { return s.ctl }

// CacheHitRate aggregates prefix-cache hit rate across instances.
func (s *Simulation) CacheHitRate() float64 {
	var lookup, hit int64
	for _, in := range s.instances {
		if c := in.Cache(); c != nil {
			st := c.Stats()
			lookup += st.LookupTokens
			hit += st.HitTokens
		}
	}
	if lookup == 0 {
		return 0
	}
	return float64(hit) / float64(lookup)
}
