package prefillonly

import (
	"testing"
)

func TestSimulationQuickstartFlow(t *testing.T) {
	s, err := NewSimulation(SimulationConfig{MaxInputLen: 4000})
	if err != nil {
		t.Fatal(err)
	}
	profile := "user profile: reads operating systems papers, follows databases and distributed systems, " +
		"clicked on twelve scheduling articles last month, skips celebrity news and sports. "
	s.SubmitText(0, 1, profile+"post: a paper about LLM serving. recommend? answer:", []string{"Yes", "No"})
	s.SubmitText(0.1, 1, profile+"post: a paper about gardening. recommend? answer:", []string{"Yes", "No"})
	s.SubmitText(0.2, 2, "credit history: on-time payments. approve? answer:", []string{"Approve", "Deny"})
	recs := s.Run()
	if len(recs) != 3 {
		t.Fatalf("completed %d, want 3", len(recs))
	}
	sum := SummarizeLatencies(recs)
	if sum.Count != 3 || sum.Mean <= 0 {
		t.Fatalf("summary = %+v", sum)
	}
	// The two user-1 prompts share a profile prefix.
	if s.CacheHitRate() <= 0 {
		t.Fatal("no cache hits on shared-prefix prompts")
	}
}

func TestSimulationAllEngines(t *testing.T) {
	for _, eng := range []EngineName{
		EnginePrefillOnly, EnginePagedAttention, EngineChunkedPrefill,
		EngineTensorParallel, EnginePipelineParallel,
	} {
		s, err := NewSimulation(SimulationConfig{Engine: eng, MaxInputLen: 4000})
		if err != nil {
			t.Fatalf("%s: %v", eng, err)
		}
		s.SubmitText(0, 1, "a short prompt to classify. answer:", nil)
		if recs := s.Run(); len(recs) != 1 {
			t.Fatalf("%s completed %d requests", eng, len(recs))
		}
	}
}

func TestSimulationRoutedCluster(t *testing.T) {
	for _, policy := range []string{"userhash", "leastloaded", "affinity"} {
		s, err := NewSimulation(SimulationConfig{GPUs: 4, MaxInputLen: 9000, RoutingPolicy: policy})
		if err != nil {
			t.Fatalf("%s: %v", policy, err)
		}
		if s.Router() == nil {
			t.Fatalf("%s: no router", policy)
		}
		ds := NewSkewed(SkewedConfig{Users: 12, Requests: 48, ProfileMean: 2000,
			ProfileStd: 500, ProfileMin: 1000, ProfileMax: 3000, Seed: 2})
		if err := s.SubmitDataset(ds, 20, 1); err != nil {
			t.Fatal(err)
		}
		recs := s.Run()
		if len(recs) != 48 {
			t.Fatalf("%s completed %d, want 48", policy, len(recs))
		}
		if s.Rejected() != 0 {
			t.Fatalf("%s rejected %d without an admission bound", policy, s.Rejected())
		}
	}
	// Admission control: a tight bound on the same load sheds requests.
	s, err := NewSimulation(SimulationConfig{GPUs: 2, MaxInputLen: 9000,
		RoutingPolicy: "leastloaded", MaxBacklogSeconds: 2})
	if err != nil {
		t.Fatal(err)
	}
	ds := NewSkewed(SkewedConfig{Users: 12, Requests: 48, ProfileMean: 2000,
		ProfileStd: 500, ProfileMin: 1000, ProfileMax: 3000, Seed: 2})
	if err := s.SubmitDataset(ds, 200, 1); err != nil {
		t.Fatal(err)
	}
	recs := s.Run()
	if s.Rejected() == 0 {
		t.Fatal("tight admission bound rejected nothing at 200 qps")
	}
	if len(recs)+s.Rejected() != 48 {
		t.Fatalf("completed %d + rejected %d != 48", len(recs), s.Rejected())
	}
	// An admission bound without a routing policy is a config error.
	if _, err := NewSimulation(SimulationConfig{MaxBacklogSeconds: 1}); err == nil {
		t.Fatal("MaxBacklogSeconds without RoutingPolicy accepted")
	}
	if _, err := NewSimulation(SimulationConfig{RoutingPolicy: "bogus"}); err == nil {
		t.Fatal("unknown routing policy accepted")
	}
}

func TestSimulationDataset(t *testing.T) {
	s, err := NewSimulation(SimulationConfig{MaxInputLen: 18000})
	if err != nil {
		t.Fatal(err)
	}
	ds := NewPostRecommendation(PostRecommendationConfig{Users: 2, PostsPerUser: 5, Seed: 3})
	if err := s.SubmitDataset(ds, 5, 1); err != nil {
		t.Fatal(err)
	}
	recs := s.Run()
	if len(recs) != 10 {
		t.Fatalf("completed %d, want 10", len(recs))
	}
}

func TestSimulationConfigValidation(t *testing.T) {
	if _, err := NewSimulation(SimulationConfig{Engine: "warp-drive"}); err == nil {
		t.Error("unknown engine accepted")
	}
	if _, err := NewSimulation(SimulationConfig{Engine: EngineTensorParallel, GPUs: 3}); err == nil {
		t.Error("odd GPU count for TP accepted")
	}
	if _, err := NewSimulation(SimulationConfig{GPUs: -2}); err == nil {
		t.Error("negative GPU count accepted")
	}
}

func TestCatalogs(t *testing.T) {
	if len(Models()) != 3 {
		t.Fatalf("models = %d", len(Models()))
	}
	if len(GPUs()) != 4 {
		t.Fatalf("gpus = %d", len(GPUs()))
	}
	if Llama31_8B().Hidden != 4096 || L4().MemoryBytes <= 0 {
		t.Fatal("preset accessors broken")
	}
}

func TestServerFacade(t *testing.T) {
	srv, err := NewServer(ServerConfig{MaxInputLen: 4000, Speedup: 1e7})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	res, err := srv.Submit("profile: likes databases. post: a B-tree paper. recommend? answer:", nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Token == "" || res.SimLatency <= 0 {
		t.Fatalf("result = %+v", res)
	}
	if srv.Handler() == nil {
		t.Fatal("nil handler")
	}
}

func TestServerChaosValidation(t *testing.T) {
	if _, err := NewServer(ServerConfig{MaxInputLen: 4000, ChaosCrashRate: 0.1}); err == nil {
		t.Error("chaos on a single-engine server accepted")
	}
	if _, err := NewServer(ServerConfig{MaxInputLen: 4000, Instances: 2, ChaosSeed: 7}); err == nil {
		t.Error("ChaosSeed without a chaos rate accepted")
	}
	srv, err := NewServer(ServerConfig{
		MaxInputLen: 4000, Speedup: 1e7, Instances: 2,
		ChaosSeed: 7, ChaosStragglerRate: 1e-9,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Close()
}
