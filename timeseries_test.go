package prefillonly

// Time-series integration tests: the windowed collector must account for
// every request exactly, stay byte-identical across kernels, and — the
// observability bargain — change nothing about the simulation it
// observes.

import (
	"bytes"
	"testing"
)

func timeseriesRoutedRun(t *testing.T, intervalSeconds float64, shards int) (*Simulation, []Record) {
	t.Helper()
	sim, err := NewSimulation(SimulationConfig{
		RoutingPolicy:     "affinity",
		MaxInputLen:       18000,
		TimeseriesSeconds: intervalSeconds,
		Shards:            shards,
	})
	if err != nil {
		t.Fatal(err)
	}
	ds := NewPostRecommendation(PostRecommendationConfig{Users: 4, PostsPerUser: 8, Seed: 21})
	if err := sim.SubmitDataset(ds, 8, 5); err != nil {
		t.Fatal(err)
	}
	return sim, sim.Run()
}

// TestTimeseriesDoesNotPerturbSimulation runs the same workload with and
// without the collector: latencies must be bit-identical. Aggregation
// must observe, not steer.
func TestTimeseriesDoesNotPerturbSimulation(t *testing.T) {
	_, plain := timeseriesRoutedRun(t, 0, 0)
	_, collected := timeseriesRoutedRun(t, 1, 0)
	if len(plain) != len(collected) {
		t.Fatalf("completion counts differ: %d vs %d", len(plain), len(collected))
	}
	for i := range plain {
		if plain[i].Latency() != collected[i].Latency() || plain[i].Req.ID != collected[i].Req.ID {
			t.Fatalf("record %d diverged under collection: %+v vs %+v", i, plain[i], collected[i])
		}
	}
}

// TestTimeseriesAccountsEveryRequest sums the windowed counters back up:
// arrivals and completions across all windows must equal the run's
// totals, and the last window must end at or before the clock.
func TestTimeseriesAccountsEveryRequest(t *testing.T) {
	sim, recs := timeseriesRoutedRun(t, 1, 0)
	ts := sim.Timeseries()
	if ts == nil {
		t.Fatal("TimeseriesSeconds set but Timeseries() is nil")
	}
	exp := ts.Snapshot(sim.Now())
	if len(exp.Windows) == 0 {
		t.Fatal("no windows collected")
	}
	var arrivals, completions uint64
	nonEmpty := 0
	for i, w := range exp.Windows {
		if w.Index != int64(i) {
			t.Fatalf("window %d has index %d: rows must be contiguous from 0", i, w.Index)
		}
		if w.EndSeconds > sim.Now()+1e-9 {
			t.Fatalf("window %d ends at %g, past sim time %g", i, w.EndSeconds, sim.Now())
		}
		arrivals += w.Arrivals
		completions += w.Completions
		var classArr, classComp uint64
		for _, cw := range w.Classes {
			classArr += cw.Arrivals
			classComp += cw.Completions
		}
		if classArr != w.Arrivals || classComp != w.Completions {
			t.Fatalf("window %d: class slices (%d/%d) don't sum to totals (%d/%d)",
				i, classArr, classComp, w.Arrivals, w.Completions)
		}
		if w.Completions > 0 {
			nonEmpty++
		}
	}
	if completions != uint64(len(recs)) {
		t.Fatalf("windows account %d completions, run produced %d", completions, len(recs))
	}
	if arrivals != uint64(len(recs)) {
		t.Fatalf("windows account %d arrivals, run submitted %d", arrivals, len(recs))
	}
	if nonEmpty == 0 {
		t.Fatal("every window is empty")
	}
}

// TestTimeseriesShardByteIdentity renders the series from the serial and
// the 4-shard kernel: the JSON exports must be byte-identical, because
// parallel execution is an implementation detail the telemetry must not
// leak.
func TestTimeseriesShardByteIdentity(t *testing.T) {
	serialSim, serialRecs := timeseriesRoutedRun(t, 1, 1)
	shardSim, shardRecs := timeseriesRoutedRun(t, 1, 4)
	if len(serialRecs) != len(shardRecs) {
		t.Fatalf("completion counts differ: %d vs %d", len(serialRecs), len(shardRecs))
	}
	var serial, sharded bytes.Buffer
	if err := serialSim.Timeseries().WriteJSON(&serial); err != nil {
		t.Fatal(err)
	}
	if err := shardSim.Timeseries().WriteJSON(&sharded); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serial.Bytes(), sharded.Bytes()) {
		t.Fatalf("time-series JSON diverges between serial and 4-shard kernels:\nserial %d bytes, sharded %d bytes",
			serial.Len(), sharded.Len())
	}
}
