package prefillonly

import "testing"

// TestSimulationAutoscale drives the elastic pool end to end through the
// public facade: a square-wave burst grows the pool from its floor, the
// trough drains it back, and every request is accounted for.
func TestSimulationAutoscale(t *testing.T) {
	s, err := NewSimulation(SimulationConfig{
		GPUs: 4, MaxInputLen: 5000,
		RoutingPolicy:     "affinity",
		MaxBacklogSeconds: 20,
		Autoscale:         &AutoscaleConfig{MinInstances: 1, UpBacklogSeconds: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctl := s.Autoscaler()
	if ctl == nil {
		t.Fatal("no autoscaler")
	}
	if ctl.Size() != 1 {
		t.Fatalf("initial pool %d, want the floor 1", ctl.Size())
	}

	ds := NewSkewed(SkewedConfig{Users: 16, Requests: 96, ProfileMean: 2500,
		ProfileStd: 500, ProfileMin: 1500, ProfileMax: 4000, Seed: 3})
	rate := SquareWaveRate(1, 12, 30, 0.4)
	arrivals, err := AssignOpenLoopArrivals(ds, rate, 12, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range arrivals {
		s.SubmitAt(a.Time, a.Req)
	}
	recs := s.Run()
	if err := ctl.Err(); err != nil {
		t.Fatal(err)
	}
	if len(recs)+s.Rejected() != 96 {
		t.Fatalf("completed %d + rejected %d != 96", len(recs), s.Rejected())
	}
	st := ctl.Stats()
	if st.ScaleUps == 0 || st.PeakInstances < 2 {
		t.Fatalf("burst did not grow the pool: %+v", st)
	}
	if st.PeakInstances > 4 {
		t.Fatalf("pool exceeded the GPUs ceiling: %+v", st)
	}
	if gs := ctl.GPUSeconds(s.Now()); gs <= 0 || gs > 4*s.Now() {
		t.Fatalf("GPU-seconds %g outside (0, %g]", gs, 4*s.Now())
	}

	// The config guards: autoscaling requires a routing policy, and the
	// caller's config must not be mutated by defaulting.
	acfg := &AutoscaleConfig{MinInstances: 1}
	if _, err := NewSimulation(SimulationConfig{Autoscale: acfg}); err == nil {
		t.Fatal("Autoscale without RoutingPolicy accepted")
	}
	if _, err := NewSimulation(SimulationConfig{
		GPUs: 2, MaxInputLen: 5000, RoutingPolicy: "affinity", Autoscale: acfg,
	}); err != nil {
		t.Fatal(err)
	}
	if acfg.MaxInstances != 0 || acfg.Model != nil {
		t.Fatalf("caller's AutoscaleConfig mutated: %+v", acfg)
	}
}

// TestColdStartCatalogPricing pins the public cold-start helper to the
// catalog arithmetic.
func TestColdStartCatalogPricing(t *testing.T) {
	m, g := Llama31_8B(), L4()
	got := ColdStartSeconds(m, g, 1)
	want := float64(m.WeightBytes()) / float64(g.HostBWBytes)
	if got != want {
		t.Fatalf("cold start %g, want weights/hostBW = %g", got, want)
	}
}
