package sched

import "fmt"

// --- SRJF (static) ---

// SRJF is shortest-remaining-job-first with the JCT estimated once, at
// arrival (§6.2's "traditional JCT-based scheduling"). It fails to react
// when prefix caches appear or are evicted after enqueue. The queue is a
// min-heap on the frozen JCT, ties broken by enqueue order.
type SRJF struct {
	jct JCTFunc
	h   entryHeap
	seq uint64
}

// NewSRJF returns an SRJF scheduler that freezes each request's JCT at
// enqueue time using the supplied estimator.
func NewSRJF(jct JCTFunc) *SRJF {
	if jct == nil {
		panic("sched: SRJF requires a JCT function")
	}
	return &SRJF{jct: jct}
}

// Name implements Scheduler.
func (s *SRJF) Name() string { return "srjf" }

// Enqueue implements Scheduler.
func (s *SRJF) Enqueue(r *Request) {
	s.h.push(&entry{r: r, key: s.jct(r), seq: s.seq})
	s.seq++
}

// Len implements Scheduler.
func (s *SRJF) Len() int { return s.h.len() }

// Next implements Scheduler.
func (s *SRJF) Next(now float64) *Request {
	e := s.h.popMin()
	if e == nil {
		return nil
	}
	// The key is the frozen arrival-time JCT; stamp it for observability.
	e.r.EstimatedSeconds = e.key
	return e.r
}

// --- SRJF with continuous JCT calibration (Algorithm 1) ---

// Calibrated is PrefillOnly's scheduler (Algorithm 1): every scheduling
// decision runs the waiting request with the minimum calibrated score
//
//	score(r, now) = jct(r) − λ/1000·(now − r.ArrivalTime),
//
// where jct consults the live prefix cache and λ·T_queue is a queueing-
// time fairness credit.
//
// Instead of sweeping the whole queue every decision, Calibrated keeps an
// indexed min-heap on the time-invariant key
//
//	key(r) = w(r.Class)·jct(r) + λ/1000·r.ArrivalTime,
//
// which differs from score(r, now) only by the term −λ/1000·now shared by
// every waiting request, so the heap order equals the score order at any
// instant. w is the per-class SLO weight (default 1 for every class, the
// class-blind paper policy): a class with weight w pays w seconds of
// effective JCT per real second, so batch work with w > 1 yields to
// interactive work whenever their weighted costs cross. The weight scales
// only the jct term — it is fixed per class at SetClassWeights time, so
// the key stays time-invariant and the incremental-rekey invariant below
// is unchanged. jct depends on the prefix cache, so keys change only when cache
// contents change: wire SetHashChain and feed the cache's membership
// changes to OnCacheChange (kvcache.Manager.Subscribe), and only requests
// whose hash chains overlap a changed block are rekeyed — O(log n) per
// dispatch plus O(affected) rekeys, instead of O(queue × blocks). Without
// that wiring, Calibrated remains correct by recomputing every key before
// each decision (the reference sweep's cost).
//
// Requests whose ArrivalTime lies in the future are ordered with their
// λ·arrival credit already applied (the score formula clamps T_queue at
// zero instead); engines never enqueue future arrivals.
type Calibrated struct {
	jct JCTFunc
	// lambda is the fairness parameter, in milliseconds of JCT credit
	// per second of queueing (see DESIGN.md §5 for the unit convention;
	// the paper's default is 500). It is fixed at construction because it
	// is baked into each waiting request's key.
	lambda float64

	// weights holds the per-class JCT multipliers; all 1 (class-blind)
	// until SetClassWeights. Fixed before the first enqueue because each
	// waiting request's weight is baked into its key.
	weights [NumClasses]float64

	chain  func(*Request) []uint64
	h      entryHeap
	seq    uint64
	byHash map[uint64]map[*entry]struct{}
}

// uniformWeights is the class-blind default: every class weighs 1.
func uniformWeights() [NumClasses]float64 {
	var w [NumClasses]float64
	for i := range w {
		w[i] = 1
	}
	return w
}

// classWeight looks a request's class weight up, treating out-of-range
// classes as weight 1.
func classWeight(w [NumClasses]float64, c Class) float64 {
	if int(c) >= len(w) {
		return 1
	}
	return w[c]
}

// setClassWeights validates and copies per-class weights into dst — the
// one implementation shared by the heap scheduler and its sweep oracle,
// so their weight semantics cannot drift apart. waiting guards the
// baked-into-keys invariant: weights are immutable once requests wait.
func setClassWeights(dst *[NumClasses]float64, w map[Class]float64, waiting int) {
	if waiting > 0 {
		panic("sched: SetClassWeights with requests already waiting")
	}
	//prefill:allow(simdeterminism): each class writes its own array slot; iteration order cannot change the result
	for cl, wt := range w {
		if wt <= 0 {
			panic(fmt.Sprintf("sched: class weight for %s must be positive, got %g", cl, wt))
		}
		if int(cl) < len(dst) {
			dst[cl] = wt
		}
	}
}

// NewCalibrated returns the calibrated scheduler. jct is evaluated at
// enqueue and whenever a cache change invalidates a request's key.
func NewCalibrated(jct JCTFunc, lambda float64) *Calibrated {
	if jct == nil {
		panic("sched: Calibrated requires a JCT function")
	}
	return &Calibrated{jct: jct, lambda: lambda, weights: uniformWeights()}
}

// SetClassWeights sets the per-class JCT multipliers of the heap key
// (weights at missing keys stay 1, the class-blind default). Weights must
// be positive and, like λ, are baked into every waiting request's key, so
// they must be set before any request is enqueued.
func (c *Calibrated) SetClassWeights(w map[Class]float64) {
	setClassWeights(&c.weights, w, c.h.len())
}

// Name implements Scheduler.
func (c *Calibrated) Name() string {
	return fmt.Sprintf("srjf-calibrated(λ=%g)", c.lambda)
}

// SetHashChain enables incremental rekeying: chain must return the block-
// hash chain the JCT function's cache lookup walks (the same block size),
// so waiting requests can be indexed by the blocks their JCT depends on.
// It must be wired before any request is enqueued.
func (c *Calibrated) SetHashChain(chain func(*Request) []uint64) {
	if c.h.len() > 0 {
		panic("sched: SetHashChain with requests already waiting")
	}
	c.chain = chain
	c.byHash = make(map[uint64]map[*entry]struct{})
}

// Enqueue implements Scheduler.
func (c *Calibrated) Enqueue(r *Request) {
	e := &entry{r: r, key: c.key(r), seq: c.seq}
	c.seq++
	if c.chain != nil {
		e.hashes = c.chain(r)
		for _, h := range e.hashes {
			set := c.byHash[h]
			if set == nil {
				set = make(map[*entry]struct{})
				c.byHash[h] = set
			}
			set[e] = struct{}{}
		}
	}
	c.h.push(e)
}

// Len implements Scheduler.
func (c *Calibrated) Len() int { return c.h.len() }

// key returns the time-invariant heap key of a request.
func (c *Calibrated) key(r *Request) float64 {
	return classWeight(c.weights, r.Class)*c.jct(r) + c.lambda/1000*r.ArrivalTime
}

// Score returns the Algorithm-1 score of a request at time now:
// w(class)·jct(n_input, n_cached) − λ·T_queue. Exported for tests and
// diagnostics. Note Score clamps T_queue at zero while the dispatch order
// uses the unclamped key, so for a request whose ArrivalTime lies in the
// future (never produced by engines) Score does not predict dispatch
// order.
func (c *Calibrated) Score(r *Request, now float64) float64 {
	queue := now - r.ArrivalTime
	if queue < 0 {
		queue = 0
	}
	return classWeight(c.weights, r.Class)*c.jct(r) - c.lambda/1000*queue
}

// Next implements Scheduler: the minimum-key request wins.
func (c *Calibrated) Next(now float64) *Request {
	if c.chain == nil {
		// No cache-event feed: every key may be stale, recalibrate all.
		for _, e := range c.h.items {
			e.key = c.key(e.r)
		}
		c.h.reinit()
	}
	e := c.h.popMin()
	if e == nil {
		return nil
	}
	for _, h := range e.hashes {
		set := c.byHash[h]
		delete(set, e)
		if len(set) == 0 {
			delete(c.byHash, h)
		}
	}
	e.r.EstimatedSeconds = c.estimateOf(e)
	return e.r
}

// estimateOf recovers the calibrated JCT estimate from an entry's
// time-invariant key (key = w·jct + λ/1000·arrival), so dispatch does not
// re-run the cost model just to stamp the estimate.
func (c *Calibrated) estimateOf(e *entry) float64 {
	return (e.key - c.lambda/1000*e.r.ArrivalTime) / classWeight(c.weights, e.r.Class)
}

// OnCacheChange rekeys the waiting requests whose hash chains include any
// of the inserted or evicted blocks. Wire it to the owning cache's change
// feed (kvcache.Manager.Subscribe); a request's JCT can only move when a
// block of its own chain enters or leaves the cache.
func (c *Calibrated) OnCacheChange(inserted, evicted []uint64) {
	if c.chain == nil {
		return
	}
	var affected map[*entry]struct{}
	for _, hs := range [2][]uint64{inserted, evicted} {
		for _, h := range hs {
			//prefill:allow(simdeterminism): set union into `affected`; membership is order-insensitive
			for e := range c.byHash[h] {
				if affected == nil {
					affected = make(map[*entry]struct{})
				}
				affected[e] = struct{}{}
			}
		}
	}
	// Rekey order only permutes the heap's internal array; pop order is a
	// strict total order on (key, len desc, seq), so dispatch stays
	// byte-identical — pinned by the sweep-oracle property test.
	//prefill:allow(simdeterminism): per-entry rekey+fix commutes; heap pop order is a strict total order
	for e := range affected {
		e.key = c.key(e.r)
		c.h.fix(e)
	}
}

// --- reference sweep (equivalence oracle) ---

// CalibratedSweep is the original O(queue × blocks) implementation of
// Algorithm 1, kept as the reference oracle for Calibrated's equivalence
// tests: every decision recomputes key(r) = w(class)·jct(r) +
// λ/1000·ArrivalTime for every waiting request and pops the minimum,
// breaking ties by enqueue order exactly as Calibrated does.
type CalibratedSweep struct {
	jct     JCTFunc
	lambda  float64
	weights [NumClasses]float64
	q       []*entry
	seq     uint64
}

// NewCalibratedSweep returns the reference sweep scheduler.
func NewCalibratedSweep(jct JCTFunc, lambda float64) *CalibratedSweep {
	if jct == nil {
		panic("sched: CalibratedSweep requires a JCT function")
	}
	return &CalibratedSweep{jct: jct, lambda: lambda, weights: uniformWeights()}
}

// SetClassWeights mirrors Calibrated.SetClassWeights on the reference
// sweep (shared implementation, so oracle and production semantics
// cannot drift).
func (c *CalibratedSweep) SetClassWeights(w map[Class]float64) {
	setClassWeights(&c.weights, w, len(c.q))
}

// Name implements Scheduler.
func (c *CalibratedSweep) Name() string {
	return fmt.Sprintf("srjf-calibrated-sweep(λ=%g)", c.lambda)
}

// Enqueue implements Scheduler.
func (c *CalibratedSweep) Enqueue(r *Request) {
	c.q = append(c.q, &entry{r: r, seq: c.seq})
	c.seq++
}

// Len implements Scheduler.
func (c *CalibratedSweep) Len() int { return len(c.q) }

// Next implements Scheduler: one full calibration sweep, then the minimum
// entry (key, then longer request, then enqueue order) wins.
func (c *CalibratedSweep) Next(now float64) *Request {
	best := -1
	for i, e := range c.q {
		e.key = classWeight(c.weights, e.r.Class)*c.jct(e.r) + c.lambda/1000*e.r.ArrivalTime
		if best < 0 || entryLess(e, c.q[best]) {
			best = i
		}
	}
	if best < 0 {
		return nil
	}
	e := c.q[best]
	c.q[best] = c.q[len(c.q)-1]
	c.q[len(c.q)-1] = nil
	c.q = c.q[:len(c.q)-1]
	// Mirror Calibrated's estimate stamping so the oracle stays
	// behaviorally identical.
	e.r.EstimatedSeconds = (e.key - c.lambda/1000*e.r.ArrivalTime) / classWeight(c.weights, e.r.Class)
	return e.r
}
