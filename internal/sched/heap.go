package sched

// entry is one waiting request inside a keyed scheduler: the request, its
// ordering key, its enqueue sequence number (the final tie-breaker), and —
// when the scheduler indexes requests by prefix hash chain — the chain it
// was indexed under.
type entry struct {
	r      *Request
	key    float64
	seq    uint64
	hashes []uint64
	idx    int // position in the heap; -1 once removed
}

// entryHeap is an indexed min-heap of entries ordered by key; ties prefer
// the longer request (at equal miss-cost the longer one has more cached
// prefix to reuse before it is evicted — the Figure-5 walkthrough's
// choice), then enqueue order. The stored index supports O(log n) removal
// and rekeying of an arbitrary entry when a cache event changes its JCT.
type entryHeap struct {
	items []*entry
}

func (h *entryHeap) len() int { return len(h.items) }

func (h *entryHeap) less(i, j int) bool {
	return entryLess(h.items[i], h.items[j])
}

// entryLess is the scheduling order shared by the heap schedulers and the
// reference sweep: (key asc, request length desc, enqueue order asc).
func entryLess(a, b *entry) bool {
	if a.key != b.key {
		return a.key < b.key
	}
	if a.r.Len() != b.r.Len() {
		return a.r.Len() > b.r.Len()
	}
	return a.seq < b.seq
}

func (h *entryHeap) swap(i, j int) {
	h.items[i], h.items[j] = h.items[j], h.items[i]
	h.items[i].idx = i
	h.items[j].idx = j
}

func (h *entryHeap) push(e *entry) {
	e.idx = len(h.items)
	h.items = append(h.items, e)
	h.up(e.idx)
}

// popMin removes and returns the minimum entry, or nil when empty.
func (h *entryHeap) popMin() *entry {
	if len(h.items) == 0 {
		return nil
	}
	e := h.items[0]
	last := len(h.items) - 1
	if last > 0 {
		h.swap(0, last)
	}
	h.items[last] = nil
	h.items = h.items[:last]
	e.idx = -1
	if last > 0 {
		h.down(0)
	}
	return e
}

// fix restores heap order after e's key changed.
func (h *entryHeap) fix(e *entry) {
	if e.idx < 0 {
		return
	}
	h.down(e.idx)
	h.up(e.idx)
}

// reinit rebuilds the heap order from scratch after every key may have
// changed (the unindexed fallback path).
func (h *entryHeap) reinit() {
	for i := len(h.items)/2 - 1; i >= 0; i-- {
		h.down(i)
	}
}

func (h *entryHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *entryHeap) down(i int) {
	n := len(h.items)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.less(l, smallest) {
			smallest = l
		}
		if r < n && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.swap(i, smallest)
		i = smallest
	}
}
