package sched

import (
	"testing"
	"testing/quick"
)

func req(id int64, n int, arrival float64) *Request {
	toks := make([]uint64, n)
	for i := range toks {
		toks[i] = uint64(id)<<32 | uint64(i)
	}
	return &Request{ID: id, Tokens: toks, ArrivalTime: arrival}
}

func TestFIFOOrder(t *testing.T) {
	f := NewFIFO()
	f.Enqueue(req(1, 10, 0))
	f.Enqueue(req(2, 5, 1))
	f.Enqueue(req(3, 7, 2))
	for want := int64(1); want <= 3; want++ {
		r := f.Next(10)
		if r == nil || r.ID != want {
			t.Fatalf("FIFO popped %v, want %d", r, want)
		}
	}
	if f.Next(10) != nil {
		t.Fatal("empty queue returned a request")
	}
}

// FIFO's ring buffer must stay bounded by the peak queue depth under
// sustained load — the old `q = q[1:]` slice advance retained the entire
// backing array for the life of the queue.
func TestFIFOBoundedMemoryUnderSustainedLoad(t *testing.T) {
	f := NewFIFO()
	for i := 0; i < 1_000_000; i++ {
		f.Enqueue(req(int64(i), 1, float64(i)))
		if r := f.Next(float64(i)); r == nil || r.ID != int64(i) {
			t.Fatalf("iteration %d popped %v", i, r)
		}
	}
	if f.Len() != 0 {
		t.Fatalf("len = %d after drain", f.Len())
	}
	if f.q.Cap() > 16 {
		t.Fatalf("backing array holds %d slots after 1M requests at depth 1", f.q.Cap())
	}
}

// Ring wrap-around and resizing must preserve FIFO order under arbitrary
// enqueue/dequeue interleavings.
func TestFIFOOrderAcrossWrapAndResize(t *testing.T) {
	f := NewFIFO()
	var want []int64
	next := int64(0)
	rngStep := func(i int) int { return int((int64(i)*2654435761 + 1) % 7) } // deterministic pseudo-random
	for i := 0; i < 10000; i++ {
		if rngStep(i) < 4 {
			f.Enqueue(req(next, 1, 0))
			want = append(want, next)
			next++
		} else if len(want) > 0 {
			r := f.Next(0)
			if r == nil || r.ID != want[0] {
				t.Fatalf("popped %v, want %d", r, want[0])
			}
			want = want[1:]
		}
		if f.Len() != len(want) {
			t.Fatalf("len = %d, want %d", f.Len(), len(want))
		}
	}
}

func lenJCT(r *Request) float64 { return float64(r.Len()) }

func TestSRJFPicksShortest(t *testing.T) {
	s := NewSRJF(lenJCT)
	s.Enqueue(req(1, 100, 0))
	s.Enqueue(req(2, 10, 0))
	s.Enqueue(req(3, 50, 0))
	if r := s.Next(0); r.ID != 2 {
		t.Fatalf("SRJF popped %d, want 2", r.ID)
	}
	if r := s.Next(0); r.ID != 3 {
		t.Fatalf("SRJF popped %d, want 3", r.ID)
	}
	if s.Len() != 1 {
		t.Fatalf("len = %d, want 1", s.Len())
	}
}

func TestSRJFFreezesJCTAtEnqueue(t *testing.T) {
	// JCT function that changes after enqueue must not affect SRJF order.
	mult := 1.0
	jct := func(r *Request) float64 { return mult * float64(r.Len()) }
	s := NewSRJF(jct)
	s.Enqueue(req(1, 10, 0))
	mult = -1 // would invert the order if re-evaluated
	s.Enqueue(req(2, 20, 0))
	// Frozen JCTs: r1=10, r2=-20 → r2 first.
	if r := s.Next(0); r.ID != 2 {
		t.Fatalf("SRJF popped %d; static JCT not frozen at enqueue", r.ID)
	}
}

func TestCalibratedReevaluatesEveryDecision(t *testing.T) {
	// The cache-aware JCT changes between decisions; Calibrated must see it.
	cached := map[int64]bool{}
	jct := func(r *Request) float64 {
		if cached[r.ID] {
			return 1
		}
		return float64(r.Len())
	}
	c := NewCalibrated(jct, 0)
	c.Enqueue(req(1, 100, 0))
	c.Enqueue(req(2, 50, 0))
	c.Enqueue(req(3, 70, 0))
	if r := c.Next(0); r.ID != 2 {
		t.Fatalf("first pick %d, want 2", r.ID)
	}
	// Request 1 suddenly hits cache (e.g. shares prefix with 2's insert).
	cached[1] = true
	if r := c.Next(0); r.ID != 1 {
		t.Fatalf("after calibration pick %d, want 1", r.ID)
	}
}

func TestCalibratedFairnessOffset(t *testing.T) {
	// λ > 0: a long-waiting long request beats a fresh short one once
	// λ·T_queue exceeds the JCT difference.
	c := NewCalibrated(lenJCT, 500) // 0.5s credit per second waited
	old := req(1, 1000, 0)          // JCT 1000
	fresh := req(2, 10, 2000)       // JCT 10
	c.Enqueue(old)
	c.Enqueue(fresh)
	// At t=4000: old's credit = 0.5*4000 = 2000 > JCT gap 990.
	if r := c.Next(4000); r.ID != 1 {
		t.Fatalf("starved request not prioritized, got %d", r.ID)
	}
}

func TestCalibratedLambdaZeroIsPureSRJF(t *testing.T) {
	c := NewCalibrated(lenJCT, 0)
	c.Enqueue(req(1, 1000, 0)) // ancient but long
	c.Enqueue(req(2, 10, 999))
	if r := c.Next(1000); r.ID != 2 {
		t.Fatalf("λ=0 pick %d, want 2 (pure SRJF)", r.ID)
	}
}

func TestCalibratedScore(t *testing.T) {
	c := NewCalibrated(lenJCT, 1000) // 1s credit per second waited
	r := req(1, 100, 5)
	if got := c.Score(r, 15); got != 100-10 {
		t.Fatalf("score = %v, want 90", got)
	}
	// Arrival in the future clamps queue time at 0.
	if got := c.Score(r, 0); got != 100 {
		t.Fatalf("score = %v, want 100", got)
	}
}

// Ties on the calibrated key prefer the longer request (more cached
// prefix to reuse at equal miss-cost), then enqueue order — identically in
// the heap scheduler and the reference sweep.
func TestCalibratedTieBreak(t *testing.T) {
	constJCT := func(r *Request) float64 { return 10 }
	for _, s := range []Scheduler{NewCalibrated(constJCT, 0), NewCalibratedSweep(constJCT, 0)} {
		s.Enqueue(req(1, 5, 0))
		s.Enqueue(req(2, 9, 0))
		s.Enqueue(req(3, 9, 0))
		for _, want := range []int64{2, 3, 1} {
			if r := s.Next(0); r.ID != want {
				t.Fatalf("%s popped %d, want %d", s.Name(), r.ID, want)
			}
		}
	}
}

// A batch request with a weight > 1 yields to an interactive request of
// equal (or moderately larger) JCT, in the heap scheduler and the sweep
// identically; weight 1 (default) stays class-blind.
func TestClassWeightsDeprioritizeBatch(t *testing.T) {
	mk := func() []*Request {
		batch := req(1, 100, 0)
		batch.Class = ClassBatch
		inter := req(2, 150, 0) // longer → larger JCT, but interactive
		return []*Request{batch, inter}
	}
	for _, tc := range []struct {
		weights map[Class]float64
		want    []int64
	}{
		{nil, []int64{1, 2}},                                // class-blind: shorter batch first
		{map[Class]float64{ClassBatch: 2}, []int64{2, 1}},   // 2·100 > 150: interactive first
		{map[Class]float64{ClassBatch: 1.2}, []int64{1, 2}}, // 1.2·100 < 150: still batch first
	} {
		heap := NewCalibrated(lenJCT, 0)
		swp := NewCalibratedSweep(lenJCT, 0)
		if tc.weights != nil {
			heap.SetClassWeights(tc.weights)
			swp.SetClassWeights(tc.weights)
		}
		for _, s := range []Scheduler{heap, swp} {
			for _, r := range mk() {
				s.Enqueue(r)
			}
			for _, want := range tc.want {
				if r := s.Next(0); r.ID != want {
					t.Fatalf("%s with weights %v popped %d, want %d", s.Name(), tc.weights, r.ID, want)
				}
			}
		}
	}
}

func TestSetClassWeightsRejectsBadInput(t *testing.T) {
	c := NewCalibrated(lenJCT, 0)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("non-positive weight accepted")
			}
		}()
		c.SetClassWeights(map[Class]float64{ClassBatch: 0})
	}()
	c.Enqueue(req(1, 10, 0))
	defer func() {
		if recover() == nil {
			t.Fatal("SetClassWeights accepted with requests waiting")
		}
	}()
	c.SetClassWeights(map[Class]float64{ClassBatch: 2})
}

func TestParseClass(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Class
	}{{"", ClassInteractive}, {"interactive", ClassInteractive}, {"batch", ClassBatch}} {
		got, err := ParseClass(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseClass(%q) = %v, %v", tc.in, got, err)
		}
	}
	if _, err := ParseClass("bulk"); err == nil {
		t.Fatal("unknown class accepted")
	}
	if ClassInteractive.String() != "interactive" || ClassBatch.String() != "batch" {
		t.Fatal("class labels drifted")
	}
}

func TestSetHashChainRejectsWaitingRequests(t *testing.T) {
	c := NewCalibrated(lenJCT, 0)
	c.Enqueue(req(1, 10, 0))
	defer func() {
		if recover() == nil {
			t.Fatal("SetHashChain accepted with requests waiting")
		}
	}()
	c.SetHashChain(func(r *Request) []uint64 { return nil })
}

func TestNilJCTPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil JCT accepted")
		}
	}()
	NewSRJF(nil)
}

// Property: every scheduler returns each enqueued request exactly once.
func TestSchedulersConserveRequests(t *testing.T) {
	f := func(lens []uint16) bool {
		if len(lens) == 0 {
			return true
		}
		mks := func() []*Request {
			rs := make([]*Request, len(lens))
			for i, l := range lens {
				rs[i] = req(int64(i), int(l%5000)+1, float64(i))
			}
			return rs
		}
		for _, s := range []Scheduler{NewFIFO(), NewSRJF(lenJCT), NewCalibrated(lenJCT, 500), NewCalibratedSweep(lenJCT, 500)} {
			seen := make(map[int64]bool)
			for _, r := range mks() {
				s.Enqueue(r)
			}
			for i := 0; i < len(lens); i++ {
				r := s.Next(float64(1000 + i))
				if r == nil || seen[r.ID] {
					return false
				}
				seen[r.ID] = true
			}
			if s.Next(1e9) != nil || s.Len() != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSchedulerNames(t *testing.T) {
	for _, s := range []Scheduler{NewFIFO(), NewSRJF(lenJCT), NewCalibrated(lenJCT, 500), NewCalibratedSweep(lenJCT, 500)} {
		if s.Name() == "" {
			t.Fatal("empty scheduler name")
		}
	}
}
