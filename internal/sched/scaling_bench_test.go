package sched_test

// BenchmarkSchedulerScaling quantifies the incremental Algorithm-1 win:
// per-dispatch cost of the reference O(queue × blocks) sweep versus the
// indexed-heap scheduler at queue depths 256 / 1k / 4k.
//
// The cache is sized to the working set and warmed before timing — the
// paper's prefix-reuse regime, and the regime that separates the two
// implementations: the sweep re-walks every waiting request's full hash
// chain on every dispatch, while the heap pops in O(log n) and rekeys
// only on cache membership changes. (Under cache thrash the sweep's
// per-request walk short-circuits at the first missing block, which
// hides its asymptotics without making it schedule any better.)

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/engine"
	"repro/internal/kvcache"
	"repro/internal/sched"
)

func BenchmarkSchedulerScaling(b *testing.B) {
	for _, depth := range []int{256, 1024, 4096} {
		for _, mode := range []string{"sweep", "incremental"} {
			b.Run(fmt.Sprintf("%s/depth=%d", mode, depth), func(b *testing.B) {
				benchDispatch(b, depth, mode == "incremental")
			})
		}
	}
}

func benchDispatch(b *testing.B, depth int, incremental bool) {
	const sharedBlocks, tailBlocks = 16, 48 // 1024-token requests
	users := depth / 8
	distinct := users*sharedBlocks + depth*tailBlocks
	mgr, err := kvcache.New(kvcache.Config{
		BlockTokens:   eqBlockTokens,
		BytesPerToken: 1,
		CapacityBytes: int64(distinct) * eqBlockTokens,
	})
	if err != nil {
		b.Fatal(err)
	}
	var s sched.Scheduler
	if incremental {
		c := sched.NewCalibrated(missJCT(mgr), 500)
		engine.AttachIncremental(c, mgr)
		s = c
	} else {
		s = sched.NewCalibratedSweep(missJCT(mgr), 500)
	}

	rng := rand.New(rand.NewSource(1))
	reqs := make([]*sched.Request, depth)
	for i := range reqs {
		user := rng.Intn(users)
		toks := make([]uint64, 0, (sharedBlocks+tailBlocks)*eqBlockTokens)
		for j := 0; j < sharedBlocks*eqBlockTokens; j++ {
			toks = append(toks, uint64(user+1)<<40|uint64(j))
		}
		for j := 0; j < tailBlocks*eqBlockTokens; j++ {
			toks = append(toks, uint64(i+1)<<16|uint64(j))
		}
		reqs[i] = &sched.Request{ID: int64(i), UserID: user, Tokens: toks}
	}
	// Warm the cache to steady state, then enqueue the full queue.
	for _, r := range reqs {
		mgr.InsertH(chainOf(r), 0)
	}
	for _, r := range reqs {
		s.Enqueue(r)
	}

	now := 0.0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now += 0.01
		r := s.Next(now)
		mgr.InsertH(chainOf(r), now) // completion re-caches its chain
		r.ArrivalTime = now
		s.Enqueue(r)
	}
}
