// Package sched defines prefill-only requests and the scheduling policies
// the paper compares: first-in-first-out (FIFO), shortest-remaining-job-
// first with arrival-time JCT (SRJF), and PrefillOnly's SRJF with
// continuous JCT calibration and a queueing-time fairness offset
// (Algorithm 1).
package sched

// Request is one prefill-only request travelling through an engine.
type Request struct {
	// ID is unique within a run.
	ID int64
	// UserID identifies the request's user for routing and prefix
	// sharing (requests of one user share a profile prefix).
	UserID int
	// Tokens is the tokenized prompt. Prefix caching is content-
	// addressed over this sequence.
	Tokens []uint64
	// ArrivalTime is the simulated arrival timestamp in seconds.
	ArrivalTime float64

	// AllowedTokens optionally constrains the output distribution (§2.3:
	// e.g. []string{"Yes","No"}); interpreted by the serving frontend.
	AllowedTokens []string

	// BlockHashes caches the content-addressed prefix-cache hash chain
	// of Tokens for HashBlockTokens-sized blocks. Engines populate it
	// lazily (via kvcache.BlockHashes) so repeated cache operations on
	// large prompts do not re-hash them.
	BlockHashes     []uint64
	HashBlockTokens int
}

// Len returns the input length in tokens.
func (r *Request) Len() int { return len(r.Tokens) }

// JCTFunc estimates the JCT of a request at the present moment (it
// consults the prefix cache, so its value changes over time).
type JCTFunc func(r *Request) float64

// Scheduler selects the next request to run. Implementations are not
// goroutine-safe; engines are single-threaded event handlers.
type Scheduler interface {
	// Name identifies the policy.
	Name() string
	// Enqueue adds a request to the waiting queue.
	Enqueue(r *Request)
	// Next removes and returns the request to run now, or nil when the
	// queue is empty. now is the simulated time.
	Next(now float64) *Request
	// Len returns the number of waiting requests.
	Len() int
}

// --- FIFO ---

// FIFO is first-come-first-serve scheduling (the PagedAttention baseline's
// policy). The queue is a ring buffer: dequeued slots are reused, so the
// backing array is bounded by the peak queue depth — not by the total
// requests ever enqueued — and it shrinks when the queue drains.
type FIFO struct {
	buf   []*Request
	head  int
	count int
}

// NewFIFO returns an empty FIFO scheduler.
func NewFIFO() *FIFO { return &FIFO{} }

// Name implements Scheduler.
func (f *FIFO) Name() string { return "fifo" }

// Enqueue implements Scheduler.
func (f *FIFO) Enqueue(r *Request) {
	if f.count == len(f.buf) {
		f.resize(2 * f.count)
	}
	f.buf[(f.head+f.count)%len(f.buf)] = r
	f.count++
}

// Len implements Scheduler.
func (f *FIFO) Len() int { return f.count }

// Next implements Scheduler.
func (f *FIFO) Next(now float64) *Request {
	if f.count == 0 {
		return nil
	}
	r := f.buf[f.head]
	f.buf[f.head] = nil
	f.head = (f.head + 1) % len(f.buf)
	f.count--
	if len(f.buf) > minFIFOCap && f.count <= len(f.buf)/4 {
		f.resize(len(f.buf) / 2)
	}
	return r
}

const minFIFOCap = 8

// resize moves the live window into a fresh backing array of the given
// capacity (at least minFIFOCap).
func (f *FIFO) resize(n int) {
	if n < minFIFOCap {
		n = minFIFOCap
	}
	buf := make([]*Request, n)
	for i := 0; i < f.count; i++ {
		buf[i] = f.buf[(f.head+i)%len(f.buf)]
	}
	f.buf = buf
	f.head = 0
}
