// Package sched defines prefill-only requests and the scheduling policies
// the paper compares: first-in-first-out (FIFO), shortest-remaining-job-
// first with arrival-time JCT (SRJF), and PrefillOnly's SRJF with
// continuous JCT calibration and a queueing-time fairness offset
// (Algorithm 1).
package sched

import (
	"fmt"

	"repro/internal/ringbuf"
)

// Class is a request's SLO class. Serving traffic is stratified:
// latency-sensitive interactive requests (a user is waiting on the
// answer) and throughput-oriented batch requests (offline pipelines that
// tolerate queueing and shedding). The class threads through admission
// control (per-class backlog budgets), scheduling (per-class JCT weights)
// and autoscaling (only interactive pressure provisions capacity).
type Class uint8

const (
	// ClassInteractive is the latency-sensitive class and the zero value:
	// unlabeled requests are treated as interactive, so single-tenant
	// workloads keep their pre-class behavior exactly.
	ClassInteractive Class = iota
	// ClassBatch is the throughput-oriented class: shed first under
	// pressure, deprioritized by class-weighted scheduling.
	ClassBatch
	// NumClasses sizes per-class arrays indexed by Class.
	NumClasses = 2
)

// String returns the class's label ("interactive", "batch").
func (c Class) String() string {
	switch c {
	case ClassInteractive:
		return "interactive"
	case ClassBatch:
		return "batch"
	default:
		return fmt.Sprintf("class(%d)", uint8(c))
	}
}

// ParseClass maps a label to its Class; the empty string is interactive
// (the default for unlabeled traffic).
func ParseClass(s string) (Class, error) {
	switch s {
	case "", "interactive":
		return ClassInteractive, nil
	case "batch":
		return ClassBatch, nil
	default:
		return 0, fmt.Errorf("sched: unknown SLO class %q", s)
	}
}

// Classes returns every class in index order.
func Classes() []Class { return []Class{ClassInteractive, ClassBatch} }

// Request is one prefill-only request travelling through an engine.
type Request struct {
	// ID is unique within a run.
	ID int64
	// UserID identifies the request's user for routing and prefix
	// sharing (requests of one user share a profile prefix).
	UserID int
	// Tokens is the tokenized prompt. Prefix caching is content-
	// addressed over this sequence.
	Tokens []uint64
	// ArrivalTime is the simulated arrival timestamp in seconds.
	ArrivalTime float64
	// Class is the request's SLO class (zero value: interactive).
	Class Class

	// AllowedTokens optionally constrains the output distribution (§2.3:
	// e.g. []string{"Yes","No"}); interpreted by the serving frontend.
	AllowedTokens []string

	// EstimatedSeconds is the scheduler's JCT estimate for this request,
	// stamped when the policy dequeues it for execution (0 when the
	// policy does not estimate, e.g. FIFO). The trace layer reports it
	// alongside the measured execution time so estimator error is
	// observable per request.
	EstimatedSeconds float64

	// BlockHashes caches the content-addressed prefix-cache hash chain
	// of Tokens for HashBlockTokens-sized blocks. Engines populate it
	// lazily (via kvcache.BlockHashes) so repeated cache operations on
	// large prompts do not re-hash them.
	BlockHashes     []uint64
	HashBlockTokens int

	// Retries counts how many times the request has been orphaned by an
	// instance failure and re-admitted (internal/chaos). Admission sheds
	// the request once it exceeds the injector's retry budget.
	Retries int
}

// Len returns the input length in tokens.
func (r *Request) Len() int { return len(r.Tokens) }

// JCTFunc estimates the JCT of a request at the present moment (it
// consults the prefix cache, so its value changes over time).
type JCTFunc func(r *Request) float64

// Scheduler selects the next request to run. Implementations are not
// goroutine-safe; engines are single-threaded event handlers.
type Scheduler interface {
	// Name identifies the policy.
	Name() string
	// Enqueue adds a request to the waiting queue.
	Enqueue(r *Request)
	// Next removes and returns the request to run now, or nil when the
	// queue is empty. now is the simulated time.
	Next(now float64) *Request
	// Len returns the number of waiting requests.
	Len() int
}

// --- FIFO ---

// FIFO is first-come-first-serve scheduling (the PagedAttention baseline's
// policy). The queue is a shared ring buffer (internal/ringbuf): dequeued
// slots are reused, so the backing array is bounded by the peak queue
// depth — not by the total requests ever enqueued — and it shrinks when
// the queue drains.
type FIFO struct {
	q ringbuf.Ring[*Request]
}

// NewFIFO returns an empty FIFO scheduler.
func NewFIFO() *FIFO { return &FIFO{} }

// Name implements Scheduler.
func (f *FIFO) Name() string { return "fifo" }

// Enqueue implements Scheduler.
func (f *FIFO) Enqueue(r *Request) { f.q.PushBack(r) }

// Len implements Scheduler.
func (f *FIFO) Len() int { return f.q.Len() }

// Next implements Scheduler.
func (f *FIFO) Next(now float64) *Request {
	r, _ := f.q.PopFront()
	return r
}
