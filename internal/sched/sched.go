// Package sched defines prefill-only requests and the scheduling policies
// the paper compares: first-in-first-out (FIFO), shortest-remaining-job-
// first with arrival-time JCT (SRJF), and PrefillOnly's SRJF with
// continuous JCT calibration and a queueing-time fairness offset
// (Algorithm 1).
package sched

import "fmt"

// Request is one prefill-only request travelling through an engine.
type Request struct {
	// ID is unique within a run.
	ID int64
	// UserID identifies the request's user for routing and prefix
	// sharing (requests of one user share a profile prefix).
	UserID int
	// Tokens is the tokenized prompt. Prefix caching is content-
	// addressed over this sequence.
	Tokens []uint64
	// ArrivalTime is the simulated arrival timestamp in seconds.
	ArrivalTime float64

	// AllowedTokens optionally constrains the output distribution (§2.3:
	// e.g. []string{"Yes","No"}); interpreted by the serving frontend.
	AllowedTokens []string

	// BlockHashes caches the content-addressed prefix-cache hash chain
	// of Tokens for HashBlockTokens-sized blocks. Engines populate it
	// lazily (via kvcache.BlockHashes) so repeated cache operations on
	// large prompts do not re-hash them.
	BlockHashes     []uint64
	HashBlockTokens int

	// scheduler bookkeeping
	staticJCT float64 // SRJF: JCT frozen at enqueue time
}

// Len returns the input length in tokens.
func (r *Request) Len() int { return len(r.Tokens) }

// JCTFunc estimates the JCT of a request at the present moment (it
// consults the prefix cache, so its value changes over time).
type JCTFunc func(r *Request) float64

// Scheduler selects the next request to run. Implementations are not
// goroutine-safe; engines are single-threaded event handlers.
type Scheduler interface {
	// Name identifies the policy.
	Name() string
	// Enqueue adds a request to the waiting queue.
	Enqueue(r *Request)
	// Next removes and returns the request to run now, or nil when the
	// queue is empty. now is the simulated time.
	Next(now float64) *Request
	// Len returns the number of waiting requests.
	Len() int
}

// --- FIFO ---

// FIFO is first-come-first-serve scheduling (the PagedAttention baseline's
// policy).
type FIFO struct {
	q []*Request
}

// NewFIFO returns an empty FIFO scheduler.
func NewFIFO() *FIFO { return &FIFO{} }

// Name implements Scheduler.
func (f *FIFO) Name() string { return "fifo" }

// Enqueue implements Scheduler.
func (f *FIFO) Enqueue(r *Request) { f.q = append(f.q, r) }

// Len implements Scheduler.
func (f *FIFO) Len() int { return len(f.q) }

// Next implements Scheduler.
func (f *FIFO) Next(now float64) *Request {
	if len(f.q) == 0 {
		return nil
	}
	r := f.q[0]
	f.q[0] = nil
	f.q = f.q[1:]
	return r
}

// --- SRJF (static) ---

// SRJF is shortest-remaining-job-first with the JCT estimated once, at
// arrival (§6.2's "traditional JCT-based scheduling"). It fails to react
// when prefix caches appear or are evicted after enqueue.
type SRJF struct {
	jct JCTFunc
	q   []*Request
}

// NewSRJF returns an SRJF scheduler that freezes each request's JCT at
// enqueue time using the supplied estimator.
func NewSRJF(jct JCTFunc) *SRJF {
	if jct == nil {
		panic("sched: SRJF requires a JCT function")
	}
	return &SRJF{jct: jct}
}

// Name implements Scheduler.
func (s *SRJF) Name() string { return "srjf" }

// Enqueue implements Scheduler.
func (s *SRJF) Enqueue(r *Request) {
	r.staticJCT = s.jct(r)
	s.q = append(s.q, r)
}

// Len implements Scheduler.
func (s *SRJF) Len() int { return len(s.q) }

// Next implements Scheduler.
func (s *SRJF) Next(now float64) *Request {
	best := -1
	for i, r := range s.q {
		if best < 0 || r.staticJCT < s.q[best].staticJCT {
			best = i
		}
	}
	if best < 0 {
		return nil
	}
	return s.remove(best)
}

func (s *SRJF) remove(i int) *Request {
	r := s.q[i]
	s.q[i] = s.q[len(s.q)-1]
	s.q[len(s.q)-1] = nil
	s.q = s.q[:len(s.q)-1]
	return r
}

// --- SRJF with continuous JCT calibration (Algorithm 1) ---

// Calibrated is PrefillOnly's scheduler: before every scheduling decision
// it re-estimates the JCT of every waiting request against the current
// prefix-cache contents, subtracts a queueing-time fairness credit
// (λ·T_queue), and runs the request with the minimum score.
type Calibrated struct {
	jct JCTFunc
	// Lambda is the fairness parameter, in milliseconds of JCT credit
	// per second of queueing (see DESIGN.md §5 for the unit convention;
	// the paper's default is 500).
	Lambda float64
	q      []*Request
}

// NewCalibrated returns the calibrated scheduler. jct is evaluated fresh
// at every decision.
func NewCalibrated(jct JCTFunc, lambda float64) *Calibrated {
	if jct == nil {
		panic("sched: Calibrated requires a JCT function")
	}
	return &Calibrated{jct: jct, Lambda: lambda}
}

// Name implements Scheduler.
func (c *Calibrated) Name() string {
	return fmt.Sprintf("srjf-calibrated(λ=%g)", c.Lambda)
}

// Enqueue implements Scheduler.
func (c *Calibrated) Enqueue(r *Request) { c.q = append(c.q, r) }

// Len implements Scheduler.
func (c *Calibrated) Len() int { return len(c.q) }

// Score returns the Algorithm-1 score of a request at time now:
// jct(n_input, n_cached) − λ·T_queue. Exported for tests and diagnostics.
func (c *Calibrated) Score(r *Request, now float64) float64 {
	queue := now - r.ArrivalTime
	if queue < 0 {
		queue = 0
	}
	return c.jct(r) - c.Lambda/1000*queue
}

// Next implements Scheduler: one full calibration sweep, then the minimum
// score wins.
func (c *Calibrated) Next(now float64) *Request {
	best := -1
	bestScore := 0.0
	for i, r := range c.q {
		score := c.Score(r, now)
		if best < 0 || score < bestScore {
			best = i
			bestScore = score
		}
	}
	if best < 0 {
		return nil
	}
	r := c.q[best]
	c.q[best] = c.q[len(c.q)-1]
	c.q[len(c.q)-1] = nil
	c.q = c.q[:len(c.q)-1]
	return r
}
