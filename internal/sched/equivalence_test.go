package sched_test

// Equivalence oracle for the incremental Algorithm-1 scheduler: across
// seeded randomized workloads with prefix sharing, cache churn, LRU
// evictions, reservation pressure, pin churn and host offloading, the
// indexed-heap Calibrated must emit a dispatch order byte-identical to
// the reference full-sweep implementation driven against an identical
// twin cache.

import (
	"math/rand"
	"testing"

	"repro/internal/engine"
	"repro/internal/kvcache"
	"repro/internal/sched"
)

const eqBlockTokens = 16

// chainOf returns the request's memoized block-hash chain.
func chainOf(r *sched.Request) []uint64 {
	return engine.HashesOf(r, eqBlockTokens)
}

// missJCT estimates JCT as scaled cache-miss tokens against m, like the
// paper's proxy estimator.
func missJCT(m *kvcache.Manager) sched.JCTFunc {
	return func(r *sched.Request) float64 {
		cached := m.PeekH(chainOf(r))
		if cached > r.Len() {
			cached = r.Len()
		}
		return 0.01 * float64(r.Len()-cached)
	}
}

func TestIncrementalCalibratedMatchesSweep(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		mkMgr := func() *kvcache.Manager {
			m, err := kvcache.New(kvcache.Config{
				BlockTokens:       eqBlockTokens,
				BytesPerToken:     1,
				CapacityBytes:     48 * eqBlockTokens,  // 48 blocks: tight, constant eviction
				HostCapacityBytes: 128 * eqBlockTokens, // §9 offload tier enabled
			})
			if err != nil {
				t.Fatal(err)
			}
			return m
		}
		// Twin caches driven with identical operation sequences; the
		// incremental scheduler additionally receives mInc's change feed.
		// Half the seeds run class-weighted (batch yields to interactive):
		// the heap-vs-sweep equivalence must hold with SLO class weights
		// folded into the key exactly as in the class-blind default.
		mInc, mSweep := mkMgr(), mkMgr()
		inc := sched.NewCalibrated(missJCT(mInc), 500)
		engine.AttachIncremental(inc, mInc)
		sweep := sched.NewCalibratedSweep(missJCT(mSweep), 500)
		if seed%2 == 1 {
			weights := map[sched.Class]float64{sched.ClassBatch: 2 + float64(seed)}
			inc.SetClassWeights(weights)
			sweep.SetClassWeights(weights)
		}

		nextID := int64(1)
		now := 0.0
		mkReq := func() *sched.Request {
			user := rng.Intn(6)
			shared := rng.Intn(8) * eqBlockTokens
			tail := (rng.Intn(8) + 1) * eqBlockTokens
			toks := make([]uint64, 0, shared+tail)
			for i := 0; i < shared; i++ {
				toks = append(toks, uint64(user+1)<<40|uint64(i))
			}
			for i := 0; i < tail; i++ {
				toks = append(toks, uint64(nextID)<<16|uint64(i))
			}
			class := sched.ClassInteractive
			if rng.Intn(3) == 0 {
				class = sched.ClassBatch
			}
			r := &sched.Request{ID: nextID, UserID: user, Tokens: toks, ArrivalTime: now, Class: class}
			nextID++
			return r
		}
		both := func(op func(m *kvcache.Manager) func()) (relInc, relSweep func()) {
			return op(mInc), op(mSweep)
		}
		dispatch := func() bool {
			a := inc.Next(now)
			b := sweep.Next(now)
			switch {
			case a == nil && b == nil:
				return false
			case a == nil || b == nil || a.ID != b.ID:
				t.Fatalf("seed %d t=%.3f: incremental dispatched %v, sweep %v", seed, now, a, b)
			}
			// Completion: cache what was computed, in both caches.
			mInc.InsertH(chainOf(a), now)
			mSweep.InsertH(chainOf(a), now)
			return true
		}

		var releases [][2]func() // open reservations/pins, mirrored pairwise
		for op := 0; op < 800; op++ {
			now += rng.Float64() * 0.3
			switch rng.Intn(12) {
			case 0, 1, 2, 3, 4:
				r := mkReq()
				inc.Enqueue(r)
				sweep.Enqueue(r)
			case 5, 6, 7:
				dispatch()
			case 8: // foreign completion: insert a never-scheduled chain
				h := chainOf(mkReq())
				mInc.InsertH(h, now)
				mSweep.InsertH(h, now)
			case 9: // reservation pressure forces evictions
				need := int64(rng.Intn(24) * eqBlockTokens)
				a, b := both(func(m *kvcache.Manager) func() {
					_, rel := m.Reserve(need)
					return rel
				})
				releases = append(releases, [2]func(){a, b})
			case 10: // pin churn (membership-neutral: must not rekey)
				h := chainOf(mkReq())
				a, b := both(func(m *kvcache.Manager) func() {
					_, rel := m.PinH(h, now)
					return rel
				})
				releases = append(releases, [2]func(){a, b})
			case 11:
				if len(releases) > 0 {
					i := rng.Intn(len(releases))
					releases[i][0]()
					releases[i][1]()
					releases = append(releases[:i], releases[i+1:]...)
				} else {
					mInc.EvictAll()
					mSweep.EvictAll()
				}
			}
			if inc.Len() != sweep.Len() {
				t.Fatalf("seed %d: queue lengths diverged (%d vs %d)", seed, inc.Len(), sweep.Len())
			}
		}
		for _, rel := range releases {
			rel[0]()
			rel[1]()
		}
		for dispatch() {
			now += rng.Float64() * 0.3
		}
		if err := mInc.CheckInvariants(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}
