// Package ringbuf is the repository's one sanctioned FIFO queue pattern:
// a growable ring buffer whose backing array is bounded by the peak queue
// depth and shrinks again when the queue drains.
//
// It exists because the naive `q = q[1:]` slice advance is a memory-
// retention bug: the backing array is never released (every popped element
// stays reachable until the slice is regrown past it), so a long-lived
// queue under churn pins memory proportional to everything ever enqueued,
// not to what is waiting. PR 2 fixed that pattern in the scheduler's FIFO;
// this package extracts the fix so the cluster routing table, the
// pipeline-parallel stage handoff and the host-tier eviction queue reuse
// it instead of hand-copying a fourth variant.
package ringbuf

// minCap is the smallest backing array kept once the ring has allocated.
const minCap = 8

// Ring is a FIFO queue over a circular backing array. The zero value is
// an empty ring ready for use. Dequeued slots are zeroed so popped
// elements do not linger reachable through the backing array.
type Ring[T any] struct {
	buf   []T
	head  int
	count int
}

// Len returns the number of queued elements.
func (r *Ring[T]) Len() int { return r.count }

// Cap returns the backing array's capacity (0 before the first push).
// Exposed so tests can assert the array stays bounded by peak depth.
func (r *Ring[T]) Cap() int { return len(r.buf) }

// PushBack appends v at the tail.
func (r *Ring[T]) PushBack(v T) {
	if r.count == len(r.buf) {
		r.resize(2 * r.count)
	}
	r.buf[(r.head+r.count)%len(r.buf)] = v
	r.count++
}

// PopFront removes and returns the head element; ok is false on an empty
// ring. The vacated slot is zeroed, and the backing array halves once the
// ring drains below a quarter of it.
func (r *Ring[T]) PopFront() (v T, ok bool) {
	if r.count == 0 {
		return v, false
	}
	var zero T
	v = r.buf[r.head]
	r.buf[r.head] = zero
	r.head = (r.head + 1) % len(r.buf)
	r.count--
	if len(r.buf) > minCap && r.count <= len(r.buf)/4 {
		r.resize(len(r.buf) / 2)
	}
	return v, true
}

// At returns the i-th queued element counting from the head (0 is the
// oldest) without removing it. It panics when i is out of range. Readers
// that only need to walk the live window (the trace exporter over the
// flight-recorder ring) use this instead of draining and re-pushing.
func (r *Ring[T]) At(i int) T {
	if i < 0 || i >= r.count {
		panic("ringbuf: index out of range")
	}
	return r.buf[(r.head+i)%len(r.buf)]
}

// Reserve grows the backing array to hold at least n elements without
// moving the shrink floor: a ring that will run at a known steady depth
// (the flight recorder's span capacity) preallocates once so pushes at
// that depth never resize mid-flight.
func (r *Ring[T]) Reserve(n int) {
	if n <= len(r.buf) {
		return
	}
	r.resize(n)
}

// resize moves the live window into a fresh backing array of the given
// capacity (at least minCap).
func (r *Ring[T]) resize(n int) {
	if n < minCap {
		n = minCap
	}
	buf := make([]T, n)
	for i := 0; i < r.count; i++ {
		buf[i] = r.buf[(r.head+i)%len(r.buf)]
	}
	r.buf = buf
	r.head = 0
}
