package ringbuf

import "testing"

func TestFIFOOrderAcrossWrapAndResize(t *testing.T) {
	var r Ring[int64]
	var want []int64
	next := int64(0)
	step := func(i int) int { return int((int64(i)*2654435761 + 1) % 7) }
	for i := 0; i < 10000; i++ {
		if step(i) < 4 {
			r.PushBack(next)
			want = append(want, next)
			next++
		} else if len(want) > 0 {
			v, ok := r.PopFront()
			if !ok || v != want[0] {
				t.Fatalf("popped %d (ok=%v), want %d", v, ok, want[0])
			}
			want = want[1:]
		}
		if r.Len() != len(want) {
			t.Fatalf("len = %d, want %d", r.Len(), len(want))
		}
	}
}

// The backing array must stay bounded by peak depth under sustained churn
// — the failure mode of the `q = q[1:]` pattern this package replaces.
func TestBoundedCapacityUnderSustainedChurn(t *testing.T) {
	var r Ring[*int]
	for i := 0; i < 1_000_000; i++ {
		v := i
		r.PushBack(&v)
		if got, ok := r.PopFront(); !ok || *got != i {
			t.Fatalf("iteration %d popped %v", i, got)
		}
	}
	if r.Len() != 0 {
		t.Fatalf("len = %d after drain", r.Len())
	}
	if r.Cap() > 2*minCap {
		t.Fatalf("backing array holds %d slots after 1M pushes at depth 1", r.Cap())
	}
	// Dequeued slots must be zeroed so popped elements are collectable.
	for i := 0; i < r.Cap(); i++ {
		if r.buf[i] != nil {
			t.Fatalf("drained ring retains pointer at slot %d", i)
		}
	}
}

func TestShrinksAfterDrain(t *testing.T) {
	var r Ring[int]
	for i := 0; i < 4096; i++ {
		r.PushBack(i)
	}
	peak := r.Cap()
	if peak < 4096 {
		t.Fatalf("cap %d below content %d", peak, 4096)
	}
	for i := 0; i < 4096; i++ {
		if v, ok := r.PopFront(); !ok || v != i {
			t.Fatalf("popped %d (ok=%v), want %d", v, ok, i)
		}
	}
	if r.Cap() > minCap {
		t.Fatalf("cap %d after drain, want <= %d", r.Cap(), minCap)
	}
}

func TestEmptyPop(t *testing.T) {
	var r Ring[string]
	if _, ok := r.PopFront(); ok {
		t.Fatal("empty ring popped")
	}
	r.PushBack("a")
	if v, ok := r.PopFront(); !ok || v != "a" {
		t.Fatalf("popped %q (ok=%v)", v, ok)
	}
	if _, ok := r.PopFront(); ok {
		t.Fatal("drained ring popped")
	}
}
