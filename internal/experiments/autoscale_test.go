package experiments

import "testing"

// TestAutoscaleSweep is the autoscale acceptance check: on the square-wave
// burst scenario the elastic pool must provision fewer GPU-seconds than
// the fixed peak-sized fleet at an equal-or-better shed rate, and the
// trough-sized fleet must demonstrate why scaling is needed (it sheds).
func TestAutoscaleSweep(t *testing.T) {
	rows, err := AutoscaleSweep(1, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("want 3 rows, got %d", len(rows))
	}
	byMode := make(map[string]AutoscaleSweepRow)
	for _, r := range rows {
		t.Logf("%-15s meanJCT=%7.3fs p99=%7.3fs shed=%.3f gpu-s=%8.1f savings=%5.1f%% pool=[%d,%d] ups=%d downs=%d cold=%.2fs",
			r.Mode, r.MeanJCT, r.P99JCT, r.ShedRate, r.GPUSeconds, 100*r.GPUSavingsVsPeak,
			r.TroughInstances, r.PeakInstances, r.ScaleUps, r.ScaleDowns, r.ColdStartSeconds)
		byMode[r.Mode] = r
	}
	trough := byMode["fixed-1"]
	peak := byMode["fixed-4"]
	elastic := byMode["autoscale-1:4"]
	if elastic.Mode == "" || peak.Mode == "" || trough.Mode == "" {
		t.Fatalf("missing expected modes in %v", rows)
	}

	if elastic.GPUSeconds >= peak.GPUSeconds {
		t.Errorf("elastic pool GPU-seconds %.1f not below fixed peak fleet %.1f",
			elastic.GPUSeconds, peak.GPUSeconds)
	}
	if elastic.ShedRate > peak.ShedRate {
		t.Errorf("elastic shed rate %.3f worse than fixed peak fleet %.3f",
			elastic.ShedRate, peak.ShedRate)
	}
	if trough.ShedRate <= elastic.ShedRate {
		t.Errorf("trough-sized fleet shed rate %.3f not above elastic %.3f — burst scenario too easy",
			trough.ShedRate, elastic.ShedRate)
	}
	if elastic.ScaleUps == 0 || elastic.ScaleDowns == 0 {
		t.Errorf("elastic pool did not both grow and shrink: ups=%d downs=%d",
			elastic.ScaleUps, elastic.ScaleDowns)
	}
	if elastic.PeakInstances < 2 {
		t.Errorf("elastic pool peaked at %d instances; burst never stressed it", elastic.PeakInstances)
	}
}
