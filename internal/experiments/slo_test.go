package experiments

import "testing"

// TestSLOSweep is the multi-tenant acceptance check: on the same fixed
// fleet (equal GPU-seconds up to makespan drift), class-aware admission +
// scheduling must deliver a strictly better interactive p99 than the
// class-blind configuration, and must not shed interactive load while it
// sheds batch.
func TestSLOSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run sweep with profile runs")
	}
	rows, err := SLOSweep(1, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("want 2 rows, got %d", len(rows))
	}
	var blind, aware *SLOSweepRow
	for i := range rows {
		switch rows[i].Mode {
		case "class-blind":
			blind = &rows[i]
		case "class-aware":
			aware = &rows[i]
		}
	}
	if blind == nil || aware == nil {
		t.Fatalf("missing modes in %+v", rows)
	}
	if aware.InteractiveP99JCT >= blind.InteractiveP99JCT {
		t.Errorf("class-aware interactive p99 %.3fs not strictly better than class-blind %.3fs",
			aware.InteractiveP99JCT, blind.InteractiveP99JCT)
	}
	// Batch is shed before interactive: the class-aware run protects the
	// interactive budget entirely on this scenario.
	if aware.InteractiveShed != 0 {
		t.Errorf("class-aware shed %d interactive requests; batch must be shed first", aware.InteractiveShed)
	}
	if aware.BatchShed == 0 {
		t.Error("class-aware shed no batch under an overrunning burst; the scenario exercises nothing")
	}
	// Equal GPU-seconds up to makespan drift.
	lo, hi := blind.GPUSeconds, aware.GPUSeconds
	if lo > hi {
		lo, hi = hi, lo
	}
	if hi > 1.25*lo {
		t.Errorf("GPU-seconds diverge: blind %.1f vs aware %.1f", blind.GPUSeconds, aware.GPUSeconds)
	}
	for _, r := range rows {
		if r.Completed == 0 || r.InteractiveOffered == 0 || r.BatchOffered == 0 {
			t.Errorf("degenerate row %+v", r)
		}
	}
}
