package experiments

// Multi-tenant SLO experiment: the same two-class workload (Zipf-skewed
// interactive traffic mixed with long batch documents, bursty open-loop
// arrivals) served by the same fixed fleet under two configurations:
//
//   - class-blind: one admission bound for every request, the paper's
//     class-blind Algorithm-1 scheduler — batch documents sit ahead of
//     interactive requests in the queue and consume the shared admission
//     headroom, so bursts shed interactive load and inflate its tail.
//   - class-aware: batch gets a smaller backlog budget (shed first, before
//     interactive headroom is touched) and a JCT weight > 1 in the
//     calibrated heap key (yields the GPU to interactive work), while the
//     interactive bound is unchanged.
//
// The fleet is fixed and identical in both runs, so GPU-seconds are equal
// by construction up to makespan drift: the comparison isolates what the
// class machinery buys — interactive p99 — and what it costs — batch
// goodput and batch shed.

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/router"
	"repro/internal/sched"
	"repro/internal/workload"
)

// SLORunConfig describes one fixed-fleet run of the two-class workload.
type SLORunConfig struct {
	Scenario Scenario
	// Dataset provides the requests (workload.ClassMix); arrival times are
	// overwritten by the open-loop process.
	Dataset *workload.Dataset
	// Rate is the time-varying offered load; MaxRate bounds it.
	Rate    workload.RateFn
	MaxRate float64
	Seed    int64
	// Instances is the fixed fleet size (default 2).
	Instances int
	// MaxBacklogSeconds is the interactive admission bound (default 30).
	MaxBacklogSeconds float64
	// BatchBacklogSeconds is the batch-class budget; 0 leaves batch on the
	// shared bound (class-blind admission).
	BatchBacklogSeconds float64
	// BatchWeight is the batch-class JCT multiplier in the calibrated
	// scheduler; 0 or 1 leaves scheduling class-blind.
	BatchWeight float64
	// Lambda overrides PrefillOnly's fairness parameter (0 = default).
	Lambda float64
	// Shards selects the event kernel: <= 1 serial, >= 2 the sharded
	// kernel with that many workers. Results are identical either way.
	Shards int
}

func (rc *SLORunConfig) defaults() error {
	if rc.Dataset == nil {
		return fmt.Errorf("experiments: SLORunConfig.Dataset is required")
	}
	if rc.Rate == nil {
		return fmt.Errorf("experiments: SLORunConfig.Rate is required")
	}
	if rc.Instances <= 0 {
		rc.Instances = 2
	}
	if rc.MaxBacklogSeconds == 0 {
		rc.MaxBacklogSeconds = 30
	}
	return nil
}

// classAware reports whether any per-class mechanism is active.
func (rc *SLORunConfig) classAware() bool {
	return rc.BatchBacklogSeconds > 0 || rc.BatchWeight > 1
}

// SLORunResult aggregates one two-class run.
type SLORunResult struct {
	// Mode is "class-blind" or "class-aware".
	Mode    string
	Dataset string
	// Interactive and Batch summarize the completed requests of each class.
	Interactive, Batch metrics.Summary
	// InteractiveShed and BatchShed count per-class admission rejects.
	InteractiveShed, BatchShed int
	// InteractiveOffered and BatchOffered count per-class offered load.
	InteractiveOffered, BatchOffered int
	// BatchGoodputTPS is completed batch input tokens per second of
	// makespan — the throughput-oriented tenant's figure of merit.
	BatchGoodputTPS float64
	// GPUSeconds is fleet GPUs × makespan (the fleet is fixed).
	GPUSeconds      float64
	MakespanSeconds float64
	Completed       int
}

// SLORun executes one fixed-fleet two-class run to completion.
func SLORun(rc SLORunConfig) (*SLORunResult, error) {
	if err := rc.defaults(); err != nil {
		return nil, err
	}
	kern := engine.NewKernel(rc.Shards, engine.MinEventSeconds(rc.Scenario.Model, rc.Scenario.GPU))
	var recs []engine.Record
	var rt *router.Router
	profLen := (rc.Dataset.MaxLen/1000 + 1) * 1000
	cfg := engine.Config{
		Model:         rc.Scenario.Model,
		GPU:           rc.Scenario.GPU,
		ProfileMaxLen: profLen,
	}
	sinkFor := kern.CompletionSinks(func(r engine.Record) {
		if rt != nil {
			rt.Completed(r)
		}
		recs = append(recs, r)
	})
	opts := core.Options{Lambda: rc.Lambda}
	if rc.BatchWeight > 1 {
		opts.ClassWeights = map[sched.Class]float64{sched.ClassBatch: rc.BatchWeight}
	}
	engines := make([]engine.Engine, rc.Instances)
	for i := range engines {
		c := cfg
		c.Sim = kern.InstanceClock(i)
		c.OnComplete = sinkFor(i)
		e, err := core.New(c, opts)
		if err != nil {
			return nil, err
		}
		engines[i] = e
	}
	rcfg := router.Config{
		Policy:            router.AffinityLoad{},
		MaxBacklogSeconds: rc.MaxBacklogSeconds,
	}
	if rc.BatchBacklogSeconds > 0 {
		rcfg.ClassBacklogSeconds = map[sched.Class]float64{sched.ClassBatch: rc.BatchBacklogSeconds}
	}
	var err error
	rt, err = router.New(rcfg, engines...)
	if err != nil {
		return nil, err
	}

	arrivals, err := workload.AssignOpenLoopArrivals(rc.Dataset, rc.Rate, rc.MaxRate, rc.Seed)
	if err != nil {
		return nil, err
	}
	res := &SLORunResult{Mode: "class-blind", Dataset: rc.Dataset.Name}
	if rc.classAware() {
		res.Mode = "class-aware"
	}
	var submitErr error
	clock := kern.Clock()
	for _, a := range arrivals {
		a := a
		if a.Req.Class == sched.ClassBatch {
			res.BatchOffered++
		} else {
			res.InteractiveOffered++
		}
		clock.At(a.Time, func() {
			err := rt.Submit(a.Req)
			if err == nil {
				return
			}
			var rej *router.RejectError
			if !errors.As(err, &rej) {
				if submitErr == nil {
					submitErr = err
				}
				return
			}
			if rej.Class == sched.ClassBatch {
				res.BatchShed++
			} else {
				res.InteractiveShed++
			}
		})
	}
	end := kern.Run()
	if submitErr != nil {
		return nil, submitErr
	}
	shed := res.BatchShed + res.InteractiveShed
	if len(recs)+shed != len(rc.Dataset.Requests) {
		return nil, fmt.Errorf("experiments: %d completed + %d shed of %d requests",
			len(recs), shed, len(rc.Dataset.Requests))
	}

	var interLats, batchLats []float64
	var batchTokens int64
	for _, r := range recs {
		if r.Req.Class == sched.ClassBatch {
			batchLats = append(batchLats, r.Latency())
			batchTokens += int64(r.Req.Len())
		} else {
			interLats = append(interLats, r.Latency())
		}
	}
	res.Interactive = metrics.Summarize(interLats)
	res.Batch = metrics.Summarize(batchLats)
	res.Completed = len(recs)
	res.MakespanSeconds = end
	res.GPUSeconds = float64(rt.GPUs()) * end
	if end > 0 {
		res.BatchGoodputTPS = float64(batchTokens) / end
	}
	return res, nil
}

// SLOSweepRow is one mode of the class-blind vs class-aware comparison.
type SLOSweepRow struct {
	Mode               string  `json:"mode"`
	Dataset            string  `json:"dataset"`
	InteractiveMeanJCT float64 `json:"interactive_mean_jct_seconds"`
	InteractiveP99JCT  float64 `json:"interactive_p99_jct_seconds"`
	InteractiveShed    int     `json:"interactive_shed"`
	InteractiveOffered int     `json:"interactive_offered"`
	BatchMeanJCT       float64 `json:"batch_mean_jct_seconds"`
	BatchShed          int     `json:"batch_shed"`
	BatchOffered       int     `json:"batch_offered"`
	BatchGoodputTPS    float64 `json:"batch_goodput_tokens_per_second"`
	GPUSeconds         float64 `json:"gpu_seconds"`
	Completed          int     `json:"completed"`
}

// SLOSweep runs the two-class workload through the class-blind and the
// class-aware configuration on an identical fixed fleet (equal
// GPU-seconds up to makespan drift) and reports both rows: class-aware
// must buy a strictly better interactive p99, paying with batch sheds
// that start before any interactive request is dropped. Serial
// convenience wrapper around SLOSweepParallel.
func SLOSweep(seed int64, small bool) ([]SLOSweepRow, error) {
	rows, _, err := SLOSweepParallel(seed, small, 1, 1)
	return rows, err
}

// SLOSweepParallel is SLOSweep fanned across the cell executor: one
// saturation cell, then the class-blind and class-aware runs as
// independent cells, each on its own freshly generated dataset. Rows are
// byte-identical at any parallelism — and at any shard count (shards picks
// each cell's event kernel).
func SLOSweepParallel(seed int64, small bool, parallel, shards int) ([]SLOSweepRow, CellStats, error) {
	sc, err := ScenarioByName("L4")
	if err != nil {
		return nil, CellStats{}, err
	}
	// Sizing: the fleet and interactive bound follow the autoscale sweep's
	// rules; the batch budget reserves the headroom between it and the
	// interactive bound for the latency tier, and the batch weight makes a
	// queued batch document (several thousand cache-cold tokens) rank
	// behind every plausible interactive request.
	instances, bound := 2, 8.0
	if !small {
		instances, bound = 4, 12.0
	}
	const (
		batchBudgetFrac = 0.35
		batchWeight     = 4.0
	)
	mkDataset := func() *workload.Dataset {
		if small {
			return workload.ClassMix(workload.ClassMixConfig{
				Interactive: workload.SkewedConfig{
					Users: 24, Requests: 120, ProfileMean: 3000, ProfileStd: 800,
					ProfileMin: 1500, ProfileMax: 5000,
				},
				BatchFraction: 0.25, BatchUsers: 6,
				BatchLenMin: 4000, BatchLenMax: 8000,
				Seed: seed,
			})
		}
		return workload.ClassMix(workload.ClassMixConfig{Seed: seed})
	}
	// Offered load: a square wave whose peak overruns the fleet, so the
	// burst front must be absorbed by admission control — the regime where
	// who gets shed is the whole game.
	satDS := mkDataset()
	sat, satStats, err := runCells(1, 1, func(int) (float64, error) {
		return SaturationQPS(PrefillOnly, sc, satDS)
	})
	if err != nil {
		return nil, satStats, fmt.Errorf("slo saturation: %w", err)
	}
	perInst := sat[0] / 2
	base := 0.6 * perInst * float64(instances)
	peak := 2.5 * perInst * float64(instances)
	const duty = 0.35
	avgRate := duty*peak + (1-duty)*base
	n := len(satDS.Requests)
	period := float64(n) / avgRate / 3
	rate := workload.SquareWaveRate(base, peak, period, duty)

	runs := []SLORunConfig{
		{Scenario: sc, Rate: rate, MaxRate: peak, Seed: seed, Instances: instances,
			MaxBacklogSeconds: bound},
		{Scenario: sc, Rate: rate, MaxRate: peak, Seed: seed, Instances: instances,
			MaxBacklogSeconds:   bound,
			BatchBacklogSeconds: batchBudgetFrac * bound,
			BatchWeight:         batchWeight},
	}
	rows, runStats, err := runCells(parallel, len(runs), func(i int) (SLOSweepRow, error) {
		rc := runs[i]
		rc.Dataset = mkDataset() // fresh dataset per cell: arrivals are restamped
		rc.Shards = shards
		res, err := SLORun(rc)
		if err != nil {
			return SLOSweepRow{}, fmt.Errorf("slo %s: %w", rc.Dataset.Name, err)
		}
		return SLOSweepRow{
			Mode:               res.Mode,
			Dataset:            res.Dataset,
			InteractiveMeanJCT: res.Interactive.Mean,
			InteractiveP99JCT:  res.Interactive.P99,
			InteractiveShed:    res.InteractiveShed,
			InteractiveOffered: res.InteractiveOffered,
			BatchMeanJCT:       res.Batch.Mean,
			BatchShed:          res.BatchShed,
			BatchOffered:       res.BatchOffered,
			BatchGoodputTPS:    res.BatchGoodputTPS,
			GPUSeconds:         res.GPUSeconds,
			Completed:          res.Completed,
		}, nil
	})
	return rows, satStats.Merge(runStats), err
}
