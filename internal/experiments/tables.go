package experiments

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/model"
	"repro/internal/workload"
)

// Table1Row summarizes one dataset (paper Table 1).
type Table1Row struct {
	Dataset         string
	Users           int
	Requests        int
	RequestsPerUser int
	MeanLen         float64
	MaxLen          int
	TotalTokens     int64
}

// Table1 regenerates the dataset summary.
func Table1(seed int64) []Table1Row {
	out := make([]Table1Row, 0, 2)
	for _, kind := range []DatasetKind{PostRecommendation, CreditVerification} {
		d := kind.Generate(seed)
		out = append(out, Table1Row{
			Dataset:         d.Name,
			Users:           d.Users,
			Requests:        len(d.Requests),
			RequestsPerUser: d.RequestsPerUser,
			MeanLen:         d.MeanLen(),
			MaxLen:          d.MaxLen,
			TotalTokens:     d.TotalTokens(),
		})
	}
	return out
}

// Table2Row is one engine×GPU cell of the paper's Table 2.
type Table2Row struct {
	Engine   EngineKind
	Scenario string
	// MIL is the maximum input length in tokens.
	MIL int
	// WL1OK/WL2OK mark whether the post-recommendation (WL1) and
	// credit-verification (WL2) workloads fit without the spill fallback.
	WL1OK bool
	WL2OK bool
}

// wl1MaxLen and wl2MaxLen are the longest request lengths of the two
// Table-1 workloads (profile/history max plus post and template).
const (
	wl1MaxLen = 17000 + 150 + 32
	wl2MaxLen = 60000 + 32
)

// milFor computes the maximum input length of one engine configuration on
// one device, from the graph memory model.
func milFor(kind EngineKind, sc Scenario) (int, error) {
	m := sc.Model
	opts := graph.StandardOptions()
	switch kind {
	case PrefillOnly:
		opts = graph.HybridOptions(graph.DefaultChunkSize)
	case ChunkedPrefill:
		opts = graph.ChunkedOptions(graph.DefaultChunkSize)
	case TensorParallel:
		var err error
		m, err = m.Shard(2, 1)
		if err != nil {
			return 0, err
		}
	case PipelineParallel:
		var err error
		m, err = m.Shard(1, 2)
		if err != nil {
			return 0, err
		}
	case PagedAttention:
		// standard options
	default:
		return 0, fmt.Errorf("experiments: unknown engine kind %v", kind)
	}
	exec := graph.New(m, sc.GPU)
	budget := sc.GPU.UsableBytes() - m.WeightBytes()
	if budget <= 0 {
		return 0, nil
	}
	return exec.MaxInputLength(opts, budget)
}

// Table2 regenerates the maximum-input-length table over the three GPU
// types (the paper's Table 2 collapses the two H100 variants). Serial
// convenience wrapper around Table2Parallel.
func Table2() ([]Table2Row, error) {
	rows, _, err := Table2Parallel(1)
	return rows, err
}

// Table2Parallel is Table2 fanned across the cell executor: each
// engine×GPU MIL binary search is a pure, independent cell.
func Table2Parallel(parallel int) ([]Table2Row, CellStats, error) {
	scenarios := []string{"L4", "A100", "H100"}
	engines := []EngineKind{PagedAttention, ChunkedPrefill, PipelineParallel, TensorParallel, PrefillOnly}
	type cell struct {
		kind   EngineKind
		scName string
	}
	var cells []cell
	for _, kind := range engines {
		for _, name := range scenarios {
			cells = append(cells, cell{kind, name})
		}
	}
	return runCells(parallel, len(cells), func(i int) (Table2Row, error) {
		c := cells[i]
		sc, err := ScenarioByName(c.scName)
		if err != nil {
			return Table2Row{}, err
		}
		mil, err := milFor(c.kind, sc)
		if err != nil {
			return Table2Row{}, fmt.Errorf("table2 %v/%s: %w", c.kind, c.scName, err)
		}
		return Table2Row{
			Engine:   c.kind,
			Scenario: c.scName,
			MIL:      mil,
			WL1OK:    mil >= wl1MaxLen,
			WL2OK:    mil >= wl2MaxLen,
		}, nil
	})
}

// Table3Row is one hardware/model pairing (paper Table 3).
type Table3Row struct {
	Scenario     string
	GPUName      string
	GPUCount     int
	MemoryGiB    float64
	Interconnect string
	ModelName    string
	WeightGiB    float64
}

// Table3 regenerates the hardware/model catalog.
func Table3() []Table3Row {
	out := make([]Table3Row, 0, 4)
	for _, sc := range Scenarios() {
		out = append(out, Table3Row{
			Scenario:     sc.Name,
			GPUName:      sc.GPU.Name,
			GPUCount:     2,
			MemoryGiB:    float64(sc.GPU.MemoryBytes) / (1 << 30),
			Interconnect: sc.GPU.Link.String(),
			ModelName:    sc.Model.Name,
			WeightGiB:    float64(sc.Model.WeightBytes()) / (1 << 30),
		})
	}
	return out
}

// DatasetForScenario truncates WL2 histories for unit tests that need a
// smaller population; the full paper datasets come from DatasetKind.Generate.
func DatasetForScenario(kind DatasetKind, users int, seed int64) *workload.Dataset {
	switch kind {
	case CreditVerification:
		return workload.CreditVerification(workload.CreditVerificationConfig{Users: users, Seed: seed})
	default:
		return workload.PostRecommendation(workload.PostRecommendationConfig{Users: users, Seed: seed})
	}
}

// modelForFigure10 is the Figure-10 ablation model (Qwen-2.5-32B FP8).
func modelForFigure10() *model.Config { return model.Qwen25_32BFP8() }
