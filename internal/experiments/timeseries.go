package experiments

import (
	"repro/internal/timeseries"
)

// TimeseriesRoutingRun is RoutingRun with a fresh windowed time-series
// collector attached (intervalSeconds <= 0 takes the default window):
// one instrumented run whose per-window throughput, arrival and shed
// rates, latency quantiles, fleet gauges and SLO burn rate land in the
// returned collector, ready for WriteJSON/WriteCSV. The collector never
// perturbs the run — results are bit-identical with it detached.
func TimeseriesRoutingRun(rc RoutingRunConfig, intervalSeconds float64) (*RoutingRunResult, *timeseries.Collector, error) {
	rc.Timeseries = timeseries.New(timeseries.Config{IntervalSeconds: intervalSeconds})
	res, err := RoutingRun(rc)
	return res, rc.Timeseries, err
}
