package experiments

// The parallel cell executor. Every sweep in this package decomposes into
// independent (config, seed) cells: each cell builds its own sim.Sim, its
// own dataset (cloned from an immutable base or regenerated from the
// seed), and its own seeded RNGs, shares no mutable state, and is fully
// deterministic. runCells fans those cells across a bounded worker pool
// and aggregates results in index order, so a parallel sweep's rows are
// byte-identical to the serial sweep's — parallelism changes wall-clock
// only, never output (pinned by the oracle tests in runner_test.go).

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultParallel is the default sweep parallelism: one worker per
// schedulable CPU (GOMAXPROCS).
func DefaultParallel() int { return runtime.GOMAXPROCS(0) }

// CellStats is the executor's harness-performance telemetry for one
// sweep: what the cells cost end-to-end versus what the same cells would
// have cost back-to-back on one core, plus the allocation bill. Sweeps
// surface it into their BENCH_*.json so harness regressions are visible.
type CellStats struct {
	// Cells is how many cells executed.
	Cells int `json:"cells"`
	// Parallelism is the worker count the cells ran under.
	Parallelism int `json:"parallelism"`
	// HostCPUs is runtime.NumCPU() at measurement time. Speedup is bounded
	// by min(Parallelism, HostCPUs, cells' duration balance); a recorded
	// speedup of ~1x on HostCPUs=1 is the hardware ceiling, not an
	// executor regression.
	HostCPUs int `json:"host_cpus"`
	// WallSeconds is the elapsed time of the whole fan-out.
	WallSeconds float64 `json:"wall_seconds"`
	// SerialEquivalentSeconds sums every cell's own duration — an estimate
	// of the time the pre-runner serial loop would have spent on the same
	// cells. Per-cell durations are wall times, so when workers outnumber
	// idle cores the estimate inflates by the time-sliced waiting; for a
	// measured (not estimated) speedup, run the sweep at parallel=1 and
	// compare wall seconds (prefillbench -compare-serial does exactly
	// that).
	SerialEquivalentSeconds float64 `json:"serial_equivalent_seconds"`
	// Speedup is SerialEquivalentSeconds / WallSeconds.
	Speedup float64 `json:"speedup"`
	// AllocsPerCell is the process heap-allocation count accrued across
	// the sweep divided by the cell count (process-wide, so concurrent
	// non-sweep work pollutes it slightly; it is telemetry, not a pin).
	AllocsPerCell float64 `json:"allocs_per_cell"`
}

// Merge folds another phase's stats into s (cells and times accumulate,
// parallelism takes the max) and rederives the speedup. Sweeps with a
// saturation pre-phase report one merged CellStats.
func (s CellStats) Merge(o CellStats) CellStats {
	allocs := s.AllocsPerCell*float64(s.Cells) + o.AllocsPerCell*float64(o.Cells)
	s.Cells += o.Cells
	if o.Parallelism > s.Parallelism {
		s.Parallelism = o.Parallelism
	}
	if o.HostCPUs > s.HostCPUs {
		s.HostCPUs = o.HostCPUs
	}
	s.WallSeconds += o.WallSeconds
	s.SerialEquivalentSeconds += o.SerialEquivalentSeconds
	if s.Cells > 0 {
		s.AllocsPerCell = allocs / float64(s.Cells)
	}
	if s.WallSeconds > 0 {
		s.Speedup = s.SerialEquivalentSeconds / s.WallSeconds
	}
	return s
}

// runCells executes fn over cell indices [0, n) and returns the results
// in index order. parallel <= 0 means DefaultParallel; parallel == 1 runs
// the cells serially on the calling goroutine, stopping at the first
// error exactly like the pre-runner sweep loops. With parallel > 1 the
// cells fan across min(parallel, n) workers pulling indices from a shared
// counter; workers stop claiming new cells once any cell fails, and the
// lowest-indexed error is reported. Because aggregation is index-ordered
// and each cell is self-contained, the success-path results are identical
// at every parallelism level.
func runCells[T any](parallel, n int, fn func(i int) (T, error)) ([]T, CellStats, error) {
	if parallel <= 0 {
		parallel = DefaultParallel()
	}
	if parallel > n {
		parallel = n
	}
	stats := CellStats{Cells: n, Parallelism: parallel, HostCPUs: runtime.NumCPU()}
	if n == 0 {
		return nil, stats, nil
	}
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	out := make([]T, n)
	errs := make([]error, n)
	var serialNS atomic.Int64

	if parallel <= 1 {
		stats.Parallelism = 1
		for i := 0; i < n; i++ {
			t0 := time.Now()
			v, err := fn(i)
			serialNS.Add(int64(time.Since(t0)))
			if err != nil {
				errs[i] = err
				break
			}
			out[i] = v
		}
	} else {
		var next atomic.Int64
		var failed atomic.Bool
		var wg sync.WaitGroup
		for w := 0; w < parallel; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for !failed.Load() {
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					t0 := time.Now()
					v, err := fn(i)
					serialNS.Add(int64(time.Since(t0)))
					if err != nil {
						errs[i] = err
						failed.Store(true)
						return
					}
					out[i] = v
				}
			}()
		}
		wg.Wait()
	}

	stats.WallSeconds = time.Since(start).Seconds()
	stats.SerialEquivalentSeconds = time.Duration(serialNS.Load()).Seconds()
	if stats.WallSeconds > 0 {
		stats.Speedup = stats.SerialEquivalentSeconds / stats.WallSeconds
	}
	runtime.ReadMemStats(&m1)
	stats.AllocsPerCell = float64(m1.Mallocs-m0.Mallocs) / float64(n)
	for _, err := range errs {
		if err != nil {
			return nil, stats, err
		}
	}
	return out, stats, nil
}
