package experiments

import (
	"testing"
)

// TestChaosSweepRecovery pins the sweep's recovery semantics on the
// committed-benchmark shape: the failure-free baseline sees no faults,
// the crash row orphans work but re-admits most of it (shed strictly
// below orphaned under a positive retry budget), and the autoscaler
// restores routable capacity after kills.
func TestChaosSweepRecovery(t *testing.T) {
	rows, err := ChaosSweep(1, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("sweep returned %d rows, want 4 modes", len(rows))
	}
	base := rows[0]
	if base.Mode != "failure-free" || base.Faults != 0 || base.Orphaned != 0 {
		t.Fatalf("baseline row is not failure-free: %+v", base)
	}
	if base.P99DegradationVsBaseline != 0 || base.ShedRateDeltaVsBaseline != 0 {
		t.Errorf("baseline degrades vs itself: %+v", base)
	}
	byMode := map[string]ChaosSweepRow{}
	for _, r := range rows {
		byMode[r.Mode] = r
		if r.Orphaned != r.OrphansRerouted+r.OrphansShed {
			t.Errorf("%s: orphaned %d != rerouted %d + shed %d",
				r.Mode, r.Orphaned, r.OrphansRerouted, r.OrphansShed)
		}
	}
	crash := byMode["crash"]
	if crash.Faults == 0 || crash.Orphaned == 0 {
		t.Fatalf("crash row injected nothing: %+v", crash)
	}
	// Recovery, not just failure: with a positive retry budget most
	// orphans are re-admitted, and the pool comes back after each kill.
	if crash.OrphansShed >= crash.Orphaned {
		t.Errorf("crash row shed every orphan (%d of %d): re-admission is not working",
			crash.OrphansShed, crash.Orphaned)
	}
	if crash.Recoveries == 0 {
		t.Error("no crash recovery observed: the autoscaler never restored the pool")
	}
	if crash.Recoveries > 0 && crash.MeanRecoverySeconds <= 0 {
		t.Errorf("recoveries %d with mean recovery %gs", crash.Recoveries, crash.MeanRecoverySeconds)
	}
	straggler := byMode["straggler"]
	if straggler.Faults == 0 {
		t.Error("straggler row injected nothing")
	}
	if straggler.Orphaned != 0 {
		t.Errorf("stragglers orphaned %d requests: slow nodes must not drop work", straggler.Orphaned)
	}
	if straggler.P99JCT <= base.P99JCT {
		t.Errorf("straggler p99 %g not above baseline %g: the slow episodes cost nothing",
			straggler.P99JCT, base.P99JCT)
	}
	preempt := byMode["preempt"]
	if preempt.Faults == 0 {
		t.Error("preempt row injected nothing")
	}
}

// TestChaosSweepShardedOracle: a faulted run must be byte-identical on
// the sharded kernel — faults are coordinator events, executed at shard
// barriers — with cell parallelism composed on top.
func TestChaosSweepShardedOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run sweep with profile runs")
	}
	serialRows, _, err := ChaosSweepParallel(1, true, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	rows, _, err := ChaosSweepParallel(1, true, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	a, b := mustJSON(t, serialRows), mustJSON(t, rows)
	if string(a) != string(b) {
		t.Fatalf("sharded chaos sweep diverged from serial:\nserial:  %s\nsharded: %s", a, b)
	}
}

// TestChaosRunValidation covers the config guards.
func TestChaosRunValidation(t *testing.T) {
	if _, err := ChaosRun(ChaosRunConfig{}); err == nil {
		t.Error("ChaosRun accepted a zero config")
	}
}
