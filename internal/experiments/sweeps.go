package experiments

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/workload"
)

// QPSLatencyPoint is one (engine, qps) point of Figures 6 and 7.
type QPSLatencyPoint struct {
	Engine         EngineKind
	QPS            float64
	MeanLatency    float64
	P99Latency     float64
	ThroughputRPS  float64
	CacheHitRate   float64
	InfeasibleFrac float64
}

// QPSLatencyPanel is one panel of Figures 6/7 (a scenario × dataset pair).
type QPSLatencyPanel struct {
	Scenario      string
	Dataset       string
	SaturationQPS float64
	Points        []QPSLatencyPoint
}

// QPSLatency regenerates one Figure-6/7 panel: it measures PrefillOnly's
// saturation throughput x, then sweeps every engine over x·multipliers.
// Engines may be restricted (nil = all five).
func QPSLatency(sc Scenario, kind DatasetKind, engines []EngineKind, seed int64) (*QPSLatencyPanel, error) {
	if engines == nil {
		engines = AllEngines()
	}
	ds := kind.Generate(seed)
	x, err := SaturationQPS(PrefillOnly, sc, ds)
	if err != nil {
		return nil, fmt.Errorf("saturation on %s/%s: %w", sc.Name, kind, err)
	}
	panel := &QPSLatencyPanel{Scenario: sc.Name, Dataset: kind.String(), SaturationQPS: x}
	for _, eng := range engines {
		for _, mult := range QPSGridMultipliers {
			qps := x * mult
			res, err := Run(RunConfig{
				Kind: eng, Scenario: sc, Dataset: ds, QPS: qps, Seed: seed + int64(mult*100),
			})
			if err != nil {
				return nil, fmt.Errorf("%v at %.3f qps on %s/%s: %w", eng, qps, sc.Name, kind, err)
			}
			panel.Points = append(panel.Points, QPSLatencyPoint{
				Engine:         eng,
				QPS:            qps,
				MeanLatency:    res.Latency.Mean,
				P99Latency:     res.Latency.P99,
				ThroughputRPS:  res.ThroughputRPS,
				CacheHitRate:   res.CacheHitRate,
				InfeasibleFrac: res.InfeasibleFrac,
			})
		}
	}
	return panel, nil
}

// Figure8Row is one bar of Figure 8: saturation throughput of an engine on
// credit verification, 2×H100, with and without NVLink.
type Figure8Row struct {
	Engine        EngineKind
	NVLink        bool
	ThroughputRPS float64
}

// Figure8 regenerates the NVLink throughput comparison.
func Figure8(seed int64) ([]Figure8Row, error) {
	ds := CreditVerification.Generate(seed)
	var out []Figure8Row
	for _, scName := range []string{"H100", "H100-NVLink"} {
		sc, err := ScenarioByName(scName)
		if err != nil {
			return nil, err
		}
		for _, eng := range []EngineKind{PrefillOnly, PipelineParallel, TensorParallel} {
			tput, err := SaturationQPS(eng, sc, ds)
			if err != nil {
				return nil, fmt.Errorf("figure8 %v on %s: %w", eng, scName, err)
			}
			out = append(out, Figure8Row{Engine: eng, NVLink: scName == "H100-NVLink", ThroughputRPS: tput})
		}
	}
	return out, nil
}

// Figure9Point is one point of the throughput-vs-QPS curves of Figure 9.
type Figure9Point struct {
	Engine        EngineKind
	QPS           float64
	ThroughputRPS float64
	CacheHitRate  float64
}

// Figure9 regenerates the prefix-cache-throttling study: post
// recommendation on 2×H100 (no NVLink), throughput as offered QPS grows,
// for PrefillOnly, chunked prefill, PP and TP.
func Figure9(seed int64) ([]Figure9Point, error) {
	sc, err := ScenarioByName("H100")
	if err != nil {
		return nil, err
	}
	ds := PostRecommendation.Generate(seed)
	x, err := SaturationQPS(PrefillOnly, sc, ds)
	if err != nil {
		return nil, err
	}
	engines := []EngineKind{PrefillOnly, ChunkedPrefill, PipelineParallel, TensorParallel}
	var out []Figure9Point
	for _, eng := range engines {
		for _, mult := range []float64{0.25, 0.5, 1, 1.5, 2, 3, 4} {
			qps := x * mult
			res, err := Run(RunConfig{Kind: eng, Scenario: sc, Dataset: ds, QPS: qps, Seed: seed})
			if err != nil {
				return nil, fmt.Errorf("figure9 %v at %.2f: %w", eng, qps, err)
			}
			out = append(out, Figure9Point{
				Engine: eng, QPS: qps,
				ThroughputRPS: res.ThroughputRPS,
				CacheHitRate:  res.CacheHitRate,
			})
		}
	}
	return out, nil
}

// Figure11Curve is one CDF of Figure 11 (a fairness-parameter setting).
type Figure11Curve struct {
	Lambda      float64
	MeanLatency float64
	P99Latency  float64
	CDF         []metrics.CDFPoint
}

// Figure11 regenerates the λ sensitivity study: latency CDFs of
// PrefillOnly under λ ∈ {0, 200, 2000} on post recommendation at the
// saturation rate (enough queueing for SRJF starvation to appear, not so
// much that every policy thrashes).
func Figure11(seed int64) ([]Figure11Curve, error) {
	sc, err := ScenarioByName("L4")
	if err != nil {
		return nil, err
	}
	ds := PostRecommendation.Generate(seed)
	x, err := SaturationQPS(PrefillOnly, sc, ds)
	if err != nil {
		return nil, err
	}
	qps := x
	var out []Figure11Curve
	for _, lambda := range []float64{-1, 200, 2000} { // -1 encodes literal 0
		res, err := Run(RunConfig{Kind: PrefillOnly, Scenario: sc, Dataset: ds, QPS: qps, Seed: seed, Lambda: lambda})
		if err != nil {
			return nil, fmt.Errorf("figure11 λ=%v: %w", lambda, err)
		}
		shown := lambda
		if lambda < 0 {
			shown = 0
		}
		out = append(out, Figure11Curve{
			Lambda:      shown,
			MeanLatency: res.Latency.Mean,
			P99Latency:  res.Latency.P99,
			CDF:         metrics.CDF(res.Latencies, 200),
		})
	}
	return out, nil
}

// SmallDataset scales a dataset kind down for fast runs (tests and smoke
// benches): fewer users, shorter credit histories.
func SmallDataset(kind DatasetKind, seed int64) *workload.Dataset {
	if kind == CreditVerification {
		return workload.CreditVerification(workload.CreditVerificationConfig{Users: 8, Seed: seed})
	}
	return workload.PostRecommendation(workload.PostRecommendationConfig{Users: 8, PostsPerUser: 12, Seed: seed})
}
