package experiments

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/workload"
)

// QPSLatencyPoint is one (engine, qps) point of Figures 6 and 7.
type QPSLatencyPoint struct {
	Engine         EngineKind
	QPS            float64
	MeanLatency    float64
	P99Latency     float64
	ThroughputRPS  float64
	CacheHitRate   float64
	InfeasibleFrac float64
}

// QPSLatencyPanel is one panel of Figures 6/7 (a scenario × dataset pair).
type QPSLatencyPanel struct {
	Scenario      string
	Dataset       string
	SaturationQPS float64
	Points        []QPSLatencyPoint
}

// QPSLatency regenerates one Figure-6/7 panel: it measures PrefillOnly's
// saturation throughput x, then sweeps every engine over x·multipliers.
// Engines may be restricted (nil = all five). Serial convenience wrapper
// around QPSLatencyParallel.
func QPSLatency(sc Scenario, kind DatasetKind, engines []EngineKind, seed int64) (*QPSLatencyPanel, error) {
	panel, _, err := QPSLatencyParallel(sc, kind, engines, seed, 1)
	return panel, err
}

// QPSLatencyParallel is QPSLatency fanned across the cell executor.
func QPSLatencyParallel(sc Scenario, kind DatasetKind, engines []EngineKind, seed int64, parallel int) (*QPSLatencyPanel, CellStats, error) {
	return QPSLatencyOn(sc, kind.String(), kind.Generate(seed), engines, seed, parallel)
}

// QPSLatencyOn sweeps the engines × QPSGridMultipliers grid over an
// explicit base dataset (cmd/prefillbench uses it for scaled-down smoke
// panels). The base is treated as immutable: the saturation run and every
// grid cell execute against their own clone. Cells use the full-size
// panel's per-multiplier seeding (seed + mult*100) — the scaled-down
// smoke panel previously seeded every cell with the bare seed, so its
// numbers shifted once when it was unified onto this path.
func QPSLatencyOn(sc Scenario, label string, base *workload.Dataset, engines []EngineKind, seed int64, parallel int) (*QPSLatencyPanel, CellStats, error) {
	if engines == nil {
		engines = AllEngines()
	}
	sat, satStats, err := runCells(1, 1, func(int) (float64, error) {
		return SaturationQPS(PrefillOnly, sc, base.Clone())
	})
	if err != nil {
		return nil, satStats, fmt.Errorf("saturation on %s/%s: %w", sc.Name, label, err)
	}
	x := sat[0]
	type cell struct {
		eng  EngineKind
		mult float64
	}
	var cells []cell
	for _, eng := range engines {
		for _, mult := range QPSGridMultipliers {
			cells = append(cells, cell{eng, mult})
		}
	}
	points, runStats, err := runCells(parallel, len(cells), func(i int) (QPSLatencyPoint, error) {
		c := cells[i]
		qps := x * c.mult
		res, err := Run(RunConfig{
			Kind: c.eng, Scenario: sc, Dataset: base.Clone(), QPS: qps, Seed: seed + int64(c.mult*100),
		})
		if err != nil {
			return QPSLatencyPoint{}, fmt.Errorf("%v at %.3f qps on %s/%s: %w", c.eng, qps, sc.Name, label, err)
		}
		return QPSLatencyPoint{
			Engine:         c.eng,
			QPS:            qps,
			MeanLatency:    res.Latency.Mean,
			P99Latency:     res.Latency.P99,
			ThroughputRPS:  res.ThroughputRPS,
			CacheHitRate:   res.CacheHitRate,
			InfeasibleFrac: res.InfeasibleFrac,
		}, nil
	})
	if err != nil {
		return nil, satStats.Merge(runStats), err
	}
	panel := &QPSLatencyPanel{Scenario: sc.Name, Dataset: label, SaturationQPS: x, Points: points}
	return panel, satStats.Merge(runStats), nil
}

// Figure8Row is one bar of Figure 8: saturation throughput of an engine on
// credit verification, 2×H100, with and without NVLink.
type Figure8Row struct {
	Engine        EngineKind
	NVLink        bool
	ThroughputRPS float64
}

// Figure8 regenerates the NVLink throughput comparison. Serial
// convenience wrapper around Figure8Parallel.
func Figure8(seed int64) ([]Figure8Row, error) {
	rows, _, err := Figure8Parallel(seed, 1)
	return rows, err
}

// Figure8Parallel is Figure8 fanned across the cell executor: each
// (scenario, engine) saturation measurement is one cell on its own
// dataset clone.
func Figure8Parallel(seed int64, parallel int) ([]Figure8Row, CellStats, error) {
	base := CreditVerification.Generate(seed)
	type cell struct {
		scName string
		eng    EngineKind
	}
	var cells []cell
	for _, scName := range []string{"H100", "H100-NVLink"} {
		for _, eng := range []EngineKind{PrefillOnly, PipelineParallel, TensorParallel} {
			cells = append(cells, cell{scName, eng})
		}
	}
	return runCells(parallel, len(cells), func(i int) (Figure8Row, error) {
		c := cells[i]
		sc, err := ScenarioByName(c.scName)
		if err != nil {
			return Figure8Row{}, err
		}
		tput, err := SaturationQPS(c.eng, sc, base.Clone())
		if err != nil {
			return Figure8Row{}, fmt.Errorf("figure8 %v on %s: %w", c.eng, c.scName, err)
		}
		return Figure8Row{Engine: c.eng, NVLink: c.scName == "H100-NVLink", ThroughputRPS: tput}, nil
	})
}

// Figure9Point is one point of the throughput-vs-QPS curves of Figure 9.
type Figure9Point struct {
	Engine        EngineKind
	QPS           float64
	ThroughputRPS float64
	CacheHitRate  float64
}

// Figure9 regenerates the prefix-cache-throttling study: post
// recommendation on 2×H100 (no NVLink), throughput as offered QPS grows,
// for PrefillOnly, chunked prefill, PP and TP. Serial convenience wrapper
// around Figure9Parallel.
func Figure9(seed int64) ([]Figure9Point, error) {
	rows, _, err := Figure9Parallel(seed, 1)
	return rows, err
}

// Figure9Parallel is Figure9 fanned across the cell executor.
func Figure9Parallel(seed int64, parallel int) ([]Figure9Point, CellStats, error) {
	sc, err := ScenarioByName("H100")
	if err != nil {
		return nil, CellStats{}, err
	}
	base := PostRecommendation.Generate(seed)
	sat, satStats, err := runCells(1, 1, func(int) (float64, error) {
		return SaturationQPS(PrefillOnly, sc, base.Clone())
	})
	if err != nil {
		return nil, satStats, err
	}
	x := sat[0]
	type cell struct {
		eng  EngineKind
		mult float64
	}
	var cells []cell
	for _, eng := range []EngineKind{PrefillOnly, ChunkedPrefill, PipelineParallel, TensorParallel} {
		for _, mult := range []float64{0.25, 0.5, 1, 1.5, 2, 3, 4} {
			cells = append(cells, cell{eng, mult})
		}
	}
	out, runStats, err := runCells(parallel, len(cells), func(i int) (Figure9Point, error) {
		c := cells[i]
		qps := x * c.mult
		res, err := Run(RunConfig{Kind: c.eng, Scenario: sc, Dataset: base.Clone(), QPS: qps, Seed: seed})
		if err != nil {
			return Figure9Point{}, fmt.Errorf("figure9 %v at %.2f: %w", c.eng, qps, err)
		}
		return Figure9Point{
			Engine: c.eng, QPS: qps,
			ThroughputRPS: res.ThroughputRPS,
			CacheHitRate:  res.CacheHitRate,
		}, nil
	})
	return out, satStats.Merge(runStats), err
}

// Figure11Curve is one CDF of Figure 11 (a fairness-parameter setting).
type Figure11Curve struct {
	Lambda      float64
	MeanLatency float64
	P99Latency  float64
	CDF         []metrics.CDFPoint
}

// Figure11 regenerates the λ sensitivity study: latency CDFs of
// PrefillOnly under λ ∈ {0, 200, 2000} on post recommendation at the
// saturation rate (enough queueing for SRJF starvation to appear, not so
// much that every policy thrashes). Serial convenience wrapper around
// Figure11Parallel.
func Figure11(seed int64) ([]Figure11Curve, error) {
	rows, _, err := Figure11Parallel(seed, 1)
	return rows, err
}

// Figure11Parallel is Figure11 fanned across the cell executor.
func Figure11Parallel(seed int64, parallel int) ([]Figure11Curve, CellStats, error) {
	sc, err := ScenarioByName("L4")
	if err != nil {
		return nil, CellStats{}, err
	}
	base := PostRecommendation.Generate(seed)
	sat, satStats, err := runCells(1, 1, func(int) (float64, error) {
		return SaturationQPS(PrefillOnly, sc, base.Clone())
	})
	if err != nil {
		return nil, satStats, err
	}
	qps := sat[0]
	lambdas := []float64{-1, 200, 2000} // -1 encodes literal 0
	out, runStats, err := runCells(parallel, len(lambdas), func(i int) (Figure11Curve, error) {
		lambda := lambdas[i]
		res, err := Run(RunConfig{Kind: PrefillOnly, Scenario: sc, Dataset: base.Clone(), QPS: qps, Seed: seed, Lambda: lambda})
		if err != nil {
			return Figure11Curve{}, fmt.Errorf("figure11 λ=%v: %w", lambda, err)
		}
		shown := lambda
		if lambda < 0 {
			shown = 0
		}
		return Figure11Curve{
			Lambda:      shown,
			MeanLatency: res.Latency.Mean,
			P99Latency:  res.Latency.P99,
			CDF:         metrics.CDF(res.Latencies, 200),
		}, nil
	})
	return out, satStats.Merge(runStats), err
}

// SmallDataset scales a dataset kind down for fast runs (tests and smoke
// benches): fewer users, shorter credit histories.
func SmallDataset(kind DatasetKind, seed int64) *workload.Dataset {
	if kind == CreditVerification {
		return workload.CreditVerification(workload.CreditVerificationConfig{Users: 8, Seed: seed})
	}
	return workload.PostRecommendation(workload.PostRecommendationConfig{Users: 8, PostsPerUser: 12, Seed: seed})
}
