package experiments

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/sim"
)

// KernelBenchResult captures the sim kernel's raw event throughput and
// allocation cost at a constant pending depth — the regime every serving
// run keeps the kernel in. Two paths are measured on the same workload
// shape: the closure path (a fresh capturing closure per scheduled event,
// the idiom every engine used before the value-heap kernel; the pre-
// refactor kernel additionally paid a heap-allocated *event and a
// container/heap interface boxing per event on top of it) and the
// zero-alloc fast path (package-level callback + reused payload pointer).
// cmd/prefillbench writes this as BENCH_kernel.json so kernel regressions
// show up in the benchmark trajectory.
type KernelBenchResult struct {
	// Events is how many events each path executed.
	Events int `json:"events"`
	// Depth is the constant pending-event depth during the measurement.
	Depth int `json:"depth"`
	// ClosureEventsPerSec is the closure path's throughput.
	ClosureEventsPerSec float64 `json:"closure_events_per_sec"`
	// ClosureAllocsPerEvent is the closure path's heap allocations per event.
	ClosureAllocsPerEvent float64 `json:"closure_allocs_per_event"`
	// FastPathEventsPerSec is the zero-alloc fast path's throughput.
	FastPathEventsPerSec float64 `json:"fastpath_events_per_sec"`
	// FastPathAllocsPerEvent is the fast path's heap allocations per event
	// (0 in steady state; pinned by internal/sim's AllocsPerRun test).
	FastPathAllocsPerEvent float64 `json:"fastpath_allocs_per_event"`
	// FastPathSpeedup is FastPathEventsPerSec / ClosureEventsPerSec.
	FastPathSpeedup float64 `json:"fastpath_speedup"`
	// HostCPUs and GoVersion record the measurement host: shard scaling
	// (and absolute throughput) are functions of the core count and
	// toolchain, so the committed artifact carries its provenance.
	HostCPUs  int    `json:"host_cpus"`
	GoVersion string `json:"go_version"`
	// ShardChains and ShardEvents size the shard-scaling workload: chains
	// of self-rescheduling instance-local events with a low cross-shard
	// post rate, the sharded kernel's target regime.
	ShardChains int `json:"shard_chains"`
	ShardEvents int `json:"shard_events"`
	// ShardScaling measures the same chain population per shard count;
	// the shards=1 row is the serial kernel (the baseline every speedup
	// is against).
	ShardScaling []KernelShardRow `json:"shard_scaling"`
}

// KernelShardRow is one shard count's throughput on the scaling workload.
type KernelShardRow struct {
	Shards         int     `json:"shards"`
	EventsPerSec   float64 `json:"events_per_sec"`
	Speedup        float64 `json:"speedup_vs_serial"`
	AllocsPerEvent float64 `json:"allocs_per_event"`
	// Kernel is the sharded kernel's self-profile for this row (absent on
	// the serial baseline): why the measured speedup is what it is —
	// window widths, which bound clamped them, and where shards stalled.
	Kernel *KernelProfile `json:"kernel,omitempty"`
}

// KernelProfile is sim.KernelStats rendered for the JSON artifact.
type KernelProfile struct {
	LookaheadSeconds  float64 `json:"lookahead_seconds"`
	CoordinatorEvents uint64  `json:"coordinator_events"`
	TotalEvents       uint64  `json:"total_events"`
	Windows           uint64  `json:"windows"`
	// WindowsBoundByCoordinator counts windows clamped by the next
	// coordinator event; WindowsBoundByLookahead counts windows that
	// opened to the full lookahead.
	WindowsBoundByCoordinator uint64 `json:"windows_bound_by_coordinator"`
	WindowsBoundByLookahead   uint64 `json:"windows_bound_by_lookahead"`
	// WindowWidthBounds are the width histogram's bucket upper bounds as
	// fractions of the lookahead; WindowWidthHist the per-bucket counts.
	WindowWidthBounds []float64 `json:"window_width_bounds_of_lookahead"`
	WindowWidthHist   []uint64  `json:"window_width_hist"`
	// BarrierStallBoundsNanos are the stall histogram's bucket upper
	// bounds in wall nanoseconds (final 0 = unbounded);
	// BarrierStallHist counts one observation per active shard per
	// parallel window.
	BarrierStallBoundsNanos []float64      `json:"barrier_stall_bounds_nanos"`
	BarrierStallHist        []uint64       `json:"barrier_stall_hist"`
	Shards                  []ShardProfile `json:"shards"`
}

// ShardProfile is one shard's slice of the profile.
type ShardProfile struct {
	ID         int    `json:"id"`
	Events     uint64 `json:"events"`
	Windows    uint64 `json:"windows"`
	BusyNanos  uint64 `json:"busy_nanos"`
	StallNanos uint64 `json:"stall_nanos"`
	// StallFraction is StallNanos / (BusyNanos + StallNanos): the share
	// of the shard's in-window wall time spent waiting at barriers.
	StallFraction float64 `json:"stall_fraction"`
}

// KernelProfileFrom renders kernel stats into the JSON artifact shape.
func KernelProfileFrom(st sim.KernelStats) *KernelProfile {
	p := &KernelProfile{
		LookaheadSeconds:          st.Lookahead,
		CoordinatorEvents:         st.CoordinatorEvents,
		TotalEvents:               st.TotalEvents,
		Windows:                   st.Windows,
		WindowsBoundByCoordinator: st.BoundCoordinator,
		WindowsBoundByLookahead:   st.BoundLookahead,
		WindowWidthBounds:         sim.WindowWidthBounds(),
		WindowWidthHist:           append([]uint64(nil), st.WindowWidth[:]...),
		BarrierStallBoundsNanos:   sim.StallBoundsNanos(),
		BarrierStallHist:          append([]uint64(nil), st.BarrierStall[:]...),
	}
	for _, sh := range st.ShardStats {
		sp := ShardProfile{
			ID:         sh.ID,
			Events:     sh.Events,
			Windows:    sh.Windows,
			BusyNanos:  sh.BusyNanos,
			StallNanos: sh.StallNanos,
		}
		if tot := sh.BusyNanos + sh.StallNanos; tot > 0 {
			sp.StallFraction = float64(sh.StallNanos) / float64(tot)
		}
		p.Shards = append(p.Shards, sp)
	}
	return p
}

// kernelChain is the fast-path payload: each firing reschedules itself,
// holding the pending depth constant.
type kernelChain struct {
	s         *sim.Sim
	remaining int
}

func kernelChainStep(arg any) {
	c := arg.(*kernelChain)
	if c.remaining > 0 {
		c.remaining--
		c.s.AfterFunc(1, kernelChainStep, c)
	}
}

// kernelMeasure runs one path to completion and returns (events/sec,
// allocs/event).
func kernelMeasure(events int, run func()) (float64, float64) {
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	start := time.Now()
	run()
	wall := time.Since(start).Seconds()
	runtime.ReadMemStats(&m1)
	eps := 0.0
	if wall > 0 {
		eps = float64(events) / wall
	}
	return eps, float64(m1.Mallocs-m0.Mallocs) / float64(events)
}

// Shard-scaling workload constants: a fleet-sized population of
// instance-local chains (each models one engine's pass/dispatch stream)
// with one cross-shard post per shardPostEvery firings (the router/
// autoscale interaction rate — low, so conservative windows stay large).
const (
	shardChains    = 1024
	shardPostEvery = 1024
	shardLookahead = 1.0
)

// shardChain is one instance-local event stream of the scaling workload.
// Chains reschedule on their own shard clock with a golden-ratio-staggered
// period >= the lookahead, so shards execute large windows between
// barriers.
type shardChain struct {
	clock     sim.Clock
	post      func(t float64, fn sim.Func, arg any)
	dt        float64
	remaining int
	sincePost int
}

func shardChainStep(arg any) {
	c := arg.(*shardChain)
	if c.remaining <= 0 {
		return
	}
	c.remaining--
	c.sincePost++
	if c.sincePost >= shardPostEvery {
		c.sincePost = 0
		// Cross-shard work: a coordinator event outside the lookahead
		// window, the way engines hand completions to the router.
		c.post(c.clock.Now()+2*shardLookahead, shardCoordTick, nil)
	}
	c.clock.AfterFunc(c.dt, shardChainStep, c)
}

func shardCoordTick(any) {}

// shardMeasure runs one shard-scaling cell and returns (events/sec,
// allocs/event) with the event count reported by the kernel itself.
func shardMeasure(run func() uint64) (float64, float64) {
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	start := time.Now()
	n := run()
	wall := time.Since(start).Seconds()
	runtime.ReadMemStats(&m1)
	eps := 0.0
	if wall > 0 && n > 0 {
		eps = float64(n) / wall
	}
	if n == 0 {
		return eps, 0
	}
	return eps, float64(m1.Mallocs-m0.Mallocs) / float64(n)
}

// shardWorkload populates clocks with the chain population. clockFor maps
// a chain index to its shard clock (constant in serial mode); postFor maps
// it to its cross-shard scheduling primitive (Shard.Post in sharded mode —
// the only coordinator-scheduling call legal from a shard worker).
func shardWorkload(steps int, clockFor func(i int) sim.Clock, postFor func(i int) func(t float64, fn sim.Func, arg any)) {
	const phi = 0.6180339887498949
	for i := 0; i < shardChains; i++ {
		fi := float64(i)
		c := &shardChain{
			clock:     clockFor(i),
			post:      postFor(i),
			dt:        shardLookahead * (1 + mod1(fi*phi)/2),
			remaining: steps - 1,
		}
		c.clock.AtFunc(mod1(fi*phi*phi)*shardLookahead, shardChainStep, c)
	}
}

// mod1 returns the fractional part of x.
func mod1(x float64) float64 { return x - float64(int(x)) }

// KernelBench measures the sim kernel's event throughput over roughly the
// given number of events (split across a depth-64 self-rescheduling
// population) on both scheduling paths, then the sharded kernel's scaling
// over the given shard counts (1 = the serial kernel baseline).
func KernelBench(events int, shardCounts []int) (*KernelBenchResult, error) {
	const depth = 64
	if events < depth {
		return nil, fmt.Errorf("experiments: kernel bench needs >= %d events, got %d", depth, events)
	}
	perChain := events / depth
	total := perChain * depth

	res := &KernelBenchResult{Events: total, Depth: depth}

	// Closure path: every reschedule builds a fresh capturing closure,
	// like the engines' dispatch completions did before the fast path.
	res.ClosureEventsPerSec, res.ClosureAllocsPerEvent = kernelMeasure(total, func() {
		var s sim.Sim
		var spawn func(remaining int)
		spawn = func(remaining int) {
			if remaining > 0 {
				s.After(1, func() { spawn(remaining - 1) })
			}
		}
		for i := 0; i < depth; i++ {
			i := i
			s.At(float64(i)/depth, func() { spawn(perChain - 1) })
		}
		s.Run()
	})

	// Fast path: package-level callback, one reused payload per chain.
	res.FastPathEventsPerSec, res.FastPathAllocsPerEvent = kernelMeasure(total, func() {
		var s sim.Sim
		for i := 0; i < depth; i++ {
			c := &kernelChain{s: &s, remaining: perChain - 1}
			s.AtFunc(float64(i)/depth, kernelChainStep, c)
		}
		s.Run()
	})

	if res.ClosureEventsPerSec > 0 {
		res.FastPathSpeedup = res.FastPathEventsPerSec / res.ClosureEventsPerSec
	}

	// Shard scaling: the same fleet-shaped chain population per shard
	// count. Chains round-robin onto shards exactly as engine instances do.
	res.HostCPUs = runtime.NumCPU()
	res.GoVersion = runtime.Version()
	steps := events / shardChains
	if steps < 2 {
		steps = 2
	}
	res.ShardChains = shardChains
	res.ShardEvents = steps * shardChains
	var serialEPS float64
	for _, n := range shardCounts {
		if n < 1 {
			return nil, fmt.Errorf("experiments: shard count must be >= 1, got %d", n)
		}
		var eps, ape float64
		var prof *KernelProfile
		if n == 1 {
			eps, ape = shardMeasure(func() uint64 {
				var s sim.Sim
				shardWorkload(steps,
					func(int) sim.Clock { return &s },
					func(int) func(float64, sim.Func, any) { return s.AtFunc })
				s.Run()
				return s.Executed()
			})
		} else {
			eps, ape = shardMeasure(func() uint64 {
				p := sim.NewSharded(n, shardLookahead)
				shardWorkload(steps,
					func(i int) sim.Clock { return p.Shard(i % n) },
					func(i int) func(float64, sim.Func, any) { return p.Shard(i % n).Post })
				p.Run()
				prof = KernelProfileFrom(p.Stats())
				return p.Executed()
			})
		}
		if n == 1 {
			serialEPS = eps
		}
		row := KernelShardRow{Shards: n, EventsPerSec: eps, AllocsPerEvent: ape, Kernel: prof}
		if serialEPS > 0 {
			row.Speedup = eps / serialEPS
		}
		res.ShardScaling = append(res.ShardScaling, row)
	}
	return res, nil
}
