package experiments

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/sim"
)

// KernelBenchResult captures the sim kernel's raw event throughput and
// allocation cost at a constant pending depth — the regime every serving
// run keeps the kernel in. Two paths are measured on the same workload
// shape: the closure path (a fresh capturing closure per scheduled event,
// the idiom every engine used before the value-heap kernel; the pre-
// refactor kernel additionally paid a heap-allocated *event and a
// container/heap interface boxing per event on top of it) and the
// zero-alloc fast path (package-level callback + reused payload pointer).
// cmd/prefillbench writes this as BENCH_kernel.json so kernel regressions
// show up in the benchmark trajectory.
type KernelBenchResult struct {
	// Events is how many events each path executed.
	Events int `json:"events"`
	// Depth is the constant pending-event depth during the measurement.
	Depth int `json:"depth"`
	// ClosureEventsPerSec is the closure path's throughput.
	ClosureEventsPerSec float64 `json:"closure_events_per_sec"`
	// ClosureAllocsPerEvent is the closure path's heap allocations per event.
	ClosureAllocsPerEvent float64 `json:"closure_allocs_per_event"`
	// FastPathEventsPerSec is the zero-alloc fast path's throughput.
	FastPathEventsPerSec float64 `json:"fastpath_events_per_sec"`
	// FastPathAllocsPerEvent is the fast path's heap allocations per event
	// (0 in steady state; pinned by internal/sim's AllocsPerRun test).
	FastPathAllocsPerEvent float64 `json:"fastpath_allocs_per_event"`
	// FastPathSpeedup is FastPathEventsPerSec / ClosureEventsPerSec.
	FastPathSpeedup float64 `json:"fastpath_speedup"`
}

// kernelChain is the fast-path payload: each firing reschedules itself,
// holding the pending depth constant.
type kernelChain struct {
	s         *sim.Sim
	remaining int
}

func kernelChainStep(arg any) {
	c := arg.(*kernelChain)
	if c.remaining > 0 {
		c.remaining--
		c.s.AfterFunc(1, kernelChainStep, c)
	}
}

// kernelMeasure runs one path to completion and returns (events/sec,
// allocs/event).
func kernelMeasure(events int, run func()) (float64, float64) {
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	start := time.Now()
	run()
	wall := time.Since(start).Seconds()
	runtime.ReadMemStats(&m1)
	eps := 0.0
	if wall > 0 {
		eps = float64(events) / wall
	}
	return eps, float64(m1.Mallocs-m0.Mallocs) / float64(events)
}

// KernelBench measures the sim kernel's event throughput over roughly the
// given number of events (split across a depth-64 self-rescheduling
// population) on both scheduling paths.
func KernelBench(events int) (*KernelBenchResult, error) {
	const depth = 64
	if events < depth {
		return nil, fmt.Errorf("experiments: kernel bench needs >= %d events, got %d", depth, events)
	}
	perChain := events / depth
	total := perChain * depth

	res := &KernelBenchResult{Events: total, Depth: depth}

	// Closure path: every reschedule builds a fresh capturing closure,
	// like the engines' dispatch completions did before the fast path.
	res.ClosureEventsPerSec, res.ClosureAllocsPerEvent = kernelMeasure(total, func() {
		var s sim.Sim
		var spawn func(remaining int)
		spawn = func(remaining int) {
			if remaining > 0 {
				s.After(1, func() { spawn(remaining - 1) })
			}
		}
		for i := 0; i < depth; i++ {
			i := i
			s.At(float64(i)/depth, func() { spawn(perChain - 1) })
		}
		s.Run()
	})

	// Fast path: package-level callback, one reused payload per chain.
	res.FastPathEventsPerSec, res.FastPathAllocsPerEvent = kernelMeasure(total, func() {
		var s sim.Sim
		for i := 0; i < depth; i++ {
			c := &kernelChain{s: &s, remaining: perChain - 1}
			s.AtFunc(float64(i)/depth, kernelChainStep, c)
		}
		s.Run()
	})

	if res.ClosureEventsPerSec > 0 {
		res.FastPathSpeedup = res.FastPathEventsPerSec / res.ClosureEventsPerSec
	}
	return res, nil
}
