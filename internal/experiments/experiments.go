// Package experiments regenerates every table and figure of the paper's
// evaluation (§7) plus its inline micro-measurements. Each artifact has a
// dedicated function returning structured rows; cmd/prefillbench and the
// repository-level benchmarks print them.
package experiments

import (
	"fmt"
	"math"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/hw"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

// scheduleArrivals schedules a dataset onto the clock through submit:
// Poisson arrivals at qps > 0, or closed-loop saturation (everything at
// t=0) otherwise. Arrivals always land on a kernel's coordinator clock —
// submission routes across instances, which is cross-shard work.
func scheduleArrivals(s sim.Clock, ds *workload.Dataset, qps float64, seed int64, submit func(*sched.Request)) error {
	if qps > 0 {
		arrivals, err := workload.AssignPoissonArrivals(ds, qps, seed)
		if err != nil {
			return err
		}
		for _, a := range arrivals {
			a := a
			s.At(a.Time, func() { submit(a.Req) })
		}
		return nil
	}
	for _, r := range ds.Requests {
		r.ArrivalTime = 0
	}
	reqs := ds.Requests
	s.At(0, func() {
		for _, r := range reqs {
			submit(r)
		}
	})
	return nil
}

// latencyStats aggregates completion records: per-request latencies, their
// summary, and throughput over the busy span (first arrival to last
// finish).
func latencyStats(recs []engine.Record) (lats []float64, sum metrics.Summary, tputRPS float64) {
	firstArrival := math.Inf(1)
	lastFinish := 0.0
	for _, r := range recs {
		lats = append(lats, r.Latency())
		firstArrival = math.Min(firstArrival, r.Arrival)
		lastFinish = math.Max(lastFinish, r.Finish)
	}
	sum = metrics.Summarize(lats)
	if span := lastFinish - firstArrival; span > 0 && len(recs) > 0 {
		tputRPS = float64(len(recs)) / span
	}
	return lats, sum, tputRPS
}

// clusterHitRate aggregates prefix-cache hit rate across engines.
func clusterHitRate(engines []engine.Engine) float64 {
	var lookup, hit int64
	for _, e := range engines {
		if c := e.Cache(); c != nil {
			st := c.Stats()
			lookup += st.LookupTokens
			hit += st.HitTokens
		}
	}
	if lookup == 0 {
		return 0
	}
	return float64(hit) / float64(lookup)
}

// EngineKind enumerates the five systems of Figure 6.
type EngineKind int

const (
	// PrefillOnly is the paper's engine (internal/core).
	PrefillOnly EngineKind = iota
	// PagedAttention is the vLLM baseline.
	PagedAttention
	// ChunkedPrefill is the Sarathi-Serve baseline.
	ChunkedPrefill
	// PipelineParallel is the PP=2 baseline.
	PipelineParallel
	// TensorParallel is the TP=2 baseline.
	TensorParallel
)

// String returns the engine's display name.
func (k EngineKind) String() string {
	switch k {
	case PrefillOnly:
		return "PrefillOnly"
	case PagedAttention:
		return "PagedAttention"
	case ChunkedPrefill:
		return "ChunkedPrefill"
	case PipelineParallel:
		return "PipelineParallel"
	case TensorParallel:
		return "TensorParallel"
	default:
		return fmt.Sprintf("engine(%d)", int(k))
	}
}

// AllEngines returns the five compared systems in the paper's legend order.
func AllEngines() []EngineKind {
	return []EngineKind{PrefillOnly, PagedAttention, ChunkedPrefill, PipelineParallel, TensorParallel}
}

// Parallel reports whether the engine spans both GPUs of a scenario.
func (k EngineKind) Parallel() bool {
	return k == PipelineParallel || k == TensorParallel
}

// Scenario is one hardware/model row of Table 3.
type Scenario struct {
	// Name is the short scenario label used in figure captions.
	Name string
	// GPU is the device type (the scenario has two of them).
	GPU *hw.GPU
	// Model is the served model.
	Model *model.Config
}

// Scenarios returns the four rows of Table 3.
func Scenarios() []Scenario {
	return []Scenario{
		{Name: "L4", GPU: hw.L4(), Model: model.Llama31_8B()},
		{Name: "A100", GPU: hw.A100(), Model: model.Qwen32BFP8()},
		{Name: "H100", GPU: hw.H100PCIe(), Model: model.Llama33_70BFP8()},
		{Name: "H100-NVLink", GPU: hw.H100NVLink(), Model: model.Llama33_70BFP8()},
	}
}

// ScenarioByName looks a scenario up by its label.
func ScenarioByName(name string) (Scenario, error) {
	for _, s := range Scenarios() {
		if s.Name == name {
			return s, nil
		}
	}
	return Scenario{}, fmt.Errorf("experiments: unknown scenario %q", name)
}

// DatasetKind selects a workload.
type DatasetKind int

const (
	// PostRecommendation is WL1 (Table 1 row 1).
	PostRecommendation DatasetKind = iota
	// CreditVerification is WL2 (Table 1 row 2).
	CreditVerification
)

// String returns the dataset's display name.
func (d DatasetKind) String() string {
	if d == CreditVerification {
		return "credit-verification"
	}
	return "post-recommendation"
}

// Generate builds the dataset with the paper's Table-1 parameters.
func (d DatasetKind) Generate(seed int64) *workload.Dataset {
	if d == CreditVerification {
		return workload.CreditVerification(workload.CreditVerificationConfig{Seed: seed})
	}
	return workload.PostRecommendation(workload.PostRecommendationConfig{Seed: seed})
}

// RunConfig describes one serving run (one line point of Figure 6).
type RunConfig struct {
	Kind     EngineKind
	Scenario Scenario
	// Dataset provides the requests; its ArrivalTime fields are
	// overwritten by the run.
	Dataset *workload.Dataset
	// QPS is the offered request rate (users arrive in Poisson bursts of
	// RequestsPerUser requests; see workload.AssignPoissonArrivals).
	// QPS <= 0 means closed-loop saturation: everything arrives at t=0.
	QPS float64
	// Seed drives the arrival process.
	Seed int64
	// Lambda overrides PrefillOnly's fairness parameter when > 0;
	// Lambda < 0 means literal zero.
	Lambda float64
	// TotalGPUs is the scenario's GPU count (default 2, as in §7.1).
	TotalGPUs int
	// Shards selects the event kernel: <= 1 serial, >= 2 the sharded
	// kernel with that many workers. Results are identical either way.
	Shards int
}

// RunResult aggregates one run.
type RunResult struct {
	Kind      EngineKind
	Scenario  string
	Dataset   string
	QPS       float64
	Completed int
	// Latency statistics in seconds.
	Latency metrics.Summary
	// ThroughputRPS is completed requests over the busy span.
	ThroughputRPS float64
	// CacheHitRate is hit tokens / looked-up tokens across instances.
	CacheHitRate float64
	// InfeasibleFrac is the fraction of requests that needed the
	// beyond-MIL spill fallback.
	InfeasibleFrac float64
	// Latencies holds per-request latency (arrival order of completion)
	// for CDF plots.
	Latencies []float64
	// Records holds the raw completion records.
	Records []engine.Record
}

// buildCluster constructs the engine instances for a run on the kernel's
// shard clocks and returns the cluster; completions flow through the
// kernel's merged sinks into onComplete.
func buildCluster(rc RunConfig, kern *engine.Kernel, onComplete func(engine.Record)) (*cluster.Cluster, error) {
	totalGPUs := rc.TotalGPUs
	if totalGPUs <= 0 {
		totalGPUs = 2
	}
	profLen := (rc.Dataset.MaxLen/1000 + 1) * 1000
	cfg := engine.Config{
		Model:         rc.Scenario.Model,
		GPU:           rc.Scenario.GPU,
		ProfileMaxLen: profLen,
	}
	sinkFor := kern.CompletionSinks(onComplete)
	instance := func(i int) engine.Config {
		c := cfg
		c.Sim = kern.InstanceClock(i)
		c.OnComplete = sinkFor(i)
		return c
	}
	var engines []engine.Engine
	if rc.Kind.Parallel() {
		for g := 0; g < totalGPUs/2; g++ {
			var e engine.Engine
			var err error
			if rc.Kind == TensorParallel {
				e, err = engine.NewTensorParallel(instance(g))
			} else {
				e, err = engine.NewPipelineParallel(instance(g))
			}
			if err != nil {
				return nil, err
			}
			engines = append(engines, e)
		}
	} else {
		for g := 0; g < totalGPUs; g++ {
			var e engine.Engine
			var err error
			switch rc.Kind {
			case PrefillOnly:
				e, err = core.New(instance(g), core.Options{Lambda: rc.Lambda})
			case PagedAttention:
				e, err = engine.NewPagedAttention(instance(g))
			case ChunkedPrefill:
				e, err = engine.NewChunkedPrefill(instance(g), 0)
			default:
				err = fmt.Errorf("experiments: unknown engine kind %v", rc.Kind)
			}
			if err != nil {
				return nil, err
			}
			engines = append(engines, e)
		}
	}
	return cluster.New(engines...)
}

// Run executes one serving run to completion and aggregates it.
func Run(rc RunConfig) (*RunResult, error) {
	if rc.Dataset == nil {
		return nil, fmt.Errorf("experiments: RunConfig.Dataset is required")
	}
	kern := engine.NewKernel(rc.Shards, engine.MinEventSeconds(rc.Scenario.Model, rc.Scenario.GPU))
	var recs []engine.Record
	cl, err := buildCluster(rc, kern, func(r engine.Record) { recs = append(recs, r) })
	if err != nil {
		return nil, err
	}

	if err := scheduleArrivals(kern.Clock(), rc.Dataset, rc.QPS, rc.Seed, cl.Submit); err != nil {
		return nil, err
	}
	kern.Run()

	if len(recs) != len(rc.Dataset.Requests) {
		return nil, fmt.Errorf("experiments: %d of %d requests completed", len(recs), len(rc.Dataset.Requests))
	}
	res := &RunResult{
		Kind:     rc.Kind,
		Scenario: rc.Scenario.Name,
		Dataset:  rc.Dataset.Name,
		QPS:      rc.QPS,
		Records:  recs,
	}
	res.Completed = len(recs)
	res.Latencies, res.Latency, res.ThroughputRPS = latencyStats(recs)
	infeasible := 0
	for _, r := range recs {
		if r.Infeasible() {
			infeasible++
		}
	}
	res.InfeasibleFrac = float64(infeasible) / float64(len(recs))
	res.CacheHitRate = clusterHitRate(cl.Instances())
	return res, nil
}

// SaturationQPS measures an engine's saturation throughput on a dataset:
// all requests offered at once, throughput in requests/second (the paper's
// "x" for picking the Figure-6 QPS grid).
func SaturationQPS(kind EngineKind, sc Scenario, ds *workload.Dataset) (float64, error) {
	res, err := Run(RunConfig{Kind: kind, Scenario: sc, Dataset: ds, QPS: 0})
	if err != nil {
		return 0, err
	}
	return res.ThroughputRPS, nil
}

// QPSGridMultipliers is the paper's sweep around saturation (§7.2).
var QPSGridMultipliers = []float64{0.25, 0.5, 1, 2, 3, 4}
