package experiments

import (
	"math"
	"testing"
)

// TestRoutingSweep is the routing acceptance check: all three policies
// complete the small sweep, AffinityLoad beats the UserHash baseline on
// mean JCT under Zipf-skewed arrivals, and matches it (within noise) on
// the paper's uniform post-recommendation workload.
func TestRoutingSweep(t *testing.T) {
	rows, err := RoutingSweep(1, true)
	if err != nil {
		t.Fatal(err)
	}
	byKey := make(map[string]RoutingSweepRow)
	for _, r := range rows {
		t.Logf("%-22s %-12s qps=%6.2f meanJCT=%7.3fs p99=%7.3fs hit=%.2f balance=%.2f rejected=%d",
			r.Dataset, r.Policy, r.QPS, r.MeanJCT, r.P99JCT, r.CacheHitRate, r.BalanceRatio, r.Rejected)
		byKey[r.Dataset+"/"+r.Policy] = r
		if r.Completed == 0 {
			t.Fatalf("%s/%s completed nothing", r.Dataset, r.Policy)
		}
	}
	if len(rows) != 6 {
		t.Fatalf("want 3 policies x 2 datasets = 6 rows, got %d", len(rows))
	}

	skewHash := byKey["zipf-skewed/userhash"]
	skewAff := byKey["zipf-skewed/affinity"]
	if skewAff.MeanJCT >= skewHash.MeanJCT {
		t.Errorf("skewed: affinity mean JCT %.3fs not below userhash %.3fs",
			skewAff.MeanJCT, skewHash.MeanJCT)
	}
	if !math.IsInf(skewHash.BalanceRatio, 1) && skewAff.BalanceRatio > skewHash.BalanceRatio {
		t.Errorf("skewed: affinity balance %.2f worse than userhash %.2f",
			skewAff.BalanceRatio, skewHash.BalanceRatio)
	}

	uniHash := byKey["post-recommendation/userhash"]
	uniAff := byKey["post-recommendation/affinity"]
	// "Within noise" on uniform arrivals: affinity must not be materially
	// worse than the baseline that the paper's cluster evaluation uses.
	if uniAff.MeanJCT > 1.25*uniHash.MeanJCT {
		t.Errorf("uniform: affinity mean JCT %.3fs more than 25%% above userhash %.3fs",
			uniAff.MeanJCT, uniHash.MeanJCT)
	}
}

// TestRoutingRunAdmission checks that the sweep runner surfaces admission
// control: a tight backlog bound on closed-loop load must shed requests
// and still account for every request.
func TestRoutingRunAdmission(t *testing.T) {
	sc, err := ScenarioByName("L4")
	if err != nil {
		t.Fatal(err)
	}
	ds := RoutingDatasets(3, true)[0]
	res, err := RoutingRun(RoutingRunConfig{
		Policy: LeastLoadedPolicy, Scenario: sc, Dataset: ds,
		QPS: 0, Seed: 3, Instances: 2, MaxBacklogSeconds: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rejected == 0 {
		t.Fatal("closed-loop load under a 5s bound rejected nothing")
	}
	if res.Completed+res.Rejected != len(ds.Requests) {
		t.Fatalf("completed %d + rejected %d != %d requests",
			res.Completed, res.Rejected, len(ds.Requests))
	}
	if res.Admission.Rejected != int64(res.Rejected) {
		t.Fatalf("admission tally %+v vs rejected %d", res.Admission, res.Rejected)
	}
}
