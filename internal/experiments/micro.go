package experiments

import (
	"repro/internal/graph"
	"repro/internal/hw"
	"repro/internal/jct"
	"repro/internal/model"
)

// Section23Result is the §2.3 micro-measurement: a 2048-token-input,
// 256-token-output generative request vs a 2048-token prefill-only request.
type Section23Result struct {
	PrefillSeconds    float64
	GenerativeSeconds float64
	Slowdown          float64 // paper: ~1.5×
	DecodeBatch       int
}

// Section23 prices both requests on Llama-3.1-8B / H100 with decoding
// amortized over a continuous batch (the paper measures a loaded server).
func Section23(decodeBatch int) (*Section23Result, error) {
	if decodeBatch <= 0 {
		decodeBatch = 64
	}
	exec := graph.New(model.Llama31_8B(), hw.H100PCIe())
	prefill, err := exec.EstimateSeconds(graph.PassSpec{Total: 2048}, graph.StandardOptions())
	if err != nil {
		return nil, err
	}
	decode := 0.0
	for i := 0; i < 256; i++ {
		decode += exec.DecodeStepSeconds(2048+i, decodeBatch)
	}
	gen := prefill + decode
	return &Section23Result{
		PrefillSeconds:    prefill,
		GenerativeSeconds: gen,
		Slowdown:          gen / prefill,
		DecodeBatch:       decodeBatch,
	}, nil
}

// Section63Result is the JCT-proxy validation (§6.3).
type Section63Result struct {
	Pearson float64 // paper: 0.987 on Qwen-32B FP8 / A100
	Points  int
}

// Section63 computes the Pearson correlation between modelled JCT and
// cache-miss tokens over the paper's profiling grid (Qwen-32B FP8 on A100,
// up to 40k tokens at 1000-token granularity).
func Section63() (*Section63Result, error) {
	exec := graph.New(model.Qwen32BFP8(), hw.A100())
	measure := func(nInput, nCached int) (float64, error) {
		return exec.EstimateSeconds(
			graph.PassSpec{Total: nInput, Cached: nCached},
			graph.HybridOptions(graph.DefaultChunkSize))
	}
	const maxLen = 40000
	r, err := jct.ProxyCorrelation(measure, maxLen, jct.ProfileGranularity)
	if err != nil {
		return nil, err
	}
	points := 0
	for n := jct.ProfileGranularity; n <= maxLen; n += jct.ProfileGranularity {
		points += n/jct.ProfileGranularity + 1
	}
	return &Section63Result{Pearson: r, Points: points}, nil
}
