package experiments

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestRunCellsIndexOrder(t *testing.T) {
	for _, parallel := range []int{1, 4, 16} {
		out, stats, err := runCells(parallel, 37, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("parallel=%d: out[%d] = %d, want %d", parallel, i, v, i*i)
			}
		}
		if stats.Cells != 37 {
			t.Fatalf("stats.Cells = %d", stats.Cells)
		}
		if stats.WallSeconds < 0 || stats.SerialEquivalentSeconds < 0 {
			t.Fatalf("negative timing: %+v", stats)
		}
	}
}

func TestRunCellsPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	for _, parallel := range []int{1, 4} {
		_, _, err := runCells(parallel, 10, func(i int) (int, error) {
			if i == 7 {
				return 0, fmt.Errorf("cell %d: %w", i, boom)
			}
			return i, nil
		})
		if !errors.Is(err, boom) {
			t.Fatalf("parallel=%d: err = %v, want wrapped boom", parallel, err)
		}
	}
}

func TestRunCellsSerialStopsAtFirstError(t *testing.T) {
	var ran atomic.Int64
	_, _, err := runCells(1, 10, func(i int) (int, error) {
		ran.Add(1)
		if i == 2 {
			return 0, errors.New("stop")
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("error swallowed")
	}
	if ran.Load() != 3 {
		t.Fatalf("serial path ran %d cells after failure at cell 2", ran.Load())
	}
}

func TestRunCellsZeroCells(t *testing.T) {
	out, stats, err := runCells(4, 0, func(i int) (int, error) { return 0, nil })
	if err != nil || len(out) != 0 || stats.Cells != 0 {
		t.Fatalf("out=%v stats=%+v err=%v", out, stats, err)
	}
}

func TestCellStatsMerge(t *testing.T) {
	a := CellStats{Cells: 2, Parallelism: 1, WallSeconds: 1, SerialEquivalentSeconds: 1, AllocsPerCell: 10}
	b := CellStats{Cells: 6, Parallelism: 4, WallSeconds: 1, SerialEquivalentSeconds: 3, AllocsPerCell: 20}
	m := a.Merge(b)
	if m.Cells != 8 || m.Parallelism != 4 {
		t.Fatalf("merge: %+v", m)
	}
	if m.WallSeconds != 2 || m.SerialEquivalentSeconds != 4 || m.Speedup != 2 {
		t.Fatalf("merge timing: %+v", m)
	}
	if want := (10.0*2 + 20.0*6) / 8; m.AllocsPerCell != want {
		t.Fatalf("merge allocs: %v, want %v", m.AllocsPerCell, want)
	}
}

// mustJSON marshals rows for byte-level comparison.
func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	buf, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

// TestRoutingSweepParallelOracle is the ISSUE-5 determinism oracle for the
// routing sweep: fanning the cells across 4 workers must produce rows
// byte-identical to the serial executor — parallelism may change wall
// clock, never output.
func TestRoutingSweepParallelOracle(t *testing.T) {
	serialRows, _, err := RoutingSweepParallel(1, true, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	parRows, stats, err := RoutingSweepParallel(1, true, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("executor: %d cells, wall %.2fs, serial-equivalent %.2fs, speedup %.2fx",
		stats.Cells, stats.WallSeconds, stats.SerialEquivalentSeconds, stats.Speedup)
	a, b := mustJSON(t, serialRows), mustJSON(t, parRows)
	if string(a) != string(b) {
		t.Fatalf("parallel routing sweep diverged from serial:\nserial:   %s\nparallel: %s", a, b)
	}
}

// TestSLOSweepParallelOracle is the determinism oracle for the SLO sweep.
func TestSLOSweepParallelOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run sweep with profile runs")
	}
	serialRows, _, err := SLOSweepParallel(1, true, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	parRows, _, err := SLOSweepParallel(1, true, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	a, b := mustJSON(t, serialRows), mustJSON(t, parRows)
	if string(a) != string(b) {
		t.Fatalf("parallel slo sweep diverged from serial:\nserial:   %s\nparallel: %s", a, b)
	}
}

// TestAutoscaleSweepParallelOracle covers the sweep whose rows carry the
// most interleaving-sensitive state (controller activity, GPU-seconds).
func TestAutoscaleSweepParallelOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run sweep with profile runs")
	}
	serialRows, _, err := AutoscaleSweepParallel(1, true, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	parRows, _, err := AutoscaleSweepParallel(1, true, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	a, b := mustJSON(t, serialRows), mustJSON(t, parRows)
	if string(a) != string(b) {
		t.Fatalf("parallel autoscale sweep diverged from serial:\nserial:   %s\nparallel: %s", a, b)
	}
}

func TestKernelBench(t *testing.T) {
	res, err := KernelBench(100_000, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Events < 99_000 {
		t.Fatalf("events = %d", res.Events)
	}
	if res.FastPathEventsPerSec <= 0 || res.ClosureEventsPerSec <= 0 {
		t.Fatalf("degenerate throughput: %+v", res)
	}
	// The fast path exists to eliminate per-event allocations; the closure
	// path allocates at least the closure per event.
	if res.FastPathAllocsPerEvent >= res.ClosureAllocsPerEvent {
		t.Fatalf("fast path allocates %.2f/event vs closure %.2f/event",
			res.FastPathAllocsPerEvent, res.ClosureAllocsPerEvent)
	}
	if res.FastPathAllocsPerEvent > 0.05 {
		t.Fatalf("fast path allocates %.3f/event, want ~0", res.FastPathAllocsPerEvent)
	}
	if res.HostCPUs <= 0 || res.GoVersion == "" {
		t.Fatalf("missing provenance: %+v", res)
	}
	if len(res.ShardScaling) != 2 {
		t.Fatalf("shard scaling rows = %d, want 2", len(res.ShardScaling))
	}
	for _, row := range res.ShardScaling {
		if row.EventsPerSec <= 0 {
			t.Fatalf("degenerate shard row: %+v", row)
		}
		// The chain workload is zero-alloc in steady state on both
		// kernels; the sharded row additionally amortizes worker startup
		// and outbox growth over ~100k events.
		if row.AllocsPerEvent > 0.05 {
			t.Fatalf("shard row %d allocates %.3f/event, want ~0", row.Shards, row.AllocsPerEvent)
		}
	}
	if res.ShardScaling[0].Shards != 1 || res.ShardScaling[0].Speedup != 1 {
		t.Fatalf("serial baseline row: %+v", res.ShardScaling[0])
	}
	if _, err := KernelBench(3, nil); err == nil {
		t.Fatal("tiny event count accepted")
	}
}
