package experiments

import (
	"testing"
)

func TestTable1MatchesPaper(t *testing.T) {
	rows := Table1(1)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	pr, cv := rows[0], rows[1]
	if pr.Users != 20 || pr.Requests != 1000 {
		t.Fatalf("post-rec row: %+v", pr)
	}
	if pr.TotalTokens < 11_000_000 || pr.TotalTokens > 18_000_000 {
		t.Fatalf("post-rec tokens = %d, want ~14M", pr.TotalTokens)
	}
	if cv.Users != 60 || cv.Requests != 60 {
		t.Fatalf("credit row: %+v", cv)
	}
	if cv.TotalTokens < 2_400_000 || cv.TotalTokens > 3_700_000 {
		t.Fatalf("credit tokens = %d, want ~3M", cv.TotalTokens)
	}
}

func TestTable2Shapes(t *testing.T) {
	rows, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	mil := make(map[string]map[string]int)
	for _, r := range rows {
		if mil[r.Scenario] == nil {
			mil[r.Scenario] = map[string]int{}
		}
		mil[r.Scenario][r.Engine.String()] = r.MIL
	}
	for _, scen := range []string{"L4", "A100", "H100"} {
		m := mil[scen]
		// Non-parallel ordering: PagedAttention < ChunkedPrefill < PrefillOnly.
		if !(m["PagedAttention"] < m["ChunkedPrefill"] && m["ChunkedPrefill"] < m["PrefillOnly"]) {
			t.Errorf("%s: ordering broken: %v", scen, m)
		}
		// Headline claim: PrefillOnly expands MIL vs non-parallel
		// baselines by a large factor (paper: up to 5x).
		if m["PrefillOnly"] < 3*m["PagedAttention"] {
			t.Errorf("%s: PrefillOnly %d not >=3x PagedAttention %d", scen, m["PrefillOnly"], m["PagedAttention"])
		}
		// Parallelization also expands MIL beyond PagedAttention.
		if m["TensorParallel"] <= m["PagedAttention"] || m["PipelineParallel"] <= m["PagedAttention"] {
			t.Errorf("%s: parallel engines should beat PagedAttention: %v", scen, m)
		}
	}
	// Feasibility marks: PagedAttention cannot run WL2 anywhere; the
	// parallel engines and PrefillOnly run WL2 on A100/H100-class memory.
	for _, r := range rows {
		if r.Engine == PagedAttention && r.WL2OK {
			t.Errorf("PagedAttention marked WL2-feasible on %s (MIL %d)", r.Scenario, r.MIL)
		}
		if r.Engine == PrefillOnly && !r.WL1OK {
			t.Errorf("PrefillOnly not WL1-feasible on %s (MIL %d)", r.Scenario, r.MIL)
		}
	}
}

func TestTable3Catalog(t *testing.T) {
	rows := Table3()
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.WeightGiB <= 0 || r.MemoryGiB <= 0 || r.GPUCount != 2 {
			t.Fatalf("bad row %+v", r)
		}
	}
	if rows[3].Interconnect != "NVLink" {
		t.Fatalf("last scenario should be NVLink: %+v", rows[3])
	}
}

func TestFigure3Shape(t *testing.T) {
	res, err := Figure3()
	if err != nil {
		t.Fatal(err)
	}
	saved := float64(res.StandardPeak-res.HybridPeak) / (1 << 30)
	if saved < 1 || saved > 4 {
		t.Fatalf("peak saving = %.2f GiB, want ~2", saved)
	}
	if len(res.Standard) == 0 || len(res.Hybrid) == 0 {
		t.Fatal("empty traces")
	}
}

func TestFigure4Ratios(t *testing.T) {
	rows := Figure4()
	byName := map[string]Figure4Row{}
	for _, r := range rows {
		byName[r.Tensor] = r
	}
	if got := byName["intermediate1 (gate+up)"].VsOneLayerKV; got != 14 {
		t.Fatalf("intermediate1 ratio = %v, want 14", got)
	}
	if got := byName["intermediate2 (SwiGLU)"].VsOneLayerKV; got != 7 {
		t.Fatalf("intermediate2 ratio = %v, want 7", got)
	}
	if byName["intermediate1 (gate+up)"].Shape != [2]int{32768, 28672} {
		t.Fatalf("intermediate1 shape = %v", byName["intermediate1 (gate+up)"].Shape)
	}
}

// Figure 5's exact claim: FIFO and static SRJF get 1 cache hit; calibrated
// SRJF gets 2 by scheduling D right after A.
func TestFigure5CacheHits(t *testing.T) {
	rows, err := Figure5()
	if err != nil {
		t.Fatal(err)
	}
	byPolicy := map[string]Figure5Result{}
	for _, r := range rows {
		byPolicy[r.Policy] = r
	}
	if h := byPolicy["FIFO"].CacheHits; h != 1 {
		t.Errorf("FIFO cache hits = %d (%v), want 1", h, byPolicy["FIFO"].Order)
	}
	if h := byPolicy["SRJF"].CacheHits; h != 1 {
		t.Errorf("SRJF cache hits = %d (%v), want 1", h, byPolicy["SRJF"].Order)
	}
	if h := byPolicy["SRJF+calibration"].CacheHits; h != 2 {
		t.Errorf("calibrated cache hits = %d (%v), want 2", h, byPolicy["SRJF+calibration"].Order)
	}
	// Orders: FIFO = arrival; SRJF = shortest-first A,C,B,D; calibrated
	// schedules D second.
	if o := byPolicy["SRJF"].Order; len(o) == 4 && !(o[0] == "A" && o[1] == "C") {
		t.Errorf("SRJF order = %v, want A,C,...", o)
	}
	if o := byPolicy["SRJF+calibration"].Order; len(o) == 4 && !(o[0] == "A" && o[1] == "D") {
		t.Errorf("calibrated order = %v, want A,D,...", o)
	}
}

func TestFigure10Shape(t *testing.T) {
	rows, err := Figure10()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Monotone improvement across the ablation.
	for i := 1; i < len(rows); i++ {
		if rows[i].MIL <= rows[i-1].MIL {
			t.Errorf("ablation not monotone: %v", rows)
		}
	}
	// Paper: full hybrid ≈ 7.9x vanilla vLLM. Our allocator model is
	// exact (no PyTorch fragmentation or framework buffers), so the gain
	// lands higher; EXPERIMENTS.md records the deviation.
	ratio := float64(rows[4].MIL) / float64(rows[0].MIL)
	if ratio < 4 || ratio > 25 {
		t.Errorf("hybrid/vanilla MIL ratio = %.1f, want >>1 (paper 7.9)", ratio)
	}
}

func TestSection23Ratio(t *testing.T) {
	res, err := Section23(64)
	if err != nil {
		t.Fatal(err)
	}
	if res.Slowdown < 1.2 || res.Slowdown > 2.5 {
		t.Fatalf("generative slowdown = %.2fx, want ~1.5x", res.Slowdown)
	}
}

func TestSection63Correlation(t *testing.T) {
	res, err := Section63()
	if err != nil {
		t.Fatal(err)
	}
	if res.Pearson < 0.95 || res.Pearson > 1 {
		t.Fatalf("proxy correlation = %.4f, want ~0.987", res.Pearson)
	}
}

// A scaled-down Figure-6-style run: PrefillOnly must complete everything
// and beat PagedAttention on mean latency at high offered load.
func TestRunSmallSweep(t *testing.T) {
	sc, err := ScenarioByName("L4")
	if err != nil {
		t.Fatal(err)
	}
	ds := SmallDataset(PostRecommendation, 1)
	x, err := SaturationQPS(PrefillOnly, sc, ds)
	if err != nil {
		t.Fatal(err)
	}
	if x <= 0 {
		t.Fatal("zero saturation throughput")
	}
	po, err := Run(RunConfig{Kind: PrefillOnly, Scenario: sc, Dataset: ds, QPS: 2 * x, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	pa, err := Run(RunConfig{Kind: PagedAttention, Scenario: sc, Dataset: ds, QPS: 2 * x, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if po.Completed != len(ds.Requests) || pa.Completed != len(ds.Requests) {
		t.Fatalf("incomplete runs: %d, %d", po.Completed, pa.Completed)
	}
	// At this scale both engines cache well; PrefillOnly must at least
	// not lose (the decisive wins appear at Table-1 scale — see the
	// Figure 6/9 benches).
	if po.Latency.Mean > 1.10*pa.Latency.Mean {
		t.Errorf("PrefillOnly mean %.2fs well above PagedAttention %.2fs at 2x saturation",
			po.Latency.Mean, pa.Latency.Mean)
	}
	if po.CacheHitRate < 0.3 {
		t.Errorf("PrefillOnly hit rate = %.2f on post-recommendation, want substantial", po.CacheHitRate)
	}
}

func TestRunValidation(t *testing.T) {
	sc, _ := ScenarioByName("L4")
	if _, err := Run(RunConfig{Kind: PrefillOnly, Scenario: sc}); err == nil {
		t.Error("nil dataset accepted")
	}
	if _, err := ScenarioByName("TPU"); err == nil {
		t.Error("unknown scenario accepted")
	}
}

func TestEngineKindStrings(t *testing.T) {
	for _, k := range AllEngines() {
		if k.String() == "" {
			t.Fatal("empty engine name")
		}
	}
	if !TensorParallel.Parallel() || PrefillOnly.Parallel() {
		t.Fatal("Parallel() wrong")
	}
}
