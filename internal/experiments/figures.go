package experiments

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/hw"
	"repro/internal/kvcache"
	"repro/internal/memory"
	"repro/internal/model"
	"repro/internal/sched"
)

// Figure3Result holds the two memory traces of Figure 3: prefilling 32,768
// tokens through Llama-3.1-8B with and without hybrid prefilling (both
// retain full KV, as the paper's traces do).
type Figure3Result struct {
	Tokens       int
	Standard     []memory.TracePoint
	Hybrid       []memory.TracePoint
	StandardPeak int64
	HybridPeak   int64
	// WeightBytes is the baseline the paper's y-axis sits on (the traces
	// show allocator state above the resident weights).
	WeightBytes int64
}

// Figure3 regenerates the Figure-3 traces.
func Figure3() (*Figure3Result, error) {
	const tokens = 32768
	m := model.Llama31_8B()
	exec := graph.New(m, hw.L4())
	spec := graph.PassSpec{Total: tokens}

	std, err := exec.Run(spec, graph.StandardOptions(), memory.New(0), true)
	if err != nil {
		return nil, err
	}
	hybridOpts := graph.Options{Mode: graph.Hybrid, ChunkSize: graph.DefaultChunkSize,
		KV: graph.RetainAll, OutputPrealloc: true, InPlace: true}
	hyb, err := exec.Run(spec, hybridOpts, memory.New(0), true)
	if err != nil {
		return nil, err
	}
	return &Figure3Result{
		Tokens:       tokens,
		Standard:     std.Trace,
		Hybrid:       hyb.Trace,
		StandardPeak: std.PeakBytes,
		HybridPeak:   hyb.PeakBytes,
		WeightBytes:  m.WeightBytes(),
	}, nil
}

// Figure4Row is one tensor of the Figure-4 MLP walkthrough.
type Figure4Row struct {
	Tensor       string
	Shape        [2]int
	Bytes        int64
	VsOneLayerKV float64
}

// Figure4 regenerates the MLP tensor-size inventory for a 32,768-token
// Llama-3.1-8B pass.
func Figure4() []Figure4Row {
	const n = 32768
	m := model.Llama31_8B()
	kv := m.KVBytesPerTokenLayer() * n
	row := func(name string, cols int, bytes int64) Figure4Row {
		return Figure4Row{
			Tensor:       name,
			Shape:        [2]int{n, cols},
			Bytes:        bytes,
			VsOneLayerKV: float64(bytes) / float64(kv),
		}
	}
	return []Figure4Row{
		row("input", m.Hidden, m.HiddenBytesPerToken()*n),
		row("intermediate1 (gate+up)", 2*m.Intermediate, m.MLPIntermediate1BytesPerToken()*n),
		row("intermediate2 (SwiGLU)", m.Intermediate, m.MLPIntermediate2BytesPerToken()*n),
		row("output", m.Hidden, m.HiddenBytesPerToken()*n),
		row("one-layer KV", 2*m.KVDim(), kv),
	}
}

// Figure5Result walks the four-request example of Figures 5 through the
// three schedulers and reports execution order and prefix-cache hits.
type Figure5Result struct {
	Policy string
	// Order is the execution order by request name.
	Order []string
	// CacheHits is the number of requests that hit the prefix cache.
	CacheHits int
}

// Figure5 reproduces the §6.2/§6.3 walkthrough: requests A, B, C, D arrive
// together with lengths A < C < B < D; A and D share a prefix, B and C
// share a prefix; the cache holds the state of exactly one request. FIFO
// and static SRJF each get one cache hit; SRJF with continuous calibration
// gets two.
func Figure5() ([]Figure5Result, error) {
	// Lengths in blocks of 16 tokens, A < C < B < D.
	lens := map[string]int{"A": 1600, "C": 2400, "B": 3200, "D": 4000}
	const shared = 1600 // A∩D and B∩C shared prefix length
	mk := func(name string, stream uint64, id int64) *sched.Request {
		n := lens[name]
		toks := make([]uint64, n)
		for i := range toks {
			toks[i] = stream<<32 | uint64(i)
		}
		return &sched.Request{ID: id, Tokens: toks, ArrivalTime: 0}
	}
	// A and D share stream 1 (D extends A); B and C share stream 2
	// (B extends C).
	reqs := map[string]*sched.Request{
		"A": mk("A", 1, 1),
		"D": mk("D", 1, 4),
		"C": mk("C", 2, 3),
		"B": mk("B", 2, 2),
	}

	names := func(r *sched.Request) string {
		for n, q := range reqs {
			if q == r {
				return n
			}
		}
		return "?"
	}

	run := func(policy string, mksched func(c *kvcache.Manager) sched.Scheduler) (Figure5Result, error) {
		// Cache sized to one request's full KV (the largest, D).
		cache, err := kvcache.New(kvcache.Config{
			BlockTokens:   16,
			BytesPerToken: 1,
			CapacityBytes: int64(lens["D"]),
		})
		if err != nil {
			return Figure5Result{}, err
		}
		s := mksched(cache)
		for _, n := range []string{"A", "B", "C", "D"} {
			r := reqs[n]
			r.BlockHashes = nil // fresh hash cache per policy run
			s.Enqueue(r)
		}
		res := Figure5Result{Policy: policy}
		now := 0.0
		for {
			r := s.Next(now)
			if r == nil {
				break
			}
			hit := cache.Lookup(r.Tokens, now)
			// The paper's walkthrough counts a request as a cache
			// hit when it reuses the full shared prefix (our
			// block-granular cache can also retain partial
			// prefixes, which the idealized example abstracts
			// away).
			if hit >= shared {
				res.CacheHits++
			}
			// Execution takes time proportional to cache-miss tokens.
			now += float64(r.Len() - hit)
			cache.Insert(r.Tokens, r.Len(), now)
			res.Order = append(res.Order, names(r))
		}
		return res, nil
	}

	jctOf := func(c *kvcache.Manager) sched.JCTFunc {
		return func(r *sched.Request) float64 {
			return float64(r.Len() - c.PeekH(engine.HashesOf(r, c.BlockTokens())))
		}
	}
	var out []Figure5Result
	fifo, err := run("FIFO", func(c *kvcache.Manager) sched.Scheduler { return sched.NewFIFO() })
	if err != nil {
		return nil, err
	}
	out = append(out, fifo)
	srjf, err := run("SRJF", func(c *kvcache.Manager) sched.Scheduler { return sched.NewSRJF(jctOf(c)) })
	if err != nil {
		return nil, err
	}
	out = append(out, srjf)
	cal, err := run("SRJF+calibration", func(c *kvcache.Manager) sched.Scheduler {
		s := sched.NewCalibrated(jctOf(c), 0)
		// Incremental mode: rekey only on cache membership changes.
		engine.AttachIncremental(s, c)
		return s
	})
	if err != nil {
		return nil, err
	}
	out = append(out, cal)
	return out, nil
}

// Figure10Row is one bar of the hybrid-prefilling MIL ablation.
type Figure10Row struct {
	Config string
	MIL    int
}

// Figure10 regenerates the ablation: vanilla vLLM, chunked prefill, then
// hybrid prefilling with optimizations added one at a time, on Qwen-2.5-32B
// FP8 / one A100.
func Figure10() ([]Figure10Row, error) {
	m := modelForFigure10()
	g := hw.A100()
	exec := graph.New(m, g)
	budget := g.UsableBytes() - m.WeightBytes()
	if budget <= 0 {
		return nil, fmt.Errorf("figure10: weights do not fit")
	}
	configs := []struct {
		name string
		opts graph.Options
	}{
		{"vanilla-vllm", graph.StandardOptions()},
		{"chunked-prefill", graph.ChunkedOptions(graph.DefaultChunkSize)},
		{"hybrid-chunking", graph.Options{Mode: graph.Hybrid, ChunkSize: graph.DefaultChunkSize, KV: graph.RetainOneLayer}},
		{"hybrid+prealloc", graph.Options{Mode: graph.Hybrid, ChunkSize: graph.DefaultChunkSize, KV: graph.RetainOneLayer, OutputPrealloc: true}},
		{"hybrid+prealloc+inplace", graph.HybridOptions(graph.DefaultChunkSize)},
	}
	out := make([]Figure10Row, 0, len(configs))
	for _, c := range configs {
		mil, err := exec.MaxInputLength(c.opts, budget)
		if err != nil {
			return nil, fmt.Errorf("figure10 %s: %w", c.name, err)
		}
		out = append(out, Figure10Row{Config: c.name, MIL: mil})
	}
	return out, nil
}
