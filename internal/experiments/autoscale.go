package experiments

import (
	"errors"
	"fmt"

	"repro/internal/autoscale"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/router"
	"repro/internal/workload"
)

// AutoscaleRunConfig describes one open-loop run against either a fixed
// fleet or an elastic (autoscaled) pool.
type AutoscaleRunConfig struct {
	Scenario Scenario
	// Dataset provides the requests; arrival times are overwritten by the
	// open-loop process.
	Dataset *workload.Dataset
	// Rate is the time-varying offered load; MaxRate bounds it (thinning
	// envelope).
	Rate    workload.RateFn
	MaxRate float64
	Seed    int64
	// FixedInstances > 0 provisions a fixed fleet of that size and
	// disables the controller. Otherwise the pool starts at MinInstances
	// and scales up to MaxInstances.
	FixedInstances int
	// MinInstances and MaxInstances bound the elastic pool (defaults 1
	// and 4).
	MinInstances, MaxInstances int
	// MaxBacklogSeconds is the admission bound (default 30): requests
	// whose projected wait exceeds it are shed, which is the SLO signal
	// the fixed-vs-elastic comparison holds constant.
	MaxBacklogSeconds float64
	// Controller overrides the autoscaler's tuning; Min/Max/Model/GPU and
	// the cold start are filled in from this config's fields.
	Controller autoscale.Config
	// Lambda overrides PrefillOnly's fairness parameter (0 = default).
	Lambda float64
	// Shards selects the event kernel: <= 1 serial, >= 2 the sharded
	// kernel with that many workers. Results are identical either way.
	Shards int
}

func (rc *AutoscaleRunConfig) defaults() error {
	if rc.Dataset == nil {
		return fmt.Errorf("experiments: AutoscaleRunConfig.Dataset is required")
	}
	if rc.Rate == nil {
		return fmt.Errorf("experiments: AutoscaleRunConfig.Rate is required")
	}
	if rc.MinInstances <= 0 {
		rc.MinInstances = 1
	}
	if rc.MaxInstances <= 0 {
		rc.MaxInstances = 4
	}
	if rc.MaxBacklogSeconds == 0 {
		rc.MaxBacklogSeconds = 30
	}
	return nil
}

// AutoscaleRunResult aggregates one open-loop run.
type AutoscaleRunResult struct {
	// Mode is "fixed-N" or "autoscale-MIN:MAX".
	Mode      string
	Dataset   string
	Completed int
	Rejected  int
	// ShedRate is rejected / offered.
	ShedRate float64
	// Latency summarizes completed requests only.
	Latency       metrics.Summary
	ThroughputRPS float64
	// GPUSeconds is the provisioning cost: GPUs owned integrated over the
	// run (cold starts and draining included). The figure of merit the
	// elastic pool minimizes at held shed rate.
	GPUSeconds float64
	// MakespanSeconds is the simulated end time (last completion).
	MakespanSeconds float64
	// Pool trajectory and controller activity (zero for fixed fleets).
	PeakInstances, TroughInstances int
	ScaleUps, ScaleDowns           int
	ColdStartSeconds               float64
}

// AutoscaleRun executes one open-loop run to completion.
func AutoscaleRun(rc AutoscaleRunConfig) (*AutoscaleRunResult, error) {
	if err := rc.defaults(); err != nil {
		return nil, err
	}
	initial := rc.MinInstances
	if rc.FixedInstances > 0 {
		initial = rc.FixedInstances
	}
	kern := engine.NewKernel(rc.Shards, engine.MinEventSeconds(rc.Scenario.Model, rc.Scenario.GPU))
	var recs []engine.Record
	var rt *router.Router
	profLen := (rc.Dataset.MaxLen/1000 + 1) * 1000
	cfg := engine.Config{
		Model:         rc.Scenario.Model,
		GPU:           rc.Scenario.GPU,
		ProfileMaxLen: profLen,
	}
	sinkFor := kern.CompletionSinks(func(r engine.Record) {
		if rt != nil {
			rt.Completed(r)
		}
		recs = append(recs, r)
	})
	// The factory serves both initial construction and mid-run scale-ups:
	// built counts every instance ever created, so autoscaled additions
	// continue the shard rotation deterministically.
	built := 0
	factory := func() (engine.Engine, error) {
		c := cfg
		c.Sim = kern.InstanceClock(built)
		c.OnComplete = sinkFor(built)
		built++
		return core.New(c, core.Options{Lambda: rc.Lambda})
	}
	engines := make([]engine.Engine, initial)
	for i := range engines {
		e, err := factory()
		if err != nil {
			return nil, err
		}
		engines[i] = e
	}
	var err error
	rt, err = router.New(router.Config{
		Policy:            router.AffinityLoad{},
		MaxBacklogSeconds: rc.MaxBacklogSeconds,
	}, engines...)
	if err != nil {
		return nil, err
	}

	var ctl *autoscale.Controller
	mode := fmt.Sprintf("fixed-%d", initial)
	if rc.FixedInstances <= 0 {
		ccfg := rc.Controller
		ccfg.MinInstances = rc.MinInstances
		ccfg.MaxInstances = rc.MaxInstances
		ccfg.Model = rc.Scenario.Model
		ccfg.GPU = rc.Scenario.GPU
		ctl, err = autoscale.New(ccfg, kern.Clock(), rt, factory)
		if err != nil {
			return nil, err
		}
		ctl.Start()
		mode = fmt.Sprintf("autoscale-%d:%d", rc.MinInstances, rc.MaxInstances)
	}

	arrivals, err := workload.AssignOpenLoopArrivals(rc.Dataset, rc.Rate, rc.MaxRate, rc.Seed)
	if err != nil {
		return nil, err
	}
	rejected := 0
	var submitErr error
	clock := kern.Clock()
	for _, a := range arrivals {
		a := a
		clock.At(a.Time, func() {
			err := rt.Submit(a.Req)
			if err == nil {
				return
			}
			var rej *router.RejectError
			if errors.As(err, &rej) {
				rejected++
			} else if submitErr == nil {
				submitErr = err
			}
		})
	}
	end := kern.Run()
	if submitErr != nil {
		return nil, submitErr
	}
	if ctl != nil {
		if err := ctl.Err(); err != nil {
			return nil, err
		}
	}
	if len(recs)+rejected != len(rc.Dataset.Requests) {
		return nil, fmt.Errorf("experiments: %d completed + %d rejected of %d requests",
			len(recs), rejected, len(rc.Dataset.Requests))
	}

	res := &AutoscaleRunResult{
		Mode:            mode,
		Dataset:         rc.Dataset.Name,
		Completed:       len(recs),
		Rejected:        rejected,
		ShedRate:        float64(rejected) / float64(len(rc.Dataset.Requests)),
		MakespanSeconds: end,
		PeakInstances:   initial,
		TroughInstances: initial,
	}
	_, res.Latency, res.ThroughputRPS = latencyStats(recs)
	if ctl != nil {
		st := ctl.Stats()
		res.GPUSeconds = ctl.GPUSeconds(end)
		res.PeakInstances = st.PeakInstances
		res.TroughInstances = st.MinInstances
		res.ScaleUps = st.ScaleUps
		res.ScaleDowns = st.ScaleDowns
		res.ColdStartSeconds = st.ColdStartSeconds
	} else {
		res.GPUSeconds = float64(rt.GPUs()) * end
	}
	return res, nil
}

// AutoscaleSweepRow is one mode of the fixed-vs-elastic comparison.
type AutoscaleSweepRow struct {
	Mode       string  `json:"mode"`
	Dataset    string  `json:"dataset"`
	MeanJCT    float64 `json:"mean_jct_seconds"`
	P99JCT     float64 `json:"p99_jct_seconds"`
	ShedRate   float64 `json:"shed_rate"`
	GPUSeconds float64 `json:"gpu_seconds"`
	// GPUSavingsVsPeak is 1 - GPUSeconds/GPUSeconds(fixed peak fleet).
	GPUSavingsVsPeak float64 `json:"gpu_savings_vs_peak"`
	Completed        int     `json:"completed"`
	Rejected         int     `json:"rejected"`
	PeakInstances    int     `json:"peak_instances"`
	TroughInstances  int     `json:"trough_instances"`
	ScaleUps         int     `json:"scale_ups"`
	ScaleDowns       int     `json:"scale_downs"`
	ColdStartSeconds float64 `json:"cold_start_seconds"`
}

// AutoscaleSweep compares provisioning strategies on the square-wave
// burst scenario: a fixed trough-sized fleet (sheds the peak), a fixed
// peak-sized fleet (over-provisions the trough), and the elastic pool,
// all at the same admission bound. The elastic pool should match the
// peak fleet's shed rate at materially fewer GPU-seconds. Serial
// convenience wrapper around AutoscaleSweepParallel.
func AutoscaleSweep(seed int64, small bool) ([]AutoscaleSweepRow, error) {
	rows, _, err := AutoscaleSweepParallel(seed, small, 1, 1)
	return rows, err
}

// AutoscaleSweepParallel is AutoscaleSweep fanned across the cell
// executor: one saturation cell, then the three provisioning modes as
// independent cells (each generates its own dataset; arrivals are
// restamped per run). The savings-vs-peak column is derived after all
// cells return, so rows are byte-identical at any parallelism — and at any
// shard count (shards picks each cell's event kernel).
func AutoscaleSweepParallel(seed int64, small bool, parallel, shards int) ([]AutoscaleSweepRow, CellStats, error) {
	sc, err := ScenarioByName("L4")
	if err != nil {
		return nil, CellStats{}, err
	}
	// Scenario constants follow two sizing rules. The floor must absorb a
	// burst front for roughly one cold start, and the admission bound must
	// be deep enough that the front (a batch of cache-cold users landing
	// inside one control tick) fits in the floor's backlog headroom while
	// a sustained 3x overload still overruns the trough fleet. The full
	// workload's 8k-token cold profiles roughly triple both the front and
	// the slope, so its floor and bound scale up with it.
	minInst, bound := 1, 8.0
	if !small {
		minInst, bound = 2, 12.0
	}
	const maxInst = 4
	mkDataset := func() *workload.Dataset {
		if small {
			return workload.Skewed(workload.SkewedConfig{
				Users: 24, Requests: 144, ProfileMean: 3000, ProfileStd: 800,
				ProfileMin: 1500, ProfileMax: 5000, Seed: seed,
			})
		}
		return workload.Skewed(workload.SkewedConfig{Seed: seed})
	}
	// Per-instance saturation: SaturationQPS measures the default
	// two-instance cluster. One cell — the runner still times it so the
	// sweep's serial-equivalent accounting covers the whole sweep.
	satDS := mkDataset()
	sat, satStats, err := runCells(1, 1, func(int) (float64, error) {
		return SaturationQPS(PrefillOnly, sc, satDS)
	})
	if err != nil {
		return nil, satStats, fmt.Errorf("autoscale saturation: %w", err)
	}
	x := sat[0]
	perInst := x / 2
	// Square wave: trough keeps the floor ~70% busy, peak needs ~80% of
	// the full ceiling. Period sized so the run spans ~3 cycles.
	// Trough load keeps roughly one instance busy; peak needs ~80% of the
	// full ceiling — a >3x swing, which is what a static fleet cannot
	// serve efficiently from either end.
	base := 0.7 * perInst
	peak := 0.8 * perInst * float64(maxInst)
	const duty = 0.4
	avgRate := duty*peak + (1-duty)*base
	n := len(satDS.Requests)
	period := float64(n) / avgRate / 3
	rate := workload.SquareWaveRate(base, peak, period, duty)

	runs := []AutoscaleRunConfig{
		{Scenario: sc, Rate: rate, MaxRate: peak, Seed: seed, FixedInstances: minInst, MaxBacklogSeconds: bound},
		{Scenario: sc, Rate: rate, MaxRate: peak, Seed: seed, FixedInstances: maxInst, MaxBacklogSeconds: bound},
		{Scenario: sc, Rate: rate, MaxRate: peak, Seed: seed, MinInstances: minInst, MaxInstances: maxInst, MaxBacklogSeconds: bound},
	}
	rows, runStats, err := runCells(parallel, len(runs), func(i int) (AutoscaleSweepRow, error) {
		rc := runs[i]
		rc.Dataset = mkDataset() // fresh dataset per cell: arrivals are restamped
		rc.Shards = shards
		res, err := AutoscaleRun(rc)
		if err != nil {
			return AutoscaleSweepRow{}, fmt.Errorf("autoscale %s: %w", rc.Dataset.Name, err)
		}
		return AutoscaleSweepRow{
			Mode:             res.Mode,
			Dataset:          res.Dataset,
			MeanJCT:          res.Latency.Mean,
			P99JCT:           res.Latency.P99,
			ShedRate:         res.ShedRate,
			GPUSeconds:       res.GPUSeconds,
			Completed:        res.Completed,
			Rejected:         res.Rejected,
			PeakInstances:    res.PeakInstances,
			TroughInstances:  res.TroughInstances,
			ScaleUps:         res.ScaleUps,
			ScaleDowns:       res.ScaleDowns,
			ColdStartSeconds: res.ColdStartSeconds,
		}, nil
	})
	if err != nil {
		return nil, satStats.Merge(runStats), err
	}
	var peakGPUSeconds float64
	for i := range rows {
		if runs[i].FixedInstances == maxInst {
			peakGPUSeconds = rows[i].GPUSeconds
		}
	}
	for i := range rows {
		if peakGPUSeconds > 0 {
			rows[i].GPUSavingsVsPeak = 1 - rows[i].GPUSeconds/peakGPUSeconds
		}
	}
	return rows, satStats.Merge(runStats), nil
}
