package experiments

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/router"
	"repro/internal/sched"
	"repro/internal/timeseries"
	"repro/internal/trace"
	"repro/internal/workload"
)

// RoutingPolicyKind enumerates the routing policies the sweep compares.
type RoutingPolicyKind int

const (
	// UserHashPolicy is the paper's fixed-instance baseline.
	UserHashPolicy RoutingPolicyKind = iota
	// LeastLoadedPolicy routes to the smallest estimated backlog.
	LeastLoadedPolicy
	// AffinityLoadPolicy is power-of-two-choices between the prefix-
	// affinity home and the least-loaded instance.
	AffinityLoadPolicy
)

// String returns the policy's display name.
func (k RoutingPolicyKind) String() string { return k.Policy().Name() }

// Policy constructs the router policy.
func (k RoutingPolicyKind) Policy() router.Policy {
	switch k {
	case LeastLoadedPolicy:
		return router.LeastLoaded{}
	case AffinityLoadPolicy:
		return router.AffinityLoad{}
	default:
		return router.UserHash{}
	}
}

// AllRoutingPolicies returns the compared policies in sweep order.
func AllRoutingPolicies() []RoutingPolicyKind {
	return []RoutingPolicyKind{UserHashPolicy, LeastLoadedPolicy, AffinityLoadPolicy}
}

// RoutingRunConfig describes one routed serving run.
type RoutingRunConfig struct {
	Policy   RoutingPolicyKind
	Scenario Scenario
	// Dataset provides the requests; arrival times are overwritten.
	Dataset *workload.Dataset
	// QPS is the offered request rate; <= 0 means closed-loop (all at t=0).
	QPS  float64
	Seed int64
	// Instances is the PrefillOnly instance count (default 4, one GPU each).
	Instances int
	// MaxBacklogSeconds enables admission control when positive.
	MaxBacklogSeconds float64
	// Lambda overrides PrefillOnly's fairness parameter (0 = default).
	Lambda float64
	// Tracer, when non-nil, records the run's request lifecycle and fleet
	// gauges into the flight recorder (export with WriteTrace). The sweep
	// paths leave it nil so their cells stay deterministic and lean.
	Tracer *trace.Recorder
	// Timeseries, when non-nil, collects the run's windowed series. The
	// run installs its own gauge sampler and boundary ticker on the
	// collector; callers just construct it with the interval they want.
	Timeseries *timeseries.Collector
	// Shards selects the event kernel: <= 1 serial, >= 2 the sharded
	// kernel with that many workers. Results are identical either way.
	Shards int
}

// RoutingRunResult aggregates one routed run.
type RoutingRunResult struct {
	Policy    string
	Dataset   string
	QPS       float64
	Completed int
	Rejected  int
	// Latency summarizes completed requests only.
	Latency       metrics.Summary
	ThroughputRPS float64
	CacheHitRate  float64
	// RoutedTokens is the cumulative tokens each instance received.
	RoutedTokens []int64
	// BalanceRatio is max/min per-instance routed tokens (+Inf when an
	// instance received nothing) — the load-balance figure of merit.
	BalanceRatio float64
	// Admission is the policy's accept/reject tally.
	Admission metrics.AdmissionCount
}

// RoutingRun executes one routed serving run to completion.
func RoutingRun(rc RoutingRunConfig) (*RoutingRunResult, error) {
	return RoutingRunPolicy(rc, rc.Policy.Policy())
}

// TracedRoutingRun is RoutingRun with a fresh flight recorder attached
// (maxSpans <= 0 takes the default ring depth): one instrumented run whose
// full request lifecycle — submit, route/reject, queue, exec, pass stages —
// and fleet gauges land in the returned recorder, ready for WriteTrace.
func TracedRoutingRun(rc RoutingRunConfig, maxSpans int) (*RoutingRunResult, *trace.Recorder, error) {
	rc.Tracer = trace.New(maxSpans)
	res, err := RoutingRun(rc)
	return res, rc.Tracer, err
}

// RoutingRunPolicy is RoutingRun with an arbitrary (possibly custom)
// router policy; rc.Policy is ignored.
func RoutingRunPolicy(rc RoutingRunConfig, pol router.Policy) (*RoutingRunResult, error) {
	if rc.Dataset == nil {
		return nil, fmt.Errorf("experiments: RoutingRunConfig.Dataset is required")
	}
	instances := rc.Instances
	if instances <= 0 {
		instances = 4
	}
	kern := engine.NewKernel(rc.Shards, engine.MinEventSeconds(rc.Scenario.Model, rc.Scenario.GPU))
	var recs []engine.Record
	var rt *router.Router
	profLen := (rc.Dataset.MaxLen/1000 + 1) * 1000
	cfg := engine.Config{
		Model:         rc.Scenario.Model,
		GPU:           rc.Scenario.GPU,
		ProfileMaxLen: profLen,
		Tracer:        rc.Tracer,
	}
	// Router accounting and the record slice are shared state: completions
	// flow through the kernel's merged sinks so the sharded kernel applies
	// them in the serial kernel's global finish order.
	sinkFor := kern.CompletionSinks(func(r engine.Record) {
		if rt != nil {
			rt.Completed(r)
		}
		recs = append(recs, r)
		// Pass the record's own finish time: under the sharded kernel this
		// sink runs at window barriers, after the coordinator clock moved on.
		rc.Timeseries.Complete(r.Finish, r.Req.Class, r.Latency())
	})
	engines := make([]engine.Engine, instances)
	for i := range engines {
		c := cfg
		c.Sim = kern.InstanceClock(i)
		c.OnComplete = sinkFor(i)
		e, err := core.New(c, core.Options{Lambda: rc.Lambda})
		if err != nil {
			return nil, err
		}
		engines[i] = e
	}
	admission := &metrics.Admission{}
	rt, err := router.New(router.Config{
		Policy:            pol,
		MaxBacklogSeconds: rc.MaxBacklogSeconds,
		Admission:         admission,
		Tracer:            rc.Tracer,
	}, engines...)
	if err != nil {
		return nil, err
	}

	clock := kern.Clock()
	if rc.Timeseries != nil {
		instCount := instances
		rc.Timeseries.SetSample(func(now float64) timeseries.Gauges {
			var g timeseries.Gauges
			for _, info := range rt.InstanceInfos() {
				g.QueuedRequests += info.Load.QueuedRequests
				g.BacklogSeconds += info.Load.BacklogSeconds
			}
			g.PoolSize = rt.Routable()
			g.CacheHitRatio = clusterHitRate(engines)
			g.GPUSeconds = now * float64(instCount)
			return g
		})
		rc.Timeseries.Attach(clock)
	}

	rejected := 0
	var submitErr error
	submit := func(r *sched.Request) {
		rc.Timeseries.Arrival(clock.Now(), r.Class)
		rc.Timeseries.Start()
		err := rt.Submit(r)
		if err == nil {
			return
		}
		// Only admission sheds count as rejections; anything else (e.g.
		// a custom policy picking an out-of-range instance) is a
		// programming error that must fail the run, not masquerade as
		// load shedding.
		var rej *router.RejectError
		if errors.As(err, &rej) {
			rejected++
			rc.Timeseries.Reject(clock.Now(), rej.Class, rej.Reason)
		} else if submitErr == nil {
			submitErr = err
		}
	}
	if err := scheduleArrivals(kern.Clock(), rc.Dataset, rc.QPS, rc.Seed, submit); err != nil {
		return nil, err
	}
	if rc.Tracer != nil {
		// Fleet gauges on sim ticks: router loads, pool size, cache
		// residency. Armed after arrivals are scheduled so the sampler's
		// drain discipline (stop when no other events remain) holds. The
		// sampler reads fleet-wide state, so it ticks on the coordinator.
		trace.NewSampler(kern.Clock(), 0.5, func(now float64) {
			for _, info := range rt.InstanceInfos() {
				rc.Tracer.LoadGauge(now, info.ID, info.Load.QueuedRequests, info.Load.BacklogSeconds)
			}
			rc.Tracer.PoolGauge(now, rt.Routable(), 0)
			rc.Tracer.SampleCaches(now)
		}).Start()
	}
	kern.Run()

	if submitErr != nil {
		return nil, submitErr
	}
	if len(recs)+rejected != len(rc.Dataset.Requests) {
		return nil, fmt.Errorf("experiments: %d completed + %d rejected of %d requests",
			len(recs), rejected, len(rc.Dataset.Requests))
	}
	res := &RoutingRunResult{
		Policy:    pol.Name(),
		Dataset:   rc.Dataset.Name,
		QPS:       rc.QPS,
		Completed: len(recs),
		Rejected:  rejected,
		Admission: admission.Policy(pol.Name()),
	}
	_, res.Latency, res.ThroughputRPS = latencyStats(recs)
	res.CacheHitRate = clusterHitRate(engines)
	minTok, maxTok := int64(math.MaxInt64), int64(0)
	for _, l := range rt.Loads() {
		res.RoutedTokens = append(res.RoutedTokens, l.RoutedTokens)
		if l.RoutedTokens < minTok {
			minTok = l.RoutedTokens
		}
		if l.RoutedTokens > maxTok {
			maxTok = l.RoutedTokens
		}
	}
	if minTok > 0 {
		res.BalanceRatio = float64(maxTok) / float64(minTok)
	} else {
		res.BalanceRatio = math.Inf(1)
	}
	return res, nil
}

// RoutingSweepRow is one (policy, dataset) cell of the routing comparison.
type RoutingSweepRow struct {
	Policy        string  `json:"policy"`
	Dataset       string  `json:"dataset"`
	QPS           float64 `json:"qps"`
	MeanJCT       float64 `json:"mean_jct_seconds"`
	P99JCT        float64 `json:"p99_jct_seconds"`
	ThroughputRPS float64 `json:"throughput_rps"`
	CacheHitRate  float64 `json:"cache_hit_rate"`
	BalanceRatio  float64 `json:"balance_ratio"`
	Completed     int     `json:"completed"`
	Rejected      int     `json:"rejected"`
}

// RoutingDatasets builds the sweep's two arrival patterns: the Zipf-skewed
// user-popularity scenario (where routing policies differentiate) and the
// paper's uniform post-recommendation workload. small scales both down for
// tests and smoke benches.
func RoutingDatasets(seed int64, small bool) []*workload.Dataset {
	if small {
		return []*workload.Dataset{
			workload.Skewed(workload.SkewedConfig{
				Users: 24, Requests: 96, ProfileMean: 3000, ProfileStd: 800,
				ProfileMin: 1500, ProfileMax: 5000, Seed: seed,
			}),
			workload.PostRecommendation(workload.PostRecommendationConfig{
				Users: 8, PostsPerUser: 12, Seed: seed,
			}),
		}
	}
	return []*workload.Dataset{
		workload.Skewed(workload.SkewedConfig{Seed: seed}),
		workload.PostRecommendation(workload.PostRecommendationConfig{Seed: seed}),
	}
}

// RoutingSweep compares the three routing policies on skewed and uniform
// arrivals: PrefillOnly instances on the L4 scenario, offered load chosen
// near the cluster's aggregate saturation so queues form and routing
// decisions matter. Serial convenience wrapper around RoutingSweepParallel.
func RoutingSweep(seed int64, small bool) ([]RoutingSweepRow, error) {
	rows, _, err := RoutingSweepParallel(seed, small, 1, 1)
	return rows, err
}

// RoutingSweepParallel is RoutingSweep fanned across the cell executor:
// phase 1 measures each dataset's saturation throughput, phase 2 runs the
// (dataset, policy) grid. Every cell takes its own clone of the immutable
// base dataset, so rows are byte-identical at any parallelism — and at any
// shard count: shards picks each cell's event kernel (two orthogonal axes
// of parallelism: cells across experiment points, shards within one run).
func RoutingSweepParallel(seed int64, small bool, parallel, shards int) ([]RoutingSweepRow, CellStats, error) {
	sc, err := ScenarioByName("L4")
	if err != nil {
		return nil, CellStats{}, err
	}
	const instances = 4
	base := RoutingDatasets(seed, small)

	// Phase 1: per-dataset saturation. SaturationQPS measures the default
	// two-instance cluster; scale to this sweep's instance count at ~90%
	// utilization.
	qpsFor, satStats, err := runCells(parallel, len(base), func(i int) (float64, error) {
		x, err := SaturationQPS(PrefillOnly, sc, base[i].Clone())
		if err != nil {
			return 0, fmt.Errorf("routing saturation on %s: %w", base[i].Name, err)
		}
		return x * instances / 2 * 0.9, nil
	})
	if err != nil {
		return nil, satStats, err
	}

	// Phase 2: the (dataset, policy) grid in the serial loop's row order.
	pols := AllRoutingPolicies()
	type cell struct{ di, pi int }
	cells := make([]cell, 0, len(base)*len(pols))
	for di := range base {
		for pi := range pols {
			cells = append(cells, cell{di, pi})
		}
	}
	rows, runStats, err := runCells(parallel, len(cells), func(i int) (RoutingSweepRow, error) {
		c := cells[i]
		ds := base[c.di].Clone()
		res, err := RoutingRun(RoutingRunConfig{
			Policy: pols[c.pi], Scenario: sc, Dataset: ds,
			QPS: qpsFor[c.di], Seed: seed, Instances: instances,
			Shards: shards,
		})
		if err != nil {
			return RoutingSweepRow{}, fmt.Errorf("routing %v on %s: %w", pols[c.pi], ds.Name, err)
		}
		return RoutingSweepRow{
			Policy:        res.Policy,
			Dataset:       res.Dataset,
			QPS:           res.QPS,
			MeanJCT:       res.Latency.Mean,
			P99JCT:        res.Latency.P99,
			ThroughputRPS: res.ThroughputRPS,
			CacheHitRate:  res.CacheHitRate,
			BalanceRatio:  res.BalanceRatio,
			Completed:     res.Completed,
			Rejected:      res.Rejected,
		}, nil
	})
	return rows, satStats.Merge(runStats), err
}
