package experiments

// Serial-vs-sharded kernel oracles at the experiments layer: every sweep
// and run family must produce byte-identical results on the sharded kernel
// at any shard count. These are the end-to-end counterpart of
// internal/sim's TestShardedMatchesSerialOracle — they drive the real
// engines (pass pipelines, PP stage handoffs), the router (cross-shard
// completions), the autoscaler (cold starts, drains) and the tracer
// through both kernels.

import (
	"testing"
)

// TestRoutingSweepShardedOracle: the full routing sweep — router churn
// across four instances, admission accounting, load balance — must be
// byte-identical on the sharded kernel, with and without cell parallelism
// on top (the two axes compose).
func TestRoutingSweepShardedOracle(t *testing.T) {
	serialRows, _, err := RoutingSweepParallel(1, true, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{2, 8} {
		rows, _, err := RoutingSweepParallel(1, true, 2, shards)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		a, b := mustJSON(t, serialRows), mustJSON(t, rows)
		if string(a) != string(b) {
			t.Fatalf("sharded routing sweep (shards=%d) diverged from serial:\nserial:  %s\nsharded: %s", shards, a, b)
		}
	}
}

// TestAutoscaleSweepShardedOracle covers the most interleaving-sensitive
// path: the elastic pool's controller ticks on the coordinator while
// engines execute on shards, with mid-run scale-ups assigning new
// instances to shard clocks and drains retiring them.
func TestAutoscaleSweepShardedOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run sweep with profile runs")
	}
	serialRows, _, err := AutoscaleSweepParallel(1, true, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	rows, _, err := AutoscaleSweepParallel(1, true, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	a, b := mustJSON(t, serialRows), mustJSON(t, rows)
	if string(a) != string(b) {
		t.Fatalf("sharded autoscale sweep diverged from serial:\nserial:  %s\nsharded: %s", a, b)
	}
}

// TestSLOSweepShardedOracle: two-class admission and weighted scheduling
// under the sharded kernel.
func TestSLOSweepShardedOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run sweep with profile runs")
	}
	serialRows, _, err := SLOSweepParallel(1, true, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	rows, _, err := SLOSweepParallel(1, true, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	a, b := mustJSON(t, serialRows), mustJSON(t, rows)
	if string(a) != string(b) {
		t.Fatalf("sharded slo sweep diverged from serial:\nserial:  %s\nsharded: %s", a, b)
	}
}

// TestRunShardedOraclePipelineParallel drives the PP=2 engines — whose
// stage handoffs are events between the two halves of one instance, i.e.
// strictly shard-local — across four GPU pairs on the sharded kernel.
func TestRunShardedOraclePipelineParallel(t *testing.T) {
	base := RoutingDatasets(1, true)[1] // small post-recommendation workload
	sc, err := ScenarioByName("L4")
	if err != nil {
		t.Fatal(err)
	}
	run := func(shards int) *RunResult {
		t.Helper()
		res, err := Run(RunConfig{
			Kind: PipelineParallel, Scenario: sc, Dataset: base.Clone(),
			QPS: 8, Seed: 1, TotalGPUs: 8, Shards: shards,
		})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		return res
	}
	serial := run(0)
	for _, shards := range []int{2, 4} {
		got := run(shards)
		if len(got.Records) != len(serial.Records) {
			t.Fatalf("shards=%d: %d records, want %d", shards, len(got.Records), len(serial.Records))
		}
		for i := range serial.Records {
			a, b := serial.Records[i], got.Records[i]
			if a.Req.ID != b.Req.ID || a.Arrival != b.Arrival || a.Start != b.Start || a.Finish != b.Finish {
				t.Fatalf("shards=%d: record %d diverged: serial {id %d %v %v %v} sharded {id %d %v %v %v}",
					shards, i, a.Req.ID, a.Arrival, a.Start, a.Finish, b.Req.ID, b.Arrival, b.Start, b.Finish)
			}
		}
		if sa, sb := mustJSON(t, serial.Latency), mustJSON(t, got.Latency); string(sa) != string(sb) {
			t.Fatalf("shards=%d: latency summary diverged: %s vs %s", shards, sa, sb)
		}
		if serial.CacheHitRate != got.CacheHitRate {
			t.Fatalf("shards=%d: hit rate %v vs %v", shards, got.CacheHitRate, serial.CacheHitRate)
		}
	}
}

// TestTracedRoutingRunShardedOracle: tracing must not perturb the sharded
// run (results equal to the serial traced run), and the recorder's ring
// invariant — dropped + held == emitted, counted under the recorder's
// mutex — must hold exactly even with shard workers emitting concurrently.
func TestTracedRoutingRunShardedOracle(t *testing.T) {
	sc, err := ScenarioByName("L4")
	if err != nil {
		t.Fatal(err)
	}
	base := RoutingDatasets(1, true)
	run := func(shards int) (*RoutingRunResult, uint64, uint64, int) {
		t.Helper()
		res, rec, err := TracedRoutingRun(RoutingRunConfig{
			Policy: AffinityLoadPolicy, Scenario: sc, Dataset: base[0].Clone(),
			QPS: 12, Seed: 1, Instances: 4, Shards: shards,
		}, 256)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		return res, rec.TotalEmitted(), rec.Dropped(), rec.Len()
	}
	serialRes, serialEmitted, _, _ := run(1)
	for _, shards := range []int{4} {
		res, emitted, dropped, held := run(shards)
		if dropped+uint64(held) != emitted {
			t.Fatalf("shards=%d: ring invariant broken: dropped %d + held %d != emitted %d",
				shards, dropped, held, emitted)
		}
		if emitted != serialEmitted {
			t.Fatalf("shards=%d: emitted %d spans, serial emitted %d", shards, emitted, serialEmitted)
		}
		a, b := mustJSON(t, serialRes), mustJSON(t, res)
		if string(a) != string(b) {
			t.Fatalf("sharded traced run diverged from serial:\nserial:  %s\nsharded: %s", a, b)
		}
	}
}
