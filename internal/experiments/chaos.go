package experiments

import (
	"errors"
	"fmt"

	"repro/internal/autoscale"
	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/router"
	"repro/internal/sched"
	"repro/internal/workload"
)

// ChaosRunConfig describes one open-loop run of an elastic pool under
// deterministic fault injection.
type ChaosRunConfig struct {
	Scenario Scenario
	// Dataset provides the requests; arrival times are overwritten by the
	// open-loop process.
	Dataset *workload.Dataset
	// QPS is the constant offered load. Chaos runs use a steady rate so
	// JCT and shed degradation are attributable to the faults, not to a
	// shaped arrival process.
	QPS  float64
	Seed int64
	// Chaos parameterizes the injector; a zero config is the failure-free
	// baseline (the injector is a nil no-op and the run is bit-identical
	// to one without the chaos package wired).
	Chaos chaos.Config
	// MinInstances and MaxInstances bound the elastic pool (defaults 2
	// and 4). The ceiling headroom is what lets the autoscaler replace
	// crashed capacity.
	MinInstances, MaxInstances int
	// MaxBacklogSeconds is the admission bound (default 30), applied to
	// first admissions and orphan re-admissions alike.
	MaxBacklogSeconds float64
	// Lambda overrides PrefillOnly's fairness parameter (0 = default).
	Lambda float64
	// Shards selects the event kernel: <= 1 serial, >= 2 the sharded
	// kernel with that many workers. Results are identical either way:
	// faults are coordinator events, executed at shard barriers.
	Shards int
}

func (rc *ChaosRunConfig) defaults() error {
	if rc.Dataset == nil {
		return fmt.Errorf("experiments: ChaosRunConfig.Dataset is required")
	}
	if rc.QPS <= 0 {
		return fmt.Errorf("experiments: ChaosRunConfig.QPS must be positive")
	}
	if rc.MinInstances <= 0 {
		rc.MinInstances = 2
	}
	if rc.MaxInstances <= 0 {
		rc.MaxInstances = 4
	}
	if rc.MaxBacklogSeconds == 0 {
		rc.MaxBacklogSeconds = 30
	}
	return nil
}

// ChaosRunResult aggregates one faulted run.
type ChaosRunResult struct {
	Mode    string
	Dataset string
	// Completed + Rejected + OrphanShed covers every request exactly
	// once: Rejected counts first-admission sheds, OrphanShed counts
	// fault-orphaned requests dropped during recovery (retry budget
	// exhausted or re-admission rejected).
	Completed, Rejected, OrphanShed int
	// ShedRate is (Rejected + OrphanShed) / offered.
	ShedRate float64
	// Latency summarizes completed requests only; an orphaned request
	// that recovers keeps its original arrival, so its JCT includes the
	// time lost to the fault.
	Latency       metrics.Summary
	ThroughputRPS float64
	// GPUSeconds is the provisioning cost (replacement cold starts
	// included; crashed capacity stops accruing at the kill).
	GPUSeconds      float64
	MakespanSeconds float64
	// Faults is the injector's activity (zero for the baseline).
	Faults chaos.Stats
	// Controller activity: replacement cold starts show up as ScaleUps.
	ScaleUps, Revives, Lost int
	PeakInstances           int
}

// ChaosRun executes one open-loop run to completion under fault
// injection. The pool is always elastic: recovery — the autoscaler
// restoring routable capacity after a kill — is part of what chaos runs
// measure.
func ChaosRun(rc ChaosRunConfig) (*ChaosRunResult, error) {
	if err := rc.defaults(); err != nil {
		return nil, err
	}
	kern := engine.NewKernel(rc.Shards, engine.MinEventSeconds(rc.Scenario.Model, rc.Scenario.GPU))
	var recs []engine.Record
	var rt *router.Router
	profLen := (rc.Dataset.MaxLen/1000 + 1) * 1000
	cfg := engine.Config{
		Model:         rc.Scenario.Model,
		GPU:           rc.Scenario.GPU,
		ProfileMaxLen: profLen,
	}
	sinkFor := kern.CompletionSinks(func(r engine.Record) {
		if rt != nil {
			rt.Completed(r)
		}
		recs = append(recs, r)
	})
	built := 0
	factory := func() (engine.Engine, error) {
		c := cfg
		c.Sim = kern.InstanceClock(built)
		c.OnComplete = sinkFor(built)
		built++
		return core.New(c, core.Options{Lambda: rc.Lambda})
	}
	engines := make([]engine.Engine, rc.MinInstances)
	for i := range engines {
		e, err := factory()
		if err != nil {
			return nil, err
		}
		engines[i] = e
	}
	var err error
	rt, err = router.New(router.Config{
		Policy:            router.AffinityLoad{},
		MaxBacklogSeconds: rc.MaxBacklogSeconds,
	}, engines...)
	if err != nil {
		return nil, err
	}

	ctl, err := autoscale.New(autoscale.Config{
		MinInstances: rc.MinInstances,
		MaxInstances: rc.MaxInstances,
		Model:        rc.Scenario.Model,
		GPU:          rc.Scenario.GPU,
	}, kern.Clock(), rt, factory)
	if err != nil {
		return nil, err
	}
	ctl.Start()

	qps := rc.QPS
	arrivals, err := workload.AssignOpenLoopArrivals(rc.Dataset,
		func(float64) float64 { return qps }, qps, rc.Seed)
	if err != nil {
		return nil, err
	}
	// Bound fault injection to the arrival window so the run drains:
	// faults land while traffic flows, then the streams stop for good.
	ccfg := rc.Chaos
	if ccfg.HorizonSeconds <= 0 && len(arrivals) > 0 {
		ccfg.HorizonSeconds = arrivals[len(arrivals)-1].Time
	}
	orphanShed := 0
	inj := chaos.New(ccfg, kern.Clock(), rt, chaos.Options{
		Controller: ctl,
		OnShed:     func(*sched.Request, *router.RejectError) { orphanShed++ },
	})
	rejected := 0
	var submitErr error
	clock := kern.Clock()
	for _, a := range arrivals {
		a := a
		clock.At(a.Time, func() {
			err := rt.Submit(a.Req)
			if err == nil {
				return
			}
			var rej *router.RejectError
			if errors.As(err, &rej) {
				rejected++
			} else if submitErr == nil {
				submitErr = err
			}
		})
	}
	inj.Start()
	end := kern.Run()
	if submitErr != nil {
		return nil, submitErr
	}
	if err := ctl.Err(); err != nil {
		return nil, err
	}
	if len(recs)+rejected+orphanShed != len(rc.Dataset.Requests) {
		return nil, fmt.Errorf("experiments: %d completed + %d rejected + %d orphan-shed of %d requests",
			len(recs), rejected, orphanShed, len(rc.Dataset.Requests))
	}

	st := ctl.Stats()
	res := &ChaosRunResult{
		Mode:            "chaos",
		Dataset:         rc.Dataset.Name,
		Completed:       len(recs),
		Rejected:        rejected,
		OrphanShed:      orphanShed,
		ShedRate:        float64(rejected+orphanShed) / float64(len(rc.Dataset.Requests)),
		MakespanSeconds: end,
		GPUSeconds:      ctl.GPUSeconds(end),
		Faults:          inj.Stats(),
		ScaleUps:        st.ScaleUps,
		Revives:         st.Revives,
		Lost:            st.Lost,
		PeakInstances:   st.PeakInstances,
	}
	_, res.Latency, res.ThroughputRPS = latencyStats(recs)
	return res, nil
}

// ChaosSweepRow is one fault mode of the chaos comparison.
type ChaosSweepRow struct {
	Mode      string  `json:"mode"`
	Dataset   string  `json:"dataset"`
	MeanJCT   float64 `json:"mean_jct_seconds"`
	P50JCT    float64 `json:"p50_jct_seconds"`
	P99JCT    float64 `json:"p99_jct_seconds"`
	ShedRate  float64 `json:"shed_rate"`
	Completed int     `json:"completed"`
	Rejected  int     `json:"rejected"`
	// Fault activity: Orphaned == OrphansRerouted + OrphansShed.
	Faults          uint64 `json:"faults"`
	Orphaned        uint64 `json:"orphaned"`
	OrphansRerouted uint64 `json:"orphans_rerouted"`
	OrphansShed     uint64 `json:"orphans_shed"`
	// Recovery: how long the autoscaler took to restore the routable
	// pool to its pre-fault size after each kill.
	Recoveries          uint64  `json:"recoveries"`
	MeanRecoverySeconds float64 `json:"mean_recovery_seconds"`
	MaxRecoverySeconds  float64 `json:"max_recovery_seconds"`
	ScaleUps            int     `json:"scale_ups"`
	Revives             int     `json:"revives"`
	GPUSeconds          float64 `json:"gpu_seconds"`
	// Degradation vs the failure-free baseline row (0 for the baseline
	// itself): relative increase in p99 JCT and absolute shed-rate delta.
	P99DegradationVsBaseline     float64 `json:"p99_degradation_vs_baseline"`
	ShedRateDeltaVsBaseline      float64 `json:"shed_rate_delta_vs_baseline"`
	MeanJCTDegradationVsBaseline float64 `json:"mean_jct_degradation_vs_baseline"`
}

// ChaosSweep is the serial convenience wrapper around ChaosSweepParallel.
func ChaosSweep(seed int64, small bool) ([]ChaosSweepRow, error) {
	rows, _, err := ChaosSweepParallel(seed, small, 1, 1)
	return rows, err
}

// ChaosSweepParallel measures fault degradation and recovery: the same
// steady open-loop workload on the same elastic pool, failure-free and
// then under each fault kind (instance crashes, slow-node stragglers,
// spot preemptions). Fault rates are sized relative to the run span so
// every mode sees a handful of faults regardless of dataset size. The
// degradation columns are derived after all cells return, so rows are
// byte-identical at any parallelism — and at any shard count (faults are
// coordinator events in the sharded kernel).
func ChaosSweepParallel(seed int64, small bool, parallel, shards int) ([]ChaosSweepRow, CellStats, error) {
	sc, err := ScenarioByName("L4")
	if err != nil {
		return nil, CellStats{}, err
	}
	mkDataset := func() *workload.Dataset {
		if small {
			return workload.Skewed(workload.SkewedConfig{
				Users: 24, Requests: 144, ProfileMean: 3000, ProfileStd: 800,
				ProfileMin: 1500, ProfileMax: 5000, Seed: seed,
			})
		}
		return workload.Skewed(workload.SkewedConfig{Seed: seed})
	}
	// Load the floor fleet at ~60% of saturation: enough headroom that the
	// failure-free baseline sheds (almost) nothing, so any degradation in
	// the fault rows is attributable to the faults.
	satDS := mkDataset()
	sat, satStats, err := runCells(1, 1, func(int) (float64, error) {
		return SaturationQPS(PrefillOnly, sc, satDS)
	})
	if err != nil {
		return nil, satStats, fmt.Errorf("chaos saturation: %w", err)
	}
	const minInst, maxInst = 2, 4
	perInst := sat[0] / 2
	qps := 0.7 * perInst * minInst
	// Approximate run span: n requests at qps. Fault rates are sized so a
	// run sees ~3 kills / ~4 straggler episodes — enough to measure
	// recovery without the run being one long outage.
	span := float64(len(satDS.Requests)) / qps
	modes := []struct {
		name string
		cfg  chaos.Config
	}{
		{name: "failure-free"},
		{name: "crash", cfg: chaos.Config{Seed: seed, CrashRate: 6 / span}},
		{name: "straggler", cfg: chaos.Config{Seed: seed, StragglerRate: 4 / span,
			SlowFactor: 4, StragglerSeconds: span / 8}},
		{name: "preempt", cfg: chaos.Config{Seed: seed, PreemptRate: 4 / span,
			NoticeSeconds: span / 32}},
	}
	rows, runStats, err := runCells(parallel, len(modes), func(i int) (ChaosSweepRow, error) {
		res, err := ChaosRun(ChaosRunConfig{
			Scenario: sc, Dataset: mkDataset(), QPS: qps, Seed: seed,
			Chaos: modes[i].cfg, MinInstances: minInst, MaxInstances: maxInst,
			Shards: shards,
		})
		if err != nil {
			return ChaosSweepRow{}, fmt.Errorf("chaos %s: %w", modes[i].name, err)
		}
		return ChaosSweepRow{
			Mode:                modes[i].name,
			Dataset:             res.Dataset,
			MeanJCT:             res.Latency.Mean,
			P50JCT:              res.Latency.P50,
			P99JCT:              res.Latency.P99,
			ShedRate:            res.ShedRate,
			Completed:           res.Completed,
			Rejected:            res.Rejected + res.OrphanShed,
			Faults:              res.Faults.Faults(),
			Orphaned:            res.Faults.Orphaned,
			OrphansRerouted:     res.Faults.Rerouted,
			OrphansShed:         res.Faults.Shed,
			Recoveries:          res.Faults.Recoveries,
			MeanRecoverySeconds: res.Faults.MeanRecoverySeconds(),
			MaxRecoverySeconds:  res.Faults.MaxRecoverySeconds,
			ScaleUps:            res.ScaleUps,
			Revives:             res.Revives,
			GPUSeconds:          res.GPUSeconds,
		}, nil
	})
	if err != nil {
		return nil, satStats.Merge(runStats), err
	}
	base := rows[0]
	for i := range rows {
		if i == 0 {
			continue
		}
		if base.P99JCT > 0 {
			rows[i].P99DegradationVsBaseline = rows[i].P99JCT/base.P99JCT - 1
		}
		if base.MeanJCT > 0 {
			rows[i].MeanJCTDegradationVsBaseline = rows[i].MeanJCT/base.MeanJCT - 1
		}
		rows[i].ShedRateDeltaVsBaseline = rows[i].ShedRate - base.ShedRate
	}
	return rows, satStats.Merge(runStats), nil
}
