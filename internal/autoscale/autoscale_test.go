package autoscale

import (
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/hw"
	"repro/internal/model"
	"repro/internal/router"
	"repro/internal/sched"
	"repro/internal/sim"
)

func TestColdStartSeconds(t *testing.T) {
	m, g := model.Llama31_8B(), hw.L4()
	single := ColdStartSeconds(m, g, 1)
	want := float64(m.WeightBytes()) / float64(g.HostBWBytes)
	if single != want {
		t.Errorf("single-GPU cold start %g, want %g (weights/host-BW)", single, want)
	}
	if single < 0.5 || single > 5 {
		t.Errorf("8B-on-L4 cold start %gs outside plausible [0.5,5]s", single)
	}
	dual := ColdStartSeconds(m, g, 2)
	// Each GPU streams half the weights, plus the peer shard exchange.
	wantDual := want/2 + float64(m.WeightBytes())/2/float64(g.PeerBWBytes)
	if dual != wantDual {
		t.Errorf("dual-GPU cold start %g, want %g", dual, wantDual)
	}
}

// harness builds one sim + router(+records sink) over PrefillOnly L4
// instances and returns a factory wired the same way.
func harness(t *testing.T, s *sim.Sim, initial int) (*router.Router, func() (engine.Engine, error), *[]engine.Record) {
	t.Helper()
	var rt *router.Router
	recs := &[]engine.Record{}
	cfg := engine.Config{
		Model: model.Llama31_8B(), GPU: hw.L4(), Sim: s, ProfileMaxLen: 4000,
		OnComplete: func(rec engine.Record) {
			if rt != nil {
				rt.Completed(rec)
			}
			*recs = append(*recs, rec)
		},
	}
	factory := func() (engine.Engine, error) {
		return core.New(cfg, core.Options{})
	}
	engines := make([]engine.Engine, initial)
	for i := range engines {
		e, err := factory()
		if err != nil {
			t.Fatal(err)
		}
		engines[i] = e
	}
	var err error
	rt, err = router.New(router.Config{Policy: router.LeastLoaded{}}, engines...)
	if err != nil {
		t.Fatal(err)
	}
	return rt, factory, recs
}

func mkReq(id int64, user, tokens int) *sched.Request {
	toks := make([]uint64, tokens)
	for i := range toks {
		toks[i] = uint64(user)<<32 | uint64(i)
	}
	return &sched.Request{ID: id, UserID: user, Tokens: toks}
}

// TestScaleUpAndDown drives a burst (deep backlog) followed by a sparse
// tail and expects the pool to grow under the burst and drain back down
// during the tail.
func TestScaleUpAndDown(t *testing.T) {
	var s sim.Sim
	rt, factory, recs := harness(t, &s, 1)
	ctl, err := New(Config{
		MinInstances: 1, MaxInstances: 3,
		TickSeconds: 0.5, UpBacklogSeconds: 2, DownBacklogSeconds: 0.5,
		ColdStartSeconds: 1, CooldownSeconds: 2,
	}, &s, rt, factory)
	if err != nil {
		t.Fatal(err)
	}
	ctl.Start()

	// Burst: 40 x 3k-token requests at t=0 pile multi-second backlog on
	// the single instance.
	id := int64(0)
	s.At(0, func() {
		for i := 0; i < 40; i++ {
			id++
			if err := rt.Submit(mkReq(id, int(id), 3000)); err != nil {
				t.Errorf("submit %d: %v", id, err)
			}
		}
	})
	// Sparse tail keeps the tick loop alive long enough to observe the
	// scale-down after the burst clears.
	for ti := 0; ti < 30; ti++ {
		at := 60 + 2*float64(ti)
		s.At(at, func() {
			id++
			if err := rt.Submit(mkReq(id, int(id), 200)); err != nil {
				t.Errorf("tail submit %d: %v", id, err)
			}
		})
	}
	end := s.Run()

	if err := ctl.Err(); err != nil {
		t.Fatal(err)
	}
	if got := len(*recs); got != 70 {
		t.Fatalf("completed %d of 70 requests", got)
	}
	st := ctl.Stats()
	if st.ScaleUps == 0 {
		t.Error("burst caused no scale-ups")
	}
	if st.PeakInstances < 2 {
		t.Errorf("peak pool %d, want >= 2", st.PeakInstances)
	}
	if st.PeakInstances > 3 {
		t.Errorf("peak pool %d exceeds MaxInstances 3", st.PeakInstances)
	}
	if st.ScaleDowns == 0 {
		t.Error("idle tail caused no scale-downs")
	}
	if ctl.Size() >= st.PeakInstances {
		t.Errorf("pool did not shrink: size %d, peak %d", ctl.Size(), st.PeakInstances)
	}
	// GPU-seconds: bounded below by one always-on instance and above by
	// the peak pool running the whole time.
	gs := ctl.GPUSeconds(end)
	if gs < end || gs > float64(st.PeakInstances)*end {
		t.Errorf("GPU-seconds %g outside [%g, %g]", gs, end, float64(st.PeakInstances)*end)
	}
}

// TestBatchBacklogNeverScalesUp: the controller reads interactive-class
// signals, so a burst of pure batch work — backlog far past the trigger
// and batch sheds in the window — must never provision an instance, while
// the same burst labeled interactive must.
func TestBatchBacklogNeverScalesUp(t *testing.T) {
	burst := func(t *testing.T, class sched.Class) Stats {
		t.Helper()
		var s sim.Sim
		rt, factory, _ := harness(t, &s, 1)
		ctl, err := New(Config{
			MinInstances: 1, MaxInstances: 3,
			TickSeconds: 0.5, UpBacklogSeconds: 2,
			ColdStartSeconds: 1,
		}, &s, rt, factory)
		if err != nil {
			t.Fatal(err)
		}
		ctl.Start()
		s.At(0, func() {
			for i := int64(1); i <= 40; i++ {
				r := mkReq(i, int(i), 3000)
				r.Class = class
				if err := rt.Submit(r); err != nil {
					t.Errorf("submit %d: %v", i, err)
				}
			}
		})
		s.Run()
		if err := ctl.Err(); err != nil {
			t.Fatal(err)
		}
		return ctl.Stats()
	}
	if st := burst(t, sched.ClassBatch); st.ScaleUps != 0 {
		t.Errorf("pure batch backlog caused %d scale-ups; batch alone must never pay a cold start", st.ScaleUps)
	}
	if st := burst(t, sched.ClassInteractive); st.ScaleUps == 0 {
		t.Error("identical interactive backlog caused no scale-up; the signal is dead, not class-scoped")
	}
}

// TestBatchShedsDoNotEscalate: batch rejects under a tight batch budget
// must not trip the shed-escalation path that jumps the pool to its
// ceiling.
func TestBatchShedsDoNotEscalate(t *testing.T) {
	var s sim.Sim
	rt, factory, _ := harness(t, &s, 1)
	ctl, err := New(Config{
		MinInstances: 1, MaxInstances: 3,
		TickSeconds: 0.5, UpBacklogSeconds: 1000, // backlog can never trigger
		ColdStartSeconds: 1,
	}, &s, rt, factory)
	if err != nil {
		t.Fatal(err)
	}
	ctl.Start()
	s.At(0, func() {
		// A little live work keeps ticks running while the window fills.
		for i := int64(1); i <= 4; i++ {
			r := mkReq(i, int(i), 2000)
			r.Class = sched.ClassBatch
			if err := rt.Submit(r); err != nil {
				t.Errorf("submit: %v", err)
			}
		}
		// Batch sheds land on the tally exactly as a tight batch budget
		// records them.
		for i := 0; i < 50; i++ {
			rt.Admission().RejectClass("leastloaded", sched.ClassBatch.String())
		}
	})
	s.Run()
	if err := ctl.Err(); err != nil {
		t.Fatal(err)
	}
	if st := ctl.Stats(); st.ScaleUps != 0 {
		t.Errorf("batch sheds escalated the pool: %d scale-ups", st.ScaleUps)
	}
}

// TestBatchShedsVetoScaleDown: batch sheds never provision capacity, but
// they must veto releasing it — draining while batch is actively being
// shed would only amplify the shed rate.
func TestBatchShedsVetoScaleDown(t *testing.T) {
	var s sim.Sim
	rt, factory, _ := harness(t, &s, 2)
	ctl, err := New(Config{
		MinInstances: 1, MaxInstances: 2,
		TickSeconds: 0.5, UpBacklogSeconds: 1000, DownBacklogSeconds: 0.5,
		ColdStartSeconds: 1, CooldownSeconds: 0.5,
	}, &s, rt, factory)
	if err != nil {
		t.Fatal(err)
	}
	ctl.Start()
	// Quiet backlog + a continuous stream of batch sheds: without the
	// veto, the idle pool drains to the floor tick after tick.
	for ti := 0; ti < 20; ti++ {
		at := 0.1 + 0.5*float64(ti)
		s.At(at, func() {
			rt.Admission().RejectClass("leastloaded", sched.ClassBatch.String())
		})
	}
	id := int64(0)
	for ti := 0; ti < 20; ti++ {
		at := 0.2 + 0.5*float64(ti)
		s.At(at, func() {
			id++
			if err := rt.Submit(mkReq(id, int(id), 50)); err != nil {
				t.Errorf("submit: %v", err)
			}
		})
	}
	s.Run()
	if err := ctl.Err(); err != nil {
		t.Fatal(err)
	}
	if st := ctl.Stats(); st.ScaleDowns != 0 {
		t.Errorf("pool drained %d times while batch was being shed", st.ScaleDowns)
	}
}

// TestColdStartDelaysRoutability checks a scaled-up instance only joins
// the routable set after the cold-start delay has elapsed.
func TestColdStartDelaysRoutability(t *testing.T) {
	var s sim.Sim
	rt, factory, _ := harness(t, &s, 1)
	const cold = 5.0
	ctl, err := New(Config{
		MinInstances: 1, MaxInstances: 2,
		TickSeconds: 0.25, UpBacklogSeconds: 1,
		ColdStartSeconds: cold,
	}, &s, rt, factory)
	if err != nil {
		t.Fatal(err)
	}
	ctl.Start()
	s.At(0, func() {
		for i := int64(1); i <= 30; i++ {
			if err := rt.Submit(mkReq(i, int(i), 3000)); err != nil {
				t.Errorf("submit: %v", err)
			}
		}
	})
	// Find when the second instance becomes routable.
	joined := -1.0
	for probe := 0.25; probe < 40; probe += 0.25 {
		probe := probe
		s.At(probe, func() {
			if joined < 0 && rt.Routable() > 1 {
				joined = s.Now()
			}
		})
	}
	s.Run()
	if err := ctl.Err(); err != nil {
		t.Fatal(err)
	}
	if ctl.Stats().ScaleUps == 0 {
		t.Fatal("no scale-up happened")
	}
	if joined < 0 {
		t.Fatal("second instance never became routable")
	}
	// The first tick can decide at 0.25s at the earliest, so the join
	// cannot precede cold start + first possible decision.
	if joined < cold {
		t.Errorf("instance routable at %gs, before the %gs cold start", joined, cold)
	}
}

// TestNeverDrainsLastRoutable checks a cold-starting addition cannot
// license draining the only routable instance: with a cooldown shorter
// than the cold start, the controller must keep routable >= MinInstances
// at every instant, not just in the target count.
func TestNeverDrainsLastRoutable(t *testing.T) {
	var s sim.Sim
	rt, factory, _ := harness(t, &s, 1)
	ctl, err := New(Config{
		MinInstances: 1, MaxInstances: 2,
		TickSeconds: 0.25, UpBacklogSeconds: 1, DownBacklogSeconds: 0.5,
		ColdStartSeconds: 5, CooldownSeconds: 0.5,
	}, &s, rt, factory)
	if err != nil {
		t.Fatal(err)
	}
	ctl.Start()
	// A short burst triggers a scale-up, then completes well before the
	// 5s cold start lands; the quiet gap drops the mean backlog to zero
	// while pendingAdds = 1, which is exactly when a target-count drain
	// guard would release the only routable instance.
	s.At(0, func() {
		for i := int64(1); i <= 6; i++ {
			if err := rt.Submit(mkReq(i, int(i), 2500)); err != nil {
				t.Errorf("submit: %v", err)
			}
		}
	})
	// Arrivals resume inside the cold-start window, where a bad drain
	// leaves zero routable instances.
	for ti := 0; ti < 8; ti++ {
		at := 4 + 0.15*float64(ti)
		id := int64(100 + ti)
		s.At(at, func() {
			if rt.Routable() == 0 {
				t.Errorf("no routable instances at t=%g", s.Now())
			}
			if err := rt.Submit(mkReq(id, int(id), 100)); err != nil {
				t.Errorf("submit at t=%g: %v", s.Now(), err)
			}
		})
	}
	s.Run()
	if err := ctl.Err(); err != nil {
		t.Fatal(err)
	}
	if ctl.Stats().ScaleUps == 0 {
		t.Fatal("scenario never scaled up; the drain window was not exercised")
	}
}

// TestReviveDrainingOnScaleUp checks a scale-up prefers undraining a
// still-warm draining instance over paying a cold start: capacity comes
// back instantly and no new engine is provisioned.
func TestReviveDrainingOnScaleUp(t *testing.T) {
	var s sim.Sim
	rt, factory, _ := harness(t, &s, 2)
	ctl, err := New(Config{
		MinInstances: 1, MaxInstances: 2,
		TickSeconds: 0.25, UpBacklogSeconds: 1,
		ColdStartSeconds: 50, // a cold start would dominate the run
	}, &s, rt, factory)
	if err != nil {
		t.Fatal(err)
	}
	ctl.Start()
	infos := rt.InstanceInfos()
	s.At(0, func() {
		if err := rt.Drain(infos[1].ID); err != nil {
			t.Errorf("drain: %v", err)
		}
		// Load returns immediately: the burst must revive the drained
		// instance rather than cold-start a third engine.
		for i := int64(1); i <= 20; i++ {
			if err := rt.Submit(mkReq(i, int(i), 2500)); err != nil {
				t.Errorf("submit: %v", err)
			}
		}
	})
	revivedAt := -1.0
	for probe := 0.25; probe < 10; probe += 0.25 {
		probe := probe
		s.At(probe, func() {
			if revivedAt < 0 && rt.Routable() == 2 {
				revivedAt = s.Now()
			}
		})
	}
	end := s.Run()
	if err := ctl.Err(); err != nil {
		t.Fatal(err)
	}
	st := ctl.Stats()
	if st.Revives == 0 {
		t.Fatalf("scale-up did not revive the draining instance: %+v", st)
	}
	if st.ScaleUps != 0 {
		t.Errorf("cold-started %d new instances with a warm one draining", st.ScaleUps)
	}
	if revivedAt < 0 || revivedAt > 1 {
		t.Errorf("revival at t=%g; want within the first control ticks (no cold start)", revivedAt)
	}
	if end > 40 {
		t.Errorf("run took %gs; a %gs cold start leaked in", end, 50.0)
	}
}

// TestDrainGraceful checks a draining instance finishes its in-flight
// work before release and never receives new requests.
func TestDrainGraceful(t *testing.T) {
	var s sim.Sim
	rt, _, recs := harness(t, &s, 2)
	infos := rt.InstanceInfos()
	if len(infos) != 2 {
		t.Fatal("want 2 instances")
	}
	// Load both instances, then drain instance 1.
	s.At(0, func() {
		for i := int64(1); i <= 8; i++ {
			if err := rt.Submit(mkReq(i, int(i), 2000)); err != nil {
				t.Errorf("submit: %v", err)
			}
		}
		if err := rt.Drain(infos[1].ID); err != nil {
			t.Errorf("drain: %v", err)
		}
		// New work after the drain must all land on instance 0.
		for i := int64(9); i <= 12; i++ {
			if err := rt.Submit(mkReq(i, int(i), 2000)); err != nil {
				t.Errorf("post-drain submit: %v", err)
			}
		}
	})
	s.Run()
	if got := len(*recs); got != 12 {
		t.Fatalf("completed %d of 12", got)
	}
	drained, err := rt.Drained(infos[1].ID)
	if err != nil || !drained {
		t.Fatalf("instance %d not drained at end (err %v)", infos[1].ID, err)
	}
	if err := rt.Remove(infos[1].ID); err != nil {
		t.Fatalf("remove drained instance: %v", err)
	}
	if rt.Size() != 1 || rt.Routable() != 1 {
		t.Errorf("size %d routable %d after removal, want 1/1", rt.Size(), rt.Routable())
	}
}
