// Package autoscale closes the control loop over internal/router: a
// controller watches the router's load view (per-instance backlog seconds,
// queue depth, and the admission tally's reject rate over a sliding
// window) and elastically sizes the instance pool between a floor and a
// ceiling.
//
// The scale-up signals are SLO-class-aware: the controller reads the
// interactive share of each instance's backlog and the interactive reject
// rate, not the aggregates, so batch backlog or batch sheds alone never
// trigger a cold start — GPUs are provisioned for latency-sensitive
// pressure, while batch work absorbs whatever capacity that leaves.
// Scale-down stays conservative on the aggregate: an instance is not
// drained while any class still has queued work or saw a shed in the
// window, because releasing capacity mid-batch would only re-shed the
// batch tier.
//
// Scale-up is not free: a new instance pays a cold-start delay — the time
// to load the model weights onto the device, priced from the hw/model
// catalogs over the host (PCIe) link plus, for multi-GPU instances, the
// peer (PCIe/NVLink) shard exchange — before the router starts offering it
// to policies. Scale-down is graceful: the controller drains the
// least-loaded instance (the router stops routing to it), lets its
// in-flight work finish, then releases it. GPU-seconds are accounted from
// the moment an instance is provisioned (cold start included — the device
// is held while weights load) until release, so experiments can compare
// the provisioning cost of an elastic pool against a fixed fleet.
//
// Like the router, the controller is not goroutine-safe: its ticks run as
// simulation events, and the HTTP backend serializes access under its own
// lock.
package autoscale

import (
	"fmt"
	"math"

	"repro/internal/engine"
	"repro/internal/hw"
	"repro/internal/model"
	"repro/internal/ringbuf"
	"repro/internal/router"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/trace"
)

// ColdStartSeconds prices bringing up one instance: every GPU of the
// instance streams its weight shard from host memory over the PCIe host
// link in parallel, and multi-GPU instances additionally exchange shards
// over the peer link (PCIe or NVLink) to materialize their layout. This
// is the floor for real deployments (checkpoint already in page cache);
// disk or network fetch only adds to it.
func ColdStartSeconds(m *model.Config, g *hw.GPU, gpus int) float64 {
	if gpus < 1 {
		gpus = 1
	}
	w := float64(m.WeightBytes())
	cold := w / float64(gpus) / float64(g.HostBWBytes)
	if gpus > 1 {
		cold += w / float64(gpus) / float64(g.PeerBWBytes)
	}
	return cold
}

// Config tunes the controller. Zero values take the noted defaults.
type Config struct {
	// MinInstances is the pool floor (default 1). The controller restores
	// it unconditionally if the pool ever sits below.
	MinInstances int
	// MaxInstances is the pool ceiling (default MinInstances).
	MaxInstances int
	// TickSeconds is the control interval in simulated seconds (default 1).
	// At most one scaling action is taken per tick.
	TickSeconds float64
	// UpBacklogSeconds triggers scale-up when the mean estimated
	// interactive-class backlog per routable instance exceeds it, or when
	// any single instance's interactive backlog exceeds twice it — a
	// skewed workload can swamp one affinity home toward the admission
	// bound while the mean stays quiet (default 4). Batch backlog is
	// excluded: batch pressure alone never pays a cold start.
	UpBacklogSeconds float64
	// DownBacklogSeconds permits scale-down when the mean backlog (all
	// classes) is below it and the sliding window saw no sheds of any
	// class — batch sheds don't provision capacity, but they do veto
	// releasing it, or draining would amplify the shed rate (default 0.5).
	DownBacklogSeconds float64
	// UpRejectRate triggers scale-up when the interactive-class admission
	// reject rate over the sliding window exceeds it (default 0: any
	// interactive shed triggers). Batch sheds are the per-class budgets
	// doing their job and never provision capacity.
	UpRejectRate float64
	// WindowTicks is the sliding-window length for the reject-rate signal
	// (default 8).
	WindowTicks int
	// CooldownSeconds damps scale-down flapping: after any scaling action
	// the controller waits this long before draining an instance (default
	// max(2·TickSeconds, cold start)).
	CooldownSeconds float64
	// ColdStartSeconds overrides the derived cold-start delay when
	// positive; otherwise it is ColdStartSeconds(Model, GPU, gpus of the
	// first instance the factory builds).
	ColdStartSeconds float64
	// Model and GPU are the catalog entries the cold-start delay is
	// derived from; required unless ColdStartSeconds is set.
	Model *model.Config
	GPU   *hw.GPU
	// KeepAlive keeps the tick loop alive when the simulation is
	// otherwise idle. Online servers set it (traffic arrives from the
	// wall clock); batch experiments leave it unset so the event queue
	// drains and the run terminates.
	KeepAlive bool
	// Tracer, when non-nil, receives cold-start window spans (scale-up
	// decision → routable), revive instants, and a pool-size gauge each
	// control tick.
	Tracer *trace.Recorder
}

func (c *Config) defaults() error {
	if c.MinInstances <= 0 {
		c.MinInstances = 1
	}
	if c.MaxInstances <= 0 {
		c.MaxInstances = c.MinInstances
	}
	if c.MaxInstances < c.MinInstances {
		return fmt.Errorf("autoscale: MaxInstances %d < MinInstances %d", c.MaxInstances, c.MinInstances)
	}
	if c.TickSeconds <= 0 {
		c.TickSeconds = 1
	}
	if c.UpBacklogSeconds <= 0 {
		c.UpBacklogSeconds = 4
	}
	if c.DownBacklogSeconds <= 0 {
		c.DownBacklogSeconds = 0.5
	}
	if c.WindowTicks <= 0 {
		c.WindowTicks = 8
	}
	if c.ColdStartSeconds <= 0 && (c.Model == nil || c.GPU == nil) {
		return fmt.Errorf("autoscale: need Model and GPU to derive the cold start (or set ColdStartSeconds)")
	}
	return nil
}

// Stats is the controller's cumulative activity.
type Stats struct {
	// ScaleUps and ScaleDowns count provisioning decisions (a scale-down
	// is counted when the drain starts, not when the instance releases).
	ScaleUps, ScaleDowns int
	// Revives counts scale-ups satisfied by undraining a still-warm
	// draining instance instead of cold-starting a new one.
	Revives int
	// Lost counts instances that crashed or were preemption-killed
	// (reported via InstanceLost) rather than gracefully released.
	Lost int
	// PeakInstances and MinInstances bound the observed pool size
	// (provisioning cold starts included).
	PeakInstances, MinInstances int
	// Ticks is the number of control intervals evaluated.
	Ticks int
	// ColdStartSeconds is the delay each scale-up paid.
	ColdStartSeconds float64
}

// windowSample is one tick's admission-decision delta: accepted/rejected
// cover the scale-up classes (interactive + unlabeled), rejectedAll every
// class.
type windowSample struct {
	accepted, rejected int64
	rejectedAll        int64
}

// Controller is the elastic pool controller.
type Controller struct {
	cfg     Config
	s       sim.Clock
	rt      *router.Router
	factory func() (engine.Engine, error)

	pendingAdds int // scale-ups decided but still cold-starting
	lastAction  float64
	cooldown    float64
	running     bool
	stopped     bool
	err         error

	window          ringbuf.Ring[windowSample]
	lastAccepted    int64
	lastRejected    int64
	lastRejectedAll int64

	// GPU-seconds accrue by integrating the owned-GPU gauge over time.
	poolGPUs    int
	gpuSeconds  float64
	lastAccrual float64

	stats Stats
}

// New builds a controller over a running router. The factory constructs
// one new engine instance (profile run included) per scale-up; engines it
// returns must be wired to the same simulation and completion sink as the
// router's existing instances. The router's current instances are adopted
// as the initial pool, provisioned as of the current simulated time.
func New(cfg Config, s sim.Clock, rt *router.Router, factory func() (engine.Engine, error)) (*Controller, error) {
	if s == nil || rt == nil || factory == nil {
		return nil, fmt.Errorf("autoscale: sim, router and factory are required")
	}
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	if cfg.ColdStartSeconds <= 0 {
		gpus := 1
		if infos := rt.InstanceInfos(); len(infos) > 0 {
			gpus = infos[0].GPUs
		}
		cfg.ColdStartSeconds = ColdStartSeconds(cfg.Model, cfg.GPU, gpus)
	}
	if cfg.CooldownSeconds <= 0 {
		cfg.CooldownSeconds = max(2*cfg.TickSeconds, cfg.ColdStartSeconds)
	}
	size := rt.Size()
	c := &Controller{
		cfg:         cfg,
		s:           s,
		rt:          rt,
		factory:     factory,
		lastAction:  s.Now(),
		poolGPUs:    rt.GPUs(),
		lastAccrual: s.Now(),
		stats: Stats{
			PeakInstances:    size,
			MinInstances:     size,
			ColdStartSeconds: cfg.ColdStartSeconds,
		},
	}
	return c, nil
}

// Start schedules the first control tick. Idempotent.
func (c *Controller) Start() {
	if c.running || c.stopped {
		return
	}
	c.running = true
	c.s.AfterFunc(c.cfg.TickSeconds, tickEvent, c)
}

// tickEvent is the controller's tick callback on the sim fast path: a
// package-level function plus the controller pointer, so the periodic
// tick allocates nothing per firing (a method value `c.tick` would).
func tickEvent(arg any) { arg.(*Controller).tick() }

// Stop ends the tick loop after the currently scheduled tick fires.
func (c *Controller) Stop() { c.stopped = true }

// Err reports the first factory failure; scaling up is disabled after one.
func (c *Controller) Err() error { return c.err }

// Size is the target pool size: routable instances plus cold-starting
// additions, excluding draining instances.
func (c *Controller) Size() int { return c.rt.Routable() + c.pendingAdds }

// Stats returns the controller's activity so far.
func (c *Controller) Stats() Stats { return c.stats }

// GPUSeconds accrues and returns the GPU-seconds provisioned up to now:
// the integral of owned GPUs (cold-starting and draining included) over
// time since construction.
func (c *Controller) GPUSeconds(now float64) float64 {
	c.accrue(now)
	return c.gpuSeconds
}

// InstanceLost reports an instance crash or preemption kill to the
// accounting: its GPUs stop accruing from now (the machine is gone, not
// held through a drain). The capacity gap itself needs no special signal
// — the next tick sees the pool below the floor and the re-admitted
// orphans as backlog, and cold-starts a catalog-priced replacement
// (reviving a still-draining warm instance first).
func (c *Controller) InstanceLost(now float64, gpus int) {
	c.accrue(now)
	c.poolGPUs -= gpus
	if c.poolGPUs < 0 {
		c.poolGPUs = 0
	}
	c.stats.Lost++
}

func (c *Controller) accrue(now float64) {
	if now > c.lastAccrual {
		c.gpuSeconds += float64(c.poolGPUs) * (now - c.lastAccrual)
		c.lastAccrual = now
	}
}

// windowRates folds the current tick's admission delta into the sliding
// window and returns two shed signals: upRejects/upRate cover interactive
// (and unlabeled legacy) decisions only — the scale-up trigger, so batch
// sheds never provision capacity — while allRejects counts every class
// and vetoes scale-down: draining while batch is actively being shed
// would only amplify the shed rate. Unlabeled decisions count toward the
// interactive signal conservatively, so a router that never labels
// classes keeps its pre-class behavior.
func (c *Controller) windowRates() (upRejects int64, upRate float64, allRejects int64) {
	var acc, rej, accAll, rejAll int64
	batchLabel := sched.ClassBatch.String()
	//prefill:allow(simdeterminism): commutative sum over per-instance tallies; order cannot change the totals
	for _, byClass := range c.rt.Admission().ClassSnapshot() {
		//prefill:allow(simdeterminism): commutative sum over per-class tallies; order cannot change the totals
		for class, tally := range byClass {
			accAll += tally.Accepted
			rejAll += tally.Rejected
			if class == batchLabel {
				continue
			}
			acc += tally.Accepted
			rej += tally.Rejected
		}
	}
	c.window.PushBack(windowSample{
		accepted: acc - c.lastAccepted, rejected: rej - c.lastRejected,
		rejectedAll: rejAll - c.lastRejectedAll,
	})
	c.lastAccepted, c.lastRejected, c.lastRejectedAll = acc, rej, rejAll
	if c.window.Len() > c.cfg.WindowTicks {
		c.window.PopFront()
	}
	var wAcc, wRej, wRejAll int64
	for i := 0; i < c.window.Len(); i++ {
		s := c.window.At(i)
		wAcc += s.accepted
		wRej += s.rejected
		wRejAll += s.rejectedAll
	}
	if total := wAcc + wRej; total > 0 {
		upRate = float64(wRej) / float64(total)
	}
	return wRej, upRate, wRejAll
}

// tick is one control interval: release drained instances, read the load
// signals, and take at most one scaling action.
func (c *Controller) tick() {
	if c.stopped {
		c.running = false
		return
	}
	now := c.s.Now()
	c.stats.Ticks++

	rejects, rejectRate, allRejects := c.windowRates()
	// Scale-up reads the interactive share of the backlog; scale-down and
	// drain-candidate selection read the aggregate (capacity is released
	// only when no class has queued work). An unlabeled pre-class router
	// reports everything as interactive (the zero class), so the split
	// signals degenerate to the aggregates there.
	var upBacklogSum, upMaxBacklog float64
	var aggBacklogSum float64
	routable := 0
	var drainCandidate router.InstanceInfo
	haveCandidate := false
	for _, info := range c.rt.InstanceInfos() {
		if info.Draining {
			continue
		}
		routable++
		interactive := info.Load.ClassBacklog(sched.ClassInteractive)
		upBacklogSum += interactive
		if interactive > upMaxBacklog {
			upMaxBacklog = interactive
		}
		aggBacklogSum += info.Load.BacklogSeconds
		if !haveCandidate ||
			info.Load.BacklogSeconds < drainCandidate.Load.BacklogSeconds ||
			(info.Load.BacklogSeconds == drainCandidate.Load.BacklogSeconds &&
				info.Load.QueuedTokens < drainCandidate.Load.QueuedTokens) {
			drainCandidate, haveCandidate = info, true
		}
	}
	avgUpBacklog, avgAggBacklog := 0.0, 0.0
	if routable > 0 {
		avgUpBacklog = upBacklogSum / float64(routable)
		avgAggBacklog = aggBacklogSum / float64(routable)
	}
	n := routable + c.pendingAdds

	switch {
	case n < c.cfg.MinInstances:
		// Below the floor (e.g. the pool was constructed small, or Min was
		// raised): restore unconditionally.
		c.scaleUp(now)
	case n < c.cfg.MaxInstances && c.err == nil &&
		(avgUpBacklog > c.cfg.UpBacklogSeconds ||
			upMaxBacklog > 2*c.cfg.UpBacklogSeconds ||
			(rejects > 0 && rejectRate > c.cfg.UpRejectRate)):
		// Proportional step: provision enough instances to bring the mean
		// interactive backlog back to the trigger threshold, not one at a
		// time — a square-wave burst otherwise outruns the tick-by-tick
		// ramp by several cold starts. Interactive sheds escalate to the
		// ceiling outright: by the time admission control is dropping
		// latency-sensitive requests, the backlog signal has already been
		// outrun, and a shed SLO costs more than the extra cold starts of
		// an overshoot.
		target := n + 1
		if want := int(math.Ceil(upBacklogSum / c.cfg.UpBacklogSeconds)); want > target {
			target = want
		}
		if rejects > 0 && rejectRate > c.cfg.UpRejectRate {
			target = c.cfg.MaxInstances
		}
		if target > c.cfg.MaxInstances {
			target = c.cfg.MaxInstances
		}
		for i := n; i < target; i++ {
			c.scaleUp(now)
		}
	case routable > c.cfg.MinInstances && haveCandidate && allRejects == 0 &&
		avgAggBacklog < c.cfg.DownBacklogSeconds &&
		now-c.lastAction >= c.cfg.CooldownSeconds:
		// Graceful drain: the router stops offering the instance; a later
		// tick releases it once its queue empties. The guard counts only
		// routable instances — cold-starting additions must not license a
		// drain, or the pool could briefly have nothing to route to (a
		// short cooldown makes this reachable: scale up, backlog empties,
		// drain fires while the addition is still loading weights).
		if err := c.rt.Drain(drainCandidate.ID); err == nil {
			c.stats.ScaleDowns++
			c.lastAction = now
		}
	}

	// Release draining instances whose in-flight work has finished — after
	// the scaling decision, so a scale-up triggered this tick revives a
	// warm drained instance instead of watching it released and then
	// paying a cold start for the same capacity.
	for _, info := range c.rt.InstanceInfos() {
		if drained, err := c.rt.Drained(info.ID); err != nil || !drained {
			continue
		}
		c.accrue(now)
		if err := c.rt.Remove(info.ID); err == nil {
			c.poolGPUs -= info.GPUs
		}
	}

	if size := c.Size(); size > c.stats.PeakInstances {
		c.stats.PeakInstances = size
	} else if size < c.stats.MinInstances {
		c.stats.MinInstances = size
	}
	c.cfg.Tracer.PoolGauge(now, c.rt.Routable(), c.pendingAdds)

	// Keep ticking while there is anything left to react to: queued
	// events (arrivals, executions, cold starts) or in-flight work. A
	// batch run's event queue then drains and the simulation terminates;
	// KeepAlive servers tick until stopped.
	if c.cfg.KeepAlive || c.s.Pending() > 0 || c.rt.InFlight() > 0 {
		c.s.AfterFunc(c.cfg.TickSeconds, tickEvent, c)
	} else {
		c.running = false
	}
}

// scaleUp adds one instance of capacity. A still-draining instance is
// revived first — its weights are already on the device, so undraining
// restores capacity instantly instead of paying a cold start for
// capacity the pool still owns. Otherwise a new engine is built now (the
// GPU is owned from this moment) and becomes routable after the
// cold-start delay.
func (c *Controller) scaleUp(now float64) {
	for _, info := range c.rt.InstanceInfos() {
		if info.Draining {
			if err := c.rt.Undrain(info.ID); err == nil {
				c.stats.Revives++
				c.lastAction = now
				c.cfg.Tracer.ColdStart(now, 0, "revive", c.Size())
				return
			}
		}
	}
	eng, err := c.factory()
	if err != nil {
		if c.err == nil {
			c.err = fmt.Errorf("autoscale: building instance: %w", err)
		}
		return
	}
	c.accrue(now)
	c.poolGPUs += eng.GPUs()
	c.pendingAdds++
	c.stats.ScaleUps++
	c.lastAction = now
	c.cfg.Tracer.ColdStart(now, c.cfg.ColdStartSeconds, "coldstart", c.Size())
	c.s.After(c.cfg.ColdStartSeconds, func() {
		c.pendingAdds--
		if _, err := c.rt.AddInstance(eng); err != nil && c.err == nil {
			c.err = err
		}
	})
}
