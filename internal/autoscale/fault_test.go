package autoscale

import (
	"testing"

	"repro/internal/sim"
)

// TestCrashDuringPendingColdStart: an instance crashes while a scale-up
// replacement is still cold-starting. The controller must not leak the
// pending add or double-count GPU-seconds, the cold start must still
// land, and the floor-restore path must bring the routable pool back to
// MinInstances so every surviving request completes.
func TestCrashDuringPendingColdStart(t *testing.T) {
	var s sim.Sim
	rt, factory, recs := harness(t, &s, 2)
	ctl, err := New(Config{
		MinInstances: 2, MaxInstances: 4,
		TickSeconds: 0.5, UpBacklogSeconds: 2, DownBacklogSeconds: 0.1,
		ColdStartSeconds: 3, CooldownSeconds: 1,
	}, &s, rt, factory)
	if err != nil {
		t.Fatal(err)
	}
	ctl.Start()

	// Burst at t=0: deep backlog on both instances triggers a scale-up at
	// the first tick, whose cold start lands around t=3.5.
	id := int64(0)
	total := 0
	s.At(0, func() {
		for i := 0; i < 40; i++ {
			id++
			total++
			if err := rt.Submit(mkReq(id, int(id), 3000)); err != nil {
				t.Errorf("submit %d: %v", id, err)
			}
		}
	})
	// Crash one routable instance at t=1 — inside the cold-start window.
	orphaned := 0
	s.At(1, func() {
		if ctl.Size() <= rt.Routable() {
			t.Error("no pending cold start at crash time; raise the burst or lower UpBacklogSeconds")
		}
		victim := rt.InstanceInfos()[0]
		orphans, err := rt.Fail(victim.ID)
		if err != nil {
			t.Errorf("fail: %v", err)
			return
		}
		orphaned = len(orphans)
		ctl.InstanceLost(1, victim.GPUs)
		for _, r := range orphans {
			if err := rt.Submit(r); err != nil {
				t.Errorf("re-admitting orphan %d: %v", r.ID, err)
			}
		}
	})
	// Sparse tail keeps the tick loop alive through the recovery.
	for ti := 0; ti < 20; ti++ {
		s.At(60+2*float64(ti), func() {
			id++
			total++
			if err := rt.Submit(mkReq(id, int(id), 200)); err != nil {
				t.Errorf("tail submit %d: %v", id, err)
			}
		})
	}
	end := s.Run()

	if err := ctl.Err(); err != nil {
		t.Fatal(err)
	}
	if orphaned == 0 {
		t.Fatal("the crashed instance had nothing in flight; the burst should have loaded it")
	}
	if got := len(*recs); got != total {
		t.Fatalf("completed %d of %d requests after crash recovery", got, total)
	}
	st := ctl.Stats()
	if st.Lost != 1 {
		t.Errorf("Lost = %d, want 1", st.Lost)
	}
	if rt.Routable() < 2 {
		t.Errorf("routable %d at end, want floor 2 restored", rt.Routable())
	}
	// No leaked pending add: once everything lands, Size is the routable
	// count.
	if ctl.Size() != rt.Routable() {
		t.Errorf("controller size %d != routable %d: leaked pendingAdds", ctl.Size(), rt.Routable())
	}
	// GPU-seconds: the crashed instance stopped accruing at t=1, so the
	// integral must be below a full fleet running the whole time.
	gs := ctl.GPUSeconds(end)
	if upper := float64(st.PeakInstances) * end; gs >= upper {
		t.Errorf("GPU-seconds %g >= %g: crashed capacity kept accruing", gs, upper)
	}
}
