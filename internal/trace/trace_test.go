package trace

import (
	"sync"
	"testing"

	"repro/internal/kvcache"
	"repro/internal/sched"
	"repro/internal/sim"
)

func TestRecorderEmitAndCounters(t *testing.T) {
	r := New(16)
	r.Submit(1.0, "affinity", 1, sched.ClassInteractive)
	r.Route(1.0, "affinity", 1, sched.ClassInteractive, 2, 128, 0.5)
	r.Reject(2.0, "backlog", 2, sched.ClassBatch, 0, 9.5, 8)
	i := r.NewInstance("prefillonly")
	i.Queue(1, sched.ClassInteractive, 1.0, 1.5)
	i.Exec(1, sched.ClassInteractive, 1.5, 2.5, 128, 0.5)

	if got := r.Len(); got != 5 {
		t.Fatalf("Len = %d, want 5", got)
	}
	if got := r.TotalEmitted(); got != 5 {
		t.Fatalf("TotalEmitted = %d, want 5", got)
	}
	for _, k := range []Kind{KindSubmit, KindRoute, KindReject, KindQueue, KindExec} {
		if got := r.Emitted(k); got != 1 {
			t.Fatalf("Emitted(%v) = %d, want 1", k, got)
		}
	}
	spans := r.Spans()
	if spans[0].Kind != KindSubmit || spans[4].Kind != KindExec {
		t.Fatalf("span order: %v ... %v", spans[0].Kind, spans[4].Kind)
	}
	if got := spans[4].End(); got != 2.5 {
		t.Fatalf("exec End = %v, want 2.5", got)
	}
	if spans[3].Dur != 0.5 {
		t.Fatalf("queue Dur = %v, want 0.5", spans[3].Dur)
	}
}

// TestRingOverflowDropsOldest pins the flight-recorder contract: the ring
// keeps the most recent window, drops count the evictions, and the
// cumulative per-kind counters stay exact across drops.
func TestRingOverflowDropsOldest(t *testing.T) {
	const max, total = 4, 10
	r := New(max)
	for id := int64(0); id < total; id++ {
		r.Submit(float64(id), "p", id, sched.ClassInteractive)
	}
	if got := r.Len(); got != max {
		t.Fatalf("Len = %d, want %d", got, max)
	}
	if got := r.Dropped(); got != total-max {
		t.Fatalf("Dropped = %d, want %d", got, total-max)
	}
	if got := r.Emitted(KindSubmit); got != total {
		t.Fatalf("Emitted = %d, want %d (counters must survive drops)", got, total)
	}
	for j, s := range r.Spans() {
		if want := int64(total - max + j); s.ReqID != want {
			t.Fatalf("span %d has ReqID %d, want %d (oldest must go first)", j, s.ReqID, want)
		}
	}
}

// TestConcurrentEmission hammers one recorder from many goroutines (the
// served path emits from request goroutines while the clock loop samples
// gauges) and checks the counters are exact. Run under -race.
func TestConcurrentEmission(t *testing.T) {
	const workers, perWorker = 8, 500
	r := New(64) // small ring: force constant overflow too
	inst := r.NewInstance("e")
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for j := 0; j < perWorker; j++ {
				id := int64(w*perWorker + j)
				r.Submit(float64(j), "p", id, sched.ClassInteractive)
				inst.Exec(id, sched.ClassInteractive, float64(j), float64(j)+1, 0, 0)
			}
		}(w)
	}
	// Concurrent readers must not race with emission.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for k := 0; k < 100; k++ {
			_ = r.Spans()
			_ = r.TotalEmitted()
			_ = r.Instances()
		}
	}()
	wg.Wait()
	<-done
	if got := r.Emitted(KindSubmit); got != workers*perWorker {
		t.Fatalf("submits = %d, want %d", got, workers*perWorker)
	}
	if got := r.Emitted(KindExec); got != workers*perWorker {
		t.Fatalf("execs = %d, want %d", got, workers*perWorker)
	}
	if got, want := r.Dropped(), r.TotalEmitted()-uint64(r.Len()); got != want {
		t.Fatalf("dropped %d + held %d != emitted %d", got, r.Len(), r.TotalEmitted())
	}
}

// TestDisabledTracingZeroAlloc pins the hard constraint from the sim
// kernel's discipline: with tracing disabled (nil recorder, nil instance
// handles) every emission site reduces to a branch — zero allocations.
func TestDisabledTracingZeroAlloc(t *testing.T) {
	var r *Recorder
	inst := r.NewInstance("e") // nil: the disabled handle engines hold
	if inst != nil {
		t.Fatal("nil recorder handed out a non-nil instance")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		r.Submit(1, "p", 1, sched.ClassInteractive)
		r.Route(1, "p", 1, sched.ClassInteractive, 0, 0, 0)
		r.Reject(1, "backlog", 1, sched.ClassInteractive, 0, 0, 0)
		r.LoadGauge(1, 0, 0, 0)
		r.PoolGauge(1, 1, 0)
		r.ColdStart(1, 0, "revive", 1)
		r.SampleCaches(1)
		inst.Queue(1, sched.ClassInteractive, 0, 1)
		inst.Exec(1, sched.ClassInteractive, 1, 2, 0, 0)
		inst.Stage("s", 1, sched.ClassInteractive, 1, 2)
	})
	if allocs != 0 {
		t.Fatalf("disabled tracing allocates %.1f per event, want 0", allocs)
	}
}

// TestEnabledEmitZeroAllocSteadyState pins the enabled path's span-slot
// preallocation: once the ring is warm, Emit reuses slots and never
// allocates.
func TestEnabledEmitZeroAllocSteadyState(t *testing.T) {
	r := New(256)
	inst := r.NewInstance("e")
	for j := 0; j < 512; j++ { // wrap the ring: steady state
		inst.Exec(int64(j), sched.ClassInteractive, 0, 1, 0, 0)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		r.Submit(1, "p", 1, sched.ClassInteractive)
		inst.Queue(1, sched.ClassInteractive, 0, 1)
		inst.Exec(1, sched.ClassInteractive, 1, 2, 0, 0)
	})
	if allocs != 0 {
		t.Fatalf("steady-state emission allocates %.1f per event, want 0", allocs)
	}
}

func TestWatchCacheTracksResidency(t *testing.T) {
	r := New(0)
	inst := r.NewInstance("e")
	m, err := kvcache.New(kvcache.Config{BlockTokens: 4, BytesPerToken: 1, CapacityBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	WatchCache(inst, m)
	tokens := []uint64{1, 2, 3, 4, 5, 6, 7, 8}
	m.Insert(tokens, len(tokens), 1.0)
	m.Lookup(tokens, 2.0) // Lookup flushes the pending change feed
	metas := r.Instances()
	if len(metas) != 1 {
		t.Fatalf("instances = %d, want 1", len(metas))
	}
	if metas[0].ResidentBlocks != 2 || metas[0].InsertedBlocks != 2 {
		t.Fatalf("residency = %+v, want 2 resident / 2 inserted", metas[0])
	}
	r.SampleCaches(3.0)
	spans := r.Spans()
	last := spans[len(spans)-1]
	if last.Kind != KindCacheGauge || last.A != 2 {
		t.Fatalf("cache gauge = %+v, want A=2", last)
	}
}

// TestSamplerDrains pins the sampler's termination discipline: it ticks
// while work is pending and winds down when the queue would otherwise
// drain, so batch runs terminate; Start re-arms idempotently.
func TestSamplerDrains(t *testing.T) {
	var s sim.Sim
	var samples int
	sp := NewSampler(&s, 1.0, func(now float64) { samples++ })
	// Work spanning 5 sim seconds.
	for j := 1; j <= 5; j++ {
		s.At(float64(j), func() {})
	}
	sp.Start()
	sp.Start() // idempotent: must not double-tick
	s.Run()
	if samples < 4 {
		t.Fatalf("samples = %d, want >= 4 over 5s at 1s interval", samples)
	}
	if s.Pending() != 0 {
		t.Fatalf("sampler kept the sim alive: %d pending", s.Pending())
	}
	// Re-arming after a drain works.
	before := samples
	s.At(s.Now()+3, func() {})
	sp.Start()
	s.Run()
	if samples <= before {
		t.Fatal("sampler did not re-arm after drain")
	}
}

func TestNewSamplerValidatesInterval(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero interval accepted")
		}
	}()
	NewSampler(&sim.Sim{}, 0, func(float64) {})
}
