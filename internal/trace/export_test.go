package trace

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/sched"
)

// exportedEvent mirrors the Chrome trace-event shape for assertions.
type exportedEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  *float64       `json:"dur"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args"`
}

func TestWriteTraceNilRecorder(t *testing.T) {
	var r *Recorder
	if err := r.WriteTrace(&bytes.Buffer{}); err == nil {
		t.Fatal("nil recorder exported without error")
	}
}

func TestWriteTracePerfettoShape(t *testing.T) {
	r := New(0)
	i0 := r.NewInstance("prefillonly")
	i1 := r.NewInstance("prefillonly")
	r.Submit(1.0, "affinity", 7, sched.ClassInteractive)
	r.Route(1.0, "affinity", 7, sched.ClassInteractive, 1, 64, 0.25)
	i1.Queue(7, sched.ClassInteractive, 1.0, 1.25)
	i1.Exec(7, sched.ClassInteractive, 1.25, 2.0, 64, 0.25)
	i1.Stage("pass-stage0", 7, sched.ClassInteractive, 1.25, 1.5)
	r.Reject(2.0, "backlog", 8, sched.ClassBatch, 0, 9, 8)
	r.LoadGauge(2.0, 0, 3, 4.5)
	r.PoolGauge(2.0, 2, 1)
	r.ColdStart(2.0, 0.5, "coldstart", 3)
	_ = i0

	var buf bytes.Buffer
	if err := r.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents     []exportedEvent `json:"traceEvents"`
		DisplayTimeUnit string          `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if file.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", file.DisplayTimeUnit)
	}
	var metaNames, complete, instants, counters int
	var sawQueue, sawExec *exportedEvent
	for idx := range file.TraceEvents {
		ev := &file.TraceEvents[idx]
		switch ev.Ph {
		case "M":
			metaNames++
		case "X":
			complete++
			if ev.Dur == nil {
				t.Fatalf("complete event %q has no dur", ev.Name)
			}
			switch ev.Name {
			case "queue":
				sawQueue = ev
			case "exec":
				sawExec = ev
			}
		case "i":
			instants++
		case "C":
			counters++
		}
	}
	// process_name + one thread_name for the router + one per instance.
	if metaNames != 4 {
		t.Fatalf("metadata events = %d, want 4", metaNames)
	}
	if complete < 4 { // queue, exec, stage, coldstart
		t.Fatalf("complete spans = %d, want >= 4", complete)
	}
	if instants != 3 { // submit, route, reject
		t.Fatalf("instants = %d, want 3", instants)
	}
	if counters != 2 { // load + pool gauges
		t.Fatalf("counters = %d, want 2", counters)
	}
	if sawQueue == nil || sawExec == nil {
		t.Fatal("queue/exec spans missing from export")
	}
	// Sim seconds render as microseconds; instance i is thread i+1 (the
	// router owns thread 0).
	if sawExec.TS != 1.25e6 || *sawExec.Dur != 0.75e6 {
		t.Fatalf("exec ts/dur = %v/%v, want 1.25e6/0.75e6", sawExec.TS, *sawExec.Dur)
	}
	if sawExec.TID != int(i1.ID())+1 {
		t.Fatalf("exec tid = %d, want %d", sawExec.TID, i1.ID()+1)
	}
	// Queue end must meet exec start: full attribution with no gap.
	if got := sawQueue.TS + *sawQueue.Dur; got != sawExec.TS {
		t.Fatalf("queue ends at %v but exec starts at %v", got, sawExec.TS)
	}
}
