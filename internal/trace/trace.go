// Package trace is the simulation's observability layer: a sim-time-aware
// flight recorder that captures per-request lifecycle spans (submit →
// admit/reject → route → queue → execute, with pipeline pass stages) and
// periodic fleet gauges (per-instance queue depth and backlog, cache
// residency, pool size and cold-start windows).
//
// Storage is a bounded ring on internal/ringbuf: when the ring is full the
// oldest span is dropped, so a long run keeps the most recent window — a
// flight recorder, not a log. Cumulative per-kind counters stay exact
// across drops, so the metrics surface never lies even when the ring has
// wrapped.
//
// Everything is nil-safe: a nil *Recorder (and the nil *Instance handles
// it hands out) turns every emission into a branch-and-return, so the
// tracing-disabled hot path keeps the sim kernel's zero-alloc discipline
// (pinned by TestDisabledTracingZeroAlloc). The enabled path emits
// value-typed spans into the preallocated ring — no per-span allocation
// once the recorder is warm — and the gauge sampler schedules itself
// through the kernel's AtFunc fast path.
//
// Export is Chrome trace-event JSON (see export.go): engine instances
// render as threads and lifecycle spans as complete ("X") events, loadable
// in Perfetto or chrome://tracing.
package trace

import (
	"sync"

	"repro/internal/kvcache"
	"repro/internal/ringbuf"
	"repro/internal/sched"
	"repro/internal/sim"
)

// Kind discriminates span records. Each kind documents how it uses the
// Span's generic fields (Name, A, B).
type Kind uint8

const (
	// KindSubmit is an instant: a request reached the router.
	// Name=policy.
	KindSubmit Kind = iota
	// KindRoute is an instant: the admission decision admitted the
	// request and the policy chose an instance. Name=policy,
	// Inst=router instance id, A=prefix-cache hit tokens at decision
	// time, B=estimated service seconds.
	KindRoute
	// KindReject is an instant: admission control shed the request.
	// Name=reason, Inst=router instance id, A=backlog seconds at the
	// chosen instance, B=the budget it exceeded.
	KindReject
	// KindQueue is a span: arrival → engine dispatch (time spent queued
	// behind other requests). Inst=trace instance id.
	KindQueue
	// KindExec is a span: engine dispatch → completion. Its end is the
	// request's completion instant, so queue+exec fully attribute the
	// request's JCT. Inst=trace instance id, A=prefix-cache hit tokens,
	// B=the scheduler's estimated JCT seconds (0 when the scheduler does
	// not estimate).
	KindExec
	// KindStage is a span: one pipeline-parallel pass stage (or the
	// inter-stage handoff wait). Name=stage label, Inst=trace instance
	// id.
	KindStage
	// KindColdStart is a span: an autoscale scale-up decision → the
	// instance becoming routable. A=pool size after the decision.
	// Name distinguishes "coldstart" (fresh instance) from "revive"
	// (a draining instance undrained, Dur=0).
	KindColdStart
	// KindLoadGauge is a sampled gauge: Inst=router instance id,
	// A=queued requests, B=backlog seconds.
	KindLoadGauge
	// KindCacheGauge is a sampled gauge: Inst=trace instance id,
	// A=resident KV blocks.
	KindCacheGauge
	// KindPoolGauge is a sampled gauge: A=routable pool size,
	// B=pending cold starts.
	KindPoolGauge
	// KindFault is an instant: the chaos injector hit an instance.
	// Name=fault label ("crash", "straggler", "straggler-end",
	// "preempt-notice", "preempt-kill"), Inst=router instance id,
	// A=orphaned requests (kill faults), B=routable pool size after the
	// fault.
	KindFault

	numKinds
)

// Kinds lists every span kind, in declaration order (for metric exports
// that iterate the per-kind counters).
func Kinds() []Kind {
	out := make([]Kind, numKinds)
	for i := range out {
		out[i] = Kind(i)
	}
	return out
}

// String returns the kind's stable label (used by export and metrics).
func (k Kind) String() string {
	switch k {
	case KindSubmit:
		return "submit"
	case KindRoute:
		return "route"
	case KindReject:
		return "reject"
	case KindQueue:
		return "queue"
	case KindExec:
		return "exec"
	case KindStage:
		return "stage"
	case KindColdStart:
		return "coldstart"
	case KindLoadGauge:
		return "load-gauge"
	case KindCacheGauge:
		return "cache-gauge"
	case KindPoolGauge:
		return "pool-gauge"
	case KindFault:
		return "fault"
	}
	return "unknown"
}

// Span is one flight-recorder record, stored by value in the ring.
// Start/Dur are sim seconds (Dur 0 for instants and gauges). Name must be
// a constant or long-lived string (policy names, reject reasons, stage
// labels) so emission never builds a string. A and B are kind-specific
// numeric attributes documented on each Kind.
type Span struct {
	Kind  Kind
	Class sched.Class
	Inst  int32
	ReqID int64
	Start float64
	Dur   float64
	Name  string
	A, B  float64
}

// End returns the span's end time.
func (s Span) End() float64 { return s.Start + s.Dur }

// DefaultMaxSpans is the flight-recorder ring capacity when New is given
// a non-positive limit: recent-window depth, not run length.
const DefaultMaxSpans = 1 << 15

// Recorder is the sim-time flight recorder. All methods are safe on a nil
// receiver (no-ops) and safe for concurrent use: the HTTP frontend emits
// from request goroutines while the backend loop emits under its own lock.
// The nil-receiver contract is enforced statically by prefillvet's
// nilguard analyzer.
//
//prefill:niltolerant
type Recorder struct {
	mu      sync.Mutex
	ring    ringbuf.Ring[Span]
	max     int
	emitted [numKinds]uint64
	dropped uint64
	insts   []*Instance
}

// New builds a Recorder whose ring keeps at most maxSpans records
// (DefaultMaxSpans when maxSpans <= 0). The ring is preallocated so
// steady-state emission never resizes.
func New(maxSpans int) *Recorder {
	if maxSpans <= 0 {
		maxSpans = DefaultMaxSpans
	}
	r := &Recorder{max: maxSpans}
	r.ring.Reserve(maxSpans)
	return r
}

// Emit appends one span, dropping the oldest record when the ring is
// full. The per-kind emitted counters count every span ever emitted,
// drops included, so cumulative metrics stay exact after the ring wraps.
func (r *Recorder) Emit(s Span) {
	if r == nil || s.Kind >= numKinds {
		return
	}
	r.mu.Lock()
	r.emitted[s.Kind]++
	if r.ring.Len() >= r.max {
		r.ring.PopFront()
		r.dropped++
	}
	r.ring.PushBack(s)
	r.mu.Unlock()
}

// Len returns the number of spans currently held in the ring.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ring.Len()
}

// Dropped returns how many spans the ring has evicted to make room.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Emitted returns the cumulative count of spans of one kind (exact even
// after ring overflow).
func (r *Recorder) Emitted(k Kind) uint64 {
	if r == nil || k >= numKinds {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.emitted[k]
}

// TotalEmitted returns the cumulative span count across all kinds.
func (r *Recorder) TotalEmitted() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var sum uint64
	for _, n := range r.emitted {
		sum += n
	}
	return sum
}

// Spans returns a copy of the ring's live window, oldest first.
func (r *Recorder) Spans() []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Span, r.ring.Len())
	for i := range out {
		out[i] = r.ring.At(i)
	}
	return out
}

// --- router-level emissions (timestamps are the request's arrival: the
// router has no clock of its own, and submission happens at arrival time
// on both the simulated and the served path) ---

// Submit records a request reaching the router.
func (r *Recorder) Submit(now float64, policy string, reqID int64, class sched.Class) {
	r.Emit(Span{Kind: KindSubmit, Class: class, Inst: -1, ReqID: reqID, Start: now, Name: policy})
}

// Route records an admitted request's placement decision.
func (r *Recorder) Route(now float64, policy string, reqID int64, class sched.Class, instance int, hitTokens int, estSeconds float64) {
	r.Emit(Span{Kind: KindRoute, Class: class, Inst: int32(instance), ReqID: reqID,
		Start: now, Name: policy, A: float64(hitTokens), B: estSeconds})
}

// Reject records an admission-control shed and the budget it tripped.
func (r *Recorder) Reject(now float64, reason string, reqID int64, class sched.Class, instance int, backlog, bound float64) {
	r.Emit(Span{Kind: KindReject, Class: class, Inst: int32(instance), ReqID: reqID,
		Start: now, Name: reason, A: backlog, B: bound})
}

// --- autoscale emissions ---

// ColdStart records a scale-up window: decision at now, routable at
// now+dur. Name is "coldstart" for a fresh instance or "revive" (dur 0)
// for an undrained one.
func (r *Recorder) ColdStart(now, dur float64, name string, poolSize int) {
	r.Emit(Span{Kind: KindColdStart, Inst: -1, Start: now, Dur: dur, Name: name, A: float64(poolSize)})
}

// PoolGauge records the routable pool size and pending cold starts.
func (r *Recorder) PoolGauge(now float64, size, pending int) {
	r.Emit(Span{Kind: KindPoolGauge, Inst: -1, Start: now, A: float64(size), B: float64(pending)})
}

// Fault records a chaos-injector fault instant. label must be one of the
// injector's constant fault labels; orphans counts requests orphaned by a
// kill fault (0 otherwise) and routable is the pool size after the fault.
func (r *Recorder) Fault(now float64, label string, instance int, orphans, routable int) {
	r.Emit(Span{Kind: KindFault, Inst: int32(instance), Start: now, Name: label,
		A: float64(orphans), B: float64(routable)})
}

// LoadGauge records one instance's queue depth and backlog seconds.
func (r *Recorder) LoadGauge(now float64, instance int, queued int, backlogSeconds float64) {
	r.Emit(Span{Kind: KindLoadGauge, Inst: int32(instance), Start: now,
		A: float64(queued), B: backlogSeconds})
}

// --- engine instances ---

// Instance is an engine's handle into the recorder: a stable trace
// "thread" id plus the cache-residency tally fed by WatchCache. All
// methods are nil-safe so disabled tracing costs one branch (enforced by
// nilguard).
//
//prefill:niltolerant
type Instance struct {
	rec  *Recorder
	id   int32
	name string
	// cache residency, guarded by rec.mu
	resident int64
	inserted uint64
	evicted  uint64
}

// NewInstance registers an engine under the recorder and returns its
// handle (nil on a nil recorder). Engines of the same kind share a Name,
// so the id disambiguates; export renders "name#id".
func (r *Recorder) NewInstance(name string) *Instance {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	inst := &Instance{rec: r, id: int32(len(r.insts)), name: name}
	r.insts = append(r.insts, inst)
	return inst
}

// ID returns the instance's trace id (-1 on a nil handle).
func (i *Instance) ID() int32 {
	if i == nil {
		return -1
	}
	return i.id
}

// Queue records the request's wait span: arrival → engine dispatch.
func (i *Instance) Queue(reqID int64, class sched.Class, arrival, start float64) {
	if i == nil {
		return
	}
	i.rec.Emit(Span{Kind: KindQueue, Class: class, Inst: i.id, ReqID: reqID,
		Start: arrival, Dur: start - arrival})
}

// Exec records the request's service span: dispatch → completion. Its end
// is the completion instant; queue+exec sum to the request's JCT.
func (i *Instance) Exec(reqID int64, class sched.Class, start, finish float64, cachedTokens int, estSeconds float64) {
	if i == nil {
		return
	}
	i.rec.Emit(Span{Kind: KindExec, Class: class, Inst: i.id, ReqID: reqID,
		Start: start, Dur: finish - start, A: float64(cachedTokens), B: estSeconds})
}

// Stage records one pipeline pass stage (or handoff wait) within an exec
// span. name must be a constant label.
func (i *Instance) Stage(name string, reqID int64, class sched.Class, start, end float64) {
	if i == nil {
		return
	}
	i.rec.Emit(Span{Kind: KindStage, Class: class, Inst: i.id, ReqID: reqID,
		Start: start, Dur: end - start, Name: name})
}

// cacheDelta folds a kvcache change event into the instance's residency.
func (i *Instance) cacheDelta(inserted, evicted int) {
	i.rec.mu.Lock()
	i.resident += int64(inserted) - int64(evicted)
	i.inserted += uint64(inserted)
	i.evicted += uint64(evicted)
	i.rec.mu.Unlock()
}

// WatchCache subscribes the instance to a cache's membership change feed
// so residency gauges and inserted/evicted counters track the cache
// without polling. No-op on a nil handle or cache.
func WatchCache(i *Instance, m *kvcache.Manager) {
	if i == nil || m == nil {
		return
	}
	m.Subscribe(func(ev kvcache.ChangeEvent) {
		i.cacheDelta(len(ev.Inserted), len(ev.Evicted))
	})
}

// InstanceMeta is one registered instance's identity and cache tallies.
type InstanceMeta struct {
	ID             int32
	Name           string
	ResidentBlocks int64
	InsertedBlocks uint64
	EvictedBlocks  uint64
}

// Instances returns a snapshot of every registered instance.
func (r *Recorder) Instances() []InstanceMeta {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]InstanceMeta, len(r.insts))
	for i, inst := range r.insts {
		out[i] = InstanceMeta{
			ID: inst.id, Name: inst.name,
			ResidentBlocks: inst.resident,
			InsertedBlocks: inst.inserted,
			EvictedBlocks:  inst.evicted,
		}
	}
	return out
}

// SampleCaches emits one KindCacheGauge span per registered instance from
// the residency tallies WatchCache maintains.
func (r *Recorder) SampleCaches(now float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	counts := make([]int64, len(r.insts))
	for i, inst := range r.insts {
		counts[i] = inst.resident
	}
	r.mu.Unlock()
	for i, c := range counts {
		r.Emit(Span{Kind: KindCacheGauge, Inst: int32(i), Start: now, A: float64(c)})
	}
}

// --- gauge sampler ---

// Sampler drives periodic gauge emission on the sim clock. Its tick is a
// package-level callback scheduled through the kernel's AtFunc fast path,
// and it follows the autoscale controller's termination discipline: it
// reschedules only while other events are pending, so a batch run drains
// instead of ticking forever. Start re-arms it (idempotently) when new
// work is submitted. A nil Sampler no-ops (enforced by nilguard).
//
//prefill:niltolerant
type Sampler struct {
	s        sim.Clock
	interval float64
	sample   func(now float64)
	running  bool
}

// NewSampler builds a sampler calling sample(now) every interval sim
// seconds. The callback reads fleet state (router loads, caches, pool)
// and emits gauges on a Recorder.
func NewSampler(s sim.Clock, interval float64, sample func(now float64)) *Sampler {
	if interval <= 0 {
		panic("trace: sampler interval must be positive")
	}
	return &Sampler{s: s, interval: interval, sample: sample}
}

// Start arms the sampler if it is not already ticking.
func (sp *Sampler) Start() {
	if sp == nil || sp.running {
		return
	}
	sp.running = true
	sp.s.AfterFunc(sp.interval, samplerTick, sp)
}

// samplerTick is the fast-path callback: sample, then reschedule only
// while the sim still has other pending events.
func samplerTick(arg any) {
	sp := arg.(*Sampler)
	sp.sample(sp.s.Now())
	if sp.s.Pending() > 0 {
		sp.s.AfterFunc(sp.interval, samplerTick, sp)
		return
	}
	sp.running = false
}
