package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// traceEvent is one Chrome trace-event record. Complete spans use ph "X"
// with a duration; instants use ph "i"; counters use ph "C"; metadata
// (process/thread names) uses ph "M". Timestamps are microseconds.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// traceFile is the JSON-object form of the Chrome trace format.
type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

const (
	tracePID = 1
	// routerTID is the synthetic thread carrying router-level events
	// (submit/route/reject), cold-start windows and fleet counters;
	// engine instance i renders as thread i+1.
	routerTID = 0
)

// usec converts sim seconds to trace microseconds.
func usec(s float64) float64 { return s * 1e6 }

// WriteTrace renders the flight recorder's live window as Chrome
// trace-event JSON, loadable in Perfetto (https://ui.perfetto.dev) or
// chrome://tracing: engine instances appear as threads, request lifecycle
// spans as "X" events, router decisions as instants and fleet gauges as
// counter tracks.
func (r *Recorder) WriteTrace(w io.Writer) error {
	if r == nil {
		return fmt.Errorf("trace: recorder is nil (tracing disabled)")
	}
	insts := r.Instances()
	spans := r.Spans()

	events := make([]traceEvent, 0, len(spans)+len(insts)+2)
	events = append(events,
		traceEvent{Name: "process_name", Ph: "M", PID: tracePID, TID: routerTID,
			Args: map[string]any{"name": "prefillonly"}},
		traceEvent{Name: "thread_name", Ph: "M", PID: tracePID, TID: routerTID,
			Args: map[string]any{"name": "router"}},
	)
	for _, im := range insts {
		events = append(events, traceEvent{
			Name: "thread_name", Ph: "M", PID: tracePID, TID: int(im.ID) + 1,
			Args: map[string]any{"name": fmt.Sprintf("%s#%d", im.Name, im.ID)},
		})
	}

	for _, s := range spans {
		events = append(events, spanEvent(s))
	}

	enc := json.NewEncoder(w)
	return enc.Encode(traceFile{TraceEvents: events, DisplayTimeUnit: "ms"})
}

// spanEvent maps one flight-recorder span onto a trace event.
func spanEvent(s Span) traceEvent {
	dur := usec(s.Dur)
	switch s.Kind {
	case KindSubmit:
		return traceEvent{Name: "submit", Cat: "router", Ph: "i", S: "t",
			TS: usec(s.Start), PID: tracePID, TID: routerTID,
			Args: map[string]any{"req": s.ReqID, "class": s.Class.String(), "policy": s.Name}}
	case KindRoute:
		return traceEvent{Name: "route", Cat: "router", Ph: "i", S: "t",
			TS: usec(s.Start), PID: tracePID, TID: routerTID,
			Args: map[string]any{"req": s.ReqID, "class": s.Class.String(), "policy": s.Name,
				"instance": s.Inst, "hit_tokens": s.A, "est_seconds": s.B}}
	case KindReject:
		return traceEvent{Name: "reject:" + s.Name, Cat: "router", Ph: "i", S: "t",
			TS: usec(s.Start), PID: tracePID, TID: routerTID,
			Args: map[string]any{"req": s.ReqID, "class": s.Class.String(),
				"instance": s.Inst, "backlog_seconds": s.A, "bound_seconds": s.B}}
	case KindQueue:
		return traceEvent{Name: "queue", Cat: "request", Ph: "X",
			TS: usec(s.Start), Dur: &dur, PID: tracePID, TID: int(s.Inst) + 1,
			Args: map[string]any{"req": s.ReqID, "class": s.Class.String()}}
	case KindExec:
		return traceEvent{Name: "exec", Cat: "request", Ph: "X",
			TS: usec(s.Start), Dur: &dur, PID: tracePID, TID: int(s.Inst) + 1,
			Args: map[string]any{"req": s.ReqID, "class": s.Class.String(),
				"cached_tokens": s.A, "est_seconds": s.B}}
	case KindStage:
		return traceEvent{Name: s.Name, Cat: "stage", Ph: "X",
			TS: usec(s.Start), Dur: &dur, PID: tracePID, TID: int(s.Inst) + 1,
			Args: map[string]any{"req": s.ReqID, "class": s.Class.String()}}
	case KindColdStart:
		return traceEvent{Name: s.Name, Cat: "pool", Ph: "X",
			TS: usec(s.Start), Dur: &dur, PID: tracePID, TID: routerTID,
			Args: map[string]any{"pool_size": s.A}}
	case KindLoadGauge:
		return traceEvent{Name: fmt.Sprintf("load/inst%d", s.Inst), Cat: "gauge", Ph: "C",
			TS: usec(s.Start), PID: tracePID, TID: routerTID,
			Args: map[string]any{"queued": s.A, "backlog_seconds": s.B}}
	case KindCacheGauge:
		return traceEvent{Name: fmt.Sprintf("cache/inst%d", s.Inst), Cat: "gauge", Ph: "C",
			TS: usec(s.Start), PID: tracePID, TID: routerTID,
			Args: map[string]any{"resident_blocks": s.A}}
	case KindPoolGauge:
		return traceEvent{Name: "pool", Cat: "gauge", Ph: "C",
			TS: usec(s.Start), PID: tracePID, TID: routerTID,
			Args: map[string]any{"size": s.A, "pending_cold_starts": s.B}}
	case KindFault:
		return traceEvent{Name: "fault:" + s.Name, Cat: "fault", Ph: "i", S: "t",
			TS: usec(s.Start), PID: tracePID, TID: routerTID,
			Args: map[string]any{"instance": s.Inst, "orphans": s.A, "routable": s.B}}
	}
	return traceEvent{Name: "unknown", Ph: "i", TS: usec(s.Start), PID: tracePID, TID: routerTID}
}
