package model

import "fmt"

// Shard returns the per-GPU view of the model under tensor parallelism of
// degree tp and pipeline parallelism of degree pp, following the Megatron
// sharding scheme vLLM implements: TP splits attention heads, KV heads, the
// MLP intermediate dimension and the vocabulary across GPUs; PP assigns each
// GPU a contiguous block of layers.
//
// KV heads cannot shard below one per GPU; when tp exceeds KVHeads the heads
// are replicated (as vLLM does), so the per-GPU KV width stops shrinking.
func (c *Config) Shard(tp, pp int) (*Config, error) {
	if tp < 1 || pp < 1 {
		return nil, fmt.Errorf("model: shard degrees must be >= 1, got tp=%d pp=%d", tp, pp)
	}
	if c.Heads%tp != 0 {
		return nil, fmt.Errorf("model %q: %d heads not divisible by tp=%d", c.Name, c.Heads, tp)
	}
	if c.Intermediate%tp != 0 {
		return nil, fmt.Errorf("model %q: intermediate %d not divisible by tp=%d", c.Name, c.Intermediate, tp)
	}
	if c.Layers%pp != 0 {
		return nil, fmt.Errorf("model %q: %d layers not divisible by pp=%d", c.Name, c.Layers, pp)
	}
	s := *c
	s.Name = fmt.Sprintf("%s[tp=%d,pp=%d]", c.Name, tp, pp)
	s.Heads = c.Heads / tp
	s.HeadDim = c.HeadDim // head dim is never sharded
	// Hidden stays full: the residual stream is replicated across TP ranks.
	// To keep Heads*HeadDim == Hidden invariants meaningful we track the
	// sharded attention width via Heads only; Validate is therefore not
	// applicable to sharded views.
	s.KVHeads = c.KVHeads / tp
	if s.KVHeads < 1 {
		s.KVHeads = 1 // replicated KV heads
	}
	s.Intermediate = c.Intermediate / tp
	s.Vocab = c.Vocab / tp
	s.Layers = c.Layers / pp
	return &s, nil
}

// MustShard is Shard for statically-valid degrees.
func (c *Config) MustShard(tp, pp int) *Config {
	s, err := c.Shard(tp, pp)
	if err != nil {
		panic(err)
	}
	return s
}
