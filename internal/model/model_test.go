package model

import (
	"testing"
	"testing/quick"
)

func TestLlama8BParamsCloseTo8B(t *testing.T) {
	c := Llama31_8B()
	p := c.Params()
	if p < 7_900_000_000 || p > 8_300_000_000 {
		t.Fatalf("Llama-3.1-8B params = %d, want ~8.03B", p)
	}
}

func TestQwen32BParamsCloseTo32B(t *testing.T) {
	c := Qwen32BFP8()
	p := c.Params()
	if p < 31_000_000_000 || p > 34_500_000_000 {
		t.Fatalf("Qwen-32B params = %d, want ~32.8B", p)
	}
}

func TestLlama70BParamsCloseTo70B(t *testing.T) {
	c := Llama33_70BFP8()
	p := c.Params()
	if p < 69_000_000_000 || p > 72_000_000_000 {
		t.Fatalf("Llama-3.3-70B params = %d, want ~70.6B", p)
	}
}

// The paper (§2.1) states the KV cache of a 100,000-token request is around
// 12 GB on Llama-3.1-8B.
func TestKVCache100kTokensIs12GB(t *testing.T) {
	c := Llama31_8B()
	got := c.KVBytes(100_000)
	gb := float64(got) / (1 << 30)
	if gb < 11.5 || gb > 12.5 {
		t.Fatalf("100k-token KV cache = %.2f GiB, want ~12.2 GiB", gb)
	}
}

// The paper (§4.1, Figure 4) states the MLP intermediate tensor holds 28,672
// floats per token, 14× the one-layer KV size.
func TestMLPIntermediateIs14xOneLayerKV(t *testing.T) {
	c := Llama31_8B()
	inter1 := c.MLPIntermediate1BytesPerToken()
	kv := c.KVBytesPerTokenLayer()
	if inter1 != 14*kv {
		t.Fatalf("intermediate1/one-layer-KV = %d/%d = %.2f, want exactly 14",
			inter1, kv, float64(inter1)/float64(kv))
	}
	inter2 := c.MLPIntermediate2BytesPerToken()
	if inter2 != 7*kv {
		t.Fatalf("intermediate2 = %d, want 7× one-layer KV (%d)", inter2, 7*kv)
	}
}

func TestFigure4TensorShapes(t *testing.T) {
	c := Llama31_8B()
	const n = 32768
	// Input 32768×4096 bf16.
	if got, want := c.HiddenBytesPerToken()*n, int64(32768*4096*2); got != want {
		t.Errorf("hidden tensor bytes = %d, want %d", got, want)
	}
	// Intermediate 1: 32768×28672 bf16.
	if got, want := c.MLPIntermediate1BytesPerToken()*n, int64(32768*28672*2); got != want {
		t.Errorf("intermediate1 bytes = %d, want %d", got, want)
	}
	// Intermediate 2: 32768×14336 bf16.
	if got, want := c.MLPIntermediate2BytesPerToken()*n, int64(32768*14336*2); got != want {
		t.Errorf("intermediate2 bytes = %d, want %d", got, want)
	}
}

func TestValidateAcceptsPresets(t *testing.T) {
	for name, c := range Presets() {
		if err := c.Validate(); err != nil {
			t.Errorf("preset %s invalid: %v", name, err)
		}
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	base := func() *Config { return Llama31_8B() }
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero layers", func(c *Config) { c.Layers = 0 }},
		{"negative hidden", func(c *Config) { c.Hidden = -1 }},
		{"zero heads", func(c *Config) { c.Heads = 0 }},
		{"kv heads exceed heads", func(c *Config) { c.KVHeads = c.Heads + 1 }},
		{"heads not multiple of kv heads", func(c *Config) { c.KVHeads = 3 }},
		{"head dim mismatch", func(c *Config) { c.HeadDim = 64 }},
		{"zero intermediate", func(c *Config) { c.Intermediate = 0 }},
		{"zero vocab", func(c *Config) { c.Vocab = 0 }},
	}
	for _, tc := range cases {
		c := base()
		tc.mutate(c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid config", tc.name)
		}
	}
}

func TestAttnFLOPsRangeBasics(t *testing.T) {
	c := Llama31_8B()
	if got := c.AttnFLOPsRange(10, 10); got != 0 {
		t.Errorf("fully-cached attention FLOPs = %d, want 0", got)
	}
	if got := c.AttnFLOPsRange(12, 10); got != 0 {
		t.Errorf("cached beyond total FLOPs = %d, want 0", got)
	}
	// Quadratic growth: doubling n should roughly quadruple attention work.
	f1 := c.AttnFLOPsRange(0, 1000)
	f2 := c.AttnFLOPsRange(0, 2000)
	ratio := float64(f2) / float64(f1)
	if ratio < 3.9 || ratio > 4.1 {
		t.Errorf("attention FLOPs ratio at 2x tokens = %.3f, want ~4", ratio)
	}
}

// Property: prefill FLOPs are monotone in total length and antitone in
// cached length, and splitting a prefill into cached+suffix conserves the
// attention work.
func TestPrefillFLOPsProperties(t *testing.T) {
	c := Llama31_8B()
	f := func(a, b uint16) bool {
		cached := int(a % 2048)
		extra := int(b%2048) + 1
		total := cached + extra
		full := c.PrefillFLOPs(0, total)
		part := c.PrefillFLOPs(cached, total)
		if part > full {
			return false
		}
		// Attention decomposition: attn(0,total) == attn(0,cached) + attn(cached,total).
		return c.AttnFLOPsRange(0, total) == c.AttnFLOPsRange(0, cached)+c.AttnFLOPsRange(cached, total)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDTypeBytes(t *testing.T) {
	cases := []struct {
		d    DType
		want int
	}{{BF16, 2}, {FP16, 2}, {FP8, 1}, {FP32, 4}}
	for _, tc := range cases {
		if got := tc.d.Bytes(); got != tc.want {
			t.Errorf("%s.Bytes() = %d, want %d", tc.d, got, tc.want)
		}
	}
}

func TestDecodeFLOPsGrowWithContext(t *testing.T) {
	c := Llama31_8B()
	if c.DecodeFLOPsPerToken(1000) >= c.DecodeFLOPsPerToken(10000) {
		t.Fatal("decode FLOPs should grow with context length")
	}
}
