// Package model holds the architectural description of transformer language
// models and the shape, byte-size and FLOP arithmetic that every other layer
// of the simulator is built on.
//
// Nothing in this package executes a model; it answers questions like "how
// many bytes is the KV cache of one token at one layer", "how large is the
// intermediate tensor of the MLP block", and "how many FLOPs does prefilling
// n tokens cost". Those quantities fully determine the memory-footprint and
// latency behaviour that the PrefillOnly paper studies.
package model

import "fmt"

// DType identifies a tensor element type. Only the byte width matters to the
// simulator.
type DType int

const (
	// BF16 is 16-bit brain floating point (2 bytes/element).
	BF16 DType = iota
	// FP16 is IEEE half precision (2 bytes/element).
	FP16
	// FP8 is 8-bit floating point (1 byte/element), used for quantized
	// weights in the paper's A100/H100 setups.
	FP8
	// FP32 is IEEE single precision (4 bytes/element).
	FP32
)

// Bytes returns the number of bytes one element of the type occupies.
func (d DType) Bytes() int {
	switch d {
	case FP8:
		return 1
	case BF16, FP16:
		return 2
	case FP32:
		return 4
	default:
		return 2
	}
}

// String returns the conventional lower-case name of the dtype.
func (d DType) String() string {
	switch d {
	case BF16:
		return "bfloat16"
	case FP16:
		return "float16"
	case FP8:
		return "fp8"
	case FP32:
		return "float32"
	default:
		return fmt.Sprintf("dtype(%d)", int(d))
	}
}

// Config describes a decoder-only transformer in enough detail to derive
// every tensor shape that appears during prefilling. The fields mirror the
// HuggingFace config.json vocabulary so the presets are auditable against
// the real models the paper serves.
type Config struct {
	// Name is the canonical model identifier, e.g. "meta-llama/Llama-3.1-8B".
	Name string
	// Layers is the number of transformer blocks.
	Layers int
	// Hidden is the model (residual stream) dimension.
	Hidden int
	// Heads is the number of query attention heads.
	Heads int
	// KVHeads is the number of key/value heads (grouped-query attention).
	KVHeads int
	// HeadDim is the per-head dimension; Hidden == Heads*HeadDim for the
	// models used in the paper.
	HeadDim int
	// Intermediate is the MLP expansion dimension (per projection, before
	// the gate/up concatenation).
	Intermediate int
	// Vocab is the vocabulary size (drives the lm-head and logits sizes).
	Vocab int
	// WeightDType is the storage precision of weights (FP8 for the
	// quantized 32B/70B checkpoints in the paper).
	WeightDType DType
	// ActDType is the precision activations and KV cache entries are kept
	// in during inference (BF16 for all paper setups).
	ActDType DType
	// TiedEmbeddings reports whether the input embedding and lm-head share
	// one matrix (true for the small Llama models).
	TiedEmbeddings bool
}

// Validate reports an error when the configuration is internally
// inconsistent (e.g. head counts that do not divide the hidden size).
func (c *Config) Validate() error {
	switch {
	case c.Layers <= 0:
		return fmt.Errorf("model %q: Layers must be positive, got %d", c.Name, c.Layers)
	case c.Hidden <= 0:
		return fmt.Errorf("model %q: Hidden must be positive, got %d", c.Name, c.Hidden)
	case c.Heads <= 0:
		return fmt.Errorf("model %q: Heads must be positive, got %d", c.Name, c.Heads)
	case c.KVHeads <= 0 || c.KVHeads > c.Heads:
		return fmt.Errorf("model %q: KVHeads must be in [1, Heads], got %d", c.Name, c.KVHeads)
	case c.Heads%c.KVHeads != 0:
		return fmt.Errorf("model %q: Heads (%d) must be a multiple of KVHeads (%d)", c.Name, c.Heads, c.KVHeads)
	case c.HeadDim <= 0:
		return fmt.Errorf("model %q: HeadDim must be positive, got %d", c.Name, c.HeadDim)
	case c.Heads*c.HeadDim != c.Hidden:
		return fmt.Errorf("model %q: Heads*HeadDim (%d) must equal Hidden (%d)", c.Name, c.Heads*c.HeadDim, c.Hidden)
	case c.Intermediate <= 0:
		return fmt.Errorf("model %q: Intermediate must be positive, got %d", c.Name, c.Intermediate)
	case c.Vocab <= 0:
		return fmt.Errorf("model %q: Vocab must be positive, got %d", c.Name, c.Vocab)
	}
	return nil
}

// KVDim is the total key (or value) width per token: KVHeads*HeadDim.
func (c *Config) KVDim() int { return c.KVHeads * c.HeadDim }

// QDim is the total query width per token: Heads*HeadDim. It equals Hidden
// for the unsharded models but shrinks under tensor parallelism.
func (c *Config) QDim() int { return c.Heads * c.HeadDim }

// Params returns the total parameter count of the model, decomposed the same
// way the real checkpoints are: embeddings, per-layer attention and MLP
// projections, norms, and the lm-head.
func (c *Config) Params() int64 {
	h := int64(c.Hidden)
	q := int64(c.QDim())
	inter := int64(c.Intermediate)
	kv := int64(c.KVDim())
	// Attention: Wq (h×q), Wk (h×kv), Wv (h×kv), Wo (q×h).
	attn := 2*h*q + 2*h*kv
	// MLP: gate (h×inter), up (h×inter), down (inter×h).
	mlp := 3 * h * inter
	// Two RMSNorm weight vectors per layer.
	norms := 2 * h
	perLayer := attn + mlp + norms
	embed := int64(c.Vocab) * h
	lmHead := embed
	if c.TiedEmbeddings {
		lmHead = 0
	}
	finalNorm := h
	return embed + int64(c.Layers)*perLayer + lmHead + finalNorm
}

// WeightBytes is the GPU memory the model weights occupy at their storage
// precision.
func (c *Config) WeightBytes() int64 {
	return c.Params() * int64(c.WeightDType.Bytes())
}

// KVBytesPerTokenLayer is the size of the key+value cache entries one token
// contributes at one layer.
func (c *Config) KVBytesPerTokenLayer() int64 {
	return 2 * int64(c.KVDim()) * int64(c.ActDType.Bytes())
}

// KVBytesPerToken is the size of the full-depth KV cache of one token
// (all layers), i.e. what a conventional engine must retain per token.
func (c *Config) KVBytesPerToken() int64 {
	return c.KVBytesPerTokenLayer() * int64(c.Layers)
}

// KVBytes is the full KV cache footprint of a request with n tokens.
func (c *Config) KVBytes(n int) int64 {
	return c.KVBytesPerToken() * int64(n)
}

// HiddenBytesPerToken is the residual-stream tensor size per token.
func (c *Config) HiddenBytesPerToken() int64 {
	return int64(c.Hidden) * int64(c.ActDType.Bytes())
}

// MLPIntermediate1BytesPerToken is the fused gate+up projection output per
// token (the "Intermediate 1" tensor of Figure 4: 2×Intermediate elements).
func (c *Config) MLPIntermediate1BytesPerToken() int64 {
	return 2 * int64(c.Intermediate) * int64(c.ActDType.Bytes())
}

// MLPIntermediate2BytesPerToken is the SwiGLU activation output per token
// (the "Intermediate 2" tensor of Figure 4: Intermediate elements).
func (c *Config) MLPIntermediate2BytesPerToken() int64 {
	return int64(c.Intermediate) * int64(c.ActDType.Bytes())
}

// QKVBytesPerToken is the concatenated query/key/value projection output per
// token.
func (c *Config) QKVBytesPerToken() int64 {
	return (int64(c.QDim()) + 2*int64(c.KVDim())) * int64(c.ActDType.Bytes())
}

// AttnOutBytesPerToken is the attention output tensor per token (query
// width, before the output projection).
func (c *Config) AttnOutBytesPerToken() int64 {
	return int64(c.QDim()) * int64(c.ActDType.Bytes())
}

// LogitsBytes is the size of the lm-head output for n positions. Prefill-only
// serving computes logits for a single position.
func (c *Config) LogitsBytes(positions int) int64 {
	return int64(c.Vocab) * int64(positions) * 4 // logits are fp32
}

// LinearFLOPsPerToken is the dense-projection work per token: every weight
// matrix participates in one multiply-accumulate per token (2 FLOPs per
// parameter), excluding the lm-head which prefill-only engines evaluate for
// a single position.
func (c *Config) LinearFLOPsPerToken() int64 {
	h := int64(c.Hidden)
	q := int64(c.QDim())
	inter := int64(c.Intermediate)
	kv := int64(c.KVDim())
	attnProj := 2*h*q + 2*h*kv
	mlp := 3 * h * inter
	return 2 * int64(c.Layers) * (attnProj + mlp)
}

// LMHeadFLOPs is the one-position lm-head matmul cost.
func (c *Config) LMHeadFLOPs() int64 {
	return 2 * int64(c.Hidden) * int64(c.Vocab)
}

// AttnFLOPsRange returns the attention-score work (QK^T and PV, causal) for
// computing positions (c, n] given that positions [0, c] already have KV
// entries available. Each new position i attends to i+1 keys, so the total
// is sum_{i=c+1..n} i ≈ (n²−c²)/2 pairs, each pair costing
// 2·2·HeadDim FLOPs per query head.
func (cfg *Config) AttnFLOPsRange(cached, total int) int64 {
	if total <= cached {
		return 0
	}
	n := int64(total)
	cc := int64(cached)
	pairs := (n*(n+1) - cc*(cc+1)) / 2
	perPair := 4 * int64(cfg.HeadDim) * int64(cfg.Heads)
	return int64(cfg.Layers) * pairs * perPair
}

// PrefillFLOPs is the total forward-pass work for prefilling a request of
// `total` tokens of which `cached` hit the prefix cache (their KV is reused,
// so neither their projections nor their rows of attention are recomputed).
func (c *Config) PrefillFLOPs(cached, total int) int64 {
	if total <= cached {
		return c.LMHeadFLOPs()
	}
	fresh := int64(total - cached)
	return fresh*c.LinearFLOPsPerToken() + c.AttnFLOPsRange(cached, total) + c.LMHeadFLOPs()
}

// DecodeFLOPsPerToken is the per-step work of autoregressive decoding with a
// context of ctx tokens: one token of linear work plus one row of attention
// plus the lm-head.
func (c *Config) DecodeFLOPsPerToken(ctx int) int64 {
	row := 4 * int64(c.HeadDim) * int64(c.Heads) * int64(ctx) * int64(c.Layers)
	return c.LinearFLOPsPerToken() + row + c.LMHeadFLOPs()
}
