package model

// Preset model configurations matching Table 3 of the paper. Architectural
// numbers are taken from the public HuggingFace config.json files of each
// checkpoint.

// Llama31_8B returns meta-llama/Llama-3.1-8B (the low-end-GPU model,
// served in bf16 on 2×L4).
func Llama31_8B() *Config {
	return &Config{
		Name:         "meta-llama/Llama-3.1-8B",
		Layers:       32,
		Hidden:       4096,
		Heads:        32,
		KVHeads:      8,
		HeadDim:      128,
		Intermediate: 14336,
		Vocab:        128256,
		WeightDType:  BF16,
		ActDType:     BF16,
	}
}

// Qwen32BFP8 returns RedHatAI/DeepSeek-R1-Distill-Qwen-32B-FP8-dynamic
// (the middle-end-GPU model, served on 2×A100 40GB). Weights are FP8,
// activations bf16.
func Qwen32BFP8() *Config {
	return &Config{
		Name:         "RedHatAI/DeepSeek-R1-Distill-Qwen-32B-FP8-dynamic",
		Layers:       64,
		Hidden:       5120,
		Heads:        40,
		KVHeads:      8,
		HeadDim:      128,
		Intermediate: 27648,
		Vocab:        152064,
		WeightDType:  FP8,
		ActDType:     BF16,
	}
}

// Qwen25_32BFP8 returns Qwen-2.5-32B in FP8, the model used in the Figure 10
// hybrid-prefilling ablation. Architecturally identical to the distill
// checkpoint (both are Qwen2.5-32B bodies).
func Qwen25_32BFP8() *Config {
	c := Qwen32BFP8()
	c.Name = "Qwen/Qwen2.5-32B-FP8"
	return c
}

// Llama33_70BFP8 returns Infermatic/Llama-3.3-70B-Instruct-FP8-Dynamic
// (the high-end-GPU model, served on 2×H100 80GB).
func Llama33_70BFP8() *Config {
	return &Config{
		Name:         "Infermatic/Llama-3.3-70B-Instruct-FP8-Dynamic",
		Layers:       80,
		Hidden:       8192,
		Heads:        64,
		KVHeads:      8,
		HeadDim:      128,
		Intermediate: 28672,
		Vocab:        128256,
		WeightDType:  FP8,
		ActDType:     BF16,
	}
}

// Presets returns all models of Table 3, keyed by short name.
func Presets() map[string]*Config {
	return map[string]*Config{
		"llama-3.1-8b":  Llama31_8B(),
		"qwen-32b-fp8":  Qwen32BFP8(),
		"llama-70b-fp8": Llama33_70BFP8(),
	}
}
