package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/router"
	"repro/internal/timeseries"
)

// TestTimeseriesEndpoint covers both collector states: 404 with a hint
// when disabled, a parseable export with live counts when enabled.
func TestTimeseriesEndpoint(t *testing.T) {
	off := testBackend(t)
	srvOff := httptest.NewServer(NewHandler(off, "m"))
	defer srvOff.Close()
	resp, err := http.Get(srvOff.URL + "/v1/timeseries")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("timeseries without collector: status %d, want 404", resp.StatusCode)
	}

	// The backend clock free-runs at 1e7 sim-seconds per wall second, so
	// the window width must be sized to the speedup (as prefillserve's
	// default does) for scrapes to land inside live windows.
	on := testRoutedBackend(t, 2, router.Config{Policy: router.AffinityLoad{}})
	on.EnableTimeseries(1e7)
	prompt := "Here is the user profile: reads systems papers. Recommend this post? Answer:"
	for i := 0; i < 3; i++ {
		if _, err := on.Submit(prompt, nil, 7); err != nil {
			t.Fatal(err)
		}
	}
	srvOn := httptest.NewServer(NewHandler(on, "m"))
	defer srvOn.Close()
	resp, err = http.Get(srvOn.URL + "/v1/timeseries")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("timeseries with collector: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("Content-Type = %q", ct)
	}
	var exp timeseries.Export
	if err := json.NewDecoder(resp.Body).Decode(&exp); err != nil {
		t.Fatalf("timeseries is not valid JSON: %v", err)
	}
	if exp.IntervalSeconds != 1e7 {
		t.Fatalf("interval = %g, want 1e7", exp.IntervalSeconds)
	}
	if len(exp.Windows) == 0 {
		t.Fatal("no windows after served requests (the open window must snapshot as a partial row)")
	}
	var completions uint64
	for _, w := range exp.Windows {
		completions += w.Completions
	}
	if completions != 3 {
		t.Fatalf("windows account %d completions, served 3", completions)
	}
	if exp.Windows[len(exp.Windows)-1].PoolSize != 2 {
		t.Fatalf("last window pool size %d, want 2", exp.Windows[len(exp.Windows)-1].PoolSize)
	}

	// The metrics exposition must carry the new observability families:
	// the closed-window counter, the events/sec gauge, and GPU-seconds
	// (monotonic even without the autoscaler).
	mresp, err := http.Get(srvOn.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	body, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)
	for _, want := range []string{
		"# TYPE prefill_timeseries_windows_total counter",
		"# TYPE prefill_sim_events_per_second gauge",
		"prefill_sim_events_per_second ",
		"# TYPE prefill_pool_gpu_seconds_total counter",
		"prefill_pool_gpu_seconds_total ",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("full exposition:\n%s", out)
	}
}

// TestEnableTimeseriesIdempotent pins EnableTimeseries re-entry: the
// first collector survives, so enabling twice cannot reset counters.
func TestEnableTimeseriesIdempotent(t *testing.T) {
	b := testBackend(t)
	b.EnableTimeseries(1e7)
	if _, err := b.Submit("Approve this credit application now? Answer:", nil, 3); err != nil {
		t.Fatal(err)
	}
	first, ok := b.Timeseries()
	if !ok {
		t.Fatal("Timeseries() not ok after EnableTimeseries")
	}
	b.EnableTimeseries(5e7)
	second, ok := b.Timeseries()
	if !ok || second.IntervalSeconds != first.IntervalSeconds {
		t.Fatalf("second EnableTimeseries replaced the collector: interval %g -> %g",
			first.IntervalSeconds, second.IntervalSeconds)
	}
	var total uint64
	for _, w := range second.Windows {
		total += w.Completions
	}
	if total != 1 {
		t.Fatalf("completions lost across re-enable: %d", total)
	}
}
