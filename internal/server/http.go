package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"repro/internal/router"
	"repro/internal/sched"
	"repro/internal/timeseries"
)

// CompletionRequest is the accepted subset of the OpenAI completions API,
// extended with the paper's allowed-token constraint.
type CompletionRequest struct {
	Model  string `json:"model"`
	Prompt string `json:"prompt"`
	// MaxTokens must be 1 (or omitted): this is a prefill-only engine.
	MaxTokens int `json:"max_tokens,omitempty"`
	// AllowedTokens constrains the output distribution (default Yes/No).
	AllowedTokens []string `json:"allowed_tokens,omitempty"`
	// User routes requests of one user to shared prefix caches.
	User string `json:"user,omitempty"`
	// SLOClass selects the request's SLO class ("interactive" default,
	// "batch"): the class's admission budget, scheduling weight and
	// autoscale treatment apply in routed mode. The X-SLO-Class header
	// sets it too; the body field wins when both are present.
	SLOClass string `json:"slo_class,omitempty"`
}

// CompletionChoice is one completion result.
type CompletionChoice struct {
	Text         string             `json:"text"`
	Index        int                `json:"index"`
	FinishReason string             `json:"finish_reason"`
	TokenScores  map[string]float64 `json:"token_scores"`
}

// CompletionResponse is the API response body.
type CompletionResponse struct {
	ID      string             `json:"id"`
	Object  string             `json:"object"`
	Model   string             `json:"model"`
	Choices []CompletionChoice `json:"choices"`
	Usage   CompletionUsage    `json:"usage"`
	// SimLatencySeconds reports the modelled GPU latency of the request.
	SimLatencySeconds float64 `json:"sim_latency_seconds"`
	// CachedTokens reports the prefix-cache hit length.
	CachedTokens int `json:"cached_tokens"`
}

// CompletionUsage mirrors the OpenAI usage block.
type CompletionUsage struct {
	PromptTokens     int `json:"prompt_tokens"`
	CompletionTokens int `json:"completion_tokens"`
	TotalTokens      int `json:"total_tokens"`
}

type apiError struct {
	Error string `json:"error"`
}

// rejectBody is the payload for typed request sheds — 429 for
// admission-control rejects, 503 for fault-driven drops — the
// human-readable error plus the structured decision, so clients can back
// off per class or per budget without parsing the message.
type rejectBody struct {
	Error string `json:"error"`
	// Reason is the shed cause: "backlog" (aggregate MaxBacklogSeconds)
	// or "class-budget" (the class's own entry) on a 429;
	// "orphan-retries" (a fault orphaned the request and its re-admission
	// retry budget ran out) or "no-capacity" (no routable instances) on
	// a 503.
	Reason string `json:"reason"`
	// Class is the shed request's SLO class label.
	Class string `json:"class"`
	// Policy is the routing policy that chose the instance.
	Policy string `json:"policy"`
	// Instance is the chosen instance's stable ID.
	Instance int `json:"instance"`
	// BacklogSeconds is the instance's estimated backlog at rejection.
	BacklogSeconds float64 `json:"backlog_seconds"`
	// BoundSeconds is the admission bound that applied.
	BoundSeconds float64 `json:"bound_seconds"`
}

// Handler serves the OpenAI-compatible API over a Backend.
type Handler struct {
	Backend   *Backend
	ModelName string
	mux       *http.ServeMux
}

// NewHandler builds the HTTP handler.
func NewHandler(b *Backend, modelName string) *Handler {
	h := &Handler{Backend: b, ModelName: modelName, mux: http.NewServeMux()}
	h.mux.HandleFunc("/v1/completions", h.completions)
	h.mux.HandleFunc("/v1/models", readOnly(h.models))
	h.mux.HandleFunc("/v1/stats", readOnly(h.stats))
	h.mux.HandleFunc("/v1/metrics", readOnly(h.metrics))
	h.mux.HandleFunc("/v1/trace", readOnly(h.trace))
	h.mux.HandleFunc("/v1/timeseries", readOnly(h.timeseries))
	h.mux.HandleFunc("/healthz", readOnly(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	}))
	return h
}

// readOnly restricts a handler to GET and HEAD, answering anything else
// with a consistent 405 and an Allow header.
func readOnly(next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			writeJSON(w, http.StatusMethodNotAllowed, apiError{"GET or HEAD required"})
			return
		}
		next(w, r)
	}
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.mux.ServeHTTP(w, r)
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func (h *Handler) models(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"object": "list",
		"data": []map[string]string{
			{"id": h.ModelName, "object": "model", "owned_by": "prefillonly"},
		},
	})
}

// stats reports the cluster's live state: per-instance router loads,
// the admission tally, and (when autoscaled) the pool controller.
func (h *Handler) stats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, h.Backend.Stats())
}

// metrics serves the cluster's counters, gauges and histograms in
// Prometheus text exposition format.
func (h *Handler) metrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = h.Backend.Metrics().WriteTo(w)
}

// trace serves the flight recorder's live window as Chrome trace-event
// JSON (loadable in Perfetto), or 404 when tracing is disabled.
func (h *Handler) trace(w http.ResponseWriter, r *http.Request) {
	rec := h.Backend.Trace()
	if rec == nil {
		writeJSON(w, http.StatusNotFound, apiError{"tracing disabled (start the server with -trace)"})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_ = rec.WriteTrace(w)
}

// timeseries serves the windowed sim-time series as JSON — every closed
// window plus a partial row for the open one — or 404 when the collector
// is disabled. Snapshots are side-effect-free, so scraping mid-window is
// safe.
func (h *Handler) timeseries(w http.ResponseWriter, r *http.Request) {
	exp, ok := h.Backend.Timeseries()
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{"time-series disabled (start the server with -timeseries)"})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_ = timeseries.WriteJSON(w, exp)
}

func (h *Handler) completions(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, apiError{"POST required"})
		return
	}
	var req CompletionRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{fmt.Sprintf("bad request body: %v", err)})
		return
	}
	if req.Prompt == "" {
		writeJSON(w, http.StatusBadRequest, apiError{"prompt is required"})
		return
	}
	if req.MaxTokens > 1 {
		writeJSON(w, http.StatusBadRequest,
			apiError{"prefill-only engine: max_tokens must be 1 (see PrefillOnly §2.3)"})
		return
	}
	userID := 0
	if req.User != "" {
		userID = userHash(req.User)
	}
	classLabel := req.SLOClass
	if classLabel == "" {
		classLabel = r.Header.Get("X-SLO-Class")
	}
	class, err := sched.ParseClass(classLabel)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{err.Error()})
		return
	}
	res, err := h.Backend.SubmitClass(req.Prompt, req.AllowedTokens, userID, class)
	if err != nil {
		// Admission-control sheds are the client's signal to back off;
		// the structured fields say which budget tripped and for whom.
		// Fault-driven sheds (the instance died and re-admission gave up,
		// or the pool has no routable instance) are 503 — the request was
		// admitted or admissible, the service just can't carry it right
		// now — with a Retry-After hinting at the recovery cadence.
		var rej *router.RejectError
		if errors.As(err, &rej) {
			if rej.Reason == router.ReasonOrphanRetries || rej.Reason == router.ReasonNoCapacity {
				w.Header().Set("Retry-After", "1")
				writeJSON(w, http.StatusServiceUnavailable, rejectBody{
					Error:          err.Error(),
					Reason:         rej.Reason,
					Class:          rej.Class.String(),
					Policy:         rej.Policy,
					Instance:       rej.Instance,
					BacklogSeconds: rej.BacklogSeconds,
					BoundSeconds:   rej.BoundSeconds,
				})
				return
			}
			writeJSON(w, http.StatusTooManyRequests, rejectBody{
				Error:          err.Error(),
				Reason:         rej.Reason,
				Class:          rej.Class.String(),
				Policy:         rej.Policy,
				Instance:       rej.Instance,
				BacklogSeconds: rej.BacklogSeconds,
				BoundSeconds:   rej.BoundSeconds,
			})
			return
		}
		writeJSON(w, http.StatusServiceUnavailable, apiError{err.Error()})
		return
	}
	prompTokens := h.Backend.Tokenizer.Count(req.Prompt)
	writeJSON(w, http.StatusOK, CompletionResponse{
		ID:     "cmpl-" + strconv.FormatInt(int64(prompTokens), 36) + strconv.FormatInt(int64(res.CachedTokens), 36),
		Object: "text_completion",
		Model:  h.ModelName,
		Choices: []CompletionChoice{{
			Text:         res.Token,
			FinishReason: "length",
			TokenScores:  res.Scores,
		}},
		Usage: CompletionUsage{
			PromptTokens:     prompTokens,
			CompletionTokens: 1,
			TotalTokens:      prompTokens + 1,
		},
		SimLatencySeconds: res.SimLatency,
		CachedTokens:      res.CachedTokens,
	})
}

// userHash folds a user identifier into a routing integer.
func userHash(s string) int {
	h := 0
	for i := 0; i < len(s); i++ {
		h = h*131 + int(s[i])
	}
	if h < 0 {
		h = -h
	}
	return h
}
