package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/autoscale"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/hw"
	"repro/internal/model"
	"repro/internal/router"
)

func TestAutoscaledBackendStats(t *testing.T) {
	b, err := NewAutoscaledBackend(engine.Config{
		Model:         model.Llama31_8B(),
		GPU:           hw.L4(),
		ProfileMaxLen: 4000,
	}, core.Options{}, 1e7, router.Config{}, autoscale.Config{
		MinInstances: 1, MaxInstances: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(b.Close)
	if b.Autoscaler() == nil {
		t.Fatal("autoscaled backend has no controller")
	}
	if _, err := b.Submit("Recommend this post to the user? Answer:", nil, 1); err != nil {
		t.Fatal(err)
	}

	h := NewHandler(b, "test-model")
	srv := httptest.NewServer(h)
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/stats status %d", resp.StatusCode)
	}
	var snap StatsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if len(snap.Instances) == 0 {
		t.Fatal("stats reported no instances")
	}
	if snap.Routable < 1 {
		t.Fatalf("routable %d, want >= 1", snap.Routable)
	}
	if snap.Autoscale == nil {
		t.Fatal("stats missing autoscale block")
	}
	if snap.Autoscale.PoolSize < 1 || snap.Autoscale.ColdStartSeconds <= 0 {
		t.Fatalf("autoscale block %+v", snap.Autoscale)
	}
	tally, ok := snap.Admission["affinity"]
	if !ok || tally.Accepted != 1 {
		t.Fatalf("admission block %+v", snap.Admission)
	}

	// POST is rejected.
	resp2, err := http.Post(srv.URL+"/v1/stats", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /v1/stats status %d", resp2.StatusCode)
	}
}

func TestRoutedBackendStatsWithoutAutoscale(t *testing.T) {
	b := testRoutedBackend(t, 2, router.Config{Policy: router.LeastLoaded{}})
	snap := b.Stats()
	if len(snap.Instances) != 2 || snap.Routable != 2 {
		t.Fatalf("snapshot shape %+v", snap)
	}
	if snap.Autoscale != nil {
		t.Fatal("unexpected autoscale block on a fixed pool")
	}
}

// The SLO class travels from the HTTP surface (X-SLO-Class header or
// slo_class body field) into the router's per-class tallies and back out
// through /v1/stats.
func TestSLOClassFromRequestToStats(t *testing.T) {
	b := testRoutedBackend(t, 2, router.Config{Policy: router.LeastLoaded{}})
	h := NewHandler(b, "test-model")
	srv := httptest.NewServer(h)
	defer srv.Close()

	post := func(body string, hdr map[string]string) *http.Response {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, srv.URL+"/v1/completions", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		for k, v := range hdr {
			req.Header.Set(k, v)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	// One batch via body field, one batch via header, one unlabeled.
	for _, tc := range []struct {
		body string
		hdr  map[string]string
	}{
		{`{"prompt": "Score this document. Answer:", "slo_class": "batch"}`, nil},
		{`{"prompt": "Score that document. Answer:"}`, map[string]string{"X-SLO-Class": "batch"}},
		{`{"prompt": "Recommend this post? Answer:", "user": "u1"}`, nil},
	} {
		resp := post(tc.body, tc.hdr)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("completion status %d for %s", resp.StatusCode, tc.body)
		}
		resp.Body.Close()
	}
	// Unknown class is a client error.
	resp := post(`{"prompt": "x", "slo_class": "bulk"}`, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown class status %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()

	snap := b.Stats()
	byClass := snap.AdmissionByClass["leastloaded"]
	if byClass["batch"].Accepted != 2 {
		t.Fatalf("batch tally %+v", byClass)
	}
	if byClass["interactive"].Accepted != 1 {
		t.Fatalf("interactive tally %+v", byClass)
	}
	if agg := snap.Admission["leastloaded"]; agg.Accepted != 3 {
		t.Fatalf("aggregate tally %+v", agg)
	}
}

func TestSingleEngineStats(t *testing.T) {
	b, err := NewBackend(engine.Config{
		Model:         model.Llama31_8B(),
		GPU:           hw.L4(),
		ProfileMaxLen: 4000,
	}, core.Options{}, 1e7)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(b.Close)
	snap := b.Stats()
	if len(snap.Instances) != 1 || snap.Routable != 1 || snap.Autoscale != nil {
		t.Fatalf("single-engine snapshot %+v", snap)
	}
}
