package server

import (
	"math"
	"sort"

	"repro/internal/tokenizer"
)

// Score produces the constrained output distribution for a prompt: a
// softmax over pseudo-logits derived deterministically from the prompt
// tokens and each allowed token. The engine's performance never depends on
// logit values (see DESIGN.md §1), but applications need stable,
// prompt-sensitive scores — the same prompt always yields the same
// P(Yes)/P(No), and the probabilities sum to 1 (§2.3).
func Score(prompt []uint64, allowed []string) map[string]float64 {
	if len(allowed) == 0 {
		return nil
	}
	// Fold the prompt into a context hash.
	const prime = 0x100000001b3
	h := uint64(0xcbf29ce484222325)
	for _, t := range prompt {
		h ^= t
		h *= prime
	}
	// Deterministic order for reproducible float accumulation.
	opts := append([]string(nil), allowed...)
	sort.Strings(opts)
	logits := make([]float64, len(opts))
	maxLogit := math.Inf(-1)
	for i, opt := range opts {
		x := h ^ tokenizer.TokenID(opt)
		x ^= x >> 33
		x *= 0xff51afd7ed558ccd
		x ^= x >> 33
		// Map to a logit in [-3, 3].
		logits[i] = float64(x%6000)/1000 - 3
		if logits[i] > maxLogit {
			maxLogit = logits[i]
		}
	}
	var sum float64
	exps := make([]float64, len(opts))
	for i, l := range logits {
		exps[i] = math.Exp(l - maxLogit)
		sum += exps[i]
	}
	out := make(map[string]float64, len(opts))
	for i, opt := range opts {
		out[opt] = exps[i] / sum
	}
	return out
}
