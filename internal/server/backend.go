// Package server is PrefillOnly's online serving frontend: an
// OpenAI-compatible HTTP API (§3.1) over a real-time bridge to the
// simulated engine. Requests are tokenized, scheduled by the engine's
// calibrated SRJF policy against the live prefix cache, and answered with
// a constrained single-token completion and its probability scores
// (§2.3's allowed-token mechanism).
package server

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/autoscale"
	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/router"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/timeseries"
	"repro/internal/tokenizer"
	"repro/internal/trace"
)

// Result is the outcome of one served request.
type Result struct {
	// Token is the sampled output token (the argmax of Scores).
	Token string
	// Scores maps each allowed token to its probability; they sum to 1.
	Scores map[string]float64
	// SimLatency is the request's latency in simulated seconds
	// (queueing + execution on the modelled GPU).
	SimLatency float64
	// CachedTokens is the prefix-cache hit length.
	CachedTokens int
	// Err is set when the request died after admission: its instance was
	// killed by a fault and re-admission shed it (a *router.RejectError
	// with reason "orphan-retries" or an admission reason). Submit
	// returns it as the call's error.
	Err error
}

// Backend bridges wall-clock callers to the event-driven engine. Simulated
// time advances at Speedup × wall time, so a request whose modelled
// latency is 2 s returns after 2/Speedup wall seconds.
type Backend struct {
	Tokenizer *tokenizer.Tokenizer
	// Speedup is the simulated-seconds-per-wall-second factor
	// (default 1000: modelled GPU latencies shrink to milliseconds).
	Speedup float64

	mu      sync.Mutex
	sim     *sim.Sim
	engines []*core.Engine
	rt      *router.Router        // nil in single-engine mode
	ctl     *autoscale.Controller // nil without autoscaling
	rec     *trace.Recorder       // nil unless tracing enabled
	ts      *timeseries.Collector // nil unless EnableTimeseries was called
	inj     *chaos.Injector       // nil unless EnableChaos armed faults
	started time.Time
	nextID  int64
	waiters map[int64]chan Result
	closed  bool
	wake    chan struct{}
	done    chan struct{}

	// latency accumulates per-class request latency histograms for the
	// /v1/metrics surface; observations happen in onComplete.
	latency [sched.NumClasses]*metrics.Histogram
	// loopTicks counts clock-loop iterations so gauge sampling for the
	// flight recorder runs every gaugeSampleTicks wall milliseconds
	// instead of every tick.
	loopTicks int
}

// gaugeSampleTicks is how many ~1 ms clock-loop iterations pass between
// flight-recorder gauge samples (the served path samples on the wall
// clock; batch runs sample on sim ticks via trace.Sampler instead).
const gaugeSampleTicks = 100

// newBackendBase builds the engine-independent backend shell.
func newBackendBase(speedup float64) *Backend {
	if speedup <= 0 {
		speedup = 1000
	}
	b := &Backend{
		Tokenizer: tokenizer.New(),
		Speedup:   speedup,
		sim:       &sim.Sim{},
		started:   time.Now(),
		waiters:   make(map[int64]chan Result),
		wake:      make(chan struct{}, 1),
		done:      make(chan struct{}),
	}
	for i := range b.latency {
		b.latency[i] = metrics.NewHistogram(metrics.DefLatencyBuckets)
	}
	return b
}

// NewBackend builds a backend around a PrefillOnly engine created with the
// given engine config and options. cfg.Sim and cfg.OnComplete must be
// unset; the backend owns them.
func NewBackend(cfg engine.Config, opts core.Options, speedup float64) (*Backend, error) {
	if cfg.Sim != nil || cfg.OnComplete != nil {
		return nil, fmt.Errorf("server: Sim and OnComplete are owned by the backend")
	}
	b := newBackendBase(speedup)
	cfg.Sim = b.sim
	cfg.OnComplete = b.onComplete
	b.rec = cfg.Tracer
	eng, err := core.New(cfg, opts)
	if err != nil {
		return nil, err
	}
	b.engines = []*core.Engine{eng}
	go b.loop()
	return b, nil
}

// NewRoutedBackend builds a backend over a routed cluster of `instances`
// identical PrefillOnly engines: requests route by live load and
// prefix-cache affinity through internal/router instead of binding to a
// single engine, and rcfg's admission bound sheds a request with a
// *router.RejectError when the instance the policy picked for it is
// backlogged past the bound (load-aware policies only pick a backlogged
// instance when every alternative is worse). cfg.Sim and cfg.OnComplete
// must be unset; the backend owns them.
func NewRoutedBackend(cfg engine.Config, opts core.Options, speedup float64, instances int, rcfg router.Config) (*Backend, error) {
	return newRouted(cfg, opts, speedup, instances, rcfg, nil)
}

// NewAutoscaledBackend is NewRoutedBackend with an elastic instance pool:
// the cluster starts at acfg.MinInstances engines and an
// autoscale.Controller grows and shrinks it between the configured floor
// and ceiling from the router's live load. acfg.Model, GPU and KeepAlive
// are owned by the backend (derived from cfg; the controller must tick as
// long as the server is up). An unset TickSeconds defaults to one control
// decision per wall millisecond: the tick is a simulated-seconds
// interval, so at high speedups a sim-time default would flood the event
// loop with control ticks between completions.
func NewAutoscaledBackend(cfg engine.Config, opts core.Options, speedup float64, rcfg router.Config, acfg autoscale.Config) (*Backend, error) {
	if acfg.MinInstances <= 0 {
		acfg.MinInstances = 1
	}
	if acfg.TickSeconds <= 0 {
		if speedup <= 0 {
			speedup = 1000
		}
		acfg.TickSeconds = max(1, speedup/1000)
	}
	return newRouted(cfg, opts, speedup, acfg.MinInstances, rcfg, &acfg)
}

func newRouted(cfg engine.Config, opts core.Options, speedup float64, instances int, rcfg router.Config, acfg *autoscale.Config) (*Backend, error) {
	if cfg.Sim != nil || cfg.OnComplete != nil {
		return nil, fmt.Errorf("server: Sim and OnComplete are owned by the backend")
	}
	if instances <= 0 {
		return nil, fmt.Errorf("server: need at least one instance, got %d", instances)
	}
	b := newBackendBase(speedup)
	cfg.Sim = b.sim
	cfg.OnComplete = b.onComplete
	// One recorder serves every tier: engine lifecycle spans, router
	// decisions and autoscale pool events share the timeline.
	b.rec = cfg.Tracer
	if rcfg.Tracer == nil {
		rcfg.Tracer = cfg.Tracer
	}
	factory := func() (engine.Engine, error) {
		eng, err := core.New(cfg, opts)
		if err != nil {
			return nil, err
		}
		b.engines = append(b.engines, eng)
		return eng, nil
	}
	engines := make([]engine.Engine, instances)
	for i := range engines {
		eng, err := factory()
		if err != nil {
			return nil, err
		}
		engines[i] = eng
	}
	rt, err := router.New(rcfg, engines...)
	if err != nil {
		return nil, err
	}
	b.rt = rt
	if acfg != nil {
		acfg.Model = cfg.Model
		acfg.GPU = cfg.GPU
		acfg.KeepAlive = true
		if acfg.Tracer == nil {
			acfg.Tracer = cfg.Tracer
		}
		ctl, err := autoscale.New(*acfg, b.sim, rt, factory)
		if err != nil {
			return nil, err
		}
		b.ctl = ctl
		ctl.Start()
	}
	go b.loop()
	return b, nil
}

// Engine exposes the first PrefillOnly engine (read-only use; the only
// engine in single-engine mode).
func (b *Backend) Engine() *core.Engine {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.engines[0]
}

// Engines exposes every instance ever created (read-only use; an
// autoscaled backend's released instances stay listed, so cumulative
// cache statistics survive scale-down).
func (b *Backend) Engines() []*core.Engine {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]*core.Engine(nil), b.engines...)
}

// Router exposes the routing frontend (nil in single-engine mode).
func (b *Backend) Router() *router.Router { return b.rt }

// Autoscaler exposes the pool controller (nil unless autoscaled).
func (b *Backend) Autoscaler() *autoscale.Controller { return b.ctl }

// InstanceStats is one instance's identity and live load in a
// StatsSnapshot.
type InstanceStats struct {
	ID             int     `json:"id"`
	Draining       bool    `json:"draining"`
	GPUs           int     `json:"gpus"`
	QueuedRequests int     `json:"queued_requests"`
	QueuedTokens   int64   `json:"queued_tokens"`
	BacklogSeconds float64 `json:"backlog_seconds"`
	// ClassBacklogSeconds splits BacklogSeconds by SLO class label.
	ClassBacklogSeconds map[string]float64 `json:"class_backlog_seconds,omitempty"`
	RoutedRequests      int64              `json:"routed_requests"`
	RoutedTokens        int64              `json:"routed_tokens"`
}

// AutoscaleStats reports the pool controller's state in a StatsSnapshot.
type AutoscaleStats struct {
	PoolSize         int     `json:"pool_size"`
	ScaleUps         int     `json:"scale_ups"`
	ScaleDowns       int     `json:"scale_downs"`
	Revives          int     `json:"revives"`
	PeakInstances    int     `json:"peak_instances"`
	TroughInstances  int     `json:"trough_instances"`
	ColdStartSeconds float64 `json:"cold_start_seconds"`
	GPUSeconds       float64 `json:"gpu_seconds"`
}

// StatsSnapshot is the /v1/stats payload: the router's live per-instance
// loads, the admission tally, and the autoscaler's pool state.
type StatsSnapshot struct {
	SimSeconds float64         `json:"sim_seconds"`
	Instances  []InstanceStats `json:"instances"`
	Routable   int             `json:"routable"`
	// Admission maps policy name to its accept/reject counts (empty in
	// single-engine mode, which has no admission control).
	Admission map[string]AdmissionStats `json:"admission"`
	// AdmissionByClass stratifies Admission by SLO class label:
	// policy → class → counts.
	AdmissionByClass map[string]map[string]AdmissionStats `json:"admission_by_class,omitempty"`
	// RejectReasons stratifies rejects by which budget they tripped:
	// policy → class → reason ("backlog" | "class-budget") → count.
	RejectReasons map[string]map[string]map[string]int64 `json:"admission_reject_reasons,omitempty"`
	Autoscale     *AutoscaleStats                        `json:"autoscale,omitempty"`
	// Faults reports the chaos injector's activity (omitted unless
	// EnableChaos armed one).
	Faults *FaultStats `json:"faults,omitempty"`
}

// FaultStats reports the chaos injector's cumulative activity in a
// StatsSnapshot.
type FaultStats struct {
	// ByKind counts fault events per kind label ("crash", "straggler",
	// "preempt-notice", "preempt-kill").
	ByKind map[string]uint64 `json:"by_kind"`
	// Orphaned requests split into Rerouted (re-admitted) + Shed.
	Orphaned uint64 `json:"orphaned"`
	Rerouted uint64 `json:"rerouted"`
	Shed     uint64 `json:"shed"`
	// Recoveries counts kill faults after which the routable pool
	// returned to its pre-fault size; Unrecovered the ones whose
	// tracking timed out.
	Recoveries          uint64  `json:"recoveries"`
	Unrecovered         uint64  `json:"unrecovered"`
	MeanRecoverySeconds float64 `json:"mean_recovery_seconds"`
	MaxRecoverySeconds  float64 `json:"max_recovery_seconds"`
}

// AdmissionStats is one policy's accept/reject tally in a StatsSnapshot.
type AdmissionStats struct {
	Accepted int64 `json:"accepted"`
	Rejected int64 `json:"rejected"`
}

// Stats gathers a consistent snapshot of the serving cluster's state.
func (b *Backend) Stats() StatsSnapshot {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.sim.Now()
	snap := StatsSnapshot{
		SimSeconds: now,
		Admission:  map[string]AdmissionStats{},
	}
	if b.rt == nil {
		// Single-engine mode: synthesize one instance row. In-flight
		// requests are the backend's unanswered waiters (queued or
		// executing); token and backlog accounting only exists in routed
		// mode, where the router prices submissions.
		snap.Routable = 1
		snap.Instances = []InstanceStats{{
			GPUs:           b.engines[0].GPUs(),
			QueuedRequests: len(b.waiters),
		}}
		return snap
	}
	for _, info := range b.rt.InstanceInfos() {
		classBacklog := make(map[string]float64, sched.NumClasses)
		for _, class := range sched.Classes() {
			if s := info.Load.ClassBacklog(class); s > 0 {
				classBacklog[class.String()] = s
			}
		}
		snap.Instances = append(snap.Instances, InstanceStats{
			ID:                  info.ID,
			Draining:            info.Draining,
			GPUs:                info.GPUs,
			QueuedRequests:      info.Load.QueuedRequests,
			QueuedTokens:        info.Load.QueuedTokens,
			BacklogSeconds:      info.Load.BacklogSeconds,
			ClassBacklogSeconds: classBacklog,
			RoutedRequests:      info.Load.RoutedRequests,
			RoutedTokens:        info.Load.RoutedTokens,
		})
	}
	snap.Routable = b.rt.Routable()
	// One ClassSnapshot serves both views: summing it here keeps the
	// aggregate consistent with the per-class breakdown (two separate
	// snapshot calls could interleave with a concurrent submit).
	for pol, byClass := range b.rt.Admission().ClassSnapshot() {
		m := make(map[string]AdmissionStats, len(byClass))
		var agg AdmissionStats
		for class, c := range byClass {
			m[class] = AdmissionStats{Accepted: c.Accepted, Rejected: c.Rejected}
			agg.Accepted += c.Accepted
			agg.Rejected += c.Rejected
		}
		snap.Admission[pol] = agg
		if snap.AdmissionByClass == nil {
			snap.AdmissionByClass = make(map[string]map[string]AdmissionStats)
		}
		snap.AdmissionByClass[pol] = m
	}
	if reasons := b.rt.Admission().ReasonSnapshot(); len(reasons) > 0 {
		snap.RejectReasons = reasons
	}
	if b.ctl != nil {
		st := b.ctl.Stats()
		snap.Autoscale = &AutoscaleStats{
			PoolSize:         b.ctl.Size(),
			ScaleUps:         st.ScaleUps,
			ScaleDowns:       st.ScaleDowns,
			Revives:          st.Revives,
			PeakInstances:    st.PeakInstances,
			TroughInstances:  st.MinInstances,
			ColdStartSeconds: st.ColdStartSeconds,
			GPUSeconds:       b.ctl.GPUSeconds(now),
		}
	}
	if b.inj.Enabled() {
		st := b.inj.Stats()
		byKind := make(map[string]uint64, 4)
		for _, label := range chaos.Labels() {
			byKind[label] = st.ByLabel(label)
		}
		snap.Faults = &FaultStats{
			ByKind:              byKind,
			Orphaned:            st.Orphaned,
			Rerouted:            st.Rerouted,
			Shed:                st.Shed,
			Recoveries:          st.Recoveries,
			Unrecovered:         st.Unrecovered,
			MeanRecoverySeconds: st.MeanRecoverySeconds(),
			MaxRecoverySeconds:  st.MaxRecoverySeconds,
		}
	}
	return snap
}

// simNow maps wall time to simulated seconds.
func (b *Backend) simNow() float64 {
	return time.Since(b.started).Seconds() * b.Speedup
}

// onComplete runs inside sim event handlers (loop holds the lock).
func (b *Backend) onComplete(rec engine.Record) {
	if b.rt != nil {
		b.rt.Completed(rec)
	}
	if c := int(rec.Req.Class); c < len(b.latency) {
		b.latency[c].Observe(rec.Latency())
	}
	b.ts.Complete(rec.Finish, rec.Req.Class, rec.Latency())
	ch, ok := b.waiters[rec.Req.ID]
	if !ok {
		return
	}
	delete(b.waiters, rec.Req.ID)
	scores := Score(rec.Req.Tokens, rec.Req.AllowedTokens)
	best, bestP := "", -1.0
	for tok, p := range scores {
		if p > bestP {
			best, bestP = tok, p
		}
	}
	ch <- Result{
		Token:        best,
		Scores:       scores,
		SimLatency:   rec.Latency(),
		CachedTokens: rec.CachedTokens,
	}
}

// loop advances simulated time in lockstep with the wall clock.
func (b *Backend) loop() {
	ticker := time.NewTicker(time.Millisecond)
	defer ticker.Stop()
	for {
		select {
		case <-b.done:
			return
		case <-ticker.C:
		case <-b.wake:
		}
		b.mu.Lock()
		b.sim.RunUntil(b.simNow())
		if b.rec != nil {
			if b.loopTicks++; b.loopTicks >= gaugeSampleTicks {
				b.loopTicks = 0
				b.sampleGauges()
			}
		}
		b.mu.Unlock()
	}
}

// sampleGauges emits the fleet gauges (per-instance load, cache
// residency, pool size) into the flight recorder. Caller holds b.mu.
func (b *Backend) sampleGauges() {
	now := b.sim.Now()
	if b.rt != nil {
		for _, info := range b.rt.InstanceInfos() {
			b.rec.LoadGauge(now, info.ID, info.Load.QueuedRequests, info.Load.BacklogSeconds)
		}
		pending := 0
		if b.ctl != nil {
			pending = b.ctl.Size() - b.rt.Routable()
		}
		b.rec.PoolGauge(now, b.rt.Routable(), pending)
	} else {
		b.rec.LoadGauge(now, 0, len(b.waiters), 0)
		b.rec.PoolGauge(now, 1, 0)
	}
	b.rec.SampleCaches(now)
}

// EnableTimeseries attaches a windowed time-series collector with the
// given window width in simulated seconds (<= 0 takes the collector's
// default). Unlike batch simulations, the server schedules no boundary
// ticker: its clock free-runs at Speedup sim-seconds per wall second
// even when idle, so boundary events would dominate the kernel. Windows
// close lazily instead — on request events and on /v1/timeseries
// scrapes — which the collector's bounded idle-gap catch-up keeps O(1)
// per close. Call it once, before serving traffic.
func (b *Backend) EnableTimeseries(intervalSeconds float64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.ts != nil {
		return
	}
	b.ts = timeseries.New(timeseries.Config{
		IntervalSeconds: intervalSeconds,
		Sample:          b.timeseriesGauges,
	})
}

// EnableChaos arms a deterministic fault injector over the routed
// cluster: seeded crash / straggler / spot-preemption events on the sim
// clock, with orphan re-admission and autoscaled replacement (see
// internal/chaos). Routed mode only — faults act through the router's
// membership. Call it once, before serving traffic and after
// EnableTimeseries (the injector captures the collector, so the order
// decides whether fault counts land in the windows). A cfg that enables
// no fault kind is a no-op: the backend keeps the nil (disabled)
// injector and stays bit-identical to an unwired server.
func (b *Backend) EnableChaos(cfg chaos.Config) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.rt == nil {
		return fmt.Errorf("server: chaos requires routed mode (more than one instance)")
	}
	if b.inj != nil {
		return fmt.Errorf("server: chaos already enabled")
	}
	b.inj = chaos.New(cfg, b.sim, b.rt, chaos.Options{
		Controller: b.ctl,
		Tracer:     b.rec,
		Timeseries: b.ts,
		OnShed:     b.onOrphanShed,
	})
	b.inj.Start()
	return nil
}

// Chaos exposes the fault injector (nil unless EnableChaos armed one).
func (b *Backend) Chaos() *chaos.Injector { return b.inj }

// onOrphanShed runs inside sim event handlers (loop holds the lock): a
// fault orphaned this request and re-admission shed it, so answer its
// waiter with the typed reject instead of leaving the caller blocked.
func (b *Backend) onOrphanShed(r *sched.Request, rej *router.RejectError) {
	b.ts.Reject(b.sim.Now(), rej.Class, rej.Reason)
	ch, ok := b.waiters[r.ID]
	if !ok {
		return
	}
	delete(b.waiters, r.ID)
	ch <- Result{Err: fmt.Errorf("server: %w", rej)}
}

// timeseriesGauges samples fleet state for the collector. It runs with
// b.mu held: either from a collector tick inside the clock loop's
// RunUntil, or from a snapshot under Timeseries.
func (b *Backend) timeseriesGauges(now float64) timeseries.Gauges {
	var g timeseries.Gauges
	if b.rt != nil {
		for _, info := range b.rt.InstanceInfos() {
			g.QueuedRequests += info.Load.QueuedRequests
			g.BacklogSeconds += info.Load.BacklogSeconds
		}
		g.PoolSize = b.rt.Routable()
		if b.ctl != nil {
			g.PendingInstances = b.ctl.Size() - b.rt.Routable()
		}
	} else {
		g.QueuedRequests = len(b.waiters)
		g.PoolSize = 1
	}
	g.GPUSeconds = b.gpuSeconds(now)
	var lookup, hit int64
	for _, eng := range b.engines {
		if c := eng.Cache(); c != nil {
			st := c.Stats()
			lookup += st.LookupTokens
			hit += st.HitTokens
		}
	}
	if lookup > 0 {
		g.CacheHitRatio = float64(hit) / float64(lookup)
	}
	return g
}

// gpuSeconds is the fleet's cumulative GPU-seconds at sim time now: the
// controller's accrued integral when autoscaled, else fleet size × time.
// Caller holds b.mu.
func (b *Backend) gpuSeconds(now float64) float64 {
	if b.ctl != nil {
		return b.ctl.GPUSeconds(now)
	}
	gpus := 0
	for _, eng := range b.engines {
		gpus += eng.GPUs()
	}
	return now * float64(gpus)
}

// Timeseries renders the collector's series as of the current simulated
// time (zero Export when EnableTimeseries was never called). It takes
// the backend lock, so the snapshot's gauges are consistent with the
// rows.
func (b *Backend) Timeseries() (timeseries.Export, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.ts == nil {
		return timeseries.Export{}, false
	}
	// Close windows the free-running clock has passed (the server has no
	// boundary ticker), then snapshot: scrapes see every elapsed window
	// plus a partial row for the open one.
	now := b.sim.Now()
	b.ts.Advance(now)
	return b.ts.Snapshot(now), true
}

// Trace exposes the backend's flight recorder (nil unless tracing is
// enabled via the engine Config's Tracer).
func (b *Backend) Trace() *trace.Recorder { return b.rec }

// Close stops the backend's clock loop. In-flight Submit calls are
// answered with an error result.
func (b *Backend) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	close(b.done)
}

// Submit serves one prompt with an allowed-token constraint, blocking
// until the engine completes it (in scaled wall time). The request is
// interactive-class; batch tenants go through SubmitClass.
func (b *Backend) Submit(prompt string, allowed []string, userID int) (Result, error) {
	return b.SubmitClass(prompt, allowed, userID, sched.ClassInteractive)
}

// SubmitClass is Submit with an explicit SLO class: the class selects the
// request's admission budget, scheduling weight and autoscale treatment
// in routed mode.
func (b *Backend) SubmitClass(prompt string, allowed []string, userID int, class sched.Class) (Result, error) {
	if len(allowed) == 0 {
		allowed = []string{"Yes", "No"}
	}
	toks := b.Tokenizer.Encode(prompt)
	if len(toks) == 0 {
		return Result{}, fmt.Errorf("server: empty prompt")
	}
	ch := make(chan Result, 1)

	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return Result{}, fmt.Errorf("server: backend closed")
	}
	b.nextID++
	id := b.nextID
	now := b.simNow()
	b.sim.RunUntil(now)
	r := &sched.Request{
		ID:            id,
		UserID:        userID,
		Tokens:        toks,
		ArrivalTime:   b.sim.Now(),
		AllowedTokens: allowed,
		Class:         class,
	}
	b.ts.Arrival(b.sim.Now(), class)
	b.waiters[id] = ch
	if b.rt != nil {
		if err := b.rt.Submit(r); err != nil {
			delete(b.waiters, id)
			var rej *router.RejectError
			if errors.As(err, &rej) {
				b.ts.Reject(b.sim.Now(), rej.Class, rej.Reason)
			}
			b.mu.Unlock()
			return Result{}, fmt.Errorf("server: %w", err)
		}
		// Revive parked fault streams: with no horizon they follow the
		// sampler discipline and park when the event queue drains.
		b.inj.Start()
	} else {
		b.engines[0].Submit(r)
	}
	b.mu.Unlock()

	select {
	case b.wake <- struct{}{}:
	default:
	}
	select {
	case res := <-ch:
		if res.Err != nil {
			return Result{}, res.Err
		}
		return res, nil
	case <-b.done:
		return Result{}, fmt.Errorf("server: backend closed")
	}
}
