package server

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/hw"
	"repro/internal/model"
)

func testBackend(t *testing.T) *Backend {
	t.Helper()
	b, err := NewBackend(engine.Config{
		Model:         model.Llama31_8B(),
		GPU:           hw.L4(),
		ProfileMaxLen: 4000,
	}, core.Options{}, 1e7) // huge speedup: tests finish instantly
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(b.Close)
	return b
}

func TestScoreProperties(t *testing.T) {
	prompt := []uint64{1, 2, 3}
	s := Score(prompt, []string{"Yes", "No"})
	if len(s) != 2 {
		t.Fatalf("scores = %v", s)
	}
	sum := s["Yes"] + s["No"]
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("probabilities sum to %v", sum)
	}
	// Deterministic.
	s2 := Score(prompt, []string{"No", "Yes"}) // order-insensitive
	if s2["Yes"] != s["Yes"] {
		t.Fatal("score depends on allowed-token order")
	}
	// Prompt-sensitive.
	s3 := Score([]uint64{9, 9, 9}, []string{"Yes", "No"})
	if s3["Yes"] == s["Yes"] {
		t.Fatal("score ignores prompt")
	}
	if Score(prompt, nil) != nil {
		t.Fatal("empty allowed set should yield nil")
	}
}

func TestBackendSubmit(t *testing.T) {
	b := testBackend(t)
	res, err := b.Submit("Here is the user profile: reads systems papers. Should we recommend this post? Answer:", nil, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.Token != "Yes" && res.Token != "No" {
		t.Fatalf("token = %q", res.Token)
	}
	if res.SimLatency <= 0 {
		t.Fatalf("sim latency = %v", res.SimLatency)
	}
	// Second identical submission hits the prefix cache.
	res2, err := b.Submit("Here is the user profile: reads systems papers. Should we recommend this post? Answer:", nil, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res2.CachedTokens == 0 {
		t.Fatal("repeat prompt saw no cache hit")
	}
	if res2.Scores["Yes"] != res.Scores["Yes"] {
		t.Fatal("same prompt produced different scores")
	}
}

func TestBackendRejectsEmptyPrompt(t *testing.T) {
	b := testBackend(t)
	b.Tokenizer.BOS = 0
	if _, err := b.Submit("", nil, 0); err == nil {
		t.Fatal("empty prompt accepted")
	}
}

func TestBackendCloseUnblocks(t *testing.T) {
	b := testBackend(t)
	b.Close()
	if _, err := b.Submit("hello", nil, 0); err == nil {
		t.Fatal("submit after close accepted")
	}
	b.Close() // idempotent
}

func TestHTTPCompletions(t *testing.T) {
	b := testBackend(t)
	h := NewHandler(b, "prefillonly-test")
	srv := httptest.NewServer(h)
	defer srv.Close()

	body, _ := json.Marshal(CompletionRequest{
		Model:         "prefillonly-test",
		Prompt:        "Credit history: paid on time for 10 months. Approve this application? Answer:",
		MaxTokens:     1,
		AllowedTokens: []string{"Approve", "Deny"},
		User:          "user-42",
	})
	resp, err := http.Post(srv.URL+"/v1/completions", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var out CompletionResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Choices) != 1 {
		t.Fatalf("choices = %+v", out.Choices)
	}
	c := out.Choices[0]
	if c.Text != "Approve" && c.Text != "Deny" {
		t.Fatalf("text = %q", c.Text)
	}
	if math.Abs(c.TokenScores["Approve"]+c.TokenScores["Deny"]-1) > 1e-9 {
		t.Fatalf("scores = %v", c.TokenScores)
	}
	if out.Usage.PromptTokens <= 0 || out.Usage.CompletionTokens != 1 {
		t.Fatalf("usage = %+v", out.Usage)
	}
}

func TestHTTPValidation(t *testing.T) {
	b := testBackend(t)
	srv := httptest.NewServer(NewHandler(b, "m"))
	defer srv.Close()

	post := func(body string) *http.Response {
		resp, err := http.Post(srv.URL+"/v1/completions", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	if resp := post(`{`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body: status %d", resp.StatusCode)
	}
	if resp := post(`{"prompt":""}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty prompt: status %d", resp.StatusCode)
	}
	if resp := post(`{"prompt":"hi","max_tokens":16}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("multi-token request: status %d", resp.StatusCode)
	}
	getResp, err := http.Get(srv.URL + "/v1/completions")
	if err != nil {
		t.Fatal(err)
	}
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET: status %d", getResp.StatusCode)
	}
	health, err := http.Get(srv.URL + "/healthz")
	if err != nil || health.StatusCode != http.StatusOK {
		t.Errorf("healthz failed: %v %v", err, health)
	}
	models, err := http.Get(srv.URL + "/v1/models")
	if err != nil || models.StatusCode != http.StatusOK {
		t.Errorf("models failed: %v", err)
	}
}
