package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/hw"
	"repro/internal/model"
	"repro/internal/router"
)

func TestEnableChaosRequiresRoutedMode(t *testing.T) {
	b, err := NewBackend(engine.Config{
		Model: model.Llama31_8B(), GPU: hw.L4(), ProfileMaxLen: 4000,
	}, core.Options{}, 1e7)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := b.EnableChaos(chaos.Config{CrashRate: 1}); err == nil {
		t.Fatal("single-engine backend accepted chaos")
	}
	if b.Chaos().Enabled() {
		t.Fatal("injector armed despite the error")
	}
}

// TestChaosCrashSurfaces drives the served path to total fleet loss: a
// high crash rate kills both instances, in-flight work is orphaned and —
// with a zero retry budget — shed with a typed reject, and subsequent
// submits shed with no-capacity. The fault activity must surface in
// /v1/stats, /v1/metrics and the HTTP 503 contract.
func TestChaosCrashSurfaces(t *testing.T) {
	b := testRoutedBackend(t, 2, router.Config{Policy: router.LeastLoaded{}})
	if err := b.EnableChaos(chaos.Config{Seed: 3, CrashRate: 50, RetryBudget: -1}); err != nil {
		t.Fatal(err)
	}
	if err := b.EnableChaos(chaos.Config{CrashRate: 1}); err == nil {
		t.Fatal("EnableChaos accepted a second arming")
	}

	// Submit until the injector has crashed the whole fleet and a typed
	// reject comes back. Each submit re-arms the parked fault streams; at
	// 1e7x speedup the crash gaps (~20 ms sim) elapse within the first
	// wall tick of each request.
	var rejErr error
	for i := 0; i < 100 && rejErr == nil; i++ {
		_, err := b.Submit("Approve this application? Answer:", nil, i)
		if err != nil {
			rejErr = err
		}
	}
	if rejErr == nil {
		t.Fatal("100 submits under CrashRate 50 all succeeded; no fault ever surfaced")
	}
	var rej *router.RejectError
	if !errors.As(rejErr, &rej) {
		t.Fatalf("fault shed returned %v, want *router.RejectError", rejErr)
	}
	if rej.Reason != router.ReasonOrphanRetries && rej.Reason != router.ReasonNoCapacity {
		t.Fatalf("shed reason %q, want orphan-retries or no-capacity", rej.Reason)
	}

	st := b.Stats()
	if st.Faults == nil {
		t.Fatal("stats carry no faults block with chaos enabled")
	}
	if st.Faults.ByKind[chaos.LabelCrash] == 0 {
		t.Fatalf("stats count no crashes: %+v", st.Faults)
	}
	if st.Faults.Orphaned != st.Faults.Rerouted+st.Faults.Shed {
		t.Fatalf("stats orphan split inconsistent: %+v", st.Faults)
	}

	var buf bytes.Buffer
	if _, err := b.Metrics().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if !strings.Contains(text, `prefill_faults_total{kind="crash"}`) {
		t.Errorf("metrics lack the crash fault counter:\n%s", text)
	}
	for _, fam := range []string{famOrphansReroute, famOrphansShed} {
		if !strings.Contains(text, fam) {
			t.Errorf("metrics lack family %s", fam)
		}
	}

	// The HTTP layer maps fault sheds to 503 + Retry-After with the
	// structured reject schema.
	srv := httptest.NewServer(NewHandler(b, "m"))
	defer srv.Close()
	body, _ := json.Marshal(CompletionRequest{Prompt: "Approve this application? Answer:", MaxTokens: 1})
	resp, err := http.Post(srv.URL+"/v1/completions", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 carries no Retry-After header")
	}
	var shed rejectBody
	if err := json.NewDecoder(resp.Body).Decode(&shed); err != nil {
		t.Fatal(err)
	}
	if shed.Reason != router.ReasonOrphanRetries && shed.Reason != router.ReasonNoCapacity {
		t.Fatalf("503 body reason %q, want orphan-retries or no-capacity", shed.Reason)
	}
	if shed.Error == "" || shed.Class == "" {
		t.Fatalf("503 body incomplete: %+v", shed)
	}
}
