package server

import (
	"strconv"
	"time"

	"repro/internal/chaos"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/trace"
)

// Metric family names served by /v1/metrics. Exported through tests and
// greppable from CI, so treat them as a public schema: renaming one is a
// breaking change for scrapers.
const (
	famSimSeconds     = "prefill_sim_seconds"
	famSimEvents      = "prefill_sim_events_total"
	famSimEventRate   = "prefill_sim_events_per_second"
	famAdmission      = "prefill_admission_decisions_total"
	famRejects        = "prefill_admission_rejects_total"
	famQueueDepth     = "prefill_instance_queued_requests"
	famBacklog        = "prefill_instance_backlog_seconds"
	famRouted         = "prefill_instance_routed_requests_total"
	famCacheLookup    = "prefill_cache_lookup_tokens_total"
	famCacheHit       = "prefill_cache_hit_tokens_total"
	famCacheUsed      = "prefill_cache_used_bytes"
	famCacheCapacity  = "prefill_cache_capacity_bytes"
	famPoolSize       = "prefill_pool_size"
	famScaleUps       = "prefill_pool_scale_ups_total"
	famScaleDowns     = "prefill_pool_scale_downs_total"
	famRevives        = "prefill_pool_revives_total"
	famGPUSeconds     = "prefill_pool_gpu_seconds_total"
	famFaults         = "prefill_faults_total"
	famOrphansReroute = "prefill_orphans_rerouted_total"
	famOrphansShed    = "prefill_orphans_shed_total"
	famLatency        = "prefill_request_latency_seconds"
	famTraceSpans     = "prefill_trace_spans_total"
	famTraceDropped   = "prefill_trace_spans_dropped_total"
	famTSWindows      = "prefill_timeseries_windows_total"
)

// Metrics renders a consistent snapshot of the serving cluster as a
// Prometheus registry. Like Stats it holds the backend lock, so every
// family in one scrape reflects the same instant. Families are always
// declared — a mode that has no samples for one (e.g. single-engine mode
// has no admission control) still exposes the family header, so scrapers
// see a stable schema.
func (b *Backend) Metrics() *metrics.Registry {
	b.mu.Lock()
	defer b.mu.Unlock()
	reg := metrics.NewRegistry()
	now := b.sim.Now()

	reg.Family(famSimSeconds, "Simulated time in seconds.", metrics.TypeGauge).Add(now)
	reg.Family(famSimEvents, "Events executed by the simulation kernel.", metrics.TypeCounter).
		Add(float64(b.sim.Executed()))
	rate := reg.Family(famSimEventRate,
		"Kernel event throughput: events executed per wall second of uptime.", metrics.TypeGauge)
	if uptime := time.Since(b.started).Seconds(); uptime > 0 {
		rate.Add(float64(b.sim.Executed()) / uptime)
	}

	admission := reg.Family(famAdmission,
		"Routing admission decisions by policy, SLO class and decision.", metrics.TypeCounter)
	rejects := reg.Family(famRejects,
		"Admission rejects by policy, SLO class and tripped budget.", metrics.TypeCounter)
	queueDepth := reg.Family(famQueueDepth,
		"Requests routed to the instance and not yet completed.", metrics.TypeGauge)
	backlog := reg.Family(famBacklog,
		"Estimated seconds of queued work on the instance.", metrics.TypeGauge)
	routed := reg.Family(famRouted,
		"Requests ever routed to the instance.", metrics.TypeCounter)

	if b.rt != nil {
		byClass := b.rt.Admission().ClassSnapshot()
		for _, pol := range metrics.SortedKeys(byClass) {
			classes := byClass[pol]
			for _, class := range metrics.SortedKeys(classes) {
				c := classes[class]
				labels := func(decision string) []metrics.Label {
					return []metrics.Label{
						{Name: "policy", Value: pol},
						{Name: "class", Value: className(class)},
						{Name: "decision", Value: decision},
					}
				}
				admission.Add(float64(c.Accepted), labels("accepted")...)
				admission.Add(float64(c.Rejected), labels("rejected")...)
			}
		}
		reasons := b.rt.Admission().ReasonSnapshot()
		for _, pol := range metrics.SortedKeys(reasons) {
			for _, class := range metrics.SortedKeys(reasons[pol]) {
				byReason := reasons[pol][class]
				for _, reason := range metrics.SortedKeys(byReason) {
					rejects.Add(float64(byReason[reason]),
						metrics.Label{Name: "policy", Value: pol},
						metrics.Label{Name: "class", Value: className(class)},
						metrics.Label{Name: "reason", Value: reason})
				}
			}
		}
		for _, info := range b.rt.InstanceInfos() {
			inst := metrics.Label{Name: "instance", Value: strconv.Itoa(info.ID)}
			queueDepth.Add(float64(info.Load.QueuedRequests), inst)
			backlog.Add(info.Load.BacklogSeconds, inst)
			routed.Add(float64(info.Load.RoutedRequests), inst)
		}
	} else {
		inst := metrics.Label{Name: "instance", Value: "0"}
		queueDepth.Add(float64(len(b.waiters)), inst)
	}

	lookup := reg.Family(famCacheLookup,
		"Tokens presented to the instance's prefix cache.", metrics.TypeCounter)
	hit := reg.Family(famCacheHit,
		"Tokens the instance's prefix cache served without recompute.", metrics.TypeCounter)
	used := reg.Family(famCacheUsed,
		"Bytes resident in the instance's prefix cache.", metrics.TypeGauge)
	capacity := reg.Family(famCacheCapacity,
		"The instance's prefix-cache pool size in bytes.", metrics.TypeGauge)
	for i, eng := range b.engines {
		c := eng.Cache()
		if c == nil {
			continue
		}
		st := c.Stats()
		inst := metrics.Label{Name: "instance", Value: strconv.Itoa(i)}
		lookup.Add(float64(st.LookupTokens), inst)
		hit.Add(float64(st.HitTokens), inst)
		used.Add(float64(c.UsedBytes()), inst)
		capacity.Add(float64(c.CapacityBytes()), inst)
	}

	pool := reg.Family(famPoolSize,
		"Routable engine instances (cold-starting additions excluded).", metrics.TypeGauge)
	scaleUps := reg.Family(famScaleUps, "Autoscaler scale-up decisions.", metrics.TypeCounter)
	scaleDowns := reg.Family(famScaleDowns, "Autoscaler drain decisions.", metrics.TypeCounter)
	revives := reg.Family(famRevives,
		"Scale-ups served by undraining a warm instance.", metrics.TypeCounter)
	gpuSeconds := reg.Family(famGPUSeconds,
		"GPU-seconds provisioned (cold starts and drains included).", metrics.TypeCounter)
	switch {
	case b.rt != nil:
		pool.Add(float64(b.rt.Routable()))
	default:
		pool.Add(1)
	}
	// Monotonic in every mode: the controller's accrued integral when
	// autoscaled, fleet size × sim time for a fixed fleet.
	gpuSeconds.Add(b.gpuSeconds(now))
	if b.ctl != nil {
		st := b.ctl.Stats()
		scaleUps.Add(float64(st.ScaleUps))
		scaleDowns.Add(float64(st.ScaleDowns))
		revives.Add(float64(st.Revives))
	}

	faults := reg.Family(famFaults,
		"Chaos-injector fault events by kind.", metrics.TypeCounter)
	orphansRerouted := reg.Family(famOrphansReroute,
		"Fault-orphaned requests re-admitted through admission.", metrics.TypeCounter)
	orphansShed := reg.Family(famOrphansShed,
		"Fault-orphaned requests shed (retry budget or re-admission reject).", metrics.TypeCounter)
	if b.inj.Enabled() {
		st := b.inj.Stats()
		for _, label := range chaos.Labels() {
			faults.Add(float64(st.ByLabel(label)), metrics.Label{Name: "kind", Value: label})
		}
		orphansRerouted.Add(float64(st.Rerouted))
		orphansShed.Add(float64(st.Shed))
	}

	latency := reg.Family(famLatency,
		"End-to-end request latency in simulated seconds by SLO class.", metrics.TypeHistogram)
	for _, class := range sched.Classes() {
		snap := b.latency[class].Snapshot()
		if snap.Count == 0 {
			continue
		}
		latency.AddHistogram(snap, metrics.Label{Name: "class", Value: class.String()})
	}

	spans := reg.Family(famTraceSpans,
		"Spans emitted into the flight recorder.", metrics.TypeCounter)
	droppedF := reg.Family(famTraceDropped,
		"Spans evicted from the flight-recorder ring.", metrics.TypeCounter)
	if b.rec != nil {
		for _, k := range trace.Kinds() {
			if n := b.rec.Emitted(k); n > 0 {
				spans.Add(float64(n), metrics.Label{Name: "kind", Value: k.String()})
			}
		}
		droppedF.Add(float64(b.rec.Dropped()))
	}

	tsWindows := reg.Family(famTSWindows,
		"Time-series windows closed by the collector.", metrics.TypeCounter)
	if b.ts != nil {
		tsWindows.Add(float64(b.ts.ClosedWindows()))
	}
	return reg
}

// className maps the admission tally's class labels (which include the
// legacy unlabeled "" bucket) onto metric label values.
func className(class string) string {
	if class == metrics.ClassUnlabeled {
		return "unlabeled"
	}
	return class
}
