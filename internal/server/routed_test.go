package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/hw"
	"repro/internal/model"
	"repro/internal/router"
)

func testRoutedBackend(t *testing.T, instances int, rcfg router.Config) *Backend {
	t.Helper()
	b, err := NewRoutedBackend(engine.Config{
		Model:         model.Llama31_8B(),
		GPU:           hw.L4(),
		ProfileMaxLen: 4000,
	}, core.Options{}, 1e7, instances, rcfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(b.Close)
	return b
}

func TestRoutedBackendSubmit(t *testing.T) {
	b := testRoutedBackend(t, 3, router.Config{Policy: router.AffinityLoad{}})
	if len(b.Engines()) != 3 || b.Router() == nil {
		t.Fatalf("routed backend shape: %d engines, router %v", len(b.Engines()), b.Router())
	}
	prompt := "Here is the user profile: reads systems papers. Recommend this post? Answer:"
	res, err := b.Submit(prompt, nil, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.Token != "Yes" && res.Token != "No" {
		t.Fatalf("token = %q", res.Token)
	}
	// A repeat from the same user routes to the same warm instance.
	res2, err := b.Submit(prompt, nil, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res2.CachedTokens == 0 {
		t.Fatal("repeat prompt saw no cache hit through the router")
	}
	if b.Router().InFlight() != 0 {
		t.Fatalf("in-flight after completion: %d", b.Router().InFlight())
	}
	c := b.Router().Admission().Policy("affinity")
	if c.Accepted != 2 || c.Rejected != 0 {
		t.Fatalf("admission tally %+v", c)
	}
}

func TestRoutedBackendValidation(t *testing.T) {
	if _, err := NewRoutedBackend(engine.Config{
		Model: model.Llama31_8B(), GPU: hw.L4(), ProfileMaxLen: 4000,
	}, core.Options{}, 1e7, 0, router.Config{}); err == nil {
		t.Fatal("zero instances accepted")
	}
}

// TestRoutedBackendSheds covers admission control end to end: an absurdly
// tight backlog bound must reject the request with a typed error that the
// HTTP layer maps to 429.
func TestRoutedBackendSheds(t *testing.T) {
	b := testRoutedBackend(t, 2, router.Config{
		Policy:            router.LeastLoaded{},
		MaxBacklogSeconds: 1e-9,
	})
	_, err := b.Submit("Long credit history requiring real work to verify. Approve? Answer:", nil, 1)
	if err == nil {
		t.Fatal("submit under 1ns backlog bound accepted")
	}
	var rej *router.RejectError
	if !errors.As(err, &rej) {
		t.Fatalf("want *router.RejectError, got %T: %v", err, err)
	}

	srv := httptest.NewServer(NewHandler(b, "m"))
	defer srv.Close()
	body, _ := json.Marshal(CompletionRequest{Prompt: "Approve this application? Answer:", MaxTokens: 1})
	resp, err := http.Post(srv.URL+"/v1/completions", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("shed request: status %d, want 429", resp.StatusCode)
	}
}
