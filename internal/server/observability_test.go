package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/hw"
	"repro/internal/model"
	"repro/internal/router"
	"repro/internal/trace"
)

// TestReadOnlyMethodGuards pins every read-only endpoint to GET/HEAD: a
// write method gets a consistent 405 with an Allow header instead of being
// silently served.
func TestReadOnlyMethodGuards(t *testing.T) {
	b := testBackend(t)
	srv := httptest.NewServer(NewHandler(b, "m"))
	defer srv.Close()
	client := srv.Client()

	endpoints := []string{"/healthz", "/v1/models", "/v1/stats", "/v1/metrics", "/v1/trace", "/v1/timeseries"}
	for _, ep := range endpoints {
		for _, method := range []string{http.MethodPost, http.MethodPut, http.MethodDelete} {
			req, err := http.NewRequest(method, srv.URL+ep, strings.NewReader("{}"))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := client.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusMethodNotAllowed {
				t.Errorf("%s %s: status %d, want 405", method, ep, resp.StatusCode)
			}
			if allow := resp.Header.Get("Allow"); allow != "GET, HEAD" {
				t.Errorf("%s %s: Allow = %q, want \"GET, HEAD\"", method, ep, allow)
			}
		}
		// HEAD must pass the guard (body elision is the ResponseWriter's
		// job; /v1/trace legitimately 404s when tracing is off).
		req, err := http.NewRequest(http.MethodHead, srv.URL+ep, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusMethodNotAllowed {
			t.Errorf("HEAD %s: got 405", ep)
		}
	}
}

// TestMetricsEndpoint pins the /v1/metrics contract: Prometheus text
// format carrying the admission, queue-depth, cache-hit and pool-size
// families, with values reflecting served traffic.
func TestMetricsEndpoint(t *testing.T) {
	b := testRoutedBackend(t, 2, router.Config{Policy: router.AffinityLoad{}})
	prompt := "Here is the user profile: reads systems papers. Recommend this post? Answer:"
	if _, err := b.Submit(prompt, nil, 7); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Submit(prompt, nil, 7); err != nil { // warm repeat: cache hit
		t.Fatal(err)
	}

	srv := httptest.NewServer(NewHandler(b, "m"))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)

	// The acceptance families must always be present (declared even when
	// sampleless) and these must carry live samples.
	for _, want := range []string{
		"# TYPE prefill_admission_decisions_total counter",
		`prefill_admission_decisions_total{policy="affinity",class="interactive",decision="accepted"} 2`,
		"# TYPE prefill_instance_queued_requests gauge",
		"# TYPE prefill_cache_hit_tokens_total counter",
		"# TYPE prefill_pool_size gauge",
		"prefill_pool_size 2",
		"# TYPE prefill_request_latency_seconds histogram",
		`prefill_request_latency_seconds_count{class="interactive"} 2`,
		"# TYPE prefill_sim_events_total counter",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("full exposition:\n%s", out)
	}
	// The repeat prompt hit the cache, so hit tokens must be positive on
	// some instance.
	if !strings.Contains(out, `prefill_cache_hit_tokens_total{instance="`) {
		t.Errorf("no per-instance cache hit samples:\n%s", out)
	}
}

// TestMetricsSingleEngine checks the schema holds in single-engine mode
// (no router): the admission family renders sampleless, the synthetic
// instance row carries the queue depth, and the pool size is 1.
func TestMetricsSingleEngine(t *testing.T) {
	b := testBackend(t)
	srv := httptest.NewServer(NewHandler(b, "m"))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	out := string(body)
	for _, want := range []string{
		"# TYPE prefill_admission_decisions_total counter",
		`prefill_instance_queued_requests{instance="0"} 0`,
		"prefill_pool_size 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("single-engine metrics missing %q:\n%s", want, out)
		}
	}
}

// TestTraceEndpoint covers both recorder states: 404 with a hint when
// tracing is off, Perfetto-loadable JSON when on.
func TestTraceEndpoint(t *testing.T) {
	off := testBackend(t)
	srvOff := httptest.NewServer(NewHandler(off, "m"))
	defer srvOff.Close()
	resp, err := http.Get(srvOff.URL + "/v1/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("trace without recorder: status %d, want 404", resp.StatusCode)
	}

	on, err := NewBackend(engine.Config{
		Model:         model.Llama31_8B(),
		GPU:           hw.L4(),
		ProfileMaxLen: 4000,
		Tracer:        trace.New(0),
	}, core.Options{}, 1e7)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(on.Close)
	if _, err := on.Submit("Approve this credit application now? Answer:", nil, 3); err != nil {
		t.Fatal(err)
	}
	srvOn := httptest.NewServer(NewHandler(on, "m"))
	defer srvOn.Close()
	resp, err = http.Get(srvOn.URL + "/v1/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace with recorder: status %d", resp.StatusCode)
	}
	var file struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&file); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(file.TraceEvents) == 0 {
		t.Fatal("trace has no events after a served request")
	}
}

// TestShedResponseCarriesReason pins the structured 429 body: clients get
// the tripped budget, class and policy without parsing the error string.
func TestShedResponseCarriesReason(t *testing.T) {
	b := testRoutedBackend(t, 2, router.Config{
		Policy:            router.LeastLoaded{},
		MaxBacklogSeconds: 1e-9,
	})
	srv := httptest.NewServer(NewHandler(b, "m"))
	defer srv.Close()
	body, _ := json.Marshal(CompletionRequest{Prompt: "Approve this application? Answer:", MaxTokens: 1})
	resp, err := http.Post(srv.URL+"/v1/completions", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	var shed rejectBody
	if err := json.NewDecoder(resp.Body).Decode(&shed); err != nil {
		t.Fatal(err)
	}
	if shed.Reason != router.ReasonBacklog {
		t.Fatalf("reason = %q, want %q", shed.Reason, router.ReasonBacklog)
	}
	if shed.Class != "interactive" || shed.Policy != "leastloaded" {
		t.Fatalf("shed body = %+v", shed)
	}
	if shed.BoundSeconds != 1e-9 {
		t.Fatalf("bound = %v", shed.BoundSeconds)
	}

	// The reason also lands in /v1/stats for fleetwide visibility.
	stats := b.Stats()
	if n := stats.RejectReasons["leastloaded"]["interactive"][router.ReasonBacklog]; n != 1 {
		t.Fatalf("stats reject reasons = %+v", stats.RejectReasons)
	}
}
