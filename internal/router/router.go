// Package router is the cluster-scale serving frontend: it routes requests
// across engine instances by live load and prefix-cache affinity, and sheds
// load when an instance's backlog exceeds an admission bound.
//
// It supersedes internal/cluster's static §7.1 user-id round-robin. The
// router tracks, per instance, the requests and tokens it has routed but
// not yet seen complete, plus an estimated backlog in seconds computed with
// the instance's JCT estimator (the same estimator PrefillOnly's calibrated
// scheduler uses). Routing policies are pluggable behind the Policy
// interface; see policy.go for the three built-ins the experiments compare
// (UserHash, LeastLoaded, AffinityLoad).
//
// Membership is dynamic: instances can be added while the router runs
// (AddInstance), marked draining (Drain) so policies stop offering them
// while their in-flight work finishes, and removed once drained (Remove).
// Every instance has a stable ID that is never reused, so load accounting
// and autoscaler bookkeeping survive arbitrary add/drain/remove cycles.
// internal/autoscale drives this lifecycle from backlog and admission
// signals.
//
// The router is not goroutine-safe: simulation drivers call it from
// single-threaded event handlers, and the HTTP backend serializes access
// under its own lock.
package router

import (
	"fmt"
	"sort"

	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/jct"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/trace"
)

// Reject reasons: which admission budget a shed request tripped. They are
// stable label values for metrics, the 429 body and traces.
const (
	// ReasonBacklog is the aggregate bound: the projected wait exceeded
	// MaxBacklogSeconds.
	ReasonBacklog = "backlog"
	// ReasonClassBudget is a per-class bound: the projected wait exceeded
	// the request class's ClassBacklogSeconds budget.
	ReasonClassBudget = "class-budget"
	// ReasonNoCapacity is the empty-fleet shed: no routable instance
	// existed at submission (every instance draining, crashed or
	// preempted). Before fault injection this state was unreachable in a
	// well-formed run and surfaced as an untyped error.
	ReasonNoCapacity = "no-capacity"
	// ReasonOrphanRetries is the fault-recovery shed: a request orphaned
	// by instance failures exhausted its re-admission retry budget
	// (internal/chaos).
	ReasonOrphanRetries = "orphan-retries"
)

// Load is a snapshot of one instance's work as seen by the router.
type Load struct {
	// QueuedRequests is the requests routed to the instance that have not
	// completed yet (waiting or executing).
	QueuedRequests int
	// QueuedTokens is the input tokens of those requests.
	QueuedTokens int64
	// BacklogSeconds is the estimated execution time of those requests,
	// from the instance's JCT estimator at routing time.
	BacklogSeconds float64
	// ClassBacklogSeconds splits BacklogSeconds by SLO class (indexed by
	// sched.Class). The autoscaler scales on the interactive share so
	// batch backlog alone never provisions capacity.
	ClassBacklogSeconds [sched.NumClasses]float64
	// RoutedRequests and RoutedTokens are cumulative totals since
	// construction (never decremented); they measure routing balance.
	RoutedRequests int64
	RoutedTokens   int64
}

// ClassBacklog returns the backlog seconds of one SLO class (0 for
// classes outside the indexed range).
func (l Load) ClassBacklog(c sched.Class) float64 {
	if int(c) >= len(l.ClassBacklogSeconds) {
		return 0
	}
	return l.ClassBacklogSeconds[c]
}

// InstanceInfo is one instance's identity and live state, for stats
// endpoints and the autoscaler.
type InstanceInfo struct {
	// ID is the instance's stable router ID (never reused).
	ID int
	// Draining reports whether the instance is excluded from routing and
	// finishing its in-flight work.
	Draining bool
	// GPUs is the device count the instance occupies.
	GPUs int
	// Load is the instance's live load.
	Load Load
}

// RejectError is the typed error Submit returns when admission control
// sheds a request: the chosen instance's projected completion wait
// (backlog plus the request's own estimated execution) exceeds the bound.
type RejectError struct {
	// Policy is the routing policy that chose the instance.
	Policy string
	// Instance is the chosen instance's stable ID.
	Instance int
	// Class is the shed request's SLO class.
	Class sched.Class
	// BacklogSeconds is the instance's estimated backlog at rejection.
	BacklogSeconds float64
	// EstimateSeconds is the request's own estimated execution time.
	EstimateSeconds float64
	// BoundSeconds is the admission bound applied (the request class's
	// budget when one is configured, MaxBacklogSeconds otherwise).
	BoundSeconds float64
	// Reason says why the request was shed: ReasonClassBudget when the
	// request class has its own ClassBacklogSeconds entry, ReasonBacklog
	// when the aggregate MaxBacklogSeconds applied, ReasonNoCapacity when
	// no routable instance existed, and ReasonOrphanRetries when a
	// fault-orphaned request exhausted its re-admission budget.
	Reason string
}

// Error implements error.
func (e *RejectError) Error() string {
	switch e.Reason {
	case ReasonNoCapacity:
		return fmt.Sprintf("router: %s rejected %s request: no routable instances", e.Policy, e.Class)
	case ReasonOrphanRetries:
		return fmt.Sprintf("router: %s shed orphaned %s request: re-admission retry budget exhausted", e.Policy, e.Class)
	}
	return fmt.Sprintf("router: %s rejected %s request for instance %d: backlog %.3gs + est %.3gs exceeds %s bound %.3gs",
		e.Policy, e.Class, e.Instance, e.BacklogSeconds, e.EstimateSeconds, e.Reason, e.BoundSeconds)
}

// Config configures a Router.
type Config struct {
	// Policy picks the instance for each request (default AffinityLoad).
	Policy Policy
	// MaxBacklogSeconds enables admission control when positive: a request
	// whose projected completion wait on the chosen instance (backlog +
	// its own estimated execution) exceeds the bound is rejected with a
	// *RejectError instead of queued.
	MaxBacklogSeconds float64
	// ClassBacklogSeconds overrides MaxBacklogSeconds per SLO class. A
	// class with a smaller budget is shed earlier: giving batch a budget
	// below interactive's reserves the headroom between the two for
	// interactive traffic, so batch load is dropped before interactive
	// load ever is. A class entry of 0 disables admission control for
	// that class; classes without an entry use MaxBacklogSeconds.
	ClassBacklogSeconds map[sched.Class]float64
	// Admission receives per-policy accept/reject counts. When nil the
	// router allocates its own tally (see Router.Admission).
	Admission *metrics.Admission
	// EstimatorFor overrides JCT estimator resolution per instance. When
	// nil (or when it returns nil), the router uses the engine's own
	// estimator if it exposes one, calibrates a cache-miss proxy from the
	// engine's cost model if it exposes that, and otherwise falls back to
	// a fixed per-token constant.
	EstimatorFor func(e engine.Engine) jct.Estimator
	// Tracer, when non-nil, receives submit/route/reject instants for
	// every routing decision. The router has no clock, so events are
	// stamped with the request's arrival time (submission happens at
	// arrival on both the simulated and the served path).
	Tracer *trace.Recorder
}

// fallbackSecondsPerToken prices backlog for engines that expose neither an
// estimator nor a cost model. Instances behind one router are homogeneous,
// so only the relative magnitude matters for routing decisions.
const fallbackSecondsPerToken = 1e-4

// estimatorProbeLen is the cold-run length used to calibrate a proxy
// estimator from an engine's cost model.
const estimatorProbeLen = 4096

type instanceState struct {
	id       int
	eng      engine.Engine
	est      jct.Estimator
	load     Load
	draining bool
	// condemned marks an instance that received a preemption notice: it
	// drains like any scale-down victim but can never be revived, because
	// the machine under it is going away regardless of load.
	condemned bool
	// pendingBlocks refcounts the block hashes of routed, not-yet-
	// completed requests. Merged into hit estimation so that concurrent
	// requests sharing a prefix are attracted to the instance already
	// computing it, instead of stampeding the same prefix onto several
	// instances before the first one caches it.
	pendingBlocks map[uint64]int
}

// pending is the bookkeeping of one routed, not-yet-completed request.
type pending struct {
	instance int // stable instance ID
	tokens   int64
	seconds  float64
	class    sched.Class
	hashes   []uint64
}

// Router routes requests across a dynamic set of engine instances.
type Router struct {
	cfg       Config
	instances []*instanceState // creation order, compacted on Remove
	byID      map[int]*instanceState
	nextID    int
	// routableCache is the non-draining subset in slot order, rebuilt
	// lazily after membership or drain changes.
	routableCache []*instanceState
	routableDirty bool
	inflight      map[int64]pending
	admission     *metrics.Admission
}

// estimatorEngine is satisfied by engines that expose a calibrated JCT
// estimator (core.Engine does).
type estimatorEngine interface {
	Estimator() jct.Estimator
}

// executorEngine is satisfied by engines that expose their cost model
// (engine.Serial does); the router calibrates a cache-miss proxy from it.
type executorEngine interface {
	Executor() *graph.Executor
	Options() graph.Options
}

// New builds a router over the given instances.
func New(cfg Config, instances ...engine.Engine) (*Router, error) {
	if len(instances) == 0 {
		return nil, fmt.Errorf("router: need at least one instance")
	}
	if cfg.Policy == nil {
		cfg.Policy = AffinityLoad{}
	}
	if cfg.MaxBacklogSeconds < 0 {
		return nil, fmt.Errorf("router: MaxBacklogSeconds must be non-negative, got %g", cfg.MaxBacklogSeconds)
	}
	// Validate per-class budgets in sorted class order so the reported
	// error is deterministic when several classes are misconfigured.
	classes := make([]sched.Class, 0, len(cfg.ClassBacklogSeconds))
	//prefill:allow(simdeterminism): key collection feeds the sort below, order-insensitive
	for class := range cfg.ClassBacklogSeconds {
		classes = append(classes, class)
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i] < classes[j] })
	for _, class := range classes {
		if bound := cfg.ClassBacklogSeconds[class]; bound < 0 {
			return nil, fmt.Errorf("router: %s backlog budget must be non-negative, got %g", class, bound)
		}
	}
	admission := cfg.Admission
	if admission == nil {
		admission = &metrics.Admission{}
	}
	rt := &Router{
		cfg:           cfg,
		byID:          make(map[int]*instanceState),
		routableDirty: true,
		inflight:      make(map[int64]pending),
		admission:     admission,
	}
	for _, e := range instances {
		if _, err := rt.AddInstance(e); err != nil {
			return nil, err
		}
	}
	return rt, nil
}

// AddInstance registers a new routable instance and returns its stable ID.
// IDs are never reused, so an autoscaler can add and remove instances in
// any order without aliasing load accounting.
func (rt *Router) AddInstance(e engine.Engine) (int, error) {
	if e == nil {
		return 0, fmt.Errorf("router: instance is nil")
	}
	st := &instanceState{
		id:            rt.nextID,
		eng:           e,
		est:           resolveEstimator(rt.cfg, e),
		pendingBlocks: make(map[uint64]int),
	}
	rt.nextID++
	rt.instances = append(rt.instances, st)
	rt.byID[st.id] = st
	rt.routableDirty = true
	return st.id, nil
}

// Drain marks an instance draining: policies stop seeing it, so no new
// requests route to it, while its in-flight work runs to completion.
// Draining an already-draining instance is a no-op.
func (rt *Router) Drain(id int) error {
	st, ok := rt.byID[id]
	if !ok {
		return fmt.Errorf("router: unknown instance %d", id)
	}
	if !st.draining {
		st.draining = true
		rt.routableDirty = true
	}
	return nil
}

// Undrain returns a draining instance to the routable set — the
// autoscaler's rescue path when load returns while a warm instance is
// still draining: reviving it restores capacity instantly, where a fresh
// instance would pay a full cold start. Undraining a non-draining
// instance is a no-op.
func (rt *Router) Undrain(id int) error {
	st, ok := rt.byID[id]
	if !ok {
		return fmt.Errorf("router: unknown instance %d", id)
	}
	if st.condemned {
		return fmt.Errorf("router: instance %d is condemned (preemption notice) and cannot be revived", id)
	}
	if st.draining {
		st.draining = false
		rt.routableDirty = true
	}
	return nil
}

// Drained reports whether a draining instance has finished its in-flight
// work and may be removed.
func (rt *Router) Drained(id int) (bool, error) {
	st, ok := rt.byID[id]
	if !ok {
		return false, fmt.Errorf("router: unknown instance %d", id)
	}
	return st.draining && st.load.QueuedRequests == 0, nil
}

// Remove releases a drained instance. It must be draining with no
// in-flight work; removing a live instance would strand the load
// accounting of its queued requests.
func (rt *Router) Remove(id int) error {
	st, ok := rt.byID[id]
	if !ok {
		return fmt.Errorf("router: unknown instance %d", id)
	}
	if !st.draining {
		return fmt.Errorf("router: instance %d is not draining", id)
	}
	if st.load.QueuedRequests > 0 {
		return fmt.Errorf("router: instance %d still has %d in-flight requests", id, st.load.QueuedRequests)
	}
	for i, s := range rt.instances {
		if s == st {
			rt.instances = append(rt.instances[:i], rt.instances[i+1:]...)
			break
		}
	}
	delete(rt.byID, id)
	rt.routableDirty = true
	return nil
}

// Condemn marks an instance as irrevocably leaving (spot preemption
// notice): it keeps serving its queue while draining, but Undrain on it
// fails, so the autoscaler's revive path falls through to a cold start.
// Condemning does not itself drain; pair it with Drain.
func (rt *Router) Condemn(id int) error {
	st, ok := rt.byID[id]
	if !ok {
		return fmt.Errorf("router: unknown instance %d", id)
	}
	st.condemned = true
	return nil
}

// Has reports whether the instance ID is still registered (routable,
// draining or condemned). Fault injectors use it to tell "already
// released" from "needs a forced kill" at a preemption deadline.
func (rt *Router) Has(id int) bool {
	_, ok := rt.byID[id]
	return ok
}

// EngineOf returns the engine behind a registered instance ID. Fault
// injectors use it to reach per-instance knobs (straggler speed factor)
// that are not part of the routing surface.
func (rt *Router) EngineOf(id int) (engine.Engine, error) {
	st, ok := rt.byID[id]
	if !ok {
		return nil, fmt.Errorf("router: unknown instance %d", id)
	}
	return st.eng, nil
}

// killableEngine is satisfied by engines that can crash mid-flight and
// report their orphaned requests (engine.Serial does).
type killableEngine interface {
	Kill() []*sched.Request
}

// Fail force-removes an instance that crashed or hit a preemption
// deadline: the engine is killed (aborting its in-service request,
// draining its queue and losing both cache tiers), every orphaned
// request's load accounting and in-flight entry are released so the
// orphans can be re-admitted through Submit, and the instance is removed
// with its ID retired. It returns the orphans in deterministic order
// (in-service first, then scheduler order).
func (rt *Router) Fail(id int) ([]*sched.Request, error) {
	st, ok := rt.byID[id]
	if !ok {
		return nil, fmt.Errorf("router: unknown instance %d", id)
	}
	ke, ok := st.eng.(killableEngine)
	if !ok {
		return nil, fmt.Errorf("router: instance %d engine %s cannot be killed", id, st.eng.Name())
	}
	orphans := ke.Kill()
	for _, r := range orphans {
		delete(rt.inflight, r.ID)
	}
	for i, s := range rt.instances {
		if s == st {
			rt.instances = append(rt.instances[:i], rt.instances[i+1:]...)
			break
		}
	}
	delete(rt.byID, id)
	rt.routableDirty = true
	return orphans, nil
}

// routable returns the non-draining instances in slot order.
func (rt *Router) routable() []*instanceState {
	if rt.routableDirty {
		rt.routableCache = rt.routableCache[:0]
		for _, st := range rt.instances {
			if !st.draining {
				rt.routableCache = append(rt.routableCache, st)
			}
		}
		rt.routableDirty = false
	}
	return rt.routableCache
}

// resolveEstimator picks the JCT estimator used to price an instance's
// backlog, preferring the engine's own calibrated estimator.
func resolveEstimator(cfg Config, e engine.Engine) jct.Estimator {
	if cfg.EstimatorFor != nil {
		if est := cfg.EstimatorFor(e); est != nil {
			return est
		}
	}
	if ee, ok := e.(estimatorEngine); ok {
		if est := ee.Estimator(); est != nil {
			return est
		}
	}
	if xe, ok := e.(executorEngine); ok {
		measure := func(nInput, nCached int) (float64, error) {
			return xe.Executor().EstimateSeconds(graph.PassSpec{Total: nInput, Cached: nCached}, xe.Options())
		}
		if p, err := jct.CalibrateProxy(measure, estimatorProbeLen); err == nil {
			return p
		}
	}
	return &jct.Proxy{SecondsPerMissToken: fallbackSecondsPerToken}
}

// Instances returns every routed engine (including draining ones) in slot
// order.
func (rt *Router) Instances() []engine.Engine {
	out := make([]engine.Engine, len(rt.instances))
	for i, st := range rt.instances {
		out[i] = st.eng
	}
	return out
}

// Size returns the current instance count, draining included.
func (rt *Router) Size() int { return len(rt.instances) }

// Routable returns the number of instances policies can pick.
func (rt *Router) Routable() int { return len(rt.routable()) }

// GPUs returns the total GPUs occupied by the routed instances.
func (rt *Router) GPUs() int {
	n := 0
	for _, st := range rt.instances {
		n += st.eng.GPUs()
	}
	return n
}

// Policy returns the active routing policy.
func (rt *Router) Policy() Policy { return rt.cfg.Policy }

// Admission returns the router's accept/reject tally.
func (rt *Router) Admission() *metrics.Admission { return rt.admission }

// Loads returns a snapshot of every instance's load (draining included) in
// slot order.
func (rt *Router) Loads() []Load {
	out := make([]Load, len(rt.instances))
	for i, st := range rt.instances {
		out[i] = st.load
	}
	return out
}

// InstanceInfos returns every instance's identity and live state
// (draining included) in slot order.
func (rt *Router) InstanceInfos() []InstanceInfo {
	out := make([]InstanceInfo, len(rt.instances))
	for i, st := range rt.instances {
		out[i] = InstanceInfo{ID: st.id, Draining: st.draining, GPUs: st.eng.GPUs(), Load: st.load}
	}
	return out
}

// InFlight returns the number of routed requests not yet completed.
func (rt *Router) InFlight() int { return len(rt.inflight) }

// estSeconds prices a request on an instance: the instance estimator
// evaluated at the request's current prefix-cache hit length there
// (peeked, so routing sweeps do not disturb LRU order).
func estSeconds(st *instanceState, r *sched.Request, hit int) float64 {
	if hit > r.Len() {
		hit = r.Len()
	}
	return st.est.Estimate(r.Len(), hit)
}

// hitTokens estimates the request's prefix-cache hit length on an instance
// without touching LRU order or hit-rate statistics. A block counts as hit
// when it is cached or when a request already routed to the instance is
// about to cache it (pending), so the estimate reflects the near future
// rather than stampeding shared prefixes across instances.
func hitTokens(st *instanceState, r *sched.Request) int {
	c := st.eng.Cache()
	if c == nil {
		return 0
	}
	hit := 0
	for _, h := range engine.HashesOf(r, c.BlockTokens()) {
		if !c.HasBlock(h) && st.pendingBlocks[h] == 0 {
			break
		}
		hit += c.BlockTokens()
	}
	if hit > r.Len() {
		hit = r.Len()
	}
	return hit
}

// view adapts the router to the Policy View interface over a snapshot of
// the routable instances, memoizing the per-instance hit walk for the
// request being routed: AffinityLoad scans every instance and then
// re-scores two finalists, and Submit's admission check needs the chosen
// instance's hit again — each would otherwise re-walk the prompt's block
// chain (hundreds of map lookups on long prompts) on the routing hot path.
type view struct {
	insts []*instanceState
	r     *sched.Request
	hits  []int // per-instance hit, -1 = not yet computed
}

func (rt *Router) newView(r *sched.Request) *view {
	insts := rt.routable()
	hits := make([]int, len(insts))
	for i := range hits {
		hits[i] = -1
	}
	return &view{insts: insts, r: r, hits: hits}
}

func (v *view) Instances() int  { return len(v.insts) }
func (v *view) Load(i int) Load { return v.insts[i].load }
func (v *view) HitTokens(i int, r *sched.Request) int {
	if r != v.r {
		return hitTokens(v.insts[i], r)
	}
	if v.hits[i] < 0 {
		v.hits[i] = hitTokens(v.insts[i], r)
	}
	return v.hits[i]
}
func (v *view) EstSeconds(i int, r *sched.Request, hit int) float64 {
	return estSeconds(v.insts[i], r, hit)
}

// Submit routes a request: the policy picks an instance among the
// routable (non-draining) ones, admission control accepts or sheds, and
// the request is handed to the instance's engine. A shed request is
// returned as a *RejectError and never enqueued.
func (rt *Router) Submit(r *sched.Request) error {
	// IDs are caller-assigned and key the load accounting: a duplicate
	// would overwrite the pending entry and leak load forever.
	if _, dup := rt.inflight[r.ID]; dup {
		return fmt.Errorf("router: request ID %d is already in flight", r.ID)
	}
	v := rt.newView(r)
	if len(v.insts) == 0 {
		// No routable capacity (every instance draining, crashed or
		// preempted): a typed shed, so fault-injected runs degrade to
		// rejection instead of erroring out.
		rt.admission.RejectClassReason(rt.cfg.Policy.Name(), r.Class.String(), ReasonNoCapacity)
		rt.cfg.Tracer.Reject(r.ArrivalTime, ReasonNoCapacity, r.ID, r.Class, -1, 0, 0)
		return &RejectError{
			Policy:   rt.cfg.Policy.Name(),
			Instance: -1,
			Class:    r.Class,
			Reason:   ReasonNoCapacity,
		}
	}
	idx := rt.cfg.Policy.Pick(r, v)
	if idx < 0 || idx >= len(v.insts) {
		return fmt.Errorf("router: policy %s picked out-of-range instance %d of %d",
			rt.cfg.Policy.Name(), idx, len(v.insts))
	}
	st := v.insts[idx]
	rt.cfg.Tracer.Submit(r.ArrivalTime, rt.cfg.Policy.Name(), r.ID, r.Class)
	hit := v.HitTokens(idx, r)
	est := estSeconds(st, r, hit)
	bound := rt.cfg.MaxBacklogSeconds
	reason := ReasonBacklog
	if classBound, ok := rt.cfg.ClassBacklogSeconds[r.Class]; ok {
		bound = classBound
		reason = ReasonClassBudget
	}
	if bound > 0 && st.load.BacklogSeconds+est > bound {
		rt.admission.RejectClassReason(rt.cfg.Policy.Name(), r.Class.String(), reason)
		rt.cfg.Tracer.Reject(r.ArrivalTime, reason, r.ID, r.Class, st.id, st.load.BacklogSeconds, bound)
		return &RejectError{
			Policy:          rt.cfg.Policy.Name(),
			Instance:        st.id,
			Class:           r.Class,
			BacklogSeconds:  st.load.BacklogSeconds,
			EstimateSeconds: est,
			BoundSeconds:    bound,
			Reason:          reason,
		}
	}
	rt.admission.AcceptClass(rt.cfg.Policy.Name(), r.Class.String())
	rt.cfg.Tracer.Route(r.ArrivalTime, rt.cfg.Policy.Name(), r.ID, r.Class, st.id, hit, est)
	var hashes []uint64
	if c := st.eng.Cache(); c != nil {
		hashes = engine.HashesOf(r, c.BlockTokens())
		for _, h := range hashes {
			st.pendingBlocks[h]++
		}
	}
	rt.inflight[r.ID] = pending{instance: st.id, tokens: int64(r.Len()), seconds: est, class: r.Class, hashes: hashes}
	st.load.QueuedRequests++
	st.load.QueuedTokens += int64(r.Len())
	st.load.BacklogSeconds += est
	if int(r.Class) < len(st.load.ClassBacklogSeconds) {
		st.load.ClassBacklogSeconds[r.Class] += est
	}
	st.load.RoutedRequests++
	st.load.RoutedTokens += int64(r.Len())
	st.eng.Submit(r)
	return nil
}

// Completed releases a routed request's load accounting. Chain it into the
// engines' OnComplete sink; records for requests the router did not route
// are ignored.
func (rt *Router) Completed(rec engine.Record) {
	p, ok := rt.inflight[rec.Req.ID]
	if !ok {
		return
	}
	delete(rt.inflight, rec.Req.ID)
	st, ok := rt.byID[p.instance]
	if !ok {
		// Removal requires a fully drained instance, so the instance of an
		// in-flight request cannot have been removed.
		return
	}
	st.load.QueuedRequests--
	st.load.QueuedTokens -= p.tokens
	st.load.BacklogSeconds -= p.seconds
	if st.load.BacklogSeconds < 1e-12 {
		st.load.BacklogSeconds = 0
	}
	if int(p.class) < len(st.load.ClassBacklogSeconds) {
		st.load.ClassBacklogSeconds[p.class] -= p.seconds
		if st.load.ClassBacklogSeconds[p.class] < 1e-12 {
			st.load.ClassBacklogSeconds[p.class] = 0
		}
	}
	for _, h := range p.hashes {
		if st.pendingBlocks[h]--; st.pendingBlocks[h] <= 0 {
			delete(st.pendingBlocks, h)
		}
	}
}
