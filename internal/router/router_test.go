package router

import (
	"errors"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/hw"
	"repro/internal/model"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

// countingEngine wraps an engine and records which users it received, so
// tests can observe routing decisions without the router exposing them.
type countingEngine struct {
	engine.Engine
	users  map[int]int // user -> requests received
	tokens int64
}

func (c *countingEngine) Submit(r *sched.Request) {
	if c.users == nil {
		c.users = make(map[int]int)
	}
	c.users[r.UserID]++
	c.tokens += int64(r.Len())
	c.Engine.Submit(r)
}

// testCluster builds n PrefillOnly instances on one sim with a completion
// chain into the router (wired after New via the returned hook).
func testCluster(t *testing.T, s *sim.Sim, n int) ([]*countingEngine, []engine.Engine, *func(engine.Record)) {
	t.Helper()
	var chain func(engine.Record)
	cfg := engine.Config{
		Model: model.Llama31_8B(), GPU: hw.L4(), Sim: s, ProfileMaxLen: 4000,
		OnComplete: func(rec engine.Record) {
			if chain != nil {
				chain(rec)
			}
		},
	}
	wrapped := make([]*countingEngine, n)
	engines := make([]engine.Engine, n)
	for i := 0; i < n; i++ {
		e, err := core.New(cfg, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		wrapped[i] = &countingEngine{Engine: e}
		engines[i] = wrapped[i]
	}
	return wrapped, engines, &chain
}

func mkReq(id int64, user, tokens int) *sched.Request {
	toks := make([]uint64, tokens)
	for i := range toks {
		toks[i] = uint64(user)<<32 | uint64(i)
	}
	return &sched.Request{ID: id, UserID: user, Tokens: toks}
}

// mkPostReq builds a request with a per-user shared prefix and a fresh
// per-request suffix, like the post-recommendation workload.
func mkPostReq(id int64, user, prefix, suffix int) *sched.Request {
	toks := make([]uint64, 0, prefix+suffix)
	for i := 0; i < prefix; i++ {
		toks = append(toks, uint64(user)<<32|uint64(i))
	}
	for i := 0; i < suffix; i++ {
		toks = append(toks, uint64(id)<<40|uint64(user)<<32|uint64(i))
	}
	return &sched.Request{ID: id, UserID: user, Tokens: toks}
}

func TestUserHashStickyAndStateless(t *testing.T) {
	var s sim.Sim
	wrapped, engines, chain := testCluster(t, &s, 3)
	rt, err := New(Config{Policy: UserHash{}}, engines...)
	if err != nil {
		t.Fatal(err)
	}
	*chain = rt.Completed

	id := int64(0)
	for round := 0; round < 3; round++ {
		for user := 0; user < 30; user++ {
			id++
			if err := rt.Submit(mkReq(id, user, 500)); err != nil {
				t.Fatal(err)
			}
		}
		s.Run()
	}
	// Every user must land on exactly one instance across all rounds.
	seen := make(map[int]int)
	for i, w := range wrapped {
		for user := range w.users {
			if prev, ok := seen[user]; ok && prev != i {
				t.Fatalf("user %d routed to instances %d and %d", user, prev, i)
			}
			seen[user] = i
		}
	}
	// The hash must spread users: with 30 users on 3 instances, no
	// instance should be empty.
	for i, w := range wrapped {
		if len(w.users) == 0 {
			t.Fatalf("instance %d received no users", i)
		}
	}
	if rt.InFlight() != 0 {
		t.Fatalf("in-flight after drain: %d", rt.InFlight())
	}
	for i, l := range rt.Loads() {
		if l.QueuedRequests != 0 || l.QueuedTokens != 0 || l.BacklogSeconds != 0 {
			t.Fatalf("instance %d load not drained: %+v", i, l)
		}
		if l.RoutedRequests == 0 {
			t.Fatalf("instance %d cumulative count empty", i)
		}
	}
}

func TestLeastLoadedBalancesSingleHotUser(t *testing.T) {
	var s sim.Sim
	wrapped, engines, chain := testCluster(t, &s, 4)
	rt, err := New(Config{Policy: LeastLoaded{}}, engines...)
	if err != nil {
		t.Fatal(err)
	}
	*chain = rt.Completed

	// One hot user floods the cluster before anything completes: backlog
	// accounting must spread the burst evenly.
	for id := int64(1); id <= 32; id++ {
		if err := rt.Submit(mkReq(id, 7, 1000)); err != nil {
			t.Fatal(err)
		}
	}
	for i, w := range wrapped {
		if w.users[7] != 8 {
			t.Fatalf("instance %d got %d of the hot user's requests, want 8", i, w.users[7])
		}
	}
	s.Run()
}

func TestAffinityLoadKeepsHomeUntilBacklogged(t *testing.T) {
	var s sim.Sim
	wrapped, engines, chain := testCluster(t, &s, 2)
	rt, err := New(Config{Policy: AffinityLoad{}}, engines...)
	if err != nil {
		t.Fatal(err)
	}
	*chain = rt.Completed

	user := 3
	home := homeOf(user, 2)
	// Warm the home cache: one request, drained. Every request shares a
	// 1500-token profile prefix and adds a fresh 500-token suffix.
	if err := rt.Submit(mkPostReq(1, user, 1500, 500)); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if wrapped[home].users[user] != 1 {
		t.Fatalf("warm request not on home instance %d", home)
	}
	// Low load: repeated requests stay home (cache affinity).
	for id := int64(2); id <= 5; id++ {
		if err := rt.Submit(mkPostReq(id, user, 1500, 500)); err != nil {
			t.Fatal(err)
		}
		s.Run()
	}
	if got := wrapped[home].users[user]; got != 5 {
		t.Fatalf("home instance served %d requests, want all 5", got)
	}
	// Flood without draining: once home's backlog exceeds the cache
	// saving, the policy must spill to the other instance.
	for id := int64(6); id <= 40; id++ {
		if err := rt.Submit(mkPostReq(id, user, 1500, 500)); err != nil {
			t.Fatal(err)
		}
	}
	if wrapped[1-home].users[user] == 0 {
		t.Fatal("affinity policy never spilled from a backlogged home")
	}
	s.Run()
}

func TestAdmissionControlRejects(t *testing.T) {
	var s sim.Sim
	_, engines, chain := testCluster(t, &s, 2)
	rt, err := New(Config{Policy: LeastLoaded{}, MaxBacklogSeconds: 1.0}, engines...)
	if err != nil {
		t.Fatal(err)
	}
	*chain = rt.Completed

	rejected := 0
	for id := int64(1); id <= 200; id++ {
		err := rt.Submit(mkReq(id, int(id), 2000))
		if err == nil {
			continue
		}
		var rej *RejectError
		if !errors.As(err, &rej) {
			t.Fatalf("want *RejectError, got %T: %v", err, err)
		}
		if rej.BoundSeconds != 1.0 || rej.BacklogSeconds+rej.EstimateSeconds <= rej.BoundSeconds {
			t.Fatalf("inconsistent rejection: %+v", rej)
		}
		rejected++
	}
	if rejected == 0 {
		t.Fatal("no request was rejected under a 1s backlog bound")
	}
	c := rt.Admission().Policy("leastloaded")
	if c.Rejected != int64(rejected) || c.Accepted != int64(200-rejected) {
		t.Fatalf("admission counters %+v, want accepted=%d rejected=%d", c, 200-rejected, rejected)
	}
	s.Run()
	// After the backlog drains, admission opens again.
	if err := rt.Submit(mkReq(1000, 1, 2000)); err != nil {
		t.Fatalf("post-drain submit rejected: %v", err)
	}
	s.Run()
}

// Per-class admission: with a batch budget below the interactive bound,
// batch requests are shed at a backlog depth where interactive requests
// are still admitted — batch load sheds first, interactive is protected.
func TestClassBudgetsShedBatchFirst(t *testing.T) {
	var s sim.Sim
	_, engines, chain := testCluster(t, &s, 1)
	rt, err := New(Config{
		Policy:            LeastLoaded{},
		MaxBacklogSeconds: 10,
		ClassBacklogSeconds: map[sched.Class]float64{
			sched.ClassBatch: 2,
		},
	}, engines...)
	if err != nil {
		t.Fatal(err)
	}
	*chain = rt.Completed

	mkClass := func(id int64, class sched.Class) *sched.Request {
		r := mkReq(id, int(id), 2000)
		r.Class = class
		return r
	}
	// Fill backlog past the batch budget with interactive work.
	id := int64(0)
	for rt.Loads()[0].BacklogSeconds <= 2 {
		id++
		if err := rt.Submit(mkClass(id, sched.ClassInteractive)); err != nil {
			t.Fatalf("interactive submit below its bound rejected: %v", err)
		}
	}
	// Batch is now over ITS budget while interactive still has headroom.
	id++
	err = rt.Submit(mkClass(id, sched.ClassBatch))
	var rej *RejectError
	if !errors.As(err, &rej) {
		t.Fatalf("batch request above its budget not rejected (err %v)", err)
	}
	if rej.Class != sched.ClassBatch || rej.BoundSeconds != 2 {
		t.Fatalf("reject carries class %v bound %g, want batch/2", rej.Class, rej.BoundSeconds)
	}
	id++
	if err := rt.Submit(mkClass(id, sched.ClassInteractive)); err != nil {
		t.Fatalf("interactive rejected while under its own bound: %v", err)
	}
	// Per-class tallies: all rejects are batch, no interactive shed.
	adm := rt.Admission()
	if c := adm.Class("leastloaded", "batch"); c.Rejected != 1 || c.Accepted != 0 {
		t.Fatalf("batch tally %+v", c)
	}
	if c := adm.Class("leastloaded", "interactive"); c.Rejected != 0 || c.Accepted != id-1 {
		t.Fatalf("interactive tally %+v (id %d)", c, id)
	}
	// Per-class backlog split sums to the aggregate and is all interactive.
	l := rt.Loads()[0]
	if l.ClassBacklog(sched.ClassBatch) != 0 {
		t.Fatalf("batch backlog %g with no batch admitted", l.ClassBacklog(sched.ClassBatch))
	}
	if got := l.ClassBacklog(sched.ClassInteractive); math.Abs(got-l.BacklogSeconds) > 1e-9 {
		t.Fatalf("interactive backlog %g != aggregate %g", got, l.BacklogSeconds)
	}
	s.Run()
	for _, l := range rt.Loads() {
		for c, b := range l.ClassBacklogSeconds {
			if b != 0 {
				t.Fatalf("class %d backlog %g after drain", c, b)
			}
		}
	}
}

func TestPolicyByName(t *testing.T) {
	for name, want := range map[string]string{
		"userhash":    "userhash",
		"leastloaded": "leastloaded",
		"affinity":    "affinity",
	} {
		p, err := PolicyByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if p.Name() != want {
			t.Fatalf("PolicyByName(%q).Name() = %q", name, p.Name())
		}
	}
	if _, err := PolicyByName("round-robin"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestDuplicateRequestIDRejected(t *testing.T) {
	var s sim.Sim
	_, engines, chain := testCluster(t, &s, 2)
	rt, err := New(Config{Policy: LeastLoaded{}}, engines...)
	if err != nil {
		t.Fatal(err)
	}
	*chain = rt.Completed
	if err := rt.Submit(mkReq(1, 1, 500)); err != nil {
		t.Fatal(err)
	}
	if err := rt.Submit(mkReq(1, 2, 500)); err == nil {
		t.Fatal("duplicate in-flight request ID accepted")
	}
	s.Run()
	// Once the first completes, the ID may be reused.
	if err := rt.Submit(mkReq(1, 3, 500)); err != nil {
		t.Fatalf("post-completion ID reuse rejected: %v", err)
	}
	s.Run()
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty router accepted")
	}
	if _, err := New(Config{}, nil); err == nil {
		t.Error("nil instance accepted")
	}
	var s sim.Sim
	_, engines, _ := testCluster(t, &s, 1)
	if _, err := New(Config{MaxBacklogSeconds: -1}, engines...); err == nil {
		t.Error("negative backlog bound accepted")
	}
}

// balanceRatio is max/min cumulative routed tokens across instances.
func balanceRatio(rt *Router) float64 {
	minTok, maxTok := int64(math.MaxInt64), int64(0)
	for _, l := range rt.Loads() {
		if l.RoutedTokens < minTok {
			minTok = l.RoutedTokens
		}
		if l.RoutedTokens > maxTok {
			maxTok = l.RoutedTokens
		}
	}
	if minTok <= 0 {
		return math.Inf(1)
	}
	return float64(maxTok) / float64(minTok)
}

// runChurn drives a Zipf-skewed population with users arriving and
// departing (every request scheduled at its Poisson arrival time) through
// the given policy and returns (router, per-instance user sets).
func runChurn(t *testing.T, pol Policy) (*Router, []*countingEngine) {
	t.Helper()
	var s sim.Sim
	wrapped, engines, chain := testCluster(t, &s, 4)
	rt, err := New(Config{Policy: pol}, engines...)
	if err != nil {
		t.Fatal(err)
	}
	*chain = rt.Completed

	ds := workload.Skewed(workload.SkewedConfig{
		Users: 48, Requests: 160, ProfileMean: 1500, ProfileStd: 400,
		ProfileMin: 800, ProfileMax: 2500, Seed: 7,
	})
	arrivals, err := workload.AssignPoissonArrivals(ds, 12, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range arrivals {
		a := a
		s.At(a.Time, func() {
			if err := rt.Submit(a.Req); err != nil {
				t.Errorf("unexpected rejection: %v", err)
			}
		})
	}
	s.Run()
	if rt.InFlight() != 0 {
		t.Fatalf("in-flight after drain: %d", rt.InFlight())
	}
	return rt, wrapped
}

// TestChurnLocalityAndBalance is the user-churn comparison: under the same
// Zipf-skewed arrivals, UserHash must keep every user's requests on one
// instance (prefix locality), while AffinityLoad must keep the cluster
// materially better balanced than the load-blind baseline.
func TestChurnLocalityAndBalance(t *testing.T) {
	rtHash, wrappedHash := runChurn(t, UserHash{})
	for i, w := range wrappedHash {
		for user := range w.users {
			for j, other := range wrappedHash {
				if j != i && other.users[user] > 0 {
					t.Fatalf("userhash: user %d on instances %d and %d", user, i, j)
				}
			}
		}
	}

	rtAff, _ := runChurn(t, AffinityLoad{})
	hashRatio := balanceRatio(rtHash)
	affRatio := balanceRatio(rtAff)
	t.Logf("balance max/min routed tokens: userhash=%.2f affinity=%.2f", hashRatio, affRatio)
	if affRatio >= hashRatio {
		t.Fatalf("affinity balance %.2f not better than userhash %.2f", affRatio, hashRatio)
	}
	const bound = 4.0
	if affRatio > bound {
		t.Fatalf("affinity balance ratio %.2f exceeds bound %.1f on Zipf-skewed load", affRatio, bound)
	}
}
