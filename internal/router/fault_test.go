package router

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/hw"
	"repro/internal/model"
	"repro/internal/sim"
)

// killableCluster builds n unwrapped PrefillOnly instances: unlike
// testCluster there is no counting wrapper, so the engines keep their
// killableEngine surface and Fail works on them.
func killableCluster(t *testing.T, s *sim.Sim, n int) ([]engine.Engine, *func(engine.Record)) {
	t.Helper()
	var chain func(engine.Record)
	cfg := engine.Config{
		Model: model.Llama31_8B(), GPU: hw.L4(), Sim: s, ProfileMaxLen: 4000,
		OnComplete: func(rec engine.Record) {
			if chain != nil {
				chain(rec)
			}
		},
	}
	engines := make([]engine.Engine, n)
	for i := range engines {
		e, err := core.New(cfg, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		engines[i] = e
	}
	return engines, &chain
}

// TestFailOrphansAndRetiresID: Fail must return every request routed to
// the instance and not yet completed, remove the instance immediately
// (no drain), retire its ID, and leave the survivor able to absorb the
// re-submitted orphans.
func TestFailOrphansAndRetiresID(t *testing.T) {
	var s sim.Sim
	engines, chain := killableCluster(t, &s, 2)
	rt, err := New(Config{Policy: LeastLoaded{}}, engines...)
	if err != nil {
		t.Fatal(err)
	}
	*chain = rt.Completed

	for i := int64(1); i <= 12; i++ {
		if err := rt.Submit(mkReq(i, int(i), 800)); err != nil {
			t.Fatal(err)
		}
	}
	victim := rt.InstanceInfos()[0]
	if victim.Load.QueuedRequests == 0 {
		t.Fatal("victim has no in-flight work; LeastLoaded should have spread 12 requests")
	}
	orphans, err := rt.Fail(victim.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(orphans) != victim.Load.QueuedRequests {
		t.Fatalf("Fail returned %d orphans, victim had %d in flight", len(orphans), victim.Load.QueuedRequests)
	}
	if rt.Has(victim.ID) {
		t.Error("failed instance still registered")
	}
	if rt.Size() != 1 || rt.Routable() != 1 {
		t.Fatalf("size %d routable %d after crash, want 1/1", rt.Size(), rt.Routable())
	}
	for _, r := range orphans {
		if err := rt.Submit(r); err != nil {
			t.Fatalf("re-admitting orphan %d: %v", r.ID, err)
		}
	}
	s.Run()
	if rt.InFlight() != 0 {
		t.Fatalf("in-flight %d after the survivor drained", rt.InFlight())
	}
	// The crashed ID is retired: growing the cluster mints a fresh one.
	added := addInstance(t, &s, rt)
	_ = added
	for _, info := range rt.InstanceInfos() {
		if info.ID == victim.ID {
			t.Fatalf("crashed ID %d was reused", victim.ID)
		}
	}
}

// TestLastRoutableCrashShedsTyped: crashing the last routable instance
// must not panic, and a subsequent submit is shed with the typed
// no-capacity reject rather than an untyped error.
func TestLastRoutableCrashShedsTyped(t *testing.T) {
	var s sim.Sim
	engines, chain := killableCluster(t, &s, 2)
	rt, err := New(Config{}, engines...)
	if err != nil {
		t.Fatal(err)
	}
	*chain = rt.Completed

	for _, info := range rt.InstanceInfos() {
		if _, err := rt.Fail(info.ID); err != nil {
			t.Fatal(err)
		}
	}
	if rt.Routable() != 0 || rt.Size() != 0 {
		t.Fatalf("routable %d size %d after failing everything, want 0/0", rt.Routable(), rt.Size())
	}
	err = rt.Submit(mkReq(1, 1, 300))
	var rej *RejectError
	if !errors.As(err, &rej) {
		t.Fatalf("submit into an empty pool returned %v, want *RejectError", err)
	}
	if rej.Reason != ReasonNoCapacity {
		t.Errorf("reject reason %q, want %q", rej.Reason, ReasonNoCapacity)
	}
	if !strings.Contains(err.Error(), "no routable instances") {
		t.Errorf("reject message %q lost the no-capacity phrasing", err.Error())
	}
}

// TestCondemnBlocksUndrain: a drained instance revives, a condemned one
// (spot preemption notice) does not — the autoscaler's revive-first
// scale-up path must fall through to a cold start.
func TestCondemnBlocksUndrain(t *testing.T) {
	var s sim.Sim
	engines, chain := killableCluster(t, &s, 2)
	rt, err := New(Config{}, engines...)
	if err != nil {
		t.Fatal(err)
	}
	*chain = rt.Completed
	id := rt.InstanceInfos()[0].ID

	if err := rt.Drain(id); err != nil {
		t.Fatal(err)
	}
	if err := rt.Undrain(id); err != nil {
		t.Fatalf("undraining a merely drained instance: %v", err)
	}
	if err := rt.Drain(id); err != nil {
		t.Fatal(err)
	}
	if err := rt.Condemn(id); err != nil {
		t.Fatal(err)
	}
	err = rt.Undrain(id)
	if err == nil {
		t.Fatal("undrained a condemned instance")
	}
	if !strings.Contains(err.Error(), "condemned") {
		t.Errorf("undrain error %q does not mention condemnation", err.Error())
	}
	if err := rt.Condemn(12345); err == nil {
		t.Error("condemned an unknown instance")
	}
}
