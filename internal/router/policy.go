package router

import (
	"fmt"

	"repro/internal/sched"
)

// View exposes the router's live state to a routing policy. Peeking a
// hit length walks one hash chain against one instance's cache, so
// policies should only peek the instances they actually score.
type View interface {
	// Instances returns the instance count (always >= 1).
	Instances() int
	// Load returns instance i's live load.
	Load(i int) Load
	// HitTokens estimates the request's prefix-cache hit length on
	// instance i without disturbing LRU order.
	HitTokens(i int, r *sched.Request) int
	// EstSeconds estimates the request's execution seconds on instance i
	// given hit cached tokens.
	EstSeconds(i int, r *sched.Request, hit int) float64
}

// Policy picks the instance a request is routed to.
type Policy interface {
	// Name identifies the policy in metrics and experiment output.
	Name() string
	// Pick returns the chosen instance index in [0, v.Instances()).
	Pick(r *sched.Request, v View) int
}

// PolicyByName resolves a policy from its configuration string.
func PolicyByName(name string) (Policy, error) {
	switch name {
	case "userhash":
		return UserHash{}, nil
	case "leastloaded":
		return LeastLoaded{}, nil
	case "affinity":
		return AffinityLoad{}, nil
	default:
		return nil, fmt.Errorf("router: unknown policy %q (want userhash, leastloaded or affinity)", name)
	}
}

// hashUser avalanches a user ID (splitmix64 finalizer) so that sequential
// IDs spread across instances instead of striping.
func hashUser(userID int) uint64 {
	z := uint64(userID) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// homeOf returns the user's hash-affinity home instance.
func homeOf(userID, n int) int { return int(hashUser(userID) % uint64(n)) }

// UserHash is the paper's §7.1 baseline for ablation: every request of a
// user goes to a fixed instance determined by hashing the user ID. Unlike
// internal/cluster's first-appearance round-robin it keeps no per-user
// state, so it scales to millions of users, but it is load-blind: a hot
// user or a long prompt swamps its home instance while neighbors idle.
type UserHash struct{}

// Name implements Policy.
func (UserHash) Name() string { return "userhash" }

// Pick implements Policy.
func (UserHash) Pick(r *sched.Request, v View) int { return homeOf(r.UserID, v.Instances()) }

// LeastLoaded routes every request to the instance with the smallest
// estimated backlog, ignoring prefix-cache affinity. It balances perfectly
// but scatters a user's requests, recomputing their shared prefix on every
// instance it touches.
type LeastLoaded struct{}

// Name implements Policy.
func (LeastLoaded) Name() string { return "leastloaded" }

// Pick implements Policy.
func (LeastLoaded) Pick(r *sched.Request, v View) int { return leastLoaded(v) }

// leastLoaded returns the instance with the smallest backlog, breaking
// ties on queued tokens and then on index (determinism for tests).
func leastLoaded(v View) int {
	best := 0
	for i := 1; i < v.Instances(); i++ {
		li, lb := v.Load(i), v.Load(best)
		if li.BacklogSeconds < lb.BacklogSeconds ||
			(li.BacklogSeconds == lb.BacklogSeconds && li.QueuedTokens < lb.QueuedTokens) {
			best = i
		}
	}
	return best
}

// DefaultSpillFactor is AffinityLoad's hysteresis: the home instance's
// projected completion must exceed this multiple of the alternative's
// before the policy abandons prefix locality. A factor of 1 (greedy
// per-request optimization) thrashes at sustained load: every transient
// queue imbalance triggers a spill, the spilled request recomputes its
// prefix on the cold instance, and that extra work deepens the very
// queues that caused the spill. Requiring a 2x gap keeps uniform traffic
// pinned to its home (matching the UserHash baseline) while still
// shedding from an instance a hot user has persistently swamped.
const DefaultSpillFactor = 2.0

// AffinityLoad is power-of-two-choices between the request's prefix-cache
// affinity candidate (the user's hash home, where its prefix is most
// likely cached) and the least-loaded instance. Each candidate is scored
// by projected completion: estimated backlog plus the request's estimated
// execution at that candidate's peeked prefix-cache hit length — i.e. hit
// length rewards the score exactly by the execution seconds it saves,
// and backlog penalizes it. The home instance wins until its projected
// completion exceeds SpillFactor times the alternative's, which bounds
// how far a hot user can skew the cluster without sacrificing locality
// on balanced traffic.
type AffinityLoad struct {
	// SpillFactor overrides DefaultSpillFactor when positive.
	SpillFactor float64
}

// Name implements Policy.
func (AffinityLoad) Name() string { return "affinity" }

// Pick implements Policy.
func (a AffinityLoad) Pick(r *sched.Request, v View) int {
	aff := affinityCandidate(r, v)
	alt := leastLoaded(v)
	if aff == alt {
		return aff
	}
	factor := a.SpillFactor
	if factor <= 0 {
		factor = DefaultSpillFactor
	}
	score := func(i int) float64 {
		return v.Load(i).BacklogSeconds + v.EstSeconds(i, r, v.HitTokens(i, r))
	}
	if score(aff) > factor*score(alt) {
		return alt
	}
	return aff
}

// minAffinityHitFrac is the fraction of a request's length a peeked hit
// must reach before it can pull the request away from its hash home.
// Workloads share a small cross-user template preamble, so without a
// threshold the first instance to cache anything would show a (tiny)
// positive hit for every user and attract the entire population. A
// real per-user profile hit covers most of the request; one eighth
// cleanly separates the two.
const minAffinityHitFrac = 1.0 / 8

// affinityCandidate is the instance whose cache serves the request best:
// the longest significant peeked prefix hit, ties broken by smaller
// backlog, defaulting to the user's hash home. When no instance holds a
// significant prefix (a new user, or one whose cache was evicted
// everywhere), it is the hash home, so cold users behave exactly like
// UserHash. Tracking the cache rather than only the static home lets a
// spilled user migrate: after one recompute on the spill target, its
// warm cache — not the swamped home — attracts the user's subsequent
// requests.
func affinityCandidate(r *sched.Request, v View) int {
	home := homeOf(r.UserID, v.Instances())
	minHit := int(minAffinityHitFrac * float64(r.Len()))
	best, bestHit := home, 0
	if h := v.HitTokens(home, r); h >= minHit {
		bestHit = h
	}
	for i := 0; i < v.Instances(); i++ {
		if i == home {
			continue
		}
		hit := v.HitTokens(i, r)
		if hit < minHit {
			continue
		}
		// Home wins exact ties (strict comparisons) so cold and evenly
		// cached traffic stays put.
		if hit > bestHit ||
			(hit == bestHit && bestHit > 0 && v.Load(i).BacklogSeconds < v.Load(best).BacklogSeconds) {
			best, bestHit = i, hit
		}
	}
	return best
}
