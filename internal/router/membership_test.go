package router

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/hw"
	"repro/internal/model"
	"repro/internal/sim"
)

// addInstance grows a test cluster by one wrapped instance.
func addInstance(t *testing.T, s *sim.Sim, rt *Router) *countingEngine {
	t.Helper()
	cfg := engine.Config{
		Model: model.Llama31_8B(), GPU: hw.L4(), Sim: s, ProfileMaxLen: 4000,
		OnComplete: rt.Completed,
	}
	e, err := core.New(cfg, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	w := &countingEngine{Engine: e}
	if _, err := rt.AddInstance(w); err != nil {
		t.Fatal(err)
	}
	return w
}

// TestUserHashRemapsOnMembershipChange checks UserHash stays a pure
// function of (user, routable count): adding an instance remaps part of
// the population onto it, and every request still lands on the user's
// recomputed hash home.
func TestUserHashRemapsOnMembershipChange(t *testing.T) {
	var s sim.Sim
	wrapped, engines, chain := testCluster(t, &s, 3)
	rt, err := New(Config{Policy: UserHash{}}, engines...)
	if err != nil {
		t.Fatal(err)
	}
	*chain = rt.Completed

	const users = 60
	id := int64(0)
	submitAll := func() {
		for user := 0; user < users; user++ {
			id++
			if err := rt.Submit(mkReq(id, user, 300)); err != nil {
				t.Fatal(err)
			}
		}
		s.Run()
	}
	submitAll()
	for i, w := range wrapped {
		for user := range w.users {
			if home := homeOf(user, 3); home != i {
				t.Fatalf("user %d on instance %d, want hash home %d of 3", user, i, home)
			}
		}
	}

	added := addInstance(t, &s, rt)
	if rt.Routable() != 4 {
		t.Fatalf("routable %d after add, want 4", rt.Routable())
	}
	before := make([]map[int]int, len(wrapped))
	for i, w := range wrapped {
		before[i] = make(map[int]int, len(w.users))
		for u, n := range w.users {
			before[i][u] = n
		}
	}
	submitAll()
	// Every user's new request must land on its recomputed home of 4.
	all := append(append([]*countingEngine{}, wrapped...), added)
	for i, w := range all {
		for user, n := range w.users {
			delta := n
			if i < len(before) {
				delta -= before[i][user]
			}
			if delta == 0 {
				continue
			}
			if home := homeOf(user, 4); home != i {
				t.Fatalf("user %d on instance %d after add, want hash home %d of 4", user, i, home)
			}
		}
	}
	if len(added.users) == 0 {
		t.Fatal("no users remapped onto the added instance")
	}
	remapped := 0
	for user := 0; user < users; user++ {
		if homeOf(user, 3) != homeOf(user, 4) {
			remapped++
		}
	}
	// Modulo placement remaps ~3/4 of users on 3→4 (not consistent
	// hashing); the test pins the policy's actual contract.
	if remapped == 0 || remapped == users {
		t.Fatalf("3->4 remapped %d of %d users; want a proper subset", remapped, users)
	}
}

// TestPoliciesNeverPickDraining checks no policy routes to a draining
// instance, including AffinityLoad when the draining instance holds the
// user's warm prefix cache.
func TestPoliciesNeverPickDraining(t *testing.T) {
	var s sim.Sim
	wrapped, engines, chain := testCluster(t, &s, 2)
	rt, err := New(Config{Policy: AffinityLoad{}}, engines...)
	if err != nil {
		t.Fatal(err)
	}
	*chain = rt.Completed

	user := 3
	home := homeOf(user, 2)
	// Warm the user's prefix on its home instance.
	if err := rt.Submit(mkPostReq(1, user, 1500, 500)); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if wrapped[home].users[user] != 1 {
		t.Fatalf("warm request not on home instance %d", home)
	}

	// Drain the warm home: even with a cached prefix there, affinity must
	// not offer it.
	infos := rt.InstanceInfos()
	if err := rt.Drain(infos[home].ID); err != nil {
		t.Fatal(err)
	}
	for id := int64(2); id <= 9; id++ {
		if err := rt.Submit(mkPostReq(id, user, 1500, 500)); err != nil {
			t.Fatal(err)
		}
	}
	s.Run()
	if got := wrapped[home].users[user]; got != 1 {
		t.Fatalf("draining warm home received %d new requests", got-1)
	}
	if got := wrapped[1-home].users[user]; got != 8 {
		t.Fatalf("surviving instance received %d of 8 post-drain requests", got)
	}

	// Same contract for the load-driven policies on a fresh view.
	for _, pol := range []Policy{LeastLoaded{}, UserHash{}} {
		rt.cfg.Policy = pol
		start := wrapped[home].tokens
		for id := int64(10); id <= 29; id++ {
			if err := rt.Submit(mkReq(id*100+int64(len(pol.Name())), int(id), 400)); err != nil {
				t.Fatal(err)
			}
		}
		s.Run()
		if wrapped[home].tokens != start {
			t.Fatalf("%s routed tokens to a draining instance", pol.Name())
		}
	}
}

// TestInstanceIDsNeverReused checks stable-ID safety across add/drain/
// remove cycles: IDs grow monotonically, removed IDs never come back, and
// in-flight request accounting survives membership churn.
func TestInstanceIDsNeverReused(t *testing.T) {
	var s sim.Sim
	_, engines, chain := testCluster(t, &s, 2)
	rt, err := New(Config{Policy: LeastLoaded{}}, engines...)
	if err != nil {
		t.Fatal(err)
	}
	*chain = rt.Completed

	seen := make(map[int]bool)
	for _, info := range rt.InstanceInfos() {
		if seen[info.ID] {
			t.Fatalf("duplicate initial instance ID %d", info.ID)
		}
		seen[info.ID] = true
	}
	id := int64(0)
	for cycle := 0; cycle < 4; cycle++ {
		w := addInstance(t, &s, rt)
		var newID int
		found := false
		for _, info := range rt.InstanceInfos() {
			if seen[info.ID] {
				continue
			}
			if found {
				t.Fatalf("two unseen IDs after one add (cycle %d)", cycle)
			}
			newID, found = info.ID, true
		}
		if !found {
			t.Fatalf("cycle %d: added instance has a recycled ID", cycle)
		}
		seen[newID] = true

		// Route work through the grown cluster, then drain and remove the
		// newcomer mid-flight: removal must wait for its queue.
		for i := 0; i < 9; i++ {
			id++
			if err := rt.Submit(mkReq(id, int(id), 600)); err != nil {
				t.Fatal(err)
			}
		}
		if err := rt.Drain(newID); err != nil {
			t.Fatal(err)
		}
		if w.users != nil && len(w.users) > 0 {
			if err := rt.Remove(newID); err == nil {
				t.Fatalf("cycle %d: removed an instance with in-flight work", cycle)
			}
		}
		s.Run()
		if drained, err := rt.Drained(newID); err != nil || !drained {
			t.Fatalf("cycle %d: not drained after run (err %v)", cycle, err)
		}
		if err := rt.Remove(newID); err != nil {
			t.Fatalf("cycle %d: remove: %v", cycle, err)
		}
		if rt.Size() != 2 {
			t.Fatalf("cycle %d: size %d, want 2", cycle, rt.Size())
		}
	}
	if rt.InFlight() != 0 {
		t.Fatalf("in-flight %d after churn", rt.InFlight())
	}
	for _, l := range rt.Loads() {
		if l.QueuedRequests != 0 || l.BacklogSeconds != 0 {
			t.Fatalf("leaked load after churn: %+v", l)
		}
	}
}

// TestRemoveGuards checks Remove refuses live and unknown instances and
// Submit fails cleanly when everything is draining.
func TestRemoveGuards(t *testing.T) {
	var s sim.Sim
	_, engines, chain := testCluster(t, &s, 2)
	rt, err := New(Config{}, engines...)
	if err != nil {
		t.Fatal(err)
	}
	*chain = rt.Completed
	infos := rt.InstanceInfos()

	if err := rt.Remove(infos[0].ID); err == nil {
		t.Error("removed a non-draining instance")
	}
	if err := rt.Remove(12345); err == nil {
		t.Error("removed an unknown instance")
	}
	if err := rt.Drain(12345); err == nil {
		t.Error("drained an unknown instance")
	}
	for _, info := range infos {
		if err := rt.Drain(info.ID); err != nil {
			t.Fatal(err)
		}
	}
	err = rt.Submit(mkReq(1, 1, 200))
	if err == nil || !strings.Contains(err.Error(), "no routable instances") {
		t.Errorf("submit with all draining: %v", err)
	}
}
