package router

import (
	"testing"

	"repro/internal/sched"
)

// benchView is a fixed-state View: the benchmark isolates the policy's own
// decision cost (score arithmetic, candidate scan) from cache walks, whose
// cost belongs to the kvcache benchmarks.
type benchView struct {
	loads []Load
	hits  []int
}

func (v *benchView) Instances() int  { return len(v.loads) }
func (v *benchView) Load(i int) Load { return v.loads[i] }
func (v *benchView) HitTokens(i int, r *sched.Request) int {
	return v.hits[i]
}
func (v *benchView) EstSeconds(i int, r *sched.Request, hit int) float64 {
	return float64(r.Len()-hit) * 1e-6
}

// BenchmarkRouterPick measures the per-request decision cost of each
// routing policy on an 8-instance view. The routing decision sits on every
// submit of every routed experiment, so it must stay allocation-free
// (-benchmem pins 0 allocs/op for all three policies).
func BenchmarkRouterPick(b *testing.B) {
	const instances = 8
	v := &benchView{
		loads: make([]Load, instances),
		hits:  make([]int, instances),
	}
	for i := range v.loads {
		v.loads[i] = Load{
			QueuedRequests: i,
			QueuedTokens:   int64(i) * 4096,
			BacklogSeconds: float64(i) * 0.25,
		}
		// One warm instance: the affinity scan has a real candidate to
		// weigh against the least-loaded alternative.
		if i == 3 {
			v.hits[i] = 3000
		}
	}
	r := &sched.Request{ID: 1, UserID: 42, Tokens: make([]uint64, 3200)}
	for _, pol := range []Policy{UserHash{}, LeastLoaded{}, AffinityLoad{}} {
		b.Run(pol.Name(), func(b *testing.B) {
			b.ReportAllocs()
			sink := 0
			for i := 0; i < b.N; i++ {
				sink += pol.Pick(r, v)
			}
			if sink < 0 {
				b.Fatal("impossible")
			}
		})
	}
}
