package chaos_test

import (
	"testing"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/hw"
	"repro/internal/model"
	"repro/internal/router"
	"repro/internal/sched"
	"repro/internal/sim"
)

// cluster builds n PrefillOnly instances on one sim behind a router.
func cluster(t *testing.T, s *sim.Sim, n int) *router.Router {
	t.Helper()
	var rt *router.Router
	cfg := engine.Config{
		Model: model.Llama31_8B(), GPU: hw.L4(), Sim: s, ProfileMaxLen: 4000,
		OnComplete: func(rec engine.Record) { rt.Completed(rec) },
	}
	engines := make([]engine.Engine, n)
	for i := range engines {
		e, err := core.New(cfg, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		engines[i] = e
	}
	var err error
	rt, err = router.New(router.Config{}, engines...)
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

func mkReq(id int64, user, tokens int) *sched.Request {
	toks := make([]uint64, tokens)
	for i := range toks {
		toks[i] = uint64(user)<<32 | uint64(i)
	}
	return &sched.Request{ID: id, UserID: user, Tokens: toks}
}

// TestDisabledInjectorIsNil: a config with no fault kind yields the nil
// injector, whose every method is an inert no-op — it schedules nothing,
// so a wired failure-free run is the same event sequence as an unwired
// one.
func TestDisabledInjectorIsNil(t *testing.T) {
	var s sim.Sim
	rt := cluster(t, &s, 2)
	inj := chaos.New(chaos.Config{Seed: 7}, &s, rt, chaos.Options{})
	if inj != nil {
		t.Fatalf("New with no fault kind returned %v, want nil", inj)
	}
	if inj.Enabled() {
		t.Error("nil injector reports Enabled")
	}
	before := s.Pending()
	inj.Start()
	if got := s.Pending(); got != before {
		t.Fatalf("nil Start scheduled events: pending %d -> %d", before, got)
	}
	if st := inj.Stats(); st != (chaos.Stats{}) {
		t.Fatalf("nil Stats() = %+v, want zero", st)
	}
}

// TestNilInjectorZeroAlloc pins the disabled injector's cost on the
// event hot path: consulting it per event (the wiring pattern) must not
// allocate, so chaos support is free when it is off.
func TestNilInjectorZeroAlloc(t *testing.T) {
	var inj *chaos.Injector
	allocs := testing.AllocsPerRun(1000, func() {
		inj.Start()
		_ = inj.Enabled()
		_ = inj.Stats()
	})
	if allocs != 0 {
		t.Fatalf("nil injector allocated %.1f times per event, want 0", allocs)
	}
}

// chaosStats runs a faulted scenario once and returns the injector's
// stats plus the count of completions.
func chaosStats(t *testing.T, cfg chaos.Config) (chaos.Stats, int, int) {
	t.Helper()
	var s sim.Sim
	rt := cluster(t, &s, 3)
	shed := 0
	inj := chaos.New(cfg, &s, rt, chaos.Options{
		OnShed: func(r *sched.Request, rej *router.RejectError) {
			if rej.Reason == "" {
				t.Errorf("shed of request %d carries no reason", r.ID)
			}
			shed++
		},
	})
	if !inj.Enabled() {
		t.Fatal("injector disabled")
	}
	for i := 0; i < 48; i++ {
		if err := rt.Submit(mkReq(int64(i+1), i%6, 2000)); err != nil {
			t.Fatal(err)
		}
	}
	inj.Start()
	s.Run()
	return inj.Stats(), shed, rt.InFlight()
}

// TestFaultsReplayByteIdentically: the injector is a pure function of
// its config — two runs of the same seeded scenario produce identical
// fault schedules, orphan fates and recovery stats.
func TestFaultsReplayByteIdentically(t *testing.T) {
	cfg := chaos.Config{
		Seed:           5,
		CrashRate:      0.05,
		StragglerRate:  0.05,
		PreemptRate:    0.02,
		HorizonSeconds: 40,
		RetryBudget:    1,
	}
	st1, shed1, _ := chaosStats(t, cfg)
	st2, shed2, _ := chaosStats(t, cfg)
	if st1 != st2 {
		t.Fatalf("same config, different stats:\nrun 1: %+v\nrun 2: %+v", st1, st2)
	}
	if shed1 != shed2 {
		t.Fatalf("same config, different shed counts: %d vs %d", shed1, shed2)
	}
	if st1.Faults() == 0 {
		t.Fatal("scenario injected no faults; raise the rates or the horizon")
	}
}

// TestOrphanAccounting: every orphaned request is either re-admitted or
// shed, and every shed splits into retry-budget vs re-admission-reject.
func TestOrphanAccounting(t *testing.T) {
	cfg := chaos.Config{
		Seed:           11,
		CrashRate:      0.2,
		HorizonSeconds: 30,
		RetryBudget:    1,
	}
	st, shed, inflight := chaosStats(t, cfg)
	if st.Crashes == 0 || st.Orphaned == 0 {
		t.Fatalf("scenario produced no orphans: %+v", st)
	}
	if st.Orphaned != st.Rerouted+st.Shed {
		t.Fatalf("orphaned %d != rerouted %d + shed %d", st.Orphaned, st.Rerouted, st.Shed)
	}
	if st.Shed != st.ShedRetries+st.ShedRejected {
		t.Fatalf("shed %d != retries %d + rejected %d", st.Shed, st.ShedRetries, st.ShedRejected)
	}
	if uint64(shed) != st.Shed {
		t.Fatalf("OnShed fired %d times, stats say %d", shed, st.Shed)
	}
	if inflight != 0 {
		t.Fatalf("in-flight %d after the run drained", inflight)
	}
}
