// Package chaos is the deterministic fault injector: it schedules
// instance crashes, slow-node stragglers and spot preemptions as events
// on the sim clock, and drives the recovery machinery the rest of the
// repository provides — router.Fail re-admits orphaned requests through
// admission under a per-request retry budget, and the autoscaler
// cold-starts catalog-priced replacements for lost capacity.
//
// Determinism: every fault time comes from a seeded exponential-gap
// stream (sim.Poisson) and every victim from a seeded generator, both
// dedicated per fault kind, so a chaos-enabled run replays exactly for a
// given Config. Faults must be scheduled on a kernel's coordinator clock
// (engine.Kernel.Clock()): crash and preemption events mutate engine and
// router state across instances, which is cross-shard work, so the
// sharded kernel executes them at barriers — a faulted run is
// byte-identical serial vs sharded.
//
// The disabled injector is a nil *Injector: New returns nil when no
// fault kind is enabled, and every method no-ops on a nil receiver
// (enforced by prefillvet's nilguard), so a failure-free run stays
// bit-identical to one without this package wired at all.
package chaos

import (
	"math/rand"

	"repro/internal/autoscale"
	"repro/internal/router"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/timeseries"
	"repro/internal/trace"
)

// Fault labels: stable strings for traces and metrics (constants, so
// emission never builds a string).
const (
	// LabelCrash is an instance crash: in-flight and queued requests
	// orphaned, device and host-tier cache lost, instance removed with
	// its ID retired.
	LabelCrash = "crash"
	// LabelStraggler is a slow-node onset: the instance's cost model
	// prices every pass SlowFactor× slower until the episode ends.
	LabelStraggler = "straggler"
	// LabelStragglerEnd marks the end of a straggler episode (trace
	// only; not a fault in the counters).
	LabelStragglerEnd = "straggler-end"
	// LabelPreemptNotice is a spot preemption notice: the instance is
	// drained and condemned (it can never be revived).
	LabelPreemptNotice = "preempt-notice"
	// LabelPreemptKill is the preemption deadline expiring on a not-yet-
	// released instance: a forced kill of whatever hasn't finished.
	LabelPreemptKill = "preempt-kill"
)

// Labels lists the fault labels that count as faults, in metrics order.
func Labels() []string {
	return []string{LabelCrash, LabelStraggler, LabelPreemptNotice, LabelPreemptKill}
}

// Config parameterizes the injector. A kind is enabled by a positive
// rate; with every rate zero New returns a nil (disabled) injector.
type Config struct {
	// Seed drives the fault-time and victim-choice streams. Each fault
	// kind derives its own independent substream, so enabling one kind
	// does not perturb another's schedule.
	Seed int64
	// CrashRate is instance crashes per simulated second (Poisson).
	CrashRate float64
	// StragglerRate is slow-node onsets per simulated second.
	StragglerRate float64
	// SlowFactor is the straggler speed multiplier (>1 is slower;
	// default 4).
	SlowFactor float64
	// StragglerSeconds is the straggler episode length (default 30).
	StragglerSeconds float64
	// PreemptRate is spot preemption notices per simulated second.
	PreemptRate float64
	// NoticeSeconds is the preemption drain deadline: notice → forced
	// kill of whatever hasn't finished (default 30).
	NoticeSeconds float64
	// RetryBudget is how many times an orphaned request may be
	// re-admitted before it is shed with reason "orphan-retries"
	// (default 3; negative means 0 — orphans are shed outright).
	RetryBudget int
	// HorizonSeconds bounds fault injection: no fault fires after this
	// sim time. Batch runs must set it (the natural choice is the last
	// arrival time) — with no horizon a fault stream re-arms while any
	// event is pending, and two periodic loops (the stream and the
	// autoscaler tick, say) each keep the other's next event pending
	// forever, so the run never drains. Zero means unbounded, which is
	// only for online servers whose tick loops are deliberately
	// KeepAlive.
	HorizonSeconds float64
	// RecoveryCheckSeconds is the granularity at which recovery times
	// are measured after a kill fault (default 1).
	RecoveryCheckSeconds float64
	// RecoveryTimeoutSeconds caps how long a kill fault is tracked for
	// recovery (default 600). An entry that outlives it counts as
	// Unrecovered — and the cap is what lets the recovery checker (a
	// periodic loop of its own) terminate when the pool never restores.
	RecoveryTimeoutSeconds float64
}

func (c *Config) defaults() {
	if c.SlowFactor <= 0 {
		c.SlowFactor = 4
	}
	if c.StragglerSeconds <= 0 {
		c.StragglerSeconds = 30
	}
	if c.NoticeSeconds <= 0 {
		c.NoticeSeconds = 30
	}
	switch {
	case c.RetryBudget < 0:
		c.RetryBudget = 0
	case c.RetryBudget == 0:
		c.RetryBudget = 3
	}
	if c.RecoveryCheckSeconds <= 0 {
		c.RecoveryCheckSeconds = 1
	}
	if c.RecoveryTimeoutSeconds <= 0 {
		c.RecoveryTimeoutSeconds = 600
	}
}

// Enabled reports whether any fault kind is configured.
func (c Config) Enabled() bool {
	return c.CrashRate > 0 || c.StragglerRate > 0 || c.PreemptRate > 0
}

// Options wires the injector's hooks. All fields are optional.
type Options struct {
	// Controller, when non-nil, has lost capacity reported to it
	// (GPU-seconds accounting); its floor-restore and backlog signals do
	// the actual re-provisioning.
	Controller *autoscale.Controller
	// Tracer receives fault instants (nil-safe).
	Tracer *trace.Recorder
	// Timeseries receives per-window fault/orphan counts (nil-safe).
	Timeseries *timeseries.Collector
	// OnShed is called for every orphaned request dropped instead of
	// re-admitted — retry budget exhausted (reason "orphan-retries") or
	// re-admission rejected (the admission reason). The run driver
	// answers the request's waiter / tallies the shed.
	OnShed func(r *sched.Request, rej *router.RejectError)
}

// Stats is the injector's cumulative activity.
type Stats struct {
	// Crashes, Stragglers, PreemptNotices and PreemptKills count fault
	// events by kind (a preemption that misses its deadline counts one
	// notice and one kill).
	Crashes, Stragglers, PreemptNotices, PreemptKills uint64
	// Orphaned counts requests orphaned by kill faults; Rerouted the
	// ones re-admitted through admission; Shed the ones dropped.
	// Orphaned == Rerouted + Shed.
	Orphaned, Rerouted, Shed uint64
	// ShedRetries is the Shed share dropped for an exhausted retry
	// budget; ShedRejected the share whose re-admission was rejected.
	ShedRetries, ShedRejected uint64
	// Recoveries counts kill faults after which the routable pool
	// returned to its pre-fault size; RecoverySecondsTotal sums the
	// observed recovery times (measured at RecoveryCheckSeconds
	// granularity) and MaxRecoverySeconds is the worst one. Unrecovered
	// counts kill faults whose tracking hit RecoveryTimeoutSeconds.
	Recoveries           uint64
	Unrecovered          uint64
	RecoverySecondsTotal float64
	MaxRecoverySeconds   float64
}

// Faults returns the total fault events across kinds.
func (s Stats) Faults() uint64 {
	return s.Crashes + s.Stragglers + s.PreemptNotices + s.PreemptKills
}

// ByLabel returns the fault count of one label (0 for unknown labels).
func (s Stats) ByLabel(label string) uint64 {
	switch label {
	case LabelCrash:
		return s.Crashes
	case LabelStraggler:
		return s.Stragglers
	case LabelPreemptNotice:
		return s.PreemptNotices
	case LabelPreemptKill:
		return s.PreemptKills
	}
	return 0
}

// MeanRecoverySeconds returns the mean measured recovery time (0 when
// no recovery completed).
func (s Stats) MeanRecoverySeconds() float64 {
	if s.Recoveries == 0 {
		return 0
	}
	return s.RecoverySecondsTotal / float64(s.Recoveries)
}

// recovery tracks one kill fault until the routable pool is back to its
// pre-fault size.
type recovery struct {
	start  float64
	target int
}

// stream is one fault kind's seeded schedule: exponential gaps between
// events and a dedicated victim-choice generator.
type stream struct {
	in      *Injector
	label   string
	gap     *sim.Poisson
	victims *rand.Rand
	armed   bool
}

// Injector schedules fault events on the sim clock. A nil *Injector is
// the disabled injector: every method is a nil-guarded no-op, so wiring
// code passes it unconditionally (enforced by prefillvet's nilguard).
//
//prefill:niltolerant
type Injector struct {
	cfg   Config
	clock sim.Clock
	rt    *router.Router
	opts  Options

	streams    []*stream
	recovering []recovery
	checking   bool

	stats Stats
}

// New builds an injector over a running router, scheduling on clock —
// which must be the kernel's coordinator clock in sharded runs. It
// returns nil (the disabled injector) when cfg enables no fault kind.
func New(cfg Config, clock sim.Clock, rt *router.Router, opts Options) *Injector {
	if !cfg.Enabled() {
		return nil
	}
	cfg.defaults()
	in := &Injector{cfg: cfg, clock: clock, rt: rt, opts: opts}
	// Independent substreams per kind: fault gaps at seed+k, victim
	// choice at seed+16+k (arbitrary fixed offsets; what matters is that
	// they are distinct and derived only from the config seed).
	mk := func(label string, rate float64, k int64) {
		if rate <= 0 {
			return
		}
		in.streams = append(in.streams, &stream{
			in:      in,
			label:   label,
			gap:     sim.NewPoisson(rate, cfg.Seed+k),
			victims: rand.New(rand.NewSource(cfg.Seed + 16 + k)),
		})
	}
	mk(LabelCrash, cfg.CrashRate, 0)
	mk(LabelStraggler, cfg.StragglerRate, 1)
	mk(LabelPreemptNotice, cfg.PreemptRate, 2)
	return in
}

// Enabled reports whether the injector is live.
func (in *Injector) Enabled() bool { return in != nil }

// Stats returns the injector's activity so far.
func (in *Injector) Stats() Stats {
	if in == nil {
		return Stats{}
	}
	return in.stats
}

// Start arms every fault stream that is not already ticking. Idempotent;
// call it whenever work is submitted (the streams park when the event
// queue drains, mirroring the trace sampler's re-arm discipline).
func (in *Injector) Start() {
	if in == nil {
		return
	}
	for _, st := range in.streams {
		if !st.armed {
			st.armed = true
			st.rearm()
		}
	}
}

// streamFire is the fault streams' fast-path event callback.
func streamFire(arg any) {
	st := arg.(*stream)
	st.fire()
	st.rearm()
}

// rearm schedules the stream's next fault. With a horizon, the stream
// runs unconditionally until the horizon and then stops for good; with
// none (online servers) it follows the sampler discipline — re-arm only
// while other events are pending — and Start revives it on new work.
func (st *stream) rearm() {
	in := st.in
	gap := st.gap.Next()
	if in.cfg.HorizonSeconds > 0 {
		if in.clock.Now()+gap <= in.cfg.HorizonSeconds {
			in.clock.AfterFunc(gap, streamFire, st)
		} else {
			st.armed = false
		}
		return
	}
	if in.clock.Pending() > 0 {
		in.clock.AfterFunc(gap, streamFire, st)
	} else {
		st.armed = false
	}
}

// fire injects one fault of the stream's kind on a victim drawn from the
// routable pool (no routable instance: the fault lands on nothing).
func (st *stream) fire() {
	in := st.in
	infos := in.rt.InstanceInfos()
	candidates := candidateIDs(infos)
	if len(candidates) == 0 {
		return
	}
	victim := candidates[st.victims.Intn(len(candidates))]
	switch st.label {
	case LabelCrash:
		in.stats.Crashes++
		in.kill(victim, LabelCrash)
	case LabelStraggler:
		in.straggle(victim)
	case LabelPreemptNotice:
		in.preempt(victim)
	}
}

// candidateIDs collects the routable instance IDs in slot order.
func candidateIDs(infos []router.InstanceInfo) []int {
	ids := make([]int, 0, len(infos))
	for _, info := range infos {
		if !info.Draining {
			ids = append(ids, info.ID)
		}
	}
	return ids
}

// kill force-removes an instance (crash, or preemption deadline): the
// engine is killed, lost capacity is reported, and every orphan is
// re-admitted through admission under the retry budget.
func (in *Injector) kill(id int, label string) {
	now := in.clock.Now()
	gpus := 0
	for _, info := range in.rt.InstanceInfos() {
		if info.ID == id {
			gpus = info.GPUs
			break
		}
	}
	orphans, err := in.rt.Fail(id)
	if err != nil {
		return
	}
	in.opts.Timeseries.Fault(now)
	in.opts.Tracer.Fault(now, label, id, len(orphans), in.rt.Routable())
	if in.opts.Controller != nil {
		in.opts.Controller.InstanceLost(now, gpus)
		in.noteFault(now)
	}
	in.stats.Orphaned += uint64(len(orphans))
	for _, r := range orphans {
		r.Retries++
		if r.Retries > in.cfg.RetryBudget {
			in.shed(now, r, &router.RejectError{
				Policy:   in.rt.Policy().Name(),
				Instance: -1,
				Class:    r.Class,
				Reason:   router.ReasonOrphanRetries,
			})
			in.stats.ShedRetries++
			continue
		}
		if err := in.rt.Submit(r); err != nil {
			rej, ok := err.(*router.RejectError)
			if !ok {
				rej = &router.RejectError{Policy: in.rt.Policy().Name(), Instance: -1,
					Class: r.Class, Reason: router.ReasonNoCapacity}
			}
			in.shed(now, r, rej)
			in.stats.ShedRejected++
			continue
		}
		in.stats.Rerouted++
		in.opts.Timeseries.OrphanRerouted(now)
	}
}

// shed drops an orphan: counters, timeseries, and the driver's hook.
func (in *Injector) shed(now float64, r *sched.Request, rej *router.RejectError) {
	in.stats.Shed++
	in.opts.Timeseries.OrphanShed(now)
	if in.opts.OnShed != nil {
		in.opts.OnShed(r, rej)
	}
}

// speedEngine is satisfied by engines with a straggler speed knob
// (engine.Serial has one).
type speedEngine interface {
	SetSpeedFactor(factor float64)
}

// straggle starts a straggler episode on an instance: its cost model
// prices SlowFactor× slower until the episode ends. Episodes on an
// instance that crashes mid-way end harmlessly (the engine is gone from
// the router but the knob still exists).
func (in *Injector) straggle(id int) {
	eng, err := in.rt.EngineOf(id)
	if err != nil {
		return
	}
	se, ok := eng.(speedEngine)
	if !ok {
		return
	}
	now := in.clock.Now()
	in.stats.Stragglers++
	in.opts.Timeseries.Fault(now)
	in.opts.Tracer.Fault(now, LabelStraggler, id, 0, in.rt.Routable())
	se.SetSpeedFactor(in.cfg.SlowFactor)
	in.clock.After(in.cfg.StragglerSeconds, func() {
		se.SetSpeedFactor(1)
		in.opts.Tracer.Fault(in.clock.Now(), LabelStragglerEnd, id, 0, in.rt.Routable())
	})
}

// preempt delivers a spot preemption notice: the instance drains and is
// condemned (Undrain fails, so the autoscaler's revive path falls
// through to a cold start), and a deadline event forces a kill of
// whatever hasn't been released by then.
func (in *Injector) preempt(id int) {
	if err := in.rt.Drain(id); err != nil {
		return
	}
	// Drain succeeded, so the instance exists; Condemn cannot fail.
	_ = in.rt.Condemn(id)
	now := in.clock.Now()
	in.stats.PreemptNotices++
	in.opts.Timeseries.Fault(now)
	in.opts.Tracer.Fault(now, LabelPreemptNotice, id, 0, in.rt.Routable())
	in.clock.After(in.cfg.NoticeSeconds, func() {
		if !in.rt.Has(id) {
			// Drained and released within the notice: graceful preemption.
			return
		}
		in.stats.PreemptKills++
		in.kill(id, LabelPreemptKill)
	})
}

// noteFault registers a kill fault for recovery tracking: the fault is
// recovered when the routable pool is back to its pre-fault size. Only
// autoscaled runs track recovery (a fixed fleet cannot re-provision).
func (in *Injector) noteFault(now float64) {
	// Routable() is the post-fault size; the pre-fault target is one more.
	in.recovering = append(in.recovering, recovery{start: now, target: in.rt.Routable() + 1})
	if !in.checking && in.clock.Pending() > 0 {
		in.checking = true
		in.clock.AfterFunc(in.cfg.RecoveryCheckSeconds, recoveryTick, in)
	}
}

// recoveryTick is the recovery checker's fast-path event callback.
func recoveryTick(arg any) { arg.(*Injector).checkRecovery() }

// checkRecovery resolves outstanding recoveries and re-arms while any
// remain (and the run is still live).
func (in *Injector) checkRecovery() {
	now := in.clock.Now()
	routable := in.rt.Routable()
	keep := in.recovering[:0]
	for _, rec := range in.recovering {
		if routable >= rec.target {
			in.stats.Recoveries++
			d := now - rec.start
			in.stats.RecoverySecondsTotal += d
			if d > in.stats.MaxRecoverySeconds {
				in.stats.MaxRecoverySeconds = d
			}
			continue
		}
		if now-rec.start >= in.cfg.RecoveryTimeoutSeconds {
			// The pool never restored (ceiling reached, factory failed, or
			// the run wound down): give up so the checker — itself a
			// periodic loop — can park and let the run drain.
			in.stats.Unrecovered++
			continue
		}
		keep = append(keep, rec)
	}
	in.recovering = keep
	if len(in.recovering) > 0 && in.clock.Pending() > 0 {
		in.clock.AfterFunc(in.cfg.RecoveryCheckSeconds, recoveryTick, in)
	} else {
		in.checking = false
	}
}
