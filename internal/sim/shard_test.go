package sim

import (
	"math"
	"runtime"
	"testing"
)

// --- lookahead safety ---

// TestShardNeverExecutesPastWindowBound pins the sharded kernel's safety
// invariant: runWindow drains strictly below the coordinator's bound and
// leaves everything else queued, even when executed events keep scheduling
// more work near the bound.
func TestShardNeverExecutesPastWindowBound(t *testing.T) {
	p := NewSharded(2, 1.0)
	sh := p.Shard(0)

	var fired []float64
	const bound = 2.0
	var chain func()
	chain = func() {
		fired = append(fired, sh.Now())
		sh.After(0.3, chain)
	}
	sh.At(0.1, chain)
	sh.At(2.0, func() { fired = append(fired, sh.Now()) }) // exactly at the bound
	sh.At(2.5, func() { fired = append(fired, sh.Now()) })

	sh.runWindow(bound)

	if len(fired) == 0 {
		t.Fatal("window executed nothing")
	}
	for _, tm := range fired {
		if tm >= bound {
			t.Fatalf("shard executed an event at %v, at or past the window bound %v", tm, bound)
		}
	}
	// 0.1, 0.4, ..., 1.9 = 7 events; the 2.0 and 2.5 events and the 2.2
	// reschedule must still be queued.
	if len(fired) != 7 {
		t.Fatalf("window executed %d events, want 7", len(fired))
	}
	if got := sh.heap.len(); got != 3 {
		t.Fatalf("%d events left queued after the window, want 3", got)
	}
	if sh.now >= bound {
		t.Fatalf("shard clock %v advanced to/past the bound %v", sh.now, bound)
	}
}

func TestPostInsideLookaheadPanics(t *testing.T) {
	p := NewSharded(2, 0.5)
	sh := p.Shard(1)
	defer func() {
		if recover() == nil {
			t.Fatal("Post inside the lookahead window did not panic")
		}
	}()
	sh.Post(0.4999, func(any) {}, nil) // now=0, lookahead=0.5
}

func TestPostAtExactLookaheadIsAccepted(t *testing.T) {
	p := NewSharded(2, 0.5)
	ran := false
	p.Shard(0).Post(0.5, func(any) { ran = true }, nil)
	if end := p.Run(); end != 0.5 {
		t.Fatalf("final time %v, want 0.5", end)
	}
	if !ran {
		t.Fatal("setup-time Post was stranded in the outbox")
	}
}

func TestShardedConstructionValidation(t *testing.T) {
	for _, tc := range []struct {
		name string
		fn   func()
	}{
		{"zero shards", func() { NewSharded(0, 1) }},
		{"zero lookahead", func() { NewSharded(2, 0) }},
		{"negative lookahead", func() { NewSharded(2, -1) }},
		{"infinite lookahead", func() { NewSharded(2, math.Inf(1)) }},
		{"shard past scheduling", func() {
			p := NewSharded(1, 1)
			p.Shard(0).now = 5
			p.Shard(0).AtFunc(4, func(any) {}, nil)
		}},
		{"coordinator past scheduling", func() {
			p := NewSharded(1, 1)
			p.now = 5
			p.AtFunc(4, func(any) {}, nil)
		}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", tc.name)
				}
			}()
			tc.fn()
		}()
	}
}

// --- serial-vs-sharded oracle ---

// oracleLookahead is the oracle workload's cross-shard latency: chains
// fire no faster than every 0.1s, and posts target now + exactly the
// lookahead.
const oracleLookahead = 0.05

// oracleChain is a self-rescheduling chain bound to one clock, the test
// analogue of an engine instance: every postEvery-th firing notifies the
// coordinator, which schedules a reply back onto the chain's clock.
type oracleChain struct {
	app       *oracleApp
	clock     Clock
	post      func(t float64, fn Func, arg any)
	id        int
	dt        float64
	remaining int
	fired     int
	postEvery int
	fireTimes []float64
	replies   []float64
}

type oracleNote struct {
	chain int
	time  float64
}

// oracleApp is the coordinator-side shared state.
type oracleApp struct {
	coord  Clock
	chains []*oracleChain
	log    []oracleNote
}

func oracleFire(arg any) {
	c := arg.(*oracleChain)
	now := c.clock.Now()
	c.fireTimes = append(c.fireTimes, now)
	c.fired++
	c.remaining--
	if c.fired%c.postEvery == 0 {
		c.post(now+oracleLookahead, oracleNoteFn, c)
	}
	if c.remaining > 0 {
		c.clock.AfterFunc(c.dt, oracleFire, c)
	}
}

// oracleNoteFn runs on the coordinator: log the notification and reply
// onto the sender's clock (a router-dispatch-shaped interaction).
func oracleNoteFn(arg any) {
	c := arg.(*oracleChain)
	now := c.app.coord.Now()
	c.app.log = append(c.app.log, oracleNote{chain: c.id, time: now})
	c.clock.AtFunc(now+0.01, oracleReply, c)
}

func oracleReply(arg any) {
	c := arg.(*oracleChain)
	c.replies = append(c.replies, c.clock.Now())
}

// buildOracle wires the chain population onto a kernel. shards == 0 means
// the serial kernel.
func buildOracle(chains, steps, shards int) (*oracleApp, func() float64, func() uint64) {
	app := &oracleApp{}
	var run func() float64
	var executed func() uint64
	var clockFor func(i int) (Clock, func(t float64, fn Func, arg any))

	if shards == 0 {
		s := &Sim{}
		app.coord = s
		run = s.Run
		executed = s.Executed
		clockFor = func(int) (Clock, func(t float64, fn Func, arg any)) { return s, s.AtFunc }
	} else {
		p := NewSharded(shards, oracleLookahead)
		app.coord = p
		run = p.Run
		executed = p.Executed
		clockFor = func(i int) (Clock, func(t float64, fn Func, arg any)) {
			sh := p.Shard(i % shards)
			return sh, sh.Post
		}
	}

	const phi = 0.6180339887498949
	for i := 0; i < chains; i++ {
		clock, post := clockFor(i)
		c := &oracleChain{
			app:       app,
			clock:     clock,
			post:      post,
			id:        i,
			dt:        0.1 + math.Mod(float64(i)*phi, 1)*0.05,
			remaining: steps,
			postEvery: 7,
		}
		app.chains = append(app.chains, c)
		clock.AtFunc(math.Mod(float64(i)*phi*phi, 1)*0.05, oracleFire, c)
	}
	return app, run, executed
}

// TestShardedMatchesSerialOracle drives the same seeded chain workload —
// shard-local self-scheduling, cross-shard posts, coordinator replies back
// onto shard clocks — through the serial kernel and the sharded kernel at
// 1, 2 and 8 shards, requiring identical event-level observations
// everywhere: per-chain firing times, coordinator log order, reply times,
// final clock, and total executed events.
func TestShardedMatchesSerialOracle(t *testing.T) {
	const chains, steps = 24, 40
	ref, runRef, execRef := buildOracle(chains, steps, 0)
	refEnd := runRef()
	refExec := execRef()
	if len(ref.log) == 0 {
		t.Fatal("oracle workload produced no coordinator notifications")
	}

	for _, shards := range []int{1, 2, 8} {
		app, run, exec := buildOracle(chains, steps, shards)
		end := run()
		if end != refEnd {
			t.Errorf("shards=%d: final time %v, serial %v", shards, end, refEnd)
		}
		if got := exec(); got != refExec {
			t.Errorf("shards=%d: executed %d events, serial %d", shards, got, refExec)
		}
		if len(app.log) != len(ref.log) {
			t.Fatalf("shards=%d: %d coordinator notes, serial %d", shards, len(app.log), len(ref.log))
		}
		for i := range app.log {
			if app.log[i] != ref.log[i] {
				t.Fatalf("shards=%d: note %d = %+v, serial %+v", shards, i, app.log[i], ref.log[i])
			}
		}
		for i, c := range app.chains {
			rc := ref.chains[i]
			if len(c.fireTimes) != len(rc.fireTimes) || len(c.replies) != len(rc.replies) {
				t.Fatalf("shards=%d chain %d: %d fires/%d replies, serial %d/%d",
					shards, i, len(c.fireTimes), len(c.replies), len(rc.fireTimes), len(rc.replies))
			}
			for j := range c.fireTimes {
				if c.fireTimes[j] != rc.fireTimes[j] {
					t.Fatalf("shards=%d chain %d fire %d at %v, serial %v",
						shards, i, j, c.fireTimes[j], rc.fireTimes[j])
				}
			}
			for j := range c.replies {
				if c.replies[j] != rc.replies[j] {
					t.Fatalf("shards=%d chain %d reply %d at %v, serial %v",
						shards, i, j, c.replies[j], rc.replies[j])
				}
			}
		}
	}
}

// TestShardedExecutedAndPending pins the merged counters: Executed sums
// the coordinator and every shard exactly, and Pending reports the whole
// run's queue from any clock.
func TestShardedExecutedAndPending(t *testing.T) {
	p := NewSharded(3, 0.5)
	total := 0
	for i := 0; i < 3; i++ {
		sh := p.Shard(i)
		for k := 0; k < 4; k++ {
			sh.AtFunc(float64(k)+float64(i)*0.1, func(any) {}, nil)
			total++
		}
	}
	p.AtFunc(1.5, func(any) {}, nil)
	total++
	if got := p.Pending(); got != total {
		t.Fatalf("Pending() = %d before Run, want %d", got, total)
	}
	if got := p.Shard(2).Pending(); got != total {
		t.Fatalf("Shard.Pending() = %d, want the run-wide %d", got, total)
	}
	p.Run()
	if got := p.Pending(); got != 0 {
		t.Fatalf("Pending() = %d after Run, want 0", got)
	}
	if got := p.Executed(); got != uint64(total) {
		t.Fatalf("Executed() = %d, want %d", got, total)
	}
	var perShard uint64
	for i := 0; i < 3; i++ {
		perShard += p.Shard(i).Executed()
	}
	if perShard != uint64(total-1) {
		t.Fatalf("shard-local executed sum = %d, want %d", perShard, total-1)
	}
}

// TestShardNowFollowsCoordinator pins Shard.Now's max(local, coordinator)
// semantics: a coordinator event scheduling onto an idle shard must see
// the coordinator's time, not the shard's stale clock.
func TestShardNowFollowsCoordinator(t *testing.T) {
	p := NewSharded(2, 1.0)
	var seen float64
	p.At(3.0, func() {
		seen = p.Shard(1).Now()
		p.Shard(1).AfterFunc(0.5, func(any) {}, nil)
	})
	p.Run()
	if seen != 3.0 {
		t.Fatalf("idle shard's Now() = %v during a coordinator event at 3.0", seen)
	}
	if end := p.Now(); end != 3.5 {
		t.Fatalf("final time %v, want 3.5", end)
	}
}

// --- zero-alloc discipline ---

// allocChain is the steady-state workload: package-level callback, reused
// payload, a cross-shard post every 256 firings.
type allocChain struct {
	sh        *Shard
	remaining int
	fired     int
}

func allocChainStep(arg any) {
	c := arg.(*allocChain)
	if c.remaining <= 0 {
		return
	}
	c.remaining--
	c.fired++
	if c.fired%256 == 0 {
		c.sh.Post(c.sh.Now()+1, allocNote, c)
	}
	c.sh.AfterFunc(0.5, allocChainStep, c)
}

func allocNote(any) {}

// TestShardedSteadyStateZeroAlloc pins the per-shard zero-alloc
// discipline: once heaps and outboxes are warm, a sharded run's
// allocations are dominated by the per-Run worker spawn (a handful of
// channels and goroutines), not by events. Measured via MemStats because
// the run is multi-goroutine.
func TestShardedSteadyStateZeroAlloc(t *testing.T) {
	const shards, chains, steps = 4, 32, 2000
	p := NewSharded(shards, 0.75)
	pop := func() []*allocChain {
		base := p.Now()
		cs := make([]*allocChain, chains)
		for i := range cs {
			sh := p.Shard(i % shards)
			cs[i] = &allocChain{sh: sh, remaining: steps}
			sh.AtFunc(base+float64(i)*0.001, allocChainStep, cs[i])
		}
		return cs
	}
	pop()
	p.Run() // warm heaps, outboxes, and the merge path

	before := p.Executed()
	pop()
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	p.Run()
	runtime.ReadMemStats(&m1)
	events := p.Executed() - before
	if events == 0 {
		t.Fatal("no events executed")
	}
	perEvent := float64(m1.Mallocs-m0.Mallocs) / float64(events)
	if perEvent > 0.01 {
		t.Fatalf("sharded steady state allocates %.4f/event over %d events (want <= 0.01)",
			perEvent, events)
	}
}
