package sim

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestEventsRunInTimeOrder(t *testing.T) {
	var s Sim
	var got []float64
	for _, at := range []float64{3, 1, 2, 1.5} {
		at := at
		s.At(at, func() { got = append(got, at) })
	}
	end := s.Run()
	if !sort.Float64sAreSorted(got) {
		t.Fatalf("events out of order: %v", got)
	}
	if end != 3 {
		t.Fatalf("final time = %v, want 3", end)
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	var s Sim
	var got []int
	for i := 0; i < 5; i++ {
		i := i
		s.At(1.0, func() { got = append(got, i) })
	}
	s.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("tie-break not FIFO: %v", got)
		}
	}
}

func TestEventsCanScheduleEvents(t *testing.T) {
	var s Sim
	fired := 0
	s.At(1, func() {
		s.After(1, func() { fired++ })
	})
	s.Run()
	if fired != 1 || s.Now() != 2 {
		t.Fatalf("fired=%d now=%v", fired, s.Now())
	}
}

func TestPastSchedulingPanics(t *testing.T) {
	var s Sim
	s.At(5, func() {})
	s.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	s.At(1, func() {})
}

func TestRunUntil(t *testing.T) {
	var s Sim
	fired := []float64{}
	for _, at := range []float64{1, 2, 3, 4} {
		at := at
		s.At(at, func() { fired = append(fired, at) })
	}
	s.RunUntil(2.5)
	if len(fired) != 2 {
		t.Fatalf("fired %v, want events at 1 and 2 only", fired)
	}
	if s.Now() != 2.5 {
		t.Fatalf("now = %v, want 2.5", s.Now())
	}
	if s.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", s.Pending())
	}
}

func TestPoissonMeanRate(t *testing.T) {
	p := NewPoisson(10, 42)
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += p.Next()
	}
	mean := sum / n
	if math.Abs(mean-0.1) > 0.005 {
		t.Fatalf("mean inter-arrival = %v, want ~0.1", mean)
	}
}

func TestPoissonDeterministic(t *testing.T) {
	a := NewPoisson(5, 7).ArrivalTimes(0, 100)
	b := NewPoisson(5, 7).ArrivalTimes(0, 100)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different arrivals")
		}
	}
	c := NewPoisson(5, 8).ArrivalTimes(0, 100)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical arrivals")
	}
}

func TestPoissonArrivalsIncreasing(t *testing.T) {
	f := func(seed int64) bool {
		times := NewPoisson(3, seed).ArrivalTimes(1.0, 50)
		prev := 1.0
		for _, tt := range times {
			if tt <= prev {
				return false
			}
			prev = tt
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPoissonRejectsBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero rate accepted")
		}
	}()
	NewPoisson(0, 1)
}
