package sim

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestEventsRunInTimeOrder(t *testing.T) {
	var s Sim
	var got []float64
	for _, at := range []float64{3, 1, 2, 1.5} {
		at := at
		s.At(at, func() { got = append(got, at) })
	}
	end := s.Run()
	if !sort.Float64sAreSorted(got) {
		t.Fatalf("events out of order: %v", got)
	}
	if end != 3 {
		t.Fatalf("final time = %v, want 3", end)
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	var s Sim
	var got []int
	for i := 0; i < 5; i++ {
		i := i
		s.At(1.0, func() { got = append(got, i) })
	}
	s.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("tie-break not FIFO: %v", got)
		}
	}
}

func TestEventsCanScheduleEvents(t *testing.T) {
	var s Sim
	fired := 0
	s.At(1, func() {
		s.After(1, func() { fired++ })
	})
	s.Run()
	if fired != 1 || s.Now() != 2 {
		t.Fatalf("fired=%d now=%v", fired, s.Now())
	}
}

func TestPastSchedulingPanics(t *testing.T) {
	var s Sim
	s.At(5, func() {})
	s.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	s.At(1, func() {})
}

func TestRunUntil(t *testing.T) {
	var s Sim
	fired := []float64{}
	for _, at := range []float64{1, 2, 3, 4} {
		at := at
		s.At(at, func() { fired = append(fired, at) })
	}
	s.RunUntil(2.5)
	if len(fired) != 2 {
		t.Fatalf("fired %v, want events at 1 and 2 only", fired)
	}
	if s.Now() != 2.5 {
		t.Fatalf("now = %v, want 2.5", s.Now())
	}
	if s.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", s.Pending())
	}
}

func TestPoissonMeanRate(t *testing.T) {
	p := NewPoisson(10, 42)
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += p.Next()
	}
	mean := sum / n
	if math.Abs(mean-0.1) > 0.005 {
		t.Fatalf("mean inter-arrival = %v, want ~0.1", mean)
	}
}

func TestPoissonDeterministic(t *testing.T) {
	a := NewPoisson(5, 7).ArrivalTimes(0, 100)
	b := NewPoisson(5, 7).ArrivalTimes(0, 100)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different arrivals")
		}
	}
	c := NewPoisson(5, 8).ArrivalTimes(0, 100)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical arrivals")
	}
}

func TestPoissonArrivalsIncreasing(t *testing.T) {
	f := func(seed int64) bool {
		times := NewPoisson(3, seed).ArrivalTimes(1.0, 50)
		prev := 1.0
		for _, tt := range times {
			if tt <= prev {
				return false
			}
			prev = tt
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPoissonRejectsBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero rate accepted")
		}
	}()
	NewPoisson(0, 1)
}

// --- fast path (AtFunc/AfterFunc) semantics ---

// counter is a fast-path payload; bump is its package-level callback.
type counter struct{ fired int }

func bump(arg any) { arg.(*counter).fired++ }

func TestFastPathInterleavesWithClosures(t *testing.T) {
	var s Sim
	var order []string
	c := &counter{}
	s.At(2, func() { order = append(order, "closure@2") })
	s.AtFunc(1, func(arg any) { order = append(order, "fast@1"); bump(arg) }, c)
	s.AfterFunc(3, func(arg any) { order = append(order, "fast@3"); bump(arg) }, c)
	s.Run()
	if c.fired != 2 {
		t.Fatalf("fired = %d, want 2", c.fired)
	}
	want := []string{"fast@1", "closure@2", "fast@3"}
	for i, w := range want {
		if order[i] != w {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestFastPathTieBreaksFIFOWithClosures(t *testing.T) {
	var s Sim
	var got []int
	for i := 0; i < 6; i++ {
		i := i
		if i%2 == 0 {
			s.AtFunc(1.0, func(any) { got = append(got, i) }, nil)
		} else {
			s.At(1.0, func() { got = append(got, i) })
		}
	}
	s.Run()
	if len(got) != 6 {
		t.Fatalf("fired %d of 6 events: %v", len(got), got)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("mixed-path tie-break not FIFO: %v", got)
		}
	}
}

func TestNilCallbackPanics(t *testing.T) {
	var s Sim
	defer func() {
		if recover() == nil {
			t.Fatal("nil callback accepted")
		}
	}()
	s.AtFunc(1, nil, nil)
}

// --- backing-array retention (ringbuf discipline) ---

// The heap's backing array must shrink back toward minEventCap after a
// deep burst drains: retaining the peak-depth array would pin memory
// proportional to the largest burst ever queued, the same defect class as
// the `q = q[1:]` retention family.
func TestHeapShrinksAfterDrain(t *testing.T) {
	var s Sim
	c := &counter{}
	const depth = 4096
	for i := 0; i < depth; i++ {
		s.AtFunc(float64(i), bump, c)
	}
	if peak := cap(s.heap.events); peak < depth {
		t.Fatalf("cap %d below pending depth %d", peak, depth)
	}
	s.Run()
	if c.fired != depth {
		t.Fatalf("fired %d of %d", c.fired, depth)
	}
	if cap(s.heap.events) > 2*minEventCap {
		t.Fatalf("backing array holds %d slots after drain, want <= %d",
			cap(s.heap.events), 2*minEventCap)
	}
}

// Sustained schedule-one/run-one churn must keep the backing array at the
// floor: capacity tracks live depth, not event history.
func TestHeapBoundedUnderSustainedChurn(t *testing.T) {
	var s Sim
	c := &counter{}
	const n = 200_000
	for i := 0; i < n; i++ {
		s.AtFunc(float64(i), bump, c)
		s.RunUntil(float64(i))
	}
	if c.fired != n {
		t.Fatalf("fired %d of %d", c.fired, n)
	}
	if cap(s.heap.events) > 2*minEventCap {
		t.Fatalf("backing array holds %d slots after %d churned events", cap(s.heap.events), n)
	}
	// Vacated slots must be zeroed so fired callbacks and payloads are
	// collectable.
	for i := len(s.heap.events); i < cap(s.heap.events); i++ {
		if e := s.heap.events[:cap(s.heap.events)][i]; e.fn != nil || e.arg != nil {
			t.Fatalf("drained heap retains callback/payload at slot %d", i)
		}
	}
}

// --- allocation regression ---

// chain is a self-rescheduling fast-path payload: every firing schedules
// its successor, holding the pending depth constant — the kernel's steady
// state under a serving load.
type chain struct {
	s    *Sim
	step float64
}

func chainStep(arg any) {
	c := arg.(*chain)
	c.s.AfterFunc(c.step, chainStep, c)
}

// Steady-state scheduling through the fast path must not allocate: the
// event heap is value-based and its capacity is already at depth, so an
// event costs one slice store and sift, nothing on the heap. This is the
// ISSUE-5 acceptance pin.
func TestSteadyStateSchedulingZeroAlloc(t *testing.T) {
	var s Sim
	const depth = 32
	for i := 0; i < depth; i++ {
		c := &chain{s: &s, step: 1}
		s.AtFunc(float64(i)/depth, chainStep, c)
	}
	// Warm one window so the backing array reaches its steady capacity.
	deadline := 1.0
	s.RunUntil(deadline)
	allocs := testing.AllocsPerRun(100, func() {
		deadline++
		s.RunUntil(deadline) // fires depth events, schedules depth more
	})
	if allocs != 0 {
		t.Fatalf("steady-state scheduling allocated %.1f times per %d events, want 0", allocs, depth)
	}
}

// BenchmarkSimKernel measures raw kernel event throughput at a constant
// pending depth: the fast path (package-level callback + payload pointer)
// against the closure path (a fresh capturing closure per event, the
// pre-ISSUE-5 idiom). -benchmem shows the fast path at 0 allocs/op.
func BenchmarkSimKernel(b *testing.B) {
	const depth = 64
	b.Run("fastpath", func(b *testing.B) {
		var s Sim
		for i := 0; i < depth; i++ {
			s.AtFunc(float64(i)/depth, chainStep, &chain{s: &s, step: 1})
		}
		b.ReportAllocs()
		b.ResetTimer()
		deadline := 0.0
		for i := 0; i < b.N; i += depth {
			deadline++
			s.RunUntil(deadline)
		}
	})
	b.Run("closure", func(b *testing.B) {
		var s Sim
		var reschedule func()
		reschedule = func() { s.After(1, func() { reschedule() }) }
		for i := 0; i < depth; i++ {
			s.At(float64(i)/depth, reschedule)
		}
		b.ReportAllocs()
		b.ResetTimer()
		deadline := 0.0
		for i := 0; i < b.N; i += depth {
			deadline++
			s.RunUntil(deadline)
		}
	})
}
