package sim

import (
	"fmt"
	"math"
	"sync"
	"time"
)

// ShardedSim executes one simulation across N event shards plus a
// coordinator, using conservative time windows (classic conservative
// parallel discrete-event simulation). The intended partition:
//
//   - Shard events touch exactly one instance: engine pass completions,
//     per-instance queue dispatch, pipeline stage handoffs. Each shard owns
//     its instances' events outright and a per-shard worker drains them.
//   - Coordinator events touch shared state: request arrivals, router
//     decisions, admission, autoscale ticks and cold starts. They execute
//     serially on the coordinator goroutine, exactly like the serial
//     kernel.
//
// The run alternates two phases. While the earliest pending event is a
// coordinator event, coordinator events execute one at a time (shards are
// parked, so the coordinator may freely read engine state and schedule
// onto shard clocks — this is how router dispatch submits to engines).
// Otherwise the coordinator opens a window
//
//	bound = min(next coordinator event, earliest shard event + lookahead)
//
// and every shard executes its own events with time < bound in parallel.
// No shard blocks on another inside a window: lookahead guarantees nothing
// scheduled during the window can land before the bound. Cross-shard sends
// go through Shard.Post, which enforces t >= now + lookahead (panicking on
// violation — a causality bug, the sharded analogue of scheduling in the
// past) and buffers the event in a per-shard outbox. At the window barrier
// the outboxes merge into the coordinator heap in deterministic
// (time, shard, emission) order, then OnBarrier hooks run (e.g. the engine
// layer's completion merge) before the next coordinator event.
//
// Determinism: each shard's events execute in exactly the serial kernel's
// (time, seq) order because a shard's events are totally ordered by its
// own heap regardless of window boundaries. Cross-shard effects are merged
// at barriers in time order, which matches the serial execution order
// whenever event times differ; simultaneous events on *different* shards
// have no serial-observable ordering in this codebase's workloads (float64
// event times collide only by construction, not by arithmetic), so the
// oracle tests require byte-identical results against the serial kernel.
//
// ShardedSim is not goroutine-safe from outside: construction, scheduling
// before Run, and Run itself happen on one goroutine; during Run each
// shard's clock may be used only by the coordinator phase or that shard's
// own events. Workers are spawned per Run and joined before it returns, so
// a drained ShardedSim holds no goroutines.
type ShardedSim struct {
	now       float64
	seq       uint64
	executed  uint64
	heap      eventHeap
	lookahead float64
	shards    []*Shard
	barriers  []func()

	active  []*Shard // per-window scratch, reused
	running bool

	// self-profile (see stats.go): plain counters and fixed arrays, so
	// profiling never allocates and never perturbs event order.
	windows    uint64
	boundCoord uint64
	boundLook  uint64
	widthHist  [NumWidthBuckets]uint64
	stallHist  [NumStallBuckets]uint64

	windowWG sync.WaitGroup
	workerWG sync.WaitGroup
}

// ShardedSim's coordinator implements Clock.
var _ Clock = (*ShardedSim)(nil)

// NewSharded builds a sharded kernel with the given shard count and
// lookahead (seconds). Lookahead must be positive and finite: it is the
// minimum cross-shard latency the workload guarantees (for serving runs,
// derive it from the catalogs' minimum priced pass time — see
// engine.MinEventSeconds), and it bounds window sizes, so it trades
// synchronization frequency against nothing else: correctness is enforced
// by Shard.Post, not by the window size.
func NewSharded(shards int, lookahead float64) *ShardedSim {
	if shards < 1 {
		panic(fmt.Sprintf("sim: shard count must be >= 1, got %d", shards))
	}
	if !(lookahead > 0) || math.IsInf(lookahead, 1) {
		panic(fmt.Sprintf("sim: lookahead must be positive and finite, got %v", lookahead))
	}
	p := &ShardedSim{lookahead: lookahead}
	p.shards = make([]*Shard, shards)
	for i := range p.shards {
		p.shards[i] = &Shard{parent: p, id: i}
	}
	return p
}

// Shards returns the shard count.
func (p *ShardedSim) Shards() int { return len(p.shards) }

// Shard returns shard i's clock. Instances are typically assigned
// round-robin: instance k schedules on Shard(k % Shards()).
func (p *ShardedSim) Shard(i int) *Shard { return p.shards[i] }

// Lookahead returns the kernel's lookahead in seconds.
func (p *ShardedSim) Lookahead() float64 { return p.lookahead }

// OnBarrier registers a hook that runs after every window barrier (outbox
// merge included) and before the next coordinator event, while all shards
// are parked. The engine layer uses it to apply per-shard completion
// buffers to shared state (router accounting, record order) in
// deterministic time order. Hooks run in registration order.
func (p *ShardedSim) OnBarrier(fn func()) {
	if fn == nil {
		panic("sim: nil barrier hook")
	}
	p.barriers = append(p.barriers, fn)
}

// Now returns the coordinator's current simulated time.
func (p *ShardedSim) Now() float64 { return p.now }

// Executed returns the total events executed by the coordinator and every
// shard, merged on read. Each counter is a plain per-shard field — the
// strict phase alternation (coordinator runs only while shards are parked,
// and Executed may be called from coordinator context or after Run) makes
// the merge exact without atomics.
func (p *ShardedSim) Executed() uint64 {
	total := p.executed
	for _, sh := range p.shards {
		total += sh.executed
	}
	return total
}

// AtFunc schedules a coordinator event at absolute time t (zero-alloc
// fast path). Scheduling in the past panics.
func (p *ShardedSim) AtFunc(t float64, fn Func, arg any) {
	if t < p.now {
		panic("sim: event scheduled in the past")
	}
	if fn == nil {
		panic("sim: nil event callback")
	}
	p.seq++
	p.heap.push(event{time: t, seq: p.seq, fn: fn, arg: arg})
}

// AfterFunc schedules a coordinator event d seconds from now (fast path).
func (p *ShardedSim) AfterFunc(d float64, fn Func, arg any) {
	p.AtFunc(p.now+d, fn, arg)
}

// At schedules a coordinator closure at absolute time t.
func (p *ShardedSim) At(t float64, fn func()) { p.AtFunc(t, runClosure, fn) }

// After schedules a coordinator closure d seconds from now.
func (p *ShardedSim) After(d float64, fn func()) { p.AtFunc(p.now+d, runClosure, fn) }

// Pending returns the whole run's queued event count: coordinator heap,
// every shard heap, and any unmerged outbox entries. Matching the serial
// kernel's Pending keeps the autoscaler's and sampler's drain discipline
// ("reschedule only while other events remain") identical on both kernels.
func (p *ShardedSim) Pending() int {
	n := p.heap.len()
	for _, sh := range p.shards {
		n += sh.heap.len() + len(sh.outbox)
	}
	return n
}

// Run executes the simulation to quiescence and returns the final
// simulated time (the time of the last event on any clock, matching the
// serial kernel). Workers are spawned on entry and joined before return.
func (p *ShardedSim) Run() float64 {
	if p.running {
		panic("sim: ShardedSim.Run is not reentrant")
	}
	p.running = true
	defer func() { p.running = false }()

	multi := len(p.shards) > 1
	if multi {
		p.startWorkers()
		defer p.stopWorkers()
	}

	for {
		cmin := p.heap.minTime()
		smin := math.Inf(1)
		for _, sh := range p.shards {
			if len(sh.outbox) > 0 {
				// Posts issued outside a window (setup or coordinator
				// context) merge here so they can never be stranded.
				p.mergeOutboxes()
				cmin = p.heap.minTime()
			}
			if t := sh.heap.minTime(); t < smin {
				smin = t
			}
		}
		if math.IsInf(cmin, 1) && math.IsInf(smin, 1) {
			break
		}
		if cmin <= smin {
			// Coordinator phase: shards are parked, shared state is safe.
			e := p.heap.pop()
			p.now = e.time
			p.executed++
			e.fn(e.arg)
			continue
		}

		// Window phase: every shard drains its events in [smin, bound).
		bound := smin + p.lookahead
		if cmin < bound {
			bound = cmin
			p.boundCoord++
		} else {
			p.boundLook++
		}
		p.windows++
		p.widthHist[widthBucket((bound-smin)/p.lookahead)]++
		p.active = p.active[:0]
		for _, sh := range p.shards {
			if sh.heap.minTime() < bound {
				p.active = append(p.active, sh)
				sh.windows++
			}
		}
		if !multi || len(p.active) == 1 {
			// A single active shard (or a 1-shard kernel) runs inline on
			// the coordinator goroutine: same semantics, no handoff cost,
			// and by definition no barrier stall.
			for _, sh := range p.active {
				sh.runTimedWindow(bound)
			}
		} else {
			// The coordinator signals the other active shards, runs the
			// first one itself, then waits at the barrier. Channel send /
			// WaitGroup wait establish the happens-before edges in both
			// directions, so shard state needs no atomics.
			//prefill:allow(simdeterminism): barrier-stall profiling; wall time is observed, never fed back into event order
			start := time.Now()
			p.windowWG.Add(len(p.active) - 1)
			for _, sh := range p.active[1:] {
				sh.work <- bound
			}
			p.active[0].runTimedWindow(bound)
			p.windowWG.Wait()
			// Per-shard stall: the window's wall duration minus the time
			// the shard itself was busy — how long it sat idle waiting for
			// the slowest shard. lastBusy is safe to read here: the
			// barrier's WaitGroup established the happens-before edge.
			//prefill:allow(simdeterminism): barrier-stall profiling; wall time is observed, never fed back into event order
			wall := uint64(time.Since(start))
			for _, sh := range p.active {
				var stall uint64
				if sh.lastBusy < wall {
					stall = wall - sh.lastBusy
				}
				sh.stallNanos += stall
				p.stallHist[stallBucket(stall)]++
			}
		}

		p.mergeOutboxes()
		for _, fn := range p.barriers {
			fn()
		}
	}

	// Final time: the last event anywhere, as the serial kernel reports.
	for _, sh := range p.shards {
		if sh.now > p.now {
			p.now = sh.now
		}
	}
	return p.now
}

// mergeOutboxes moves every shard's cross-shard sends into the coordinator
// heap. Entries are pushed in (shard id, emission) order with fresh
// coordinator seqs, so the heap's (time, seq) order executes them by
// (time, shard, emission) — deterministic regardless of how the window's
// parallel execution interleaved. Outbox capacity is retained (completion
// of the ringbuf discipline happens via the heap's own shrink on pop).
func (p *ShardedSim) mergeOutboxes() {
	for _, sh := range p.shards {
		for _, o := range sh.outbox {
			if o.time < p.now {
				panic("sim: outbox event merged into the past")
			}
			p.seq++
			p.heap.push(event{time: o.time, seq: p.seq, fn: o.fn, arg: o.arg})
		}
		for i := range sh.outbox {
			sh.outbox[i] = outboxEntry{}
		}
		sh.outbox = sh.outbox[:0]
	}
}

func (p *ShardedSim) startWorkers() {
	for _, sh := range p.shards {
		sh.work = make(chan float64, 1)
		p.workerWG.Add(1)
		go func(sh *Shard) {
			defer p.workerWG.Done()
			for bound := range sh.work {
				sh.runTimedWindow(bound)
				p.windowWG.Done()
			}
		}(sh)
	}
}

func (p *ShardedSim) stopWorkers() {
	for _, sh := range p.shards {
		close(sh.work)
	}
	p.workerWG.Wait()
	for _, sh := range p.shards {
		sh.work = nil
	}
}

// outboxEntry is one buffered cross-shard send.
type outboxEntry struct {
	time float64
	fn   Func
	arg  any
}

// Shard is one shard's clock: a private (time, seq) heap drained by the
// shard's worker during windows. It implements Clock, so an engine built
// against sim.Clock runs on a shard unmodified. All scheduling calls must
// come from the coordinator phase (e.g. router dispatch submitting to an
// engine) or from this shard's own events — never from another shard;
// cross-shard communication goes through Post.
type Shard struct {
	parent   *ShardedSim
	id       int
	now      float64
	seq      uint64
	executed uint64
	heap     eventHeap
	outbox   []outboxEntry
	work     chan float64

	// self-profile (see stats.go). lastBusy is the most recent window's
	// wall duration, written by the shard's executor and read by the
	// coordinator after the barrier (WaitGroup edges order both).
	windows    uint64
	busyNanos  uint64
	stallNanos uint64
	lastBusy   uint64
}

var _ Clock = (*Shard)(nil)

// ID returns the shard index.
func (sh *Shard) ID() int { return sh.id }

// Now returns the shard's current time: its own clock or the
// coordinator's, whichever is ahead. The coordinator's clock leads when a
// coordinator event (a router dispatch) schedules onto a shard that has
// been idle; the shard's own clock leads inside a window, where the
// coordinator is parked at the window's opening time.
func (sh *Shard) Now() float64 {
	if sh.now > sh.parent.now {
		return sh.now
	}
	return sh.parent.now
}

// Executed returns the events this shard has run.
func (sh *Shard) Executed() uint64 { return sh.executed }

// AtFunc schedules a shard-local event at absolute time t (zero-alloc
// fast path). Scheduling in the past panics.
func (sh *Shard) AtFunc(t float64, fn Func, arg any) {
	if t < sh.Now() {
		panic("sim: event scheduled in the past")
	}
	if fn == nil {
		panic("sim: nil event callback")
	}
	sh.seq++
	sh.heap.push(event{time: t, seq: sh.seq, fn: fn, arg: arg})
}

// AfterFunc schedules a shard-local event d seconds from now (fast path).
func (sh *Shard) AfterFunc(d float64, fn Func, arg any) {
	sh.AtFunc(sh.Now()+d, fn, arg)
}

// At schedules a shard-local closure at absolute time t.
func (sh *Shard) At(t float64, fn func()) { sh.AtFunc(t, runClosure, fn) }

// After schedules a shard-local closure d seconds from now.
func (sh *Shard) After(d float64, fn func()) { sh.AtFunc(sh.Now()+d, runClosure, fn) }

// Pending returns the whole run's pending event count (see
// ShardedSim.Pending); a shard-local count would break the drain
// discipline of samplers running against shard clocks.
func (sh *Shard) Pending() int { return sh.parent.Pending() }

// Post schedules a coordinator event from shard context — the only legal
// cross-shard communication during a window. The target time must respect
// the kernel's lookahead (t >= now + lookahead); anything earlier could
// land inside the window another shard is still executing, so it panics as
// a causality violation just like scheduling in the past does. The event
// is buffered in the shard's outbox and merged at the window barrier in
// deterministic (time, shard, emission) order.
func (sh *Shard) Post(t float64, fn Func, arg any) {
	if fn == nil {
		panic("sim: nil event callback")
	}
	if t < sh.Now()+sh.parent.lookahead {
		panic("sim: cross-shard event posted inside the lookahead window")
	}
	sh.outbox = append(sh.outbox, outboxEntry{time: t, fn: fn, arg: arg})
}

// runTimedWindow is runWindow wrapped in the wall-clock busy measurement
// the barrier-stall profile needs.
func (sh *Shard) runTimedWindow(bound float64) {
	//prefill:allow(simdeterminism): shard busy-time profiling; wall time is observed, never fed back into event order
	start := time.Now()
	sh.runWindow(bound)
	//prefill:allow(simdeterminism): shard busy-time profiling; wall time is observed, never fed back into event order
	sh.lastBusy = uint64(time.Since(start))
	sh.busyNanos += sh.lastBusy
}

// runWindow drains the shard's events with time < bound. The strict
// minTime check is the lookahead-safety invariant: a shard never executes
// an event at or past the coordinator's window bound, no matter what its
// events schedule (pinned by TestShardNeverExecutesPastWindowBound).
func (sh *Shard) runWindow(bound float64) {
	for {
		t := sh.heap.minTime()
		if t >= bound {
			return
		}
		e := sh.heap.pop()
		sh.now = e.time
		sh.executed++
		e.fn(e.arg)
	}
}
