package sim

// Kernel self-profiling: cheap counters and fixed-bucket histograms the
// kernels maintain while they run, so the sharded kernel's scaling
// behaviour is explainable from the artifact it produces instead of being
// a single opaque events/sec number. Everything here is a plain integer
// increment or a fixed-array bucket bump — no allocation, no map, nothing
// that could disturb the kernels' zero-alloc discipline or their
// determinism (wall-clock stall measurements observe the run; they never
// feed back into event order).

// NumWidthBuckets is the window-width histogram size. Widths are recorded
// as a fraction of the lookahead (a conservative window is never wider
// than the lookahead), in log2-spaced buckets: <= 1/128 of the lookahead
// up to the full lookahead.
const NumWidthBuckets = 8

// NumStallBuckets is the barrier-stall histogram size. Stalls are wall
// nanoseconds a shard spent idle at a window barrier while other shards
// finished, in log10-spaced buckets from <= 1 microsecond to > 1 second.
const NumStallBuckets = 8

// widthBounds are the window-width bucket upper bounds as fractions of
// the lookahead. The last bucket (1.0) catches full-lookahead windows —
// the widest a conservative window can be.
var widthBounds = [NumWidthBuckets]float64{
	1.0 / 128, 1.0 / 64, 1.0 / 32, 1.0 / 16, 1.0 / 8, 1.0 / 4, 1.0 / 2, 1.0,
}

// stallBounds are the barrier-stall bucket upper bounds in wall
// nanoseconds. The last bucket is effectively +Inf (anything above 1s).
var stallBounds = [NumStallBuckets]float64{
	1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 0, // 0 marks the +Inf bucket
}

// WindowWidthBounds returns the width histogram's upper bounds as
// fractions of the lookahead, ascending.
func WindowWidthBounds() []float64 {
	out := make([]float64, NumWidthBuckets)
	copy(out, widthBounds[:])
	return out
}

// StallBoundsNanos returns the stall histogram's upper bounds in wall
// nanoseconds, ascending; the final bound is 0, meaning unbounded (+Inf).
func StallBoundsNanos() []float64 {
	out := make([]float64, NumStallBuckets)
	copy(out, stallBounds[:])
	return out
}

// widthBucket maps a width/lookahead ratio to its histogram bucket.
func widthBucket(ratio float64) int {
	for i := 0; i < NumWidthBuckets-1; i++ {
		if ratio <= widthBounds[i] {
			return i
		}
	}
	return NumWidthBuckets - 1
}

// stallBucket maps a stall in wall nanoseconds to its histogram bucket.
func stallBucket(nanos uint64) int {
	for i := 0; i < NumStallBuckets-1; i++ {
		if float64(nanos) <= stallBounds[i] {
			return i
		}
	}
	return NumStallBuckets - 1
}

// ShardStats is one shard's profile over a run.
type ShardStats struct {
	// ID is the shard index.
	ID int
	// Events is how many events the shard executed.
	Events uint64
	// Windows is how many windows the shard was active in (had at least
	// one event to execute before the bound).
	Windows uint64
	// BusyNanos is the wall time the shard spent executing its windows.
	BusyNanos uint64
	// StallNanos is the wall time the shard spent idle at window
	// barriers waiting for slower shards (parallel windows only).
	StallNanos uint64
}

// KernelStats is a kernel's self-profile: how its run decomposed into
// coordinator events and conservative windows, how wide those windows
// were, which bound clamped them, and where shards stalled. The serial
// kernel reports a degenerate profile (every event is a coordinator
// event, no windows), so callers can treat both kernels uniformly.
type KernelStats struct {
	// Shards is the shard count (1 for the serial kernel).
	Shards int
	// Lookahead is the kernel's lookahead in sim seconds (0 serial).
	Lookahead float64
	// CoordinatorEvents is how many events ran on the coordinator.
	CoordinatorEvents uint64
	// TotalEvents is CoordinatorEvents plus every shard's events.
	TotalEvents uint64
	// Windows is how many conservative windows the run advanced through.
	Windows uint64
	// BoundCoordinator counts windows whose bound was clamped by the
	// next coordinator event (cmin < smin + lookahead): the coordinator's
	// event stream, not the lookahead, limited parallel progress.
	BoundCoordinator uint64
	// BoundLookahead counts windows that opened to the full lookahead
	// (bound = smin + lookahead): the kernel's best case.
	BoundLookahead uint64
	// WindowWidth is the histogram of (bound - smin) / lookahead over
	// windows, bucket bounds WindowWidthBounds.
	WindowWidth [NumWidthBuckets]uint64
	// BarrierStall is the histogram of per-shard idle time at parallel
	// window barriers in wall nanoseconds, bounds StallBoundsNanos. One
	// observation per active shard per parallel window.
	BarrierStall [NumStallBuckets]uint64
	// ShardStats is the per-shard breakdown, by shard index.
	ShardStats []ShardStats
}

// Stats returns the serial kernel's degenerate profile: every executed
// event is a coordinator event and there are no windows or stalls.
func (s *Sim) Stats() KernelStats {
	return KernelStats{Shards: 1, CoordinatorEvents: s.executed, TotalEvents: s.executed}
}

// Stats returns a snapshot of the sharded kernel's self-profile. Like
// Executed it reads plain per-shard fields, which the strict phase
// alternation makes exact from coordinator context or after Run.
func (p *ShardedSim) Stats() KernelStats {
	st := KernelStats{
		Shards:            len(p.shards),
		Lookahead:         p.lookahead,
		CoordinatorEvents: p.executed,
		TotalEvents:       p.executed,
		Windows:           p.windows,
		BoundCoordinator:  p.boundCoord,
		BoundLookahead:    p.boundLook,
		WindowWidth:       p.widthHist,
		BarrierStall:      p.stallHist,
	}
	st.ShardStats = make([]ShardStats, len(p.shards))
	for i, sh := range p.shards {
		st.ShardStats[i] = ShardStats{
			ID:         sh.id,
			Events:     sh.executed,
			Windows:    sh.windows,
			BusyNanos:  sh.busyNanos,
			StallNanos: sh.stallNanos,
		}
		st.TotalEvents += sh.executed
	}
	return st
}
