package sim

import "testing"

// Kernel self-profile consistency: the stats a run reports must add up
// exactly against the counters the kernels already pin elsewhere —
// profiling that disagrees with the run it describes is worse than none.

// statsWorkload schedules event chains on every shard plus coordinator
// events, so windows get bound by both the coordinator stream and the
// lookahead.
func statsWorkload(p *ShardedSim) int {
	total := 0
	for i := 0; i < p.Stats().Shards; i++ {
		sh := p.Shard(i)
		for k := 0; k < 6; k++ {
			sh.AtFunc(float64(k)*0.7+float64(i)*0.05, func(any) {}, nil)
			total++
		}
	}
	for k := 0; k < 4; k++ {
		p.AtFunc(float64(k)+0.5, func(any) {}, nil)
		total++
	}
	return total
}

// TestKernelStatsConsistency pins the profile's internal arithmetic on a
// sharded run: events decompose exactly into coordinator plus shards,
// every window was clamped by exactly one bound, the width histogram has
// one observation per window, and per-shard window counts never exceed
// the run's.
func TestKernelStatsConsistency(t *testing.T) {
	p := NewSharded(4, 0.5)
	total := statsWorkload(p)
	p.Run()

	st := p.Stats()
	if st.Shards != 4 || st.Lookahead != 0.5 {
		t.Fatalf("profile header wrong: %+v", st)
	}
	if st.TotalEvents != p.Executed() || st.TotalEvents != uint64(total) {
		t.Fatalf("TotalEvents %d, Executed %d, scheduled %d — must all agree",
			st.TotalEvents, p.Executed(), total)
	}
	var shardEvents, shardWindows uint64
	for i, sh := range st.ShardStats {
		if sh.ID != i {
			t.Fatalf("shard %d reports ID %d", i, sh.ID)
		}
		shardEvents += sh.Events
		shardWindows += sh.Windows
		if sh.Windows > st.Windows {
			t.Fatalf("shard %d active in %d windows, run had %d", i, sh.Windows, st.Windows)
		}
	}
	if st.CoordinatorEvents+shardEvents != st.TotalEvents {
		t.Fatalf("coordinator %d + shards %d != total %d",
			st.CoordinatorEvents, shardEvents, st.TotalEvents)
	}
	if shardEvents == 0 {
		t.Fatal("no shard events: the workload never exercised the parallel path")
	}
	if st.Windows == 0 {
		t.Fatal("no windows recorded")
	}
	if st.BoundCoordinator+st.BoundLookahead != st.Windows {
		t.Fatalf("bound counts %d+%d don't partition %d windows",
			st.BoundCoordinator, st.BoundLookahead, st.Windows)
	}
	var widthObs uint64
	for _, n := range st.WindowWidth {
		widthObs += n
	}
	if widthObs != st.Windows {
		t.Fatalf("width histogram holds %d observations, want one per window (%d)",
			widthObs, st.Windows)
	}
	// One stall observation per active shard per parallel window; a
	// window with a single active shard records none. Upper-bound check.
	var stallObs uint64
	for _, n := range st.BarrierStall {
		stallObs += n
	}
	if stallObs > shardWindows {
		t.Fatalf("stall histogram holds %d observations, more than %d shard-window activations",
			stallObs, shardWindows)
	}
}

// TestSerialStatsDegenerate pins the serial kernel's uniform-shape
// profile: everything is a coordinator event, no windows, no stalls.
func TestSerialStatsDegenerate(t *testing.T) {
	s := &Sim{}
	for k := 0; k < 5; k++ {
		s.AtFunc(float64(k), func(any) {}, nil)
	}
	s.Run()
	st := s.Stats()
	if st.Shards != 1 || st.Windows != 0 || st.Lookahead != 0 {
		t.Fatalf("serial profile not degenerate: %+v", st)
	}
	if st.TotalEvents != 5 || st.CoordinatorEvents != 5 {
		t.Fatalf("serial profile counts wrong: %+v", st)
	}
	if len(st.ShardStats) != 0 {
		t.Fatalf("serial profile reports shard stats: %+v", st.ShardStats)
	}
}

// TestStatsBoundsShapes pins the exported bucket-bound helpers the
// experiment exporter serializes next to the histograms.
func TestStatsBoundsShapes(t *testing.T) {
	w := WindowWidthBounds()
	if len(w) != NumWidthBuckets || w[len(w)-1] != 1.0 {
		t.Fatalf("width bounds wrong: %v", w)
	}
	s := StallBoundsNanos()
	if len(s) != NumStallBuckets || s[len(s)-1] != 0 {
		t.Fatalf("stall bounds wrong (last must be the +Inf marker 0): %v", s)
	}
	for i := 1; i < len(w); i++ {
		if w[i] <= w[i-1] {
			t.Fatalf("width bounds not ascending: %v", w)
		}
	}
	for i := 1; i < len(s)-1; i++ {
		if s[i] <= s[i-1] {
			t.Fatalf("stall bounds not ascending: %v", s)
		}
	}
}
