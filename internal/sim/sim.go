// Package sim is a minimal discrete-event simulation kernel: a virtual
// clock, an event heap, and deterministic random processes (Poisson
// arrivals) built on math/rand with explicit seeds.
//
// All engine and workload behaviour in this repository executes against
// this kernel, so every experiment is exactly reproducible — and every
// experiment's wall-clock cost is dominated by this kernel's hot loop.
// The event heap is therefore a value-based binary heap over an []event
// slice: scheduling an event appends into the backing array instead of
// heap-allocating a *event, and popping swaps values in place, so
// steady-state scheduling through the AtFunc/AfterFunc fast path performs
// zero heap allocations per event (pinned by TestSteadyStateSchedulingZeroAlloc).
// The backing array is bounded by the peak pending depth and shrinks when
// the queue drains, following the internal/ringbuf discipline.
//
// The package offers two kernels over the same heap machinery: Sim, the
// serial kernel every experiment ran on historically, and ShardedSim (see
// shard.go), which partitions instance-local events across per-shard
// workers under conservative time windows for parallelism within a single
// fleet-scale run. Code that only schedules and reads the clock accepts
// the Clock interface so it runs unchanged on either kernel.
package sim

import (
	"math"
	"math/rand"
)

// Func is the fast-path event callback: a plain function pointer plus an
// opaque payload. Schedulers on the hot path pass a package-level function
// and a pointer payload so that neither the callback nor the argument
// allocates; the closure-based At/After entry points route through the
// same representation via a trampoline.
type Func func(arg any)

// Clock is the scheduling surface shared by the serial kernel (*Sim), the
// sharded kernel's coordinator (*ShardedSim), and its per-instance shards
// (*Shard). Engines, samplers and controllers program against Clock so the
// same code runs serially or sharded; only run construction picks the
// kernel. Pending is part of the surface because the autoscaler's and
// sampler's termination discipline ("reschedule only while other events
// remain") is clock behaviour, not kernel behaviour.
type Clock interface {
	// Now returns the current simulated time in seconds.
	Now() float64
	// AtFunc schedules fn(arg) at absolute time t (zero-alloc fast path).
	AtFunc(t float64, fn Func, arg any)
	// AfterFunc schedules fn(arg) d seconds from now (fast path).
	AfterFunc(d float64, fn Func, arg any)
	// At schedules a closure at absolute time t.
	At(t float64, fn func())
	// After schedules a closure d seconds from now.
	After(d float64, fn func())
	// Pending returns the number of queued events visible to this clock.
	// On a sharded kernel every clock reports the whole run's pending
	// count, matching what the serial kernel would say.
	Pending() int
}

// event is one scheduled callback, stored by value in the heap slice.
type event struct {
	time float64
	seq  uint64 // FIFO tie-break for simultaneous events
	fn   Func
	arg  any
}

// minEventCap is the smallest backing array kept once the heap has
// allocated (same floor as internal/ringbuf).
const minEventCap = 8

// eventHeap is the value-based min-heap ordered by (time, seq). It is the
// storage both kernels share: the serial Sim owns one, and every shard and
// the sharded coordinator own one each. Methods never allocate beyond the
// backing array's amortized growth.
type eventHeap struct {
	events []event
}

// less orders the heap by (time, seq): earliest first, FIFO on ties.
func (h *eventHeap) less(i, j int) bool {
	a, b := &h.events[i], &h.events[j]
	if a.time != b.time {
		return a.time < b.time
	}
	return a.seq < b.seq
}

// push appends an event and restores the heap invariant. Within the
// backing array's capacity this performs no allocation.
func (h *eventHeap) push(e event) {
	h.events = append(h.events, e)
	i := len(h.events) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.events[i], h.events[parent] = h.events[parent], h.events[i]
		i = parent
	}
}

// pop removes and returns the earliest event. The vacated tail slot is
// zeroed so the callback and payload do not linger reachable through the
// backing array, and the array halves once the pending depth drains below
// a quarter of it (ringbuf discipline: capacity tracks peak depth, not
// history).
func (h *eventHeap) pop() event {
	e := h.events[0]
	n := len(h.events) - 1
	h.events[0] = h.events[n]
	h.events[n] = event{}
	h.events = h.events[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && h.less(r, l) {
			m = r
		}
		if !h.less(m, i) {
			break
		}
		h.events[i], h.events[m] = h.events[m], h.events[i]
		i = m
	}
	if c := cap(h.events); c > minEventCap && n <= c/4 {
		half := c / 2
		if half < minEventCap {
			half = minEventCap
		}
		next := make([]event, n, half)
		copy(next, h.events)
		h.events = next
	}
	return e
}

// len returns the pending depth.
func (h *eventHeap) len() int { return len(h.events) }

// minTime returns the earliest pending event time, or +Inf when empty.
func (h *eventHeap) minTime() float64 {
	if len(h.events) == 0 {
		return math.Inf(1)
	}
	return h.events[0].time
}

// Sim is a serial discrete-event simulator. The zero value is ready to
// use. Sim is not goroutine-safe: each simulation owns one Sim, and
// parallel experiment cells each run their own. For parallelism within one
// run, see ShardedSim.
type Sim struct {
	now      float64
	seq      uint64
	executed uint64
	heap     eventHeap // min-heap ordered by (time, seq)
}

// Sim implements Clock.
var _ Clock = (*Sim)(nil)

// Now returns the current simulated time in seconds.
func (s *Sim) Now() float64 { return s.now }

// Executed returns the number of events the kernel has run — the
// observability layer's sim_events_total counter. One integer increment
// per event keeps it inside the kernel's zero-alloc budget.
func (s *Sim) Executed() uint64 { return s.executed }

// AtFunc schedules fn(arg) at absolute time t — the zero-alloc fast path:
// fn should be a package-level function (not a per-call closure) and arg a
// reusable pointer, so steady-state scheduling costs no heap allocations.
// Scheduling in the past (t < now) panics: it indicates a causality bug in
// the caller.
func (s *Sim) AtFunc(t float64, fn Func, arg any) {
	if t < s.now {
		panic("sim: event scheduled in the past")
	}
	if fn == nil {
		panic("sim: nil event callback")
	}
	s.seq++
	s.heap.push(event{time: t, seq: s.seq, fn: fn, arg: arg})
}

// AfterFunc schedules fn(arg) d seconds from now (fast path).
func (s *Sim) AfterFunc(d float64, fn Func, arg any) {
	s.AtFunc(s.now+d, fn, arg)
}

// runClosure is the trampoline that adapts the closure entry points onto
// the fast path: the closure itself rides in the event's payload slot.
func runClosure(arg any) { arg.(func())() }

// At schedules fn to run at absolute time t. The closure is the payload
// (func values are pointer-shaped, so boxing it allocates nothing beyond
// the closure the caller already built). Scheduling in the past panics.
func (s *Sim) At(t float64, fn func()) {
	s.AtFunc(t, runClosure, fn)
}

// After schedules fn to run d seconds from now.
func (s *Sim) After(d float64, fn func()) {
	s.AtFunc(s.now+d, runClosure, fn)
}

// Pending returns the number of queued events.
func (s *Sim) Pending() int { return s.heap.len() }

// Run executes events in time order until the queue drains, and returns
// the final simulated time. Draining shrinks the heap's backing array back
// toward minEventCap, so a Sim that served a deep burst does not pin its
// peak-depth array afterwards.
func (s *Sim) Run() float64 {
	for s.heap.len() > 0 {
		e := s.heap.pop()
		s.now = e.time
		s.executed++
		e.fn(e.arg)
	}
	return s.now
}

// RunUntil executes events with time <= deadline, leaves later events
// queued, and advances the clock to min(deadline, last event time).
func (s *Sim) RunUntil(deadline float64) {
	for s.heap.len() > 0 && s.heap.events[0].time <= deadline {
		e := s.heap.pop()
		s.now = e.time
		s.executed++
		e.fn(e.arg)
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// Poisson generates exponential inter-arrival gaps for a Poisson process
// with the given rate (events/second), using a dedicated deterministic
// stream.
type Poisson struct {
	rate float64
	rng  *rand.Rand
}

// NewPoisson constructs a Poisson arrival process. Rate must be positive.
func NewPoisson(rate float64, seed int64) *Poisson {
	if rate <= 0 {
		panic("sim: Poisson rate must be positive")
	}
	return &Poisson{rate: rate, rng: rand.New(rand.NewSource(seed))}
}

// Next returns the next inter-arrival gap in seconds.
func (p *Poisson) Next() float64 {
	// Inverse-CDF sampling; guard against log(0).
	u := p.rng.Float64()
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	return -math.Log(1-u) / p.rate
}

// ArrivalTimes returns the first n absolute arrival times starting at
// start.
func (p *Poisson) ArrivalTimes(start float64, n int) []float64 {
	out := make([]float64, n)
	t := start
	for i := range out {
		t += p.Next()
		out[i] = t
	}
	return out
}
