// Package sim is a minimal discrete-event simulation kernel: a virtual
// clock, an event heap, and deterministic random processes (Poisson
// arrivals) built on math/rand with explicit seeds.
//
// All engine and workload behaviour in this repository executes against
// this kernel, so every experiment is exactly reproducible.
package sim

import (
	"container/heap"
	"math"
	"math/rand"
)

// Event is a scheduled callback.
type event struct {
	time float64
	seq  uint64 // FIFO tie-break for simultaneous events
	fn   func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Sim is a discrete-event simulator. The zero value is ready to use.
type Sim struct {
	now    float64
	seq    uint64
	events eventHeap
}

// Now returns the current simulated time in seconds.
func (s *Sim) Now() float64 { return s.now }

// At schedules fn to run at absolute time t. Scheduling in the past (t <
// now) panics: it indicates a causality bug in the caller.
func (s *Sim) At(t float64, fn func()) {
	if t < s.now {
		panic("sim: event scheduled in the past")
	}
	s.seq++
	heap.Push(&s.events, &event{time: t, seq: s.seq, fn: fn})
}

// After schedules fn to run d seconds from now.
func (s *Sim) After(d float64, fn func()) {
	s.At(s.now+d, fn)
}

// Pending returns the number of queued events.
func (s *Sim) Pending() int { return len(s.events) }

// Run executes events in time order until the queue drains, and returns
// the final simulated time.
func (s *Sim) Run() float64 {
	for len(s.events) > 0 {
		e := heap.Pop(&s.events).(*event)
		s.now = e.time
		e.fn()
	}
	return s.now
}

// RunUntil executes events with time <= deadline, leaves later events
// queued, and advances the clock to min(deadline, last event time).
func (s *Sim) RunUntil(deadline float64) {
	for len(s.events) > 0 && s.events[0].time <= deadline {
		e := heap.Pop(&s.events).(*event)
		s.now = e.time
		e.fn()
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// Poisson generates exponential inter-arrival gaps for a Poisson process
// with the given rate (events/second), using a dedicated deterministic
// stream.
type Poisson struct {
	rate float64
	rng  *rand.Rand
}

// NewPoisson constructs a Poisson arrival process. Rate must be positive.
func NewPoisson(rate float64, seed int64) *Poisson {
	if rate <= 0 {
		panic("sim: Poisson rate must be positive")
	}
	return &Poisson{rate: rate, rng: rand.New(rand.NewSource(seed))}
}

// Next returns the next inter-arrival gap in seconds.
func (p *Poisson) Next() float64 {
	// Inverse-CDF sampling; guard against log(0).
	u := p.rng.Float64()
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	return -math.Log(1-u) / p.rate
}

// ArrivalTimes returns the first n absolute arrival times starting at
// start.
func (p *Poisson) ArrivalTimes(start float64, n int) []float64 {
	out := make([]float64, n)
	t := start
	for i := range out {
		t += p.Next()
		out[i] = t
	}
	return out
}
