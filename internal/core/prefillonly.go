// Package core implements PrefillOnly, the paper's inference engine for
// prefill-only workloads. It composes the repository's substrates into the
// system of Figure 2:
//
//   - hybrid prefilling (internal/graph) keeps only one layer's KV cache
//     and chunk-sized linear intermediates during inference, maximizing the
//     maximum input length without parallelizing or chunking attention;
//   - suffix KV cache discarding (internal/kvcache) preserves as much
//     prefix KV as fits in the post-profile-run memory and drops the rest;
//   - SRJF scheduling with continuous JCT calibration (internal/sched +
//     internal/jct) re-estimates every waiting request's completion time
//     against the live prefix cache before each scheduling decision, with a
//     λ-weighted queueing-time offset for starvation avoidance.
package core

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/jct"
	"repro/internal/sched"
)

// DefaultLambda is the paper's default fairness parameter (§7.1).
const DefaultLambda = 500

// EstimatorKind selects how PrefillOnly estimates JCT.
type EstimatorKind int

const (
	// ProxyEstimator is the cache-miss-token proxy, the paper's default
	// (Pearson 0.987 against true JCT, §6.3).
	ProxyEstimator EstimatorKind = iota
	// LinearEstimator is the profiled linear-regression model over
	// (n_input, n_cached) pairs.
	LinearEstimator
)

// Options tunes PrefillOnly beyond the shared engine config.
type Options struct {
	// Lambda is the fairness parameter of Algorithm 1, in milliseconds
	// of JCT credit per second of queueing. Defaults to DefaultLambda;
	// set Lambda < 0 for a literal zero.
	Lambda float64
	// ChunkSize is the hybrid-prefilling chunk length (default 512).
	ChunkSize int
	// Estimator picks the JCT estimator (default ProxyEstimator).
	Estimator EstimatorKind
	// ClassWeights deprioritizes SLO classes in the calibrated scheduler:
	// class c's JCT is multiplied by ClassWeights[c] inside the heap key,
	// so a batch weight > 1 makes batch work yield to interactive work
	// whenever their weighted costs cross. Missing classes weigh 1; nil
	// is the class-blind paper policy. Requires calibration (the static
	// SRJF ablation ignores it).
	ClassWeights map[sched.Class]float64
	// DisableCalibration freezes each request's JCT at arrival (plain
	// SRJF) — used by the scheduling ablation.
	DisableCalibration bool
	// DisableOptimizations turns off output preallocation and in-place
	// reuse (Figure 10's "Chunking"-only configuration).
	DisableOptimizations bool
}

func (o Options) chunk() int {
	if o.ChunkSize <= 0 {
		return graph.DefaultChunkSize
	}
	return o.ChunkSize
}

func (o Options) lambda() float64 {
	switch {
	case o.Lambda < 0:
		return 0
	case o.Lambda == 0:
		return DefaultLambda
	default:
		return o.Lambda
	}
}

// Engine is the PrefillOnly serving engine: a single-GPU serial engine
// with hybrid prefilling, suffix discarding and calibrated scheduling.
type Engine struct {
	*engine.Serial
	estimator jct.Estimator
	opts      Options
}

// New builds a PrefillOnly engine. It performs the §3.1 profile run (via
// engine.NewSerial) to size the prefix-cache pool and calibrates the JCT
// estimator against the engine's own cost model.
func New(cfg engine.Config, opts Options) (*Engine, error) {
	// Validate class weights up front: sched.SetClassWeights panics on bad
	// values (programming-error surface), but Options travels in from
	// public config (SimulationConfig/ServerConfig), where misconfiguration
	// must come back as an error like every other field's.
	for class, w := range opts.ClassWeights {
		if w <= 0 {
			return nil, fmt.Errorf("core: class weight for %s must be positive, got %g", class, w)
		}
	}
	gopts := graph.HybridOptions(opts.chunk())
	if opts.DisableOptimizations {
		gopts.OutputPrealloc = false
		gopts.InPlace = false
	}

	// The scheduler needs the estimator, the estimator needs the
	// executor, and the executor belongs to the Serial engine — so build
	// the engine with a placeholder scheduler, then wire the real one.
	e := &Engine{opts: opts}
	serial, err := engine.NewSerial(cfg, engine.SerialSpec{
		Name:       "prefillonly",
		Opts:       gopts,
		Scheduler:  nil, // replaced below
		ResidentKV: false,
	})
	if err != nil {
		return nil, err
	}
	e.Serial = serial

	measure := func(nInput, nCached int) (float64, error) {
		return serial.Executor().EstimateSeconds(
			graph.PassSpec{Total: nInput, Cached: nCached}, gopts)
	}
	switch opts.Estimator {
	case ProxyEstimator:
		p, err := jct.CalibrateProxy(measure, cfg.ProfileMaxLen)
		if err != nil {
			return nil, fmt.Errorf("core: calibrating proxy: %w", err)
		}
		e.estimator = p
	case LinearEstimator:
		l, err := jct.Profile(measure, cfg.ProfileMaxLen, jct.ProfileGranularity)
		if err != nil {
			return nil, fmt.Errorf("core: profiling JCT: %w", err)
		}
		e.estimator = l
	default:
		return nil, fmt.Errorf("core: unknown estimator kind %d", opts.Estimator)
	}

	// The calibrated JCT consults the live prefix cache through Peek, so
	// calibration sweeps do not disturb LRU order. The request's hash
	// chain is computed once and cached on it.
	jctNow := func(r *sched.Request) float64 {
		cached := serial.Cache().PeekH(engine.HashesOf(r, serial.Cache().BlockTokens()))
		if cached > r.Len() {
			cached = r.Len()
		}
		return e.estimator.Estimate(r.Len(), cached)
	}
	var scheduler sched.Scheduler
	if opts.DisableCalibration {
		scheduler = sched.NewSRJF(jctNow)
	} else {
		// Incremental Algorithm 1: index waiting requests by their prefix
		// hash chains and rekey only those whose chains overlap a cache
		// membership change, instead of re-pricing the whole queue every
		// dispatch.
		cal := sched.NewCalibrated(jctNow, opts.lambda())
		if len(opts.ClassWeights) > 0 {
			cal.SetClassWeights(opts.ClassWeights)
		}
		engine.AttachIncremental(cal, serial.Cache())
		scheduler = cal
	}
	if err := engine.ReplaceScheduler(serial, scheduler); err != nil {
		return nil, err
	}
	return e, nil
}

// Estimator returns the engine's JCT estimator.
func (e *Engine) Estimator() jct.Estimator { return e.estimator }

// Lambda returns the active fairness parameter.
func (e *Engine) Lambda() float64 {
	if e.opts.DisableCalibration {
		return 0
	}
	return e.opts.lambda()
}
