package core

import (
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/hw"
	"repro/internal/model"
	"repro/internal/sched"
	"repro/internal/sim"
)

func testConfig(s *sim.Sim, recs *[]engine.Record) engine.Config {
	return engine.Config{
		Model:         model.Llama31_8B(),
		GPU:           hw.L4(),
		Sim:           s,
		ProfileMaxLen: 20000,
		OnComplete:    func(r engine.Record) { *recs = append(*recs, r) },
	}
}

// mkReq builds a request with a per-user shared prefix plus a unique tail.
func mkReq(id int64, user, prefix, extra int, arrival float64) *sched.Request {
	toks := make([]uint64, prefix+extra)
	for i := 0; i < prefix; i++ {
		toks[i] = uint64(user)<<40 | uint64(i)
	}
	for i := prefix; i < prefix+extra; i++ {
		toks[i] = uint64(id)<<48 | uint64(i)
	}
	return &sched.Request{ID: id, UserID: user, Tokens: toks, ArrivalTime: arrival}
}

func TestPrefillOnlyBasics(t *testing.T) {
	var s sim.Sim
	var recs []engine.Record
	eng, err := New(testConfig(&s, &recs), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if eng.Name() != "prefillonly" || eng.GPUs() != 1 {
		t.Fatalf("name=%q gpus=%d", eng.Name(), eng.GPUs())
	}
	if eng.Lambda() != DefaultLambda {
		t.Fatalf("lambda = %v, want default %v", eng.Lambda(), DefaultLambda)
	}
	r := mkReq(1, 1, 10000, 100, 0)
	s.At(0, func() { eng.Submit(r) })
	s.Run()
	if len(recs) != 1 || recs[0].Infeasible() {
		t.Fatalf("recs = %+v", recs)
	}
}

// The Figure-5 mechanism at engine level: while a long request runs,
// a same-prefix request and a shorter unrelated request wait. Continuous
// calibration must pick the cache-hit request first even though it is
// longer.
func TestCalibrationPrioritizesCacheHit(t *testing.T) {
	var s sim.Sim
	var recs []engine.Record
	eng, err := New(testConfig(&s, &recs), Options{Lambda: -1}) // pure SRJF+calibration
	if err != nil {
		t.Fatal(err)
	}
	rA := mkReq(1, 1, 12000, 100, 0)    // runs first (queue empty)
	rD := mkReq(2, 1, 12000, 150, 0.01) // shares A's prefix: JCT collapses once A completes
	rC := mkReq(3, 2, 6000, 100, 0.01)  // shorter, no cache hit
	for _, r := range []*sched.Request{rA, rD, rC} {
		r := r
		s.At(r.ArrivalTime, func() { eng.Submit(r) })
	}
	s.Run()
	if len(recs) != 3 {
		t.Fatalf("completed %d", len(recs))
	}
	if recs[1].Req.ID != 2 {
		t.Fatalf("second completion = request %d, want 2 (cache hit prioritized)", recs[1].Req.ID)
	}
	if recs[1].CachedTokens < 11000 {
		t.Fatalf("prioritized request hit only %d cached tokens", recs[1].CachedTokens)
	}
}

// Without calibration (static SRJF), the shorter cold request goes first.
func TestNoCalibrationPicksShortest(t *testing.T) {
	var s sim.Sim
	var recs []engine.Record
	eng, err := New(testConfig(&s, &recs), Options{DisableCalibration: true})
	if err != nil {
		t.Fatal(err)
	}
	if eng.Lambda() != 0 {
		t.Fatalf("static SRJF reports lambda %v", eng.Lambda())
	}
	rA := mkReq(1, 1, 12000, 100, 0)
	rD := mkReq(2, 1, 12000, 150, 0.01)
	rC := mkReq(3, 2, 6000, 100, 0.01)
	for _, r := range []*sched.Request{rA, rD, rC} {
		r := r
		s.At(r.ArrivalTime, func() { eng.Submit(r) })
	}
	s.Run()
	if recs[1].Req.ID != 3 {
		t.Fatalf("static SRJF second completion = %d, want 3 (shortest)", recs[1].Req.ID)
	}
}

func TestLinearEstimatorOption(t *testing.T) {
	var s sim.Sim
	var recs []engine.Record
	eng, err := New(testConfig(&s, &recs), Options{Estimator: LinearEstimator})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(eng.Estimator().Name(), "linear") {
		t.Fatalf("estimator = %q", eng.Estimator().Name())
	}
	if eng.Estimator().Estimate(10000, 0) <= eng.Estimator().Estimate(5000, 0) {
		t.Fatal("linear estimator not increasing")
	}
}

func TestProxyEstimatorDefault(t *testing.T) {
	var s sim.Sim
	var recs []engine.Record
	eng, err := New(testConfig(&s, &recs), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(eng.Estimator().Name(), "proxy") {
		t.Fatalf("default estimator = %q, want proxy", eng.Estimator().Name())
	}
}

func TestBadEstimatorRejected(t *testing.T) {
	var s sim.Sim
	var recs []engine.Record
	if _, err := New(testConfig(&s, &recs), Options{Estimator: EstimatorKind(99)}); err == nil {
		t.Fatal("unknown estimator accepted")
	}
}

// Suffix discarding at the cache level: a request longer than the pool
// keeps its prefix cached, not its tail.
func TestSuffixDiscardingOnInsert(t *testing.T) {
	var s sim.Sim
	var recs []engine.Record
	cfg := testConfig(&s, &recs)
	cfg.ProfileMaxLen = 120000
	eng, err := New(cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	poolTokens := eng.Cache().CapacityTokens()
	n := 100000
	if poolTokens >= n {
		t.Skipf("pool holds %d tokens; test needs < %d", poolTokens, n)
	}
	r := mkReq(1, 1, n, 0, 0)
	s.At(0, func() { eng.Submit(r) })
	s.Run()
	got := eng.Cache().Peek(r.Tokens)
	if got == 0 {
		t.Fatal("nothing cached after long request")
	}
	if got > poolTokens {
		t.Fatalf("cached %d tokens exceeds pool %d", got, poolTokens)
	}
}
