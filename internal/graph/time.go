package graph

import "math"

// EstimateSeconds returns the modelled wall-clock duration of a pass
// without touching an allocator. It mirrors the replay's time accounting
// (same FLOP totals, same efficiency constants, same launch-overhead
// counts), so engines can price thousands of requests cheaply; a test pins
// the two within a small tolerance.
func (e *Executor) EstimateSeconds(spec PassSpec, opts Options) (float64, error) {
	if err := spec.Validate(); err != nil {
		return 0, err
	}
	if err := opts.Validate(); err != nil {
		return 0, err
	}
	m := e.model
	fresh := int64(spec.Fresh())
	effLinear := e.gpu.EffectiveFLOPs(m.WeightDType.Bytes())
	effAttn := effLinear
	if opts.Mode == Chunked {
		effAttn *= float64(opts.ChunkSize) / float64(opts.ChunkSize+chunkAttnAlpha)
	}

	linFlops := fresh*m.LinearFLOPsPerToken() + m.LMHeadFLOPs()
	attnFlops := m.AttnFLOPsRange(spec.Cached, spec.Total)

	var ticks float64
	L := float64(m.Layers)
	switch {
	case fresh == 0:
		ticks = 1
	case opts.Mode == Standard:
		ticks = 6*L + 1
	case opts.Mode == Chunked:
		passes := math.Ceil(float64(fresh) / float64(opts.ChunkSize))
		ticks = 6*L*passes + 1
	case opts.Mode == Hybrid:
		chunks := math.Ceil(float64(fresh) / float64(opts.ChunkSize))
		ticks = L*(5*chunks+1) + 1
	}
	overhead := ticks * kernelsPerOp * e.gpu.KernelLaunchOverhead
	return float64(linFlops)/effLinear + float64(attnFlops)/effAttn + overhead, nil
}

// DecodeStepSeconds models one autoregressive decoding step for a request
// with ctx tokens of context, amortized over a continuous batch of the
// given size. Decoding is memory-bandwidth bound: the weights are streamed
// once per batch step and the request's own KV cache is streamed per
// request.
//
// This is used only by the §2.3 micro-benchmark contrasting prefill-only
// with generative requests; PrefillOnly itself never decodes.
func (e *Executor) DecodeStepSeconds(ctx, batch int) float64 {
	if batch < 1 {
		batch = 1
	}
	m := e.model
	weightRead := float64(m.WeightBytes()) / float64(batch) / e.gpu.MemBWBytes
	kvRead := float64(m.KVBytes(ctx)) / e.gpu.MemBWBytes
	flops := float64(m.DecodeFLOPsPerToken(ctx)) / e.gpu.EffectiveFLOPs(m.WeightDType.Bytes())
	// Decode steps are CUDA-graph captured in modern engines, so the
	// whole step costs a handful of launches rather than one per kernel.
	launch := 10 * e.gpu.KernelLaunchOverhead
	return math.Max(weightRead+kvRead, flops) + launch
}
