// Package graph models the forward pass of a decoder-only transformer as an
// explicit sequence of tensor allocations and compute steps, executed under
// one of three prefilling strategies:
//
//   - Standard: the conventional single-pass prefill (vLLM/PagedAttention).
//     Every intermediate tensor is materialized at full sequence length and
//     the KV cache of all layers is retained.
//   - Chunked: chunked prefill (Sarathi-Serve). The input is processed in
//     fixed-size chunks through the whole network repeatedly; intermediate
//     tensors are chunk-sized, but the KV cache of all layers must remain
//     resident between chunk passes, and the attention kernel loses
//     efficiency (paper §2.5: ~14% end-to-end at chunk 512 on 20k input).
//   - Hybrid: the paper's hybrid prefilling (§4). Attention layers run at
//     full sequence length in a single pass, while the linear (non-attention)
//     layers run chunk-by-chunk, so the large MLP intermediate tensors exist
//     only at chunk granularity. KV cache is kept for a single layer at a
//     time, enabling suffix discarding.
//
// The executor both estimates wall-clock time (a FLOPs/bandwidth model, see
// DESIGN.md §3) and replays the pass against a memory.Allocator so that peak
// footprint and Figure-3 style traces are produced by the same allocation
// sequence a real engine would perform.
package graph

import (
	"fmt"

	"repro/internal/hw"
	"repro/internal/memory"
	"repro/internal/model"
)

// Mode selects the prefilling strategy.
type Mode int

const (
	// Standard is conventional full-length single-pass prefill.
	Standard Mode = iota
	// Chunked is chunked prefill with full KV retention.
	Chunked
	// Hybrid is the paper's hybrid prefilling.
	Hybrid
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case Standard:
		return "standard"
	case Chunked:
		return "chunked"
	case Hybrid:
		return "hybrid"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// KVRetention selects what happens to the KV cache produced by a pass.
type KVRetention int

const (
	// RetainAll keeps the full-depth KV cache of every token resident for
	// the whole pass (conventional engines; required by Chunked mode).
	RetainAll KVRetention = iota
	// RetainOneLayer keeps only the KV cache of the layer currently being
	// computed (PrefillOnly's suffix discarding; valid only for Hybrid and
	// Standard modes, which finish in a single pass).
	RetainOneLayer
)

// Options configures a prefill pass.
type Options struct {
	// Mode is the prefilling strategy.
	Mode Mode
	// ChunkSize is the chunk length in tokens for Chunked and Hybrid
	// modes. Ignored by Standard.
	ChunkSize int
	// KV selects the KV retention policy during the pass.
	KV KVRetention
	// OutputPrealloc enables hybrid prefilling's output-preallocation
	// optimization (§4.3): chunk outputs are written directly into a
	// preallocated full tensor instead of being concatenated afterwards.
	OutputPrealloc bool
	// InPlace enables hybrid prefilling's in-place optimization (§4.3):
	// the output tensor reuses the input tensor's memory when shapes
	// match.
	InPlace bool
}

// DefaultChunkSize is the chunk length used by the paper's chunked-prefill
// measurements (§2.5).
const DefaultChunkSize = 512

// Validate reports configuration errors.
func (o Options) Validate() error {
	if o.Mode != Standard && o.ChunkSize <= 0 {
		return fmt.Errorf("graph: %s mode requires positive ChunkSize, got %d", o.Mode, o.ChunkSize)
	}
	if o.Mode == Chunked && o.KV == RetainOneLayer {
		return fmt.Errorf("graph: chunked prefill cannot discard KV between chunk passes")
	}
	if o.Mode != Hybrid && (o.OutputPrealloc || o.InPlace) {
		return fmt.Errorf("graph: OutputPrealloc/InPlace are hybrid-prefilling optimizations")
	}
	return nil
}

// StandardOptions returns the configuration of the PagedAttention baseline.
func StandardOptions() Options {
	return Options{Mode: Standard, KV: RetainAll}
}

// ChunkedOptions returns the configuration of the chunked-prefill baseline.
func ChunkedOptions(chunk int) Options {
	return Options{Mode: Chunked, ChunkSize: chunk, KV: RetainAll}
}

// HybridOptions returns the full PrefillOnly configuration (both §4.3
// optimizations enabled, one-layer KV retention).
func HybridOptions(chunk int) Options {
	return Options{
		Mode:           Hybrid,
		ChunkSize:      chunk,
		KV:             RetainOneLayer,
		OutputPrealloc: true,
		InPlace:        true,
	}
}

// PassSpec describes one prefill request presented to the executor.
type PassSpec struct {
	// Total is the request length in tokens, including any cached prefix.
	Total int
	// Cached is the number of leading tokens whose KV cache is already
	// resident in the prefix cache (their projections and attention rows
	// are not recomputed, but their KV must be readable by attention).
	Cached int
}

// Fresh returns the number of tokens actually computed by the pass.
func (p PassSpec) Fresh() int {
	if p.Cached >= p.Total {
		return 0
	}
	return p.Total - p.Cached
}

// Validate reports malformed specs.
func (p PassSpec) Validate() error {
	if p.Total <= 0 {
		return fmt.Errorf("graph: pass total must be positive, got %d", p.Total)
	}
	if p.Cached < 0 || p.Cached > p.Total {
		return fmt.Errorf("graph: cached (%d) must be in [0, total=%d]", p.Cached, p.Total)
	}
	return nil
}

// Result summarizes one executed pass.
type Result struct {
	// Seconds is the modelled wall-clock duration of the pass.
	Seconds float64
	// PeakBytes is the peak working memory of the pass beyond model
	// weights and any prefix cache residency (temporary tensors plus
	// retained fresh KV, per the retention policy).
	PeakBytes int64
	// KVRetainedBytes is the fresh KV cache the pass leaves behind
	// (full-depth under RetainAll, zero under RetainOneLayer — PrefillOnly
	// copies what it wants to keep into the prefix-cache region
	// separately).
	KVRetainedBytes int64
	// Trace is the allocator trace when tracing was requested.
	Trace []memory.TracePoint
}

// Executor runs modelled prefill passes for one model on one device.
type Executor struct {
	model *model.Config
	gpu   *hw.GPU
}

// New constructs an executor. The model may be a sharded view.
func New(m *model.Config, g *hw.GPU) *Executor {
	return &Executor{model: m, gpu: g}
}

// Model returns the executor's model configuration.
func (e *Executor) Model() *model.Config { return e.model }

// GPU returns the executor's device.
func (e *Executor) GPU() *hw.GPU { return e.gpu }
