package graph

import (
	"errors"

	"repro/internal/memory"
)

// PeakWorkingBytes replays a pass against an unlimited allocator and
// returns the peak working footprint (temporaries plus retained fresh KV).
func (e *Executor) PeakWorkingBytes(spec PassSpec, opts Options) (int64, error) {
	res, err := e.Run(spec, opts, memory.New(0), false)
	if err != nil {
		return 0, err
	}
	return res.PeakBytes, nil
}

// Fits reports whether a request of n tokens (no prefix hit) can be
// prefetched within the given working-memory budget (device memory minus
// weights minus any reserved prefix-cache space). It enforces the budget
// during the replay, so a pass that OOMs partway reports false exactly as a
// real engine would.
func (e *Executor) Fits(n int, opts Options, budgetBytes int64) (bool, error) {
	if budgetBytes <= 0 {
		return false, nil
	}
	mem := memory.New(budgetBytes)
	_, err := e.Run(PassSpec{Total: n}, opts, mem, false)
	if errors.Is(err, memory.ErrOutOfMemory) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	return true, nil
}

// MaxInputLength binary-searches the largest request length that fits in
// the working-memory budget — the paper's MIL metric (Table 2, Figure 10).
// Results are rounded down to milGranularity tokens, matching the paper's
// reporting granularity.
func (e *Executor) MaxInputLength(opts Options, budgetBytes int64) (int, error) {
	const milGranularity = 1000
	const upperCap = 8 << 20 // 8M tokens: far above any real MIL

	ok, err := e.Fits(1, opts, budgetBytes)
	if err != nil {
		return 0, err
	}
	if !ok {
		return 0, nil
	}
	// Exponential probe for an upper bound.
	hi := 1024
	for hi < upperCap {
		ok, err := e.Fits(hi, opts, budgetBytes)
		if err != nil {
			return 0, err
		}
		if !ok {
			break
		}
		hi *= 2
	}
	lo := hi / 2
	if hi >= upperCap {
		return upperCap, nil
	}
	// Invariant: lo fits, hi does not.
	for hi-lo > milGranularity/2 {
		mid := (lo + hi) / 2
		ok, err := e.Fits(mid, opts, budgetBytes)
		if err != nil {
			return 0, err
		}
		if ok {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo / milGranularity * milGranularity, nil
}
