package graph

import (
	"fmt"

	"repro/internal/memory"
)

// pass is the internal execution state of one modelled forward pass. It
// walks the layer-by-layer allocation sequence, charging simulated time per
// op and allocating/freeing simulated tensors, so time and memory derive
// from one description of the computation.
type pass struct {
	e     *Executor
	spec  PassSpec
	opts  Options
	mem   *memory.Allocator
	clock float64 // simulated seconds since pass start

	// Per-token byte sizes, hoisted for readability.
	hidTok  int64
	qkvTok  int64
	attnTok int64
	int1Tok int64
	int2Tok int64
	kvTok   int64 // one-layer KV per token

	effLinear float64 // sustained FLOP/s for dense matmuls
	effAttn   float64 // sustained FLOP/s for the attention kernel
}

// chunkAttnAlpha calibrates the chunked-prefill attention efficiency
// penalty eff = chunk/(chunk+alpha); alpha=260 reproduces the paper's ~14%
// end-to-end slowdown for chunk 512 on a 20k-token request (§2.5).
const chunkAttnAlpha = 260

// kernelsPerOp approximates how many kernel launches one logical op costs
// (norm + matmul + epilogue fusions).
const kernelsPerOp = 1.5

func newPass(e *Executor, spec PassSpec, opts Options, mem *memory.Allocator) *pass {
	m := e.model
	p := &pass{
		e:       e,
		spec:    spec,
		opts:    opts,
		mem:     mem,
		hidTok:  m.HiddenBytesPerToken(),
		qkvTok:  m.QKVBytesPerToken(),
		attnTok: m.AttnOutBytesPerToken(),
		int1Tok: m.MLPIntermediate1BytesPerToken(),
		int2Tok: m.MLPIntermediate2BytesPerToken(),
		kvTok:   m.KVBytesPerTokenLayer(),
	}
	p.effLinear = e.gpu.EffectiveFLOPs(m.WeightDType.Bytes())
	p.effAttn = p.effLinear
	if opts.Mode == Chunked {
		p.effAttn *= float64(opts.ChunkSize) / float64(opts.ChunkSize+chunkAttnAlpha)
	}
	return p
}

// tick charges the time of one op: its FLOPs at the given efficiency plus
// kernel-launch overhead.
func (p *pass) tick(flops int64, eff float64) {
	p.clock += float64(flops)/eff + kernelsPerOp*p.e.gpu.KernelLaunchOverhead
}

// alloc allocates a tensor after charging op time, so trace timestamps
// reflect when each tensor comes into existence.
func (p *pass) alloc(bytes int64, tag string, flops int64, eff float64) (*memory.Allocation, error) {
	p.tick(flops, eff)
	return p.mem.Alloc(bytes, tag)
}

// Run executes the configured pass and returns its result. The allocator
// must be dedicated to this pass: Run frees everything it allocates (peak
// is captured by the allocator's high-water mark), mirroring a request
// whose working memory is released when it completes.
func (e *Executor) Run(spec PassSpec, opts Options, mem *memory.Allocator, trace bool) (Result, error) {
	if err := spec.Validate(); err != nil {
		return Result{}, err
	}
	if err := opts.Validate(); err != nil {
		return Result{}, err
	}
	p := newPass(e, spec, opts, mem)
	if trace {
		mem.SetClock(func() float64 { return p.clock })
		mem.StartTrace()
	}
	basePeak := mem.Live()
	mem.ResetPeak()

	var retained int64
	var err error
	switch opts.Mode {
	case Standard:
		retained, err = p.runSinglePass()
	case Hybrid:
		retained, err = p.runSinglePass()
	case Chunked:
		retained, err = p.runChunked()
	default:
		err = fmt.Errorf("graph: unknown mode %v", opts.Mode)
	}
	if err != nil {
		return Result{}, err
	}
	res := Result{
		Seconds:         p.clock,
		PeakBytes:       mem.Peak() - basePeak,
		KVRetainedBytes: retained,
	}
	if trace {
		res.Trace = mem.StopTrace()
	}
	return res, nil
}

// runSinglePass executes Standard and Hybrid modes: one pass over the fresh
// tokens. In Hybrid mode the linear ops are chunked (their intermediates are
// chunk-sized) while attention sees the full sequence; in Standard mode
// everything is full length.
func (p *pass) runSinglePass() (retainedKV int64, err error) {
	s := int64(p.spec.Fresh())
	if s == 0 {
		return 0, p.runLMHeadOnly()
	}
	m := p.e.model
	layers := m.Layers

	// Residual stream for the fresh tokens, live across the whole pass.
	hiddenT, err := p.mem.Alloc(s*p.hidTok, "hidden")
	if err != nil {
		return 0, err
	}
	defer p.mem.Free(hiddenT)

	var kvRetained []*memory.Allocation
	defer func() {
		for _, a := range kvRetained {
			p.mem.Free(a)
		}
	}()

	for layer := 0; layer < layers; layer++ {
		kv, lerr := p.runLayer(s, layer)
		if lerr != nil {
			return 0, lerr
		}
		if kv != nil {
			if p.opts.KV == RetainAll {
				kvRetained = append(kvRetained, kv)
				retainedKV += kv.Bytes()
			} else {
				// Suffix KV cache discarding: the KV of this
				// layer dies as soon as the layer completes.
				p.mem.Free(kv)
			}
		}
	}
	if err := p.runHead(); err != nil {
		return 0, err
	}
	return retainedKV, nil
}

// runLayer models one transformer block over s fresh tokens and returns the
// layer's fresh KV cache allocation (owned by the caller).
func (p *pass) runLayer(s int64, layer int) (*memory.Allocation, error) {
	m := p.e.model
	hybrid := p.opts.Mode == Hybrid
	q := int64(m.QDim())
	h := int64(m.Hidden)
	kvd := int64(m.KVDim())
	inter := int64(m.Intermediate)

	flopsQKV := 2 * s * h * (q + 2*kvd)
	flopsAttn := m.AttnFLOPsRange(p.spec.Cached, p.spec.Total) / int64(m.Layers)
	flopsO := 2 * s * q * h
	flopsGateUp := 4 * s * h * inter
	flopsDown := 2 * s * inter * h
	normFlops := 5 * s * h

	// --- Attention sub-block ---
	// QKV projection: a linear op. Hybrid chunks it, but its output must
	// be fully materialized because attention consumes the whole
	// sequence at once.
	qkv, err := p.linear(s, p.hidTok, s*p.qkvTok, "qkv", flopsQKV+normFlops, hybrid)
	if err != nil {
		return nil, err
	}
	// The fresh K/V entries live inside the qkv tensor; a separate
	// kvcache block is written when the engine retains full KV.
	var kv *memory.Allocation
	if p.opts.KV == RetainAll {
		kv, err = p.mem.Alloc(s*p.kvTok, "kvcache")
		if err != nil {
			p.mem.Free(qkv)
			return nil, err
		}
	}
	// Attention runs "normally" (full length) in both Standard and
	// Hybrid; Chunked mode never reaches this path. With the in-place
	// optimization the attention output overwrites the query region of
	// the qkv tensor (they share a shape), eliding the allocation.
	var attnOut *memory.Allocation
	if hybrid && p.opts.InPlace {
		p.tick(flopsAttn, p.effAttn)
	} else {
		attnOut, err = p.alloc(s*p.attnTok, "attn.out", flopsAttn, p.effAttn)
		if err != nil {
			p.mem.Free(qkv)
			p.mem.Free(kv)
			return nil, err
		}
		p.mem.Free(qkv)
		qkv = nil
	}
	// Output projection: linear, chunked under hybrid; with InPlace its
	// result reuses the residual stream's memory.
	if err := p.linearInto(s, p.attnTok, s*p.hidTok, "attn.oproj", flopsO, hybrid); err != nil {
		p.mem.Free(qkv)
		p.mem.Free(attnOut)
		p.mem.Free(kv)
		return nil, err
	}
	p.mem.Free(qkv)
	p.mem.Free(attnOut)

	// --- MLP sub-block (the Figure-4 tensors) ---
	if hybrid {
		if err := p.hybridMLP(s, flopsGateUp, flopsDown, normFlops); err != nil {
			p.mem.Free(kv)
			return nil, err
		}
	} else {
		if err := p.standardMLP(s, flopsGateUp, flopsDown, normFlops); err != nil {
			p.mem.Free(kv)
			return nil, err
		}
	}
	return kv, nil
}

// standardMLP materializes the full-length intermediate tensors — the
// memory spikes of Figure 3a.
func (p *pass) standardMLP(s int64, flopsGateUp, flopsDown, normFlops int64) error {
	int1, err := p.alloc(s*p.int1Tok, "mlp.intermediate1", flopsGateUp+normFlops, p.effLinear)
	if err != nil {
		return err
	}
	int2, err := p.alloc(s*p.int2Tok, "mlp.intermediate2", 2*s*int64(p.e.model.Intermediate), p.effLinear)
	if err != nil {
		p.mem.Free(int1)
		return err
	}
	p.mem.Free(int1)
	down, err := p.alloc(s*p.hidTok, "mlp.down", flopsDown, p.effLinear)
	if err != nil {
		p.mem.Free(int2)
		return err
	}
	p.mem.Free(int2)
	p.mem.Free(down) // residual-added into hidden
	return nil
}

// hybridMLP processes the MLP chunk-by-chunk: only one chunk's
// intermediates exist at a time (Figure 3b).
func (p *pass) hybridMLP(s int64, flopsGateUp, flopsDown, normFlops int64) error {
	chunk := int64(p.opts.ChunkSize)
	var out *memory.Allocation
	var err error
	if !p.opts.InPlace {
		// Without in-place reuse the MLP output needs its own
		// full-length tensor (same shape as the residual stream).
		out, err = p.mem.Alloc(s*p.hidTok, "mlp.out")
		if err != nil {
			return err
		}
	}
	var pending []*memory.Allocation // chunk outputs awaiting concat (no prealloc)
	freePending := func() {
		for _, a := range pending {
			p.mem.Free(a)
		}
		pending = nil
	}
	defer freePending()
	defer func() { p.mem.Free(out) }()

	for off := int64(0); off < s; off += chunk {
		k := min64(chunk, s-off)
		share := float64(k) / float64(s)
		int1, err := p.alloc(k*p.int1Tok, "mlp.intermediate1",
			int64(share*float64(flopsGateUp+normFlops)), p.effLinear)
		if err != nil {
			return err
		}
		int2, err := p.alloc(k*p.int2Tok, "mlp.intermediate2",
			2*k*int64(p.e.model.Intermediate), p.effLinear)
		if err != nil {
			p.mem.Free(int1)
			return err
		}
		p.mem.Free(int1)
		if p.opts.OutputPrealloc {
			// Chunk result written straight into the preallocated
			// output (or the residual stream when in-place).
			p.tick(int64(share*float64(flopsDown)), p.effLinear)
			p.mem.Free(int2)
		} else {
			co, err := p.alloc(k*p.hidTok, "mlp.chunkout",
				int64(share*float64(flopsDown)), p.effLinear)
			if err != nil {
				p.mem.Free(int2)
				return err
			}
			p.mem.Free(int2)
			pending = append(pending, co)
		}
	}
	if !p.opts.OutputPrealloc {
		// Concatenate the chunk outputs: the concat target coexists
		// with all chunk outputs, doubling the output footprint (§4.3).
		concat, err := p.mem.Alloc(s*p.hidTok, "mlp.concat")
		if err != nil {
			return err
		}
		freePending()
		p.mem.Free(concat)
	}
	return nil
}

// linear models a chunkable linear op whose full output must be
// materialized (e.g. the QKV projection under hybrid prefilling). Returns
// the output allocation, owned by the caller.
func (p *pass) linear(s int64, inTok int64, outBytes int64, tag string, flops int64, chunked bool) (*memory.Allocation, error) {
	if !chunked {
		return p.alloc(outBytes, tag, flops, p.effLinear)
	}
	chunk := int64(p.opts.ChunkSize)
	if p.opts.OutputPrealloc {
		out, err := p.mem.Alloc(outBytes, tag)
		if err != nil {
			return nil, err
		}
		for off := int64(0); off < s; off += chunk {
			k := min64(chunk, s-off)
			p.tick(int64(float64(flops)*float64(k)/float64(s)), p.effLinear)
		}
		return out, nil
	}
	// Without preallocation: chunk outputs accumulate, then a concat
	// target of the full size coexists with them.
	var pending []*memory.Allocation
	perTokOut := outBytes / s
	for off := int64(0); off < s; off += chunk {
		k := min64(chunk, s-off)
		co, err := p.alloc(k*perTokOut, tag+".chunk",
			int64(float64(flops)*float64(k)/float64(s)), p.effLinear)
		if err != nil {
			for _, a := range pending {
				p.mem.Free(a)
			}
			return nil, err
		}
		pending = append(pending, co)
	}
	out, err := p.mem.Alloc(outBytes, tag)
	if err != nil {
		for _, a := range pending {
			p.mem.Free(a)
		}
		return nil, err
	}
	for _, a := range pending {
		p.mem.Free(a)
	}
	return out, nil
}

// linearInto models a chunkable linear op whose output has the residual
// stream's shape, so InPlace can elide the allocation entirely.
func (p *pass) linearInto(s int64, inTok int64, outBytes int64, tag string, flops int64, chunked bool) error {
	if chunked && p.opts.InPlace {
		// Output chunks overwrite the input tensor's memory: no
		// allocation, only compute time.
		chunk := int64(p.opts.ChunkSize)
		for off := int64(0); off < s; off += chunk {
			k := min64(chunk, s-off)
			p.tick(int64(float64(flops)*float64(k)/float64(s)), p.effLinear)
		}
		return nil
	}
	out, err := p.linear(s, inTok, outBytes, tag, flops, chunked)
	if err != nil {
		return err
	}
	p.mem.Free(out)
	return nil
}

// runHead models the final norm + single-position lm-head of a prefill-only
// request.
func (p *pass) runHead() error {
	m := p.e.model
	logits, err := p.alloc(m.LogitsBytes(1), "logits", m.LMHeadFLOPs(), p.effLinear)
	if err != nil {
		return err
	}
	p.mem.Free(logits)
	return nil
}

// runLMHeadOnly handles the degenerate fully-cached request: only the head
// runs (on the last cached position).
func (p *pass) runLMHeadOnly() error {
	hidden, err := p.mem.Alloc(p.hidTok, "hidden")
	if err != nil {
		return err
	}
	defer p.mem.Free(hidden)
	return p.runHead()
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
