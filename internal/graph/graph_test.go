package graph

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/hw"
	"repro/internal/memory"
	"repro/internal/model"
)

func l4_8b() *Executor { return New(model.Llama31_8B(), hw.L4()) }
func h100() *Executor  { return New(model.Llama33_70BFP8(), hw.H100PCIe()) }
func a100_32b() *Executor {
	return New(model.Qwen32BFP8(), hw.A100())
}

func mustRun(t *testing.T, e *Executor, spec PassSpec, opts Options, trace bool) Result {
	t.Helper()
	res, err := e.Run(spec, opts, memory.New(0), trace)
	if err != nil {
		t.Fatalf("Run(%+v, %+v): %v", spec, opts, err)
	}
	return res
}

// Figure 3: hybrid prefilling reduces the peak memory of a 32,768-token
// Llama-3.1-8B prefill by roughly 2 GB (both sides retain full KV, as the
// paper's trace does).
func TestFigure3HybridPeakReduction(t *testing.T) {
	e := l4_8b()
	spec := PassSpec{Total: 32768}
	std := mustRun(t, e, spec, StandardOptions(), false)
	hybridRetain := Options{Mode: Hybrid, ChunkSize: DefaultChunkSize, KV: RetainAll,
		OutputPrealloc: true, InPlace: true}
	hyb := mustRun(t, e, spec, hybridRetain, false)
	savedGB := float64(std.PeakBytes-hyb.PeakBytes) / float64(hw.GiB)
	if savedGB < 1.0 || savedGB > 4.0 {
		t.Fatalf("hybrid peak saving = %.2f GiB, want ~2 GiB (std=%.2f hyb=%.2f)",
			savedGB, float64(std.PeakBytes)/float64(hw.GiB), float64(hyb.PeakBytes)/float64(hw.GiB))
	}
}

// With suffix discarding (RetainOneLayer) the hybrid working set loses the
// full-depth KV as well.
func TestHybridDiscardPeakFarBelowStandard(t *testing.T) {
	e := l4_8b()
	spec := PassSpec{Total: 32768}
	std := mustRun(t, e, spec, StandardOptions(), false)
	po := mustRun(t, e, spec, HybridOptions(DefaultChunkSize), false)
	if po.PeakBytes*3 > std.PeakBytes {
		t.Fatalf("PrefillOnly peak %.2f GiB not well below standard %.2f GiB",
			float64(po.PeakBytes)/float64(hw.GiB), float64(std.PeakBytes)/float64(hw.GiB))
	}
	if po.KVRetainedBytes != 0 {
		t.Fatalf("suffix discarding retained %d KV bytes, want 0", po.KVRetainedBytes)
	}
	if std.KVRetainedBytes != e.Model().KVBytes(32768) {
		t.Fatalf("standard retained %d KV bytes, want full %d",
			std.KVRetainedBytes, e.Model().KVBytes(32768))
	}
}

// Hybrid prefilling must not slow the pass down meaningfully (the paper's
// claim: MIL gains come "without hurting the throughput").
func TestHybridTimeCloseToStandard(t *testing.T) {
	e := l4_8b()
	spec := PassSpec{Total: 32768}
	std := mustRun(t, e, spec, StandardOptions(), false)
	hyb := mustRun(t, e, spec, HybridOptions(DefaultChunkSize), false)
	ratio := hyb.Seconds / std.Seconds
	if ratio > 1.05 || ratio < 0.95 {
		t.Fatalf("hybrid/standard time ratio = %.3f, want ≈1", ratio)
	}
}

// Chunked prefill reduces attention kernel efficiency: ~14% end-to-end
// slowdown at chunk 512 on a 20k-token request (§2.5).
func TestChunkedPrefillSlowdown(t *testing.T) {
	e := l4_8b()
	spec := PassSpec{Total: 20000}
	std := mustRun(t, e, spec, StandardOptions(), false)
	chk := mustRun(t, e, spec, ChunkedOptions(512), false)
	slowdown := chk.Seconds/std.Seconds - 1
	if slowdown < 0.05 || slowdown > 0.30 {
		t.Fatalf("chunked slowdown = %.1f%%, want ~14%%", slowdown*100)
	}
}

// Prefix-cache hits cut pass time: a 50%-cached request must be much
// cheaper than a cold one and more expensive than a 100%-cached one.
func TestCachedPrefixReducesTime(t *testing.T) {
	e := l4_8b()
	cold := mustRun(t, e, PassSpec{Total: 20000}, HybridOptions(512), false)
	half := mustRun(t, e, PassSpec{Total: 20000, Cached: 10000}, HybridOptions(512), false)
	full := mustRun(t, e, PassSpec{Total: 20000, Cached: 20000}, HybridOptions(512), false)
	if !(full.Seconds < half.Seconds && half.Seconds < cold.Seconds) {
		t.Fatalf("times not ordered: full=%g half=%g cold=%g", full.Seconds, half.Seconds, cold.Seconds)
	}
	if half.Seconds > 0.65*cold.Seconds {
		t.Fatalf("half-cached pass %.3fs should be well under 65%% of cold %.3fs", half.Seconds, cold.Seconds)
	}
}

// EstimateSeconds must track the replay closely (engines rely on it).
func TestEstimateMatchesReplay(t *testing.T) {
	e := a100_32b()
	for _, opts := range []Options{
		StandardOptions(),
		ChunkedOptions(512),
		HybridOptions(512),
		{Mode: Hybrid, ChunkSize: 256, KV: RetainOneLayer}, // no optimizations
	} {
		for _, spec := range []PassSpec{
			{Total: 5000},
			{Total: 40000},
			{Total: 40000, Cached: 17000},
		} {
			res := mustRun(t, e, spec, opts, false)
			est, err := e.EstimateSeconds(spec, opts)
			if err != nil {
				t.Fatal(err)
			}
			if diff := math.Abs(est-res.Seconds) / res.Seconds; diff > 0.02 {
				t.Errorf("opts=%+v spec=%+v: estimate %.4fs vs replay %.4fs (%.1f%% off)",
					opts, spec, est, res.Seconds, diff*100)
			}
		}
	}
}

// MIL ordering on every paper hardware/model pair: hybrid with discarding
// beats chunked, which beats standard (Table 2 / Figure 10 shape).
func TestMILOrdering(t *testing.T) {
	for _, e := range []*Executor{l4_8b(), a100_32b(), h100()} {
		budget := e.GPU().UsableBytes() - e.Model().WeightBytes()
		if budget <= 0 {
			t.Fatalf("%s: weights do not fit", e.Model().Name)
		}
		std, err := e.MaxInputLength(StandardOptions(), budget)
		if err != nil {
			t.Fatal(err)
		}
		chk, err := e.MaxInputLength(ChunkedOptions(512), budget)
		if err != nil {
			t.Fatal(err)
		}
		po, err := e.MaxInputLength(HybridOptions(512), budget)
		if err != nil {
			t.Fatal(err)
		}
		if !(std < chk && chk < po) {
			t.Errorf("%s on %s: MIL ordering std=%d chunked=%d prefillonly=%d, want std<chunked<prefillonly",
				e.Model().Name, e.GPU().Name, std, chk, po)
		}
		if po < 3*std {
			t.Errorf("%s: PrefillOnly MIL %d should be >=3x standard %d", e.Model().Name, po, std)
		}
	}
}

// Figure 10 ablation: each hybrid optimization strictly increases MIL.
func TestFigure10AblationMonotone(t *testing.T) {
	e := a100_32b()
	budget := e.GPU().UsableBytes() - e.Model().WeightBytes()
	chunkOnly := Options{Mode: Hybrid, ChunkSize: 512, KV: RetainOneLayer}
	prealloc := chunkOnly
	prealloc.OutputPrealloc = true
	inplace := prealloc
	inplace.InPlace = true

	m0, err := e.MaxInputLength(chunkOnly, budget)
	if err != nil {
		t.Fatal(err)
	}
	m1, err := e.MaxInputLength(prealloc, budget)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := e.MaxInputLength(inplace, budget)
	if err != nil {
		t.Fatal(err)
	}
	if !(m0 < m1 && m1 < m2) {
		t.Fatalf("ablation MIL not monotone: chunking=%d +prealloc=%d +inplace=%d", m0, m1, m2)
	}
}

func TestTraceShowsMLPSpikes(t *testing.T) {
	e := l4_8b()
	res := mustRun(t, e, PassSpec{Total: 8192}, StandardOptions(), true)
	peaks := memory.TraceSummary(res.Trace)
	if peaks["mlp.intermediate1"] == 0 {
		t.Fatal("trace has no mlp.intermediate1 allocations")
	}
	// The intermediate-1 spike is 14x the one-layer KV (Figure 4).
	kv := e.Model().KVBytesPerTokenLayer() * 8192
	if peaks["mlp.intermediate1"] != 14*kv {
		t.Fatalf("intermediate1 peak = %d, want %d", peaks["mlp.intermediate1"], 14*kv)
	}
	// Timestamps must be non-decreasing (simulated clock).
	for i := 1; i < len(res.Trace); i++ {
		if res.Trace[i].Time < res.Trace[i-1].Time {
			t.Fatalf("trace time went backwards at %d", i)
		}
	}
}

func TestValidation(t *testing.T) {
	e := l4_8b()
	if _, err := e.Run(PassSpec{Total: 0}, StandardOptions(), memory.New(0), false); err == nil {
		t.Error("accepted zero-length pass")
	}
	if _, err := e.Run(PassSpec{Total: 10, Cached: 11}, StandardOptions(), memory.New(0), false); err == nil {
		t.Error("accepted cached > total")
	}
	bad := Options{Mode: Chunked} // no chunk size
	if err := bad.Validate(); err == nil {
		t.Error("accepted chunked without chunk size")
	}
	bad = Options{Mode: Chunked, ChunkSize: 512, KV: RetainOneLayer}
	if err := bad.Validate(); err == nil {
		t.Error("accepted chunked with one-layer KV retention")
	}
	bad = Options{Mode: Standard, OutputPrealloc: true}
	if err := bad.Validate(); err == nil {
		t.Error("accepted standard mode with hybrid optimizations")
	}
}

func TestFullyCachedPassIsCheap(t *testing.T) {
	e := l4_8b()
	full := mustRun(t, e, PassSpec{Total: 30000, Cached: 30000}, HybridOptions(512), false)
	cold := mustRun(t, e, PassSpec{Total: 30000}, HybridOptions(512), false)
	if full.Seconds > cold.Seconds/100 {
		t.Fatalf("fully-cached pass %.5fs not ≪ cold %.3fs", full.Seconds, cold.Seconds)
	}
}

// Property: peak memory and time are monotone non-decreasing in request
// length for every mode.
func TestMonotoneInLength(t *testing.T) {
	e := l4_8b()
	modes := []Options{StandardOptions(), ChunkedOptions(512), HybridOptions(512)}
	f := func(a, b uint16) bool {
		n1 := int(a)%20000 + 1
		n2 := n1 + int(b)%20000 + 1
		for _, opts := range modes {
			r1, err := e.Run(PassSpec{Total: n1}, opts, memory.New(0), false)
			if err != nil {
				return false
			}
			r2, err := e.Run(PassSpec{Total: n2}, opts, memory.New(0), false)
			if err != nil {
				return false
			}
			if r2.PeakBytes < r1.PeakBytes || r2.Seconds < r1.Seconds {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Fits must agree with MaxInputLength at the boundary.
func TestFitsConsistentWithMIL(t *testing.T) {
	e := l4_8b()
	budget := int64(4) * hw.GiB
	mil, err := e.MaxInputLength(HybridOptions(512), budget)
	if err != nil {
		t.Fatal(err)
	}
	if mil <= 0 {
		t.Fatal("MIL should be positive for a 4GiB budget")
	}
	ok, err := e.Fits(mil, HybridOptions(512), budget)
	if err != nil || !ok {
		t.Fatalf("Fits(MIL=%d) = %v, %v; want true", mil, ok, err)
	}
	ok, err = e.Fits(mil+2000, HybridOptions(512), budget)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatalf("Fits(MIL+2000) = true; MIL=%d not maximal", mil)
	}
}

func TestShardReducesFootprint(t *testing.T) {
	full := model.Llama31_8B()
	half := full.MustShard(2, 1)
	if half.WeightBytes() >= full.WeightBytes() {
		t.Fatal("TP shard did not shrink weights")
	}
	if half.KVBytesPerToken() >= full.KVBytesPerToken() {
		t.Fatal("TP shard did not shrink KV")
	}
	pp := full.MustShard(1, 2)
	if pp.Layers != full.Layers/2 {
		t.Fatal("PP shard did not halve layers")
	}
}

func TestDecodeStepMemoryBound(t *testing.T) {
	e := New(model.Llama31_8B(), hw.H100PCIe())
	t1 := e.DecodeStepSeconds(2048, 1)
	t64 := e.DecodeStepSeconds(2048, 64)
	if t64 >= t1 {
		t.Fatal("batched decode should amortize weight reads")
	}
	if t1 < float64(e.Model().WeightBytes())/e.GPU().MemBWBytes {
		t.Fatal("unbatched decode cannot beat the weight-streaming bound")
	}
}
