package graph

import "repro/internal/memory"

// runChunked executes the chunked-prefill baseline: the fresh tokens are
// split into ChunkSize pieces and each piece makes a full pass through the
// network. The KV cache of every chunk at every layer must stay resident
// between passes (this is what caps chunked prefill's MIL gains at <2×,
// §2.5), and the attention kernel runs at reduced efficiency.
func (p *pass) runChunked() (retainedKV int64, err error) {
	s := int64(p.spec.Fresh())
	if s == 0 {
		return 0, p.runLMHeadOnly()
	}
	m := p.e.model
	chunk := int64(p.opts.ChunkSize)
	totalAttn := m.AttnFLOPsRange(p.spec.Cached, p.spec.Total)
	// Pair-count denominator for apportioning attention work to passes.
	tot := int64(p.spec.Total)
	cc := int64(p.spec.Cached)
	denom := tot*(tot+1) - cc*(cc+1)

	var kvAllocs []*memory.Allocation
	defer func() {
		for _, a := range kvAllocs {
			p.mem.Free(a)
		}
	}()

	for off := int64(0); off < s; off += chunk {
		k := min64(chunk, s-off)
		start := cc + off
		end := start + k
		// Attention work of this pass: the pair share of its positions.
		var passAttn int64
		if denom > 0 {
			passAttn = int64(float64(totalAttn) * float64(end*(end+1)-start*(start+1)) / float64(denom))
		}
		hidden, err := p.mem.Alloc(k*p.hidTok, "hidden")
		if err != nil {
			return 0, err
		}
		for layer := 0; layer < m.Layers; layer++ {
			kv, lerr := p.runChunkedLayer(k, passAttn/int64(m.Layers))
			if lerr != nil {
				p.mem.Free(hidden)
				return 0, lerr
			}
			kvAllocs = append(kvAllocs, kv)
			retainedKV += kv.Bytes()
		}
		p.mem.Free(hidden)
	}
	if err := p.runLMHeadOnly(); err != nil {
		return 0, err
	}
	return retainedKV, nil
}

// runChunkedLayer is one transformer block over a k-token chunk with
// full-KV retention. Returned KV allocation is owned by the caller.
func (p *pass) runChunkedLayer(k int64, attnFlops int64) (*memory.Allocation, error) {
	m := p.e.model
	q := int64(m.QDim())
	h := int64(m.Hidden)
	kvd := int64(m.KVDim())
	inter := int64(m.Intermediate)

	qkv, err := p.alloc(k*p.qkvTok, "qkv", 2*k*h*(q+2*kvd)+5*k*h, p.effLinear)
	if err != nil {
		return nil, err
	}
	kv, err := p.mem.Alloc(k*p.kvTok, "kvcache")
	if err != nil {
		p.mem.Free(qkv)
		return nil, err
	}
	attnOut, err := p.alloc(k*p.attnTok, "attn.out", attnFlops, p.effAttn)
	if err != nil {
		p.mem.Free(qkv)
		p.mem.Free(kv)
		return nil, err
	}
	p.mem.Free(qkv)
	oproj, err := p.alloc(k*p.hidTok, "attn.oproj", 2*k*q*h, p.effLinear)
	if err != nil {
		p.mem.Free(attnOut)
		p.mem.Free(kv)
		return nil, err
	}
	p.mem.Free(attnOut)
	p.mem.Free(oproj)
	if err := p.standardMLP(k, 4*k*h*inter, 2*k*inter*h, 5*k*h); err != nil {
		p.mem.Free(kv)
		return nil, err
	}
	return kv, nil
}
