package timeseries

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/metrics"
	"repro/internal/sched"
)

// offlineWindow is the exact reference aggregate for one window: every
// latency kept, percentiles computed by sorting.
type offlineWindow struct {
	arrivals, completions [sched.NumClasses]uint64
	latencies             [sched.NumClasses][]float64
}

// bucketBounds returns the [lo, hi] bucket of DefLatencyBuckets that
// contains v, with hi = the last finite bound when v overflows every
// bucket (the histogram's +Inf clamp).
func bucketBounds(v float64) (lo, hi float64) {
	bs := metrics.DefLatencyBuckets
	lo = 0
	for _, b := range bs {
		if v <= b {
			return lo, b
		}
		lo = b
	}
	return bs[len(bs)-1], bs[len(bs)-1]
}

// TestStreamingQuantilesMatchOfflineSorts is the property test: drive the
// collector with seeded random workloads and recompute every window
// offline from the raw latencies. Counts must match exactly; each
// streaming quantile must land inside the histogram bucket containing
// the exact sorted percentile — bucket resolution is the promised error
// bound. Idle gaps (empty windows) and the final partial window are part
// of the property.
func TestStreamingQuantilesMatchOfflineSorts(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		rng := rand.New(rand.NewSource(seed))
		const interval = 1.0
		const horizon = 40.0
		c := New(Config{IntervalSeconds: interval})
		offline := make(map[int64]*offlineWindow)
		at := func(now float64) *offlineWindow {
			idx := int64(now / interval)
			w := offline[idx]
			if w == nil {
				w = &offlineWindow{}
				offline[idx] = w
			}
			return w
		}

		now := 0.0
		events := 0
		for now < horizon {
			// Exponential-ish spacing with occasional multi-window idle
			// gaps, so some windows stay empty.
			step := rng.Float64() * 0.3
			if rng.Intn(12) == 0 {
				step += 2 + rng.Float64()*3
			}
			now += step
			if now >= horizon {
				break
			}
			class := sched.Class(rng.Intn(sched.NumClasses))
			c.Arrival(now, class)
			at(now).arrivals[class]++
			// Latencies spread across the bucket range, tails included.
			lat := math.Pow(10, -2+4*rng.Float64())
			c.Complete(now, class, lat)
			w := at(now)
			w.completions[class]++
			w.latencies[class] = append(w.latencies[class], lat)
			events++
		}
		// Close every full window; the last partial window only shows in
		// Snapshot.
		c.Advance(horizon)
		exp := c.Snapshot(horizon + 0.5)

		checked := 0
		for _, win := range exp.Windows {
			ref := offline[win.Index]
			if ref == nil {
				ref = &offlineWindow{}
			}
			for ci, cw := range win.Classes {
				if cw.Arrivals != ref.arrivals[ci] || cw.Completions != ref.completions[ci] {
					t.Fatalf("seed %d window %d class %s: counts %d/%d, offline %d/%d",
						seed, win.Index, cw.Class, cw.Arrivals, cw.Completions,
						ref.arrivals[ci], ref.completions[ci])
				}
				lats := append([]float64(nil), ref.latencies[ci]...)
				sort.Float64s(lats)
				for _, q := range []struct {
					p   float64
					est float64
				}{{0.50, cw.P50Seconds}, {0.90, cw.P90Seconds}, {0.99, cw.P99Seconds}} {
					if len(lats) == 0 {
						if q.est != 0 {
							t.Fatalf("seed %d window %d class %s: p%g = %g with no completions",
								seed, win.Index, cw.Class, q.p, q.est)
						}
						continue
					}
					// Nearest-rank order statistic, the same rank
					// convention the histogram's Quantile resolves
					// (first cumulative count >= p*n) — interpolated
					// percentiles can fall between two samples' buckets.
					rank := int(math.Ceil(q.p*float64(len(lats)))) - 1
					if rank < 0 {
						rank = 0
					}
					exact := lats[rank]
					lo, hi := bucketBounds(exact)
					if q.est < lo-1e-12 || q.est > hi+1e-12 {
						t.Fatalf("seed %d window %d class %s: streaming p%g = %g outside bucket [%g, %g] of exact %g",
							seed, win.Index, cw.Class, q.p, q.est, lo, hi, exact)
					}
					checked++
				}
			}
		}
		if checked == 0 {
			t.Fatalf("seed %d: no quantiles checked", seed)
		}
		var total uint64
		for _, win := range exp.Windows {
			total += win.Completions
		}
		if total != uint64(events) {
			t.Fatalf("seed %d: windows account %d completions, drove %d", seed, total, events)
		}
	}
}

// TestEmptyWindowsAndIdleGaps checks the catch-up path: a long idle gap
// must materialize one row per skipped window, all empty, attainment 1
// (nothing violated), indices contiguous.
func TestEmptyWindowsAndIdleGaps(t *testing.T) {
	c := New(Config{IntervalSeconds: 1})
	c.Complete(0.5, sched.ClassInteractive, 0.1)
	c.Complete(10.5, sched.ClassInteractive, 0.1) // 10-window jump
	c.Advance(11)
	rows := c.Windows()
	if len(rows) != 11 {
		t.Fatalf("expected 11 closed windows after the gap, got %d", len(rows))
	}
	for i, w := range rows {
		if w.Index != int64(i) {
			t.Fatalf("row %d has index %d: gaps must not skip indices", i, w.Index)
		}
		if i != 0 && i != 10 {
			if w.Completions != 0 {
				t.Fatalf("idle window %d has %d completions", i, w.Completions)
			}
			for _, cw := range w.Classes {
				if cw.Attainment != 1 {
					t.Fatalf("idle window %d class %s attainment %g, want 1", i, cw.Class, cw.Attainment)
				}
			}
		}
	}
	if rows[0].Completions != 1 || rows[10].Completions != 1 {
		t.Fatalf("data windows lost events: %d and %d", rows[0].Completions, rows[10].Completions)
	}
}

// TestSnapshotPartialWindow checks that the open window surfaces as a
// partial row without closing: reads are side-effect-free.
func TestSnapshotPartialWindow(t *testing.T) {
	c := New(Config{IntervalSeconds: 1})
	c.Complete(0.2, sched.ClassBatch, 0.05)
	exp := c.Snapshot(0.6)
	if len(exp.Windows) != 1 {
		t.Fatalf("expected 1 partial row, got %d windows", len(exp.Windows))
	}
	p := exp.Windows[0]
	if !p.Partial || p.EndSeconds != 0.6 || p.Completions != 1 {
		t.Fatalf("partial row wrong: %+v", p)
	}
	// Snapshot must not have closed anything: the same window closes
	// later with the same data plus what arrived after the snapshot.
	c.Complete(0.8, sched.ClassBatch, 0.05)
	c.Advance(1)
	rows := c.Windows()
	if len(rows) != 1 || rows[0].Completions != 2 || rows[0].Partial {
		t.Fatalf("closed window wrong after snapshot: %+v", rows)
	}
}

// TestRollingAttainmentAndBurnRate drives alternating good/bad windows
// and checks the completion-weighted rolling SLO math.
func TestRollingAttainmentAndBurnRate(t *testing.T) {
	c := New(Config{
		IntervalSeconds:  1,
		SLOTargetSeconds: [sched.NumClasses]float64{1, 1},
		SLOObjective:     0.9,
		RollingWindows:   4,
	})
	// Window 0: 3 good. Window 1: 1 good, 2 bad.
	for i := 0; i < 3; i++ {
		c.Complete(0.1, sched.ClassInteractive, 0.5)
	}
	c.Advance(1)
	c.Complete(1.1, sched.ClassInteractive, 0.5)
	c.Complete(1.2, sched.ClassInteractive, 5)
	c.Complete(1.3, sched.ClassInteractive, 5)
	c.Advance(2)
	rows := c.Windows()
	w1 := rows[1].Classes[sched.ClassInteractive]
	if got, want := w1.Attainment, 1.0/3; math.Abs(got-want) > 1e-12 {
		t.Fatalf("window attainment %g, want %g", got, want)
	}
	// Rolling: (3+1 good) / (3+3 total) = 2/3; burn = (1-2/3)/(1-0.9).
	if got, want := w1.RollingAttainment, 4.0/6; math.Abs(got-want) > 1e-12 {
		t.Fatalf("rolling attainment %g, want %g", got, want)
	}
	if got, want := w1.BurnRate, (1-4.0/6)/0.1; math.Abs(got-want) > 1e-9 {
		t.Fatalf("burn rate %g, want %g", got, want)
	}
}

// TestMaxWindowsEviction checks the ring cap: old rows drop, the dropped
// count and ClosedWindows stay monotonic and exact.
func TestMaxWindowsEviction(t *testing.T) {
	c := New(Config{IntervalSeconds: 1, MaxWindows: 4})
	for i := 0; i < 10; i++ {
		c.Complete(float64(i)+0.5, sched.ClassInteractive, 0.1)
	}
	c.Advance(10)
	rows := c.Windows()
	if len(rows) != 4 {
		t.Fatalf("cap 4 but %d rows kept", len(rows))
	}
	if rows[0].Index != 6 || rows[3].Index != 9 {
		t.Fatalf("kept rows %d..%d, want 6..9", rows[0].Index, rows[3].Index)
	}
	if got := c.ClosedWindows(); got != 10 {
		t.Fatalf("ClosedWindows %d, want 10", got)
	}
	if exp := c.Snapshot(10); exp.DroppedWindows != 6 {
		t.Fatalf("DroppedWindows %d, want 6", exp.DroppedWindows)
	}
}

// TestHugeIdleGapBoundedCatchUp pins the free-running-server fast path:
// a jump of millions of windows must not materialize (or shift) millions
// of rows. The trailing MaxWindows windows survive as rows, everything
// older counts as dropped, and the rolling ring reads as all-idle.
func TestHugeIdleGapBoundedCatchUp(t *testing.T) {
	c := New(Config{IntervalSeconds: 1, MaxWindows: 8})
	c.Complete(0.5, sched.ClassInteractive, 0.1)
	const jump = 5_000_000.5
	c.Complete(jump, sched.ClassInteractive, 0.1)
	c.Advance(jump + 0.6)
	rows := c.Windows()
	if len(rows) != 8 {
		t.Fatalf("kept %d rows after the jump, want MaxWindows = 8", len(rows))
	}
	last := rows[len(rows)-1]
	if last.Index != 5_000_000 || last.Completions != 1 {
		t.Fatalf("last row %+v, want the jump target window with its completion", last)
	}
	for i, w := range rows[:len(rows)-1] {
		if w.Completions != 0 {
			t.Fatalf("gap row %d has completions: %+v", i, w)
		}
	}
	if got := c.ClosedWindows(); got != 5_000_001 {
		t.Fatalf("ClosedWindows %d, want one per elapsed window", got)
	}
	// The ring saw nothing but empty windows before the jump target:
	// rolling attainment must read 1 with the pre-gap history flushed.
	if ra := last.Classes[sched.ClassInteractive].RollingAttainment; ra != 1 {
		t.Fatalf("rolling attainment %g after an idle flush, want 1", ra)
	}
}

// TestNilCollectorZeroAlloc pins the disabled path: every hot-path method
// on a nil collector must be a no-op with zero allocations, because
// simulation.go calls them unconditionally.
func TestNilCollectorZeroAlloc(t *testing.T) {
	var c *Collector
	if c.Enabled() {
		t.Fatal("nil collector reports enabled")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		c.Arrival(1, sched.ClassInteractive)
		c.Complete(1, sched.ClassInteractive, 0.1)
		c.Reject(1, sched.ClassBatch, "backlog")
		c.Advance(1)
		c.Start()
	})
	if allocs != 0 {
		t.Fatalf("nil collector allocates %g per run, want 0", allocs)
	}
}
