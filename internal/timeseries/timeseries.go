// Package timeseries is the sim-time windowed aggregation engine: it
// turns the run's existing event callbacks (arrival, completion,
// rejection) and a gauge sampler over fleet state into fixed-interval
// series — throughput, arrival rate, per-class latency quantiles via
// streaming histograms, shed rate by reason, queue depth and backlog,
// cache hit ratio, pool size, cumulative GPU-seconds, and per-class
// rolling SLO attainment/burn rate for the predictive autoscaler to
// consume.
//
// Windows are half-open intervals [k·i, (k+1)·i) of simulated time: an
// event at exactly a boundary t = k·i belongs to the window that starts
// at t, never the one that ends there. Windows close when sim time
// reaches their end — normally on the collector's own boundary-aligned
// tick events, or lazily when a data callback arrives past the current
// window's end (after a drained idle gap). Gauges are sampled at the
// moment a window closes; when one catch-up closes several gap windows
// at once they share one sample, which is exact for everything but the
// time-integrated GPU-seconds (the fleet was idle through the gap).
//
// The collector is nil-safe — every method no-ops on a nil receiver, so
// the disabled path stays a single branch and allocates nothing — and
// deterministic: all inputs are sim-event times and counts, never wall
// clocks, so enabled runs replay bit-identically across kernel shard
// counts.
package timeseries

import (
	"sync"

	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/sim"
)

// Defaults for Config zero values.
const (
	// DefIntervalSeconds is the default window width.
	DefIntervalSeconds = 1.0
	// DefSLOObjective is the default SLO objective the burn rate is
	// computed against.
	DefSLOObjective = 0.99
	// DefRollingWindows is the default rolling-attainment horizon.
	DefRollingWindows = 12
	// DefMaxWindows caps retained rows; older windows drop from the
	// front (the export counts them), bounding memory on long-lived
	// servers.
	DefMaxWindows = 8192
)

// DefSLOTargetSeconds are the default per-class latency targets: the
// interactive class tracks the 2.5s latency bucket, batch the 25s one.
var DefSLOTargetSeconds = [sched.NumClasses]float64{2.5, 25}

// Gauges is one point-in-time sample of fleet state, taken as a window
// closes. The Sample callback fills it from whatever sources the caller
// wires (router instance infos, cache manager, autoscale controller).
type Gauges struct {
	// QueuedRequests is the fleet-wide queue depth (admitted, unfinished).
	QueuedRequests int
	// BacklogSeconds is the fleet-wide backlog in estimated seconds.
	BacklogSeconds float64
	// PoolSize is the number of routable instances.
	PoolSize int
	// PendingInstances is instances provisioning but not yet routable.
	PendingInstances int
	// CacheHitRatio is the cumulative prefix-cache hit ratio in [0, 1].
	CacheHitRatio float64
	// GPUSeconds is cumulative GPU-seconds owned by the fleet.
	GPUSeconds float64
}

// Config parameterizes a Collector. Zero values take the Def defaults.
type Config struct {
	// IntervalSeconds is the window width in simulated seconds.
	IntervalSeconds float64
	// SLOTargetSeconds is the per-class latency target a completion must
	// meet to count toward SLO attainment.
	SLOTargetSeconds [sched.NumClasses]float64
	// SLOObjective is the attainment objective burn rate is relative to:
	// burn = (1 - rolling attainment) / (1 - objective).
	SLOObjective float64
	// RollingWindows is how many trailing windows the rolling attainment
	// averages over.
	RollingWindows int
	// MaxWindows bounds retained rows; excess drops oldest-first.
	MaxWindows int
	// Sample fills gauges at window close. Nil leaves gauges zero.
	Sample func(now float64) Gauges
}

// classAccum is one class's counters within the current window.
type classAccum struct {
	arrivals    uint64
	completions uint64
	rejects     uint64
	good        uint64 // completions within the SLO target
}

// rolling is one class's trailing-window attainment ring.
type rolling struct {
	good     []uint64
	total    []uint64
	pos      int
	n        int
	sumGood  uint64
	sumTotal uint64
}

func (r *rolling) push(good, total uint64) {
	if r.n == len(r.good) {
		r.sumGood -= r.good[r.pos]
		r.sumTotal -= r.total[r.pos]
	} else {
		r.n++
	}
	r.good[r.pos] = good
	r.total[r.pos] = total
	r.sumGood += good
	r.sumTotal += total
	r.pos = (r.pos + 1) % len(r.good)
}

// reset empties the ring — used when a bulk-skipped idle gap spans more
// windows than the ring holds, so every slot would be (0, 0) anyway.
func (r *rolling) reset() {
	for i := range r.good {
		r.good[i], r.total[i] = 0, 0
	}
	r.pos, r.n = 0, 0
	r.sumGood, r.sumTotal = 0, 0
}

// attainment returns the rolling attainment with (good, total) added on
// top of the ring (pass zeros for the closed-window value). Windows with
// no completions attain trivially.
func (r *rolling) attainment(good, total uint64) float64 {
	g, t := r.sumGood+good, r.sumTotal+total
	if t == 0 {
		return 1
	}
	return float64(g) / float64(t)
}

// Collector accumulates events into the current window and closes
// windows as sim time crosses their boundaries. All methods are safe on
// a nil receiver and under concurrent use (the server scrapes while its
// sim advances). The nil-receiver contract is enforced statically by
// prefillvet's nilguard analyzer.
//
//prefill:niltolerant
type Collector struct {
	mu        sync.Mutex
	interval  float64
	objective float64
	targets   [sched.NumClasses]float64
	maxRows   int
	sample    func(now float64) Gauges

	clock   sim.Clock
	running bool

	idx     int64   // current (open) window index
	lastNow float64 // latest event time seen

	arrivals    uint64
	completions uint64
	rejects     uint64
	rejectsBy   map[string]uint64
	// Chaos-injector activity within the current window.
	faults          uint64
	orphansRerouted uint64
	orphansShed     uint64
	class           [sched.NumClasses]classAccum
	hists           [sched.NumClasses]*metrics.Histogram
	roll            [sched.NumClasses]rolling

	rows    []Window // closed windows, oldest first
	dropped uint64
}

// New builds a collector from cfg, applying defaults for zero fields.
func New(cfg Config) *Collector {
	c := &Collector{
		interval:  cfg.IntervalSeconds,
		objective: cfg.SLOObjective,
		targets:   cfg.SLOTargetSeconds,
		maxRows:   cfg.MaxWindows,
		sample:    cfg.Sample,
	}
	if c.interval <= 0 {
		c.interval = DefIntervalSeconds
	}
	if c.objective <= 0 || c.objective >= 1 {
		c.objective = DefSLOObjective
	}
	if c.maxRows <= 0 {
		c.maxRows = DefMaxWindows
	}
	n := cfg.RollingWindows
	if n <= 0 {
		n = DefRollingWindows
	}
	for i := range c.hists {
		if c.targets[i] <= 0 {
			c.targets[i] = DefSLOTargetSeconds[i]
		}
		c.hists[i] = metrics.NewHistogram(metrics.DefLatencyBuckets)
		c.roll[i] = rolling{good: make([]uint64, n), total: make([]uint64, n)}
	}
	return c
}

// Enabled reports whether the collector is live (non-nil).
func (c *Collector) Enabled() bool { return c != nil }

// SetSample installs (or replaces) the gauge sampler — for callers that
// build the collector before the fleet it observes exists.
func (c *Collector) SetSample(fn func(now float64) Gauges) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.sample = fn
	c.mu.Unlock()
}

// IntervalSeconds returns the window width (0 on a nil collector).
func (c *Collector) IntervalSeconds() float64 {
	if c == nil {
		return 0
	}
	return c.interval
}

// windowStart/windowEnd compute boundaries from the integer index so
// repeated interval additions cannot drift.
func (c *Collector) windowStart(idx int64) float64 { return c.interval * float64(idx) }
func (c *Collector) windowEnd(idx int64) float64   { return c.interval * float64(idx+1) }

// Arrival records a request offered to the system at sim time now.
func (c *Collector) Arrival(now float64, class sched.Class) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.catchUp(now)
	c.arrivals++
	c.class[class].arrivals++
	c.mu.Unlock()
}

// Complete records a request finishing at sim time now with the given
// end-to-end latency. Callers must pass the completion's own event time
// (record finish), never a clock read: on the sharded kernel completions
// apply at window barriers, where the coordinator clock has already
// advanced.
func (c *Collector) Complete(now float64, class sched.Class, latencySeconds float64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.catchUp(now)
	c.completions++
	ca := &c.class[class]
	ca.completions++
	if latencySeconds <= c.targets[class] {
		ca.good++
	}
	c.mu.Unlock()
	c.hists[class].Observe(latencySeconds)
}

// Reject records a request shed at sim time now for the given reason
// (router.RejectError reasons, admission "capacity", ...).
func (c *Collector) Reject(now float64, class sched.Class, reason string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.catchUp(now)
	c.rejects++
	c.class[class].rejects++
	if c.rejectsBy == nil {
		c.rejectsBy = make(map[string]uint64, 4)
	}
	c.rejectsBy[reason]++
	c.mu.Unlock()
}

// Fault records a chaos-injector fault (crash, straggler onset or
// preemption event) at sim time now.
func (c *Collector) Fault(now float64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.catchUp(now)
	c.faults++
	c.mu.Unlock()
}

// OrphanRerouted records a fault-orphaned request re-admitted through
// the router at sim time now.
func (c *Collector) OrphanRerouted(now float64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.catchUp(now)
	c.orphansRerouted++
	c.mu.Unlock()
}

// OrphanShed records a fault-orphaned request shed (retry budget
// exhausted or re-admission rejected) at sim time now. Callers also
// report it via Reject with the shed reason; this counter isolates the
// orphan share.
func (c *Collector) OrphanShed(now float64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.catchUp(now)
	c.orphansShed++
	c.mu.Unlock()
}

// Advance closes every window whose end is at or before now without
// recording an event — the tick path, also usable by manual drivers
// (tests) that have no clock attached.
func (c *Collector) Advance(now float64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.catchUp(now)
	c.mu.Unlock()
}

// catchUp closes all windows with end <= now. One gauge sample, taken at
// now, is stamped into every window the call closes (normally exactly
// one, at its boundary tick). Callers hold c.mu.
func (c *Collector) catchUp(now float64) {
	if now > c.lastNow {
		c.lastNow = now
	}
	if c.windowEnd(c.idx) > now {
		return
	}
	var g Gauges
	if c.sample != nil {
		g = c.sample(now)
	}
	// Idle-gap fast path: when the clock jumped so far that the gap's
	// empty windows alone would overflow the row cap, every row held now
	// and every gap window but the trailing maxRows would be evicted
	// before this catch-up finished. Drop them up front instead, keeping
	// catch-up O(MaxWindows) however far a free-running server clock
	// jumped between events.
	if last := int64(now/c.interval) - 1; last-c.idx >= int64(c.maxRows) {
		c.closeWindow(g) // the open window holds the last pre-gap counts
		if skipTo := last - int64(c.maxRows) + 1; skipTo > c.idx {
			skipped := skipTo - c.idx
			c.dropped += uint64(len(c.rows)) + uint64(skipped)
			c.rows = c.rows[:0]
			c.idx = skipTo
			for i := range c.roll {
				// A skipped window is an implicit (0, 0) push.
				if r := &c.roll[i]; skipped >= int64(len(r.good)) {
					r.reset()
				} else {
					for k := int64(0); k < skipped; k++ {
						r.push(0, 0)
					}
				}
			}
		}
	}
	for c.windowEnd(c.idx) <= now {
		c.closeWindow(g)
	}
}

// closeWindow finalizes the current window into a row, folds its
// attainment into the rolling rings, resets the accumulators, and opens
// the next window. Callers hold c.mu.
func (c *Collector) closeWindow(g Gauges) {
	row := c.buildRow(c.windowEnd(c.idx), g, false)
	for i := range c.roll {
		ca := &c.class[i]
		c.roll[i].push(ca.good, ca.completions)
		row.Classes[i].RollingAttainment = c.roll[i].attainment(0, 0)
		row.Classes[i].BurnRate = c.burnRate(row.Classes[i].RollingAttainment)
		c.hists[i].Reset()
		*ca = classAccum{}
	}
	if len(c.rows) >= c.maxRows {
		n := copy(c.rows, c.rows[1:])
		c.rows = c.rows[:n]
		c.dropped++
	}
	c.rows = append(c.rows, row)
	c.arrivals, c.completions, c.rejects = 0, 0, 0
	c.faults, c.orphansRerouted, c.orphansShed = 0, 0, 0
	c.rejectsBy = nil
	c.idx++
}

// burnRate converts a rolling attainment into an error-budget burn rate
// relative to the objective: 1.0 burns the budget exactly, >1 burns it
// faster than allowed.
func (c *Collector) burnRate(attainment float64) float64 {
	return (1 - attainment) / (1 - c.objective)
}

// buildRow renders the current accumulators into a Window ending at end.
// Partial rows (snapshots mid-window) compute rolling attainment with
// the open window folded in on top of the ring, without mutating it.
// Callers hold c.mu.
func (c *Collector) buildRow(end float64, g Gauges, partial bool) Window {
	start := c.windowStart(c.idx)
	dur := end - start
	row := Window{
		Index:            c.idx,
		StartSeconds:     start,
		EndSeconds:       end,
		Partial:          partial,
		Arrivals:         c.arrivals,
		Completions:      c.completions,
		Rejects:          c.rejects,
		Faults:           c.faults,
		OrphansRerouted:  c.orphansRerouted,
		OrphansShed:      c.orphansShed,
		QueuedRequests:   g.QueuedRequests,
		BacklogSeconds:   g.BacklogSeconds,
		PoolSize:         g.PoolSize,
		PendingInstances: g.PendingInstances,
		CacheHitRatio:    g.CacheHitRatio,
		GPUSecondsTotal:  g.GPUSeconds,
	}
	if dur > 0 {
		row.ArrivalRPS = float64(c.arrivals) / dur
		row.ThroughputRPS = float64(c.completions) / dur
	}
	if c.arrivals > 0 {
		row.ShedRate = float64(c.rejects) / float64(c.arrivals)
	}
	if len(c.rejectsBy) > 0 {
		row.RejectsByReason = make(map[string]uint64, len(c.rejectsBy))
		//prefill:allow(simdeterminism): map copy with distinct keys; the JSON encoder sorts string keys on export
		for k, v := range c.rejectsBy {
			row.RejectsByReason[k] = v
		}
	}
	for i, class := range sched.Classes() {
		ca := &c.class[i]
		cw := ClassWindow{
			Class:       class.String(),
			Arrivals:    ca.arrivals,
			Completions: ca.completions,
			Rejects:     ca.rejects,
			SLOGood:     ca.good,
			Attainment:  1,
		}
		if ca.completions > 0 {
			cw.Attainment = float64(ca.good) / float64(ca.completions)
			snap := c.hists[i].Snapshot()
			cw.P50Seconds = snap.Quantile(0.50)
			cw.P90Seconds = snap.Quantile(0.90)
			cw.P99Seconds = snap.Quantile(0.99)
		}
		if partial {
			cw.RollingAttainment = c.roll[i].attainment(ca.good, ca.completions)
			cw.BurnRate = c.burnRate(cw.RollingAttainment)
		}
		row.Classes[i] = cw
	}
	return row
}

// --- ticker ---

// Attach binds the collector to a batch kernel clock. The boundary
// ticker parks itself whenever it is the only pending event, so runs
// terminate (the ticker re-arms on the next Start). Wall-clock servers,
// whose kernels free-run at the speedup rate even when idle, must NOT
// attach a ticker — they close windows lazily via Advance instead.
func (c *Collector) Attach(clock sim.Clock) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.clock = clock
	c.mu.Unlock()
}

// collectorTick is the package-level tick callback (zero-alloc AtFunc
// path).
func collectorTick(arg any) { arg.(*Collector).tick() }

// Start arms the boundary ticker if a clock is attached and it is not
// already running. Safe to call on every arrival (mirrors the trace
// sampler's re-arm discipline).
func (c *Collector) Start() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.clock == nil || c.running {
		return
	}
	c.running = true
	c.scheduleLocked(c.clock.Now())
}

// scheduleLocked arms the next boundary tick strictly after now.
func (c *Collector) scheduleLocked(now float64) {
	idx := c.idx
	for c.windowEnd(idx) <= now {
		idx++
	}
	c.clock.AtFunc(c.windowEnd(idx), collectorTick, c)
}

func (c *Collector) tick() {
	c.mu.Lock()
	now := c.clock.Now()
	c.catchUp(now)
	if c.clock.Pending() == 0 {
		// The run has drained past this boundary; park until the next
		// burst's Start re-arms the ticker.
		c.running = false
		c.mu.Unlock()
		return
	}
	c.scheduleLocked(now)
	c.mu.Unlock()
}
