package timeseries

import (
	"encoding/csv"
	"encoding/json"
	"io"
	"strconv"
	"strings"

	"repro/internal/metrics"
	"repro/internal/sched"
)

// ClassWindow is one class's slice of a window.
type ClassWindow struct {
	Class       string `json:"class"`
	Arrivals    uint64 `json:"arrivals"`
	Completions uint64 `json:"completions"`
	Rejects     uint64 `json:"rejects,omitempty"`
	// P50/P90/P99 are streaming-histogram latency quantile estimates in
	// seconds, exact to bucket resolution (zero when the window had no
	// completions of this class).
	P50Seconds float64 `json:"p50_seconds"`
	P90Seconds float64 `json:"p90_seconds"`
	P99Seconds float64 `json:"p99_seconds"`
	// SLOGood counts completions within the class's latency target.
	SLOGood uint64 `json:"slo_good"`
	// Attainment is SLOGood/Completions for this window alone (1 when
	// the window had no completions — nothing violated).
	Attainment float64 `json:"attainment"`
	// RollingAttainment averages attainment over the trailing
	// RollingWindows windows, weighted by completions.
	RollingAttainment float64 `json:"rolling_attainment"`
	// BurnRate is (1 - RollingAttainment) / (1 - SLOObjective): the rate
	// the error budget burns at, >1 meaning faster than the objective
	// allows.
	BurnRate float64 `json:"burn_rate"`
}

// Window is one closed (or snapshot-partial) aggregation interval.
type Window struct {
	Index        int64   `json:"index"`
	StartSeconds float64 `json:"start_seconds"`
	EndSeconds   float64 `json:"end_seconds"`
	// Partial marks a snapshot of the still-open window; its counters
	// cover [StartSeconds, EndSeconds) with EndSeconds = snapshot time.
	Partial         bool              `json:"partial,omitempty"`
	Arrivals        uint64            `json:"arrivals"`
	ArrivalRPS      float64           `json:"arrival_rps"`
	Completions     uint64            `json:"completions"`
	ThroughputRPS   float64           `json:"throughput_rps"`
	Rejects         uint64            `json:"rejects"`
	RejectsByReason map[string]uint64 `json:"rejects_by_reason,omitempty"`
	// ShedRate is Rejects/Arrivals within the window.
	ShedRate float64 `json:"shed_rate"`
	// Faults counts chaos-injector fault events (crashes, straggler
	// onsets, preemption notices/kills) within the window.
	Faults uint64 `json:"faults"`
	// OrphansRerouted and OrphansShed split the fate of fault-orphaned
	// requests within the window: re-admitted vs dropped.
	OrphansRerouted uint64 `json:"orphans_rerouted"`
	OrphansShed     uint64 `json:"orphans_shed"`
	// Gauges sampled as the window closed.
	QueuedRequests   int     `json:"queued_requests"`
	BacklogSeconds   float64 `json:"backlog_seconds"`
	PoolSize         int     `json:"pool_size"`
	PendingInstances int     `json:"pending_instances"`
	CacheHitRatio    float64 `json:"cache_hit_ratio"`
	GPUSecondsTotal  float64 `json:"gpu_seconds_total"`

	Classes [sched.NumClasses]ClassWindow `json:"classes"`
}

// Export is the full serialized series.
type Export struct {
	IntervalSeconds  float64            `json:"interval_seconds"`
	SLOObjective     float64            `json:"slo_objective"`
	SLOTargetSeconds map[string]float64 `json:"slo_target_seconds"`
	// LatencyBucketsSeconds are the streaming histogram's bounds — the
	// resolution limit of the quantile columns.
	LatencyBucketsSeconds []float64 `json:"latency_buckets_seconds"`
	// DroppedWindows counts rows evicted by the MaxWindows cap.
	DroppedWindows uint64   `json:"dropped_windows"`
	Windows        []Window `json:"windows"`
}

// ClosedWindows returns the number of windows ever closed, including
// rows since evicted by the MaxWindows cap — a monotonic counter.
func (c *Collector) ClosedWindows() uint64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dropped + uint64(len(c.rows))
}

// Windows returns a copy of the closed rows, oldest first.
func (c *Collector) Windows() []Window {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Window, len(c.rows))
	copy(out, c.rows)
	return out
}

// Snapshot renders the series as of sim time now: every closed row plus,
// when the open window has accumulated anything or time has advanced
// into it, a partial row ending at now. It never closes windows — reads
// are side-effect-free, so a server can scrape mid-window.
func (c *Collector) Snapshot(now float64) Export {
	if c == nil {
		return Export{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	exp := Export{
		IntervalSeconds:       c.interval,
		SLOObjective:          c.objective,
		SLOTargetSeconds:      make(map[string]float64, sched.NumClasses),
		LatencyBucketsSeconds: metrics.DefLatencyBuckets,
		DroppedWindows:        c.dropped,
		Windows:               make([]Window, len(c.rows), len(c.rows)+1),
	}
	for i, class := range sched.Classes() {
		exp.SLOTargetSeconds[class.String()] = c.targets[i]
	}
	copy(exp.Windows, c.rows)
	start := c.windowStart(c.idx)
	end := now
	if end > c.windowEnd(c.idx) {
		end = c.windowEnd(c.idx)
	}
	if end > start || c.arrivals > 0 || c.completions > 0 || c.rejects > 0 {
		if end < start {
			end = start
		}
		var g Gauges
		if c.sample != nil {
			g = c.sample(now)
		}
		exp.Windows = append(exp.Windows, c.buildRow(end, g, true))
	}
	return exp
}

// now returns the best notion of current sim time for exports: the
// attached clock when there is one, else the latest event time seen.
func (c *Collector) now() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.clock != nil {
		return c.clock.Now()
	}
	return c.lastNow
}

// WriteJSON writes the Snapshot at the current time as indented JSON.
func (c *Collector) WriteJSON(w io.Writer) error {
	if c == nil {
		return nil
	}
	return WriteJSON(w, c.Snapshot(c.now()))
}

// WriteCSV writes the Snapshot at the current time as CSV.
func (c *Collector) WriteCSV(w io.Writer) error {
	if c == nil {
		return nil
	}
	return WriteCSV(w, c.Snapshot(c.now()))
}

// WriteJSON serializes an export as indented JSON. encoding/json sorts
// map keys, so output is byte-deterministic for identical series.
func WriteJSON(w io.Writer, exp Export) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(exp)
}

// csvHeader builds the flattened column list: window columns, then the
// per-class columns prefixed with the class name.
func csvHeader() []string {
	cols := []string{
		"index", "start_seconds", "end_seconds", "partial",
		"arrivals", "arrival_rps", "completions", "throughput_rps",
		"rejects", "rejects_by_reason", "shed_rate",
		"faults", "orphans_rerouted", "orphans_shed",
		"queued_requests", "backlog_seconds", "pool_size",
		"pending_instances", "cache_hit_ratio", "gpu_seconds_total",
	}
	for _, class := range sched.Classes() {
		p := class.String() + "_"
		cols = append(cols,
			p+"arrivals", p+"completions", p+"rejects",
			p+"p50_seconds", p+"p90_seconds", p+"p99_seconds",
			p+"slo_good", p+"attainment", p+"rolling_attainment", p+"burn_rate")
	}
	return cols
}

func fmtF(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
func fmtU(v uint64) string  { return strconv.FormatUint(v, 10) }
func fmtI(v int64) string   { return strconv.FormatInt(v, 10) }
func fmtBool(b bool) string { return strconv.FormatBool(b) }
func fmtReasons(m map[string]uint64) string {
	if len(m) == 0 {
		return ""
	}
	parts := make([]string, 0, len(m))
	for _, k := range metrics.SortedKeys(m) {
		parts = append(parts, k+"="+fmtU(m[k]))
	}
	return strings.Join(parts, ";")
}

// WriteCSV serializes an export as CSV, one row per window, per-class
// columns flattened with class-name prefixes.
func WriteCSV(w io.Writer, exp Export) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader()); err != nil {
		return err
	}
	for _, win := range exp.Windows {
		rec := []string{
			fmtI(win.Index), fmtF(win.StartSeconds), fmtF(win.EndSeconds), fmtBool(win.Partial),
			fmtU(win.Arrivals), fmtF(win.ArrivalRPS), fmtU(win.Completions), fmtF(win.ThroughputRPS),
			fmtU(win.Rejects), fmtReasons(win.RejectsByReason), fmtF(win.ShedRate),
			fmtU(win.Faults), fmtU(win.OrphansRerouted), fmtU(win.OrphansShed),
			strconv.Itoa(win.QueuedRequests), fmtF(win.BacklogSeconds), strconv.Itoa(win.PoolSize),
			strconv.Itoa(win.PendingInstances), fmtF(win.CacheHitRatio), fmtF(win.GPUSecondsTotal),
		}
		for _, cwin := range win.Classes {
			rec = append(rec,
				fmtU(cwin.Arrivals), fmtU(cwin.Completions), fmtU(cwin.Rejects),
				fmtF(cwin.P50Seconds), fmtF(cwin.P90Seconds), fmtF(cwin.P99Seconds),
				fmtU(cwin.SLOGood), fmtF(cwin.Attainment), fmtF(cwin.RollingAttainment), fmtF(cwin.BurnRate))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
