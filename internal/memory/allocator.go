// Package memory simulates a GPU memory allocator with the observable
// behaviour of PyTorch's caching allocator: a running total of live bytes,
// a high-water mark, optional out-of-memory enforcement against a capacity,
// and a timestamped allocation trace.
//
// The graph executor (internal/graph) allocates and frees simulated tensors
// through this package in the same order a real forward pass would, so the
// Figure-3 memory spikes and the maximum-input-length limits of the paper
// emerge from allocation behaviour rather than from closed-form constants.
package memory

import (
	"errors"
	"fmt"
	"sort"
)

// ErrOutOfMemory is returned by Alloc when the requested bytes do not fit
// in the configured capacity.
var ErrOutOfMemory = errors.New("memory: out of device memory")

// Allocation is a live block of simulated device memory. It is returned by
// Alloc and must be released with Free exactly once.
type Allocation struct {
	id    int64
	bytes int64
	tag   string
	freed bool
}

// Bytes returns the size of the allocation.
func (a *Allocation) Bytes() int64 { return a.bytes }

// Tag returns the label given at allocation time (e.g. "mlp.intermediate1").
func (a *Allocation) Tag() string { return a.tag }

// TracePoint is one sample of allocator state, recorded at every allocation
// and free when tracing is enabled.
type TracePoint struct {
	// Time is the simulated timestamp in seconds provided by the clock
	// function, or the event ordinal when no clock is configured.
	Time float64
	// Live is the total live bytes after the event.
	Live int64
	// Event is "alloc" or "free".
	Event string
	// Tag is the tensor label of the block involved.
	Tag string
	// Bytes is the size of the block involved.
	Bytes int64
}

// Allocator tracks live simulated device memory.
//
// The zero value is not usable; construct with New. Allocator is not
// goroutine-safe: each simulated device is driven by one goroutine.
type Allocator struct {
	capacity int64 // 0 = unlimited (peak-measurement mode)
	live     int64
	peak     int64
	nextID   int64
	liveSet  map[int64]*Allocation

	tracing bool
	clock   func() float64
	trace   []TracePoint
}

// New returns an allocator with the given capacity in bytes. A capacity of
// zero disables OOM enforcement, which is how profile runs measure the peak
// footprint of a hypothetical request.
func New(capacity int64) *Allocator {
	return &Allocator{capacity: capacity, liveSet: make(map[int64]*Allocation)}
}

// SetClock installs a simulated-time source used to timestamp trace points.
func (m *Allocator) SetClock(clock func() float64) { m.clock = clock }

// StartTrace clears any previous trace and begins recording.
func (m *Allocator) StartTrace() {
	m.tracing = true
	m.trace = m.trace[:0]
}

// StopTrace stops recording and returns the captured trace.
func (m *Allocator) StopTrace() []TracePoint {
	m.tracing = false
	return m.trace
}

// Capacity returns the configured capacity (0 = unlimited).
func (m *Allocator) Capacity() int64 { return m.capacity }

// Live returns the currently allocated bytes.
func (m *Allocator) Live() int64 { return m.live }

// Peak returns the high-water mark since construction or the last ResetPeak.
func (m *Allocator) Peak() int64 { return m.peak }

// ResetPeak sets the high-water mark to the current live bytes.
func (m *Allocator) ResetPeak() { m.peak = m.live }

// Free releases an allocation. Freeing nil is a no-op; double-free panics,
// as it indicates a bug in the executor rather than a runtime condition.
func (m *Allocator) Free(a *Allocation) {
	if a == nil {
		return
	}
	if a.freed {
		panic(fmt.Sprintf("memory: double free of %q (%d bytes)", a.tag, a.bytes))
	}
	a.freed = true
	delete(m.liveSet, a.id)
	m.live -= a.bytes
	m.record("free", a.tag, a.bytes)
}

// Alloc reserves bytes of simulated memory labeled with tag. It fails with
// an error wrapping ErrOutOfMemory when a capacity is set and would be
// exceeded.
func (m *Allocator) Alloc(bytes int64, tag string) (*Allocation, error) {
	if bytes < 0 {
		return nil, fmt.Errorf("memory: negative allocation %d for %q", bytes, tag)
	}
	if m.capacity > 0 && m.live+bytes > m.capacity {
		return nil, fmt.Errorf("memory: alloc %q (%d bytes) over capacity (live %d / cap %d): %w",
			tag, bytes, m.live, m.capacity, ErrOutOfMemory)
	}
	m.nextID++
	a := &Allocation{id: m.nextID, bytes: bytes, tag: tag}
	m.liveSet[a.id] = a
	m.live += bytes
	if m.live > m.peak {
		m.peak = m.live
	}
	m.record("alloc", tag, bytes)
	return a, nil
}

// MustAlloc is Alloc for callers that run in unlimited-capacity mode and
// treat failure as a programming error.
func (m *Allocator) MustAlloc(bytes int64, tag string) *Allocation {
	a, err := m.Alloc(bytes, tag)
	if err != nil {
		panic(err)
	}
	return a
}

// LiveByTag returns the live bytes aggregated per tag, for diagnostics.
func (m *Allocator) LiveByTag() map[string]int64 {
	out := make(map[string]int64)
	for _, a := range m.liveSet {
		out[a.tag] += a.bytes
	}
	return out
}

// LiveAllocations returns the number of outstanding allocations.
func (m *Allocator) LiveAllocations() int { return len(m.liveSet) }

func (m *Allocator) record(event, tag string, bytes int64) {
	if !m.tracing {
		return
	}
	t := float64(len(m.trace))
	if m.clock != nil {
		t = m.clock()
	}
	m.trace = append(m.trace, TracePoint{Time: t, Live: m.live, Event: event, Tag: tag, Bytes: bytes})
}

// PeakOf replays fn against a fresh unlimited allocator and returns the peak
// footprint it produced. fn receives the allocator and must free what it
// allocates (leaks are reported as an error to catch executor bugs).
func PeakOf(fn func(*Allocator) error) (int64, error) {
	m := New(0)
	if err := fn(m); err != nil {
		return 0, err
	}
	if m.live != 0 {
		return 0, fmt.Errorf("memory: %d bytes leaked across %d allocations (by tag: %v)",
			m.live, len(m.liveSet), m.LiveByTag())
	}
	return m.peak, nil
}

// TraceSummary aggregates a trace into per-tag peak contributions, useful
// for attributing Figure-3 spikes to specific tensors.
func TraceSummary(trace []TracePoint) map[string]int64 {
	peaks := make(map[string]int64)
	live := make(map[string]int64)
	for _, p := range trace {
		switch p.Event {
		case "alloc":
			live[p.Tag] += p.Bytes
		case "free":
			live[p.Tag] -= p.Bytes
		}
		if live[p.Tag] > peaks[p.Tag] {
			peaks[p.Tag] = live[p.Tag]
		}
	}
	return peaks
}

// TraceTags returns the distinct tags of a trace in sorted order.
func TraceTags(trace []TracePoint) []string {
	set := make(map[string]struct{})
	for _, p := range trace {
		set[p.Tag] = struct{}{}
	}
	tags := make([]string, 0, len(set))
	for t := range set {
		tags = append(tags, t)
	}
	sort.Strings(tags)
	return tags
}
