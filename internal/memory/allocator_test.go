package memory

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestAllocFreeAccounting(t *testing.T) {
	m := New(0)
	a, err := m.Alloc(100, "a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Alloc(50, "b")
	if err != nil {
		t.Fatal(err)
	}
	if m.Live() != 150 {
		t.Fatalf("live = %d, want 150", m.Live())
	}
	m.Free(a)
	if m.Live() != 50 {
		t.Fatalf("live after free = %d, want 50", m.Live())
	}
	if m.Peak() != 150 {
		t.Fatalf("peak = %d, want 150", m.Peak())
	}
	m.Free(b)
	if m.Live() != 0 || m.LiveAllocations() != 0 {
		t.Fatalf("live = %d, allocations = %d; want 0, 0", m.Live(), m.LiveAllocations())
	}
}

func TestOOMEnforcement(t *testing.T) {
	m := New(100)
	a, err := m.Alloc(80, "a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Alloc(30, "b"); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("expected ErrOutOfMemory, got %v", err)
	}
	m.Free(a)
	if _, err := m.Alloc(30, "b"); err != nil {
		t.Fatalf("alloc after free failed: %v", err)
	}
}

func TestDoubleFreePanics(t *testing.T) {
	m := New(0)
	a := m.MustAlloc(10, "x")
	m.Free(a)
	defer func() {
		if recover() == nil {
			t.Fatal("double free did not panic")
		}
	}()
	m.Free(a)
}

func TestFreeNilNoop(t *testing.T) {
	m := New(0)
	m.Free(nil)
	if m.Live() != 0 {
		t.Fatal("Free(nil) changed accounting")
	}
}

func TestNegativeAllocRejected(t *testing.T) {
	m := New(0)
	if _, err := m.Alloc(-5, "neg"); err == nil {
		t.Fatal("negative allocation accepted")
	}
}

func TestTraceRecordsEvents(t *testing.T) {
	m := New(0)
	m.StartTrace()
	a := m.MustAlloc(10, "t1")
	b := m.MustAlloc(20, "t2")
	m.Free(a)
	m.Free(b)
	tr := m.StopTrace()
	if len(tr) != 4 {
		t.Fatalf("trace length = %d, want 4", len(tr))
	}
	if tr[1].Live != 30 || tr[3].Live != 0 {
		t.Fatalf("trace live values wrong: %+v", tr)
	}
	tags := TraceTags(tr)
	if len(tags) != 2 || tags[0] != "t1" || tags[1] != "t2" {
		t.Fatalf("trace tags = %v", tags)
	}
	peaks := TraceSummary(tr)
	if peaks["t1"] != 10 || peaks["t2"] != 20 {
		t.Fatalf("trace summary = %v", peaks)
	}
}

func TestTraceUsesClock(t *testing.T) {
	m := New(0)
	now := 1.5
	m.SetClock(func() float64 { return now })
	m.StartTrace()
	a := m.MustAlloc(1, "x")
	now = 2.5
	m.Free(a)
	tr := m.StopTrace()
	if tr[0].Time != 1.5 || tr[1].Time != 2.5 {
		t.Fatalf("trace times = %v, %v; want 1.5, 2.5", tr[0].Time, tr[1].Time)
	}
}

func TestPeakOfDetectsLeak(t *testing.T) {
	_, err := PeakOf(func(m *Allocator) error {
		m.MustAlloc(10, "leak")
		return nil
	})
	if err == nil {
		t.Fatal("PeakOf did not report leak")
	}
}

func TestPeakOfMeasuresPeak(t *testing.T) {
	peak, err := PeakOf(func(m *Allocator) error {
		a := m.MustAlloc(100, "a")
		b := m.MustAlloc(200, "b")
		m.Free(a)
		c := m.MustAlloc(50, "c")
		m.Free(b)
		m.Free(c)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if peak != 300 {
		t.Fatalf("peak = %d, want 300", peak)
	}
}

func TestResetPeak(t *testing.T) {
	m := New(0)
	a := m.MustAlloc(100, "a")
	m.Free(a)
	m.ResetPeak()
	if m.Peak() != 0 {
		t.Fatalf("peak after reset = %d, want 0", m.Peak())
	}
}

// Property: for any sequence of alloc/free operations, live equals the sum
// of outstanding allocations and peak >= live at all times.
func TestAllocatorInvariants(t *testing.T) {
	f := func(sizes []uint16) bool {
		m := New(0)
		var live int64
		var allocs []*Allocation
		for i, s := range sizes {
			if i%3 == 2 && len(allocs) > 0 {
				// Free the oldest outstanding allocation.
				a := allocs[0]
				allocs = allocs[1:]
				live -= a.Bytes()
				m.Free(a)
			} else {
				a := m.MustAlloc(int64(s), "p")
				allocs = append(allocs, a)
				live += int64(s)
			}
			if m.Live() != live || m.Peak() < m.Live() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
