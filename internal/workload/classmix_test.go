package workload

import (
	"testing"

	"repro/internal/sched"
)

func TestClassMixComposition(t *testing.T) {
	d := ClassMix(ClassMixConfig{Seed: 7})
	counts := ClassCounts(d)
	nb, ni := counts[sched.ClassBatch], counts[sched.ClassInteractive]
	if ni == 0 || nb == 0 {
		t.Fatalf("degenerate mix: interactive=%d batch=%d", ni, nb)
	}
	frac := float64(nb) / float64(nb+ni)
	if frac < 0.15 || frac > 0.35 {
		t.Fatalf("batch fraction %.2f far from the 0.25 default", frac)
	}
	seenUser := make(map[int]sched.Class)
	for i, r := range d.Requests {
		if r.ID != int64(i+1) {
			t.Fatalf("IDs not sequential after shuffle: request %d has ID %d", i, r.ID)
		}
		if r.Class == sched.ClassBatch && r.UserID < batchUserBase {
			t.Fatalf("batch request %d has interactive-range user %d", r.ID, r.UserID)
		}
		if prev, ok := seenUser[r.UserID]; ok && prev != r.Class {
			t.Fatalf("user %d appears in both classes", r.UserID)
		}
		seenUser[r.UserID] = r.Class
		if r.Class == sched.ClassBatch {
			if r.Len() < 6000 || r.Len() > 12000+templateTokens {
				t.Fatalf("batch doc length %d outside configured bounds", r.Len())
			}
		}
	}
	// The two tenants must interleave, not concatenate: the first quarter
	// of the (shuffled) dataset should already contain both classes.
	head := ClassCounts(&Dataset{Requests: d.Requests[:len(d.Requests)/4]})
	if head[sched.ClassBatch] == 0 || head[sched.ClassInteractive] == 0 {
		t.Fatalf("classes not interleaved in dataset head: %v", head)
	}
}

// Seeded determinism: the class-mix generator must be stable across runs —
// identical IDs, users, classes and token streams for one seed, and a
// different interleaving for another.
func TestClassMixDeterministicAcrossRuns(t *testing.T) {
	a := ClassMix(ClassMixConfig{Seed: 42})
	b := ClassMix(ClassMixConfig{Seed: 42})
	if len(a.Requests) != len(b.Requests) {
		t.Fatalf("sizes diverge: %d vs %d", len(a.Requests), len(b.Requests))
	}
	for i := range a.Requests {
		ra, rb := a.Requests[i], b.Requests[i]
		if ra.ID != rb.ID || ra.UserID != rb.UserID || ra.Class != rb.Class || ra.Len() != rb.Len() {
			t.Fatalf("request %d diverges: {%d %d %v %d} vs {%d %d %v %d}",
				i, ra.ID, ra.UserID, ra.Class, ra.Len(), rb.ID, rb.UserID, rb.Class, rb.Len())
		}
		for j := range ra.Tokens {
			if ra.Tokens[j] != rb.Tokens[j] {
				t.Fatalf("request %d token %d diverges", i, j)
			}
		}
	}
	c := ClassMix(ClassMixConfig{Seed: 43})
	same := true
	for i := range a.Requests {
		if i >= len(c.Requests) || a.Requests[i].UserID != c.Requests[i].UserID ||
			a.Requests[i].Class != c.Requests[i].Class || a.Requests[i].Len() != c.Requests[i].Len() {
			same = false
			break
		}
	}
	if same && len(a.Requests) == len(c.Requests) {
		t.Fatal("different seeds produced an identical dataset")
	}
}
