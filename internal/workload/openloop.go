package workload

import (
	"fmt"
	"math"
	"math/rand"
)

// RateFn is a time-varying offered load in requests/second at simulated
// time t. Real traffic is diurnal and bursty, not stationary; the
// autoscale experiments drive the cluster with these profiles instead of
// the paper's homogeneous Poisson process.
type RateFn func(t float64) float64

// SquareWaveRate alternates between base and peak requests/second: each
// period starts with peak load for duty·period seconds, then falls back to
// base. This is the worst case for an autoscaler — the rate jumps
// instantly by peak/base, so every scale-up decision races a filling
// backlog against the cold-start delay.
func SquareWaveRate(base, peak, period, duty float64) RateFn {
	return func(t float64) float64 {
		phase := math.Mod(t, period)
		if phase < 0 {
			phase += period
		}
		if phase < duty*period {
			return peak
		}
		return base
	}
}

// DiurnalRate is a smooth day/night cycle: a raised cosine between base
// (trough) and peak (midday) with the given period. Unlike the square
// wave, load changes gradually, so a trailing-signal autoscaler can track
// it almost losslessly.
func DiurnalRate(base, peak, period float64) RateFn {
	return func(t float64) float64 {
		return base + (peak-base)*0.5*(1-math.Cos(2*math.Pi*t/period))
	}
}

// AssignOpenLoopArrivals stamps arrival times on a dataset from a
// non-homogeneous Poisson process with rate rate(t), via Lewis-Shedler
// thinning: candidate arrivals are drawn at maxRate and kept with
// probability rate(t)/maxRate. Requests are assigned in dataset order
// (the arrival process is open-loop per request, not per user — the
// bursty scenarios model aggregate traffic, not one application's
// fan-out). rate values above maxRate are effectively clamped to maxRate;
// rate must be positive somewhere recurrently or generation cannot
// terminate. The returned slice is sorted by time and each request's
// ArrivalTime field is set.
func AssignOpenLoopArrivals(d *Dataset, rate RateFn, maxRate float64, seed int64) ([]Arrival, error) {
	if rate == nil {
		return nil, fmt.Errorf("workload: rate function is required")
	}
	if maxRate <= 0 {
		return nil, fmt.Errorf("workload: maxRate must be positive, got %v", maxRate)
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]Arrival, 0, len(d.Requests))
	t := 0.0
	for _, r := range d.Requests {
		for {
			t += rng.ExpFloat64() / maxRate
			if rng.Float64()*maxRate < rate(t) {
				break
			}
		}
		r.ArrivalTime = t
		out = append(out, Arrival{Req: r, Time: t})
	}
	return out, nil
}
