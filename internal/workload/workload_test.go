package workload

import (
	"testing"
)

func TestPostRecommendationTable1(t *testing.T) {
	d := PostRecommendation(PostRecommendationConfig{Seed: 1})
	if d.Users != 20 || d.RequestsPerUser != 50 {
		t.Fatalf("users=%d rpu=%d", d.Users, d.RequestsPerUser)
	}
	if len(d.Requests) != 1000 {
		t.Fatalf("requests = %d, want 1000", len(d.Requests))
	}
	// Table 1: ~14M total tokens.
	total := d.TotalTokens()
	if total < 11_000_000 || total > 18_000_000 {
		t.Fatalf("total tokens = %d, want ~14M", total)
	}
	for _, r := range d.Requests {
		n := r.Len() - templateTokens
		if n < 11_000+150 || n > 17_000+150 {
			t.Fatalf("request length %d outside profile+post bounds", n)
		}
	}
}

func TestPostRecommendationPrefixSharing(t *testing.T) {
	d := PostRecommendation(PostRecommendationConfig{Seed: 2})
	// Two requests of the same user share template+profile; different
	// users share only the template.
	var u0 []*int
	_ = u0
	r1, r2 := d.Requests[0], d.Requests[1]
	if r1.UserID != r2.UserID {
		t.Fatal("first two requests should be same user")
	}
	share := commonPrefix(r1.Tokens, r2.Tokens)
	if share < 11000 {
		t.Fatalf("same-user shared prefix = %d, want >= profile length", share)
	}
	other := d.Requests[len(d.Requests)-1]
	if other.UserID == r1.UserID {
		t.Fatal("last request should be a different user")
	}
	cross := commonPrefix(r1.Tokens, other.Tokens)
	if cross != templateTokens {
		t.Fatalf("cross-user shared prefix = %d, want template only (%d)", cross, templateTokens)
	}
}

func commonPrefix(a, b []uint64) int {
	n := 0
	for n < len(a) && n < len(b) && a[n] == b[n] {
		n++
	}
	return n
}

func TestCreditVerificationTable1(t *testing.T) {
	d := CreditVerification(CreditVerificationConfig{Seed: 3})
	if d.Users != 60 || len(d.Requests) != 60 || d.RequestsPerUser != 1 {
		t.Fatalf("users=%d requests=%d", d.Users, len(d.Requests))
	}
	total := d.TotalTokens()
	if total < 2_400_000 || total > 3_700_000 {
		t.Fatalf("total tokens = %d, want ~3M", total)
	}
	for _, r := range d.Requests {
		n := r.Len() - templateTokens
		if n < 40_000 || n > 60_000 {
			t.Fatalf("history length %d outside [40k,60k]", n)
		}
	}
	if d.MaxLen > 60_000+templateTokens {
		t.Fatalf("MaxLen %d too large", d.MaxLen)
	}
}

func TestDeterministicGeneration(t *testing.T) {
	a := PostRecommendation(PostRecommendationConfig{Seed: 5})
	b := PostRecommendation(PostRecommendationConfig{Seed: 5})
	if a.TotalTokens() != b.TotalTokens() {
		t.Fatal("same seed, different datasets")
	}
	for i := range a.Requests {
		if a.Requests[i].Len() != b.Requests[i].Len() {
			t.Fatal("request lengths differ")
		}
	}
	c := PostRecommendation(PostRecommendationConfig{Seed: 6})
	if a.TotalTokens() == c.TotalTokens() {
		t.Fatal("different seeds produced identical datasets (suspicious)")
	}
}

func TestAssignPoissonArrivals(t *testing.T) {
	d := PostRecommendation(PostRecommendationConfig{Seed: 7})
	arrivals, err := AssignPoissonArrivals(d, 10, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(arrivals) != len(d.Requests) {
		t.Fatalf("arrivals = %d, want %d", len(arrivals), len(d.Requests))
	}
	// Sorted by time.
	byUser := make(map[int]float64)
	for i := 1; i < len(arrivals); i++ {
		if arrivals[i].Time < arrivals[i-1].Time {
			t.Fatal("arrivals not sorted")
		}
	}
	// All requests of one user land within the burst span of the user's
	// arrival.
	for _, a := range arrivals {
		if first, ok := byUser[a.Req.UserID]; !ok || a.Time < first {
			byUser[a.Req.UserID] = a.Time
		}
	}
	for _, a := range arrivals {
		if a.Time-byUser[a.Req.UserID] > DefaultBurstSpan+1e-9 {
			t.Fatalf("user %d request at %.2f exceeds burst span from %.2f",
				a.Req.UserID, a.Time, byUser[a.Req.UserID])
		}
	}
	// Mean inter-user gap ≈ RequestsPerUser/qps = 5s.
	span := arrivals[len(arrivals)-1].Time - arrivals[0].Time - DefaultBurstSpan
	meanGap := span / float64(d.Users-1)
	if meanGap < 2.5 || meanGap > 10 {
		t.Fatalf("mean user gap = %.2fs, want ~5s", meanGap)
	}
}

func TestZeroSpanSimultaneousBurst(t *testing.T) {
	d := PostRecommendation(PostRecommendationConfig{Users: 3, Seed: 7})
	arrivals, err := AssignPoissonArrivalsSpan(d, 10, 0, 42)
	if err != nil {
		t.Fatal(err)
	}
	times := map[int]float64{}
	for _, a := range arrivals {
		if tt, ok := times[a.Req.UserID]; ok && tt != a.Time {
			t.Fatal("zero span should make a user's requests simultaneous")
		}
		times[a.Req.UserID] = a.Time
	}
}

func TestNegativeSpanRejected(t *testing.T) {
	d := CreditVerification(CreditVerificationConfig{Users: 2, Seed: 1})
	if _, err := AssignPoissonArrivalsSpan(d, 1, -1, 1); err == nil {
		t.Fatal("negative span accepted")
	}
}

func TestAssignPoissonArrivalsRejectsBadQPS(t *testing.T) {
	d := CreditVerification(CreditVerificationConfig{Seed: 1})
	if _, err := AssignPoissonArrivals(d, 0, 1); err == nil {
		t.Fatal("qps=0 accepted")
	}
}

func TestCustomConfigRespected(t *testing.T) {
	d := PostRecommendation(PostRecommendationConfig{Users: 3, PostsPerUser: 2, Seed: 1})
	if d.Users != 3 || len(d.Requests) != 6 {
		t.Fatalf("custom config ignored: users=%d requests=%d", d.Users, len(d.Requests))
	}
	c := CreditVerification(CreditVerificationConfig{Users: 5, HistoryMin: 100, HistoryMax: 200, Seed: 1})
	if len(c.Requests) != 5 {
		t.Fatalf("credit custom config ignored")
	}
	for _, r := range c.Requests {
		if n := r.Len() - templateTokens; n < 100 || n > 200 {
			t.Fatalf("history length %d outside custom bounds", n)
		}
	}
}

func TestCloneIsolatesRequestMutation(t *testing.T) {
	base := PostRecommendation(PostRecommendationConfig{Users: 3, PostsPerUser: 2, Seed: 1})
	c1, c2 := base.Clone(), base.Clone()
	if len(c1.Requests) != len(base.Requests) {
		t.Fatalf("clone has %d requests, base %d", len(c1.Requests), len(base.Requests))
	}
	for i, r := range c1.Requests {
		if r == base.Requests[i] {
			t.Fatalf("clone shares request struct %d with base", i)
		}
		// Token storage is shared (immutable), not copied.
		if len(r.Tokens) > 0 && &r.Tokens[0] != &base.Requests[i].Tokens[0] {
			t.Fatalf("clone copied token storage of request %d", i)
		}
	}
	// Mutating a clone (what a run does) must not leak into base or
	// sibling clones.
	c1.Requests[0].ArrivalTime = 42
	c1.Requests[0].BlockHashes = []uint64{1, 2, 3}
	c1.Requests[0].HashBlockTokens = 16
	if base.Requests[0].ArrivalTime == 42 || base.Requests[0].BlockHashes != nil {
		t.Fatal("clone mutation leaked into base")
	}
	if c2.Requests[0].ArrivalTime == 42 || c2.Requests[0].BlockHashes != nil {
		t.Fatal("clone mutation leaked into sibling clone")
	}
}
