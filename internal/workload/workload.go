// Package workload synthesizes the paper's two evaluation datasets
// (Table 1) and their Poisson arrival process (§7.1):
//
//   - Post recommendation: 20 users, user profiles of 11k–17k tokens
//     (normal, mean 14k, std 3k), 50 posts of 150 tokens per user. All 50
//     requests of a user share the profile as a prompt prefix, so this
//     dataset exercises frequent prefix-cache reuse.
//   - Credit verification: 60 users, one request each, 40k–60k tokens of
//     credit history. This dataset exercises long inputs.
//
// Token IDs are deterministic pseudo-random streams: requests from the same
// user share their prefix tokens exactly (so content-addressed prefix
// caching works), and different users never collide.
package workload

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/sched"
)

// templateTokens is the shared instruction preamble every request starts
// with ("You are a recommendation assistant …"); it is identical across
// users, giving even cross-user requests a small shared prefix.
const templateTokens = 32

// Dataset is a generated request population without arrival times.
type Dataset struct {
	// Name identifies the dataset ("post-recommendation", "credit-verification").
	Name string
	// Requests holds every request, grouped by user in submission order.
	Requests []*sched.Request
	// Users is the number of distinct users.
	Users int
	// RequestsPerUser is the per-user request count (1 for credit).
	RequestsPerUser int
	// MaxLen is the longest request in tokens.
	MaxLen int
}

// Clone returns a copy of the dataset whose request structs are fresh but
// whose token storage (and allowed-token lists) is shared with the
// original. Tokens are immutable once generated, but runs mutate the
// wrapping Request — arrival stamps, memoized block-hash chains — so
// concurrent sweep cells must each run against their own clone; sharing
// the multi-megabyte token arrays keeps that cheap.
func (d *Dataset) Clone() *Dataset {
	c := *d
	c.Requests = make([]*sched.Request, len(d.Requests))
	for i, r := range d.Requests {
		rc := *r
		c.Requests[i] = &rc
	}
	return &c
}

// TotalTokens sums the input lengths of all requests.
func (d *Dataset) TotalTokens() int64 {
	var n int64
	for _, r := range d.Requests {
		n += int64(r.Len())
	}
	return n
}

// MeanLen is the average request length in tokens.
func (d *Dataset) MeanLen() float64 {
	if len(d.Requests) == 0 {
		return 0
	}
	return float64(d.TotalTokens()) / float64(len(d.Requests))
}

// tokenStream fills out with a deterministic stream unique to (kind, user,
// item).
func tokenStream(out []uint64, kind, user, item int) {
	rng := rand.New(rand.NewSource(int64(kind)<<40 ^ int64(user)<<20 ^ int64(item)))
	for i := range out {
		out[i] = rng.Uint64()
	}
}

const (
	kindTemplate = iota + 1
	kindProfile
	kindPost
	kindCredit
)

// PostRecommendationConfig parameterizes the post-recommendation dataset;
// zero values take the paper's Table-1 numbers.
type PostRecommendationConfig struct {
	Users        int     // default 20
	PostsPerUser int     // default 50
	PostLen      int     // default 150
	ProfileMean  float64 // default 14000
	ProfileStd   float64 // default 3000
	ProfileMin   int     // default 11000
	ProfileMax   int     // default 17000
	Seed         int64
}

func (c *PostRecommendationConfig) defaults() {
	if c.Users == 0 {
		c.Users = 20
	}
	if c.PostsPerUser == 0 {
		c.PostsPerUser = 50
	}
	if c.PostLen == 0 {
		c.PostLen = 150
	}
	if c.ProfileMean == 0 {
		c.ProfileMean = 14000
	}
	if c.ProfileStd == 0 {
		c.ProfileStd = 3000
	}
	if c.ProfileMin == 0 {
		c.ProfileMin = 11000
	}
	if c.ProfileMax == 0 {
		c.ProfileMax = 17000
	}
}

// PostRecommendation generates the post-recommendation dataset.
func PostRecommendation(cfg PostRecommendationConfig) *Dataset {
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x1e3779b97f4a7c15))
	template := make([]uint64, templateTokens)
	tokenStream(template, kindTemplate, 0, 0)

	d := &Dataset{
		Name:            "post-recommendation",
		Users:           cfg.Users,
		RequestsPerUser: cfg.PostsPerUser,
	}
	var id int64
	for u := 0; u < cfg.Users; u++ {
		plen := int(rng.NormFloat64()*cfg.ProfileStd + cfg.ProfileMean)
		if plen < cfg.ProfileMin {
			plen = cfg.ProfileMin
		}
		if plen > cfg.ProfileMax {
			plen = cfg.ProfileMax
		}
		profile := make([]uint64, plen)
		tokenStream(profile, kindProfile, u, 0)
		for p := 0; p < cfg.PostsPerUser; p++ {
			post := make([]uint64, cfg.PostLen)
			tokenStream(post, kindPost, u, p)
			toks := make([]uint64, 0, templateTokens+plen+cfg.PostLen)
			toks = append(toks, template...)
			toks = append(toks, profile...)
			toks = append(toks, post...)
			id++
			r := &sched.Request{
				ID:            id,
				UserID:        u,
				Tokens:        toks,
				AllowedTokens: []string{"Yes", "No"},
			}
			d.Requests = append(d.Requests, r)
			if r.Len() > d.MaxLen {
				d.MaxLen = r.Len()
			}
		}
	}
	return d
}

// CreditVerificationConfig parameterizes the credit-verification dataset;
// zero values take the paper's Table-1 numbers.
type CreditVerificationConfig struct {
	Users      int // default 60
	HistoryMin int // default 40000
	HistoryMax int // default 60000
	Seed       int64
}

func (c *CreditVerificationConfig) defaults() {
	if c.Users == 0 {
		c.Users = 60
	}
	if c.HistoryMin == 0 {
		c.HistoryMin = 40000
	}
	if c.HistoryMax == 0 {
		c.HistoryMax = 60000
	}
}

// CreditVerification generates the credit-verification dataset.
func CreditVerification(cfg CreditVerificationConfig) *Dataset {
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x7f4a7c159e3779b9))
	template := make([]uint64, templateTokens)
	tokenStream(template, kindTemplate, 0, 0)

	d := &Dataset{
		Name:            "credit-verification",
		Users:           cfg.Users,
		RequestsPerUser: 1,
	}
	for u := 0; u < cfg.Users; u++ {
		hlen := cfg.HistoryMin + rng.Intn(cfg.HistoryMax-cfg.HistoryMin+1)
		hist := make([]uint64, hlen)
		tokenStream(hist, kindCredit, u, 0)
		toks := make([]uint64, 0, templateTokens+hlen)
		toks = append(toks, template...)
		toks = append(toks, hist...)
		r := &sched.Request{
			ID:            int64(u + 1),
			UserID:        u,
			Tokens:        toks,
			AllowedTokens: []string{"Approve", "Deny"},
		}
		d.Requests = append(d.Requests, r)
		if r.Len() > d.MaxLen {
			d.MaxLen = r.Len()
		}
	}
	return d
}

// Arrival pairs a request with its arrival time.
type Arrival struct {
	Req  *sched.Request
	Time float64
}

// DefaultBurstSpan is the window (seconds) over which one user's burst of
// requests is issued by the upstream application (the recommender fans its
// 50 candidate posts out over a short window rather than in one packet).
// At high user rates the bursts of different users overlap, which is what
// exposes prefix-cache throttling in FCFS engines (Figure 9).
const DefaultBurstSpan = 10.0

// AssignPoissonArrivals stamps arrival times on a dataset with the paper's
// §7.1 arrival pattern: users arrive as a Poisson process, and each user's
// requests are issued over DefaultBurstSpan seconds. qps is the request
// rate, so the user rate is qps/RequestsPerUser. The returned slice is
// sorted by time, and each request's ArrivalTime field is set.
func AssignPoissonArrivals(d *Dataset, qps float64, seed int64) ([]Arrival, error) {
	return AssignPoissonArrivalsSpan(d, qps, DefaultBurstSpan, seed)
}

// AssignPoissonArrivalsSpan is AssignPoissonArrivals with an explicit
// burst span; span 0 makes each user's requests arrive simultaneously.
func AssignPoissonArrivalsSpan(d *Dataset, qps, span float64, seed int64) ([]Arrival, error) {
	if qps <= 0 {
		return nil, fmt.Errorf("workload: qps must be positive, got %v", qps)
	}
	if span < 0 {
		return nil, fmt.Errorf("workload: burst span must be non-negative, got %v", span)
	}
	userRate := qps / float64(d.RequestsPerUser)
	rng := rand.New(rand.NewSource(seed))
	userTime := make(map[int]float64, d.Users)
	userSeq := make(map[int]int, d.Users)
	t := 0.0
	// Users arrive in their generation order.
	for _, r := range d.Requests {
		if _, ok := userTime[r.UserID]; !ok {
			t += rng.ExpFloat64() / userRate
			userTime[r.UserID] = t
		}
	}
	gap := 0.0
	if d.RequestsPerUser > 1 {
		gap = span / float64(d.RequestsPerUser-1)
	}
	out := make([]Arrival, len(d.Requests))
	for i, r := range d.Requests {
		seq := userSeq[r.UserID]
		userSeq[r.UserID] = seq + 1
		r.ArrivalTime = userTime[r.UserID] + float64(seq)*gap
		out[i] = Arrival{Req: r, Time: r.ArrivalTime}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Time < out[j].Time })
	return out, nil
}
