package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/sched"
)

// Extra token-stream kinds for the skewed dataset, disjoint from the
// Table-1 kinds so the two populations never share prefixes.
const (
	kindSkewProfile = iota + 16
	kindSkewPost
)

// SkewedConfig parameterizes the Zipf user-popularity dataset: per-user
// request counts follow a Zipf law (the rank-r user issues requests with
// probability ∝ 1/r^Exponent), so a few hot users dominate traffic while
// the long tail appears once or twice. Requests look like post
// recommendation — a per-user profile prefix plus a fresh post suffix —
// so hot users are exactly the ones whose prefixes reward cache affinity,
// and load-blind routing piles their traffic on one instance. Zero values
// take the defaults below.
type SkewedConfig struct {
	Users       int     // user population (default 64)
	Requests    int     // total requests drawn (default 512)
	Exponent    float64 // Zipf exponent, must be > 1 (default 1.4)
	ProfileMean float64 // default 8000
	ProfileStd  float64 // default 2000
	ProfileMin  int     // default 4000
	ProfileMax  int     // default 12000
	PostLen     int     // default 150
	Seed        int64
}

func (c *SkewedConfig) defaults() {
	if c.Users == 0 {
		c.Users = 64
	}
	if c.Requests == 0 {
		c.Requests = 512
	}
	if c.Exponent == 0 {
		c.Exponent = 1.4
	}
	if c.ProfileMean == 0 {
		c.ProfileMean = 8000
	}
	if c.ProfileStd == 0 {
		c.ProfileStd = 2000
	}
	if c.ProfileMin == 0 {
		c.ProfileMin = 4000
	}
	if c.ProfileMax == 0 {
		c.ProfileMax = 12000
	}
	if c.PostLen == 0 {
		c.PostLen = 150
	}
}

// Skewed generates the Zipf-skewed dataset. Dataset.Users reports the
// population size (distinct users actually drawn may be fewer), and
// Dataset.RequestsPerUser reports the mean request count, which
// AssignPoissonArrivals uses as the burst size approximation. A
// non-zero Exponent <= 1 panics: rand.NewZipf is undefined there, and a
// silent fallback would change the workload's shape.
func Skewed(cfg SkewedConfig) *Dataset {
	cfg.defaults()
	if cfg.Exponent <= 1 {
		panic(fmt.Sprintf("workload: Skewed Exponent must be > 1, got %g", cfg.Exponent))
	}
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x5851f42d4c957f2d))
	zipf := rand.NewZipf(rng, cfg.Exponent, 1, uint64(cfg.Users-1))
	template := make([]uint64, templateTokens)
	tokenStream(template, kindTemplate, 0, 0)

	perUser := cfg.Requests / cfg.Users
	if perUser < 1 {
		perUser = 1
	}
	d := &Dataset{
		Name:            "zipf-skewed",
		Users:           cfg.Users,
		RequestsPerUser: perUser,
	}
	profiles := make(map[int][]uint64, cfg.Users)
	postSeq := make(map[int]int, cfg.Users)
	for id := int64(1); id <= int64(cfg.Requests); id++ {
		u := int(zipf.Uint64())
		profile, ok := profiles[u]
		if !ok {
			plen := int(rng.NormFloat64()*cfg.ProfileStd + cfg.ProfileMean)
			if plen < cfg.ProfileMin {
				plen = cfg.ProfileMin
			}
			if plen > cfg.ProfileMax {
				plen = cfg.ProfileMax
			}
			profile = make([]uint64, plen)
			tokenStream(profile, kindSkewProfile, u, 0)
			profiles[u] = profile
		}
		p := postSeq[u]
		postSeq[u] = p + 1
		post := make([]uint64, cfg.PostLen)
		tokenStream(post, kindSkewPost, u, p)
		toks := make([]uint64, 0, templateTokens+len(profile)+cfg.PostLen)
		toks = append(toks, template...)
		toks = append(toks, profile...)
		toks = append(toks, post...)
		r := &sched.Request{
			ID:            id,
			UserID:        u,
			Tokens:        toks,
			AllowedTokens: []string{"Yes", "No"},
		}
		d.Requests = append(d.Requests, r)
		if r.Len() > d.MaxLen {
			d.MaxLen = r.Len()
		}
	}
	return d
}
