package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/sched"
)

// Token-stream kind for batch documents, disjoint from every other
// population so batch jobs never share prefixes with interactive traffic
// (beyond the universal template).
const kindBatchDoc = 32

// batchUserBase offsets batch user IDs past any plausible interactive
// population so the two tenants never collide in routing tables or
// prefix-affinity maps.
const batchUserBase = 1 << 20

// ClassMixConfig parameterizes the multi-tenant SLO workload: Zipf-skewed
// interactive traffic (the post-recommendation shape hot users make) mixed
// with throughput-oriented batch jobs — long, one-shot documents with no
// prefix reuse beyond the shared template, the shape offline scoring
// pipelines make. Zero values take the defaults noted below.
type ClassMixConfig struct {
	// Interactive shapes the latency-sensitive population (defaults are
	// SkewedConfig's; its Seed is overridden by this config's Seed).
	Interactive SkewedConfig
	// BatchFraction is the fraction of total requests that are batch jobs
	// (default 0.25).
	BatchFraction float64
	// BatchUsers is the batch tenant population (default 8).
	BatchUsers int
	// BatchLenMin and BatchLenMax bound the batch document length in
	// tokens (defaults 6000 and 12000).
	BatchLenMin, BatchLenMax int
	Seed                     int64
}

func (c *ClassMixConfig) defaults() {
	c.Interactive.defaults()
	if c.BatchFraction == 0 {
		c.BatchFraction = 0.25
	}
	if c.BatchUsers == 0 {
		c.BatchUsers = 8
	}
	if c.BatchLenMin == 0 {
		c.BatchLenMin = 6000
	}
	if c.BatchLenMax == 0 {
		c.BatchLenMax = 12000
	}
}

// ClassMix generates the two-class dataset: interactive requests from the
// Zipf user-popularity generator, batch documents drawn uniformly over the
// batch population, shuffled together deterministically so open-loop
// arrival assignment (AssignOpenLoopArrivals) interleaves the tenants the
// way production traffic does. Request IDs are reassigned sequentially
// after the shuffle; each request's Class field is set.
func ClassMix(cfg ClassMixConfig) *Dataset {
	cfg.defaults()
	if cfg.BatchFraction < 0 || cfg.BatchFraction >= 1 {
		panic(fmt.Sprintf("workload: BatchFraction must be in [0,1), got %g", cfg.BatchFraction))
	}
	if cfg.BatchLenMax < cfg.BatchLenMin {
		panic(fmt.Sprintf("workload: BatchLenMax %d < BatchLenMin %d", cfg.BatchLenMax, cfg.BatchLenMin))
	}

	icfg := cfg.Interactive
	icfg.Seed = cfg.Seed ^ 0x1f3779b97f4a7c15
	inter := Skewed(icfg)
	for _, r := range inter.Requests {
		r.Class = sched.ClassInteractive
	}

	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x2545f4914f6cdd1d))
	template := make([]uint64, templateTokens)
	tokenStream(template, kindTemplate, 0, 0)
	nBatch := int(cfg.BatchFraction / (1 - cfg.BatchFraction) * float64(len(inter.Requests)))
	batch := make([]*sched.Request, 0, nBatch)
	docSeq := make(map[int]int, cfg.BatchUsers)
	for i := 0; i < nBatch; i++ {
		u := rng.Intn(cfg.BatchUsers)
		dlen := cfg.BatchLenMin + rng.Intn(cfg.BatchLenMax-cfg.BatchLenMin+1)
		doc := make([]uint64, dlen)
		tokenStream(doc, kindBatchDoc, u, docSeq[u])
		docSeq[u]++
		toks := make([]uint64, 0, templateTokens+dlen)
		toks = append(toks, template...)
		toks = append(toks, doc...)
		batch = append(batch, &sched.Request{
			UserID:        batchUserBase + u,
			Tokens:        toks,
			Class:         sched.ClassBatch,
			AllowedTokens: []string{"Yes", "No"},
		})
	}

	reqs := append(append([]*sched.Request(nil), inter.Requests...), batch...)
	rng.Shuffle(len(reqs), func(i, j int) { reqs[i], reqs[j] = reqs[j], reqs[i] })
	d := &Dataset{
		Name:            "class-mix",
		Users:           inter.Users + cfg.BatchUsers,
		RequestsPerUser: inter.RequestsPerUser,
	}
	for i, r := range reqs {
		r.ID = int64(i + 1)
		d.Requests = append(d.Requests, r)
		if r.Len() > d.MaxLen {
			d.MaxLen = r.Len()
		}
	}
	return d
}

// ClassCounts tallies a dataset's requests per SLO class.
func ClassCounts(d *Dataset) map[sched.Class]int {
	out := make(map[sched.Class]int)
	for _, r := range d.Requests {
		out[r.Class]++
	}
	return out
}
