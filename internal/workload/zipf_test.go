package workload

import (
	"sort"
	"testing"
)

func TestSkewedDeterministicAndSkewed(t *testing.T) {
	cfg := SkewedConfig{Users: 32, Requests: 256, Seed: 5}
	d1 := Skewed(cfg)
	d2 := Skewed(cfg)
	if len(d1.Requests) != 256 {
		t.Fatalf("requests = %d", len(d1.Requests))
	}
	if d1.Name != "zipf-skewed" || d1.Users != 32 || d1.RequestsPerUser != 8 {
		t.Fatalf("dataset metadata: %+v", d1)
	}
	// Determinism: same seed, same tokens.
	for i := range d1.Requests {
		a, b := d1.Requests[i], d2.Requests[i]
		if a.UserID != b.UserID || a.Len() != b.Len() || a.Tokens[50] != b.Tokens[50] {
			t.Fatalf("request %d differs between identical seeds", i)
		}
	}
	// Skew: the hottest user must hold well more than the uniform share.
	counts := make(map[int]int)
	for _, r := range d1.Requests {
		counts[r.UserID]++
	}
	var byCount []int
	for _, c := range counts {
		byCount = append(byCount, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(byCount)))
	uniform := len(d1.Requests) / cfg.Users
	if byCount[0] < 4*uniform {
		t.Fatalf("hottest user has %d requests, want >= %d (4x uniform share)", byCount[0], 4*uniform)
	}
}

func TestSkewedSharesPrefixPerUser(t *testing.T) {
	d := Skewed(SkewedConfig{Users: 8, Requests: 64, Seed: 1})
	// Two requests of the same user share template+profile, differ in post.
	byUser := make(map[int][]int)
	for i, r := range d.Requests {
		byUser[r.UserID] = append(byUser[r.UserID], i)
	}
	checked := false
	for _, idxs := range byUser {
		if len(idxs) < 2 {
			continue
		}
		a, b := d.Requests[idxs[0]], d.Requests[idxs[1]]
		prefix := a.Len() - 150 // PostLen default
		for i := 0; i < prefix; i++ {
			if a.Tokens[i] != b.Tokens[i] {
				t.Fatalf("same-user requests diverge at token %d of %d-token prefix", i, prefix)
			}
		}
		if a.Tokens[prefix] == b.Tokens[prefix] {
			t.Fatal("same-user posts do not differ")
		}
		checked = true
	}
	if !checked {
		t.Fatal("no user with two requests in skewed draw")
	}
	// Different users must not share profile tokens (template is shared).
	var u0, u1 *[]uint64
	for _, idxs := range byUser {
		r := d.Requests[idxs[0]]
		if u0 == nil {
			u0 = &r.Tokens
		} else if u1 == nil {
			u1 = &r.Tokens
			break
		}
	}
	if u1 != nil && (*u0)[templateTokens] == (*u1)[templateTokens] {
		t.Fatal("different users share profile tokens")
	}
}

func TestSkewedRejectsInvalidExponent(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exponent <= 1 did not panic")
		}
	}()
	Skewed(SkewedConfig{Exponent: 1.0})
}

func TestSkewedArrivals(t *testing.T) {
	d := Skewed(SkewedConfig{Users: 16, Requests: 64, Seed: 2})
	arr, err := AssignPoissonArrivals(d, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(arr) != 64 {
		t.Fatalf("arrivals = %d", len(arr))
	}
	for i := 1; i < len(arr); i++ {
		if arr[i].Time < arr[i-1].Time {
			t.Fatal("arrivals not sorted")
		}
	}
}
