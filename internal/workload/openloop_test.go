package workload

import (
	"math"
	"testing"
)

func TestSquareWaveRate(t *testing.T) {
	r := SquareWaveRate(2, 20, 100, 0.25)
	cases := []struct {
		t    float64
		want float64
	}{
		{0, 20}, {24.9, 20}, {25, 2}, {99, 2}, {100, 20}, {126, 2}, {210, 20},
	}
	for _, c := range cases {
		if got := r(c.t); got != c.want {
			t.Errorf("rate(%g) = %g, want %g", c.t, got, c.want)
		}
	}
}

func TestDiurnalRateBounds(t *testing.T) {
	r := DiurnalRate(1, 9, 50)
	if got := r(0); math.Abs(got-1) > 1e-9 {
		t.Errorf("trough rate = %g, want 1", got)
	}
	if got := r(25); math.Abs(got-9) > 1e-9 {
		t.Errorf("peak rate = %g, want 9", got)
	}
	for x := 0.0; x < 100; x += 0.5 {
		if got := r(x); got < 1-1e-9 || got > 9+1e-9 {
			t.Fatalf("rate(%g) = %g outside [1,9]", x, got)
		}
	}
}

func TestAssignOpenLoopArrivals(t *testing.T) {
	ds := PostRecommendation(PostRecommendationConfig{Users: 8, PostsPerUser: 50, Seed: 1})
	rate := SquareWaveRate(1, 10, 40, 0.5)
	arr, err := AssignOpenLoopArrivals(ds, rate, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(arr) != len(ds.Requests) {
		t.Fatalf("stamped %d of %d requests", len(arr), len(ds.Requests))
	}
	last := 0.0
	for i, a := range arr {
		if a.Time < last {
			t.Fatalf("arrival %d at %g before previous %g", i, a.Time, last)
		}
		if a.Req.ArrivalTime != a.Time {
			t.Fatalf("arrival %d: request stamp %g != %g", i, a.Req.ArrivalTime, a.Time)
		}
		last = a.Time
	}

	// The peak half-periods should receive roughly 10x the arrivals of the
	// base half-periods (rates 10 vs 1 over equal spans).
	peak, base := 0, 0
	for _, a := range arr {
		if math.Mod(a.Time, 40) < 20 {
			peak++
		} else {
			base++
		}
	}
	if base == 0 || float64(peak)/float64(base) < 4 {
		t.Errorf("peak/base arrival ratio %d/%d; want strongly peak-weighted", peak, base)
	}

	// Determinism: same seed, same times.
	ds2 := PostRecommendation(PostRecommendationConfig{Users: 8, PostsPerUser: 50, Seed: 1})
	arr2, err := AssignOpenLoopArrivals(ds2, rate, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range arr {
		if arr[i].Time != arr2[i].Time {
			t.Fatalf("arrival %d not deterministic: %g vs %g", i, arr[i].Time, arr2[i].Time)
		}
	}
}

func TestAssignOpenLoopArrivalsValidates(t *testing.T) {
	ds := PostRecommendation(PostRecommendationConfig{Users: 1, PostsPerUser: 2, Seed: 1})
	if _, err := AssignOpenLoopArrivals(ds, nil, 1, 1); err == nil {
		t.Error("nil rate accepted")
	}
	if _, err := AssignOpenLoopArrivals(ds, SquareWaveRate(1, 2, 10, 0.5), 0, 1); err == nil {
		t.Error("zero maxRate accepted")
	}
}
