package engine

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/hw"
	"repro/internal/kvcache"
	"repro/internal/ringbuf"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/trace"
)

// linkCrossings returns how many times each communicated byte traverses
// the peer link: NVLink is direct GPU-to-GPU; PCIe peer traffic is staged
// through host memory and crosses twice.
func linkCrossings(g *hw.GPU) float64 {
	if g.Link == hw.NVLink {
		return 1
	}
	return 2
}

// collectiveLatency is the fixed per-collective launch/sync cost.
const collectiveLatency = 20e-6

// ppStageImbalance inflates the first pipeline stage: the stages never
// split perfectly (stage 0 also runs the embedding and input plumbing,
// stage 1 the head and sampler, and the synchronous scheduling rounds add
// per-microbatch slack), so the pipeline's bottleneck stage runs ~10%
// longer than layers/2 would suggest (§2.5's pipeline bubbles).
const ppStageImbalance = 1.10

// TensorParallel is the TP=2 baseline: every layer's computation is split
// across two GPUs, stitched together with two all-reduces per layer. It
// halves per-GPU compute and memory at the cost of communication that is
// serialized with compute (§2.5, §5.2).
type TensorParallel struct {
	sim       sim.Clock
	scheduler sched.Scheduler
	lc        lifecycle
	busy      bool
	// cur is the request in service (fast-path completion payload is the
	// engine itself; see tpDone).
	cur *inflight
}

// NewTensorParallel builds the TP=2 baseline (standard prefill, FCFS, full
// KV residency split across both GPUs).
func NewTensorParallel(cfg Config) (*TensorParallel, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	shard, err := cfg.Model.Shard(2, 1)
	if err != nil {
		return nil, err
	}
	exec := graph.New(shard, cfg.GPU)
	opts := graph.StandardOptions()
	prof, err := buildProfile(exec, opts, cfg.GPU, shard.WeightBytes(), cfg.ProfileMaxLen)
	if err != nil {
		return nil, fmt.Errorf("tensor-parallel: %w", err)
	}
	cache, err := kvcache.New(kvcache.Config{
		BlockTokens:   cfg.blockTokens(),
		BytesPerToken: cfg.Model.KVBytesPerToken(), // full-depth; halves live on each GPU
		CapacityBytes: 2 * prof.pool,
	})
	if err != nil {
		return nil, err
	}
	ti := cfg.Tracer.NewInstance("tensor-parallel")
	trace.WatchCache(ti, cache)
	return &TensorParallel{
		sim:       cfg.Sim,
		scheduler: sched.NewFIFO(),
		lc: lifecycle{
			name:       "tensor-parallel",
			cfg:        cfg,
			exec:       exec,
			opts:       opts,
			cache:      cache,
			prof:       prof,
			ti:         ti,
			residentKV: true,
			spillGPUs:  2, // both GPUs overflow their share
		},
	}, nil
}

// Name implements Engine.
func (t *TensorParallel) Name() string { return t.lc.name }

// GPUs implements Engine.
func (t *TensorParallel) GPUs() int { return 2 }

// Cache implements Engine.
func (t *TensorParallel) Cache() *kvcache.Manager { return t.lc.cache }

// commSeconds prices the two all-reduces per layer over the fresh tokens'
// activations.
func (t *TensorParallel) commSeconds(fresh int) float64 {
	if fresh == 0 {
		return 0
	}
	m := t.lc.cfg.Model
	g := t.lc.cfg.GPU
	perAllReduce := float64(fresh) * float64(m.Hidden) * float64(m.ActDType.Bytes())
	ops := 2 * float64(m.Layers)
	return ops*perAllReduce*linkCrossings(g)/g.PeerBWBytes + ops*collectiveLatency
}

// Submit implements Engine.
func (t *TensorParallel) Submit(r *sched.Request) {
	t.scheduler.Enqueue(r)
	t.dispatch()
}

func (t *TensorParallel) dispatch() {
	if t.busy {
		return
	}
	now := t.sim.Now()
	r := t.scheduler.Next(now)
	if r == nil {
		return
	}
	t.busy = true
	inf := t.lc.begin(r, now)
	// Both GPUs spill their half of the overflow concurrently.
	dur := t.lc.estimate(inf) + t.commSeconds(inf.fresh()) +
		spillSeconds(inf.spilled, 2*t.lc.cfg.GPU.HostBWBytes)
	t.cur = inf
	t.sim.AfterFunc(dur, tpDone, t)
}

// tpDone is the zero-alloc completion callback for TensorParallel.
func tpDone(arg any) {
	t := arg.(*TensorParallel)
	inf := t.cur
	t.cur = nil
	t.lc.finish(inf, t.sim.Now())
	t.busy = false
	t.dispatch()
}

// PipelineParallel is the PP=2 baseline: the layers are split into two
// stages on two GPUs. A request flows through stage 0 then stage 1; the
// stages process different requests concurrently, and pipeline bubbles
// appear whenever consecutive requests have unequal lengths (§2.5).
type PipelineParallel struct {
	sim       sim.Clock
	scheduler sched.Scheduler
	lc        lifecycle

	stageBusy [2]bool
	// stage0Cur/stage1Cur hold each stage's in-service request (fast-path
	// completion payload is the engine itself; see ppStage0Done and
	// ppStage1Done).
	stage0Cur, stage1Cur *inflight
	// handoff queues stage-0 completions for stage 1. A ring
	// (internal/ringbuf): the previous `handoff = handoff[1:]` advance
	// retained every finished inflight in the backing array for the life
	// of the engine under sustained pipelining.
	handoff ringbuf.Ring[*inflight]
}

// NewPipelineParallel builds the PP=2 baseline (standard prefill, FCFS,
// full KV residency distributed across stages).
func NewPipelineParallel(cfg Config) (*PipelineParallel, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	stage, err := cfg.Model.Shard(1, 2)
	if err != nil {
		return nil, err
	}
	exec := graph.New(stage, cfg.GPU)
	opts := graph.StandardOptions()
	prof, err := buildProfile(exec, opts, cfg.GPU, stage.WeightBytes(), cfg.ProfileMaxLen)
	if err != nil {
		return nil, fmt.Errorf("pipeline-parallel: %w", err)
	}
	cache, err := kvcache.New(kvcache.Config{
		BlockTokens:   cfg.blockTokens(),
		BytesPerToken: cfg.Model.KVBytesPerToken(),
		CapacityBytes: 2 * prof.pool,
	})
	if err != nil {
		return nil, err
	}
	ti := cfg.Tracer.NewInstance("pipeline-parallel")
	trace.WatchCache(ti, cache)
	return &PipelineParallel{
		sim:       cfg.Sim,
		scheduler: sched.NewFIFO(),
		lc: lifecycle{
			name:       "pipeline-parallel",
			cfg:        cfg,
			exec:       exec, // per-stage (half the layers) cost model
			opts:       opts,
			cache:      cache,
			prof:       prof,
			ti:         ti,
			residentKV: true,
			spillGPUs:  2, // both stages overflow their share
		},
	}, nil
}

// Name implements Engine.
func (p *PipelineParallel) Name() string { return p.lc.name }

// GPUs implements Engine.
func (p *PipelineParallel) GPUs() int { return 2 }

// Cache implements Engine.
func (p *PipelineParallel) Cache() *kvcache.Manager { return p.lc.cache }

// Submit implements Engine.
func (p *PipelineParallel) Submit(r *sched.Request) {
	p.scheduler.Enqueue(r)
	p.dispatch0()
}

// handoffSeconds prices streaming the fresh tokens' hidden states between
// stages.
func (p *PipelineParallel) handoffSeconds(fresh int) float64 {
	m := p.lc.cfg.Model
	g := p.lc.cfg.GPU
	bytes := float64(fresh) * float64(m.Hidden) * float64(m.ActDType.Bytes())
	return bytes*linkCrossings(g)/g.PeerBWBytes + collectiveLatency
}

func (p *PipelineParallel) dispatch0() {
	if p.stageBusy[0] {
		return
	}
	now := p.sim.Now()
	r := p.scheduler.Next(now)
	if r == nil {
		return
	}
	p.stageBusy[0] = true
	inf := p.lc.begin(r, now)
	// Each stage pays half the spill; lc.estimate prices one stage's
	// share of the pass on the per-stage cost model.
	dur := ppStageImbalance*p.lc.estimate(inf) + p.handoffSeconds(inf.fresh()) +
		spillSeconds(inf.spilled/2, p.lc.cfg.GPU.HostBWBytes)
	inf.mark = now
	p.stage0Cur = inf
	p.sim.AfterFunc(dur, ppStage0Done, p)
}

// ppStage0Done hands the finished stage-0 pass to stage 1 (zero-alloc
// completion callback).
func ppStage0Done(arg any) {
	p := arg.(*PipelineParallel)
	inf := p.stage0Cur
	p.stage0Cur = nil
	p.stageBusy[0] = false
	now := p.sim.Now()
	p.lc.ti.Stage("pass-stage0", inf.req.ID, inf.req.Class, inf.mark, now)
	inf.mark = now // handoff wait starts here
	p.handoff.PushBack(inf)
	p.dispatch1()
	p.dispatch0()
}

func (p *PipelineParallel) dispatch1() {
	if p.stageBusy[1] || p.handoff.Len() == 0 {
		return
	}
	inf, _ := p.handoff.PopFront()
	p.stageBusy[1] = true
	now := p.sim.Now()
	p.lc.ti.Stage("stage1-wait", inf.req.ID, inf.req.Class, inf.mark, now)
	inf.mark = now
	dur := p.lc.estimate(inf) + spillSeconds(inf.spilled/2, p.lc.cfg.GPU.HostBWBytes)
	p.stage1Cur = inf
	p.sim.AfterFunc(dur, ppStage1Done, p)
}

// ppStage1Done completes the request after its stage-1 pass (zero-alloc
// completion callback).
func ppStage1Done(arg any) {
	p := arg.(*PipelineParallel)
	inf := p.stage1Cur
	p.stage1Cur = nil
	now := p.sim.Now()
	p.lc.ti.Stage("pass-stage1", inf.req.ID, inf.req.Class, inf.mark, now)
	p.lc.finish(inf, now)
	p.stageBusy[1] = false
	p.dispatch1()
}
