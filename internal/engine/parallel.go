package engine

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/hw"
	"repro/internal/kvcache"
	"repro/internal/sched"
	"repro/internal/sim"
)

// linkCrossings returns how many times each communicated byte traverses
// the peer link: NVLink is direct GPU-to-GPU; PCIe peer traffic is staged
// through host memory and crosses twice.
func linkCrossings(g *hw.GPU) float64 {
	if g.Link == hw.NVLink {
		return 1
	}
	return 2
}

// collectiveLatency is the fixed per-collective launch/sync cost.
const collectiveLatency = 20e-6

// ppStageImbalance inflates the first pipeline stage: the stages never
// split perfectly (stage 0 also runs the embedding and input plumbing,
// stage 1 the head and sampler, and the synchronous scheduling rounds add
// per-microbatch slack), so the pipeline's bottleneck stage runs ~10%
// longer than layers/2 would suggest (§2.5's pipeline bubbles).
const ppStageImbalance = 1.10

// TensorParallel is the TP=2 baseline: every layer's computation is split
// across two GPUs, stitched together with two all-reduces per layer. It
// halves per-GPU compute and memory at the cost of communication that is
// serialized with compute (§2.5, §5.2).
type TensorParallel struct {
	name      string
	cfg       Config
	sim       *sim.Sim
	exec      *graph.Executor // per-GPU (sharded) cost model
	opts      graph.Options
	scheduler sched.Scheduler
	cache     *kvcache.Manager
	prof      profile
	busy      bool
}

// NewTensorParallel builds the TP=2 baseline (standard prefill, FCFS, full
// KV residency split across both GPUs).
func NewTensorParallel(cfg Config) (*TensorParallel, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	shard, err := cfg.Model.Shard(2, 1)
	if err != nil {
		return nil, err
	}
	exec := graph.New(shard, cfg.GPU)
	opts := graph.StandardOptions()
	prof, err := buildProfile(exec, opts, cfg.GPU, shard.WeightBytes(), cfg.ProfileMaxLen)
	if err != nil {
		return nil, fmt.Errorf("tensor-parallel: %w", err)
	}
	cache, err := kvcache.New(kvcache.Config{
		BlockTokens:   cfg.blockTokens(),
		BytesPerToken: cfg.Model.KVBytesPerToken(), // full-depth; halves live on each GPU
		CapacityBytes: 2 * prof.pool,
	})
	if err != nil {
		return nil, err
	}
	return &TensorParallel{
		name:      "tensor-parallel",
		cfg:       cfg,
		sim:       cfg.Sim,
		exec:      exec,
		opts:      opts,
		scheduler: sched.NewFIFO(),
		cache:     cache,
		prof:      prof,
	}, nil
}

// Name implements Engine.
func (t *TensorParallel) Name() string { return t.name }

// GPUs implements Engine.
func (t *TensorParallel) GPUs() int { return 2 }

// Cache implements Engine.
func (t *TensorParallel) Cache() *kvcache.Manager { return t.cache }

// commSeconds prices the two all-reduces per layer over the fresh tokens'
// activations.
func (t *TensorParallel) commSeconds(fresh int) float64 {
	if fresh == 0 {
		return 0
	}
	m := t.cfg.Model
	g := t.cfg.GPU
	perAllReduce := float64(fresh) * float64(m.Hidden) * float64(m.ActDType.Bytes())
	ops := 2 * float64(m.Layers)
	return ops*perAllReduce*linkCrossings(g)/g.PeerBWBytes + ops*collectiveLatency
}

// Submit implements Engine.
func (t *TensorParallel) Submit(r *sched.Request) {
	t.scheduler.Enqueue(r)
	t.dispatch()
}

func (t *TensorParallel) dispatch() {
	if t.busy {
		return
	}
	now := t.sim.Now()
	r := t.scheduler.Next(now)
	if r == nil {
		return
	}
	t.busy = true
	hashes := hashesOf(r, t.cache.BlockTokens())
	cached, unpin := t.cache.PinH(hashes, now)
	if cached > r.Len() {
		cached = r.Len()
	}
	fresh := r.Len() - cached
	need := int64(fresh) * t.cfg.Model.KVBytesPerToken()
	spilled, releaseReservation := t.cache.Reserve(need)
	spilled += 2 * t.prof.actSpill(r.Len()) // both GPUs overflow their share

	dur, err := t.exec.EstimateSeconds(graph.PassSpec{Total: r.Len(), Cached: cached}, t.opts)
	if err != nil {
		panic(fmt.Sprintf("engine %s: pricing request %d: %v", t.name, r.ID, err))
	}
	dur += t.commSeconds(fresh)
	// Both GPUs spill their half of the overflow concurrently.
	dur += spillSeconds(spilled, 2*t.cfg.GPU.HostBWBytes)

	start := now
	t.sim.After(dur, func() {
		finish := t.sim.Now()
		unpin()
		releaseReservation()
		t.cache.InsertH(hashes, finish)
		t.cfg.emit(Record{
			Req: r, Arrival: r.ArrivalTime, Start: start, Finish: finish,
			CachedTokens: cached, SpilledBytes: spilled, Instance: t.name,
		})
		t.busy = false
		t.dispatch()
	})
}

// PipelineParallel is the PP=2 baseline: the layers are split into two
// stages on two GPUs. A request flows through stage 0 then stage 1; the
// stages process different requests concurrently, and pipeline bubbles
// appear whenever consecutive requests have unequal lengths (§2.5).
type PipelineParallel struct {
	name      string
	cfg       Config
	sim       *sim.Sim
	exec      *graph.Executor // per-stage (half the layers) cost model
	opts      graph.Options
	scheduler sched.Scheduler
	cache     *kvcache.Manager
	prof      profile

	stageBusy [2]bool
	handoff   []*ppInflight
}

type ppInflight struct {
	r       *sched.Request
	start   float64
	cached  int
	spilled int64
	release func() // unpin + unreserve
}

// NewPipelineParallel builds the PP=2 baseline (standard prefill, FCFS,
// full KV residency distributed across stages).
func NewPipelineParallel(cfg Config) (*PipelineParallel, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	stage, err := cfg.Model.Shard(1, 2)
	if err != nil {
		return nil, err
	}
	exec := graph.New(stage, cfg.GPU)
	opts := graph.StandardOptions()
	prof, err := buildProfile(exec, opts, cfg.GPU, stage.WeightBytes(), cfg.ProfileMaxLen)
	if err != nil {
		return nil, fmt.Errorf("pipeline-parallel: %w", err)
	}
	cache, err := kvcache.New(kvcache.Config{
		BlockTokens:   cfg.blockTokens(),
		BytesPerToken: cfg.Model.KVBytesPerToken(),
		CapacityBytes: 2 * prof.pool,
	})
	if err != nil {
		return nil, err
	}
	return &PipelineParallel{
		name:      "pipeline-parallel",
		cfg:       cfg,
		sim:       cfg.Sim,
		exec:      exec,
		opts:      opts,
		scheduler: sched.NewFIFO(),
		cache:     cache,
		prof:      prof,
	}, nil
}

// Name implements Engine.
func (p *PipelineParallel) Name() string { return p.name }

// GPUs implements Engine.
func (p *PipelineParallel) GPUs() int { return 2 }

// Cache implements Engine.
func (p *PipelineParallel) Cache() *kvcache.Manager { return p.cache }

// Submit implements Engine.
func (p *PipelineParallel) Submit(r *sched.Request) {
	p.scheduler.Enqueue(r)
	p.dispatch0()
}

// stageSeconds prices one stage's share of a request plus the activation
// handoff to the next stage.
func (p *PipelineParallel) stageSeconds(r *sched.Request, cached int) float64 {
	dur, err := p.exec.EstimateSeconds(graph.PassSpec{Total: r.Len(), Cached: cached}, p.opts)
	if err != nil {
		panic(fmt.Sprintf("engine %s: pricing request %d: %v", p.name, r.ID, err))
	}
	return dur
}

// handoffSeconds prices streaming the fresh tokens' hidden states between
// stages.
func (p *PipelineParallel) handoffSeconds(fresh int) float64 {
	m := p.cfg.Model
	g := p.cfg.GPU
	bytes := float64(fresh) * float64(m.Hidden) * float64(m.ActDType.Bytes())
	return bytes*linkCrossings(g)/g.PeerBWBytes + collectiveLatency
}

func (p *PipelineParallel) dispatch0() {
	if p.stageBusy[0] {
		return
	}
	now := p.sim.Now()
	r := p.scheduler.Next(now)
	if r == nil {
		return
	}
	p.stageBusy[0] = true
	hashes := hashesOf(r, p.cache.BlockTokens())
	cached, unpin := p.cache.PinH(hashes, now)
	if cached > r.Len() {
		cached = r.Len()
	}
	fresh := r.Len() - cached
	need := int64(fresh) * p.cfg.Model.KVBytesPerToken()
	spilled, unreserve := p.cache.Reserve(need)
	spilled += 2 * p.prof.actSpill(r.Len()) // both stages overflow their share

	inf := &ppInflight{
		r: r, start: now, cached: cached, spilled: spilled,
		release: func() { unpin(); unreserve() },
	}
	dur := ppStageImbalance*p.stageSeconds(r, cached) + p.handoffSeconds(fresh) +
		spillSeconds(spilled/2, p.cfg.GPU.HostBWBytes)
	p.sim.After(dur, func() {
		p.stageBusy[0] = false
		p.handoff = append(p.handoff, inf)
		p.dispatch1()
		p.dispatch0()
	})
}

func (p *PipelineParallel) dispatch1() {
	if p.stageBusy[1] || len(p.handoff) == 0 {
		return
	}
	inf := p.handoff[0]
	p.handoff[0] = nil
	p.handoff = p.handoff[1:]
	p.stageBusy[1] = true
	dur := p.stageSeconds(inf.r, inf.cached) + spillSeconds(inf.spilled/2, p.cfg.GPU.HostBWBytes)
	p.sim.After(dur, func() {
		finish := p.sim.Now()
		inf.release()
		p.cache.InsertH(hashesOf(inf.r, p.cache.BlockTokens()), finish)
		p.cfg.emit(Record{
			Req: inf.r, Arrival: inf.r.ArrivalTime, Start: inf.start, Finish: finish,
			CachedTokens: inf.cached, SpilledBytes: inf.spilled, Instance: p.name,
		})
		p.stageBusy[1] = false
		p.dispatch1()
	})
}
