// Package engine implements the LLM serving engines the paper compares:
// the four baselines (PagedAttention, chunked prefill, tensor parallelism,
// pipeline parallelism) and the shared machinery (profile runs, prefix
// cache pools, execution accounting) that internal/core builds PrefillOnly
// on.
//
// Engines execute against the discrete-event simulator in internal/sim:
// Submit enqueues a request at the current simulated time, execution is
// priced by the graph cost model, and a Record is emitted at completion.
package engine

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/hw"
	"repro/internal/kvcache"
	"repro/internal/memory"
	"repro/internal/model"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Record is the completion report of one request.
type Record struct {
	Req *sched.Request
	// Arrival, Start and Finish are simulated timestamps in seconds.
	Arrival, Start, Finish float64
	// CachedTokens is the prefix-cache hit length at execution time.
	CachedTokens int
	// SpilledBytes is KV cache the engine had to stream over the host
	// link because the request did not fit in device memory (the
	// beyond-MIL fallback; see DESIGN.md §5).
	SpilledBytes int64
	// RestoredTokens is the prefix length loaded back from the host
	// offload tier (§9 extension) instead of recomputed.
	RestoredTokens int
	// Instance is the engine instance that served the request.
	Instance string
}

// Latency is the request's end-to-end latency.
func (r Record) Latency() float64 { return r.Finish - r.Arrival }

// QueueTime is the time spent waiting before execution started.
func (r Record) QueueTime() float64 { return r.Start - r.Arrival }

// ExecTime is the execution duration.
func (r Record) ExecTime() float64 { return r.Finish - r.Start }

// Infeasible reports whether the request exceeded the engine's maximum
// input length and needed the spill fallback.
func (r Record) Infeasible() bool { return r.SpilledBytes > 0 }

// Engine is an online serving engine bound to a simulator.
type Engine interface {
	// Name identifies the engine configuration.
	Name() string
	// Submit enqueues a request at the current simulated time.
	Submit(r *sched.Request)
	// GPUs returns how many GPUs the engine instance occupies.
	GPUs() int
	// Cache returns the engine's prefix cache (nil if disabled).
	Cache() *kvcache.Manager
}

// Config carries what every engine needs.
type Config struct {
	// Model is the (unsharded) model to serve.
	Model *model.Config
	// GPU is the device type; parallel engines use two of them.
	GPU *hw.GPU
	// Sim is the event kernel the engine schedules on.
	Sim sim.Clock
	// ProfileMaxLen is the user-provided maximum input length used by
	// the profile run to size the activation reserve (§3.1).
	ProfileMaxLen int
	// BlockTokens is the prefix-cache block size (default 16).
	BlockTokens int
	// HostCacheBytes enables the §9 CPU-offload extension when positive:
	// prefix KV evicted from GPU demotes to a host tier of this size,
	// and serial engines restore host-cached prefixes over the host link
	// when that is cheaper than recomputing them.
	HostCacheBytes int64
	// OnComplete receives the Record of every finished request.
	OnComplete func(Record)
	// Tracer, when non-nil, receives the request lifecycle spans (queue
	// wait, execution, pipeline stages) and cache-residency gauges of
	// every engine built from this Config. Each constructor registers its
	// own trace.Instance, so a routed fleet sharing one Config gets one
	// timeline per engine. A nil Tracer disables tracing at zero cost
	// (nil-handle branch per event; no allocation).
	Tracer *trace.Recorder
}

func (c *Config) validate() error {
	if c.Model == nil || c.GPU == nil || c.Sim == nil {
		return fmt.Errorf("engine: Model, GPU and Sim are required")
	}
	if c.ProfileMaxLen <= 0 {
		return fmt.Errorf("engine: ProfileMaxLen must be positive, got %d", c.ProfileMaxLen)
	}
	return nil
}

func (c *Config) blockTokens() int {
	if c.BlockTokens <= 0 {
		return 16
	}
	return c.BlockTokens
}

func (c *Config) emit(rec Record) {
	if c.OnComplete != nil {
		c.OnComplete(rec)
	}
}

// HashesOf returns (computing lazily) the request's prefix-cache hash
// chain for the given block size, memoized on the request. It is the
// single hash-chain entry point: engines, routers and schedulers all go
// through it so a request is hashed at most once per block size.
func HashesOf(r *sched.Request, blockTokens int) []uint64 {
	if r.BlockHashes == nil || r.HashBlockTokens != blockTokens {
		r.BlockHashes = kvcache.BlockHashes(r.Tokens, blockTokens)
		r.HashBlockTokens = blockTokens
	}
	return r.BlockHashes
}

// AttachIncremental switches a Calibrated scheduler into incremental mode
// against the cache its JCT function consults: waiting requests are
// indexed by their (memoized) prefix hash chains at the cache's block
// size, and the cache's membership-change feed rekeys only the affected
// entries. Wiring both halves here makes it impossible to index requests
// without also subscribing to the events that keep their keys fresh.
// Call it before any request is enqueued.
func AttachIncremental(c *sched.Calibrated, m *kvcache.Manager) {
	bt := m.BlockTokens()
	c.SetHashChain(func(r *sched.Request) []uint64 { return HashesOf(r, bt) })
	m.Subscribe(func(ev kvcache.ChangeEvent) { c.OnCacheChange(ev.Inserted, ev.Evicted) })
}

// profile captures the outcome of an engine's §3.1-style profile run on
// one device's model share.
type profile struct {
	// effLen is the input length actually profiled. It equals the
	// requested ProfileMaxLen when that fits; otherwise it is clamped to
	// the longest length whose activation reserve leaves minPoolFrac of
	// usable memory as prefix-cache pool (vLLM refuses to start beyond
	// this point; we clamp and let longer requests take the spill
	// fallback instead, so the "×" Table-2 configurations still run).
	effLen int
	// actReserve is the activation reserve (peak working memory minus
	// retained KV) at effLen.
	actReserve int64
	// actPerToken linearizes the reserve for spill pricing of requests
	// longer than effLen.
	actPerToken float64
	// pool is the prefix-cache pool: usable − weights − actReserve.
	pool int64
}

// minPoolFrac is the minimum fraction of usable memory kept as KV pool
// when clamping the profile length.
const minPoolFrac = 0.02

// profileRun measures the activation reserve at a given length: the peak
// working memory of a pass, excluding retained KV (whose space comes out
// of the paged pool instead). This mirrors both vLLM's memory profiling
// and PrefillOnly's §3.1 profile run.
func profileRun(exec *graph.Executor, opts graph.Options, n int) (actReserve int64, err error) {
	res, err := exec.Run(graph.PassSpec{Total: n}, opts, memory.New(0), false)
	if err != nil {
		return 0, fmt.Errorf("engine: profile run at %d tokens: %w", n, err)
	}
	return res.PeakBytes - res.KVRetainedBytes, nil
}

// buildProfile runs the profile pass at maxLen, clamping to a shorter
// length when the activation reserve would squeeze the KV pool below
// minPoolFrac of usable memory.
func buildProfile(exec *graph.Executor, opts graph.Options, g *hw.GPU, weights int64, maxLen int) (profile, error) {
	minPool := int64(minPoolFrac * float64(g.UsableBytes()))
	budget := g.UsableBytes() - weights - minPool
	if budget <= 0 {
		return profile{}, fmt.Errorf("engine: %d B of weights do not fit in %s (%d B usable)",
			weights, g.Name, g.UsableBytes())
	}
	fits := func(n int) (int64, bool, error) {
		act, err := profileRun(exec, opts, n)
		if err != nil {
			return 0, false, err
		}
		return act, act <= budget, nil
	}
	act, ok, err := fits(maxLen)
	if err != nil {
		return profile{}, err
	}
	effLen := maxLen
	if !ok {
		// Binary search the largest profiling length that fits.
		lo, hi := 1, maxLen
		for hi-lo > 64 {
			mid := (lo + hi) / 2
			_, midOK, err := fits(mid)
			if err != nil {
				return profile{}, err
			}
			if midOK {
				lo = mid
			} else {
				hi = mid
			}
		}
		effLen = lo
		act, _, err = fits(effLen)
		if err != nil {
			return profile{}, err
		}
		if act > budget {
			return profile{}, fmt.Errorf("engine: no feasible profile length on %s", g.Name)
		}
	}
	p := profile{
		effLen:      effLen,
		actReserve:  act,
		actPerToken: float64(act) / float64(effLen),
		pool:        g.UsableBytes() - weights - act,
	}
	return p, nil
}

// actSpill prices activation overflow for a request longer than the
// profiled length: the excess working set spills over the host link.
func (p profile) actSpill(n int) int64 {
	if n <= p.effLen {
		return 0
	}
	return int64(float64(n-p.effLen) * p.actPerToken)
}
