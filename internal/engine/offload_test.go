package engine

import (
	"testing"

	"repro/internal/hw"
	"repro/internal/model"
	"repro/internal/sim"
)

// The §9 offload extension: when a user's profile prefix has been evicted
// from the GPU tier, a host-cached copy is restored over the host link
// instead of recomputed, and the request completes much faster.
func TestHostOffloadRestoresEvictedPrefix(t *testing.T) {
	runThirdRequest := func(hostBytes int64) Record {
		var s sim.Sim
		var recs []Record
		cfg := testConfig(&s, &recs)
		cfg.ProfileMaxLen = 16000
		cfg.HostCacheBytes = hostBytes
		eng, err := NewSerial(cfg, SerialSpec{Name: "po", Opts: hybridOpts()})
		if err != nil {
			t.Fatal(err)
		}
		// Shrink the effective pool by filling it with user 2's large
		// prefix between user 1's two requests.
		poolTokens := eng.Cache().CapacityTokens()
		u1 := sharedPrefixRequest(1, 1, poolTokens-poolTokens/4, 64, 0)
		u2 := sharedPrefixRequest(2, 2, poolTokens-poolTokens/4, 64, 1000)
		u1again := sharedPrefixRequest(3, 1, poolTokens-poolTokens/4, 96, 2000)
		s.At(u1.ArrivalTime, func() { eng.Submit(u1) })
		s.At(u2.ArrivalTime, func() { eng.Submit(u2) })
		s.At(u1again.ArrivalTime, func() { eng.Submit(u1again) })
		s.Run()
		if len(recs) != 3 {
			t.Fatalf("completed %d", len(recs))
		}
		return recs[2]
	}

	without := runThirdRequest(0)
	with := runThirdRequest(64 * hw.GiB)
	if without.RestoredTokens != 0 {
		t.Fatalf("restore happened with offloading disabled: %+v", without)
	}
	if with.RestoredTokens == 0 {
		t.Fatalf("no restore with offloading enabled: %+v", with)
	}
	if with.ExecTime() >= without.ExecTime()/2 {
		t.Fatalf("restore exec %.3fs not well below recompute %.3fs",
			with.ExecTime(), without.ExecTime())
	}
}

// Restoring must lose to recomputation when the host link is slower than
// the GPU would recompute the prefix.
func TestOffloadRestoreSkippedWhenRecomputeWins(t *testing.T) {
	var s sim.Sim
	var recs []Record
	g := hw.L4()
	g.HostBWBytes = 1e6 // absurdly slow host link
	cfg := Config{
		Model:          model.Llama31_8B(),
		GPU:            g,
		Sim:            &s,
		ProfileMaxLen:  16000,
		HostCacheBytes: 64 * hw.GiB,
		OnComplete:     func(r Record) { recs = append(recs, r) },
	}
	eng, err := NewSerial(cfg, SerialSpec{Name: "po", Opts: hybridOpts()})
	if err != nil {
		t.Fatal(err)
	}
	poolTokens := eng.Cache().CapacityTokens()
	u1 := sharedPrefixRequest(1, 1, poolTokens-poolTokens/4, 64, 0)
	u2 := sharedPrefixRequest(2, 2, poolTokens-poolTokens/4, 64, 1000)
	u1again := sharedPrefixRequest(3, 1, poolTokens-poolTokens/4, 96, 2000)
	s.At(u1.ArrivalTime, func() { eng.Submit(u1) })
	s.At(u2.ArrivalTime, func() { eng.Submit(u2) })
	s.At(u1again.ArrivalTime, func() { eng.Submit(u1again) })
	s.Run()
	if recs[2].RestoredTokens != 0 {
		t.Fatalf("restored over a link slower than recompute: %+v", recs[2])
	}
}
