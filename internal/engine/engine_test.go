package engine

import (
	"testing"

	"repro/internal/hw"
	"repro/internal/model"
	"repro/internal/sched"
	"repro/internal/sim"
)

// testRequest builds a request whose tokens are a deterministic stream.
func testRequest(id int64, user, n int, arrival float64) *sched.Request {
	toks := make([]uint64, n)
	for i := range toks {
		toks[i] = uint64(user)<<40 | uint64(i)
	}
	return &sched.Request{ID: id, UserID: user, Tokens: toks, ArrivalTime: arrival}
}

// sharedPrefixRequest builds a request sharing `share` leading tokens with
// user's stream, then diverging.
func sharedPrefixRequest(id int64, user, share, extra int, arrival float64) *sched.Request {
	toks := make([]uint64, share+extra)
	for i := 0; i < share; i++ {
		toks[i] = uint64(user)<<40 | uint64(i)
	}
	for i := share; i < share+extra; i++ {
		toks[i] = uint64(id)<<48 | uint64(i)
	}
	return &sched.Request{ID: id, UserID: user, Tokens: toks, ArrivalTime: arrival}
}

func testConfig(s *sim.Sim, recs *[]Record) Config {
	return Config{
		Model:         model.Llama31_8B(),
		GPU:           hw.L4(),
		Sim:           s,
		ProfileMaxLen: 20000,
		OnComplete: func(r Record) {
			*recs = append(*recs, r)
		},
	}
}

func TestPagedAttentionCompletesFCFS(t *testing.T) {
	var s sim.Sim
	var recs []Record
	eng, err := NewPagedAttention(testConfig(&s, &recs))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		r := testRequest(int64(i+1), i, 5000-1000*i, float64(i)*0.001)
		s.At(r.ArrivalTime, func() { eng.Submit(r) })
	}
	s.Run()
	if len(recs) != 3 {
		t.Fatalf("completed %d, want 3", len(recs))
	}
	// FCFS: completion order = arrival order even though later requests
	// are shorter.
	for i, rec := range recs {
		if rec.Req.ID != int64(i+1) {
			t.Fatalf("completion order %v not FCFS", recs)
		}
	}
	// Serial: executions must not overlap.
	for i := 1; i < len(recs); i++ {
		if recs[i].Start < recs[i-1].Finish-1e-9 {
			t.Fatalf("executions overlap: %v then %v", recs[i-1], recs[i])
		}
	}
	for _, rec := range recs {
		if rec.Latency() <= 0 || rec.ExecTime() <= 0 || rec.QueueTime() < 0 {
			t.Fatalf("bad record %+v", rec)
		}
		if rec.Infeasible() {
			t.Fatalf("short request marked infeasible: %+v", rec)
		}
	}
}

func TestPrefixCacheAcceleratesSecondRequest(t *testing.T) {
	var s sim.Sim
	var recs []Record
	eng, err := NewPagedAttention(testConfig(&s, &recs))
	if err != nil {
		t.Fatal(err)
	}
	r1 := sharedPrefixRequest(1, 7, 8000, 200, 0)
	r2 := sharedPrefixRequest(2, 7, 8000, 200, 0.001)
	s.At(0, func() { eng.Submit(r1) })
	s.At(0.001, func() { eng.Submit(r2) })
	s.Run()
	if len(recs) != 2 {
		t.Fatalf("completed %d", len(recs))
	}
	if recs[0].CachedTokens != 0 {
		t.Fatalf("first request hit %d cached tokens", recs[0].CachedTokens)
	}
	if recs[1].CachedTokens < 7000 {
		t.Fatalf("second request cached = %d, want ~8000", recs[1].CachedTokens)
	}
	if recs[1].ExecTime() > recs[0].ExecTime()/3 {
		t.Fatalf("cache hit exec %.3fs not ≪ cold %.3fs", recs[1].ExecTime(), recs[0].ExecTime())
	}
}

func TestPagedAttentionSpillsOnLongRequest(t *testing.T) {
	var s sim.Sim
	var recs []Record
	cfg := testConfig(&s, &recs)
	cfg.ProfileMaxLen = 60000
	eng, err := NewPagedAttention(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 60k tokens of KV ≈ 7.3 GiB on Llama-8B; the L4 pool (after 16 GiB
	// of weights) cannot hold it.
	r := testRequest(1, 1, 60000, 0)
	s.At(0, func() { eng.Submit(r) })
	s.Run()
	if len(recs) != 1 {
		t.Fatal("request did not complete")
	}
	if !recs[0].Infeasible() || recs[0].SpilledBytes == 0 {
		t.Fatalf("60k-token request on L4 should spill, got %+v", recs[0])
	}
}

func TestSerialHybridNoResidencyNoSpill(t *testing.T) {
	var s sim.Sim
	var recs []Record
	cfg := testConfig(&s, &recs)
	cfg.ProfileMaxLen = 60000
	eng, err := NewSerial(cfg, SerialSpec{
		Name: "prefillonly-like",
		Opts: hybridOpts(),
	})
	if err != nil {
		t.Fatal(err)
	}
	r := testRequest(1, 1, 60000, 0)
	s.At(0, func() { eng.Submit(r) })
	s.Run()
	if len(recs) != 1 || recs[0].Infeasible() {
		t.Fatalf("hybrid engine spilled on 60k tokens: %+v", recs)
	}
}

func TestChunkedPrefillSlowerThanHybridSameRequest(t *testing.T) {
	run := func(mk func(Config) (*Serial, error)) float64 {
		var s sim.Sim
		var recs []Record
		cfg := testConfig(&s, &recs)
		eng, err := mk(cfg)
		if err != nil {
			t.Fatal(err)
		}
		r := testRequest(1, 1, 18000, 0)
		s.At(0, func() { eng.Submit(r) })
		s.Run()
		return recs[0].ExecTime()
	}
	chunked := run(func(c Config) (*Serial, error) { return NewChunkedPrefill(c, 512) })
	hybrid := run(func(c Config) (*Serial, error) {
		return NewSerial(c, SerialSpec{Name: "h", Opts: hybridOpts()})
	})
	if chunked <= hybrid {
		t.Fatalf("chunked %.3fs should exceed hybrid %.3fs", chunked, hybrid)
	}
}

func TestTensorParallelLatencyAndComm(t *testing.T) {
	single := func() float64 {
		var s sim.Sim
		var recs []Record
		eng, err := NewPagedAttention(testConfig(&s, &recs))
		if err != nil {
			t.Fatal(err)
		}
		r := testRequest(1, 1, 15000, 0)
		s.At(0, func() { eng.Submit(r) })
		s.Run()
		return recs[0].ExecTime()
	}()

	tp := func(g *hw.GPU) float64 {
		var s sim.Sim
		var recs []Record
		cfg := testConfig(&s, &recs)
		cfg.GPU = g
		eng, err := NewTensorParallel(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if eng.GPUs() != 2 {
			t.Fatal("TP should occupy 2 GPUs")
		}
		r := testRequest(1, 1, 15000, 0)
		s.At(0, func() { eng.Submit(r) })
		s.Run()
		return recs[0].ExecTime()
	}
	pcie := tp(hw.L4())
	if pcie >= single {
		t.Fatalf("TP=2 exec %.3fs should beat single-GPU %.3fs at zero load", pcie, single)
	}
	if pcie <= single/2 {
		t.Fatalf("TP=2 exec %.3fs cannot beat perfect scaling %.3fs (comm is not free)", pcie, single/2)
	}
}

func TestPipelineParallelOverlapsStages(t *testing.T) {
	var s sim.Sim
	var recs []Record
	eng, err := NewPipelineParallel(testConfig(&s, &recs))
	if err != nil {
		t.Fatal(err)
	}
	if eng.GPUs() != 2 {
		t.Fatal("PP should occupy 2 GPUs")
	}
	// Two equal requests back to back: with a 2-stage pipeline the second
	// finishes ~one stage after the first, not one full latency after.
	r1 := testRequest(1, 1, 10000, 0)
	r2 := testRequest(2, 2, 10000, 0.001)
	s.At(0, func() { eng.Submit(r1) })
	s.At(0.001, func() { eng.Submit(r2) })
	s.Run()
	if len(recs) != 2 {
		t.Fatalf("completed %d", len(recs))
	}
	full := recs[0].Finish
	gap := recs[1].Finish - recs[0].Finish
	if gap > 0.7*full {
		t.Fatalf("no pipelining: second request finished %.3fs after first (full latency %.3fs)", gap, full)
	}
}

// Regression for the `handoff = handoff[1:]` retention bug: under a deep
// sustained pipeline every stage-0 completion appended to the handoff
// queue while stage 1 advanced the slice, so the backing array retained
// every inflight ever handed off. The ring must stay bounded by the peak
// handoff depth (≈1 for symmetric stages), not the request count.
func TestPipelineHandoffBoundedUnderDeepPipeline(t *testing.T) {
	var s sim.Sim
	var recs []Record
	eng, err := NewPipelineParallel(testConfig(&s, &recs))
	if err != nil {
		t.Fatal(err)
	}
	const n = 300
	for i := 0; i < n; i++ {
		r := testRequest(int64(i+1), i, 2000, 0)
		s.At(0, func() { eng.Submit(r) })
	}
	s.Run()
	if len(recs) != n {
		t.Fatalf("completed %d of %d", len(recs), n)
	}
	if eng.handoff.Len() != 0 {
		t.Fatalf("handoff retains %d entries after drain", eng.handoff.Len())
	}
	if eng.handoff.Cap() > 16 {
		t.Fatalf("handoff backing array holds %d slots after %d requests", eng.handoff.Cap(), n)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewPagedAttention(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	var s sim.Sim
	cfg := Config{Model: model.Llama31_8B(), GPU: hw.L4(), Sim: &s}
	if _, err := NewPagedAttention(cfg); err == nil {
		t.Error("zero ProfileMaxLen accepted")
	}
}

func TestWeightsTooLargeRejected(t *testing.T) {
	var s sim.Sim
	cfg := Config{Model: model.Llama33_70BFP8(), GPU: hw.L4(), Sim: &s, ProfileMaxLen: 1000}
	if _, err := NewPagedAttention(cfg); err == nil {
		t.Error("70B model on L4 accepted")
	}
}

func TestReplaceSchedulerGuards(t *testing.T) {
	var s sim.Sim
	var recs []Record
	eng, err := NewPagedAttention(testConfig(&s, &recs))
	if err != nil {
		t.Fatal(err)
	}
	if err := ReplaceScheduler(eng, nil); err == nil {
		t.Error("nil scheduler accepted")
	}
	if err := ReplaceScheduler(eng, sched.NewFIFO()); err != nil {
		t.Errorf("idle replace failed: %v", err)
	}
	r := testRequest(1, 1, 5000, 0)
	s.At(0, func() {
		eng.Submit(r)
		if err := ReplaceScheduler(eng, sched.NewFIFO()); err == nil {
			t.Error("replace with work in flight accepted")
		}
	})
	s.Run()
}
