package engine

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/kvcache"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Serial is a single-device engine that executes one request at a time —
// the right discipline for compute-bound prefill-only work (§6.1: batching
// prefill-only requests inflates latency without improving throughput).
// PrefillOnly and the two non-parallel baselines are all Serial engines;
// they differ in prefill strategy, KV residency, and scheduler.
type Serial struct {
	sim       sim.Clock
	scheduler sched.Scheduler
	lc        lifecycle

	busy bool
	// cur is the request in service; the completion event carries the
	// engine itself (sim fast path), so the inflight rides here instead
	// of in a per-dispatch closure.
	cur *inflight

	// slow is the straggler speed factor (internal/chaos): when > 0 every
	// dispatched pass is priced slow× its modelled duration. Zero (the
	// untouched default) leaves the cost model bit-identical to a run
	// without fault injection.
	slow float64
	// killed marks a crashed engine whose in-service completion event is
	// still scheduled; serialDone swallows exactly one completion after a
	// mid-flight Kill (sim events cannot be cancelled).
	killed bool
}

// SerialSpec configures a Serial engine beyond the shared Config.
type SerialSpec struct {
	// Name labels the engine in records and output.
	Name string
	// Opts is the prefill execution strategy.
	Opts graph.Options
	// Scheduler orders the waiting queue. When nil, FIFO is used.
	Scheduler sched.Scheduler
	// ResidentKV requires pool space for a running request's fresh KV.
	ResidentKV bool
}

// NewSerial builds a Serial engine: it performs the profile run, sizes the
// prefix-cache pool from the remaining memory, and binds to the simulator.
func NewSerial(cfg Config, spec SerialSpec) (*Serial, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if err := spec.Opts.Validate(); err != nil {
		return nil, err
	}
	exec := graph.New(cfg.Model, cfg.GPU)
	prof, err := buildProfile(exec, spec.Opts, cfg.GPU, cfg.Model.WeightBytes(), cfg.ProfileMaxLen)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", spec.Name, err)
	}
	cache, err := kvcache.New(kvcache.Config{
		BlockTokens:       cfg.blockTokens(),
		BytesPerToken:     cfg.Model.KVBytesPerToken(),
		CapacityBytes:     prof.pool,
		HostCapacityBytes: cfg.HostCacheBytes,
	})
	if err != nil {
		return nil, err
	}
	ti := cfg.Tracer.NewInstance(spec.Name)
	trace.WatchCache(ti, cache)
	s := &Serial{
		sim:       cfg.Sim,
		scheduler: spec.Scheduler,
		lc: lifecycle{
			name:        spec.Name,
			cfg:         cfg,
			exec:        exec,
			opts:        spec.Opts,
			cache:       cache,
			prof:        prof,
			ti:          ti,
			residentKV:  spec.ResidentKV,
			hostRestore: true,
			spillGPUs:   1,
		},
	}
	if s.scheduler == nil {
		s.scheduler = sched.NewFIFO()
	}
	return s, nil
}

// Name implements Engine.
func (s *Serial) Name() string { return s.lc.name }

// GPUs implements Engine.
func (s *Serial) GPUs() int { return 1 }

// Cache implements Engine.
func (s *Serial) Cache() *kvcache.Manager { return s.lc.cache }

// Scheduler exposes the queue policy (used by internal/core to wire JCT
// calibration).
func (s *Serial) Scheduler() sched.Scheduler { return s.scheduler }

// Executor exposes the cost model (used for JCT profiling).
func (s *Serial) Executor() *graph.Executor { return s.lc.exec }

// Options returns the engine's prefill strategy.
func (s *Serial) Options() graph.Options { return s.lc.opts }

// Submit implements Engine.
func (s *Serial) Submit(r *sched.Request) {
	s.scheduler.Enqueue(r)
	s.dispatch()
}

// dispatch starts the scheduler's next request if the device is idle.
func (s *Serial) dispatch() {
	if s.busy {
		return
	}
	now := s.sim.Now()
	r := s.scheduler.Next(now)
	if r == nil {
		return
	}
	s.busy = true

	inf := s.lc.begin(r, now)
	dur := s.lc.estimate(inf) + inf.restoreSeconds +
		spillSeconds(inf.spilled, s.lc.cfg.GPU.HostBWBytes)
	if s.slow > 0 {
		dur *= s.slow
	}
	s.cur = inf
	s.sim.AfterFunc(dur, serialDone, s)
}

// serialDone is the zero-alloc completion callback: one device, one
// request in service, so the engine pointer is the whole event payload.
func serialDone(arg any) {
	s := arg.(*Serial)
	if s.killed {
		// The engine crashed after this completion was scheduled; the
		// request was already orphaned by Kill. Drop the event.
		s.killed = false
		return
	}
	inf := s.cur
	s.cur = nil
	s.lc.finish(inf, s.sim.Now())
	s.busy = false
	s.dispatch()
}

// SetSpeedFactor makes the engine a straggler: every subsequent dispatch
// is priced factor× its modelled duration (factor > 1 is slower).
// factor <= 0 or 1 restores nominal speed. The request in service, if
// any, keeps its already-scheduled completion time.
func (s *Serial) SetSpeedFactor(factor float64) {
	if factor == 1 {
		factor = 0
	}
	s.slow = factor
}

// SpeedFactor returns the active straggler factor (0 when nominal).
func (s *Serial) SpeedFactor() float64 { return s.slow }

// Kill crashes the engine: the request in service is aborted (its pin and
// reservation released, no Record emitted), the waiting queue is drained,
// and both cache tiers are lost. It returns every orphaned request in
// deterministic order (in-service first, then scheduler order) so the
// router can re-admit them. The engine must not be submitted to again.
func (s *Serial) Kill() []*sched.Request {
	var orphans []*sched.Request
	if s.cur != nil {
		s.lc.abort(s.cur)
		orphans = append(orphans, s.cur.req)
		s.cur = nil
		s.killed = true
	}
	now := s.sim.Now()
	for {
		r := s.scheduler.Next(now)
		if r == nil {
			break
		}
		orphans = append(orphans, r)
	}
	s.busy = false
	s.lc.cache.LoseAll()
	return orphans
}

// spillSeconds prices the beyond-MIL fallback: each spilled byte crosses
// the host link twice.
func spillSeconds(bytes int64, hostBW float64) float64 {
	if bytes <= 0 {
		return 0
	}
	return 2 * float64(bytes) / hostBW
}

// ReplaceScheduler swaps the queue policy of an idle, empty engine. It
// exists so internal/core can wire a scheduler whose JCT function closes
// over the engine's own cache and cost model.
func ReplaceScheduler(s *Serial, sc sched.Scheduler) error {
	if sc == nil {
		return fmt.Errorf("engine: nil scheduler")
	}
	if s.busy || s.scheduler.Len() > 0 {
		return fmt.Errorf("engine %s: cannot replace scheduler with work in flight", s.Name())
	}
	s.scheduler = sc
	return nil
}

// NewPagedAttention builds the PagedAttention baseline: standard prefill,
// full KV residency, FCFS scheduling (vLLM's defaults).
func NewPagedAttention(cfg Config) (*Serial, error) {
	return NewSerial(cfg, SerialSpec{
		Name:       "pagedattention",
		Opts:       graph.StandardOptions(),
		Scheduler:  sched.NewFIFO(),
		ResidentKV: true,
	})
}

// NewChunkedPrefill builds the chunked-prefill baseline (Sarathi-Serve):
// chunked execution, full KV residency, FCFS scheduling.
func NewChunkedPrefill(cfg Config, chunk int) (*Serial, error) {
	if chunk <= 0 {
		chunk = graph.DefaultChunkSize
	}
	return NewSerial(cfg, SerialSpec{
		Name:       "chunked-prefill",
		Opts:       graph.ChunkedOptions(chunk),
		Scheduler:  sched.NewFIFO(),
		ResidentKV: true,
	})
}
