package engine

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/kvcache"
	"repro/internal/sched"
	"repro/internal/sim"
)

// Serial is a single-device engine that executes one request at a time —
// the right discipline for compute-bound prefill-only work (§6.1: batching
// prefill-only requests inflates latency without improving throughput).
// PrefillOnly and the two non-parallel baselines are all Serial engines;
// they differ in prefill strategy, KV residency, and scheduler.
type Serial struct {
	name      string
	cfg       Config
	sim       *sim.Sim
	exec      *graph.Executor
	opts      graph.Options
	scheduler sched.Scheduler
	cache     *kvcache.Manager

	// residentKV is true for conventional engines that must hold a
	// running request's full fresh KV in the pool (PagedAttention,
	// chunked prefill); false for PrefillOnly, which discards it during
	// inference.
	residentKV bool
	prof       profile

	busy bool
}

// SerialSpec configures a Serial engine beyond the shared Config.
type SerialSpec struct {
	// Name labels the engine in records and output.
	Name string
	// Opts is the prefill execution strategy.
	Opts graph.Options
	// Scheduler orders the waiting queue. When nil, FIFO is used.
	Scheduler sched.Scheduler
	// ResidentKV requires pool space for a running request's fresh KV.
	ResidentKV bool
}

// NewSerial builds a Serial engine: it performs the profile run, sizes the
// prefix-cache pool from the remaining memory, and binds to the simulator.
func NewSerial(cfg Config, spec SerialSpec) (*Serial, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if err := spec.Opts.Validate(); err != nil {
		return nil, err
	}
	exec := graph.New(cfg.Model, cfg.GPU)
	prof, err := buildProfile(exec, spec.Opts, cfg.GPU, cfg.Model.WeightBytes(), cfg.ProfileMaxLen)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", spec.Name, err)
	}
	cache, err := kvcache.New(kvcache.Config{
		BlockTokens:       cfg.blockTokens(),
		BytesPerToken:     cfg.Model.KVBytesPerToken(),
		CapacityBytes:     prof.pool,
		HostCapacityBytes: cfg.HostCacheBytes,
	})
	if err != nil {
		return nil, err
	}
	s := &Serial{
		name:       spec.Name,
		cfg:        cfg,
		sim:        cfg.Sim,
		exec:       exec,
		opts:       spec.Opts,
		scheduler:  spec.Scheduler,
		cache:      cache,
		residentKV: spec.ResidentKV,
		prof:       prof,
	}
	if s.scheduler == nil {
		s.scheduler = sched.NewFIFO()
	}
	return s, nil
}

// Name implements Engine.
func (s *Serial) Name() string { return s.name }

// GPUs implements Engine.
func (s *Serial) GPUs() int { return 1 }

// Cache implements Engine.
func (s *Serial) Cache() *kvcache.Manager { return s.cache }

// Scheduler exposes the queue policy (used by internal/core to wire JCT
// calibration).
func (s *Serial) Scheduler() sched.Scheduler { return s.scheduler }

// Executor exposes the cost model (used for JCT profiling).
func (s *Serial) Executor() *graph.Executor { return s.exec }

// Options returns the engine's prefill strategy.
func (s *Serial) Options() graph.Options { return s.opts }

// Submit implements Engine.
func (s *Serial) Submit(r *sched.Request) {
	s.scheduler.Enqueue(r)
	s.dispatch()
}

// dispatch starts the scheduler's next request if the device is idle.
func (s *Serial) dispatch() {
	if s.busy {
		return
	}
	now := s.sim.Now()
	r := s.scheduler.Next(now)
	if r == nil {
		return
	}
	s.busy = true

	hashes := hashesOf(r, s.cache.BlockTokens())
	cached, unpin := s.cache.PinH(hashes, now)
	if cached > r.Len() {
		cached = r.Len()
	}
	// §9 extension: if the blocks following the GPU hit are in the host
	// offload tier, restore them over the host link when that beats
	// recomputing them.
	restored := 0
	var restoreSeconds float64
	if hostHit := s.cache.HostHitH(hashes, cached/s.cache.BlockTokens()); hostHit > 0 {
		withRestore := cached + hostHit
		if withRestore > r.Len() {
			withRestore = r.Len()
		}
		tRecompute, err1 := s.exec.EstimateSeconds(graph.PassSpec{Total: r.Len(), Cached: cached}, s.opts)
		tRestoredPass, err2 := s.exec.EstimateSeconds(graph.PassSpec{Total: r.Len(), Cached: withRestore}, s.opts)
		if err1 == nil && err2 == nil {
			loadTime := float64(int64(withRestore-cached)*s.cfg.Model.KVBytesPerToken()) / s.cfg.GPU.HostBWBytes
			if tRestoredPass+loadTime < tRecompute {
				restored = withRestore - cached
				cached = withRestore
				restoreSeconds = loadTime
			}
		}
	}
	fresh := r.Len() - cached

	// Conventional engines must page the fresh KV into the pool for the
	// duration of execution; shortfall spills over the host link twice
	// (written out during prefill, read back by later layers' attention).
	// Requests longer than the profiled length additionally spill their
	// excess activation working set.
	spilled := s.prof.actSpill(r.Len())
	releaseReservation := func() {}
	if s.residentKV {
		need := int64(fresh) * s.cfg.Model.KVBytesPerToken()
		var short int64
		short, releaseReservation = s.cache.Reserve(need)
		spilled += short
	}

	dur, err := s.exec.EstimateSeconds(graph.PassSpec{Total: r.Len(), Cached: cached}, s.opts)
	if err != nil {
		// Cost-model failure is a programming error (specs are
		// validated at submit); fail loudly.
		panic(fmt.Sprintf("engine %s: pricing request %d: %v", s.name, r.ID, err))
	}
	dur += restoreSeconds + spillSeconds(spilled, s.cfg.GPU.HostBWBytes)

	start := now
	s.sim.After(dur, func() {
		finish := s.sim.Now()
		unpin()
		releaseReservation()
		// Cache what was computed: full insert for conventional
		// engines (their KV is already in the pool), prefix-first
		// insert with suffix discarding for PrefillOnly.
		s.cache.InsertH(hashes, finish)
		s.cfg.emit(Record{
			Req:            r,
			Arrival:        r.ArrivalTime,
			Start:          start,
			Finish:         finish,
			CachedTokens:   cached,
			SpilledBytes:   spilled,
			RestoredTokens: restored,
			Instance:       s.name,
		})
		s.busy = false
		s.dispatch()
	})
}

// spillSeconds prices the beyond-MIL fallback: each spilled byte crosses
// the host link twice.
func spillSeconds(bytes int64, hostBW float64) float64 {
	if bytes <= 0 {
		return 0
	}
	return 2 * float64(bytes) / hostBW
}

// ReplaceScheduler swaps the queue policy of an idle, empty engine. It
// exists so internal/core can wire a scheduler whose JCT function closes
// over the engine's own cache and cost model.
func ReplaceScheduler(s *Serial, sc sched.Scheduler) error {
	if sc == nil {
		return fmt.Errorf("engine: nil scheduler")
	}
	if s.busy || s.scheduler.Len() > 0 {
		return fmt.Errorf("engine %s: cannot replace scheduler with work in flight", s.name)
	}
	s.scheduler = sc
	return nil
}

// NewPagedAttention builds the PagedAttention baseline: standard prefill,
// full KV residency, FCFS scheduling (vLLM's defaults).
func NewPagedAttention(cfg Config) (*Serial, error) {
	return NewSerial(cfg, SerialSpec{
		Name:       "pagedattention",
		Opts:       graph.StandardOptions(),
		Scheduler:  sched.NewFIFO(),
		ResidentKV: true,
	})
}

// NewChunkedPrefill builds the chunked-prefill baseline (Sarathi-Serve):
// chunked execution, full KV residency, FCFS scheduling.
func NewChunkedPrefill(cfg Config, chunk int) (*Serial, error) {
	if chunk <= 0 {
		chunk = graph.DefaultChunkSize
	}
	return NewSerial(cfg, SerialSpec{
		Name:       "chunked-prefill",
		Opts:       graph.ChunkedOptions(chunk),
		Scheduler:  sched.NewFIFO(),
		ResidentKV: true,
	})
}
