package engine

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/kvcache"
	"repro/internal/sched"
	"repro/internal/trace"
)

// lifecycle is the dispatch lifecycle shared by every engine: begin pins
// the request's cached prefix, decides host-tier restoring, reserves
// resident KV and accounts spill; estimate prices one executor pass; and
// finish releases resources, caches the computed prefix and emits the
// Record. Serial, TensorParallel and PipelineParallel all drive this one
// type — engine-specific costs (collectives, stage handoffs, spill
// bandwidth splits) stay in the engines — so scheduling and accounting
// changes land once instead of three times.
type lifecycle struct {
	name  string
	cfg   Config
	exec  *graph.Executor
	opts  graph.Options
	cache *kvcache.Manager
	prof  profile
	// ti is the engine's flight-recorder handle (nil when tracing is
	// disabled): begin emits the queue-wait span, finish the execution
	// span, so every request's JCT is fully attributed queue+exec.
	ti *trace.Instance

	// residentKV engines must hold a running request's full fresh KV in
	// the pool for the duration of execution (PagedAttention, chunked
	// prefill, TP, PP); PrefillOnly discards it during inference.
	residentKV bool
	// hostRestore engines consider loading host-offloaded prefix blocks
	// back over the host link when that beats recomputing them (§9).
	hostRestore bool
	// spillGPUs is how many devices each overflow their own activation
	// share past the profiled length (1 serial, 2 for TP/PP).
	spillGPUs int64
}

// inflight is one request travelling the lifecycle between begin and
// finish.
type inflight struct {
	req    *sched.Request
	start  float64
	hashes []uint64
	// cached counts prefix tokens served without recompute: GPU-tier
	// hits plus restored, the host-restored share.
	cached, restored int
	restoreSeconds   float64
	spilled          int64
	// unpin and unreserve release the cached-prefix pin and the resident-
	// KV reservation; either may be nil. Kept as separate fields so begin
	// does not build a combining closure per request.
	unpin, unreserve func()

	// est caches the priced executor pass when the restore decision
	// already ran it, so estimate does not repeat the cost model.
	est      float64
	estValid bool

	// mark is a scratch timestamp for intra-request trace boundaries:
	// PipelineParallel stamps each stage's start here so stage spans can
	// be emitted without a per-request closure.
	mark float64
}

// fresh returns the tokens that must be computed.
func (f *inflight) fresh() int { return f.req.Len() - f.cached }

// begin admits a request at time now: pin the cached prefix, optionally
// restore from the host tier, reserve resident KV, and account activation
// and KV spill.
func (l *lifecycle) begin(r *sched.Request, now float64) *inflight {
	hashes := HashesOf(r, l.cache.BlockTokens())
	cached, unpin := l.cache.PinH(hashes, now)
	if cached > r.Len() {
		cached = r.Len()
	}
	inf := &inflight{req: r, start: now, hashes: hashes, cached: cached, unpin: unpin}
	l.ti.Queue(r.ID, r.Class, r.ArrivalTime, now)
	if l.hostRestore {
		l.maybeRestore(inf)
	}

	// Requests longer than the profiled length spill their excess
	// activation working set over the host link; resident-KV engines
	// additionally spill whatever fresh KV the pool cannot hold.
	spilled := l.spillGPUs * l.prof.actSpill(r.Len())
	if l.residentKV {
		need := int64(inf.fresh()) * l.cfg.Model.KVBytesPerToken()
		var short int64
		short, inf.unreserve = l.cache.Reserve(need)
		spilled += short
	}
	inf.spilled = spilled
	return inf
}

// maybeRestore applies the §9 extension: if the blocks following the GPU
// hit are in the host offload tier, restore them over the host link when
// that beats recomputing them.
func (l *lifecycle) maybeRestore(inf *inflight) {
	r := inf.req
	hostHit := l.cache.HostHitH(inf.hashes, inf.cached/l.cache.BlockTokens())
	if hostHit <= 0 {
		return
	}
	withRestore := inf.cached + hostHit
	if withRestore > r.Len() {
		withRestore = r.Len()
	}
	tRecompute, err1 := l.exec.EstimateSeconds(graph.PassSpec{Total: r.Len(), Cached: inf.cached}, l.opts)
	tRestoredPass, err2 := l.exec.EstimateSeconds(graph.PassSpec{Total: r.Len(), Cached: withRestore}, l.opts)
	if err1 != nil || err2 != nil {
		return
	}
	loadTime := float64(int64(withRestore-inf.cached)*l.cfg.Model.KVBytesPerToken()) / l.cfg.GPU.HostBWBytes
	if tRestoredPass+loadTime < tRecompute {
		inf.restored = withRestore - inf.cached
		inf.cached = withRestore
		inf.restoreSeconds = loadTime
		inf.est, inf.estValid = tRestoredPass, true
	} else {
		inf.est, inf.estValid = tRecompute, true
	}
}

// estimate prices one pass of the engine's executor over the request.
// Cost-model failure is a programming error (specs are validated at
// submit); fail loudly.
func (l *lifecycle) estimate(inf *inflight) float64 {
	if inf.estValid {
		return inf.est
	}
	dur, err := l.exec.EstimateSeconds(graph.PassSpec{Total: inf.req.Len(), Cached: inf.cached}, l.opts)
	if err != nil {
		panic(fmt.Sprintf("engine %s: pricing request %d: %v", l.name, inf.req.ID, err))
	}
	inf.est, inf.estValid = dur, true
	return dur
}

// abort releases a crashed request's resources without completing it: the
// pin and reservation are returned, but nothing is cached and no Record
// is emitted — the work is simply lost (the router re-admits the orphan).
func (l *lifecycle) abort(inf *inflight) {
	if inf.unpin != nil {
		inf.unpin()
	}
	if inf.unreserve != nil {
		inf.unreserve()
	}
}

// finish completes a request at the given timestamp: release the pin and
// reservation, cache what was computed (full insert for conventional
// engines whose KV is already in the pool, prefix-first insert with
// suffix discarding for PrefillOnly), and emit the Record.
func (l *lifecycle) finish(inf *inflight, finish float64) {
	if inf.unpin != nil {
		inf.unpin()
	}
	if inf.unreserve != nil {
		inf.unreserve()
	}
	l.cache.InsertH(inf.hashes, finish)
	l.ti.Exec(inf.req.ID, inf.req.Class, inf.start, finish, inf.cached, inf.req.EstimatedSeconds)
	l.cfg.emit(Record{
		Req:            inf.req,
		Arrival:        inf.req.ArrivalTime,
		Start:          inf.start,
		Finish:         finish,
		CachedTokens:   inf.cached,
		SpilledBytes:   inf.spilled,
		RestoredTokens: inf.restored,
		Instance:       l.name,
	})
}
