package engine

import "repro/internal/graph"

func hybridOpts() graph.Options {
	return graph.HybridOptions(graph.DefaultChunkSize)
}
