package engine

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/hw"
	"repro/internal/model"
	"repro/internal/sim"
)

// MinEventSeconds derives a sharded kernel's lookahead from the catalogs:
// a conservative lower bound on the spacing between an engine event and
// anything it schedules. The shortest latency any engine prices is a
// single-token pass on the smallest model share an instance runs (a PP=2
// stage, when the model splits evenly; the full model otherwise), floored
// at the fixed collective launch cost. Every other engine-priced latency —
// full passes, TP all-reduces, PP handoffs, spill transfers, autoscale
// cold starts (seconds, not microseconds) — is at least this long.
//
// In the current integration all engine events are shard-local, so
// correctness never depends on this bound (Shard.Post enforces its own);
// the lookahead only sizes the conservative windows, i.e. how often the
// shards synchronize.
func MinEventSeconds(m *model.Config, g *hw.GPU) float64 {
	min := collectiveLatency
	opts := graph.StandardOptions()
	priced := m
	if stage, err := m.Shard(1, 2); err == nil {
		priced = stage
	}
	if dur, err := graph.New(priced, g).EstimateSeconds(graph.PassSpec{Total: 1}, opts); err == nil && dur > min {
		min = dur
	}
	return min
}

// Kernel bundles the event kernel a serving run executes on: the serial
// Sim for shards <= 1, or a ShardedSim where engine instances round-robin
// onto shard clocks while arrivals, routing and autoscaling stay on the
// coordinator. Run construction asks the Kernel for clocks and completion
// sinks instead of hard-wiring *sim.Sim, so one code path builds both
// modes and the serial-vs-sharded oracle compares like with like.
type Kernel struct {
	serial  *sim.Sim
	sharded *sim.ShardedSim
	merger  *completionMerger
}

// NewKernel builds the kernel. shards <= 1 selects the serial Sim;
// otherwise a ShardedSim with the given lookahead (derive it with
// MinEventSeconds).
func NewKernel(shards int, lookahead float64) *Kernel {
	if shards <= 1 {
		return &Kernel{serial: &sim.Sim{}}
	}
	return &Kernel{sharded: sim.NewSharded(shards, lookahead)}
}

// Shards returns the shard count (1 in serial mode).
func (k *Kernel) Shards() int {
	if k.sharded == nil {
		return 1
	}
	return k.sharded.Shards()
}

// Sharded reports whether the kernel runs the sharded scheduler.
func (k *Kernel) Sharded() bool { return k.sharded != nil }

// Clock returns the coordinator-side clock: arrivals, router interactions,
// autoscale ticks and gauge samplers schedule here.
func (k *Kernel) Clock() sim.Clock {
	if k.sharded == nil {
		return k.serial
	}
	return k.sharded
}

// InstanceClock returns the clock engine instance i schedules on:
// round-robin across shards, or the one serial Sim. The instance index
// must be stable for the run (autoscaled additions continue the rotation).
func (k *Kernel) InstanceClock(i int) sim.Clock {
	if k.sharded == nil {
		return k.serial
	}
	return k.sharded.Shard(i % k.sharded.Shards())
}

// Run drains the kernel and returns the final simulated time.
func (k *Kernel) Run() float64 {
	if k.sharded == nil {
		return k.serial.Run()
	}
	return k.sharded.Run()
}

// Executed returns the total events executed (merged across shards).
func (k *Kernel) Executed() uint64 {
	if k.sharded == nil {
		return k.serial.Executed()
	}
	return k.sharded.Executed()
}

// Stats returns the kernel's self-profile: windows advanced, bound-clamp
// causes, window-width and barrier-stall histograms, and the per-shard
// breakdown (degenerate — coordinator events only — in serial mode).
func (k *Kernel) Stats() sim.KernelStats {
	if k.sharded == nil {
		return k.serial.Stats()
	}
	return k.sharded.Stats()
}

// CompletionSinks adapts a run's shared completion sink (router
// accounting + record append — shared, ordered state) to the kernel. In
// serial mode every instance gets the sink directly. In sharded mode each
// instance gets a buffering sink on its shard: completions are stamped in
// shard-emission order and applied to the real sink at the window barrier
// in global (finish time, shard, emission) order, so the router's
// accounting and the record slice see exactly the serial kernel's order
// whenever completion times differ (per-shard completion streams are
// time-monotonic because engines emit at the completion event's own time).
//
// Call it once per run; instance i's sink is sinkFor(i) with the same
// stable index InstanceClock uses.
func (k *Kernel) CompletionSinks(sink func(Record)) func(i int) func(Record) {
	if k.sharded == nil {
		return func(int) func(Record) { return sink }
	}
	if k.merger != nil {
		panic("engine: CompletionSinks called twice on one Kernel")
	}
	k.merger = newCompletionMerger(k.sharded, sink)
	return k.merger.sinkFor
}

// shardCompletions is one shard's barrier buffer, in emission order (the
// deterministic tie-break within a shard). Kept as a value slice: steady
// state reuses the backing array, so buffering a completion costs no
// allocation beyond amortized growth to the per-window peak.
type shardCompletions struct {
	buf []Record
	pos int
}

// completionMerger applies per-shard completion buffers to the shared sink
// at every window barrier, in global finish-time order (ties: shard index,
// then emission order).
type completionMerger struct {
	shards []shardCompletions
	sink   func(Record)
}

func newCompletionMerger(p *sim.ShardedSim, sink func(Record)) *completionMerger {
	if sink == nil {
		panic("engine: nil completion sink")
	}
	m := &completionMerger{shards: make([]shardCompletions, p.Shards()), sink: sink}
	p.OnBarrier(m.flush)
	return m
}

// sinkFor returns instance i's buffering sink on its shard.
func (m *completionMerger) sinkFor(i int) func(Record) {
	sc := &m.shards[i%len(m.shards)]
	return func(r Record) {
		sc.buf = append(sc.buf, r)
	}
}

// flush k-way merges the shard buffers into the sink. Each buffer is
// already finish-time-ordered (a shard's events execute in time order and
// completions are emitted at event time), so one cursor per shard
// suffices; the scan is O(records × shards) with shards bounded by the
// worker count. Buffers keep their capacity across windows.
func (m *completionMerger) flush() {
	for {
		best := -1
		var bestT float64
		for i := range m.shards {
			sc := &m.shards[i]
			if sc.pos >= len(sc.buf) {
				continue
			}
			t := sc.buf[sc.pos].Finish
			if best == -1 || t < bestT {
				best, bestT = i, t
			}
		}
		if best == -1 {
			break
		}
		sc := &m.shards[best]
		m.sink(sc.buf[sc.pos])
		sc.buf[sc.pos] = Record{}
		sc.pos++
	}
	for i := range m.shards {
		sc := &m.shards[i]
		sc.buf = sc.buf[:0]
		sc.pos = 0
	}
}

// Validate that a Kernel is used consistently: sharded mode requires the
// completion path to go through CompletionSinks, or router accounting
// would race across shards. Run constructors call this after wiring.
func (k *Kernel) Validate() error {
	if k.sharded != nil && k.merger == nil {
		return fmt.Errorf("engine: sharded kernel wired without CompletionSinks")
	}
	return nil
}
