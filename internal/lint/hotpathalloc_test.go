package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

func TestHotPathAllocFixture(t *testing.T) {
	diags := linttest.Run(t, "testdata", lint.HotPathAlloc, "hotpathalloc/internal/engine")
	if len(diags) == 0 {
		t.Fatal("hotpathalloc produced no diagnostics on its true-positive fixture")
	}
}

func TestHotPathAllocScopedToEngineSched(t *testing.T) {
	diags := linttest.Run(t, "testdata", lint.HotPathAlloc, "hotpathalloc/internal/router")
	if len(diags) != 0 {
		t.Fatalf("hotpathalloc flagged a coordinator-side closure outside engine/sched: %v", diags)
	}
}
