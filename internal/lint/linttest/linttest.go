// Package linttest is the suite's analysistest equivalent: it loads a
// fixture package from a testdata/src tree, type-checks it (standard-
// library imports resolve from GOROOT source, sibling fixture packages
// resolve recursively from the same tree), runs one analyzer, and
// diffs the findings against `// want "regexp"` comments in the
// fixture.
//
// Fixture layout mirrors a GOPATH: testdata/src/<import/path>/*.go.
// Import paths are chosen so the scope helpers in internal/lint see the
// same shapes as the real module — e.g. a fixture package
// "simdeterminism/internal/sim" is inside the deterministic set, while
// "simdeterminism/internal/server" is not.
package linttest

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"repro/internal/lint"
)

// Run loads testdata/src/<pkgpath>, runs the analyzer, and reports any
// mismatch between produced diagnostics and the fixture's want
// comments. It returns the diagnostics for additional assertions.
func Run(t *testing.T, testdata string, a *lint.Analyzer, pkgpath string) []lint.Diagnostic {
	t.Helper()
	ld := newLoader(filepath.Join(testdata, "src"))
	pkg, files, err := ld.load(pkgpath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", pkgpath, err)
	}
	diags := lint.RunPackage(ld.fset, files, pkg, ld.info, []*lint.Analyzer{a})

	wants := collectWants(t, ld.fset, files)
	matched := make([]bool, len(wants))
	for _, d := range diags {
		ok := false
		for i, w := range wants {
			if matched[i] || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				matched[i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
	return diags
}

type want struct {
	file string
	line int
	re   *regexp.Regexp
}

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)

func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []want {
	t.Helper()
	var wants []want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, pat := range splitQuoted(m[1]) {
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, pat, err)
					}
					wants = append(wants, want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	sort.Slice(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	return wants
}

// splitQuoted extracts the backquote- or doublequote-delimited patterns
// from the tail of a want comment: `a` "b" -> ["a", "b"].
func splitQuoted(s string) []string {
	var out []string
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			return out
		}
		delim := s[0]
		if delim != '"' && delim != '`' {
			return out
		}
		end := strings.IndexByte(s[1:], delim)
		if end < 0 {
			return out
		}
		out = append(out, s[1:1+end])
		s = s[2+end:]
	}
}

// loader resolves fixture-tree packages recursively and everything else
// (the standard library) from GOROOT source.
type loader struct {
	root  string
	fset  *token.FileSet
	std   types.Importer
	info  *types.Info
	pkgs  map[string]*types.Package
	files map[string][]*ast.File
}

func newLoader(root string) *loader {
	fset := token.NewFileSet()
	return &loader{
		root:  root,
		fset:  fset,
		std:   importer.ForCompiler(fset, "source", nil),
		info:  lint.NewInfo(),
		pkgs:  make(map[string]*types.Package),
		files: make(map[string][]*ast.File),
	}
}

func (l *loader) Import(path string) (*types.Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if dir := filepath.Join(l.root, filepath.FromSlash(path)); isDir(dir) {
		pkg, _, err := l.load(path)
		return pkg, err
	}
	return l.std.Import(path)
}

func (l *loader) load(path string) (*types.Package, []*ast.File, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, l.files[path], nil
	}
	dir := filepath.Join(l.root, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, nil, fmt.Errorf("no Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, nil, err
		}
		files = append(files, f)
	}
	cfg := &types.Config{
		Importer: l,
		Sizes:    types.SizesFor("gc", build.Default.GOARCH),
	}
	pkg, err := cfg.Check(path, l.fset, files, l.info)
	if err != nil {
		return nil, nil, fmt.Errorf("typecheck %s: %w", path, err)
	}
	l.pkgs[path] = pkg
	l.files[path] = files
	return pkg, files, nil
}

func isDir(path string) bool {
	st, err := os.Stat(path)
	return err == nil && st.IsDir()
}
