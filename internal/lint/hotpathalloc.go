package lint

import (
	"go/ast"
	"go/types"
	"strconv"
)

// HotPathAlloc guards the zero-alloc event discipline:
//
//  1. In the scheduling hot-path packages (engine, sched), passing a
//     function literal or a bound method value to any sim-package
//     scheduling call allocates a closure per event — the PR 5
//     regression vector that the AtFunc/AfterFunc fast path (package-
//     level callback + payload argument) exists to avoid.
//  2. In the whole deterministic core, importing container/heap is
//     flagged outside HeapAllowedPackages: its interface-typed Push/Pop
//     box every element, which is why both the sim event heap and the
//     sched indexed heap are hand-rolled value heaps.
var HotPathAlloc = &Analyzer{
	Name: "hotpathalloc",
	Doc: "flag closure arguments to sim scheduling calls in engine/sched " +
		"and container/heap imports in the deterministic core",
	Run: runHotPathAlloc,
}

// schedulingFuncs are the sim-package calls that enqueue events. One-time
// registrations (OnBarrier hooks, constructors) are not per-event costs
// and are deliberately not listed.
var schedulingFuncs = map[string]bool{
	"At": true, "After": true, "AtFunc": true, "AfterFunc": true, "Post": true,
}

func runHotPathAlloc(pass *Pass) {
	path := pass.PkgPath()
	if InDeterministicSet(path) && !HeapImportAllowed(path) {
		for _, f := range pass.Files {
			for _, imp := range f.Imports {
				p, err := strconv.Unquote(imp.Path.Value)
				if err != nil || p != "container/heap" {
					continue
				}
				pass.Reportf(imp.Pos(),
					"container/heap boxes every Push/Pop element through interface{}; use a value-based heap like the sim event heap")
			}
		}
	}
	if !InHotPath(path) {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil || !IsSimPackage(fn.Pkg().Path()) || !schedulingFuncs[fn.Name()] {
				return true
			}
			for _, arg := range call.Args {
				switch a := ast.Unparen(arg).(type) {
				case *ast.FuncLit:
					pass.Reportf(a.Pos(),
						"function literal passed to sim.%s allocates a closure per event (PR 5 closure-boxing regression); use a package-level callback with AtFunc/AfterFunc and a payload argument", fn.Name())
				case *ast.SelectorExpr:
					if isMethodValue(pass.TypesInfo, a) {
						pass.Reportf(a.Pos(),
							"bound method value passed to sim.%s allocates a closure per event; use a package-level callback with AtFunc/AfterFunc and the receiver as payload", fn.Name())
					}
				}
			}
			return true
		})
	}
}

// isMethodValue reports whether sel is a method-value expression like
// x.done (which allocates a bound closure), as opposed to a field read
// or a qualified package identifier.
func isMethodValue(info *types.Info, sel *ast.SelectorExpr) bool {
	s, ok := info.Selections[sel]
	return ok && s.Kind() == types.MethodVal
}
