package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

func TestSimDeterminismFixture(t *testing.T) {
	diags := linttest.Run(t, "testdata", lint.SimDeterminism, "simdeterminism/internal/sim")
	if len(diags) == 0 {
		t.Fatal("simdeterminism produced no diagnostics on its true-positive fixture")
	}
}

func TestSimDeterminismChaosFixture(t *testing.T) {
	diags := linttest.Run(t, "testdata", lint.SimDeterminism, "simdeterminism/internal/chaos")
	if len(diags) == 0 {
		t.Fatal("simdeterminism produced no diagnostics on the chaos fixture")
	}
}

func TestSimDeterminismOutOfScope(t *testing.T) {
	diags := linttest.Run(t, "testdata", lint.SimDeterminism, "simdeterminism/internal/server")
	if len(diags) != 0 {
		t.Fatalf("simdeterminism flagged the wall-clock side: %v", diags)
	}
}
