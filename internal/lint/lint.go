// Package lint is prefillvet's analysis framework: a small, stdlib-only
// equivalent of golang.org/x/tools/go/analysis (unavailable offline) that
// statically enforces the repo's core contracts — determinism of the sim
// kernel packages, the zero-alloc hot-path discipline, the ringbuf queue
// discipline, and nil-tolerant observability hooks.
//
// Each Analyzer inspects one type-checked package and reports
// Diagnostics. Findings at a given line are suppressed by a
//
//	//prefill:allow(<analyzer>): <reason>
//
// directive comment on the same line or the line directly above (see
// directive.go). The suite runs three ways: `go vet -vettool=` via the
// unitchecker protocol (unitchecker.go), the standalone cmd/prefillvet
// driver (which re-execs go vet), and in-process fixture tests under
// internal/lint/linttest.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer checks one package for violations of a single invariant.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //prefill:allow(<name>) directives. It must be a valid flag name.
	Name string
	// Doc is a one-paragraph description of the enforced invariant,
	// shown by `prefillvet help` and advertised through -flags.
	Doc string
	// Run inspects the package and reports findings via pass.Reportf.
	Run func(*Pass)
}

// A Diagnostic is one finding, resolved to a concrete file position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
}

// A Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files holds the package's non-test files. Test files are outside
	// every invariant the suite enforces (they may use wall clocks, maps
	// and closures freely), so the framework filters them before any
	// analyzer runs.
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// PkgPath returns the package path under analysis with any build-variant
// suffix (e.g. "repro/internal/sim [repro/internal/sim.test]") removed,
// so scope decisions see the canonical import path.
func (p *Pass) PkgPath() string { return canonicalPath(p.Pkg.Path()) }

func canonicalPath(path string) string {
	if i := strings.Index(path, " ["); i >= 0 {
		return path[:i]
	}
	return path
}

// RunPackage runs every analyzer over one type-checked package and
// returns the surviving findings sorted by position: allow-directive
// suppression has been applied and test files were never analyzed.
func RunPackage(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) []Diagnostic {
	var nonTest []*ast.File
	for _, f := range files {
		name := fset.Position(f.Package).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		nonTest = append(nonTest, f)
	}
	allows := collectAllows(fset, nonTest)

	var out []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     nonTest,
			Pkg:       pkg,
			TypesInfo: info,
		}
		a.Run(pass)
		for _, d := range pass.diags {
			if allows.covers(a.Name, d.Pos.Line) {
				continue
			}
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// NewInfo returns a types.Info populated with every map the analyzers
// read (expression types, identifier uses, and method selections).
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// calleeFunc resolves a call expression to the function or method object
// it invokes, or nil when the callee is not a named function (builtins,
// conversions, calls of function-typed variables).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	default:
		return nil
	}
	fn, _ := obj.(*types.Func)
	return fn
}
