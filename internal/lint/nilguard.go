package lint

import (
	"go/ast"
	"go/token"
)

// NilGuard enforces the nil-tolerant hook contract: observability types
// marked //prefill:niltolerant (trace.Recorder, trace.Instance,
// timeseries.Collector, ...) promise that a nil receiver turns every
// exported method into a branch-and-return, so wiring code passes nil
// to disable the subsystem and the disabled hot path stays 0-alloc and
// panic-free.
//
// Concretely, every exported method on a marked type must either
//   - take a pointer receiver and begin with an `if recv == nil` guard
//     (the condition may widen it: `recv == nil || k >= numKinds`),
//   - be a single-statement wrapper that immediately delegates to
//     another method of the same receiver (`return r.emit(...)`), whose
//     own guard this analyzer checks, or
//   - consist of a lone `return recv == nil` / `return recv != nil`
//     (the result IS the nil check, e.g. Collector.Enabled).
//
// Value receivers are flagged outright: calling one through a nil
// pointer dereferences it before the body can guard anything.
var NilGuard = &Analyzer{
	Name: "nilguard",
	Doc: "exported methods on //prefill:niltolerant types must begin " +
		"with a nil-receiver guard (or delegate to a guarded method)",
	Run: runNilGuard,
}

func runNilGuard(pass *Pass) {
	marked := make(map[string]bool)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if hasNilTolerantMarker(gd.Doc, ts.Doc, ts.Comment) {
					marked[ts.Name.Name] = true
				}
			}
		}
	}
	if len(marked) == 0 {
		return
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || len(fd.Recv.List) != 1 || !fd.Name.IsExported() {
				continue
			}
			recv := fd.Recv.List[0]
			typeName, isPointer := receiverType(recv.Type)
			if !marked[typeName] {
				continue
			}
			if !isPointer {
				pass.Reportf(fd.Pos(),
					"exported method %s.%s on nil-tolerant type has a value receiver: calling it on a nil *%s panics before any guard can run; use a pointer receiver",
					typeName, fd.Name.Name, typeName)
				continue
			}
			if len(recv.Names) == 0 || recv.Names[0].Name == "_" {
				pass.Reportf(fd.Pos(),
					"exported method %s.%s on nil-tolerant type discards its receiver name, so it cannot guard against nil; name the receiver and guard it",
					typeName, fd.Name.Name)
				continue
			}
			recvName := recv.Names[0].Name
			if fd.Body == nil || len(fd.Body.List) == 0 {
				continue
			}
			first := fd.Body.List[0]
			if beginsWithNilGuard(first, recvName) || delegatesToReceiver(first, recvName) || returnsNilComparison(first, recvName) {
				continue
			}
			pass.Reportf(fd.Pos(),
				"exported method %s.%s on nil-tolerant type must begin with `if %s == nil` (the disabled path must be 0-alloc and panic-free)",
				typeName, fd.Name.Name, recvName)
		}
	}
}

// receiverType unwraps a method receiver's type expression to the named
// type's identifier, reporting whether the receiver is a pointer.
func receiverType(e ast.Expr) (name string, pointer bool) {
	if star, ok := e.(*ast.StarExpr); ok {
		e = star.X
		pointer = true
	}
	// Generic receivers look like T[P]; none are marked today, but
	// unwrap anyway so the analyzer doesn't misclassify them.
	if idx, ok := e.(*ast.IndexExpr); ok {
		e = idx.X
	}
	if id, ok := e.(*ast.Ident); ok {
		return id.Name, pointer
	}
	return "", pointer
}

// beginsWithNilGuard reports whether stmt is `if <cond> { ... }` where
// cond contains recv == nil as a top-level || disjunct.
func beginsWithNilGuard(stmt ast.Stmt, recv string) bool {
	ifStmt, ok := stmt.(*ast.IfStmt)
	if !ok || ifStmt.Init != nil {
		return false
	}
	return condHasNilCheck(ifStmt.Cond, recv)
}

func condHasNilCheck(cond ast.Expr, recv string) bool {
	switch e := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		switch e.Op {
		case token.LOR:
			return condHasNilCheck(e.X, recv) || condHasNilCheck(e.Y, recv)
		case token.EQL:
			return isIdentNamed(e.X, recv) && isNilIdent(e.Y) ||
				isIdentNamed(e.Y, recv) && isNilIdent(e.X)
		}
	}
	return false
}

// delegatesToReceiver reports whether stmt is a lone
// `recv.Method(...)` call (optionally returned), i.e. a thin wrapper
// whose nil-safety is exactly its delegate's — which this analyzer
// checks separately.
func delegatesToReceiver(stmt ast.Stmt, recv string) bool {
	var e ast.Expr
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		e = s.X
	case *ast.ReturnStmt:
		if len(s.Results) != 1 {
			return false
		}
		e = s.Results[0]
	default:
		return false
	}
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	return isIdentNamed(sel.X, recv)
}

// returnsNilComparison reports whether stmt is `return recv == nil` or
// `return recv != nil`: the method's whole job is the nil check, so no
// guard is needed.
func returnsNilComparison(stmt ast.Stmt, recv string) bool {
	ret, ok := stmt.(*ast.ReturnStmt)
	if !ok || len(ret.Results) != 1 {
		return false
	}
	cmp, ok := ast.Unparen(ret.Results[0]).(*ast.BinaryExpr)
	if !ok || (cmp.Op != token.EQL && cmp.Op != token.NEQ) {
		return false
	}
	return isIdentNamed(cmp.X, recv) && isNilIdent(cmp.Y) ||
		isIdentNamed(cmp.Y, recv) && isNilIdent(cmp.X)
}

func isIdentNamed(e ast.Expr, name string) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == name
}

func isNilIdent(e ast.Expr) bool { return isIdentNamed(e, "nil") }
