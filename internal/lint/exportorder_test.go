package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

func TestExportOrderFixture(t *testing.T) {
	diags := linttest.Run(t, "testdata", lint.ExportOrder, "exportorder/internal/experiments")
	if len(diags) == 0 {
		t.Fatal("exportorder produced no diagnostics on its true-positive fixture")
	}
}

func TestExportOrderOutOfScope(t *testing.T) {
	diags := linttest.Run(t, "testdata", lint.ExportOrder, "exportorder/internal/server")
	if len(diags) != 0 {
		t.Fatalf("exportorder flagged the HTTP side: %v", diags)
	}
}
