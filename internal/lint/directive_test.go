package lint

import "testing"

func TestParseAllow(t *testing.T) {
	cases := []struct {
		comment string
		want    string
	}{
		{"//prefill:allow(simdeterminism): profiling only", "simdeterminism"},
		{"//prefill:allow(sliceretain): x", "sliceretain"},
		// Malformed directives must never suppress.
		{"//prefill:allow(simdeterminism)", ""},     // no reason
		{"//prefill:allow(simdeterminism):", ""},    // empty reason
		{"//prefill:allow(simdeterminism):   ", ""}, // blank reason
		{"//prefill:allow(): because", ""},          // no analyzer
		{"//prefill:allow simdeterminism: x", ""},   // no parens
		{"// prefill:allow(simdeterminism): x", ""}, // not a directive comment
		{"// ordinary comment", ""},
	}
	for _, c := range cases {
		if got := parseAllow(c.comment); got != c.want {
			t.Errorf("parseAllow(%q) = %q, want %q", c.comment, got, c.want)
		}
	}
}

func TestScopeMatching(t *testing.T) {
	cases := []struct {
		path string
		fn   func(string) bool
		want bool
	}{
		{"repro/internal/sim", InDeterministicSet, true},
		{"repro/internal/sim [repro/internal/sim.test]", InDeterministicSet, true},
		{"fixmod/internal/sched", InDeterministicSet, true},
		{"repro/internal/sim.test", InDeterministicSet, false},
		{"repro/internal/simulator", InDeterministicSet, false},
		{"repro/internal/server", InDeterministicSet, false},
		{"repro/internal/experiments", InDeterministicSet, false},
		{"repro/internal/ringbuf", InRingbuf, true},
		{"repro/internal/ringbuf", InDeterministicSet, false},
		{"repro/internal/engine", InHotPath, true},
		{"repro/internal/sched", InHotPath, true},
		{"repro/internal/router", InHotPath, false},
		{"repro/internal/sim", IsSimPackage, true},
		{"repro/internal/simulator", IsSimPackage, false},
		{"repro/internal/experiments", InExportPath, true},
		{"repro/internal/trace", InExportPath, true},
		{"repro/cmd/prefillbench", InExportPath, true},
		{"cmd/prefillbench", InExportPath, true},
		{"repro/internal/server", InExportPath, false},
		{"repro/internal/sim", HeapImportAllowed, false},
	}
	for _, c := range cases {
		if got := c.fn(c.path); got != c.want {
			t.Errorf("scope(%q) = %v, want %v", c.path, got, c.want)
		}
	}
}
