package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// The repo's lint directives are Go directive comments (no space after
// the slashes):
//
//	//prefill:allow(<analyzer>): <reason>
//	    suppresses <analyzer>'s findings on the directive's own line and
//	    on the line directly below it. The reason is mandatory: an
//	    annotation that cannot say why it is safe is not an annotation.
//
//	//prefill:niltolerant
//	    marks a type declaration as a nil-tolerant observability hook;
//	    the nilguard analyzer then requires every exported pointer
//	    method to begin with a nil-receiver guard.
const (
	allowPrefix       = "prefill:allow("
	nilTolerantMarker = "prefill:niltolerant"
)

// allowIndex maps analyzer name -> set of source lines a directive
// covers.
type allowIndex map[string]map[int]bool

func (ai allowIndex) covers(analyzer string, line int) bool {
	lines := ai[analyzer]
	return lines[line] || lines[line-1]
}

// parseAllow extracts the analyzer name from one comment's text, or ""
// if the comment is not a well-formed allow directive. Malformed
// directives (missing closing paren, missing ": reason") never suppress.
func parseAllow(text string) string {
	body, ok := strings.CutPrefix(text, "//"+allowPrefix)
	if !ok {
		return ""
	}
	name, rest, ok := strings.Cut(body, ")")
	if !ok || name == "" {
		return ""
	}
	reason, ok := strings.CutPrefix(rest, ":")
	if !ok || strings.TrimSpace(reason) == "" {
		return ""
	}
	return name
}

func collectAllows(fset *token.FileSet, files []*ast.File) allowIndex {
	idx := make(allowIndex)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				name := parseAllow(c.Text)
				if name == "" {
					continue
				}
				if idx[name] == nil {
					idx[name] = make(map[int]bool)
				}
				idx[name][fset.Position(c.Pos()).Line] = true
			}
		}
	}
	return idx
}

// hasNilTolerantMarker reports whether any of the given comment groups
// carries the //prefill:niltolerant marker.
func hasNilTolerantMarker(groups ...*ast.CommentGroup) bool {
	for _, cg := range groups {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			rest, ok := strings.CutPrefix(c.Text, "//"+nilTolerantMarker)
			if ok && (rest == "" || rest[0] == ' ' || rest[0] == '\t') {
				return true
			}
		}
	}
	return false
}
