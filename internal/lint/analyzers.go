package lint

// Analyzers is the prefillvet suite in reporting order. cmd/prefillvet
// exposes one boolean flag per entry so individual analyzers can be
// disabled (e.g. `go vet -vettool=prefillvet -nilguard=false ./...`).
var Analyzers = []*Analyzer{
	SliceRetain,
	SimDeterminism,
	NilGuard,
	HotPathAlloc,
	ExportOrder,
}
