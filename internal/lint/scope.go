package lint

import "strings"

// Package-scope policy: which parts of the tree each invariant governs.
// Matching is by the path tail after "internal/" (or "cmd/"), so the
// rules apply identically to the real module ("repro/internal/sim") and
// to linttest fixture modules ("fixmod/internal/sim").

// DeterministicPackages is the deterministic core: every package whose
// execution must be byte-identical across serial, parallel and sharded
// runs. simdeterminism bans wall clocks, global math/rand and map
// iteration here; hotpathalloc bans container/heap here.
//
// internal/server and internal/experiments are deliberately outside the
// set: they are the wall-clock side (HTTP frontend, sweep harness
// timing) and may observe real time freely.
var DeterministicPackages = []string{
	"autoscale", "chaos", "cluster", "engine", "kvcache", "router",
	"sched", "sim", "timeseries", "trace",
}

// HotPathPackages are the packages whose event-scheduling call sites
// must stay on the zero-alloc AtFunc/AfterFunc fast path (the PR 5
// closure-boxing regression vector).
var HotPathPackages = []string{"engine", "sched"}

// ExportPackages are the export/bench paths whose emitted artifacts are
// under byte-identity contracts (sweep JSON, trace export, time-series
// export, metrics text format), plus every command under cmd/.
var ExportPackages = []string{"experiments", "metrics", "timeseries", "trace"}

// HeapAllowedPackages may import container/heap despite the value-heap
// discipline. Empty today: the sim event heap and the sched indexed heap
// are both value-based precisely to avoid interface boxing per
// operation, and no package has earned an exemption back.
var HeapAllowedPackages []string

// hasPathTail reports whether path's tail after prefix is exactly name
// (or name followed by a subdirectory).
func hasPathTail(path, prefix, name string) bool {
	path = canonicalPath(path)
	needle := prefix + name
	i := strings.Index(path, needle)
	for i >= 0 {
		// The match must start at a path-element boundary...
		if i == 0 || path[i-1] == '/' {
			// ...and end at one.
			rest := path[i+len(needle):]
			if rest == "" || rest[0] == '/' {
				return true
			}
		}
		j := strings.Index(path[i+1:], needle)
		if j < 0 {
			return false
		}
		i += 1 + j
	}
	return false
}

// isInternalPkg reports whether path is the package internal/<name> (or
// a subpackage of it) in any module.
func isInternalPkg(path, name string) bool {
	return hasPathTail(path, "internal/", name)
}

func inSet(path string, set []string) bool {
	for _, name := range set {
		if isInternalPkg(path, name) {
			return true
		}
	}
	return false
}

// InDeterministicSet reports whether path belongs to the deterministic
// core.
func InDeterministicSet(path string) bool { return inSet(path, DeterministicPackages) }

// InHotPath reports whether path is a scheduling hot-path package.
func InHotPath(path string) bool { return inSet(path, HotPathPackages) }

// InExportPath reports whether path is an export/bench package or a
// command.
func InExportPath(path string) bool {
	p := canonicalPath(path)
	return inSet(path, ExportPackages) || strings.HasPrefix(p, "cmd/") || strings.Contains(p, "/cmd/")
}

// InRingbuf reports whether path is internal/ringbuf, the one package
// sanctioned to advance a slice over its own backing array.
func InRingbuf(path string) bool { return isInternalPkg(path, "ringbuf") }

// IsSimPackage reports whether path is the sim kernel package itself.
func IsSimPackage(path string) bool { return isInternalPkg(path, "sim") }

// HeapImportAllowed reports whether path may import container/heap.
func HeapImportAllowed(path string) bool { return inSet(path, HeapAllowedPackages) }
