package lint

import (
	"go/ast"
	"go/types"
)

// ExportOrder protects the byte-identity contract on exported artifacts
// (sweep JSON compared across serial/parallel/sharded executors, trace
// and time-series exports, committed BENCH_*.json files): in the
// export/bench packages it flags encoding/json marshaling of raw
// map-typed values.
//
// encoding/json does sort string keys, but the repo's exports are
// diffed byte-for-byte across executors and Go versions, so their row
// order must be explicit in the code — a sorted slice of rows — not
// delegated to a marshaler's conventions. Non-string keys additionally
// round-trip through each type's own text marshaling. Build a sorted
// slice (see timeseries/export.go) instead of handing a map to json.
var ExportOrder = &Analyzer{
	Name: "exportorder",
	Doc: "flag json marshaling of raw map values in export/bench " +
		"paths; emit explicitly sorted rows instead",
	Run: runExportOrder,
}

func runExportOrder(pass *Pass) {
	if !InExportPath(pass.PkgPath()) {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			fn := calleeFunc(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "encoding/json" {
				return true
			}
			switch fn.Name() {
			case "Marshal", "MarshalIndent", "Encode":
			default:
				return true
			}
			arg := call.Args[0]
			tv, ok := pass.TypesInfo.Types[arg]
			if !ok || tv.Type == nil {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
				pass.Reportf(arg.Pos(),
					"json.%s of raw map %s leaves row order to the marshaler; byte-identity contracts require an explicitly sorted slice of rows",
					fn.Name(), types.ExprString(arg))
			}
			return true
		})
	}
}
