package lint

import (
	"go/ast"
	"go/types"
)

// SimDeterminism enforces the byte-identity contract inside the
// deterministic core (DeterministicPackages): serial, parallel-cell and
// sharded-kernel runs of the same seed must produce identical output, so
// nothing in those packages may read wall clocks, draw from the
// process-global math/rand source, or iterate a map in hash order.
//
// Justified exceptions — e.g. the sharded kernel's barrier-stall
// profiling, which observes wall time but never feeds it back into event
// order — carry a //prefill:allow(simdeterminism): <reason> annotation.
var SimDeterminism = &Analyzer{
	Name: "simdeterminism",
	Doc: "flag time.Now/Since/Until, global math/rand, and map iteration " +
		"in the deterministic sim packages",
	Run: runSimDeterminism,
}

// wallClockFuncs are the time-package functions that read the wall
// clock. Constructors like NewTimer are irrelevant here: the sim has no
// goroutine timers, and any wall reading routes through these three.
var wallClockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// seededRandFuncs are the math/rand package-level functions that do NOT
// touch the global source: they build or parameterize an explicitly
// seeded generator, which is the sanctioned pattern.
var seededRandFuncs = map[string]bool{"New": true, "NewSource": true, "NewZipf": true}

func runSimDeterminism(pass *Pass) {
	if !InDeterministicSet(pass.PkgPath()) {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				fn := calleeFunc(pass.TypesInfo, n)
				if fn == nil || fn.Pkg() == nil {
					return true
				}
				sig, _ := fn.Type().(*types.Signature)
				pkgLevel := sig != nil && sig.Recv() == nil
				switch fn.Pkg().Path() {
				case "time":
					if pkgLevel && wallClockFuncs[fn.Name()] {
						pass.Reportf(n.Pos(),
							"time.%s reads the wall clock inside the deterministic sim core; derive times from the sim clock", fn.Name())
					}
				case "math/rand", "math/rand/v2":
					if pkgLevel && !seededRandFuncs[fn.Name()] {
						pass.Reportf(n.Pos(),
							"rand.%s draws from the process-global source; use rand.New(rand.NewSource(seed)) so runs replay byte-identically", fn.Name())
					}
				}
			case *ast.RangeStmt:
				tv, ok := pass.TypesInfo.Types[n.X]
				if !ok || tv.Type == nil {
					return true
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					pass.Reportf(n.Pos(),
						"range over map %s iterates in randomized hash order inside the deterministic sim core; iterate sorted keys, or annotate if provably order-insensitive",
						types.ExprString(n.X))
				}
			}
			return true
		})
	}
}
