package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

func TestSliceRetainFixture(t *testing.T) {
	diags := linttest.Run(t, "testdata", lint.SliceRetain, "sliceretain/a")
	if len(diags) == 0 {
		t.Fatal("sliceretain produced no diagnostics on its true-positive fixture")
	}
}

func TestSliceRetainRingbufExempt(t *testing.T) {
	diags := linttest.Run(t, "testdata", lint.SliceRetain, "sliceretain/internal/ringbuf")
	if len(diags) != 0 {
		t.Fatalf("sliceretain flagged the sanctioned ringbuf package: %v", diags)
	}
}
