package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

func TestNilGuardFixture(t *testing.T) {
	diags := linttest.Run(t, "testdata", lint.NilGuard, "nilguard/a")
	if len(diags) == 0 {
		t.Fatal("nilguard produced no diagnostics on its true-positive fixture")
	}
}
