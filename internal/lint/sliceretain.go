package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// SliceRetain flags self-reslice retention: an assignment that advances
// a slice over its own backing array, `q = q[1:]` and friends. The
// popped prefix stays reachable through the backing array for the
// queue's whole lifetime — the PR 4 defect class, found live in four
// queues (sched FIFO, cluster user-eviction order, PP stage handoff,
// host-tier eviction). internal/ringbuf.Ring is the one sanctioned
// pattern (bounded by peak depth, shrinks on drain, zeroes vacated
// slots), so that package is exempt.
var SliceRetain = &Analyzer{
	Name: "sliceretain",
	Doc: "flag q = q[1:] self-reslices that retain the backing array; " +
		"use internal/ringbuf.Ring for FIFO queues",
	Run: runSliceRetain,
}

func runSliceRetain(pass *Pass) {
	if InRingbuf(pass.PkgPath()) {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			assign, ok := n.(*ast.AssignStmt)
			if !ok || len(assign.Lhs) != len(assign.Rhs) {
				return true
			}
			for i, rhs := range assign.Rhs {
				slice, ok := ast.Unparen(rhs).(*ast.SliceExpr)
				if !ok || slice.Low == nil || isZeroConst(pass.TypesInfo, slice.Low) {
					continue
				}
				lhs := assign.Lhs[i]
				if types.ExprString(lhs) != types.ExprString(slice.X) {
					continue
				}
				if !isSliceType(pass.TypesInfo, lhs) {
					continue // strings and arrays don't pin popped elements
				}
				pass.Reportf(assign.Pos(),
					"%s = %s advances the slice over its own backing array, retaining every popped element (PR 4 defect class); use internal/ringbuf.Ring",
					types.ExprString(lhs), types.ExprString(rhs))
			}
			return true
		})
	}
}

func isZeroConst(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	v, ok := constant.Int64Val(constant.ToInt(tv.Value))
	return ok && v == 0
}

func isSliceType(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, isSlice := tv.Type.Underlying().(*types.Slice)
	return isSlice
}
