package lint_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestVetToolEndToEnd exercises the full go vet driver protocol: it
// builds cmd/prefillvet, assembles a scratch module with one
// deterministic-core package, and checks that `go vet -vettool=`
// reports the violations, that //prefill:allow annotations suppress
// them, and that a clean package passes.
func TestVetToolEndToEnd(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go tool not available")
	}
	repoRoot, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	tmp := t.TempDir()
	tool := filepath.Join(tmp, "prefillvet")

	build := exec.Command("go", "build", "-o", tool, "./cmd/prefillvet")
	build.Dir = repoRoot
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building prefillvet: %v\n%s", err, out)
	}

	mod := filepath.Join(tmp, "scratch")
	write := func(rel, content string) {
		t.Helper()
		path := filepath.Join(mod, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module scratch\n\ngo 1.22\n")
	write("internal/sim/sim.go", `package sim

import "time"

func bad(q []int) ([]int, time.Time) {
	q = q[1:]
	return q, time.Now()
}

func allowed() time.Time {
	//prefill:allow(simdeterminism): scratch-module profiling site for the vettool test
	return time.Now()
}
`)

	vet := func(args ...string) (string, error) {
		cmd := exec.Command("go", append([]string{"vet", "-vettool=" + tool}, args...)...)
		cmd.Dir = mod
		out, err := cmd.CombinedOutput()
		return string(out), err
	}

	out, err := vet("./...")
	if err == nil {
		t.Fatalf("go vet succeeded on a package with violations; output:\n%s", out)
	}
	for _, wantFrag := range []string{
		"sliceretain", "advances the slice over its own backing array",
		"simdeterminism", "reads the wall clock",
	} {
		if !strings.Contains(out, wantFrag) {
			t.Errorf("vet output missing %q; got:\n%s", wantFrag, out)
		}
	}
	if n := strings.Count(out, "reads the wall clock"); n != 1 {
		t.Errorf("want exactly 1 wall-clock finding (the other is annotated), got %d:\n%s", n, out)
	}

	// Disabling the two firing analyzers must make the same tree pass.
	if out, err := vet("-sliceretain=false", "-simdeterminism=false", "./..."); err != nil {
		t.Fatalf("go vet with analyzers disabled failed: %v\n%s", err, out)
	}

	// A fixed tree passes outright.
	write("internal/sim/sim.go", `package sim

func good(q []int) []int {
	return append(q[:0], q...)
}
`)
	if out, err := vet("./..."); err != nil {
		t.Fatalf("go vet failed on a clean package: %v\n%s", err, out)
	}
}
