// Package sim exercises simdeterminism inside the deterministic set:
// wall clocks, the global math/rand source and map iteration are
// flagged; seeded generators, annotated sites and slice iteration are
// not.
package sim

import (
	"math/rand"
	"sort"
	"time"
)

func wallClock() (time.Time, time.Duration) {
	now := time.Now()        // want "reads the wall clock"
	since := time.Since(now) // want "reads the wall clock"
	_ = time.Until(now)      // want "reads the wall clock"
	_ = time.Unix(0, 0)      // pure conversion: fine
	_ = time.Duration(3) * time.Second
	return now, since
}

func allowedWallClock() time.Duration {
	//prefill:allow(simdeterminism): profiling only, never feeds back into event order
	start := time.Now()
	//prefill:allow(simdeterminism): profiling only, never feeds back into event order
	return time.Since(start)
}

func globalRand() int {
	n := rand.Intn(6)                  // want "process-global source"
	rand.Shuffle(n, func(i, j int) {}) // want "process-global source"
	return n
}

func seededRand(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed)) // sanctioned: explicit seed
	return rng.Float64()
}

func mapIteration(m map[string]int) int {
	total := 0
	for _, v := range m { // want "randomized hash order"
		total += v
	}
	keys := make([]string, 0, len(m))
	//prefill:allow(simdeterminism): key collection feeds the sort below, order-insensitive
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys { // slice iteration: deterministic
		total += m[k]
	}
	return total
}
