// Package server stands in for the wall-clock side of the repo
// (internal/server, internal/experiments): outside the deterministic
// set, so nothing here is flagged.
package server

import (
	"math/rand"
	"time"
)

func wallSide(m map[string]int) time.Time {
	for range m { // out of scope
		_ = rand.Int() // out of scope
	}
	return time.Now() // out of scope
}
