// Package chaos exercises simdeterminism over the fault injector's
// package path: chaos is in the deterministic set (a fault schedule
// must replay byte-identically from its seed), so wall clocks, the
// global math/rand source and map iteration are flagged; the injector's
// sanctioned seeded-substream pattern is not.
package chaos

import (
	"math/rand"
	"time"
)

func victimFromGlobal(candidates []int) int {
	return candidates[rand.Intn(len(candidates))] // want "process-global source"
}

func faultTimeFromWall() time.Time {
	return time.Now() // want "reads the wall clock"
}

func victimFromSeeded(seed int64, candidates []int) int {
	// Sanctioned: a dedicated generator seeded from the config.
	rng := rand.New(rand.NewSource(seed + 16))
	return candidates[rng.Intn(len(candidates))]
}

func orphansByID(orphans map[int64]string) int {
	n := 0
	for range orphans { // want "randomized hash order"
		n++
	}
	return n
}
