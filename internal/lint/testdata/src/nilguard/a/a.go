// Package a exercises nilguard: exported methods on marked types must
// begin with a nil-receiver guard or delegate to a guarded sibling.
package a

// Recorder is a nil-tolerant observability hook.
//
//prefill:niltolerant
type Recorder struct {
	n int
}

// Unmarked has no marker, so its methods are unconstrained.
type Unmarked struct{}

func (r *Recorder) Emit(v int) { // guarded: ok
	if r == nil {
		return
	}
	r.n += v
}

func (r *Recorder) EmitKind(v, kinds int) { // widened guard: ok
	if r == nil || v >= kinds {
		return
	}
	r.n += v
}

func (r *Recorder) Submit(v int) { // single-statement delegation: ok
	r.Emit(v)
}

func (r *Recorder) Count() int { // delegating return: ok
	return r.lockedCount()
}

func (r *Recorder) Enabled() bool { // the result IS the nil check: ok
	return r != nil
}

func (r *Recorder) lockedCount() int { // unexported: unconstrained
	return r.n
}

func (r *Recorder) Flush() { // want "must begin with `if r == nil`"
	r.n = 0
}

func (r *Recorder) Drop(v int) { // want "must begin with `if r == nil`"
	if v < 0 {
		return
	}
	r.n -= v
}

func (r Recorder) Snapshot() int { // want "value receiver"
	return r.n
}

func (_ *Recorder) Reset() { // want "discards its receiver name"
}

//prefill:allow(nilguard): invariant checked by caller, hook never reachable when nil
func (r *Recorder) Unsafe() int {
	return r.n
}

func (u *Unmarked) Anything() int { // unmarked type: unconstrained
	return 1
}
