// Package engine exercises hotpathalloc inside a scheduling hot-path
// package: closures and method values handed to sim scheduling calls
// are flagged, the AtFunc fast path and annotated one-shot sites are
// not, and the container/heap import is flagged in the deterministic
// set.
package engine

import (
	"container/heap" // want "boxes every Push/Pop element"

	"hotpathalloc/internal/sim"
)

var _ = heap.Init

type tensorParallel struct {
	clock sim.Clock
	cur   int
}

// tpDone is the sanctioned shape: a package-level callback with the
// engine itself as payload.
func tpDone(arg any) { arg.(*tensorParallel).cur = 0 }

func (t *tensorParallel) finish(arg any) { t.cur = 0 }

func (t *tensorParallel) schedule(dur float64) {
	t.clock.AfterFunc(dur, tpDone, t) // fast path: ok

	t.clock.After(dur, func() { t.cur = 0 }) // want "function literal passed to sim.After"

	t.clock.AfterFunc(dur, t.finish, nil) // want "bound method value passed to sim.AfterFunc"

	//prefill:allow(hotpathalloc): one-shot arrival injection at setup, not a steady-state event
	t.clock.At(0, func() { t.cur = 1 })
}

func (t *tensorParallel) register(s *sim.Sim) {
	s.OnBarrier(t.finish0) // one-time registration, not a scheduling call: ok
}

func (t *tensorParallel) finish0() { t.cur = 0 }
