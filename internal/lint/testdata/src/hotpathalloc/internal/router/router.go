// Package router shows hotpathalloc's closure rule scoped to the
// scheduling hot path: the router is in the deterministic set but not
// in engine/sched, so a coordinator-side closure is not its business.
package router

import "hotpathalloc/internal/sim"

func arm(c sim.Clock) {
	c.At(0, func() {}) // outside engine/sched: ok
}
