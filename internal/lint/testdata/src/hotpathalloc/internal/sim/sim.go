// Package sim is a stub of the real sim kernel: just enough surface
// (Clock, the Func fast path) for the hotpathalloc fixtures to
// type-check against a package whose path ends in internal/sim.
package sim

// Func is the zero-alloc fast-path callback type.
type Func func(arg any)

// Clock mirrors the real sim.Clock scheduling surface.
type Clock interface {
	Now() float64
	At(t float64, fn func())
	After(d float64, fn func())
	AtFunc(t float64, fn Func, arg any)
	AfterFunc(d float64, fn Func, arg any)
}

// Sim is a trivial Clock implementation.
type Sim struct{ now float64 }

func (s *Sim) Now() float64                          { return s.now }
func (s *Sim) At(t float64, fn func())               {}
func (s *Sim) After(d float64, fn func())            {}
func (s *Sim) AtFunc(t float64, fn Func, arg any)    {}
func (s *Sim) AfterFunc(d float64, fn Func, arg any) {}

// OnBarrier is a one-time hook registration, not an event schedule.
func (s *Sim) OnBarrier(fn func()) {}
