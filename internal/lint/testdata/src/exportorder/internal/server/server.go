// Package server shows exportorder's scope: the HTTP side is not an
// export/bench path, so marshaling a map is not flagged here.
package server

import "encoding/json"

func respond(m map[string]int) ([]byte, error) {
	return json.Marshal(m) // out of scope: ok
}
