// Package experiments exercises exportorder inside an export/bench
// path: handing a raw map to encoding/json is flagged; structs, sorted
// row slices and annotated sites are not.
package experiments

import (
	"encoding/json"
	"io"
	"sort"
)

type row struct {
	Name  string
	Count int
}

func exportMap(counts map[string]int) ([]byte, error) {
	return json.Marshal(counts) // want "raw map"
}

func exportIndented(counts map[string]int) ([]byte, error) {
	return json.MarshalIndent(counts, "", "  ") // want "raw map"
}

func exportStream(w io.Writer, counts map[string]int) error {
	return json.NewEncoder(w).Encode(counts) // want "raw map"
}

func exportRows(counts map[string]int) ([]byte, error) {
	rows := make([]row, 0, len(counts))
	for name, n := range counts {
		rows = append(rows, row{Name: name, Count: n})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Name < rows[j].Name })
	return json.Marshal(rows) // sorted rows: ok
}

func exportAllowed(counts map[string]int) ([]byte, error) {
	//prefill:allow(exportorder): debug dump, never diffed byte-for-byte
	return json.Marshal(counts)
}
