// Package ringbuf stands in for the real internal/ringbuf: the one
// package sanctioned to advance slices over their own backing arrays,
// so nothing here is flagged.
package ringbuf

func drain(q []int) []int {
	q = q[1:] // exempt: this package IS the sanctioned queue pattern
	return q
}
