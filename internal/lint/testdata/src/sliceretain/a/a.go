// Package a exercises the sliceretain analyzer: self-reslices that
// advance a queue over its own backing array are flagged; truncations,
// fresh-variable reslices, annotated sites and strings are not.
package a

type queues struct {
	q []int
}

func popFront(q []int) []int {
	q = q[1:] // want "advances the slice over its own backing array"
	return q
}

func popN(q []int, n int) []int {
	q = q[n:] // want "advances the slice over its own backing array"
	return q
}

func (s *queues) popField() {
	s.q = s.q[1:] // want "advances the slice over its own backing array"
}

func popBoth(q []int) []int {
	q = q[1:len(q):len(q)] // want "advances the slice over its own backing array"
	return q
}

func allowed(q []int) []int {
	//prefill:allow(sliceretain): bounded test helper, backing array dies with the call
	q = q[1:]
	return q
}

func clean(q []int) ([]int, []int) {
	head := q[1:]  // new variable: no self-retention
	q = q[:0]      // truncation from the front keeps index 0
	q = q[0:]      // zero low bound is a no-op
	other := q[2:] // distinct lhs
	return head, other
}

func cleanString(s string) string {
	s = s[1:] // strings don't pin popped elements the way queue structs do
	return s
}
