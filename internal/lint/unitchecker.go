package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
)

// The go vet driver protocol (the same one x/tools' unitchecker speaks,
// reimplemented here on the stdlib): `go vet -vettool=prefillvet` builds
// every package and its dependencies, then invokes the tool once per
// package with a JSON config file describing the compiled unit —
// source files, the import map, and the compiler-produced export-data
// files for every dependency. The tool type-checks the unit against
// that export data, runs its analyzers, prints findings to stderr, and
// exits 1 if it found anything.

// VetConfig mirrors cmd/go's vetConfig (cmd/go/internal/work/exec.go).
type VetConfig struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string

	ModulePath    string
	ModuleVersion string
	ImportMap     map[string]string
	PackageFile   map[string]string
	Standard      map[string]bool
	PackageVetx   map[string]string
	VetxOnly      bool
	VetxOutput    string
	GoVersion     string

	SucceedOnTypecheckFailure bool
}

// RunVet executes the suite over one vet config file and returns the
// process exit code: 0 clean, 1 findings, 2 internal error. Diagnostics
// go to stderr in the standard file:line:col form, errors to errw.
func RunVet(cfgPath string, analyzers []*Analyzer, errw io.Writer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(errw, "prefillvet: reading config: %v\n", err)
		return 2
	}
	var cfg VetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(errw, "prefillvet: parsing config %s: %v\n", cfgPath, err)
		return 2
	}

	// cmd/go caches and feeds back this output as the unit's "vetx"
	// facts file. The suite is fact-free, so an empty marker suffices,
	// but the file must exist for the result to be cacheable.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("prefillvet: no facts\n"), 0o666); err != nil {
			fmt.Fprintf(errw, "prefillvet: writing vetx output: %v\n", err)
			return 2
		}
	}
	// Dependencies (the whole stdlib included) are visited only so a
	// fact-propagating tool could see them. Skip without even parsing.
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintf(errw, "prefillvet: %v\n", err)
			return 2
		}
		files = append(files, f)
	}

	// Resolve imports through the compiler's export data, exactly as
	// cmd/vet does: source import path -> canonical package path via
	// ImportMap, canonical path -> export-data file via PackageFile.
	compImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	tcfg := &types.Config{
		Importer: importerFunc(func(importPath string) (*types.Package, error) {
			path, ok := cfg.ImportMap[importPath]
			if !ok {
				return nil, fmt.Errorf("can't resolve import %q", importPath)
			}
			return compImporter.Import(path)
		}),
		Sizes:     types.SizesFor(cfg.Compiler, build.Default.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	info := NewInfo()
	pkg, err := tcfg.Check(canonicalPath(cfg.ImportPath), fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(errw, "prefillvet: typecheck %s: %v\n", cfg.ImportPath, err)
		return 2
	}

	diags := RunPackage(fset, files, pkg, info, analyzers)
	for _, d := range diags {
		fmt.Fprintf(errw, "%s\n", d)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
