// Package metrics provides the statistics the paper's evaluation reports:
// means, percentiles, CDFs, windowed throughput, and the Pearson
// correlation used to validate the JCT proxy (§6.3).
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds order statistics of a sample.
type Summary struct {
	Count  int
	Mean   float64
	Min    float64
	Max    float64
	P50    float64
	P90    float64
	P99    float64
	StdDev float64
}

// Summarize computes a Summary of xs. An empty sample yields a zero
// Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	var sum, sumSq float64
	for _, x := range s {
		sum += x
		sumSq += x * x
	}
	n := float64(len(s))
	mean := sum / n
	variance := sumSq/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	return Summary{
		Count:  len(s),
		Mean:   mean,
		Min:    s[0],
		Max:    s[len(s)-1],
		P50:    Percentile(s, 0.50),
		P90:    Percentile(s, 0.90),
		P99:    Percentile(s, 0.99),
		StdDev: math.Sqrt(variance),
	}
}

// Percentile returns the p-quantile (0 <= p <= 1) of a sorted sample using
// linear interpolation between order statistics.
func Percentile(sorted []float64, p float64) float64 {
	n := len(sorted)
	switch {
	case n == 0:
		return 0
	case n == 1:
		return sorted[0]
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[n-1]
	}
	pos := p * float64(n-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= n {
		return sorted[n-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// CDFPoint is one point of an empirical CDF.
type CDFPoint struct {
	Value    float64
	Fraction float64
}

// CDF returns the empirical CDF of xs with at most maxPoints points
// (uniformly subsampled), suitable for plotting Figure 11.
func CDF(xs []float64, maxPoints int) []CDFPoint {
	if len(xs) == 0 {
		return nil
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if maxPoints <= 0 || maxPoints > len(s) {
		maxPoints = len(s)
	}
	out := make([]CDFPoint, 0, maxPoints)
	for i := 0; i < maxPoints; i++ {
		idx := i * (len(s) - 1) / max(maxPoints-1, 1)
		out = append(out, CDFPoint{Value: s[idx], Fraction: float64(idx+1) / float64(len(s))})
	}
	return out
}

// Pearson returns the Pearson correlation coefficient of paired samples.
func Pearson(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("metrics: length mismatch %d vs %d", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return 0, fmt.Errorf("metrics: need at least 2 points, got %d", len(xs))
	}
	n := float64(len(xs))
	var sx, sy, sxx, syy, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		syy += ys[i] * ys[i]
		sxy += xs[i] * ys[i]
	}
	cov := sxy/n - sx/n*sy/n
	vx := sxx/n - sx/n*sx/n
	vy := syy/n - sy/n*sy/n
	if vx <= 0 || vy <= 0 {
		return 0, fmt.Errorf("metrics: degenerate variance")
	}
	return cov / math.Sqrt(vx*vy), nil
}

// LinearFit fits y = intercept + sum_i coef[i]*x[i] by ordinary least
// squares over rows of features (normal equations with Gaussian
// elimination; the JCT profile has two features, so conditioning is not a
// concern).
func LinearFit(features [][]float64, ys []float64) (intercept float64, coefs []float64, err error) {
	if len(features) != len(ys) {
		return 0, nil, fmt.Errorf("metrics: %d feature rows vs %d targets", len(features), len(ys))
	}
	if len(features) == 0 {
		return 0, nil, fmt.Errorf("metrics: empty fit")
	}
	k := len(features[0]) + 1 // +1 for intercept column
	if len(features) < k {
		return 0, nil, fmt.Errorf("metrics: need >= %d rows, got %d", k, len(features))
	}
	// Build normal equations A^T A w = A^T y.
	ata := make([][]float64, k)
	for i := range ata {
		ata[i] = make([]float64, k)
	}
	aty := make([]float64, k)
	row := make([]float64, k)
	for r, f := range features {
		if len(f) != k-1 {
			return 0, nil, fmt.Errorf("metrics: row %d has %d features, want %d", r, len(f), k-1)
		}
		row[0] = 1
		copy(row[1:], f)
		for i := 0; i < k; i++ {
			for j := 0; j < k; j++ {
				ata[i][j] += row[i] * row[j]
			}
			aty[i] += row[i] * ys[r]
		}
	}
	w, err := solve(ata, aty)
	if err != nil {
		return 0, nil, err
	}
	return w[0], w[1:], nil
}

// solve performs Gaussian elimination with partial pivoting on a small
// dense system.
func solve(a [][]float64, b []float64) ([]float64, error) {
	n := len(b)
	// Work on copies.
	m := make([][]float64, n)
	for i := range m {
		m[i] = append(append([]float64(nil), a[i]...), b[i])
	}
	for col := 0; col < n; col++ {
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(m[pivot][col]) < 1e-12 {
			return nil, fmt.Errorf("metrics: singular system")
		}
		m[col], m[pivot] = m[pivot], m[col]
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := m[r][col] / m[col][col]
			for c := col; c <= n; c++ {
				m[r][c] -= f * m[col][c]
			}
		}
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = m[i][n] / m[i][i]
	}
	return out, nil
}
