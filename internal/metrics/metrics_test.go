package metrics

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestSummarizeBasics(t *testing.T) {
	xs := []float64{4, 1, 3, 2, 5}
	s := Summarize(xs)
	if s.Count != 5 || s.Min != 1 || s.Max != 5 || s.Mean != 3 || s.P50 != 3 {
		t.Fatalf("summary = %+v", s)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s.Count != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestPercentileInterpolation(t *testing.T) {
	s := []float64{0, 10}
	if got := Percentile(s, 0.5); got != 5 {
		t.Fatalf("p50 of {0,10} = %v, want 5", got)
	}
	if got := Percentile(s, 0); got != 0 {
		t.Fatalf("p0 = %v", got)
	}
	if got := Percentile(s, 1); got != 10 {
		t.Fatalf("p100 = %v", got)
	}
}

func TestP99DominatesMean(t *testing.T) {
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = float64(i)
	}
	s := Summarize(xs)
	if s.P99 <= s.Mean {
		t.Fatalf("p99 %v <= mean %v", s.P99, s.Mean)
	}
}

func TestCDFMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	cdf := CDF(xs, 50)
	if len(cdf) != 50 {
		t.Fatalf("cdf points = %d", len(cdf))
	}
	for i := 1; i < len(cdf); i++ {
		if cdf[i].Value < cdf[i-1].Value || cdf[i].Fraction < cdf[i-1].Fraction {
			t.Fatalf("cdf not monotone at %d", i)
		}
	}
	if cdf[len(cdf)-1].Fraction != 1 {
		t.Fatalf("cdf does not reach 1: %v", cdf[len(cdf)-1])
	}
}

func TestPearsonPerfectCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{3, 5, 7, 9, 11}
	r, err := Pearson(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-1) > 1e-12 {
		t.Fatalf("r = %v, want 1", r)
	}
	neg := []float64{11, 9, 7, 5, 3}
	r, _ = Pearson(xs, neg)
	if math.Abs(r+1) > 1e-12 {
		t.Fatalf("r = %v, want -1", r)
	}
}

func TestPearsonErrors(t *testing.T) {
	if _, err := Pearson([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Pearson([]float64{1}, []float64{1}); err == nil {
		t.Error("single point accepted")
	}
	if _, err := Pearson([]float64{1, 1}, []float64{1, 2}); err == nil {
		t.Error("zero variance accepted")
	}
}

func TestLinearFitRecoversCoefficients(t *testing.T) {
	// y = 2 + 3*x0 - 0.5*x1
	rng := rand.New(rand.NewSource(2))
	var features [][]float64
	var ys []float64
	for i := 0; i < 200; i++ {
		x0 := rng.Float64() * 100
		x1 := rng.Float64() * 10
		features = append(features, []float64{x0, x1})
		ys = append(ys, 2+3*x0-0.5*x1)
	}
	icpt, coefs, err := LinearFit(features, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(icpt-2) > 1e-6 || math.Abs(coefs[0]-3) > 1e-8 || math.Abs(coefs[1]+0.5) > 1e-8 {
		t.Fatalf("fit = %v + %v", icpt, coefs)
	}
}

func TestLinearFitErrors(t *testing.T) {
	if _, _, err := LinearFit(nil, nil); err == nil {
		t.Error("empty fit accepted")
	}
	if _, _, err := LinearFit([][]float64{{1, 2}}, []float64{1}); err == nil {
		t.Error("underdetermined fit accepted")
	}
	// Singular: duplicate feature column.
	feats := [][]float64{{1, 1}, {2, 2}, {3, 3}, {4, 4}}
	if _, _, err := LinearFit(feats, []float64{1, 2, 3, 4}); err == nil {
		t.Error("singular system accepted")
	}
}

// Property: percentiles are monotone in p and bounded by min/max.
func TestPercentileProperties(t *testing.T) {
	f := func(raw []float64, p1, p2 float64) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		sort.Float64s(xs)
		q1 := math.Mod(math.Abs(p1), 1)
		q2 := math.Mod(math.Abs(p2), 1)
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		v1 := Percentile(xs, q1)
		v2 := Percentile(xs, q2)
		return v1 <= v2 && v1 >= xs[0] && v2 <= xs[len(xs)-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
