package metrics

import (
	"math"
	"testing"
)

// TestHistogramQuantile pins the Prometheus-style estimator the
// time-series collector serves: linear interpolation inside the target
// bucket, the lowest bucket interpolating from 0, and values past the
// last finite bound clamping to it.
func TestHistogramQuantile(t *testing.T) {
	if got := (HistogramSnapshot{}).Quantile(0.5); got != 0 {
		t.Fatalf("empty snapshot quantile = %g, want 0", got)
	}

	h := NewHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1.5, 1.5, 3} {
		h.Observe(v)
	}
	s := h.Snapshot()
	// Counts: (0,1]=1, (1,2]=2, (2,4]=1. rank(p) = 4p.
	cases := []struct{ p, want float64 }{
		{0.25, 1},         // rank 1 ends bucket 1: 0 + 1*(1/1)
		{0.5, 1.5},        // rank 2, 1 below bucket 2: 1 + 1*(1/2)
		{0.75, 2},         // rank 3 ends bucket 2
		{1.0, 4},          // rank 4 ends the last bucket
		{0.125, 0.5},      // rank 0.5, halfway into the lowest bucket from 0
		{-1, 0},           // p clamps low; rank 0 interpolates to the bucket floor
		{2, 4},            // p clamps high
		{0.8125, 2 + 0.5}, // rank 3.25, quarter into (2,4]
	}
	for _, c := range cases {
		if got := s.Quantile(c.p); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("Quantile(%g) = %g, want %g", c.p, got, c.want)
		}
	}

	// Observations past every finite bound land in the implicit +Inf
	// bucket; quantiles that fall there clamp to the last finite bound.
	h2 := NewHistogram([]float64{1, 2})
	h2.Observe(0.5)
	h2.Observe(100)
	if got := h2.Snapshot().Quantile(0.99); got != 2 {
		t.Fatalf("overflow quantile = %g, want clamp to 2", got)
	}

	// The containment guarantee the windowed property test relies on: the
	// estimate lands in the bucket holding the nearest-rank observation.
	h3 := NewHistogram(DefLatencyBuckets)
	obs := []float64{0.02, 0.03, 0.2, 0.3, 0.7, 3, 3, 8, 40, 90}
	for _, v := range obs {
		h3.Observe(v)
	}
	s3 := h3.Snapshot()
	for _, p := range []float64{0.1, 0.5, 0.9, 0.99} {
		rank := int(math.Ceil(p*float64(len(obs)))) - 1
		exact := obs[rank]
		lo, hi := 0.0, DefLatencyBuckets[len(DefLatencyBuckets)-1]
		for _, b := range DefLatencyBuckets {
			if exact <= b {
				hi = b
				break
			}
			lo = b
		}
		if got := s3.Quantile(p); got < lo || got > hi {
			t.Fatalf("Quantile(%g) = %g escapes bucket [%g, %g] of exact %g", p, got, lo, hi, exact)
		}
	}
}
