package metrics

import (
	"sync"
	"testing"
)

func TestAdmissionCounters(t *testing.T) {
	var a Admission
	if c := a.Policy("affinity"); c.Accepted != 0 || c.Rejected != 0 {
		t.Fatalf("zero-value tally %+v", c)
	}
	if rate := a.Policy("affinity").AcceptRate(); rate != 1 {
		t.Fatalf("empty accept rate = %v, want 1", rate)
	}
	for i := 0; i < 3; i++ {
		a.Accept("affinity")
	}
	a.Reject("affinity")
	a.Accept("userhash")
	c := a.Policy("affinity")
	if c.Accepted != 3 || c.Rejected != 1 || c.Total() != 4 {
		t.Fatalf("affinity tally %+v", c)
	}
	if rate := c.AcceptRate(); rate != 0.75 {
		t.Fatalf("accept rate = %v, want 0.75", rate)
	}
	snap := a.Snapshot()
	if len(snap) != 2 || snap["userhash"].Accepted != 1 {
		t.Fatalf("snapshot %+v", snap)
	}
	// Snapshot is a copy.
	snap["userhash"] = AdmissionCount{Accepted: 99}
	if a.Policy("userhash").Accepted != 1 {
		t.Fatal("snapshot aliases internal state")
	}
}

// Per-class tallies stratify the per-policy aggregate: class counts sum
// to the policy total, and classless records land under ClassUnlabeled.
func TestAdmissionPerClass(t *testing.T) {
	var a Admission
	a.AcceptClass("affinity", "interactive")
	a.AcceptClass("affinity", "interactive")
	a.AcceptClass("affinity", "batch")
	a.RejectClass("affinity", "batch")
	a.Accept("affinity") // classless → unlabeled
	if c := a.Class("affinity", "interactive"); c.Accepted != 2 || c.Rejected != 0 {
		t.Fatalf("interactive tally %+v", c)
	}
	if c := a.Class("affinity", "batch"); c.Accepted != 1 || c.Rejected != 1 {
		t.Fatalf("batch tally %+v", c)
	}
	if c := a.Class("affinity", ClassUnlabeled); c.Accepted != 1 {
		t.Fatalf("unlabeled tally %+v", c)
	}
	if agg := a.Policy("affinity"); agg.Accepted != 4 || agg.Rejected != 1 {
		t.Fatalf("aggregate %+v does not sum the classes", agg)
	}
	snap := a.ClassSnapshot()
	if snap["affinity"]["batch"].Rejected != 1 {
		t.Fatalf("class snapshot %+v", snap)
	}
	snap["affinity"]["batch"] = AdmissionCount{Rejected: 99}
	if a.Class("affinity", "batch").Rejected != 1 {
		t.Fatal("class snapshot aliases internal state")
	}
}

func TestAdmissionConcurrent(t *testing.T) {
	var a Admission
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				a.Accept("p")
				a.Reject("p")
			}
		}()
	}
	wg.Wait()
	c := a.Policy("p")
	if c.Accepted != 8000 || c.Rejected != 8000 {
		t.Fatalf("concurrent tally %+v", c)
	}
}
