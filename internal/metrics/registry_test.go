package metrics

import (
	"strings"
	"sync"
	"testing"
)

func renderRegistry(t *testing.T, r *Registry) string {
	t.Helper()
	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestRegistryTextFormat(t *testing.T) {
	r := NewRegistry()
	f := r.Family("prefill_requests_total", "Requests seen.", TypeCounter)
	f.Add(3, Label{"policy", "affinity"}, Label{"class", "interactive"})
	f.Add(1.5, Label{"policy", "affinity"}, Label{"class", "batch"})
	r.Family("prefill_empty", "Declared but sampleless.", TypeGauge)

	out := renderRegistry(t, r)
	for _, want := range []string{
		"# HELP prefill_requests_total Requests seen.\n",
		"# TYPE prefill_requests_total counter\n",
		`prefill_requests_total{policy="affinity",class="interactive"} 3` + "\n",
		`prefill_requests_total{policy="affinity",class="batch"} 1.5` + "\n",
		// A family with no samples still exposes its schema.
		"# HELP prefill_empty Declared but sampleless.\n",
		"# TYPE prefill_empty gauge\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// Integers render without an exponent or decimal point.
	if strings.Contains(out, "} 3e") || strings.Contains(out, "} 3.0") {
		t.Fatalf("integer sample rendered non-integer:\n%s", out)
	}
}

func TestRegistryFamilyIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Family("m", "h", TypeCounter)
	b := r.Family("m", "ignored", TypeGauge)
	if a != b {
		t.Fatal("re-declaring a family created a second one")
	}
	a.Add(1)
	out := renderRegistry(t, r)
	if strings.Count(out, "# TYPE m ") != 1 {
		t.Fatalf("family rendered twice:\n%s", out)
	}
}

func TestRegistryLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Family("m", "h", TypeGauge).Add(1, Label{"name", "a\"b\\c\nd"})
	out := renderRegistry(t, r)
	want := `m{name="a\"b\\c\nd"} 1`
	if !strings.Contains(out, want) {
		t.Fatalf("escaping: want %q in:\n%s", want, out)
	}
}

func TestHistogramExposition(t *testing.T) {
	h := NewHistogram([]float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.7, 5, 100} {
		h.Observe(v)
	}
	snap := h.Snapshot()
	if snap.Count != 5 || snap.Sum != 106.25 {
		t.Fatalf("snapshot = %+v", snap)
	}

	r := NewRegistry()
	r.Family("lat", "h", TypeHistogram).AddHistogram(snap, Label{"class", "interactive"})
	out := renderRegistry(t, r)
	for _, want := range []string{
		// Buckets are cumulative; +Inf equals the total count.
		`lat_bucket{class="interactive",le="0.1"} 1`,
		`lat_bucket{class="interactive",le="1"} 3`,
		`lat_bucket{class="interactive",le="10"} 4`,
		`lat_bucket{class="interactive",le="+Inf"} 5`,
		`lat_sum{class="interactive"} 106.25`,
		`lat_count{class="interactive"} 5`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("histogram output missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramValidatesBuckets(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-ascending buckets accepted")
		}
	}()
	NewHistogram([]float64{1, 1})
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram(DefLatencyBuckets)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				h.Observe(0.2)
			}
		}()
	}
	wg.Wait()
	if got := h.Snapshot().Count; got != 8000 {
		t.Fatalf("count = %d, want 8000", got)
	}
}

func TestSortedKeys(t *testing.T) {
	got := SortedKeys(map[string]int{"b": 1, "a": 2, "c": 3})
	if len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Fatalf("SortedKeys = %v", got)
	}
}
