package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// This file is the Prometheus-text exposition layer: a Registry of metric
// families rendered in the text format (version 0.0.4) that Prometheus
// and its ecosystem scrape. The repository's live state lives in domain
// types (Admission, router loads, cache stats, the autoscale controller),
// so the Registry is deliberately a per-scrape rendering buffer — the
// server builds one under its lock from fresh snapshots on every
// /v1/metrics request — plus Histogram, the one persistent accumulator
// (request latencies must be observed as they complete, not derived at
// scrape time).

// Metric family types in the exposition format.
const (
	TypeCounter   = "counter"
	TypeGauge     = "gauge"
	TypeHistogram = "histogram"
)

// Label is one name="value" pair. Labels render in the order given, so
// callers keep a stable order for deterministic output.
type Label struct {
	Name  string
	Value string
}

// sample is one rendered time series within a family.
type sample struct {
	suffix string // "" or "_bucket"/"_sum"/"_count" for histograms
	labels []Label
	value  float64
}

// Family is one metric family: a name, help text, a type, and the
// samples added this scrape.
type Family struct {
	Name    string
	Help    string
	Type    string
	samples []sample
}

// Registry is an ordered collection of metric families. It is a
// per-scrape builder: construct, fill, render. Families render in the
// order they were declared.
type Registry struct {
	mu       sync.Mutex
	families []*Family
	byName   map[string]*Family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*Family)}
}

// Family declares (or returns the existing) family with the given name.
// Declaring a family with no samples still renders its HELP/TYPE header,
// so scrapers always see the full schema.
func (r *Registry) Family(name, help, typ string) *Family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		return f
	}
	f := &Family{Name: name, Help: help, Type: typ}
	r.byName[name] = f
	r.families = append(r.families, f)
	return f
}

// Add appends one sample with the given labels.
func (f *Family) Add(value float64, labels ...Label) {
	f.samples = append(f.samples, sample{labels: labels, value: value})
}

// AddHistogram appends a histogram snapshot's _bucket/_sum/_count series
// under the given labels.
func (f *Family) AddHistogram(h HistogramSnapshot, labels ...Label) {
	cum := uint64(0)
	for i, b := range h.Buckets {
		cum += h.Counts[i]
		ls := make([]Label, len(labels), len(labels)+1)
		copy(ls, labels)
		ls = append(ls, Label{"le", formatLe(b)})
		f.samples = append(f.samples, sample{suffix: "_bucket", labels: ls, value: float64(cum)})
	}
	inf := make([]Label, len(labels), len(labels)+1)
	copy(inf, labels)
	inf = append(inf, Label{"le", "+Inf"})
	f.samples = append(f.samples,
		sample{suffix: "_bucket", labels: inf, value: float64(h.Count)},
		sample{suffix: "_sum", labels: labels, value: h.Sum},
		sample{suffix: "_count", labels: labels, value: float64(h.Count)})
}

// formatLe renders a bucket bound the way Prometheus clients do.
func formatLe(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteTo renders the registry in the Prometheus text format. Samples
// within a family keep insertion order (callers iterate sorted keys), so
// output is deterministic.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	var b strings.Builder
	for _, f := range r.families {
		fmt.Fprintf(&b, "# HELP %s %s\n", f.Name, f.Help)
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.Name, f.Type)
		for _, s := range f.samples {
			b.WriteString(f.Name)
			b.WriteString(s.suffix)
			writeLabels(&b, s.labels)
			b.WriteByte(' ')
			b.WriteString(formatValue(s.value))
			b.WriteByte('\n')
		}
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

func writeLabels(b *strings.Builder, labels []Label) {
	if len(labels) == 0 {
		return
	}
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for _, c := range s {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// SortedKeys returns a map's keys in sorted order — scrape builders use
// it to render label sets deterministically.
func SortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// --- histogram ---

// DefLatencyBuckets are the request-latency bucket bounds in seconds,
// spanning sub-10ms cache hits to multi-minute saturated tails.
var DefLatencyBuckets = []float64{
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100,
}

// Histogram is a fixed-bucket cumulative histogram, safe for concurrent
// observation. Unlike the Registry it is long-lived: observations
// accumulate across a run and snapshot at scrape time.
type Histogram struct {
	mu      sync.Mutex
	buckets []float64 // upper bounds, ascending
	counts  []uint64  // per-bucket (non-cumulative) counts
	sum     float64
	count   uint64
}

// NewHistogram builds a histogram with the given ascending upper bounds.
func NewHistogram(buckets []float64) *Histogram {
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic("metrics: histogram buckets must be ascending")
		}
	}
	return &Histogram{buckets: buckets, counts: make([]uint64, len(buckets))}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	for i, b := range h.buckets {
		if v <= b {
			h.counts[i]++
			break
		}
	}
	h.sum += v
	h.count++
	h.mu.Unlock()
}

// Reset zeroes the histogram's counts and sum, keeping its buckets. The
// time-series engine snapshots and resets one histogram per window, so
// per-window quantiles stream through fixed storage instead of retaining
// every observation.
func (h *Histogram) Reset() {
	h.mu.Lock()
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.sum = 0
	h.count = 0
	h.mu.Unlock()
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	Buckets []float64
	Counts  []uint64 // per-bucket counts, same length as Buckets
	Sum     float64
	Count   uint64
}

// Quantile estimates the p-quantile (0 <= p <= 1) from the snapshot's
// buckets, interpolating linearly within the bucket the quantile falls in
// (the lowest bucket interpolates from 0, the way Prometheus's
// histogram_quantile does). Values past the last finite bound clamp to
// it, and an empty snapshot yields 0. The estimate is exact to bucket
// resolution: it always lands inside the bucket that contains the true
// quantile (the guarantee the windowed-quantile property test pins).
func (s HistogramSnapshot) Quantile(p float64) float64 {
	if s.Count == 0 || len(s.Buckets) == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := p * float64(s.Count)
	var cum, inBucket uint64
	for i, le := range s.Buckets {
		cum += s.Counts[i]
		if float64(cum) >= rank {
			inBucket = s.Counts[i]
			lo := 0.0
			if i > 0 {
				lo = s.Buckets[i-1]
			}
			if inBucket == 0 {
				return le
			}
			below := float64(cum - inBucket)
			return lo + (le-lo)*((rank-below)/float64(inBucket))
		}
	}
	// The quantile falls in the implicit +Inf bucket: clamp to the last
	// finite bound, the most honest answer fixed buckets can give.
	return s.Buckets[len(s.Buckets)-1]
}

// Snapshot returns a copy of the histogram's state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramSnapshot{
		Buckets: h.buckets,
		Counts:  make([]uint64, len(h.counts)),
		Sum:     h.sum,
		Count:   h.count,
	}
	copy(s.Counts, h.counts)
	return s
}
