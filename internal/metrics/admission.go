package metrics

import "sync"

// AdmissionCount is the accept/reject tally of one routing policy.
type AdmissionCount struct {
	Accepted int64
	Rejected int64
}

// Total returns accepted + rejected.
func (c AdmissionCount) Total() int64 { return c.Accepted + c.Rejected }

// AcceptRate returns the fraction of decisions that admitted the request
// (1 when no decisions have been recorded).
func (c AdmissionCount) AcceptRate() float64 {
	if c.Total() == 0 {
		return 1
	}
	return float64(c.Accepted) / float64(c.Total())
}

// ClassUnlabeled is the SLO-class label decisions recorded through the
// classless Accept/Reject methods fall under.
const ClassUnlabeled = ""

// Admission tallies routing admission decisions per policy and SLO class.
// The zero value is ready to use. Per-policy counts are the sum over
// classes, so the classless Accept/Reject/Policy/Snapshot surface reports
// the same totals it always has while AcceptClass/RejectClass stratify
// them. It is safe for concurrent use: the HTTP frontend routes from
// multiple goroutines, while simulation routers are single-threaded.
type Admission struct {
	mu sync.Mutex
	// classes maps policy → class label → tally; it is the single source
	// of truth, with the aggregate views summing over it.
	classes map[string]map[string]AdmissionCount
	// reasons maps policy → class label → reject reason → count. It
	// stratifies the Rejected side of classes: which budget a shed
	// tripped (the aggregate backlog bound vs a per-class budget).
	reasons map[string]map[string]map[string]int64
}

func (a *Admission) bump(policy, class string, accepted bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.classes == nil {
		a.classes = make(map[string]map[string]AdmissionCount)
	}
	byClass := a.classes[policy]
	if byClass == nil {
		byClass = make(map[string]AdmissionCount)
		a.classes[policy] = byClass
	}
	c := byClass[class]
	if accepted {
		c.Accepted++
	} else {
		c.Rejected++
	}
	byClass[class] = c
}

// Accept records an admitted request under the given policy name.
func (a *Admission) Accept(policy string) { a.bump(policy, ClassUnlabeled, true) }

// Reject records a shed request under the given policy name.
func (a *Admission) Reject(policy string) { a.bump(policy, ClassUnlabeled, false) }

// AcceptClass records an admitted request under a policy and SLO class.
func (a *Admission) AcceptClass(policy, class string) { a.bump(policy, class, true) }

// RejectClass records a shed request under a policy and SLO class.
func (a *Admission) RejectClass(policy, class string) { a.bump(policy, class, false) }

// RejectClassReason records a shed request and which admission budget it
// tripped (see router.RejectError.Reason). The class tally and the
// per-reason tally move together, so summing reasons recovers the
// class's Rejected count.
func (a *Admission) RejectClassReason(policy, class, reason string) {
	a.bump(policy, class, false)
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.reasons == nil {
		a.reasons = make(map[string]map[string]map[string]int64)
	}
	byClass := a.reasons[policy]
	if byClass == nil {
		byClass = make(map[string]map[string]int64)
		a.reasons[policy] = byClass
	}
	byReason := byClass[class]
	if byReason == nil {
		byReason = make(map[string]int64)
		byClass[class] = byReason
	}
	byReason[reason]++
}

// ReasonSnapshot returns a copy of the per-reason reject tallies:
// policy → class → reason → count. Policies that only recorded
// reasonless rejects are absent.
func (a *Admission) ReasonSnapshot() map[string]map[string]map[string]int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[string]map[string]map[string]int64, len(a.reasons))
	for policy, byClass := range a.reasons {
		cm := make(map[string]map[string]int64, len(byClass))
		for class, byReason := range byClass {
			rm := make(map[string]int64, len(byReason))
			for reason, n := range byReason {
				rm[reason] = n
			}
			cm[class] = rm
		}
		out[policy] = cm
	}
	return out
}

// Policy returns the tally of one policy, summed over classes.
func (a *Admission) Policy(policy string) AdmissionCount {
	a.mu.Lock()
	defer a.mu.Unlock()
	var sum AdmissionCount
	for _, c := range a.classes[policy] {
		sum.Accepted += c.Accepted
		sum.Rejected += c.Rejected
	}
	return sum
}

// Class returns the tally of one policy restricted to one SLO class.
func (a *Admission) Class(policy, class string) AdmissionCount {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.classes[policy][class]
}

// Snapshot returns a copy of every policy's tally, summed over classes.
func (a *Admission) Snapshot() map[string]AdmissionCount {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[string]AdmissionCount, len(a.classes))
	for policy, byClass := range a.classes {
		var sum AdmissionCount
		for _, c := range byClass {
			sum.Accepted += c.Accepted
			sum.Rejected += c.Rejected
		}
		out[policy] = sum
	}
	return out
}

// ClassSnapshot returns a copy of every policy's per-class tallies.
func (a *Admission) ClassSnapshot() map[string]map[string]AdmissionCount {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[string]map[string]AdmissionCount, len(a.classes))
	for policy, byClass := range a.classes {
		m := make(map[string]AdmissionCount, len(byClass))
		for class, c := range byClass {
			m[class] = c
		}
		out[policy] = m
	}
	return out
}
