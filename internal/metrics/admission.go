package metrics

import "sync"

// AdmissionCount is the accept/reject tally of one routing policy.
type AdmissionCount struct {
	Accepted int64
	Rejected int64
}

// Total returns accepted + rejected.
func (c AdmissionCount) Total() int64 { return c.Accepted + c.Rejected }

// AcceptRate returns the fraction of decisions that admitted the request
// (1 when no decisions have been recorded).
func (c AdmissionCount) AcceptRate() float64 {
	if c.Total() == 0 {
		return 1
	}
	return float64(c.Accepted) / float64(c.Total())
}

// Admission tallies routing admission decisions per policy. The zero value
// is ready to use. It is safe for concurrent use: the HTTP frontend routes
// from multiple goroutines, while simulation routers are single-threaded.
type Admission struct {
	mu     sync.Mutex
	counts map[string]AdmissionCount
}

// Accept records an admitted request under the given policy name.
func (a *Admission) Accept(policy string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.counts == nil {
		a.counts = make(map[string]AdmissionCount)
	}
	c := a.counts[policy]
	c.Accepted++
	a.counts[policy] = c
}

// Reject records a shed request under the given policy name.
func (a *Admission) Reject(policy string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.counts == nil {
		a.counts = make(map[string]AdmissionCount)
	}
	c := a.counts[policy]
	c.Rejected++
	a.counts[policy] = c
}

// Policy returns the tally of one policy.
func (a *Admission) Policy(policy string) AdmissionCount {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.counts[policy]
}

// Snapshot returns a copy of every policy's tally.
func (a *Admission) Snapshot() map[string]AdmissionCount {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[string]AdmissionCount, len(a.counts))
	for k, v := range a.counts {
		out[k] = v
	}
	return out
}
