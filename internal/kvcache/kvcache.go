// Package kvcache implements a paged, content-addressed KV cache with
// prefix caching, LRU eviction and PrefillOnly's suffix discarding.
//
// Tokens are grouped into fixed-size blocks (vLLM-style paging). A block's
// identity is the hash of its tokens chained with its parent block's hash,
// so two requests that share a token prefix share cache blocks. Capacity is
// tracked in bytes of full-depth KV cache; eviction is LRU over unpinned
// blocks, and a block can only be evicted after every block chained below
// it (no dangling prefixes).
package kvcache

import "fmt"

// Stats counts cache activity since construction.
type Stats struct {
	// LookupTokens is the total tokens presented to Lookup.
	LookupTokens int64
	// HitTokens is the tokens Lookup found cached.
	HitTokens int64
	// InsertedBlocks counts blocks newly inserted.
	InsertedBlocks int64
	// EvictedBlocks counts blocks evicted to make space.
	EvictedBlocks int64
	// OffloadedBlocks counts evicted blocks demoted to the host tier.
	OffloadedBlocks int64
	// RejectedBlocks counts insertions dropped because space could not
	// be reclaimed (everything else was pinned or hotter).
	RejectedBlocks int64
}

// HitRate returns the fraction of looked-up tokens served from cache.
func (s Stats) HitRate() float64 {
	if s.LookupTokens == 0 {
		return 0
	}
	return float64(s.HitTokens) / float64(s.LookupTokens)
}

type block struct {
	hash     uint64
	parent   uint64
	depth    int // 1-based chain position
	children int // blocks that chain onto this one
	pins     int
	lastUsed float64

	// heap index for the LRU heap; -1 when not evictable.
	heapIdx int
}

// Manager is a single simulated device's (or engine's) prefix cache.
// It is not goroutine-safe; engines are single-threaded event handlers.
type Manager struct {
	blockTokens   int
	bytesPerBlock int64
	capacity      int64
	used          int64
	reserved      int64

	blocks map[uint64]*block
	lru    lruHeap
	host   *hostTier // nil when offloading is disabled
	stats  Stats

	subs    []func(ChangeEvent)
	pending ChangeEvent
}

// ChangeEvent describes the cache-membership changes of one operation:
// the block hashes newly inserted into the GPU tier and those evicted
// from it. Pins, unpins and LRU refreshes do not change membership and
// are not reported.
type ChangeEvent struct {
	Inserted []uint64
	Evicted  []uint64
}

// Subscribe registers fn to run after every operation that changes cache
// membership (Insert/InsertH, Reserve, EvictAll), with the block hashes
// that changed. Schedulers use the feed to rekey only the waiting
// requests whose prefix hash chains overlap a changed block instead of
// rescanning the queue. fn runs synchronously on the engine's event
// thread; it may read the Manager but must not mutate it.
func (m *Manager) Subscribe(fn func(ChangeEvent)) {
	m.subs = append(m.subs, fn)
}

// flushChanges delivers and clears the pending membership changes.
func (m *Manager) flushChanges() {
	if len(m.pending.Inserted) == 0 && len(m.pending.Evicted) == 0 {
		return
	}
	ev := m.pending
	m.pending = ChangeEvent{}
	for _, fn := range m.subs {
		fn(ev)
	}
}

// Config configures a Manager.
type Config struct {
	// BlockTokens is the tokens per cache block (vLLM default 16).
	BlockTokens int
	// BytesPerToken is the full-depth KV cache size of one token.
	BytesPerToken int64
	// CapacityBytes is the cache pool size.
	CapacityBytes int64
	// HostCapacityBytes enables the §9 CPU offload tier when positive:
	// evicted blocks demote to host memory instead of being discarded,
	// and engines may restore them over the host link.
	HostCapacityBytes int64
}

// New constructs a Manager.
func New(cfg Config) (*Manager, error) {
	if cfg.BlockTokens <= 0 {
		return nil, fmt.Errorf("kvcache: BlockTokens must be positive, got %d", cfg.BlockTokens)
	}
	if cfg.BytesPerToken <= 0 {
		return nil, fmt.Errorf("kvcache: BytesPerToken must be positive, got %d", cfg.BytesPerToken)
	}
	if cfg.CapacityBytes < 0 {
		return nil, fmt.Errorf("kvcache: CapacityBytes must be non-negative, got %d", cfg.CapacityBytes)
	}
	m := &Manager{
		blockTokens:   cfg.BlockTokens,
		bytesPerBlock: cfg.BytesPerToken * int64(cfg.BlockTokens),
		capacity:      cfg.CapacityBytes,
		blocks:        make(map[uint64]*block),
	}
	if cfg.HostCapacityBytes > 0 {
		m.host = newHostTier(cfg.HostCapacityBytes, m.bytesPerBlock)
	}
	return m, nil
}

// BlockTokens returns the tokens per cache block.
func (m *Manager) BlockTokens() int { return m.blockTokens }

// Stats returns a copy of the activity counters.
func (m *Manager) Stats() Stats { return m.stats }

// CapacityBytes returns the pool size.
func (m *Manager) CapacityBytes() int64 { return m.capacity }

// UsedBytes returns the bytes currently held by cached blocks.
func (m *Manager) UsedBytes() int64 { return m.used }

// CapacityTokens returns the whole blocks the pool can hold, in tokens.
func (m *Manager) CapacityTokens() int {
	if m.bytesPerBlock == 0 {
		return 0
	}
	return int(m.capacity/m.bytesPerBlock) * m.blockTokens
}

// BlockHashes maps a token sequence to its chain of content-addressed
// block hashes: hash(block i) covers block i's tokens chained with block
// i-1's hash. Only full blocks participate in prefix caching (partial tail
// blocks are never shared), matching vLLM. The hash is deterministic, so
// chains computed once per request are valid for every Manager with the
// same block size.
func BlockHashes(tokens []uint64, blockTokens int) []uint64 {
	if blockTokens <= 0 {
		panic("kvcache: blockTokens must be positive")
	}
	n := len(tokens) / blockTokens
	hashes := make([]uint64, n)
	var parent uint64
	for i := 0; i < n; i++ {
		h := parent ^ 0xcbf29ce484222325 // FNV offset basis
		for _, tok := range tokens[i*blockTokens : (i+1)*blockTokens] {
			h = mix(h, tok)
		}
		// Reserve 0 as "no parent".
		if h == 0 {
			h = 1
		}
		parent = h
		hashes[i] = h
	}
	return hashes
}

// mix folds one token into a chained hash (FNV-1a over the 8 bytes,
// followed by an avalanche step).
func mix(h, tok uint64) uint64 {
	const prime = 0x100000001b3
	for i := 0; i < 8; i++ {
		h ^= tok >> (8 * i) & 0xff
		h *= prime
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h
}

func (m *Manager) blockHashes(tokens []uint64) []uint64 {
	return BlockHashes(tokens, m.blockTokens)
}

// Lookup returns the number of leading tokens of the sequence that are
// cached (whole blocks only) and refreshes their LRU timestamps.
func (m *Manager) Lookup(tokens []uint64, now float64) int {
	return m.LookupH(m.blockHashes(tokens), now)
}

// LookupH is Lookup over a precomputed hash chain (see BlockHashes).
func (m *Manager) LookupH(hashes []uint64, now float64) int {
	m.stats.LookupTokens += int64(len(hashes) * m.blockTokens)
	hit := 0
	for _, hash := range hashes {
		b, ok := m.blocks[hash]
		if !ok {
			break
		}
		b.lastUsed = now
		if b.heapIdx >= 0 {
			m.lru.fix(b)
		}
		hit += m.blockTokens
	}
	m.stats.HitTokens += int64(hit)
	return hit
}

// Peek returns the number of leading tokens of the sequence that are
// cached without refreshing LRU state or stats. Schedulers use it during
// continuous JCT calibration sweeps, which must not distort eviction order.
func (m *Manager) Peek(tokens []uint64) int {
	return m.PeekH(m.blockHashes(tokens))
}

// PeekH is Peek over a precomputed hash chain.
func (m *Manager) PeekH(hashes []uint64) int {
	hit := 0
	for _, hash := range hashes {
		if _, ok := m.blocks[hash]; !ok {
			break
		}
		hit += m.blockTokens
	}
	return hit
}

// HasBlock reports whether the block with the given content hash is
// cached, without refreshing LRU state or stats. Routers use it to merge
// cache contents with their own in-flight bookkeeping when estimating
// per-instance hit lengths.
func (m *Manager) HasBlock(hash uint64) bool {
	_, ok := m.blocks[hash]
	return ok
}

// Reserve claims bytes of pool space for a request's execution-time KV
// residency (conventional engines must hold the full fresh KV of a running
// request in the pool). Colder unpinned blocks are evicted to make room.
// It returns the shortfall that could not be satisfied (which the engine
// must spill over the host link) and a release function.
func (m *Manager) Reserve(bytes int64) (shortfall int64, release func()) {
	defer m.flushChanges() // reclaim may evict
	if bytes < 0 {
		bytes = 0
	}
	m.reclaim(bytes)
	free := m.capacity - m.used - m.reserved
	if free < 0 {
		free = 0
	}
	granted := bytes
	if granted > free {
		granted = free
	}
	m.reserved += granted
	released := false
	return bytes - granted, func() {
		if released {
			return
		}
		released = true
		m.reserved -= granted
	}
}

// ReservedBytes returns the pool bytes currently claimed by running
// requests.
func (m *Manager) ReservedBytes() int64 { return m.reserved }

// Pin marks the cached prefix of the sequence as in-use (unevictable) and
// returns the pinned token count along with a release function. Engines pin
// a request's hit prefix for the duration of its execution.
func (m *Manager) Pin(tokens []uint64, now float64) (int, func()) {
	return m.PinH(m.blockHashes(tokens), now)
}

// PinH is Pin over a precomputed hash chain. Like Lookup, it counts
// toward the hit-rate statistics (engines pin instead of looking up).
func (m *Manager) PinH(hashes []uint64, now float64) (int, func()) {
	m.stats.LookupTokens += int64(len(hashes) * m.blockTokens)
	var pinned []*block
	hit := 0
	for _, hash := range hashes {
		b, ok := m.blocks[hash]
		if !ok {
			break
		}
		b.pins++
		if b.heapIdx >= 0 {
			m.lru.remove(b)
		}
		b.lastUsed = now
		pinned = append(pinned, b)
		hit += m.blockTokens
	}
	m.stats.HitTokens += int64(hit)
	released := false
	return hit, func() {
		if released {
			return
		}
		released = true
		for _, b := range pinned {
			b.pins--
			m.maybeEvictable(b)
		}
	}
}

// maybeEvictable inserts a block into the LRU heap when it has become
// evictable (no pins and no children).
func (m *Manager) maybeEvictable(b *block) {
	if b.pins == 0 && b.children == 0 && b.heapIdx < 0 {
		m.lru.push(b)
	}
}

// Insert caches the KV blocks of tokens[:limit], evicting colder unpinned
// blocks as needed, and returns the number of tokens actually cached.
// Blocks that are already present are refreshed. Insertion stops at the
// first block for which space cannot be reclaimed — this is suffix
// discarding: the prefix stays, the suffix is dropped.
//
// The chain being inserted is pinned while the walk is in progress so that
// reclaim can never evict a block that a subsequent block of the same
// request is about to chain onto.
func (m *Manager) Insert(tokens []uint64, limit int, now float64) int {
	if limit > len(tokens) {
		limit = len(tokens)
	}
	if limit < 0 {
		limit = 0
	}
	return m.InsertH(m.blockHashes(tokens[:limit]), now)
}

// InsertH is Insert over a precomputed hash chain (all given blocks are
// candidates; trim the chain to express a limit).
func (m *Manager) InsertH(hashes []uint64, now float64) int {
	defer m.flushChanges()
	cached := 0
	var parent *block
	var path []*block
	defer func() {
		for _, b := range path {
			b.pins--
			m.maybeEvictable(b)
		}
	}()
	for _, hash := range hashes {
		if b, ok := m.blocks[hash]; ok {
			b.lastUsed = now
			b.pins++
			if b.heapIdx >= 0 {
				m.lru.remove(b)
			}
			path = append(path, b)
			cached += m.blockTokens
			parent = b
			continue
		}
		if !m.reclaim(m.bytesPerBlock) {
			m.stats.RejectedBlocks++
			break
		}
		if m.host != nil {
			// The block now lives in the GPU tier; drop the host copy.
			m.host.remove(hash)
		}
		b := &block{hash: hash, depth: 1, lastUsed: now, heapIdx: -1, pins: 1}
		if parent != nil {
			b.parent = parent.hash
			b.depth = parent.depth + 1
			parent.children++
		}
		m.blocks[hash] = b
		m.used += m.bytesPerBlock
		if len(m.subs) > 0 {
			m.pending.Inserted = append(m.pending.Inserted, hash)
		}
		path = append(path, b)
		m.stats.InsertedBlocks++
		cached += m.blockTokens
		parent = b
	}
	return cached
}

// reclaim evicts LRU blocks until free bytes >= need. Returns false when
// not enough unpinned leaf blocks exist.
func (m *Manager) reclaim(need int64) bool {
	for m.capacity-m.used-m.reserved < need {
		b := m.lru.popOldest()
		if b == nil {
			return false
		}
		m.evict(b)
	}
	return true
}

func (m *Manager) evict(b *block) {
	delete(m.blocks, b.hash)
	m.used -= m.bytesPerBlock
	if len(m.subs) > 0 {
		m.pending.Evicted = append(m.pending.Evicted, b.hash)
	}
	m.stats.EvictedBlocks++
	if m.host != nil {
		m.host.add(b.hash)
		m.stats.OffloadedBlocks++
	}
	if b.parent != 0 {
		if p, ok := m.blocks[b.parent]; ok {
			p.children--
			m.maybeEvictable(p)
		}
	}
}

// EvictAll drops every unpinned block (used by tests and by engines on
// reconfiguration).
func (m *Manager) EvictAll() {
	defer m.flushChanges()
	for {
		b := m.lru.popOldest()
		if b == nil {
			return
		}
		m.evict(b)
	}
}

// LoseAll models an instance crash: every unpinned GPU-tier block is
// destroyed (not demoted to the host tier, unlike eviction) and the host
// tier itself is wiped — the machine is gone, both memories with it.
// Callers must release all pins first (the engine's kill path aborts
// in-flight work before losing the cache); any still-pinned chain
// survives, exactly as EvictAll would leave it.
func (m *Manager) LoseAll() {
	defer m.flushChanges()
	for {
		b := m.lru.popOldest()
		if b == nil {
			break
		}
		delete(m.blocks, b.hash)
		m.used -= m.bytesPerBlock
		if len(m.subs) > 0 {
			m.pending.Evicted = append(m.pending.Evicted, b.hash)
		}
		m.stats.EvictedBlocks++
		if b.parent != 0 {
			if p, ok := m.blocks[b.parent]; ok {
				p.children--
				m.maybeEvictable(p)
			}
		}
	}
	if m.host != nil {
		m.host.clear()
	}
}

// Len returns the number of cached blocks.
func (m *Manager) Len() int { return len(m.blocks) }

// CheckInvariants validates internal consistency; tests call it after
// operation sequences.
func (m *Manager) CheckInvariants() error {
	var used int64
	children := make(map[uint64]int)
	//prefill:allow(simdeterminism): test-only invariant sweep; accumulates commutative sums, never touches sim state
	for _, b := range m.blocks {
		used += m.bytesPerBlock
		if b.parent != 0 {
			if _, ok := m.blocks[b.parent]; !ok {
				return fmt.Errorf("kvcache: block %x has dangling parent %x", b.hash, b.parent)
			}
			children[b.parent]++
		}
	}
	if used != m.used {
		return fmt.Errorf("kvcache: used=%d but blocks sum to %d", m.used, used)
	}
	if m.used > m.capacity {
		return fmt.Errorf("kvcache: used %d exceeds capacity %d", m.used, m.capacity)
	}
	//prefill:allow(simdeterminism): test-only invariant sweep; reports error presence, never touches sim state
	for _, b := range m.blocks {
		if b.children != children[b.hash] {
			return fmt.Errorf("kvcache: block %x children=%d, actual %d", b.hash, b.children, children[b.hash])
		}
		evictable := b.pins == 0 && b.children == 0
		if evictable != (b.heapIdx >= 0) {
			return fmt.Errorf("kvcache: block %x evictable=%v but heapIdx=%d (pins=%d children=%d)",
				b.hash, evictable, b.heapIdx, b.pins, b.children)
		}
	}
	return nil
}
