package kvcache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func newMgr(t *testing.T, capBlocks int) *Manager {
	t.Helper()
	m, err := New(Config{BlockTokens: 16, BytesPerToken: 1024, CapacityBytes: int64(capBlocks) * 16 * 1024})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// seq produces a deterministic token sequence for a (stream, length) pair.
func seq(stream uint64, n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = stream<<32 | uint64(i)
	}
	return out
}

func TestLookupMissThenHit(t *testing.T) {
	m := newMgr(t, 100)
	toks := seq(1, 64)
	if got := m.Lookup(toks, 0); got != 0 {
		t.Fatalf("cold lookup = %d, want 0", got)
	}
	if ins := m.Insert(toks, len(toks), 1); ins != 64 {
		t.Fatalf("inserted %d tokens, want 64", ins)
	}
	if got := m.Lookup(toks, 2); got != 64 {
		t.Fatalf("warm lookup = %d, want 64", got)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPartialBlocksNotShared(t *testing.T) {
	m := newMgr(t, 100)
	toks := seq(1, 70) // 4 full blocks + 6 tokens
	m.Insert(toks, len(toks), 0)
	if got := m.Lookup(toks, 1); got != 64 {
		t.Fatalf("lookup = %d, want 64 (whole blocks only)", got)
	}
}

func TestPrefixSharingAcrossRequests(t *testing.T) {
	m := newMgr(t, 1000)
	prefix := seq(7, 160)
	a := append(append([]uint64{}, prefix...), seq(8, 32)...)
	b := append(append([]uint64{}, prefix...), seq(9, 32)...)
	m.Insert(a, len(a), 0)
	if got := m.Lookup(b, 1); got != 160 {
		t.Fatalf("request b prefix hit = %d, want 160", got)
	}
	// Diverging suffixes don't alias.
	if got := m.Lookup(append(append([]uint64{}, prefix...), seq(10, 32)...), 2); got != 160 {
		t.Fatalf("third request prefix hit = %d, want 160", got)
	}
}

func TestDivergentFirstBlockNoHit(t *testing.T) {
	m := newMgr(t, 100)
	m.Insert(seq(1, 64), 64, 0)
	if got := m.Lookup(seq(2, 64), 1); got != 0 {
		t.Fatalf("unrelated sequence hit = %d, want 0", got)
	}
}

func TestLRUEviction(t *testing.T) {
	m := newMgr(t, 8) // room for 8 blocks = 128 tokens
	a := seq(1, 64)
	b := seq(2, 64)
	c := seq(3, 64)
	m.Insert(a, 64, 1)
	m.Insert(b, 64, 2)
	// Touch a so b becomes coldest.
	m.Lookup(a, 3)
	m.Insert(c, 64, 4) // must evict b's blocks
	if got := m.Lookup(b, 5); got != 0 {
		t.Fatalf("b still cached (%d tokens) after LRU pressure", got)
	}
	if got := m.Lookup(a, 6); got != 64 {
		t.Fatalf("a hit = %d, want 64 (recently touched)", got)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSuffixDiscarding(t *testing.T) {
	// Capacity of 4 blocks; inserting a 10-block request keeps only the
	// first 4 blocks (the prefix) and discards the suffix.
	m := newMgr(t, 4)
	toks := seq(1, 160)
	ins := m.Insert(toks, len(toks), 0)
	if ins != 64 {
		t.Fatalf("inserted %d tokens, want 64 (4 blocks)", ins)
	}
	if got := m.Lookup(toks, 1); got != 64 {
		t.Fatalf("prefix hit = %d, want 64", got)
	}
	if m.Stats().RejectedBlocks == 0 {
		t.Fatal("expected rejected (discarded) suffix blocks")
	}
}

func TestPinPreventsEviction(t *testing.T) {
	m := newMgr(t, 4)
	a := seq(1, 64)
	m.Insert(a, 64, 0)
	pinned, release := m.Pin(a, 1)
	if pinned != 64 {
		t.Fatalf("pinned %d, want 64", pinned)
	}
	// Inserting b cannot evict pinned a: only 0 new blocks fit.
	ins := m.Insert(seq(2, 64), 64, 2)
	if ins != 0 {
		t.Fatalf("inserted %d tokens while cache fully pinned, want 0", ins)
	}
	release()
	release() // idempotent
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// After release, insertion evicts a.
	if ins := m.Insert(seq(3, 64), 64, 3); ins != 64 {
		t.Fatalf("post-release insert = %d, want 64", ins)
	}
}

func TestParentOutlivesChild(t *testing.T) {
	// Chain of 3 blocks, capacity 3. Inserting one new block must evict
	// the deepest block of the chain first, never the root.
	m := newMgr(t, 3)
	a := seq(1, 48)
	m.Insert(a, 48, 0)
	m.Insert(seq(2, 16), 16, 1)
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if got := m.Lookup(a, 2); got != 32 {
		t.Fatalf("after evicting chain tail, prefix hit = %d, want 32", got)
	}
}

func TestStatsHitRate(t *testing.T) {
	m := newMgr(t, 100)
	a := seq(1, 64)
	m.Insert(a, 64, 0)
	m.Lookup(a, 1)
	s := m.Stats()
	if s.HitRate() <= 0 || s.HitRate() > 1 {
		t.Fatalf("hit rate = %v", s.HitRate())
	}
}

func TestCapacityTokens(t *testing.T) {
	m := newMgr(t, 10)
	if got := m.CapacityTokens(); got != 160 {
		t.Fatalf("capacity tokens = %d, want 160", got)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{BlockTokens: 0, BytesPerToken: 1, CapacityBytes: 1}); err == nil {
		t.Error("accepted zero block tokens")
	}
	if _, err := New(Config{BlockTokens: 16, BytesPerToken: 0, CapacityBytes: 1}); err == nil {
		t.Error("accepted zero bytes per token")
	}
	if _, err := New(Config{BlockTokens: 16, BytesPerToken: 1, CapacityBytes: -1}); err == nil {
		t.Error("accepted negative capacity")
	}
}

func TestZeroCapacityCachesNothing(t *testing.T) {
	m, err := New(Config{BlockTokens: 16, BytesPerToken: 1024, CapacityBytes: 0})
	if err != nil {
		t.Fatal(err)
	}
	if ins := m.Insert(seq(1, 64), 64, 0); ins != 0 {
		t.Fatalf("zero-capacity cache inserted %d tokens", ins)
	}
}

func TestEvictAll(t *testing.T) {
	m := newMgr(t, 100)
	m.Insert(seq(1, 160), 160, 0)
	m.EvictAll()
	if m.Len() != 0 || m.UsedBytes() != 0 {
		t.Fatalf("EvictAll left %d blocks, %d bytes", m.Len(), m.UsedBytes())
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPeekDoesNotTouchLRU(t *testing.T) {
	m := newMgr(t, 8)
	a := seq(1, 64)
	b := seq(2, 64)
	m.Insert(a, 64, 1)
	m.Insert(b, 64, 2)
	// Peek a many times; it must stay coldest and get evicted first.
	for i := 0; i < 10; i++ {
		if got := m.Peek(a); got != 64 {
			t.Fatalf("peek = %d, want 64", got)
		}
	}
	m.Insert(seq(3, 64), 64, 3)
	if got := m.Peek(a); got != 0 {
		t.Fatalf("a survived eviction after peeks (hit %d); Peek touched LRU", got)
	}
	if got := m.Peek(b); got != 64 {
		t.Fatalf("b evicted instead of a (hit %d)", got)
	}
}

func TestReserveEvictsAndReportsShortfall(t *testing.T) {
	m := newMgr(t, 8) // 8 blocks = 128 KiB
	m.Insert(seq(1, 128), 128, 0)
	if m.Len() != 8 {
		t.Fatalf("setup: %d blocks cached", m.Len())
	}
	// Reserve half the pool: evicts 4 blocks, no shortfall.
	short, rel := m.Reserve(4 * 16 * 1024)
	if short != 0 {
		t.Fatalf("shortfall = %d, want 0", short)
	}
	if m.Len() != 4 {
		t.Fatalf("blocks after reserve = %d, want 4", m.Len())
	}
	// Reserve more than remains: full eviction plus shortfall.
	short2, rel2 := m.Reserve(10 * 16 * 1024)
	if short2 != 6*16*1024 {
		t.Fatalf("shortfall = %d, want %d", short2, 6*16*1024)
	}
	if m.ReservedBytes() != m.CapacityBytes() {
		t.Fatalf("reserved %d, want full capacity", m.ReservedBytes())
	}
	// While reserved, inserts are rejected.
	if ins := m.Insert(seq(9, 64), 64, 5); ins != 0 {
		t.Fatalf("insert during full reservation cached %d tokens", ins)
	}
	rel()
	rel()
	rel2()
	if m.ReservedBytes() != 0 {
		t.Fatalf("reserved %d after releases", m.ReservedBytes())
	}
	if ins := m.Insert(seq(9, 64), 64, 6); ins != 64 {
		t.Fatalf("insert after release cached %d tokens, want 64", ins)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// Property: random interleavings of insert/lookup/pin/release never break
// invariants, and used bytes never exceed capacity.
func TestRandomOpsInvariants(t *testing.T) {
	f := func(opsSeed int64) bool {
		rng := rand.New(rand.NewSource(opsSeed))
		m, err := New(Config{BlockTokens: 16, BytesPerToken: 64,
			CapacityBytes: int64(rng.Intn(32)+1) * 16 * 64})
		if err != nil {
			return false
		}
		var releases []func()
		now := 0.0
		for i := 0; i < 200; i++ {
			now += rng.Float64()
			stream := uint64(rng.Intn(6))
			n := rng.Intn(120) + 1
			toks := seq(stream, n)
			switch rng.Intn(4) {
			case 0:
				m.Insert(toks, n, now)
			case 1:
				m.Lookup(toks, now)
			case 2:
				_, rel := m.Pin(toks, now)
				releases = append(releases, rel)
			case 3:
				if len(releases) > 0 {
					k := rng.Intn(len(releases))
					releases[k]()
					releases = append(releases[:k], releases[k+1:]...)
				}
			}
			if m.UsedBytes() > m.CapacityBytes() {
				return false
			}
			if err := m.CheckInvariants(); err != nil {
				t.Logf("invariant violation: %v", err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// --- change-notification feed ---

func TestSubscribeReportsInsertsAndEvictions(t *testing.T) {
	m := newMgr(t, 4)
	var events []ChangeEvent
	m.Subscribe(func(ev ChangeEvent) { events = append(events, ev) })

	chainA := BlockHashes(seq(1, 4*16), 16)
	m.InsertH(chainA, 1)
	if len(events) != 1 {
		t.Fatalf("events after insert = %d, want 1", len(events))
	}
	if len(events[0].Inserted) != 4 || len(events[0].Evicted) != 0 {
		t.Fatalf("first event = %+v, want 4 inserted / 0 evicted", events[0])
	}

	// Re-inserting the same chain only refreshes LRU: no membership
	// change, no event.
	m.InsertH(chainA, 2)
	if len(events) != 1 {
		t.Fatalf("refresh emitted an event: %+v", events[len(events)-1])
	}

	// Pins do not change membership either.
	_, unpin := m.PinH(chainA, 3)
	unpin()
	if len(events) != 1 {
		t.Fatal("pin/unpin emitted an event")
	}

	// A new chain in a full pool evicts A's blocks: one event carrying
	// both the insertions and the evictions.
	chainB := BlockHashes(seq(2, 2*16), 16)
	m.InsertH(chainB, 4)
	if len(events) != 2 {
		t.Fatalf("events after displacing insert = %d, want 2", len(events))
	}
	if len(events[1].Inserted) != 2 || len(events[1].Evicted) != 2 {
		t.Fatalf("second event = %+v, want 2 inserted / 2 evicted", events[1])
	}
	inA := map[uint64]bool{}
	for _, h := range chainA {
		inA[h] = true
	}
	for _, h := range events[1].Evicted {
		if !inA[h] {
			t.Fatalf("evicted hash %x is not one of A's blocks", h)
		}
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSubscribeReportsReserveAndEvictAll(t *testing.T) {
	m := newMgr(t, 4)
	var events []ChangeEvent
	m.Subscribe(func(ev ChangeEvent) { events = append(events, ev) })

	m.InsertH(BlockHashes(seq(1, 4*16), 16), 1)
	events = events[:0]

	// Reserving half the pool must evict two blocks and report them.
	if short, release := m.Reserve(2 * 16 * 1024); short != 0 {
		t.Fatalf("shortfall %d on satisfiable reserve", short)
	} else {
		defer release()
	}
	if len(events) != 1 || len(events[0].Evicted) != 2 || len(events[0].Inserted) != 0 {
		t.Fatalf("reserve events = %+v, want one with 2 evicted", events)
	}

	events = events[:0]
	m.EvictAll()
	if len(events) != 1 || len(events[0].Evicted) != 2 {
		t.Fatalf("EvictAll events = %+v, want one with the 2 remaining blocks", events)
	}
	if m.Len() != 0 {
		t.Fatalf("%d blocks remain after EvictAll", m.Len())
	}

	// An empty operation emits nothing.
	events = events[:0]
	m.EvictAll()
	if _, release := m.Reserve(1024); true {
		release()
	}
	if len(events) != 0 {
		t.Fatalf("no-op operations emitted %+v", events)
	}
}
