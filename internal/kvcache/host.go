package kvcache

// Host-memory offload tier (paper §9, "Offloading the KV caches to CPU"):
// instead of discarding evicted prefix blocks, the manager can demote them
// to a host-memory tier. A later request whose prefix extends past its
// GPU-cache hit can restore the following blocks over the host link
// instead of recomputing them; the engine decides whether restoring beats
// recomputing (LMCache-style semantics).
//
// The tier is content-addressed like the GPU tier but evicts FIFO: host
// memory is large and cheap, so recency tracking buys little there.

import "repro/internal/ringbuf"

// hostEntry is one FIFO slot: the block hash plus the insertion sequence
// number that makes it identifiable as stale. remove used to leave the
// hash's queue entry behind, so a block that was removed and later
// re-added was evicted at its original FIFO position — the re-insertion
// was ignored — while stale entries (and the queue's `queue[1:]` slice
// advance) accumulated backing-array garbage. Each membership now carries
// a fresh seq: an entry is live only while it matches the map's current
// seq for that hash, so a re-add refreshes the block's FIFO position and
// orphaned entries are discarded when popped (plus compacted lazily).
type hostEntry struct {
	hash uint64
	seq  uint64
}

type hostTier struct {
	capacity int64
	used     int64
	perBlock int64
	blocks   map[uint64]uint64 // hash → seq of its live queue entry
	queue    ringbuf.Ring[hostEntry]
	nextSeq  uint64
	stale    int // queue entries no longer matching blocks
}

func newHostTier(capacity, perBlock int64) *hostTier {
	return &hostTier{
		capacity: capacity,
		perBlock: perBlock,
		blocks:   make(map[uint64]uint64),
	}
}

// popOldest evicts the oldest live block, skipping stale entries. It
// returns false when the queue holds no live entry.
func (h *hostTier) popOldest() bool {
	for {
		e, ok := h.queue.PopFront()
		if !ok {
			return false
		}
		if seq, live := h.blocks[e.hash]; live && seq == e.seq {
			delete(h.blocks, e.hash)
			h.used -= h.perBlock
			return true
		}
		h.stale--
	}
}

func (h *hostTier) add(hash uint64) {
	if _, ok := h.blocks[hash]; ok {
		// Already resident: FIFO semantics, no position refresh.
		return
	}
	for h.used+h.perBlock > h.capacity {
		if !h.popOldest() {
			break
		}
	}
	if h.used+h.perBlock > h.capacity {
		return
	}
	h.nextSeq++
	h.blocks[hash] = h.nextSeq
	h.queue.PushBack(hostEntry{hash: hash, seq: h.nextSeq})
	h.used += h.perBlock
}

func (h *hostTier) remove(hash uint64) {
	if _, ok := h.blocks[hash]; ok {
		delete(h.blocks, hash)
		h.used -= h.perBlock
		h.stale++
		h.compact()
	}
}

// compact rewrites the queue without its stale entries once they outnumber
// the live ones, so a remove-heavy workload cannot grow the queue beyond
// twice the resident block count.
func (h *hostTier) compact() {
	if h.stale <= h.queue.Len()/2 {
		return
	}
	var q ringbuf.Ring[hostEntry]
	for {
		e, ok := h.queue.PopFront()
		if !ok {
			break
		}
		if seq, live := h.blocks[e.hash]; live && seq == e.seq {
			q.PushBack(e)
		}
	}
	h.queue = q
	h.stale = 0
}

// clear drops the whole tier (instance crash: host memory is lost with
// the machine). The map and queue are replaced rather than drained so a
// crashed tier releases its peak-size backing arrays.
func (h *hostTier) clear() {
	h.blocks = make(map[uint64]uint64)
	h.queue = ringbuf.Ring[hostEntry]{}
	h.used = 0
	h.stale = 0
}

func (h *hostTier) contains(hash uint64) bool {
	_, ok := h.blocks[hash]
	return ok
}

// HostHitH returns how many tokens, contiguously following the first
// skipBlocks blocks of the chain, are available in the host tier.
func (m *Manager) HostHitH(hashes []uint64, skipBlocks int) int {
	if m.host == nil || skipBlocks >= len(hashes) {
		return 0
	}
	hit := 0
	for _, hash := range hashes[skipBlocks:] {
		if !m.host.contains(hash) {
			break
		}
		hit += m.blockTokens
	}
	return hit
}

// HostUsedBytes returns the bytes held by the host tier (0 when disabled).
func (m *Manager) HostUsedBytes() int64 {
	if m.host == nil {
		return 0
	}
	return m.host.used
}
