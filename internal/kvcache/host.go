package kvcache

// Host-memory offload tier (paper §9, "Offloading the KV caches to CPU"):
// instead of discarding evicted prefix blocks, the manager can demote them
// to a host-memory tier. A later request whose prefix extends past its
// GPU-cache hit can restore the following blocks over the host link
// instead of recomputing them; the engine decides whether restoring beats
// recomputing (LMCache-style semantics).
//
// The tier is content-addressed like the GPU tier but evicts FIFO: host
// memory is large and cheap, so recency tracking buys little there.

type hostTier struct {
	capacity int64
	used     int64
	perBlock int64
	blocks   map[uint64]struct{}
	queue    []uint64 // FIFO eviction order
}

func newHostTier(capacity, perBlock int64) *hostTier {
	return &hostTier{
		capacity: capacity,
		perBlock: perBlock,
		blocks:   make(map[uint64]struct{}),
	}
}

func (h *hostTier) add(hash uint64) {
	if _, ok := h.blocks[hash]; ok {
		return
	}
	for h.used+h.perBlock > h.capacity && len(h.queue) > 0 {
		old := h.queue[0]
		h.queue = h.queue[1:]
		if _, ok := h.blocks[old]; ok {
			delete(h.blocks, old)
			h.used -= h.perBlock
		}
	}
	if h.used+h.perBlock > h.capacity {
		return
	}
	h.blocks[hash] = struct{}{}
	h.queue = append(h.queue, hash)
	h.used += h.perBlock
}

func (h *hostTier) remove(hash uint64) {
	if _, ok := h.blocks[hash]; ok {
		delete(h.blocks, hash)
		h.used -= h.perBlock
		// The stale queue entry is skipped lazily during eviction.
	}
}

func (h *hostTier) contains(hash uint64) bool {
	_, ok := h.blocks[hash]
	return ok
}

// HostHitH returns how many tokens, contiguously following the first
// skipBlocks blocks of the chain, are available in the host tier.
func (m *Manager) HostHitH(hashes []uint64, skipBlocks int) int {
	if m.host == nil || skipBlocks >= len(hashes) {
		return 0
	}
	hit := 0
	for _, hash := range hashes[skipBlocks:] {
		if !m.host.contains(hash) {
			break
		}
		hit += m.blockTokens
	}
	return hit
}

// HostUsedBytes returns the bytes held by the host tier (0 when disabled).
func (m *Manager) HostUsedBytes() int64 {
	if m.host == nil {
		return 0
	}
	return m.host.used
}
