package kvcache

import "testing"

func newOffloadMgr(t *testing.T, gpuBlocks, hostBlocks int) *Manager {
	t.Helper()
	m, err := New(Config{
		BlockTokens:       16,
		BytesPerToken:     1024,
		CapacityBytes:     int64(gpuBlocks) * 16 * 1024,
		HostCapacityBytes: int64(hostBlocks) * 16 * 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestEvictionOffloadsToHost(t *testing.T) {
	m := newOffloadMgr(t, 4, 16)
	a := seq(1, 64)
	b := seq(2, 64)
	m.Insert(a, 64, 1)
	m.Insert(b, 64, 2) // evicts a's 4 blocks → host tier
	if got := m.Peek(a); got != 0 {
		t.Fatalf("a still in GPU tier (%d tokens)", got)
	}
	hashes := BlockHashes(a, 16)
	if got := m.HostHitH(hashes, 0); got != 64 {
		t.Fatalf("host hit = %d tokens, want 64", got)
	}
	if m.Stats().OffloadedBlocks != 4 {
		t.Fatalf("offloaded = %d, want 4", m.Stats().OffloadedBlocks)
	}
	if m.HostUsedBytes() != 4*16*1024 {
		t.Fatalf("host used = %d", m.HostUsedBytes())
	}
}

func TestHostHitSkipsGPUPrefix(t *testing.T) {
	m := newOffloadMgr(t, 4, 16)
	toks := seq(1, 128) // 8 blocks; only 4 fit on GPU
	m.Insert(toks, 128, 1)
	// Suffix discarding kept blocks 1-4 on GPU; nothing offloaded yet.
	hashes := BlockHashes(toks, 16)
	gpuHit := m.PeekH(hashes)
	if gpuHit != 64 {
		t.Fatalf("gpu hit = %d, want 64", gpuHit)
	}
	if got := m.HostHitH(hashes, gpuHit/16); got != 0 {
		t.Fatalf("host hit = %d, want 0 (suffix was discarded, not offloaded)", got)
	}
	// Now evict the GPU prefix by inserting another request: the prefix
	// moves to host, and HostHitH counts from block 0.
	m.Insert(seq(2, 64), 64, 2)
	if got := m.HostHitH(hashes, 0); got != 64 {
		t.Fatalf("host hit after eviction = %d, want 64", got)
	}
}

func TestHostTierFIFOEviction(t *testing.T) {
	m := newOffloadMgr(t, 2, 2)
	m.Insert(seq(1, 32), 32, 1) // 2 blocks on GPU
	m.Insert(seq(2, 32), 32, 2) // evicts seq1 → host (2 blocks, host full)
	m.Insert(seq(3, 32), 32, 3) // evicts seq2 → host, pushing seq1 out (FIFO)
	h1 := BlockHashes(seq(1, 32), 16)
	h2 := BlockHashes(seq(2, 32), 16)
	if got := m.HostHitH(h1, 0); got != 0 {
		t.Fatalf("oldest host blocks not FIFO-evicted (hit %d)", got)
	}
	if got := m.HostHitH(h2, 0); got != 32 {
		t.Fatalf("newest host blocks missing (hit %d)", got)
	}
}

func TestGPUInsertRemovesHostCopy(t *testing.T) {
	m := newOffloadMgr(t, 4, 16)
	a := seq(1, 64)
	m.Insert(a, 64, 1)
	m.Insert(seq(2, 64), 64, 2) // a → host
	m.Insert(a, 64, 3)          // a promoted back to GPU
	if got := m.Peek(a); got != 64 {
		t.Fatalf("a not back on GPU (%d)", got)
	}
	if got := m.HostHitH(BlockHashes(a, 16), 0); got != 0 {
		t.Fatalf("stale host copy remains (%d tokens)", got)
	}
}

// Regression for the remove→re-add staleness bug: remove left the hash's
// queue entry behind, so a re-added block inherited its original FIFO
// position and was evicted prematurely (the re-insertion was ignored).
// A re-add must refresh the block's FIFO position.
func TestHostTierReAddRefreshesFIFOPosition(t *testing.T) {
	h := newHostTier(3, 1)
	h.add(1)
	h.add(2)
	h.remove(1)
	h.add(3)
	h.add(1) // re-add: 1 is now the NEWEST entry, order 2,3,1
	// Tier full (2,3,1). Two more adds must evict 2 then 3 — never 1,
	// which the stale original-position entry would have evicted first.
	h.add(4) // evicts 2
	if !h.contains(1) || h.contains(2) {
		t.Fatalf("first eviction hit the re-added block: contains(1)=%v contains(2)=%v",
			h.contains(1), h.contains(2))
	}
	h.add(5) // evicts 3
	if !h.contains(1) || h.contains(3) {
		t.Fatalf("second eviction hit the re-added block: contains(1)=%v contains(3)=%v",
			h.contains(1), h.contains(3))
	}
	if !h.contains(4) || !h.contains(5) {
		t.Fatal("newest blocks missing after evictions")
	}
	if h.used != 3 {
		t.Fatalf("used = %d, want 3", h.used)
	}
}

// The eviction queue must stay bounded under remove/re-add churn: stale
// entries are compacted, and the ring's backing array tracks the live
// population instead of retaining every insertion ever made.
func TestHostTierQueueBoundedUnderChurn(t *testing.T) {
	h := newHostTier(64, 1)
	for i := uint64(0); i < 64; i++ {
		h.add(i)
	}
	for i := 0; i < 100_000; i++ {
		hash := uint64(i % 64)
		h.remove(hash)
		h.add(hash)
	}
	if h.used != 64 || len(h.blocks) != 64 {
		t.Fatalf("population drifted: used=%d blocks=%d", h.used, len(h.blocks))
	}
	// Live entries (64) plus at most the not-yet-compacted stale half.
	if h.queue.Len() > 2*64+1 {
		t.Fatalf("queue holds %d entries for 64 live blocks", h.queue.Len())
	}
	if h.queue.Cap() > 4*64 {
		t.Fatalf("queue backing array holds %d slots for 64 live blocks", h.queue.Cap())
	}
}

func TestHostDisabledByDefault(t *testing.T) {
	m := newMgr(t, 2)
	m.Insert(seq(1, 32), 32, 1)
	m.Insert(seq(2, 32), 32, 2)
	if got := m.HostHitH(BlockHashes(seq(1, 32), 16), 0); got != 0 {
		t.Fatalf("host tier active without configuration (%d)", got)
	}
	if m.HostUsedBytes() != 0 || m.Stats().OffloadedBlocks != 0 {
		t.Fatal("host accounting nonzero when disabled")
	}
}
