package kvcache

// lruHeap is a min-heap of evictable blocks ordered by lastUsed, with
// depth as a tie-breaker so that deeper (suffix) blocks of a chain are
// evicted before shallower ones when timestamps tie.
type lruHeap struct {
	items []*block
}

func (h *lruHeap) less(i, j int) bool {
	a, b := h.items[i], h.items[j]
	if a.lastUsed != b.lastUsed {
		return a.lastUsed < b.lastUsed
	}
	return a.depth > b.depth
}

func (h *lruHeap) swap(i, j int) {
	h.items[i], h.items[j] = h.items[j], h.items[i]
	h.items[i].heapIdx = i
	h.items[j].heapIdx = j
}

func (h *lruHeap) push(b *block) {
	b.heapIdx = len(h.items)
	h.items = append(h.items, b)
	h.up(b.heapIdx)
}

func (h *lruHeap) remove(b *block) {
	i := b.heapIdx
	if i < 0 {
		return
	}
	last := len(h.items) - 1
	if i != last {
		h.swap(i, last)
	}
	h.items = h.items[:last]
	b.heapIdx = -1
	if i < last {
		h.down(i)
		h.up(i)
	}
}

// fix restores heap order after b's key changed.
func (h *lruHeap) fix(b *block) {
	if b.heapIdx < 0 {
		return
	}
	h.down(b.heapIdx)
	h.up(b.heapIdx)
}

// popOldest removes and returns the least-recently-used evictable block,
// or nil when none exists.
func (h *lruHeap) popOldest() *block {
	if len(h.items) == 0 {
		return nil
	}
	b := h.items[0]
	h.remove(b)
	return b
}

func (h *lruHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *lruHeap) down(i int) {
	n := len(h.items)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.less(l, smallest) {
			smallest = l
		}
		if r < n && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.swap(i, smallest)
		i = smallest
	}
}
