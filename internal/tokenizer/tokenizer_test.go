package tokenizer

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestDeterministic(t *testing.T) {
	tk := New()
	a := tk.Encode("Should we recommend this document to this user?")
	b := tk.Encode("Should we recommend this document to this user?")
	if len(a) != len(b) {
		t.Fatal("length mismatch")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("non-deterministic encoding")
		}
	}
}

func TestSharedPrefixEncodesIdentically(t *testing.T) {
	tk := New()
	p1 := tk.Encode("profile: reads systems papers. post: about databases")
	p2 := tk.Encode("profile: reads systems papers. post: about compilers")
	// Common text prefix ⇒ common token prefix.
	common := 0
	for common < len(p1) && common < len(p2) && p1[common] == p2[common] {
		common++
	}
	if common < len(p1)-4 {
		t.Fatalf("common prefix only %d of %d tokens", common, len(p1))
	}
	if common == len(p1) && common == len(p2) {
		t.Fatal("different texts encoded identically")
	}
}

func TestBOSPrepended(t *testing.T) {
	tk := New()
	toks := tk.Encode("hi")
	if len(toks) < 2 || toks[0] != tk.BOS {
		t.Fatalf("no BOS: %v", toks)
	}
	tk.BOS = 0
	if toks := tk.Encode("hi"); len(toks) != 1 {
		t.Fatalf("BOS=0 should omit it: %v", toks)
	}
}

func TestLongWordsSplit(t *testing.T) {
	pieces := Pieces("internationalization")
	if len(pieces) < 3 {
		t.Fatalf("long word not split: %v", pieces)
	}
	if strings.Join(pieces, "") != "internationalization" {
		t.Fatalf("pieces lose content: %v", pieces)
	}
}

func TestPunctuationSeparated(t *testing.T) {
	pieces := Pieces("Yes, or No?")
	want := []string{"Yes", ",", "or", "No", "?"}
	if len(pieces) != len(want) {
		t.Fatalf("pieces = %v, want %v", pieces, want)
	}
	for i := range want {
		if pieces[i] != want[i] {
			t.Fatalf("pieces = %v, want %v", pieces, want)
		}
	}
}

func TestCountMatchesEncode(t *testing.T) {
	tk := New()
	f := func(s string) bool {
		return tk.Count(s) == len(tk.Encode(s))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTokenIDsAvoidSpecialRange(t *testing.T) {
	f := func(s string) bool {
		if s == "" {
			return true
		}
		return TokenID(s) >= 256
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestScalesRoughlyWithWords(t *testing.T) {
	tk := New()
	text := strings.Repeat("the quick brown fox jumps over the lazy dog ", 100)
	n := tk.Count(text)
	if n < 900 || n > 1400 {
		t.Fatalf("token count %d for 900 words, want ~1:1.2 ratio", n)
	}
}
