// Package tokenizer provides a deterministic word-piece style tokenizer
// for the serving frontend. It is not a linguistic BPE model — engine
// performance depends only on token counts and token identity (for prefix
// caching), so the tokenizer's job is to map equal text to equal token
// streams, split long words the way subword vocabularies do, and be stable
// across runs.
package tokenizer

import (
	"strings"
	"unicode"
)

// maxPieceLen approximates subword splitting: words longer than this are
// split into pieces, mimicking how BPE vocabularies fragment rare words.
const maxPieceLen = 6

// Tokenizer maps text to deterministic token IDs.
type Tokenizer struct {
	// BOS is prepended to every encoding when non-zero.
	BOS uint64
}

// New returns a tokenizer with a BOS token, like the paper's Llama/Qwen
// tokenizers.
func New() *Tokenizer { return &Tokenizer{BOS: 1} }

// Encode maps text to token IDs: one token per piece, where pieces are
// whitespace-delimited words further split at punctuation boundaries and
// maxPieceLen runs.
func (t *Tokenizer) Encode(text string) []uint64 {
	var out []uint64
	if t.BOS != 0 {
		out = append(out, t.BOS)
	}
	for _, piece := range Pieces(text) {
		out = append(out, pieceID(piece))
	}
	return out
}

// Count returns the token count of text without materializing IDs.
func (t *Tokenizer) Count(text string) int {
	n := len(Pieces(text))
	if t.BOS != 0 {
		n++
	}
	return n
}

// Pieces splits text into subword pieces.
func Pieces(text string) []string {
	var pieces []string
	var b strings.Builder
	flush := func() {
		if b.Len() == 0 {
			return
		}
		w := b.String()
		b.Reset()
		for len(w) > maxPieceLen {
			pieces = append(pieces, w[:maxPieceLen])
			w = w[maxPieceLen:]
		}
		pieces = append(pieces, w)
	}
	for _, r := range text {
		switch {
		case unicode.IsSpace(r):
			flush()
		case unicode.IsPunct(r) || unicode.IsSymbol(r):
			flush()
			pieces = append(pieces, string(r))
		default:
			b.WriteRune(r)
		}
	}
	flush()
	return pieces
}

// pieceID hashes a piece into a stable token ID (FNV-1a, offset away from
// the reserved special-token range).
func pieceID(piece string) uint64 {
	const (
		offset = 0xcbf29ce484222325
		prime  = 0x100000001b3
	)
	h := uint64(offset)
	for i := 0; i < len(piece); i++ {
		h ^= uint64(piece[i])
		h *= prime
	}
	// Keep IDs out of the special-token range [0, 256).
	if h < 256 {
		h += 256
	}
	return h
}

// TokenID exposes the stable ID of one piece (used by the scorer to
// identify allowed output tokens).
func TokenID(piece string) uint64 { return pieceID(piece) }
