package cluster

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/hw"
	"repro/internal/model"
	"repro/internal/sched"
	"repro/internal/sim"
)

func TestRoutingStickyAndRoundRobin(t *testing.T) {
	var s sim.Sim
	cfg := engine.Config{Model: model.Llama31_8B(), GPU: hw.L4(), Sim: &s, ProfileMaxLen: 2000}
	e1, err := engine.NewPagedAttention(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := engine.NewPagedAttention(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(e1, e2)
	if err != nil {
		t.Fatal(err)
	}
	if c.GPUs() != 2 {
		t.Fatalf("GPUs = %d", c.GPUs())
	}
	// Users assigned round robin in first-seen order; repeat users sticky.
	if c.Route(10) != 0 || c.Route(20) != 1 || c.Route(30) != 0 {
		t.Fatal("round-robin assignment broken")
	}
	for i := 0; i < 5; i++ {
		if c.Route(20) != 1 {
			t.Fatal("user routing not sticky")
		}
	}
}

func TestSubmitRoutesByUser(t *testing.T) {
	var s sim.Sim
	var recs []engine.Record
	cfg := engine.Config{
		Model: model.Llama31_8B(), GPU: hw.L4(), Sim: &s, ProfileMaxLen: 2000,
		OnComplete: func(r engine.Record) { recs = append(recs, r) },
	}
	e1, err := engine.NewPagedAttention(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := engine.NewPagedAttention(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(e1, e2)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(id int64, user int) *sched.Request {
		toks := make([]uint64, 1000)
		for i := range toks {
			toks[i] = uint64(user)<<32 | uint64(i)
		}
		return &sched.Request{ID: id, UserID: user, Tokens: toks}
	}
	s.At(0, func() {
		c.Submit(mk(1, 0))
		c.Submit(mk(2, 1))
		c.Submit(mk(3, 0))
	})
	s.Run()
	if len(recs) != 3 {
		t.Fatalf("completed %d", len(recs))
	}
	// Requests 1 and 3 (user 0) on instance of e1; request 2 on e2: the
	// two instances work concurrently, so request 2 must not wait for 1.
	var inst1, inst2 int
	for _, r := range recs {
		if r.Req.UserID == 0 {
			inst1++
		} else {
			inst2++
		}
	}
	if inst1 != 2 || inst2 != 1 {
		t.Fatalf("routing counts: user0=%d user1=%d", inst1, inst2)
	}
}

func TestTrackedUserBound(t *testing.T) {
	var s sim.Sim
	cfg := engine.Config{Model: model.Llama31_8B(), GPU: hw.L4(), Sim: &s, ProfileMaxLen: 2000}
	e1, err := engine.NewPagedAttention(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := engine.NewPagedAttention(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(e1, e2)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SetMaxTrackedUsers(0); err == nil {
		t.Fatal("non-positive cap accepted")
	}
	if err := c.SetMaxTrackedUsers(3); err != nil {
		t.Fatal(err)
	}
	// A million distinct users must never grow the table past the cap.
	for u := 0; u < 1_000_000; u++ {
		c.Route(u)
		if c.TrackedUsers() > 3 {
			t.Fatalf("tracked users %d exceeds cap after user %d", c.TrackedUsers(), u)
		}
	}
	if c.TrackedUsers() != 3 {
		t.Fatalf("tracked users = %d, want 3", c.TrackedUsers())
	}
	// The most recent users are still sticky.
	last := 999_999
	idx := c.Route(last)
	for i := 0; i < 5; i++ {
		if c.Route(last) != idx {
			t.Fatal("recent user lost stickiness")
		}
	}
	// Shrinking the cap evicts immediately.
	if err := c.SetMaxTrackedUsers(1); err != nil {
		t.Fatal(err)
	}
	if c.TrackedUsers() != 1 {
		t.Fatalf("tracked users = %d after shrinking cap to 1", c.TrackedUsers())
	}
}

// Regression for the `order = order[1:]` retention bug: under user churn
// at the tracked-user cap, Route appends while evictOldest advances, and
// the slice form regrew the backing array on every append while pinning
// every evicted slot. The order ring's backing array must stay bounded by
// the cap — not by the total users ever routed.
func TestOrderRingBoundedUnderChurnAtCap(t *testing.T) {
	var s sim.Sim
	cfg := engine.Config{Model: model.Llama31_8B(), GPU: hw.L4(), Sim: &s, ProfileMaxLen: 2000}
	e1, err := engine.NewPagedAttention(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(e1)
	if err != nil {
		t.Fatal(err)
	}
	const cap = 1000
	if err := c.SetMaxTrackedUsers(cap); err != nil {
		t.Fatal(err)
	}
	// 10x the cap of distinct users: every Route beyond the cap evicts one
	// and appends one.
	for u := 0; u < 10*cap; u++ {
		c.Route(u)
	}
	if c.TrackedUsers() != cap {
		t.Fatalf("tracked users = %d, want %d", c.TrackedUsers(), cap)
	}
	if c.order.Len() != cap {
		t.Fatalf("order ring holds %d entries, want %d", c.order.Len(), cap)
	}
	if c.order.Cap() > 2*cap {
		t.Fatalf("order ring backing array holds %d slots after 10x-cap churn (cap %d)",
			c.order.Cap(), cap)
	}
}

func TestNewRejectsEmptyAndNil(t *testing.T) {
	if _, err := New(); err == nil {
		t.Error("empty cluster accepted")
	}
	if _, err := New(nil); err == nil {
		t.Error("nil instance accepted")
	}
}
