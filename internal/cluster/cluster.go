// Package cluster fans a workload out across multiple engine instances
// with the paper's user-id-based routing (§7.1): every request from one
// user goes to the same instance, and users are assigned to instances in
// round-robin order of first appearance, so per-user prefix caches stay
// local to one device.
package cluster

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/sched"
)

// Cluster routes requests to a fixed set of engine instances.
type Cluster struct {
	instances []engine.Engine
	byUser    map[int]int
	next      int
}

// New builds a cluster over the given instances.
func New(instances ...engine.Engine) (*Cluster, error) {
	if len(instances) == 0 {
		return nil, fmt.Errorf("cluster: need at least one instance")
	}
	for i, in := range instances {
		if in == nil {
			return nil, fmt.Errorf("cluster: instance %d is nil", i)
		}
	}
	return &Cluster{instances: instances, byUser: make(map[int]int)}, nil
}

// Instances returns the cluster's engines.
func (c *Cluster) Instances() []engine.Engine { return c.instances }

// GPUs returns the total GPUs occupied by the cluster.
func (c *Cluster) GPUs() int {
	n := 0
	for _, in := range c.instances {
		n += in.GPUs()
	}
	return n
}

// Route returns the instance index a user's requests go to, assigning new
// users round-robin.
func (c *Cluster) Route(userID int) int {
	if idx, ok := c.byUser[userID]; ok {
		return idx
	}
	idx := c.next
	c.next = (c.next + 1) % len(c.instances)
	c.byUser[userID] = idx
	return idx
}

// Submit routes a request to its user's instance.
func (c *Cluster) Submit(r *sched.Request) {
	c.instances[c.Route(r.UserID)].Submit(r)
}
