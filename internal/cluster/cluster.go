// Package cluster fans a workload out across multiple engine instances
// with the paper's user-id-based routing (§7.1): every request from one
// user goes to the same instance, and users are assigned to instances in
// round-robin order of first appearance, so per-user prefix caches stay
// local to one device.
//
// This is the paper's static baseline. For load- and prefix-affinity-aware
// routing with admission control, use internal/router instead.
package cluster

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/ringbuf"
	"repro/internal/sched"
)

// DefaultMaxTrackedUsers bounds the per-user routing table so million-user
// traffic cannot grow it without limit. When the bound is hit, the
// longest-tracked user is forgotten (FIFO) and re-assigned round-robin on
// its next request, sacrificing that user's prefix locality.
const DefaultMaxTrackedUsers = 1 << 20

// Cluster routes requests to a fixed set of engine instances.
type Cluster struct {
	instances []engine.Engine
	byUser    map[int]int
	// order holds tracked user IDs in assignment order (FIFO eviction).
	// A ring (internal/ringbuf) rather than a slice advanced with
	// `order = order[1:]`: under user churn at the tracked-user cap,
	// Route appends while evictOldest pops, and the slice advance regrows
	// the backing array on every append while pinning every evicted slot
	// — memory proportional to all users ever seen, not the cap.
	order    ringbuf.Ring[int]
	next     int
	maxUsers int
}

// New builds a cluster over the given instances.
func New(instances ...engine.Engine) (*Cluster, error) {
	if len(instances) == 0 {
		return nil, fmt.Errorf("cluster: need at least one instance")
	}
	for i, in := range instances {
		if in == nil {
			return nil, fmt.Errorf("cluster: instance %d is nil", i)
		}
	}
	return &Cluster{
		instances: instances,
		byUser:    make(map[int]int),
		maxUsers:  DefaultMaxTrackedUsers,
	}, nil
}

// SetMaxTrackedUsers overrides the routing-table bound (default
// DefaultMaxTrackedUsers). n must be positive.
func (c *Cluster) SetMaxTrackedUsers(n int) error {
	if n <= 0 {
		return fmt.Errorf("cluster: max tracked users must be positive, got %d", n)
	}
	c.maxUsers = n
	for len(c.byUser) > c.maxUsers {
		c.evictOldest()
	}
	return nil
}

// TrackedUsers returns the number of users currently held in the routing
// table.
func (c *Cluster) TrackedUsers() int { return len(c.byUser) }

// evictOldest forgets the longest-tracked user.
func (c *Cluster) evictOldest() {
	if user, ok := c.order.PopFront(); ok {
		delete(c.byUser, user)
	}
}

// Instances returns the cluster's engines.
func (c *Cluster) Instances() []engine.Engine { return c.instances }

// GPUs returns the total GPUs occupied by the cluster.
func (c *Cluster) GPUs() int {
	n := 0
	for _, in := range c.instances {
		n += in.GPUs()
	}
	return n
}

// Route returns the instance index a user's requests go to, assigning new
// users round-robin. The table is bounded: beyond the tracked-user cap the
// oldest assignment is evicted first.
func (c *Cluster) Route(userID int) int {
	if idx, ok := c.byUser[userID]; ok {
		return idx
	}
	if len(c.byUser) >= c.maxUsers {
		c.evictOldest()
	}
	idx := c.next
	c.next = (c.next + 1) % len(c.instances)
	c.byUser[userID] = idx
	c.order.PushBack(userID)
	return idx
}

// Submit routes a request to its user's instance.
func (c *Cluster) Submit(r *sched.Request) {
	c.instances[c.Route(r.UserID)].Submit(r)
}
