package jct

import (
	"errors"
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/hw"
	"repro/internal/model"
)

// modelTime builds a TimeFunc backed by the graph executor's hybrid-mode
// estimate, i.e. what PrefillOnly's profile run measures.
func modelTime(e *graph.Executor) TimeFunc {
	return func(nInput, nCached int) (float64, error) {
		return e.EstimateSeconds(graph.PassSpec{Total: nInput, Cached: nCached}, graph.HybridOptions(512))
	}
}

func TestProfileFitsAccurately(t *testing.T) {
	e := graph.New(model.Llama31_8B(), hw.L4())
	est, err := Profile(modelTime(e), 20000, ProfileGranularity)
	if err != nil {
		t.Fatal(err)
	}
	// Predictions within 15% on off-grid points in the length regime the
	// workloads live in (attention is quadratic, so the linear fit is
	// approximate at the extremes — same as the paper's).
	for _, tc := range []struct{ n, c int }{{11000, 0}, {7777, 3000}, {19000, 12000}} {
		truth, _ := modelTime(e)(tc.n, tc.c)
		got := est.Estimate(tc.n, tc.c)
		if diff := math.Abs(got-truth) / truth; diff > 0.15 {
			t.Errorf("estimate(%d,%d) = %.4f vs truth %.4f (%.0f%% off)",
				tc.n, tc.c, got, truth, diff*100)
		}
	}
	// Ranking must be preserved: more miss tokens → larger estimate.
	prev := -1.0
	for n := 2000; n <= 20000; n += 2000 {
		v := est.Estimate(n, 0)
		if v <= prev {
			t.Fatalf("estimates not increasing at n=%d", n)
		}
		prev = v
	}
	if est.CoefInput <= 0 {
		t.Errorf("CoefInput = %v, want positive", est.CoefInput)
	}
	if est.CoefCached >= 0 {
		t.Errorf("CoefCached = %v, want negative (cache hits reduce JCT)", est.CoefCached)
	}
}

func TestEstimateClampedAtZero(t *testing.T) {
	l := &Linear{Intercept: -5}
	if got := l.Estimate(0, 0); got != 0 {
		t.Fatalf("negative estimate not clamped: %v", got)
	}
}

// The paper measures Pearson correlation 0.987 between JCT and cache-miss
// tokens on Qwen-32B/A100; our model should land in the same regime.
func TestProxyCorrelationHigh(t *testing.T) {
	e := graph.New(model.Qwen32BFP8(), hw.A100())
	r, err := ProxyCorrelation(modelTime(e), 40000, ProfileGranularity)
	if err != nil {
		t.Fatal(err)
	}
	if r < 0.95 || r > 1.0 {
		t.Fatalf("proxy correlation = %.4f, want ~0.987", r)
	}
}

func TestCalibrateProxy(t *testing.T) {
	e := graph.New(model.Llama31_8B(), hw.L4())
	p, err := CalibrateProxy(modelTime(e), 20000)
	if err != nil {
		t.Fatal(err)
	}
	if p.SecondsPerMissToken <= 0 {
		t.Fatal("non-positive per-token cost")
	}
	if p.Estimate(1000, 1000) != 0 {
		t.Fatal("fully-cached request should estimate 0")
	}
	if p.Estimate(1000, 2000) != 0 {
		t.Fatal("over-cached request should clamp to 0")
	}
	if p.Estimate(2000, 0) <= p.Estimate(1000, 0) {
		t.Fatal("estimate not increasing in miss tokens")
	}
}

func TestProfileErrors(t *testing.T) {
	ok := func(n, c int) (float64, error) { return 1, nil }
	if _, err := Profile(ok, 500, 1000); err == nil {
		t.Error("maxLen < granularity accepted")
	}
	if _, err := Profile(ok, 1000, 0); err == nil {
		t.Error("zero granularity accepted")
	}
	boom := errors.New("boom")
	bad := func(n, c int) (float64, error) { return 0, boom }
	if _, err := Profile(bad, 5000, 1000); !errors.Is(err, boom) {
		t.Errorf("measurement error not propagated: %v", err)
	}
	if _, err := CalibrateProxy(bad, 1000); !errors.Is(err, boom) {
		t.Errorf("calibration error not propagated: %v", err)
	}
	if _, err := CalibrateProxy(ok, 0); err == nil {
		t.Error("zero maxLen accepted")
	}
}

func TestEstimatorNames(t *testing.T) {
	if (&Linear{}).Name() == "" || (&Proxy{}).Name() == "" {
		t.Fatal("empty estimator names")
	}
}
