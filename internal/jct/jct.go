// Package jct implements job-completion-time estimation for prefill-only
// requests (paper §6.3). Because a prefill-only request's output length is
// exactly one token, its JCT is a deterministic function of its input
// length and of how many of its tokens hit the prefix cache.
//
// Two estimators are provided, matching the paper:
//
//   - Linear: offline profiling of jct(nInput, nCached) over a grid at
//     1000-token granularity, fit with linear regression.
//   - Proxy: the cache-miss-token count (nInput − nCached) scaled to
//     seconds, which the paper measures to correlate with true JCT at
//     Pearson 0.987 and adopts as the default.
package jct

import (
	"fmt"

	"repro/internal/metrics"
)

// TimeFunc measures (or models) the execution time of a request with
// nInput tokens of which nCached hit the prefix cache.
type TimeFunc func(nInput, nCached int) (float64, error)

// Estimator predicts the JCT of a request.
type Estimator interface {
	// Estimate returns the predicted execution time in seconds.
	Estimate(nInput, nCached int) float64
	// Name identifies the estimator in logs and experiment output.
	Name() string
}

// ProfileGranularity is the paper's profiling grid step (§6.3).
const ProfileGranularity = 1000

// Linear is a least-squares fit jct = Intercept + CoefInput·nInput +
// CoefCached·nCached.
type Linear struct {
	Intercept  float64
	CoefInput  float64
	CoefCached float64
}

// Name implements Estimator.
func (l *Linear) Name() string { return "linear-regression" }

// Estimate implements Estimator. Estimates are clamped at zero: a request
// can never have negative JCT.
func (l *Linear) Estimate(nInput, nCached int) float64 {
	v := l.Intercept + l.CoefInput*float64(nInput) + l.CoefCached*float64(nCached)
	if v < 0 {
		return 0
	}
	return v
}

// Profile runs the offline profiling phase: it evaluates measure over all
// (nInput, nCached) pairs with nCached <= nInput on a grid of the given
// granularity up to maxLen, and fits a Linear estimator.
func Profile(measure TimeFunc, maxLen, granularity int) (*Linear, error) {
	if maxLen < granularity {
		return nil, fmt.Errorf("jct: maxLen %d below granularity %d", maxLen, granularity)
	}
	if granularity <= 0 {
		return nil, fmt.Errorf("jct: granularity must be positive, got %d", granularity)
	}
	var feats [][]float64
	var ys []float64
	for n := granularity; n <= maxLen; n += granularity {
		for c := 0; c <= n; c += granularity {
			y, err := measure(n, c)
			if err != nil {
				return nil, fmt.Errorf("jct: profiling (%d,%d): %w", n, c, err)
			}
			feats = append(feats, []float64{float64(n), float64(c)})
			ys = append(ys, y)
		}
	}
	intercept, coefs, err := metrics.LinearFit(feats, ys)
	if err != nil {
		return nil, fmt.Errorf("jct: fitting profile: %w", err)
	}
	return &Linear{Intercept: intercept, CoefInput: coefs[0], CoefCached: coefs[1]}, nil
}

// Proxy estimates JCT as SecondsPerMissToken · (nInput − nCached): the
// cache-miss-token proxy the paper adopts by default.
type Proxy struct {
	SecondsPerMissToken float64
}

// Name implements Estimator.
func (p *Proxy) Name() string { return "cache-miss-proxy" }

// Estimate implements Estimator.
func (p *Proxy) Estimate(nInput, nCached int) float64 {
	miss := nInput - nCached
	if miss < 0 {
		miss = 0
	}
	return p.SecondsPerMissToken * float64(miss)
}

// CalibrateProxy derives the proxy's per-miss-token cost from a single
// measurement at maxLen cold tokens.
func CalibrateProxy(measure TimeFunc, maxLen int) (*Proxy, error) {
	if maxLen <= 0 {
		return nil, fmt.Errorf("jct: maxLen must be positive, got %d", maxLen)
	}
	y, err := measure(maxLen, 0)
	if err != nil {
		return nil, fmt.Errorf("jct: calibrating proxy at %d: %w", maxLen, err)
	}
	return &Proxy{SecondsPerMissToken: y / float64(maxLen)}, nil
}

// ProxyCorrelation computes the Pearson correlation between measured JCT
// and the cache-miss-token count over the profiling grid — the paper's
// 0.987 validation (§6.3).
func ProxyCorrelation(measure TimeFunc, maxLen, granularity int) (float64, error) {
	var miss, ys []float64
	for n := granularity; n <= maxLen; n += granularity {
		for c := 0; c <= n; c += granularity {
			y, err := measure(n, c)
			if err != nil {
				return 0, err
			}
			miss = append(miss, float64(n-c))
			ys = append(ys, y)
		}
	}
	return metrics.Pearson(miss, ys)
}
