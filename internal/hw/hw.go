// Package hw catalogs the GPU hardware the paper evaluates on and provides
// the analytical device performance model the simulator charges work
// against.
//
// A GPU is described by its memory capacity, dense-math throughput, memory
// bandwidth, and the bandwidth of the links that connect it to peers (PCIe
// or NVLink) and to the host. The paper's latency/throughput results are a
// function of exactly these quantities; see DESIGN.md §3 for the time model.
package hw

import "fmt"

const (
	// KiB, MiB, GiB are binary byte units.
	KiB = int64(1) << 10
	MiB = int64(1) << 20
	GiB = int64(1) << 30
)

// Interconnect identifies the GPU-to-GPU link technology.
type Interconnect int

const (
	// PCIe is a PCI Express link (the default for the paper's "w/o
	// NVLink" setups).
	PCIe Interconnect = iota
	// NVLink is NVIDIA's high-bandwidth GPU interconnect.
	NVLink
)

// String returns the conventional name for the interconnect.
func (i Interconnect) String() string {
	if i == NVLink {
		return "NVLink"
	}
	return "PCIe"
}

// GPU describes one accelerator for the analytical performance model.
type GPU struct {
	// Name is the marketing name, e.g. "NVIDIA H100 PCIe".
	Name string
	// MemoryBytes is the total device memory.
	MemoryBytes int64
	// MemoryUtil is the fraction of device memory the serving engine may
	// use (vLLM's gpu_memory_utilization). The remainder is reserved for
	// CUDA context, fragmentation slack and the framework — a roughly
	// constant ~2-4 GB in absolute terms, so the fraction grows with
	// device capacity.
	MemoryUtil float64
	// BF16TFLOPs is dense bf16 tensor-core throughput in teraFLOP/s.
	BF16TFLOPs float64
	// FP8TFLOPs is dense fp8 throughput; zero when the part has no fp8
	// units (A100), in which case fp8 weights still run at bf16 speed.
	FP8TFLOPs float64
	// MFU is the achievable model FLOPs utilization for large dense
	// matmuls (prefill is compute-bound, so this is the dominant
	// efficiency constant).
	MFU float64
	// MemBWBytes is HBM bandwidth in bytes/s (drives decode speed).
	MemBWBytes float64
	// PeerBWBytes is GPU-to-GPU bandwidth in bytes/s for the configured
	// Link (per direction, effective).
	PeerBWBytes float64
	// Link is the GPU-to-GPU interconnect technology.
	Link Interconnect
	// HostBWBytes is GPU-to-host (pinned-memory PCIe) bandwidth in
	// bytes/s, used by the KV-overflow fallback model.
	HostBWBytes float64
	// KernelLaunchOverhead is the fixed per-layer, per-pass overhead in
	// seconds (kernel launches, scheduling); keeps tiny requests from
	// being modelled as free.
	KernelLaunchOverhead float64
}

// Validate reports an error for physically meaningless specs.
func (g *GPU) Validate() error {
	switch {
	case g.MemoryBytes <= 0:
		return fmt.Errorf("gpu %q: MemoryBytes must be positive", g.Name)
	case g.MemoryUtil <= 0 || g.MemoryUtil > 1:
		return fmt.Errorf("gpu %q: MemoryUtil must be in (0,1], got %v", g.Name, g.MemoryUtil)
	case g.BF16TFLOPs <= 0:
		return fmt.Errorf("gpu %q: BF16TFLOPs must be positive", g.Name)
	case g.MFU <= 0 || g.MFU > 1:
		return fmt.Errorf("gpu %q: MFU must be in (0,1], got %v", g.Name, g.MFU)
	case g.MemBWBytes <= 0:
		return fmt.Errorf("gpu %q: MemBWBytes must be positive", g.Name)
	case g.PeerBWBytes <= 0:
		return fmt.Errorf("gpu %q: PeerBWBytes must be positive", g.Name)
	case g.HostBWBytes <= 0:
		return fmt.Errorf("gpu %q: HostBWBytes must be positive", g.Name)
	}
	return nil
}

// UsableBytes is the memory budget available to the engine after the
// utilization reserve.
func (g *GPU) UsableBytes() int64 {
	return int64(float64(g.MemoryBytes) * g.MemoryUtil)
}

// EffectiveFLOPs returns the sustained FLOP/s for matmuls whose weights are
// stored at the given precision width (1 byte → fp8 path when available).
func (g *GPU) EffectiveFLOPs(weightBytes int) float64 {
	t := g.BF16TFLOPs
	if weightBytes == 1 && g.FP8TFLOPs > 0 {
		t = g.FP8TFLOPs
	}
	return t * 1e12 * g.MFU
}

// L4 returns the NVIDIA L4 24GB spec (the paper's low-end GPU).
func L4() *GPU {
	return &GPU{
		Name:                 "NVIDIA L4",
		MemoryBytes:          24 * GiB,
		MemoryUtil:           0.90,
		BF16TFLOPs:           121,
		FP8TFLOPs:            242,
		MFU:                  0.45,
		MemBWBytes:           300e9,
		PeerBWBytes:          14e9, // PCIe gen4 x8, effective
		Link:                 PCIe,
		HostBWBytes:          12e9,
		KernelLaunchOverhead: 8e-6,
	}
}

// A100 returns the NVIDIA A100 40GB PCIe spec (the paper's middle-end GPU).
func A100() *GPU {
	return &GPU{
		Name:                 "NVIDIA A100 40GB PCIe",
		MemoryBytes:          40 * GiB,
		MemoryUtil:           0.92,
		BF16TFLOPs:           312,
		FP8TFLOPs:            0, // Ampere has no fp8 tensor cores
		MFU:                  0.50,
		MemBWBytes:           1.55e12,
		PeerBWBytes:          22e9, // PCIe gen4 x16, effective
		Link:                 PCIe,
		HostBWBytes:          20e9,
		KernelLaunchOverhead: 6e-6,
	}
}

// H100PCIe returns the NVIDIA H100 80GB PCIe spec without NVLink bridges
// (the paper's "H100 w/o NVLink" setup).
func H100PCIe() *GPU {
	return &GPU{
		Name:                 "NVIDIA H100 80GB PCIe",
		MemoryBytes:          80 * GiB,
		MemoryUtil:           0.95,
		BF16TFLOPs:           756,
		FP8TFLOPs:            1513,
		MFU:                  0.50,
		MemBWBytes:           2.0e12,
		PeerBWBytes:          25e9, // PCIe gen5 x16, effective
		Link:                 PCIe,
		HostBWBytes:          22e9,
		KernelLaunchOverhead: 5e-6,
	}
}

// H100NVLink returns the H100 spec with an NVLink bridge between the pair
// (the paper's "H100 w/ NVLink" setup).
func H100NVLink() *GPU {
	g := H100PCIe()
	g.Name = "NVIDIA H100 80GB NVLink"
	g.Link = NVLink
	g.PeerBWBytes = 350e9 // NVLink bridge, effective
	return g
}

// Presets returns the four hardware scenarios of Table 3 keyed by short
// name.
func Presets() map[string]*GPU {
	return map[string]*GPU{
		"l4":          L4(),
		"a100":        A100(),
		"h100":        H100PCIe(),
		"h100-nvlink": H100NVLink(),
	}
}
