package hw

import "testing"

func TestPresetsValidate(t *testing.T) {
	for name, g := range Presets() {
		if err := g.Validate(); err != nil {
			t.Errorf("preset %s: %v", name, err)
		}
	}
}

func TestUsableBytesBelowCapacity(t *testing.T) {
	for name, g := range Presets() {
		if u := g.UsableBytes(); u <= 0 || u >= g.MemoryBytes {
			t.Errorf("%s: usable bytes %d out of (0, %d)", name, u, g.MemoryBytes)
		}
	}
}

func TestEffectiveFLOPsFP8Path(t *testing.T) {
	h := H100PCIe()
	bf16 := h.EffectiveFLOPs(2)
	fp8 := h.EffectiveFLOPs(1)
	if fp8 <= bf16 {
		t.Fatalf("H100 fp8 FLOPs (%g) should exceed bf16 (%g)", fp8, bf16)
	}
	a := A100()
	if a.EffectiveFLOPs(1) != a.EffectiveFLOPs(2) {
		t.Fatal("A100 has no fp8 units; fp8 weights should run at bf16 speed")
	}
}

func TestNVLinkFasterThanPCIe(t *testing.T) {
	if H100NVLink().PeerBWBytes <= H100PCIe().PeerBWBytes {
		t.Fatal("NVLink peer bandwidth must exceed PCIe")
	}
	if H100NVLink().Link != NVLink || H100PCIe().Link != PCIe {
		t.Fatal("link kinds mislabeled")
	}
}

func TestValidateRejectsBadSpecs(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*GPU)
	}{
		{"zero memory", func(g *GPU) { g.MemoryBytes = 0 }},
		{"util > 1", func(g *GPU) { g.MemoryUtil = 1.5 }},
		{"zero flops", func(g *GPU) { g.BF16TFLOPs = 0 }},
		{"zero mfu", func(g *GPU) { g.MFU = 0 }},
		{"zero membw", func(g *GPU) { g.MemBWBytes = 0 }},
		{"zero peer bw", func(g *GPU) { g.PeerBWBytes = 0 }},
		{"zero host bw", func(g *GPU) { g.HostBWBytes = 0 }},
	}
	for _, tc := range cases {
		g := L4()
		tc.mutate(g)
		if err := g.Validate(); err == nil {
			t.Errorf("%s: accepted invalid spec", tc.name)
		}
	}
}

func TestMemoryOrdering(t *testing.T) {
	// L4 < A100 < H100 capacity, matching Table 3.
	if !(L4().MemoryBytes < A100().MemoryBytes && A100().MemoryBytes < H100PCIe().MemoryBytes) {
		t.Fatal("GPU memory capacities out of order vs Table 3")
	}
}

func TestInterconnectString(t *testing.T) {
	if PCIe.String() != "PCIe" || NVLink.String() != "NVLink" {
		t.Fatal("Interconnect.String mismatch")
	}
}
