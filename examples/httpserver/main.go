// HTTP serving end to end: start the OpenAI-compatible PrefillOnly
// frontend on a local port, then act as the application — send three
// recommendation requests for one user and print the scored answers. The
// second and third requests hit the first one's profile prefix in the KV
// cache.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"

	"repro"
)

func main() {
	srv, err := prefillonly.NewServer(prefillonly.ServerConfig{
		Model:       prefillonly.Llama31_8B(),
		GPU:         prefillonly.L4(),
		MaxInputLen: 20000,
		Speedup:     10000, // shrink modelled seconds to sub-millisecond waits
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() { _ = http.Serve(ln, srv.Handler()) }()
	base := "http://" + ln.Addr().String()
	fmt.Println("prefillonly server listening on", base)

	profile := "Here is the user profile: enjoys systems research, kernel internals and database papers; " +
		"ignores fashion and sports content. Here is the document: "
	docs := []string{
		"A deep dive into GPU memory management for LLM inference.",
		"Spring fashion trends you cannot miss this year.",
		"Benchmarking schedulers for prefill-heavy serving workloads.",
	}
	for i, doc := range docs {
		body, _ := json.Marshal(map[string]interface{}{
			"model":          "llama-3.1-8b",
			"prompt":         profile + doc + " Should we recommend this document to this user? Your answer is:",
			"max_tokens":     1,
			"allowed_tokens": []string{"Yes", "No"},
			"user":           "user-1",
		})
		resp, err := http.Post(base+"/v1/completions", "application/json", bytes.NewReader(body))
		if err != nil {
			log.Fatal(err)
		}
		var out struct {
			Choices []struct {
				Text        string             `json:"text"`
				TokenScores map[string]float64 `json:"token_scores"`
			} `json:"choices"`
			SimLatencySeconds float64 `json:"sim_latency_seconds"`
			CachedTokens      int     `json:"cached_tokens"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			log.Fatal(err)
		}
		resp.Body.Close()
		c := out.Choices[0]
		fmt.Printf("doc %d: answer=%-3s P(Yes)=%.3f  modelled latency %.3fs  cached %d tokens\n",
			i+1, c.Text, c.TokenScores["Yes"], out.SimLatencySeconds, out.CachedTokens)
	}
}
