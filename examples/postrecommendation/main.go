// Post recommendation at load: run the paper's WL1-style workload (user
// profiles + candidate posts, heavy prefix reuse) through PrefillOnly and
// through the PagedAttention baseline at the same offered rate, and
// compare latency and prefix-cache behaviour — a miniature of Figure 6's
// post-recommendation panels.
package main

import (
	"fmt"
	"log"

	"repro"
)

func run(engine prefillonly.EngineName, qps float64) (prefillonly.LatencySummary, float64) {
	ds := prefillonly.NewPostRecommendation(prefillonly.PostRecommendationConfig{
		Users:        8,
		PostsPerUser: 25,
		Seed:         42,
	})
	sim, err := prefillonly.NewSimulation(prefillonly.SimulationConfig{
		Engine:      engine,
		Model:       prefillonly.Llama31_8B(),
		GPU:         prefillonly.L4(),
		GPUs:        2,
		MaxInputLen: ds.MaxLen + 100,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := sim.SubmitDataset(ds, qps, 7); err != nil {
		log.Fatal(err)
	}
	records := sim.Run()
	return prefillonly.SummarizeLatencies(records), sim.CacheHitRate()
}

func main() {
	const qps = 20 // well above the FCFS baselines' comfort zone on 2xL4
	fmt.Printf("post recommendation, 8 users x 25 posts, offered load %.0f req/s on 2x L4:\n\n", float64(qps))
	for _, eng := range []prefillonly.EngineName{
		prefillonly.EnginePrefillOnly,
		prefillonly.EnginePagedAttention,
		prefillonly.EngineChunkedPrefill,
	} {
		sum, hit := run(eng, qps)
		fmt.Printf("  %-18s mean %7.2fs   p99 %7.2fs   cache hit rate %3.0f%%\n",
			eng, sum.Mean, sum.P99, 100*hit)
	}
	fmt.Println("\nPrefillOnly's continuous JCT calibration keeps same-profile requests")
	fmt.Println("together, so the prefix cache stays hot while FCFS baselines thrash it.")
}
