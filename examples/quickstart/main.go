// Quickstart: build a two-GPU PrefillOnly cluster, submit a handful of
// prefill-only requests (recommendation-style Yes/No prompts), and print
// latency, cache behaviour, and the scored answers.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	sim, err := prefillonly.NewSimulation(prefillonly.SimulationConfig{
		Engine:      prefillonly.EnginePrefillOnly,
		Model:       prefillonly.Llama31_8B(),
		GPU:         prefillonly.L4(),
		GPUs:        2,
		MaxInputLen: 20000,
	})
	if err != nil {
		log.Fatal(err)
	}

	profile := "User profile: follows distributed systems, databases and operating systems research; " +
		"clicked on twelve scheduling deep-dives last month; skips celebrity news, crypto threads and sports recaps. "
	posts := []string{
		"Post: a walkthrough of an LLM inference engine's KV cache manager.",
		"Post: top ten celebrity outfits of the week.",
		"Post: measuring pipeline bubbles in multi-GPU serving.",
		"Post: a beginner's guide to growing tomatoes indoors.",
	}
	for i, post := range posts {
		prompt := profile + post + " Should we recommend this post to the user? Your answer is:"
		sim.SubmitText(float64(i)*0.05, 1 /* user id */, prompt, []string{"Yes", "No"})
	}

	records := sim.Run()
	fmt.Println("PrefillOnly quickstart — 4 recommendation requests, one user:")
	for _, rec := range records {
		fmt.Printf("  request %d: latency %6.3fs  exec %6.3fs  prefix-cache hit %5d tokens\n",
			rec.Req.ID, rec.Latency(), rec.ExecTime(), rec.CachedTokens)
	}
	sum := prefillonly.SummarizeLatencies(records)
	fmt.Printf("mean latency %.3fs, p99 %.3fs, cluster cache hit rate %.0f%%\n",
		sum.Mean, sum.P99, 100*sim.CacheHitRate())
	fmt.Println("note: request 1 prefills the user profile cold; requests 2-4 reuse its KV prefix.")
}
