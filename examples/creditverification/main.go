// Credit verification with long inputs: show how far each prefill strategy
// can stretch the maximum input length on a single A100 (the paper's
// Table 2 / Figure 10 mechanism), then serve 40k-60k-token credit
// histories through PrefillOnly without parallelizing the model.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/graph"
)

func main() {
	m := prefillonly.Qwen32BFP8()
	g := prefillonly.A100()
	budget := g.UsableBytes() - m.WeightBytes()
	exec := graph.New(m, g)

	fmt.Printf("max input length on one %s serving %s:\n", g.Name, m.Name)
	for _, c := range []struct {
		name string
		opts graph.Options
	}{
		{"standard prefill (vanilla vLLM)", graph.StandardOptions()},
		{"chunked prefill", graph.ChunkedOptions(graph.DefaultChunkSize)},
		{"hybrid prefill + suffix discard (PrefillOnly)", graph.HybridOptions(graph.DefaultChunkSize)},
	} {
		mil, err := exec.MaxInputLength(c.opts, budget)
		if err != nil {
			log.Fatal(err)
		}
		feasible := "cannot hold a 60k-token credit history"
		if mil >= 60000 {
			feasible = "fits the full credit-verification workload"
		}
		fmt.Printf("  %-46s %7d tokens  (%s)\n", c.name, mil, feasible)
	}

	// Serve the actual workload through PrefillOnly.
	ds := prefillonly.NewCreditVerification(prefillonly.CreditVerificationConfig{Users: 12, Seed: 5})
	sim, err := prefillonly.NewSimulation(prefillonly.SimulationConfig{
		Engine:      prefillonly.EnginePrefillOnly,
		Model:       m,
		GPU:         g,
		GPUs:        2,
		MaxInputLen: ds.MaxLen + 100,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := sim.SubmitDataset(ds, 0.2, 11); err != nil {
		log.Fatal(err)
	}
	records := sim.Run()
	sum := prefillonly.SummarizeLatencies(records)
	infeasible := 0
	for _, r := range records {
		if r.Infeasible() {
			infeasible++
		}
	}
	fmt.Printf("\nserved %d credit checks (40k-60k tokens each) at 0.2 req/s on 2x A100:\n", len(records))
	fmt.Printf("  mean latency %.1fs, p99 %.1fs, %d requests needed host-memory spill\n",
		sum.Mean, sum.P99, infeasible)
}
