package prefillonly

// Integration tests: whole-system runs across the public API, checking
// determinism, conservation, and the paper's cross-engine orderings at a
// scale small enough for the regular test suite.

import (
	"math"
	"testing"

	"repro/internal/experiments"
)

// Identical configurations must produce bit-identical latency traces.
func TestIntegrationDeterminism(t *testing.T) {
	run := func() []float64 {
		sim, err := NewSimulation(SimulationConfig{MaxInputLen: 18000})
		if err != nil {
			t.Fatal(err)
		}
		ds := NewPostRecommendation(PostRecommendationConfig{Users: 4, PostsPerUser: 8, Seed: 21})
		if err := sim.SubmitDataset(ds, 8, 5); err != nil {
			t.Fatal(err)
		}
		recs := sim.Run()
		out := make([]float64, len(recs))
		for i, r := range recs {
			out[i] = r.Latency()
		}
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("different completion counts")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("latency %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

// Every engine must conserve requests and never produce negative queueing
// or overlapping executions on a single-instance cluster.
func TestIntegrationEngineSanity(t *testing.T) {
	for _, eng := range []EngineName{
		EnginePrefillOnly, EnginePagedAttention, EngineChunkedPrefill,
		EngineTensorParallel, EnginePipelineParallel,
	} {
		eng := eng
		t.Run(string(eng), func(t *testing.T) {
			sim, err := NewSimulation(SimulationConfig{Engine: eng, GPUs: 2, MaxInputLen: 18000})
			if err != nil {
				t.Fatal(err)
			}
			ds := NewPostRecommendation(PostRecommendationConfig{Users: 4, PostsPerUser: 6, Seed: 3})
			if err := sim.SubmitDataset(ds, 6, 9); err != nil {
				t.Fatal(err)
			}
			recs := sim.Run()
			if len(recs) != len(ds.Requests) {
				t.Fatalf("completed %d of %d", len(recs), len(ds.Requests))
			}
			seen := map[int64]bool{}
			for _, r := range recs {
				if seen[r.Req.ID] {
					t.Fatalf("request %d completed twice", r.Req.ID)
				}
				seen[r.Req.ID] = true
				if r.QueueTime() < -1e-9 || r.ExecTime() <= 0 {
					t.Fatalf("bad record %+v", r)
				}
				if r.Start < r.Arrival-1e-9 {
					t.Fatalf("request started before arrival: %+v", r)
				}
			}
		})
	}
}

// The paper's central cross-engine claim at test scale: at well beyond
// saturation, PrefillOnly's mean latency beats the FCFS baselines on the
// cache-heavy workload.
func TestIntegrationPrefillOnlyWinsUnderLoad(t *testing.T) {
	sc, err := experiments.ScenarioByName("L4")
	if err != nil {
		t.Fatal(err)
	}
	ds := experiments.SmallDataset(experiments.PostRecommendation, 2)
	x, err := experiments.SaturationQPS(experiments.PrefillOnly, sc, ds)
	if err != nil {
		t.Fatal(err)
	}
	means := map[experiments.EngineKind]float64{}
	for _, kind := range []experiments.EngineKind{experiments.PrefillOnly, experiments.PagedAttention, experiments.ChunkedPrefill} {
		res, err := experiments.Run(experiments.RunConfig{
			Kind: kind, Scenario: sc, Dataset: ds, QPS: 3 * x, Seed: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		means[kind] = res.Latency.Mean
	}
	if means[experiments.PrefillOnly] >= means[experiments.PagedAttention] {
		t.Errorf("PrefillOnly %.2fs not below PagedAttention %.2fs at 3x saturation",
			means[experiments.PrefillOnly], means[experiments.PagedAttention])
	}
	if means[experiments.PrefillOnly] >= means[experiments.ChunkedPrefill] {
		t.Errorf("PrefillOnly %.2fs not below ChunkedPrefill %.2fs at 3x saturation",
			means[experiments.PrefillOnly], means[experiments.ChunkedPrefill])
	}
}

// Offload integration through the public API: enabling the host tier must
// not change correctness and should restore tokens under cache pressure.
func TestIntegrationHostOffload(t *testing.T) {
	run := func(host int64) (int, float64) {
		sim, err := NewSimulation(SimulationConfig{MaxInputLen: 18000, HostCacheBytes: host})
		if err != nil {
			t.Fatal(err)
		}
		ds := NewPostRecommendation(PostRecommendationConfig{Users: 10, PostsPerUser: 8, Seed: 31})
		if err := sim.SubmitDataset(ds, 12, 7); err != nil {
			t.Fatal(err)
		}
		recs := sim.Run()
		restored := 0
		for _, r := range recs {
			restored += r.RestoredTokens
		}
		return restored, SummarizeLatencies(recs).Mean
	}
	r0, _ := run(0)
	if r0 != 0 {
		t.Fatalf("restored %d tokens with offloading disabled", r0)
	}
	r1, mean1 := run(64 << 30)
	if r1 == 0 {
		t.Skip("no cache pressure at this scale; offload path untriggered")
	}
	if math.IsNaN(mean1) || mean1 <= 0 {
		t.Fatalf("bad mean %v", mean1)
	}
}

// The simulated clock must never run backwards across a full run.
func TestIntegrationMonotoneFinishTimes(t *testing.T) {
	sim, err := NewSimulation(SimulationConfig{MaxInputLen: 18000})
	if err != nil {
		t.Fatal(err)
	}
	ds := NewPostRecommendation(PostRecommendationConfig{Users: 3, PostsPerUser: 6, Seed: 4})
	if err := sim.SubmitDataset(ds, 10, 2); err != nil {
		t.Fatal(err)
	}
	recs := sim.Run()
	prev := 0.0
	for _, r := range recs {
		if r.Finish < prev {
			t.Fatalf("finish times not monotone: %v after %v", r.Finish, prev)
		}
		prev = r.Finish
	}
}
