package prefillonly

// Flight-recorder integration tests: a traced routing run must attribute
// every request's JCT exactly across its queue and exec spans, export
// Perfetto-loadable JSON, and — the observability bargain — change nothing
// about the simulation it observes.

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"repro/internal/trace"
)

func tracedRoutedRun(t *testing.T, spans int) (*Simulation, []Record) {
	t.Helper()
	sim, err := NewSimulation(SimulationConfig{
		RoutingPolicy: "affinity",
		MaxInputLen:   18000,
		TraceSpans:    spans,
	})
	if err != nil {
		t.Fatal(err)
	}
	ds := NewPostRecommendation(PostRecommendationConfig{Users: 4, PostsPerUser: 8, Seed: 21})
	if err := sim.SubmitDataset(ds, 8, 5); err != nil {
		t.Fatal(err)
	}
	return sim, sim.Run()
}

// TestTraceAttributionMatchesJCT is the acceptance check: for every
// completed request — the p99 tail request in particular — the queue span
// plus the exec span must sum to the recorded JCT within float tolerance,
// with the exec span ending at the completion instant. A request's time is
// fully accounted; nothing leaks between spans.
func TestTraceAttributionMatchesJCT(t *testing.T) {
	sim, recs := tracedRoutedRun(t, -1)
	rec := sim.Trace()
	if rec == nil {
		t.Fatal("TraceSpans set but Trace() is nil")
	}
	type attributed struct{ queue, exec, execEnd float64 }
	byReq := make(map[int64]*attributed)
	for _, s := range rec.Spans() {
		a := byReq[s.ReqID]
		if a == nil {
			a = &attributed{}
			byReq[s.ReqID] = a
		}
		switch s.Kind {
		case trace.KindQueue:
			a.queue += s.Dur
		case trace.KindExec:
			a.exec += s.Dur
			a.execEnd = s.End()
		}
	}
	var tail Record
	for _, r := range recs {
		if r.Latency() > tail.Latency() {
			tail = r
		}
	}
	checked := 0
	for _, r := range recs {
		a := byReq[r.Req.ID]
		if a == nil || a.exec == 0 {
			t.Fatalf("request %d completed with no exec span", r.Req.ID)
		}
		if sum := a.queue + a.exec; math.Abs(sum-r.Latency()) > 1e-9 {
			t.Fatalf("request %d: queue %.9gs + exec %.9gs = %.9gs != JCT %.9gs",
				r.Req.ID, a.queue, a.exec, sum, r.Latency())
		}
		if math.Abs(a.execEnd-r.Finish) > 1e-9 {
			t.Fatalf("request %d: exec ends at %.9g, completed at %.9g", r.Req.ID, a.execEnd, r.Finish)
		}
		checked++
	}
	if checked != len(recs) || checked == 0 {
		t.Fatalf("attributed %d of %d requests", checked, len(recs))
	}
	if a := byReq[tail.Req.ID]; math.Abs(a.queue+a.exec-tail.Latency()) > 1e-9 {
		t.Fatalf("tail request %d not fully attributed", tail.Req.ID)
	}
	// The sampler must have emitted fleet gauges on sim ticks.
	if rec.Emitted(trace.KindLoadGauge) == 0 || rec.Emitted(trace.KindCacheGauge) == 0 {
		t.Fatal("no gauge samples: the trace sampler never ticked")
	}
}

// TestTraceExportWellFormed renders the traced run as Chrome trace JSON
// and checks it parses with spans present — what Perfetto will load.
func TestTraceExportWellFormed(t *testing.T) {
	sim, _ := tracedRoutedRun(t, -1)
	var buf bytes.Buffer
	if err := sim.Trace().WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []struct {
			Ph string `json:"ph"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v", err)
	}
	spans := 0
	for _, ev := range file.TraceEvents {
		if ev.Ph == "X" {
			spans++
		}
	}
	if spans == 0 {
		t.Fatal("exported trace has no complete spans")
	}
}

// TestTracingDoesNotPerturbSimulation runs the same workload with and
// without the recorder: latencies must be bit-identical. Observability
// must observe, not steer.
func TestTracingDoesNotPerturbSimulation(t *testing.T) {
	_, plain := tracedRoutedRun(t, 0)
	_, traced := tracedRoutedRun(t, -1)
	if len(plain) != len(traced) {
		t.Fatalf("completion counts differ: %d vs %d", len(plain), len(traced))
	}
	for i := range plain {
		if plain[i].Latency() != traced[i].Latency() || plain[i].Req.ID != traced[i].Req.ID {
			t.Fatalf("record %d diverged under tracing: %+v vs %+v", i, plain[i], traced[i])
		}
	}
}

// TestTracePipelineStages checks pass-stage attribution on the
// pipeline-parallel engine: stage spans nest inside their exec span and
// tile it exactly (stage0 + handoff wait + stage1 = the whole pass).
func TestTracePipelineStages(t *testing.T) {
	sim, err := NewSimulation(SimulationConfig{
		Engine:      EnginePipelineParallel,
		GPUs:        2,
		MaxInputLen: 18000,
		TraceSpans:  -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ds := NewPostRecommendation(PostRecommendationConfig{Users: 3, PostsPerUser: 4, Seed: 9})
	if err := sim.SubmitDataset(ds, 6, 3); err != nil {
		t.Fatal(err)
	}
	recs := sim.Run()
	type passParts struct {
		exec, stages  float64
		start, end    float64
		stageInbounds bool
	}
	byReq := make(map[int64]*passParts)
	for _, s := range sim.Trace().Spans() {
		p := byReq[s.ReqID]
		if p == nil {
			p = &passParts{stageInbounds: true}
			byReq[s.ReqID] = p
		}
		switch s.Kind {
		case trace.KindExec:
			p.exec = s.Dur
			p.start, p.end = s.Start, s.End()
		case trace.KindStage:
			p.stages += s.Dur
		}
	}
	// Second pass for nesting (exec span may arrive after stages in the
	// ring — finish emits it last).
	for _, s := range sim.Trace().Spans() {
		if s.Kind != trace.KindStage {
			continue
		}
		p := byReq[s.ReqID]
		if s.Start < p.start-1e-9 || s.End() > p.end+1e-9 {
			p.stageInbounds = false
		}
	}
	for _, r := range recs {
		p := byReq[r.Req.ID]
		if p == nil || p.exec == 0 {
			t.Fatalf("request %d has no exec span", r.Req.ID)
		}
		if p.stages == 0 {
			t.Fatalf("request %d has no pass-stage spans", r.Req.ID)
		}
		if math.Abs(p.stages-p.exec) > 1e-9 {
			t.Fatalf("request %d: stages sum %.9g != exec %.9g", r.Req.ID, p.stages, p.exec)
		}
		if !p.stageInbounds {
			t.Fatalf("request %d: stage span escapes its exec span", r.Req.ID)
		}
	}
}
