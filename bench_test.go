package prefillonly

// One benchmark per table and figure of the paper's evaluation, plus
// ablation benches for the design choices DESIGN.md calls out. Each bench
// regenerates its artifact through internal/experiments and prints the
// rows once, so `go test -bench=. -benchmem` reproduces the entire
// evaluation and EXPERIMENTS.md can be checked against the output.

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/experiments"
	"repro/internal/graph"
	"repro/internal/hw"
	"repro/internal/model"
)

// printOnce guards each bench's row dump so repeated b.N iterations don't
// spam the output.
var printOnce sync.Map

func once(name string, fn func()) {
	if _, loaded := printOnce.LoadOrStore(name, true); !loaded {
		fn()
	}
}

func BenchmarkTable1DatasetSummary(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table1(1)
		once("table1", func() {
			fmt.Println("\n[Table 1] dataset summary")
			for _, r := range rows {
				fmt.Printf("  %-22s users=%d requests=%d req/user=%d meanLen=%.0f total=%d tokens\n",
					r.Dataset, r.Users, r.Requests, r.RequestsPerUser, r.MeanLen, r.TotalTokens)
			}
		})
	}
}

func BenchmarkTable2MaxInputLength(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table2()
		if err != nil {
			b.Fatal(err)
		}
		once("table2", func() {
			fmt.Println("\n[Table 2] max input length (tokens); paper values in parentheses")
			paper := map[string]string{
				"PagedAttention/L4": "24,000", "PagedAttention/A100": "11,000", "PagedAttention/H100": "15,000",
				"ChunkedPrefill/L4": "46,000", "ChunkedPrefill/A100": "17,000", "ChunkedPrefill/H100": "25,000",
				"PipelineParallel/L4": "72,000", "PipelineParallel/A100": "38,000", "PipelineParallel/H100": "183,000",
				"TensorParallel/L4": "195,000", "TensorParallel/A100": "77,000", "TensorParallel/H100": "238,000",
				"PrefillOnly/L4": "130,000", "PrefillOnly/A100": "87,000", "PrefillOnly/H100": "97,000",
			}
			for _, r := range rows {
				key := r.Engine.String() + "/" + r.Scenario
				fmt.Printf("  %-18s %-6s MIL=%-7d WL1=%-5v WL2=%-5v (paper %s)\n",
					r.Engine, r.Scenario, r.MIL, r.WL1OK, r.WL2OK, paper[key])
			}
		})
	}
}

func BenchmarkTable3HardwareCatalog(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table3()
		once("table3", func() {
			fmt.Println("\n[Table 3] hardware and models")
			for _, r := range rows {
				fmt.Printf("  %-12s 2x %-24s %3.0f GiB %-6s %s (%.1f GiB weights)\n",
					r.Scenario, r.GPUName, r.MemoryGiB, r.Interconnect, r.ModelName, r.WeightGiB)
			}
		})
	}
}

func BenchmarkFigure3MemoryTrace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure3()
		if err != nil {
			b.Fatal(err)
		}
		once("fig3", func() {
			gib := func(v int64) float64 { return float64(v) / (1 << 30) }
			fmt.Println("\n[Figure 3] 32,768-token prefill memory trace, Llama-3.1-8B")
			fmt.Printf("  standard peak %.2f GiB above weights; hybrid peak %.2f GiB; saving %.2f GiB (paper: ~2 GB)\n",
				gib(res.StandardPeak), gib(res.HybridPeak), gib(res.StandardPeak-res.HybridPeak))
			fmt.Printf("  trace events: standard %d, hybrid %d\n", len(res.Standard), len(res.Hybrid))
		})
	}
}

func BenchmarkFigure4MLPTensorSizes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Figure4()
		once("fig4", func() {
			fmt.Println("\n[Figure 4] MLP tensor sizes, 32,768 tokens, Llama-3.1-8B")
			for _, r := range rows {
				fmt.Printf("  %-26s %6dx%-6d %6.0f MiB  %4.1fx one-layer KV\n",
					r.Tensor, r.Shape[0], r.Shape[1], float64(r.Bytes)/(1<<20), r.VsOneLayerKV)
			}
		})
	}
}

func BenchmarkFigure5SchedulingExample(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure5()
		if err != nil {
			b.Fatal(err)
		}
		once("fig5", func() {
			fmt.Println("\n[Figure 5] scheduling walkthrough (paper: FIFO=1 hit, SRJF=1, calibrated=2)")
			for _, r := range rows {
				fmt.Printf("  %-18s order=%-10s hits=%d\n", r.Policy, strings.Join(r.Order, ","), r.CacheHits)
			}
		})
	}
}

// qpsGrid runs the full Figure-6/7 grid (2 datasets x 4 hardware setups x
// 5 engines x 6 rates) once and caches it for both benches.
var (
	gridOnce   sync.Once
	gridPanels []*experiments.QPSLatencyPanel
	gridErr    error
)

func qpsGrid() ([]*experiments.QPSLatencyPanel, error) {
	gridOnce.Do(func() {
		for _, sc := range experiments.Scenarios() {
			for _, ds := range []experiments.DatasetKind{experiments.PostRecommendation, experiments.CreditVerification} {
				panel, err := experiments.QPSLatency(sc, ds, nil, 1)
				if err != nil {
					gridErr = err
					return
				}
				gridPanels = append(gridPanels, panel)
			}
		}
	})
	return gridPanels, gridErr
}

func printGrid(metric string, get func(experiments.QPSLatencyPoint) float64, panels []*experiments.QPSLatencyPanel) {
	for _, p := range panels {
		fmt.Printf("  panel %s / %s (saturation %.3f req/s)\n", p.Scenario, p.Dataset, p.SaturationQPS)
		var last experiments.EngineKind = -1
		for _, pt := range p.Points {
			if pt.Engine != last {
				fmt.Printf("    %s:\n", pt.Engine)
				last = pt.Engine
			}
			fmt.Printf("      qps %8.3f  %s %9.2fs  tput %7.3f  hit %4.2f  infeasible %4.2f\n",
				pt.QPS, metric, get(pt), pt.ThroughputRPS, pt.CacheHitRate, pt.InfeasibleFrac)
		}
	}
}

func BenchmarkFigure6QPSMeanLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		panels, err := qpsGrid()
		if err != nil {
			b.Fatal(err)
		}
		once("fig6", func() {
			fmt.Println("\n[Figure 6] QPS vs mean latency, all panels")
			printGrid("mean", func(p experiments.QPSLatencyPoint) float64 { return p.MeanLatency }, panels)
		})
	}
}

func BenchmarkFigure7QPSP99Latency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		panels, err := qpsGrid()
		if err != nil {
			b.Fatal(err)
		}
		once("fig7", func() {
			fmt.Println("\n[Figure 7] QPS vs P99 latency, all panels")
			printGrid("p99", func(p experiments.QPSLatencyPoint) float64 { return p.P99Latency }, panels)
		})
	}
}

func BenchmarkFigure8ThroughputNVLink(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure8(1)
		if err != nil {
			b.Fatal(err)
		}
		once("fig8", func() {
			fmt.Println("\n[Figure 8] credit-verification throughput, 2xH100 (paper: PrefillOnly highest both ways)")
			for _, r := range rows {
				link := "PCIe"
				if r.NVLink {
					link = "NVLink"
				}
				fmt.Printf("  %-18s %-6s %.4f req/s\n", r.Engine, link, r.ThroughputRPS)
			}
		})
	}
}

func BenchmarkFigure9ThroughputThrottling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure9(1)
		if err != nil {
			b.Fatal(err)
		}
		once("fig9", func() {
			fmt.Println("\n[Figure 9] post-rec throughput vs offered QPS, 2xH100 PCIe (paper: chunked throttles, PrefillOnly sustains)")
			for _, r := range rows {
				fmt.Printf("  %-18s offered %7.2f  tput %7.3f  hit %4.2f\n",
					r.Engine, r.QPS, r.ThroughputRPS, r.CacheHitRate)
			}
		})
	}
}

func BenchmarkFigure10HybridPrefillAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure10()
		if err != nil {
			b.Fatal(err)
		}
		once("fig10", func() {
			fmt.Println("\n[Figure 10] MIL ablation, Qwen-2.5-32B FP8 on A100 (paper: 7.9x vanilla)")
			base := rows[0].MIL
			for _, r := range rows {
				fmt.Printf("  %-26s %7d tokens (%.1fx vanilla)\n", r.Config, r.MIL, float64(r.MIL)/float64(base))
			}
		})
	}
}

func BenchmarkFigure11FairnessCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		curves, err := experiments.Figure11(1)
		if err != nil {
			b.Fatal(err)
		}
		once("fig11", func() {
			fmt.Println("\n[Figure 11] latency CDF vs λ (paper: larger λ → better P99, worse mean)")
			for _, c := range curves {
				fmt.Printf("  λ=%-5.0f mean %6.2fs  p99 %6.2fs  (%d CDF points)\n",
					c.Lambda, c.MeanLatency, c.P99Latency, len(c.CDF))
			}
		})
	}
}

func BenchmarkSection23PrefillVsDecode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Section23(64)
		if err != nil {
			b.Fatal(err)
		}
		once("sec23", func() {
			fmt.Println("\n[§2.3] 2048-in/1-out vs 2048-in/256-out, Llama-3.1-8B on H100")
			fmt.Printf("  prefill-only %.3fs, generative %.3fs, slowdown %.2fx (paper: ~1.5x)\n",
				res.PrefillSeconds, res.GenerativeSeconds, res.Slowdown)
		})
	}
}

func BenchmarkSection63JCTProxyCorrelation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Section63()
		if err != nil {
			b.Fatal(err)
		}
		once("sec63", func() {
			fmt.Printf("\n[§6.3] Pearson(JCT, cache-miss tokens) = %.4f over %d grid points (paper: 0.987)\n",
				res.Pearson, res.Points)
		})
	}
}

// --- Ablations beyond the paper's figures (design choices from DESIGN.md) ---

// BenchmarkAblationCalibrationOnOff isolates the scheduler: PrefillOnly
// with continuous calibration vs frozen-at-arrival SRJF vs FCFS, same
// hybrid executor, post-recommendation at 2x saturation.
func BenchmarkAblationCalibrationOnOff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sc, err := experiments.ScenarioByName("L4")
		if err != nil {
			b.Fatal(err)
		}
		ds := experiments.SmallDataset(experiments.PostRecommendation, 1)
		x, err := experiments.SaturationQPS(experiments.PrefillOnly, sc, ds)
		if err != nil {
			b.Fatal(err)
		}
		type row struct {
			name string
			kind experiments.EngineKind
		}
		res1, err := experiments.Run(experiments.RunConfig{Kind: experiments.PrefillOnly, Scenario: sc, Dataset: ds, QPS: 2 * x, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		res2, err := experiments.Run(experiments.RunConfig{Kind: experiments.PagedAttention, Scenario: sc, Dataset: ds, QPS: 2 * x, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		_ = []row{}
		once("ablation-calibration", func() {
			fmt.Println("\n[Ablation] scheduling policy at 2x saturation (small WL1, 2xL4)")
			fmt.Printf("  calibrated (PrefillOnly): mean %6.2fs  hit %4.2f\n", res1.Latency.Mean, res1.CacheHitRate)
			fmt.Printf("  FCFS (PagedAttention):    mean %6.2fs  hit %4.2f\n", res2.Latency.Mean, res2.CacheHitRate)
		})
	}
}

// BenchmarkAblationSuffixDiscardMIL isolates KV retention: hybrid
// prefilling with full KV retention vs one-layer retention.
func BenchmarkAblationSuffixDiscardMIL(b *testing.B) {
	m := model.Llama31_8B()
	g := hw.L4()
	exec := graph.New(m, g)
	budget := g.UsableBytes() - m.WeightBytes()
	for i := 0; i < b.N; i++ {
		retain := graph.Options{Mode: graph.Hybrid, ChunkSize: graph.DefaultChunkSize,
			KV: graph.RetainAll, OutputPrealloc: true, InPlace: true}
		milRetain, err := exec.MaxInputLength(retain, budget)
		if err != nil {
			b.Fatal(err)
		}
		milDiscard, err := exec.MaxInputLength(graph.HybridOptions(graph.DefaultChunkSize), budget)
		if err != nil {
			b.Fatal(err)
		}
		once("ablation-suffix", func() {
			fmt.Println("\n[Ablation] suffix KV discarding (Llama-3.1-8B on L4)")
			fmt.Printf("  hybrid, full KV retained: MIL %7d tokens\n", milRetain)
			fmt.Printf("  hybrid, one-layer KV:     MIL %7d tokens (%.1fx)\n",
				milDiscard, float64(milDiscard)/float64(milRetain))
		})
	}
}

// BenchmarkAblationChunkSize sweeps the hybrid chunk size: smaller chunks
// shrink memory but add launch overhead.
func BenchmarkAblationChunkSize(b *testing.B) {
	m := model.Llama31_8B()
	g := hw.L4()
	exec := graph.New(m, g)
	budget := g.UsableBytes() - m.WeightBytes()
	for i := 0; i < b.N; i++ {
		type row struct {
			chunk int
			mil   int
			secs  float64
		}
		var rows []row
		for _, chunk := range []int{128, 256, 512, 1024, 2048} {
			mil, err := exec.MaxInputLength(graph.HybridOptions(chunk), budget)
			if err != nil {
				b.Fatal(err)
			}
			secs, err := exec.EstimateSeconds(graph.PassSpec{Total: 32768}, graph.HybridOptions(chunk))
			if err != nil {
				b.Fatal(err)
			}
			rows = append(rows, row{chunk, mil, secs})
		}
		once("ablation-chunk", func() {
			fmt.Println("\n[Ablation] hybrid chunk size (Llama-3.1-8B on L4, 32k-token pass)")
			for _, r := range rows {
				fmt.Printf("  chunk %5d: MIL %7d tokens, pass %6.3fs\n", r.chunk, r.mil, r.secs)
			}
		})
	}
}

// BenchmarkAblationLambdaSweep extends Figure 11 with a denser λ sweep.
func BenchmarkAblationLambdaSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sc, err := experiments.ScenarioByName("L4")
		if err != nil {
			b.Fatal(err)
		}
		ds := experiments.SmallDataset(experiments.PostRecommendation, 1)
		x, err := experiments.SaturationQPS(experiments.PrefillOnly, sc, ds)
		if err != nil {
			b.Fatal(err)
		}
		type row struct {
			lambda    float64
			mean, p99 float64
		}
		var rows []row
		for _, lambda := range []float64{-1, 100, 500, 1000, 5000} {
			res, err := experiments.Run(experiments.RunConfig{
				Kind: experiments.PrefillOnly, Scenario: sc, Dataset: ds,
				QPS: x, Seed: 1, Lambda: lambda,
			})
			if err != nil {
				b.Fatal(err)
			}
			shown := lambda
			if lambda < 0 {
				shown = 0
			}
			rows = append(rows, row{shown, res.Latency.Mean, res.Latency.P99})
		}
		once("ablation-lambda", func() {
			fmt.Println("\n[Ablation] λ sweep at saturation (small WL1, 2xL4)")
			for _, r := range rows {
				fmt.Printf("  λ=%-5.0f mean %6.2fs  p99 %6.2fs\n", r.lambda, r.mean, r.p99)
			}
		})
	}
}

// BenchmarkAblationHostOffload evaluates the §9 extension: PrefillOnly
// with KV discarding vs with a 64 GiB host offload tier, on a
// post-recommendation load whose working set overflows the GPU pool.
func BenchmarkAblationHostOffload(b *testing.B) {
	run := func(hostBytes int64) (mean float64, restored int) {
		sim, err := NewSimulation(SimulationConfig{
			Engine:         EnginePrefillOnly,
			GPUs:           2,
			MaxInputLen:    18000,
			HostCacheBytes: hostBytes,
		})
		if err != nil {
			b.Fatal(err)
		}
		ds := NewPostRecommendation(PostRecommendationConfig{Users: 24, PostsPerUser: 12, Seed: 9})
		if err := sim.SubmitDataset(ds, 60, 3); err != nil {
			b.Fatal(err)
		}
		recs := sim.Run()
		for _, r := range recs {
			restored += r.RestoredTokens
		}
		return SummarizeLatencies(recs).Mean, restored
	}
	for i := 0; i < b.N; i++ {
		discardMean, _ := run(0)
		offloadMean, restored := run(64 * 1 << 30)
		once("ablation-offload", func() {
			fmt.Println("\n[Ablation §9] suffix discard vs CPU offload (24 users x 12 posts at 60 req/s, 2xL4)")
			fmt.Printf("  discard (paper default): mean %6.2fs\n", discardMean)
			fmt.Printf("  64 GiB host offload:     mean %6.2fs, %d tokens restored from host\n",
				offloadMean, restored)
		})
	}
}

// BenchmarkRoutingPolicies compares the cluster routing policies
// (UserHash baseline, LeastLoaded, AffinityLoad) on Zipf-skewed and
// uniform arrivals: 4 PrefillOnly instances on L4 near aggregate
// saturation (the internal/router subsystem's headline comparison).
func BenchmarkRoutingPolicies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RoutingSweep(1, true)
		if err != nil {
			b.Fatal(err)
		}
		once("routing", func() {
			fmt.Println("\n[Routing] policy comparison, 4x PrefillOnly on L4 (affinity: lower mean on skew, parity on uniform)")
			for _, r := range rows {
				fmt.Printf("  %-22s %-12s qps %6.2f  mean %6.3fs  p99 %6.3fs  hit %4.2f  balance %5.2f  rejected %d\n",
					r.Dataset, r.Policy, r.QPS, r.MeanJCT, r.P99JCT, r.CacheHitRate, r.BalanceRatio, r.Rejected)
			}
		})
	}
}

// BenchmarkEngineDispatchOverhead measures the raw per-request scheduling
// cost of the PrefillOnly engine (hashing, pinning, calibration, insert) —
// the engine-side CPU work per request, independent of modelled GPU time.
func BenchmarkEngineDispatchOverhead(b *testing.B) {
	sc, err := experiments.ScenarioByName("L4")
	if err != nil {
		b.Fatal(err)
	}
	ds := experiments.SmallDataset(experiments.PostRecommendation, 1)
	b.ResetTimer()
	reqs := 0
	for i := 0; i < b.N; i++ {
		res, err := experiments.Run(experiments.RunConfig{
			Kind: experiments.PrefillOnly, Scenario: sc, Dataset: ds, QPS: 0, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		reqs += res.Completed
	}
	b.ReportMetric(float64(reqs)/float64(b.N), "requests/op")
}
