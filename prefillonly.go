// Package prefillonly is a Go reproduction of "PrefillOnly: An Inference
// Engine for Prefill-only Workloads in Large Language Model Applications"
// (SOSP 2025).
//
// The package exposes three surfaces:
//
//   - Simulation: build a cluster of serving engines (PrefillOnly or the
//     paper's four baselines) on modelled GPUs, drive it with workloads,
//     and collect per-request latency records. Everything is deterministic
//     and runs on a discrete-event clock.
//   - Serving: an OpenAI-compatible HTTP frontend (NewServer) that
//     tokenizes prompts, schedules them through PrefillOnly's calibrated
//     SRJF policy with prefix caching, and returns constrained
//     single-token completions with probability scores.
//   - Catalogs: the paper's model and GPU presets (Models, GPUs) and
//     workload generators (NewPostRecommendation, NewCreditVerification).
//
// See DESIGN.md for the architecture and EXPERIMENTS.md for the
// paper-versus-measured record of every table and figure.
package prefillonly

import (
	"repro/internal/autoscale"
	"repro/internal/engine"
	"repro/internal/hw"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/sched"
	"repro/internal/timeseries"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Request is a prefill-only request: a tokenized prompt with a user
// identity (for routing and prefix sharing), an SLO class, and an
// optional allowed-token output constraint.
type Request = sched.Request

// Class is a request's SLO class: latency-sensitive interactive traffic
// versus throughput-oriented batch traffic. Classes select admission
// budgets (SimulationConfig.ClassBacklogSeconds), scheduling weights
// (SimulationConfig.ClassWeights) and autoscale treatment (only
// interactive pressure provisions capacity).
type Class = sched.Class

// The SLO classes. Unlabeled requests are interactive (the zero value),
// so single-tenant workloads behave exactly as before classes existed.
const (
	ClassInteractive = sched.ClassInteractive
	ClassBatch       = sched.ClassBatch
)

// ParseClass maps a label ("", "interactive", "batch") to its Class.
func ParseClass(s string) (Class, error) { return sched.ParseClass(s) }

// Record is the completion report of one request: arrival/start/finish
// timestamps, cache-hit length and spill accounting.
type Record = engine.Record

// ModelConfig describes a transformer architecture (layers, heads, MLP
// width, precisions) and derives every tensor size the engines account.
type ModelConfig = model.Config

// GPUSpec describes a device for the analytical performance model.
type GPUSpec = hw.GPU

// Dataset is a generated request population.
type Dataset = workload.Dataset

// Arrival pairs a request with its arrival time.
type Arrival = workload.Arrival

// LatencySummary holds order statistics of request latencies.
type LatencySummary = metrics.Summary

// TraceRecorder is the sim-time flight recorder
// (SimulationConfig.TraceSpans, ServerConfig.TraceSpans): a bounded ring
// of per-request lifecycle spans and fleet gauges. Its WriteTrace renders
// Chrome trace-event JSON loadable in Perfetto or chrome://tracing.
type TraceRecorder = trace.Recorder

// TraceSpan is one flight-recorder record.
type TraceSpan = trace.Span

// TimeseriesCollector is the windowed sim-time aggregation engine
// (SimulationConfig.TimeseriesSeconds, ServerConfig.TimeseriesSeconds):
// per-window throughput, arrival and shed rates, streaming latency
// quantiles, fleet gauges and per-class SLO attainment/burn rate.
type TimeseriesCollector = timeseries.Collector

// TimeseriesExport is the serialized series: configuration header plus
// one row per closed window (and a partial row for the open one in
// snapshots).
type TimeseriesExport = timeseries.Export

// TimeseriesWindow is one aggregation interval's row.
type TimeseriesWindow = timeseries.Window

// Model presets (Table 3 of the paper).
var (
	// Llama31_8B is meta-llama/Llama-3.1-8B (bf16).
	Llama31_8B = model.Llama31_8B
	// Qwen32BFP8 is DeepSeek-R1-Distill-Qwen-32B in FP8.
	Qwen32BFP8 = model.Qwen32BFP8
	// Llama33_70BFP8 is Llama-3.3-70B-Instruct in FP8.
	Llama33_70BFP8 = model.Llama33_70BFP8
)

// GPU presets (Table 3 of the paper).
var (
	// L4 is the NVIDIA L4 24 GB.
	L4 = hw.L4
	// A100 is the NVIDIA A100 40 GB PCIe.
	A100 = hw.A100
	// H100 is the NVIDIA H100 80 GB PCIe.
	H100 = hw.H100PCIe
	// H100NVLink is the H100 with an NVLink bridge.
	H100NVLink = hw.H100NVLink
)

// Models returns the model presets keyed by short name.
func Models() map[string]*ModelConfig { return model.Presets() }

// GPUs returns the GPU presets keyed by short name.
func GPUs() map[string]*GPUSpec { return hw.Presets() }

// PostRecommendationConfig parameterizes NewPostRecommendation; zero
// values take the paper's Table-1 numbers.
type PostRecommendationConfig = workload.PostRecommendationConfig

// CreditVerificationConfig parameterizes NewCreditVerification; zero
// values take the paper's Table-1 numbers.
type CreditVerificationConfig = workload.CreditVerificationConfig

// SkewedConfig parameterizes NewSkewed, the Zipf user-popularity scenario
// for routing experiments.
type SkewedConfig = workload.SkewedConfig

// ClassMixConfig parameterizes NewClassMix, the two-class SLO workload
// (Zipf-skewed interactive traffic mixed with long batch documents).
type ClassMixConfig = workload.ClassMixConfig

// AutoscaleConfig tunes the elastic instance pool
// (SimulationConfig.Autoscale): floor/ceiling, control tick, backlog and
// reject-rate triggers, and the cold-start delay (derived from the model
// and GPU catalogs when unset).
type AutoscaleConfig = autoscale.Config

// RateFn is a time-varying offered load in requests/second for the
// open-loop arrival generators.
type RateFn = workload.RateFn

// ColdStartSeconds prices bringing up one engine instance: streaming the
// model weights onto the device over the host PCIe link, plus the peer
// (PCIe/NVLink) shard exchange for multi-GPU instances.
func ColdStartSeconds(m *ModelConfig, g *GPUSpec, gpus int) float64 {
	return autoscale.ColdStartSeconds(m, g, gpus)
}

// NewPostRecommendation generates the paper's post-recommendation dataset
// (20 users × 50 posts over 11k–17k-token profiles).
func NewPostRecommendation(cfg PostRecommendationConfig) *Dataset {
	return workload.PostRecommendation(cfg)
}

// NewCreditVerification generates the paper's credit-verification dataset
// (60 users × one 40k–60k-token history).
func NewCreditVerification(cfg CreditVerificationConfig) *Dataset {
	return workload.CreditVerification(cfg)
}

// NewSkewed generates the Zipf-skewed user-popularity dataset: a few hot
// users dominate traffic, which is what differentiates routing policies
// (see SimulationConfig.RoutingPolicy).
func NewSkewed(cfg SkewedConfig) *Dataset {
	return workload.Skewed(cfg)
}

// NewClassMix generates the two-class SLO dataset: Zipf-skewed
// interactive traffic interleaved with long batch documents, each request
// labeled with its Class (see SimulationConfig.ClassBacklogSeconds and
// ClassWeights).
func NewClassMix(cfg ClassMixConfig) *Dataset {
	return workload.ClassMix(cfg)
}

// AssignPoissonArrivals stamps the paper's §7.1 arrival pattern onto a
// dataset at the given requests-per-second rate and returns the arrivals
// sorted by time.
func AssignPoissonArrivals(d *Dataset, qps float64, seed int64) ([]Arrival, error) {
	return workload.AssignPoissonArrivals(d, qps, seed)
}

// AssignOpenLoopArrivals stamps arrivals from a non-homogeneous Poisson
// process with the time-varying rate (bounded by maxRate) onto a dataset —
// the bursty/diurnal open-loop traffic the autoscale experiments use. See
// SquareWaveRate and DiurnalRate for rate profiles.
func AssignOpenLoopArrivals(d *Dataset, rate RateFn, maxRate float64, seed int64) ([]Arrival, error) {
	return workload.AssignOpenLoopArrivals(d, rate, maxRate, seed)
}

// SquareWaveRate alternates between base and peak requests/second with
// the given period and duty cycle (the burst autoscaling scenario).
func SquareWaveRate(base, peak, period, duty float64) RateFn {
	return workload.SquareWaveRate(base, peak, period, duty)
}

// DiurnalRate is a smooth day/night cycle between base and peak
// requests/second with the given period.
func DiurnalRate(base, peak, period float64) RateFn {
	return workload.DiurnalRate(base, peak, period)
}

// SummarizeLatencies computes order statistics over records' end-to-end
// latencies.
func SummarizeLatencies(records []Record) LatencySummary {
	xs := make([]float64, len(records))
	for i, r := range records {
		xs[i] = r.Latency()
	}
	return metrics.Summarize(xs)
}
