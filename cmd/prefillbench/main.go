// Command prefillbench regenerates the paper's tables and figures from the
// simulation harness and prints them as aligned text tables.
//
// Usage:
//
//	prefillbench -exp table1|table2|table3|fig3|fig4|fig5|fig6|fig7|fig8|fig9|fig10|fig11|sec2.3|sec6.3|routing|autoscale|slo|chaos|kernel|all
//	             [-scenario L4|A100|H100|H100-NVLink] [-dataset post|credit]
//	             [-seed N] [-small] [-parallel N] [-shards N] [-json FILE] [-trace FILE]
//
// fig6/fig7 honour -scenario and -dataset to render a single panel
// (the full grid is expensive); "all" runs everything cheap plus one panel.
//
// -parallel N fans each sweep's independent (config, seed) cells across N
// workers (default GOMAXPROCS; -parallel 1 reproduces the serial
// executor). Cell results are aggregated in index order and every cell is
// self-contained, so output rows are byte-identical at any parallelism —
// only the wall clock changes.
//
// -shards N runs each routing/autoscale/slo cell on the sharded event
// kernel with N shard workers (default 1, the serial kernel; results are
// identical either way — the serial-vs-sharded oracle below enforces it).
// For -exp kernel, N extends the shard-scaling sweep beyond its default
// 1/2/4/8 shard counts. -exp all accepts -shards like any single
// experiment and applies it to the sweeps that honour it.
//
// -compare-unsharded reruns the sweep on the serial kernel and fails
// unless rows are byte-identical; the measured comparison lands in the
// JSON as "shard_comparison" (routing, autoscale, slo, chaos, all). For
// chaos this is the strongest form of the oracle: fault injection,
// orphan re-routing and recovery are coordinator events, and a faulted
// run must stay byte-identical serial vs sharded.
//
// routing additionally honours -trace FILE: after the sweep it executes one
// dedicated instrumented run with the flight recorder attached and writes
// the resulting Chrome trace-event JSON, loadable in Perfetto
// (https://ui.perfetto.dev) or chrome://tracing.
//
// routing also honours -timeseries FILE: after the sweep it executes one
// dedicated run with the windowed time-series collector attached and
// writes the series as JSON, plus a CSV sibling (FILE with a .csv
// extension). The collector never perturbs the run. With
// -compare-unsharded and -shards N, the instrumented run repeats on the
// serial kernel and prefillbench fails unless the two series are
// byte-identical.
//
// routing, autoscale, slo, chaos and kernel honour -json to additionally
// write their results as JSON; the CI benchmark smoke step records
// BENCH_routing.json, BENCH_autoscale.json, BENCH_slo.json,
// BENCH_chaos.json and BENCH_kernel.json this way. For -exp all, -json names a directory:
// every JSON-producing experiment writes its BENCH_*.json file into it.
// Sweep JSON carries {"rows": ..., "executor":
// ...}: the executor block records serial-equivalent vs. parallel wall
// seconds and allocations per cell, so harness-speed regressions are as
// visible as simulation-result regressions.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"text/tabwriter"

	"repro/internal/experiments"
	"repro/internal/timeseries"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run")
	scenario := flag.String("scenario", "L4", "scenario for fig6/fig7 panels")
	dataset := flag.String("dataset", "post", "dataset for fig6/fig7 panels (post|credit)")
	seed := flag.Int64("seed", 1, "workload seed")
	small := flag.Bool("small", false, "use scaled-down datasets for quick runs")
	parallel := flag.Int("parallel", experiments.DefaultParallel(),
		"sweep cell parallelism (1 = serial executor; output rows are identical either way)")
	jsonPath := flag.String("json", "", "also write the experiment's results as JSON (routing, autoscale, slo, chaos, kernel)")
	tracePath := flag.String("trace", "",
		"write a Perfetto-loadable Chrome trace of one instrumented routing run (routing only)")
	timeseriesPath := flag.String("timeseries", "",
		"write one instrumented routing run's windowed time-series as JSON, plus a .csv sibling (routing only)")
	compare := flag.Bool("compare-serial", false,
		"run the sweep twice (serial then -parallel) and record the measured wall-clock speedup; fails unless rows are byte-identical (routing, autoscale, slo, chaos)")
	shards := flag.Int("shards", 1,
		"event-kernel shards per run (1 = serial kernel; routing, autoscale, slo, chaos, kernel — rows are identical at any count)")
	compareUnsharded := flag.Bool("compare-unsharded", false,
		"rerun the sweep on the serial kernel and fail unless rows are byte-identical to the -shards run (routing, autoscale, slo, chaos)")
	flag.Parse()

	if err := run(*exp, *scenario, *dataset, *seed, *small, *parallel, *shards, *jsonPath, *tracePath, *timeseriesPath, *compare, *compareUnsharded); err != nil {
		fmt.Fprintln(os.Stderr, "prefillbench:", err)
		os.Exit(1)
	}
}

// jsonExps, compareExps and shardExps are the experiments that honour
// -json, -compare-serial/-compare-unsharded and -shards; anything else
// rejects the flag instead of silently dropping it (a CI step would
// otherwise record no artifact and exit 0). "all" accepts every flag the
// experiments it contains accept and applies each to the ones that
// honour it.
var (
	jsonExps    = map[string]bool{"routing": true, "autoscale": true, "slo": true, "chaos": true, "kernel": true, "all": true}
	compareExps = map[string]bool{"routing": true, "autoscale": true, "slo": true, "chaos": true, "all": true}
	shardExps   = map[string]bool{"routing": true, "autoscale": true, "slo": true, "chaos": true, "kernel": true, "all": true}
)

func run(exp, scenario, dataset string, seed int64, small bool, parallel, shards int, jsonPath, tracePath, timeseriesPath string, compare, compareUnsharded bool) error {
	if jsonPath != "" && !jsonExps[exp] {
		return fmt.Errorf("-json is not supported by -exp %s (use routing, autoscale, slo, chaos, kernel or all)", exp)
	}
	if tracePath != "" && exp != "routing" {
		return fmt.Errorf("-trace is not supported by -exp %s (use routing)", exp)
	}
	if timeseriesPath != "" && exp != "routing" {
		return fmt.Errorf("-timeseries is not supported by -exp %s (use routing)", exp)
	}
	if compare && !compareExps[exp] {
		return fmt.Errorf("-compare-serial is not supported by -exp %s (use routing, autoscale, slo or chaos)", exp)
	}
	if shards < 1 {
		return fmt.Errorf("-shards must be >= 1, got %d", shards)
	}
	if shards > 1 && !shardExps[exp] {
		return fmt.Errorf("-shards is not supported by -exp %s (use routing, autoscale, slo, chaos or kernel)", exp)
	}
	if compareUnsharded && !compareExps[exp] {
		return fmt.Errorf("-compare-unsharded is not supported by -exp %s (use routing, autoscale, slo or chaos)", exp)
	}
	switch exp {
	case "table1":
		return table1(seed)
	case "table2":
		return table2(parallel)
	case "table3":
		return table3()
	case "fig3":
		return fig3()
	case "fig4":
		return fig4()
	case "fig5":
		return fig5()
	case "fig6", "fig7":
		return figQPS(exp, scenario, dataset, seed, small, parallel)
	case "fig8":
		return fig8(seed, parallel)
	case "fig9":
		return fig9(seed, parallel)
	case "fig10":
		return fig10()
	case "fig11":
		return fig11(seed, parallel)
	case "sec2.3":
		return sec23()
	case "sec6.3":
		return sec63()
	case "routing":
		return routing(seed, small, parallel, shards, jsonPath, tracePath, timeseriesPath, compare, compareUnsharded)
	case "autoscale":
		return autoscaleExp(seed, small, parallel, shards, jsonPath, compare, compareUnsharded)
	case "slo":
		return sloExp(seed, small, parallel, shards, jsonPath, compare, compareUnsharded)
	case "chaos":
		return chaosExp(seed, small, parallel, shards, jsonPath, compare, compareUnsharded)
	case "kernel":
		return kernelExp(small, shards, jsonPath)
	case "all":
		// Under -exp all, -json names a directory: each JSON-producing
		// experiment writes its own BENCH_*.json file into it.
		var routingJSON, autoscaleJSON, sloJSON, chaosJSON, kernelJSON string
		if jsonPath != "" {
			if err := os.MkdirAll(jsonPath, 0o755); err != nil {
				return fmt.Errorf("-json directory: %w", err)
			}
			routingJSON = filepath.Join(jsonPath, "BENCH_routing.json")
			autoscaleJSON = filepath.Join(jsonPath, "BENCH_autoscale.json")
			sloJSON = filepath.Join(jsonPath, "BENCH_slo.json")
			chaosJSON = filepath.Join(jsonPath, "BENCH_chaos.json")
			kernelJSON = filepath.Join(jsonPath, "BENCH_kernel.json")
		}
		for _, e := range []string{"table1", "table2", "table3", "fig3", "fig4", "fig5", "fig10", "sec2.3", "sec6.3"} {
			if err := run(e, scenario, dataset, seed, small, parallel, 1, "", "", "", false, false); err != nil {
				return err
			}
		}
		if err := routing(seed, true, parallel, shards, routingJSON, "", "", compare, compareUnsharded); err != nil {
			return err
		}
		if err := autoscaleExp(seed, true, parallel, shards, autoscaleJSON, compare, compareUnsharded); err != nil {
			return err
		}
		if err := sloExp(seed, true, parallel, shards, sloJSON, compare, compareUnsharded); err != nil {
			return err
		}
		if err := chaosExp(seed, true, parallel, shards, chaosJSON, compare, compareUnsharded); err != nil {
			return err
		}
		if err := kernelExp(true, shards, kernelJSON); err != nil {
			return err
		}
		return figQPS("fig6", scenario, dataset, seed, true, parallel)
	default:
		return fmt.Errorf("unknown experiment %q", exp)
	}
}

func header(title string) *tabwriter.Writer {
	fmt.Printf("\n=== %s ===\n", title)
	return tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
}

// printExecutor summarizes a sweep's cell-executor telemetry under its
// table.
func printExecutor(stats experiments.CellStats) {
	fmt.Printf("executor: %d cells x%d workers, wall %.2fs, serial-equivalent %.2fs, speedup %.2fx, %.0f allocs/cell\n",
		stats.Cells, stats.Parallelism, stats.WallSeconds, stats.SerialEquivalentSeconds,
		stats.Speedup, stats.AllocsPerCell)
}

// benchEnvelope is the sweep JSON shape: result rows plus the executor's
// wall-clock/allocation telemetry, and (under -compare-serial) the
// measured serial-vs-parallel comparison.
type benchEnvelope struct {
	Rows             any                   `json:"rows"`
	Executor         experiments.CellStats `json:"executor"`
	SerialComparison *serialComparison     `json:"serial_comparison,omitempty"`
	ShardComparison  *shardComparison      `json:"shard_comparison,omitempty"`
}

// serialComparison is a measured (not estimated) speedup: the same sweep
// executed twice, once at parallel=1 and once at the requested
// parallelism, wall clock against wall clock. Rows must be byte-identical
// between the two runs — prefillbench fails otherwise, so the CI smoke
// step doubles as a determinism oracle.
type serialComparison struct {
	SerialWallSeconds   float64 `json:"serial_wall_seconds"`
	ParallelWallSeconds float64 `json:"parallel_wall_seconds"`
	Parallelism         int     `json:"parallelism"`
	HostCPUs            int     `json:"host_cpus"`
	MeasuredSpeedup     float64 `json:"measured_speedup"`
	RowsByteIdentical   bool    `json:"rows_byte_identical"`
}

// compareSerial reruns a sweep at parallel=1 against already-obtained
// parallel results: it checks row-level byte identity and returns the
// measured wall-clock comparison.
func compareSerial[T any](parRows []T, parStats experiments.CellStats,
	runSerial func() ([]T, experiments.CellStats, error)) (*serialComparison, error) {
	serialRows, serialStats, err := runSerial()
	if err != nil {
		return nil, fmt.Errorf("serial comparison run: %w", err)
	}
	a, err := json.Marshal(serialRows)
	if err != nil {
		return nil, err
	}
	b, err := json.Marshal(parRows)
	if err != nil {
		return nil, err
	}
	cmp := &serialComparison{
		SerialWallSeconds:   serialStats.WallSeconds,
		ParallelWallSeconds: parStats.WallSeconds,
		Parallelism:         parStats.Parallelism,
		HostCPUs:            parStats.HostCPUs,
		RowsByteIdentical:   string(a) == string(b),
	}
	if cmp.ParallelWallSeconds > 0 {
		cmp.MeasuredSpeedup = cmp.SerialWallSeconds / cmp.ParallelWallSeconds
	}
	if !cmp.RowsByteIdentical {
		return cmp, fmt.Errorf("determinism violation: parallel rows diverge from serial rows")
	}
	fmt.Printf("serial comparison: serial %.2fs vs parallel %.2fs at x%d workers (%d CPUs) = %.2fx, rows byte-identical\n",
		cmp.SerialWallSeconds, cmp.ParallelWallSeconds, cmp.Parallelism, cmp.HostCPUs, cmp.MeasuredSpeedup)
	return cmp, nil
}

// shardComparison is the serial-vs-sharded kernel oracle, measured: the
// same sweep executed once on the sharded kernel and once on the serial
// kernel. Rows must be byte-identical — prefillbench fails otherwise, so
// the CI smoke step enforces the sharded kernel's determinism contract on
// every run it benchmarks.
type shardComparison struct {
	Shards             int     `json:"shards"`
	HostCPUs           int     `json:"host_cpus"`
	ShardedWallSeconds float64 `json:"sharded_wall_seconds"`
	SerialWallSeconds  float64 `json:"serial_wall_seconds"`
	MeasuredSpeedup    float64 `json:"measured_speedup"`
	RowsByteIdentical  bool    `json:"rows_byte_identical"`
}

// compareUnsharded reruns a sweep on the serial kernel against
// already-obtained sharded results: it checks row-level byte identity and
// returns the measured wall-clock comparison.
func compareUnsharded[T any](shardedRows []T, shardedStats experiments.CellStats, shards int,
	runSerial func() ([]T, experiments.CellStats, error)) (*shardComparison, error) {
	serialRows, serialStats, err := runSerial()
	if err != nil {
		return nil, fmt.Errorf("unsharded comparison run: %w", err)
	}
	a, err := json.Marshal(serialRows)
	if err != nil {
		return nil, err
	}
	b, err := json.Marshal(shardedRows)
	if err != nil {
		return nil, err
	}
	cmp := &shardComparison{
		Shards:             shards,
		HostCPUs:           shardedStats.HostCPUs,
		ShardedWallSeconds: shardedStats.WallSeconds,
		SerialWallSeconds:  serialStats.WallSeconds,
		RowsByteIdentical:  string(a) == string(b),
	}
	if cmp.ShardedWallSeconds > 0 {
		cmp.MeasuredSpeedup = cmp.SerialWallSeconds / cmp.ShardedWallSeconds
	}
	if !cmp.RowsByteIdentical {
		return cmp, fmt.Errorf("determinism violation: sharded kernel rows diverge from serial kernel rows")
	}
	fmt.Printf("shard comparison: serial kernel %.2fs vs %d shards %.2fs (%d CPUs) = %.2fx, rows byte-identical\n",
		cmp.SerialWallSeconds, cmp.Shards, cmp.ShardedWallSeconds, cmp.HostCPUs, cmp.MeasuredSpeedup)
	return cmp, nil
}

// writeJSON writes v to path (pretty-printed, trailing newline).
func writeJSON(path string, v any) error {
	buf, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("\nwrote %s\n", path)
	return nil
}

func table1(seed int64) error {
	w := header("Table 1: dataset summary")
	fmt.Fprintln(w, "dataset\tusers\trequests\treq/user\tmean len\tmax len\ttotal tokens")
	for _, r := range experiments.Table1(seed) {
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%.0f\t%d\t%d\n",
			r.Dataset, r.Users, r.Requests, r.RequestsPerUser, r.MeanLen, r.MaxLen, r.TotalTokens)
	}
	return w.Flush()
}

func table2(parallel int) error {
	rows, stats, err := experiments.Table2Parallel(parallel)
	if err != nil {
		return err
	}
	w := header("Table 2: max input length (tokens)")
	fmt.Fprintln(w, "engine\tGPU\tMIL\tWL1\tWL2")
	mark := func(b bool) string {
		if b {
			return "ok"
		}
		return "x"
	}
	for _, r := range rows {
		fmt.Fprintf(w, "%v\t%s\t%d\t%s\t%s\n", r.Engine, r.Scenario, r.MIL, mark(r.WL1OK), mark(r.WL2OK))
	}
	if err := w.Flush(); err != nil {
		return err
	}
	printExecutor(stats)
	return nil
}

func table3() error {
	w := header("Table 3: hardware and models")
	fmt.Fprintln(w, "scenario\tGPU\tcount\tmem GiB\tlink\tmodel\tweights GiB")
	for _, r := range experiments.Table3() {
		fmt.Fprintf(w, "%s\t%s\t%d\t%.0f\t%s\t%s\t%.1f\n",
			r.Scenario, r.GPUName, r.GPUCount, r.MemoryGiB, r.Interconnect, r.ModelName, r.WeightGiB)
	}
	return w.Flush()
}

func fig3() error {
	res, err := experiments.Figure3()
	if err != nil {
		return err
	}
	w := header("Figure 3: memory trace peaks (32,768 tokens, Llama-3.1-8B)")
	gib := func(b int64) float64 { return float64(b) / (1 << 30) }
	fmt.Fprintf(w, "configuration\tpeak above weights\ttotal peak (incl %.1f GiB weights)\ttrace events\n", gib(res.WeightBytes))
	fmt.Fprintf(w, "standard prefill\t%.2f GiB\t%.2f GiB\t%d\n",
		gib(res.StandardPeak), gib(res.StandardPeak+res.WeightBytes), len(res.Standard))
	fmt.Fprintf(w, "hybrid prefill\t%.2f GiB\t%.2f GiB\t%d\n",
		gib(res.HybridPeak), gib(res.HybridPeak+res.WeightBytes), len(res.Hybrid))
	fmt.Fprintf(w, "saving\t%.2f GiB\t\t\n", gib(res.StandardPeak-res.HybridPeak))
	return w.Flush()
}

func fig4() error {
	w := header("Figure 4: MLP tensor sizes (32,768 tokens, Llama-3.1-8B)")
	fmt.Fprintln(w, "tensor\tshape\tMiB\tvs one-layer KV")
	for _, r := range experiments.Figure4() {
		fmt.Fprintf(w, "%s\t%dx%d\t%.0f\t%.1fx\n",
			r.Tensor, r.Shape[0], r.Shape[1], float64(r.Bytes)/(1<<20), r.VsOneLayerKV)
	}
	return w.Flush()
}

func fig5() error {
	rows, err := experiments.Figure5()
	if err != nil {
		return err
	}
	w := header("Figure 5: scheduling walkthrough (A<C<B<D, cache holds one request)")
	fmt.Fprintln(w, "policy\texecution order\tcache hits")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%s\t%d\n", r.Policy, strings.Join(r.Order, ","), r.CacheHits)
	}
	return w.Flush()
}

func figQPS(which, scenario, dataset string, seed int64, small bool, parallel int) error {
	sc, err := experiments.ScenarioByName(scenario)
	if err != nil {
		return err
	}
	kind := experiments.PostRecommendation
	if strings.HasPrefix(dataset, "credit") {
		kind = experiments.CreditVerification
	}
	panel, stats, err := qpsPanel(sc, kind, seed, small, parallel)
	if err != nil {
		return err
	}
	metric := "mean"
	if which == "fig7" {
		metric = "p99"
	}
	w := header(fmt.Sprintf("Figure %s panel: %s / %s (saturation %.3f qps)",
		strings.TrimPrefix(which, "fig"), panel.Scenario, panel.Dataset, panel.SaturationQPS))
	fmt.Fprintf(w, "engine\tqps\t%s latency (s)\ttput (req/s)\thit rate\tinfeasible\n", metric)
	for _, p := range panel.Points {
		lat := p.MeanLatency
		if which == "fig7" {
			lat = p.P99Latency
		}
		fmt.Fprintf(w, "%v\t%.3f\t%.2f\t%.3f\t%.2f\t%.2f\n",
			p.Engine, p.QPS, lat, p.ThroughputRPS, p.CacheHitRate, p.InfeasibleFrac)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	printExecutor(stats)
	return nil
}

func qpsPanel(sc experiments.Scenario, kind experiments.DatasetKind, seed int64, small bool, parallel int) (*experiments.QPSLatencyPanel, experiments.CellStats, error) {
	if !small {
		return experiments.QPSLatencyParallel(sc, kind, nil, seed, parallel)
	}
	// Scaled-down panel: same grid over the small dataset.
	ds := experiments.SmallDataset(kind, seed)
	return experiments.QPSLatencyOn(sc, ds.Name+" (small)", ds, nil, seed, parallel)
}

func fig8(seed int64, parallel int) error {
	rows, stats, err := experiments.Figure8Parallel(seed, parallel)
	if err != nil {
		return err
	}
	w := header("Figure 8: credit-verification throughput, 2xH100")
	fmt.Fprintln(w, "engine\tNVLink\tthroughput (req/s)")
	for _, r := range rows {
		fmt.Fprintf(w, "%v\t%v\t%.4f\n", r.Engine, r.NVLink, r.ThroughputRPS)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	printExecutor(stats)
	return nil
}

func fig9(seed int64, parallel int) error {
	rows, stats, err := experiments.Figure9Parallel(seed, parallel)
	if err != nil {
		return err
	}
	w := header("Figure 9: post-recommendation throughput vs QPS, 2xH100 (PCIe)")
	fmt.Fprintln(w, "engine\toffered qps\tthroughput (req/s)\thit rate")
	for _, r := range rows {
		fmt.Fprintf(w, "%v\t%.2f\t%.3f\t%.2f\n", r.Engine, r.QPS, r.ThroughputRPS, r.CacheHitRate)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	printExecutor(stats)
	return nil
}

func fig10() error {
	rows, err := experiments.Figure10()
	if err != nil {
		return err
	}
	w := header("Figure 10: hybrid prefilling MIL ablation (Qwen-2.5-32B FP8, A100)")
	fmt.Fprintln(w, "configuration\tmax input length")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%d\n", r.Config, r.MIL)
	}
	return w.Flush()
}

func fig11(seed int64, parallel int) error {
	curves, stats, err := experiments.Figure11Parallel(seed, parallel)
	if err != nil {
		return err
	}
	w := header("Figure 11: latency CDF under fairness parameter λ")
	fmt.Fprintln(w, "λ\tmean latency (s)\tp99 latency (s)")
	for _, c := range curves {
		fmt.Fprintf(w, "%.0f\t%.2f\t%.2f\n", c.Lambda, c.MeanLatency, c.P99Latency)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	printExecutor(stats)
	return nil
}

func routing(seed int64, small bool, parallel, shards int, jsonPath, tracePath, timeseriesPath string, compare, cmpUnsharded bool) error {
	rows, stats, err := experiments.RoutingSweepParallel(seed, small, parallel, shards)
	if err != nil {
		return err
	}
	var cmp *serialComparison
	if compare {
		cmp, err = compareSerial(rows, stats, func() ([]experiments.RoutingSweepRow, experiments.CellStats, error) {
			return experiments.RoutingSweepParallel(seed, small, 1, shards)
		})
		if err != nil {
			return err
		}
	}
	var shardCmp *shardComparison
	if cmpUnsharded {
		shardCmp, err = compareUnsharded(rows, stats, shards, func() ([]experiments.RoutingSweepRow, experiments.CellStats, error) {
			return experiments.RoutingSweepParallel(seed, small, parallel, 1)
		})
		if err != nil {
			return err
		}
	}
	w := header("Routing: policy comparison, 4x PrefillOnly on L4")
	fmt.Fprintln(w, "dataset\tpolicy\tqps\tmean JCT (s)\tp99 (s)\thit rate\tbalance\trejected")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%s\t%.2f\t%.3f\t%.3f\t%.2f\t%.2f\t%d\n",
			r.Dataset, r.Policy, r.QPS, r.MeanJCT, r.P99JCT, r.CacheHitRate, r.BalanceRatio, r.Rejected)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	printExecutor(stats)
	if jsonPath != "" {
		if err := writeJSON(jsonPath, benchEnvelope{Rows: rows, Executor: stats, SerialComparison: cmp, ShardComparison: shardCmp}); err != nil {
			return err
		}
	}
	if tracePath != "" {
		if err := writeRoutingTrace(tracePath, seed, small); err != nil {
			return err
		}
	}
	if timeseriesPath != "" {
		return writeRoutingTimeseries(timeseriesPath, seed, small, shards, cmpUnsharded)
	}
	return nil
}

// writeRoutingTimeseries executes one dedicated routing run with the
// windowed time-series collector attached — the sweep cells stay
// uninstrumented — and writes the series as JSON plus a CSV sibling.
// When verifyUnsharded is set and the run used the sharded kernel, the
// identical run repeats on the serial kernel and the two JSON exports
// must match byte for byte: the determinism oracle extended to the
// telemetry layer itself.
func writeRoutingTimeseries(path string, seed int64, small bool, shards int, verifyUnsharded bool) error {
	sc, err := experiments.ScenarioByName("L4")
	if err != nil {
		return err
	}
	const instances = 4
	ds := experiments.RoutingDatasets(seed, small)[0] // the Zipf-skewed scenario
	sat, err := experiments.SaturationQPS(experiments.PrefillOnly, sc, ds.Clone())
	if err != nil {
		return fmt.Errorf("timeseries saturation on %s: %w", ds.Name, err)
	}
	rc := experiments.RoutingRunConfig{
		Policy: experiments.AffinityLoadPolicy, Scenario: sc,
		QPS: sat * instances / 2 * 0.9, Seed: seed, Instances: instances,
	}
	runOnce := func(shards int) (*experiments.RoutingRunResult, *timeseries.Collector, []byte, error) {
		c := rc
		c.Dataset = ds.Clone()
		c.Shards = shards
		res, ts, err := experiments.TimeseriesRoutingRun(c, 0)
		if err != nil {
			return nil, nil, nil, err
		}
		var buf bytes.Buffer
		if err := ts.WriteJSON(&buf); err != nil {
			return nil, nil, nil, err
		}
		return res, ts, buf.Bytes(), nil
	}
	res, ts, out, err := runOnce(shards)
	if err != nil {
		return err
	}
	if verifyUnsharded && shards > 1 {
		_, _, serialOut, err := runOnce(1)
		if err != nil {
			return fmt.Errorf("unsharded timeseries run: %w", err)
		}
		if !bytes.Equal(out, serialOut) {
			return fmt.Errorf("determinism violation: %d-shard time-series diverges from serial kernel's", shards)
		}
		fmt.Printf("timeseries comparison: %d shards vs serial kernel byte-identical\n", shards)
	}
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return err
	}
	csvPath := strings.TrimSuffix(path, filepath.Ext(path)) + ".csv"
	f, err := os.Create(csvPath)
	if err != nil {
		return err
	}
	if err := ts.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("\nwrote %s and %s: %d windows over %d completed + %d rejected requests\n",
		path, csvPath, len(ts.Windows()), res.Completed, res.Rejected)
	return nil
}

// writeRoutingTrace executes one dedicated instrumented routing run — the
// sweep cells stay untraced so their determinism and allocation profile are
// untouched — and exports its flight recorder as Chrome trace-event JSON.
func writeRoutingTrace(path string, seed int64, small bool) error {
	sc, err := experiments.ScenarioByName("L4")
	if err != nil {
		return err
	}
	const instances = 4
	ds := experiments.RoutingDatasets(seed, small)[0] // the Zipf-skewed scenario
	sat, err := experiments.SaturationQPS(experiments.PrefillOnly, sc, ds.Clone())
	if err != nil {
		return fmt.Errorf("trace saturation on %s: %w", ds.Name, err)
	}
	res, rec, err := experiments.TracedRoutingRun(experiments.RoutingRunConfig{
		Policy: experiments.AffinityLoadPolicy, Scenario: sc, Dataset: ds,
		QPS: sat * instances / 2 * 0.9, Seed: seed, Instances: instances,
	}, 0)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rec.WriteTrace(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("\nwrote %s: %d spans (%d dropped) over %d requests — open in https://ui.perfetto.dev\n",
		path, rec.Len(), rec.Dropped(), res.Completed+res.Rejected)
	return nil
}

func autoscaleExp(seed int64, small bool, parallel, shards int, jsonPath string, compare, cmpUnsharded bool) error {
	rows, stats, err := experiments.AutoscaleSweepParallel(seed, small, parallel, shards)
	if err != nil {
		return err
	}
	var cmp *serialComparison
	if compare {
		cmp, err = compareSerial(rows, stats, func() ([]experiments.AutoscaleSweepRow, experiments.CellStats, error) {
			return experiments.AutoscaleSweepParallel(seed, small, 1, shards)
		})
		if err != nil {
			return err
		}
	}
	var shardCmp *shardComparison
	if cmpUnsharded {
		shardCmp, err = compareUnsharded(rows, stats, shards, func() ([]experiments.AutoscaleSweepRow, experiments.CellStats, error) {
			return experiments.AutoscaleSweepParallel(seed, small, parallel, 1)
		})
		if err != nil {
			return err
		}
	}
	w := header("Autoscale: fixed fleets vs elastic pool, square-wave burst on L4")
	fmt.Fprintln(w, "mode\tmean JCT (s)\tp99 (s)\tshed\tGPU-s\tsavings vs peak\tpool\tups\tdowns\tcold start (s)")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%.3f\t%.3f\t%.3f\t%.1f\t%.1f%%\t[%d,%d]\t%d\t%d\t%.2f\n",
			r.Mode, r.MeanJCT, r.P99JCT, r.ShedRate, r.GPUSeconds, 100*r.GPUSavingsVsPeak,
			r.TroughInstances, r.PeakInstances, r.ScaleUps, r.ScaleDowns, r.ColdStartSeconds)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	printExecutor(stats)
	if jsonPath != "" {
		return writeJSON(jsonPath, benchEnvelope{Rows: rows, Executor: stats, SerialComparison: cmp, ShardComparison: shardCmp})
	}
	return nil
}

func sloExp(seed int64, small bool, parallel, shards int, jsonPath string, compare, cmpUnsharded bool) error {
	rows, stats, err := experiments.SLOSweepParallel(seed, small, parallel, shards)
	if err != nil {
		return err
	}
	var cmp *serialComparison
	if compare {
		cmp, err = compareSerial(rows, stats, func() ([]experiments.SLOSweepRow, experiments.CellStats, error) {
			return experiments.SLOSweepParallel(seed, small, 1, shards)
		})
		if err != nil {
			return err
		}
	}
	var shardCmp *shardComparison
	if cmpUnsharded {
		shardCmp, err = compareUnsharded(rows, stats, shards, func() ([]experiments.SLOSweepRow, experiments.CellStats, error) {
			return experiments.SLOSweepParallel(seed, small, parallel, 1)
		})
		if err != nil {
			return err
		}
	}
	w := header("SLO classes: class-blind vs class-aware at equal GPU-seconds, fixed fleet on L4")
	fmt.Fprintln(w, "mode\tint mean (s)\tint p99 (s)\tint shed\tbatch mean (s)\tbatch shed\tbatch goodput (tok/s)\tGPU-s\tcompleted")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%.3f\t%.3f\t%d/%d\t%.3f\t%d/%d\t%.0f\t%.1f\t%d\n",
			r.Mode, r.InteractiveMeanJCT, r.InteractiveP99JCT, r.InteractiveShed, r.InteractiveOffered,
			r.BatchMeanJCT, r.BatchShed, r.BatchOffered, r.BatchGoodputTPS, r.GPUSeconds, r.Completed)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	printExecutor(stats)
	if jsonPath != "" {
		return writeJSON(jsonPath, benchEnvelope{Rows: rows, Executor: stats, SerialComparison: cmp, ShardComparison: shardCmp})
	}
	return nil
}

func chaosExp(seed int64, small bool, parallel, shards int, jsonPath string, compare, cmpUnsharded bool) error {
	rows, stats, err := experiments.ChaosSweepParallel(seed, small, parallel, shards)
	if err != nil {
		return err
	}
	var cmp *serialComparison
	if compare {
		cmp, err = compareSerial(rows, stats, func() ([]experiments.ChaosSweepRow, experiments.CellStats, error) {
			return experiments.ChaosSweepParallel(seed, small, 1, shards)
		})
		if err != nil {
			return err
		}
	}
	var shardCmp *shardComparison
	if cmpUnsharded {
		shardCmp, err = compareUnsharded(rows, stats, shards, func() ([]experiments.ChaosSweepRow, experiments.CellStats, error) {
			return experiments.ChaosSweepParallel(seed, small, parallel, 1)
		})
		if err != nil {
			return err
		}
	}
	w := header("Chaos: fault injection and recovery, elastic pool on L4")
	fmt.Fprintln(w, "mode\tmean JCT (s)\tp99 (s)\tshed\tfaults\torphans (rerouted/shed)\trecoveries\tmean recovery (s)\tups\tGPU-s\tp99 degr")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%.3f\t%.3f\t%.3f\t%d\t%d (%d/%d)\t%d\t%.1f\t%d\t%.1f\t%+.0f%%\n",
			r.Mode, r.MeanJCT, r.P99JCT, r.ShedRate, r.Faults,
			r.Orphaned, r.OrphansRerouted, r.OrphansShed,
			r.Recoveries, r.MeanRecoverySeconds, r.ScaleUps, r.GPUSeconds,
			100*r.P99DegradationVsBaseline)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	printExecutor(stats)
	if jsonPath != "" {
		return writeJSON(jsonPath, benchEnvelope{Rows: rows, Executor: stats, SerialComparison: cmp, ShardComparison: shardCmp})
	}
	return nil
}

func kernelExp(small bool, shards int, jsonPath string) error {
	events := 4_000_000
	if small {
		events = 1_000_000
	}
	counts := []int{1, 2, 4, 8}
	if shards > 1 {
		found := false
		for _, c := range counts {
			found = found || c == shards
		}
		if !found {
			counts = append(counts, shards)
		}
	}
	res, err := experiments.KernelBench(events, counts)
	if err != nil {
		return err
	}
	w := header(fmt.Sprintf("Kernel: sim event throughput, %d events at depth %d (%d CPUs, %s)",
		res.Events, res.Depth, res.HostCPUs, res.GoVersion))
	fmt.Fprintln(w, "path\tevents/sec\tallocs/event")
	fmt.Fprintf(w, "closure (pre-refactor idiom)\t%.0f\t%.2f\n", res.ClosureEventsPerSec, res.ClosureAllocsPerEvent)
	fmt.Fprintf(w, "fast path (AtFunc/AfterFunc)\t%.0f\t%.2f\n", res.FastPathEventsPerSec, res.FastPathAllocsPerEvent)
	fmt.Fprintf(w, "speedup\t%.2fx\t\n", res.FastPathSpeedup)
	if err := w.Flush(); err != nil {
		return err
	}
	w = header(fmt.Sprintf("Kernel: shard scaling, %d chains x %d events", res.ShardChains, res.ShardEvents))
	fmt.Fprintln(w, "shards\tevents/sec\tspeedup vs serial\tallocs/event\twindows\tbound coord/lookahead\tmean stall")
	for _, r := range res.ShardScaling {
		if r.Kernel == nil {
			fmt.Fprintf(w, "%d\t%.0f\t%.2fx\t%.2f\t-\t-\t-\n", r.Shards, r.EventsPerSec, r.Speedup, r.AllocsPerEvent)
			continue
		}
		var busy, stall uint64
		for _, sh := range r.Kernel.Shards {
			busy += sh.BusyNanos
			stall += sh.StallNanos
		}
		meanStall := 0.0
		if busy+stall > 0 {
			meanStall = float64(stall) / float64(busy+stall)
		}
		fmt.Fprintf(w, "%d\t%.0f\t%.2fx\t%.2f\t%d\t%d/%d\t%.0f%%\n",
			r.Shards, r.EventsPerSec, r.Speedup, r.AllocsPerEvent,
			r.Kernel.Windows, r.Kernel.WindowsBoundByCoordinator, r.Kernel.WindowsBoundByLookahead, 100*meanStall)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if jsonPath != "" {
		return writeJSON(jsonPath, res)
	}
	return nil
}

func sec23() error {
	res, err := experiments.Section23(64)
	if err != nil {
		return err
	}
	w := header("§2.3: prefill-only vs generative latency (Llama-3.1-8B, H100)")
	fmt.Fprintln(w, "request\tlatency (s)")
	fmt.Fprintf(w, "2048 in / 1 out\t%.3f\n", res.PrefillSeconds)
	fmt.Fprintf(w, "2048 in / 256 out (batch %d)\t%.3f\n", res.DecodeBatch, res.GenerativeSeconds)
	fmt.Fprintf(w, "slowdown\t%.2fx (paper: ~1.5x)\n", res.Slowdown)
	return w.Flush()
}

func sec63() error {
	res, err := experiments.Section63()
	if err != nil {
		return err
	}
	w := header("§6.3: JCT proxy validation (Qwen-32B FP8, A100)")
	fmt.Fprintf(w, "Pearson(JCT, cache-miss tokens)\t%.4f (paper: 0.987)\n", res.Pearson)
	fmt.Fprintf(w, "grid points\t%d\n", res.Points)
	return w.Flush()
}
