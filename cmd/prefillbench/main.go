// Command prefillbench regenerates the paper's tables and figures from the
// simulation harness and prints them as aligned text tables.
//
// Usage:
//
//	prefillbench -exp table1|table2|table3|fig3|fig4|fig5|fig6|fig7|fig8|fig9|fig10|fig11|sec2.3|sec6.3|routing|autoscale|slo|all
//	             [-scenario L4|A100|H100|H100-NVLink] [-dataset post|credit]
//	             [-seed N] [-small] [-json FILE]
//
// fig6/fig7 honour -scenario and -dataset to render a single panel
// (the full grid is expensive); "all" runs everything cheap plus one panel.
// autoscale and slo honour -json to additionally write their sweep rows as
// JSON (the CI benchmark smoke step records BENCH_autoscale.json and
// BENCH_slo.json this way).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"

	"repro/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run")
	scenario := flag.String("scenario", "L4", "scenario for fig6/fig7 panels")
	dataset := flag.String("dataset", "post", "dataset for fig6/fig7 panels (post|credit)")
	seed := flag.Int64("seed", 1, "workload seed")
	small := flag.Bool("small", false, "use scaled-down datasets for quick runs")
	jsonPath := flag.String("json", "", "also write the experiment's rows as JSON (autoscale and slo)")
	flag.Parse()

	if err := run(*exp, *scenario, *dataset, *seed, *small, *jsonPath); err != nil {
		fmt.Fprintln(os.Stderr, "prefillbench:", err)
		os.Exit(1)
	}
}

func run(exp, scenario, dataset string, seed int64, small bool, jsonPath string) error {
	switch exp {
	case "table1":
		return table1(seed)
	case "table2":
		return table2()
	case "table3":
		return table3()
	case "fig3":
		return fig3()
	case "fig4":
		return fig4()
	case "fig5":
		return fig5()
	case "fig6", "fig7":
		return figQPS(exp, scenario, dataset, seed, small)
	case "fig8":
		return fig8(seed)
	case "fig9":
		return fig9(seed)
	case "fig10":
		return fig10()
	case "fig11":
		return fig11(seed)
	case "sec2.3":
		return sec23()
	case "sec6.3":
		return sec63()
	case "routing":
		return routing(seed, small)
	case "autoscale":
		return autoscaleExp(seed, small, jsonPath)
	case "slo":
		return sloExp(seed, small, jsonPath)
	case "all":
		for _, e := range []string{"table1", "table2", "table3", "fig3", "fig4", "fig5", "fig10", "sec2.3", "sec6.3"} {
			if err := run(e, scenario, dataset, seed, small, ""); err != nil {
				return err
			}
		}
		if err := routing(seed, true); err != nil {
			return err
		}
		if err := autoscaleExp(seed, true, jsonPath); err != nil {
			return err
		}
		if err := sloExp(seed, true, ""); err != nil {
			return err
		}
		return figQPS("fig6", scenario, dataset, seed, true)
	default:
		return fmt.Errorf("unknown experiment %q", exp)
	}
}

func header(title string) *tabwriter.Writer {
	fmt.Printf("\n=== %s ===\n", title)
	return tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
}

func table1(seed int64) error {
	w := header("Table 1: dataset summary")
	fmt.Fprintln(w, "dataset\tusers\trequests\treq/user\tmean len\tmax len\ttotal tokens")
	for _, r := range experiments.Table1(seed) {
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%.0f\t%d\t%d\n",
			r.Dataset, r.Users, r.Requests, r.RequestsPerUser, r.MeanLen, r.MaxLen, r.TotalTokens)
	}
	return w.Flush()
}

func table2() error {
	rows, err := experiments.Table2()
	if err != nil {
		return err
	}
	w := header("Table 2: max input length (tokens)")
	fmt.Fprintln(w, "engine\tGPU\tMIL\tWL1\tWL2")
	mark := func(b bool) string {
		if b {
			return "ok"
		}
		return "x"
	}
	for _, r := range rows {
		fmt.Fprintf(w, "%v\t%s\t%d\t%s\t%s\n", r.Engine, r.Scenario, r.MIL, mark(r.WL1OK), mark(r.WL2OK))
	}
	return w.Flush()
}

func table3() error {
	w := header("Table 3: hardware and models")
	fmt.Fprintln(w, "scenario\tGPU\tcount\tmem GiB\tlink\tmodel\tweights GiB")
	for _, r := range experiments.Table3() {
		fmt.Fprintf(w, "%s\t%s\t%d\t%.0f\t%s\t%s\t%.1f\n",
			r.Scenario, r.GPUName, r.GPUCount, r.MemoryGiB, r.Interconnect, r.ModelName, r.WeightGiB)
	}
	return w.Flush()
}

func fig3() error {
	res, err := experiments.Figure3()
	if err != nil {
		return err
	}
	w := header("Figure 3: memory trace peaks (32,768 tokens, Llama-3.1-8B)")
	gib := func(b int64) float64 { return float64(b) / (1 << 30) }
	fmt.Fprintf(w, "configuration\tpeak above weights\ttotal peak (incl %.1f GiB weights)\ttrace events\n", gib(res.WeightBytes))
	fmt.Fprintf(w, "standard prefill\t%.2f GiB\t%.2f GiB\t%d\n",
		gib(res.StandardPeak), gib(res.StandardPeak+res.WeightBytes), len(res.Standard))
	fmt.Fprintf(w, "hybrid prefill\t%.2f GiB\t%.2f GiB\t%d\n",
		gib(res.HybridPeak), gib(res.HybridPeak+res.WeightBytes), len(res.Hybrid))
	fmt.Fprintf(w, "saving\t%.2f GiB\t\t\n", gib(res.StandardPeak-res.HybridPeak))
	return w.Flush()
}

func fig4() error {
	w := header("Figure 4: MLP tensor sizes (32,768 tokens, Llama-3.1-8B)")
	fmt.Fprintln(w, "tensor\tshape\tMiB\tvs one-layer KV")
	for _, r := range experiments.Figure4() {
		fmt.Fprintf(w, "%s\t%dx%d\t%.0f\t%.1fx\n",
			r.Tensor, r.Shape[0], r.Shape[1], float64(r.Bytes)/(1<<20), r.VsOneLayerKV)
	}
	return w.Flush()
}

func fig5() error {
	rows, err := experiments.Figure5()
	if err != nil {
		return err
	}
	w := header("Figure 5: scheduling walkthrough (A<C<B<D, cache holds one request)")
	fmt.Fprintln(w, "policy\texecution order\tcache hits")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%s\t%d\n", r.Policy, strings.Join(r.Order, ","), r.CacheHits)
	}
	return w.Flush()
}

func figQPS(which, scenario, dataset string, seed int64, small bool) error {
	sc, err := experiments.ScenarioByName(scenario)
	if err != nil {
		return err
	}
	kind := experiments.PostRecommendation
	if strings.HasPrefix(dataset, "credit") {
		kind = experiments.CreditVerification
	}
	panel, err := qpsPanel(sc, kind, seed, small)
	if err != nil {
		return err
	}
	metric := "mean"
	if which == "fig7" {
		metric = "p99"
	}
	w := header(fmt.Sprintf("Figure %s panel: %s / %s (saturation %.3f qps)",
		strings.TrimPrefix(which, "fig"), panel.Scenario, panel.Dataset, panel.SaturationQPS))
	fmt.Fprintf(w, "engine\tqps\t%s latency (s)\ttput (req/s)\thit rate\tinfeasible\n", metric)
	for _, p := range panel.Points {
		lat := p.MeanLatency
		if which == "fig7" {
			lat = p.P99Latency
		}
		fmt.Fprintf(w, "%v\t%.3f\t%.2f\t%.3f\t%.2f\t%.2f\n",
			p.Engine, p.QPS, lat, p.ThroughputRPS, p.CacheHitRate, p.InfeasibleFrac)
	}
	return w.Flush()
}

func qpsPanel(sc experiments.Scenario, kind experiments.DatasetKind, seed int64, small bool) (*experiments.QPSLatencyPanel, error) {
	if !small {
		return experiments.QPSLatency(sc, kind, nil, seed)
	}
	// Scaled-down panel: swap the dataset via a local sweep.
	ds := experiments.SmallDataset(kind, seed)
	x, err := experiments.SaturationQPS(experiments.PrefillOnly, sc, ds)
	if err != nil {
		return nil, err
	}
	panel := &experiments.QPSLatencyPanel{Scenario: sc.Name, Dataset: ds.Name + " (small)", SaturationQPS: x}
	for _, eng := range experiments.AllEngines() {
		for _, mult := range experiments.QPSGridMultipliers {
			res, err := experiments.Run(experiments.RunConfig{
				Kind: eng, Scenario: sc, Dataset: ds, QPS: x * mult, Seed: seed,
			})
			if err != nil {
				return nil, err
			}
			panel.Points = append(panel.Points, experiments.QPSLatencyPoint{
				Engine: eng, QPS: x * mult,
				MeanLatency: res.Latency.Mean, P99Latency: res.Latency.P99,
				ThroughputRPS: res.ThroughputRPS, CacheHitRate: res.CacheHitRate,
				InfeasibleFrac: res.InfeasibleFrac,
			})
		}
	}
	return panel, nil
}

func fig8(seed int64) error {
	rows, err := experiments.Figure8(seed)
	if err != nil {
		return err
	}
	w := header("Figure 8: credit-verification throughput, 2xH100")
	fmt.Fprintln(w, "engine\tNVLink\tthroughput (req/s)")
	for _, r := range rows {
		fmt.Fprintf(w, "%v\t%v\t%.4f\n", r.Engine, r.NVLink, r.ThroughputRPS)
	}
	return w.Flush()
}

func fig9(seed int64) error {
	rows, err := experiments.Figure9(seed)
	if err != nil {
		return err
	}
	w := header("Figure 9: post-recommendation throughput vs QPS, 2xH100 (PCIe)")
	fmt.Fprintln(w, "engine\toffered qps\tthroughput (req/s)\thit rate")
	for _, r := range rows {
		fmt.Fprintf(w, "%v\t%.2f\t%.3f\t%.2f\n", r.Engine, r.QPS, r.ThroughputRPS, r.CacheHitRate)
	}
	return w.Flush()
}

func fig10() error {
	rows, err := experiments.Figure10()
	if err != nil {
		return err
	}
	w := header("Figure 10: hybrid prefilling MIL ablation (Qwen-2.5-32B FP8, A100)")
	fmt.Fprintln(w, "configuration\tmax input length")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%d\n", r.Config, r.MIL)
	}
	return w.Flush()
}

func fig11(seed int64) error {
	curves, err := experiments.Figure11(seed)
	if err != nil {
		return err
	}
	w := header("Figure 11: latency CDF under fairness parameter λ")
	fmt.Fprintln(w, "λ\tmean latency (s)\tp99 latency (s)")
	for _, c := range curves {
		fmt.Fprintf(w, "%.0f\t%.2f\t%.2f\n", c.Lambda, c.MeanLatency, c.P99Latency)
	}
	return w.Flush()
}

func routing(seed int64, small bool) error {
	rows, err := experiments.RoutingSweep(seed, small)
	if err != nil {
		return err
	}
	w := header("Routing: policy comparison, 4x PrefillOnly on L4")
	fmt.Fprintln(w, "dataset\tpolicy\tqps\tmean JCT (s)\tp99 (s)\thit rate\tbalance\trejected")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%s\t%.2f\t%.3f\t%.3f\t%.2f\t%.2f\t%d\n",
			r.Dataset, r.Policy, r.QPS, r.MeanJCT, r.P99JCT, r.CacheHitRate, r.BalanceRatio, r.Rejected)
	}
	return w.Flush()
}

func autoscaleExp(seed int64, small bool, jsonPath string) error {
	rows, err := experiments.AutoscaleSweep(seed, small)
	if err != nil {
		return err
	}
	w := header("Autoscale: fixed fleets vs elastic pool, square-wave burst on L4")
	fmt.Fprintln(w, "mode\tmean JCT (s)\tp99 (s)\tshed\tGPU-s\tsavings vs peak\tpool\tups\tdowns\tcold start (s)")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%.3f\t%.3f\t%.3f\t%.1f\t%.1f%%\t[%d,%d]\t%d\t%d\t%.2f\n",
			r.Mode, r.MeanJCT, r.P99JCT, r.ShedRate, r.GPUSeconds, 100*r.GPUSavingsVsPeak,
			r.TroughInstances, r.PeakInstances, r.ScaleUps, r.ScaleDowns, r.ColdStartSeconds)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if jsonPath != "" {
		buf, err := json.MarshalIndent(rows, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("\nwrote %s\n", jsonPath)
	}
	return nil
}

func sloExp(seed int64, small bool, jsonPath string) error {
	rows, err := experiments.SLOSweep(seed, small)
	if err != nil {
		return err
	}
	w := header("SLO classes: class-blind vs class-aware at equal GPU-seconds, fixed fleet on L4")
	fmt.Fprintln(w, "mode\tint mean (s)\tint p99 (s)\tint shed\tbatch mean (s)\tbatch shed\tbatch goodput (tok/s)\tGPU-s\tcompleted")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%.3f\t%.3f\t%d/%d\t%.3f\t%d/%d\t%.0f\t%.1f\t%d\n",
			r.Mode, r.InteractiveMeanJCT, r.InteractiveP99JCT, r.InteractiveShed, r.InteractiveOffered,
			r.BatchMeanJCT, r.BatchShed, r.BatchOffered, r.BatchGoodputTPS, r.GPUSeconds, r.Completed)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if jsonPath != "" {
		buf, err := json.MarshalIndent(rows, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("\nwrote %s\n", jsonPath)
	}
	return nil
}

func sec23() error {
	res, err := experiments.Section23(64)
	if err != nil {
		return err
	}
	w := header("§2.3: prefill-only vs generative latency (Llama-3.1-8B, H100)")
	fmt.Fprintln(w, "request\tlatency (s)")
	fmt.Fprintf(w, "2048 in / 1 out\t%.3f\n", res.PrefillSeconds)
	fmt.Fprintf(w, "2048 in / 256 out (batch %d)\t%.3f\n", res.DecodeBatch, res.GenerativeSeconds)
	fmt.Fprintf(w, "slowdown\t%.2fx (paper: ~1.5x)\n", res.Slowdown)
	return w.Flush()
}

func sec63() error {
	res, err := experiments.Section63()
	if err != nil {
		return err
	}
	w := header("§6.3: JCT proxy validation (Qwen-32B FP8, A100)")
	fmt.Fprintf(w, "Pearson(JCT, cache-miss tokens)\t%.4f (paper: 0.987)\n", res.Pearson)
	fmt.Fprintf(w, "grid points\t%d\n", res.Points)
	return w.Flush()
}
