// Command prefillserve runs the OpenAI-compatible PrefillOnly serving
// frontend on a modelled GPU.
//
// Usage:
//
//	prefillserve [-addr :8080] [-model llama-3.1-8b] [-gpu l4]
//	             [-max-input-len 20000] [-lambda 500] [-speedup 1000]
//	             [-instances 1] [-routing affinity] [-max-backlog 0]
//	             [-batch-max-backlog 0] [-batch-weight 0]
//	             [-autoscale] [-min-instances 1] [-trace] [-timeseries]
//	             [-chaos-crash-rate 0] [-chaos-straggler 0]
//	             [-chaos-preempt 0] [-chaos-seed 1]
//
// With -autoscale, -instances is the pool ceiling: the cluster starts at
// -min-instances engines and scales elastically from live backlog and
// admission signals, paying a model-load cold start per scale-up. Watch
// the pool at /v1/stats.
//
// Chaos: the -chaos-* rates enable the deterministic fault injector —
// instance crashes, slow-node stragglers and spot preemptions at the
// given events per simulated second. Orphaned requests are re-admitted
// through admission under a retry budget; when the budget runs out the
// request answers 503 with a Retry-After header and a structured body.
// With -autoscale, lost capacity is replaced by cold starts. Fault
// counters show in /v1/stats (faults block), /v1/metrics
// (prefill_faults_total) and, with -trace, as instants in /v1/trace.
//
// Multi-tenant SLO classes: clients label requests with the slo_class
// body field or X-SLO-Class header ("interactive" default, "batch").
// -batch-max-backlog gives the batch class its own (smaller) admission
// budget so batch load sheds before interactive load; -batch-weight > 1
// makes queued batch work yield the GPU to interactive work. Only
// interactive pressure triggers autoscaling.
//
// Then:
//
//	curl -s localhost:8080/v1/completions -d '{
//	  "prompt": "Here is the user profile: ... Your answer is:",
//	  "max_tokens": 1, "allowed_tokens": ["Yes","No"], "user": "u1"
//	}'
//	curl -s localhost:8080/v1/stats
//
// Observability: /v1/stats (JSON cluster snapshot), /v1/metrics
// (Prometheus text format). With -trace, the sim-time flight recorder is
// enabled and /v1/trace serves the recent request lifecycle as Chrome
// trace-event JSON — save it and open in https://ui.perfetto.dev or
// chrome://tracing. With -timeseries, the windowed sim-time-series
// collector is enabled and /v1/timeseries serves per-window throughput,
// latency quantiles, shed rates, fleet gauges and per-class SLO burn
// rate as JSON (-timeseries-interval sets the window width in simulated
// seconds).
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"

	"repro"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	modelName := flag.String("model", "llama-3.1-8b", "model preset (llama-3.1-8b|qwen-32b-fp8|llama-70b-fp8)")
	gpuName := flag.String("gpu", "l4", "GPU preset (l4|a100|h100|h100-nvlink)")
	maxLen := flag.Int("max-input-len", 20000, "profile-run maximum input length")
	lambda := flag.Float64("lambda", 500, "fairness parameter λ")
	speedup := flag.Float64("speedup", 1000, "simulated seconds per wall second")
	instances := flag.Int("instances", 1, "engine instances (>1 routes by load and prefix affinity)")
	routing := flag.String("routing", "affinity", "routing policy for -instances > 1 (userhash|leastloaded|affinity)")
	maxBacklog := flag.Float64("max-backlog", 0, "admission bound in estimated backlog seconds (0 = unlimited)")
	batchBacklog := flag.Float64("batch-max-backlog", 0, "batch-class admission budget in backlog seconds (0 = shared -max-backlog bound)")
	batchWeight := flag.Float64("batch-weight", 0, "batch-class JCT weight in the calibrated scheduler (>1 deprioritizes batch; 0 = class-blind)")
	autoscaleOn := flag.Bool("autoscale", false, "scale the pool elastically between -min-instances and -instances")
	minInstances := flag.Int("min-instances", 1, "elastic pool floor (requires -autoscale)")
	traceOn := flag.Bool("trace", false, "enable the sim-time flight recorder and the /v1/trace endpoint")
	traceSpans := flag.Int("trace-spans", 0, "flight-recorder ring depth (0 = default, requires -trace)")
	tsOn := flag.Bool("timeseries", false, "enable the windowed sim-time-series collector and the /v1/timeseries endpoint")
	tsInterval := flag.Float64("timeseries-interval", 0, "time-series window width in simulated seconds (0 = one wall second, i.e. -speedup sim seconds; requires -timeseries)")
	chaosCrash := flag.Float64("chaos-crash-rate", 0, "instance crashes per simulated second (requires -instances > 1)")
	chaosStraggler := flag.Float64("chaos-straggler", 0, "slow-node straggler onsets per simulated second (requires -instances > 1)")
	chaosPreempt := flag.Float64("chaos-preempt", 0, "spot preemption notices per simulated second (requires -instances > 1)")
	chaosSeed := flag.Int64("chaos-seed", 1, "fault-injector seed (requires a -chaos-* rate)")
	flag.Parse()

	m, ok := prefillonly.Models()[*modelName]
	if !ok {
		log.Fatalf("unknown model %q", *modelName)
	}
	g, ok := prefillonly.GPUs()[*gpuName]
	if !ok {
		log.Fatalf("unknown gpu %q", *gpuName)
	}
	scfg := prefillonly.ServerConfig{
		Model:       m,
		GPU:         g,
		MaxInputLen: *maxLen,
		Lambda:      *lambda,
		Speedup:     *speedup,
		Instances:   *instances,
	}
	if *traceOn {
		scfg.TraceSpans = *traceSpans
		if scfg.TraceSpans == 0 {
			scfg.TraceSpans = -1 // recorder default ring depth
		}
	} else if *traceSpans != 0 {
		log.Fatal("-trace-spans requires -trace")
	}
	if *tsOn {
		scfg.TimeseriesSeconds = *tsInterval
		if scfg.TimeseriesSeconds == 0 {
			// Windows are sim-time, and the server clock free-runs at
			// -speedup sim seconds per wall second: default to one window
			// per wall second so the series ticks at human pace.
			scfg.TimeseriesSeconds = *speedup
		}
	} else if *tsInterval != 0 {
		log.Fatal("-timeseries-interval requires -timeseries")
	}
	if *batchWeight != 0 {
		if *batchWeight <= 1 {
			log.Fatal("-batch-weight must exceed 1 (batch yields to interactive)")
		}
		scfg.ClassWeights = map[prefillonly.Class]float64{prefillonly.ClassBatch: *batchWeight}
	}
	if *instances > 1 {
		scfg.RoutingPolicy = *routing
		scfg.MaxBacklogSeconds = *maxBacklog
		if *batchBacklog > 0 {
			scfg.ClassBacklogSeconds = map[prefillonly.Class]float64{prefillonly.ClassBatch: *batchBacklog}
		}
		if *autoscaleOn {
			scfg.Autoscale = true
			scfg.MinInstances = *minInstances
		} else if *minInstances != 1 {
			log.Fatal("-min-instances requires -autoscale")
		}
		if *chaosCrash > 0 || *chaosStraggler > 0 || *chaosPreempt > 0 {
			scfg.ChaosCrashRate = *chaosCrash
			scfg.ChaosStragglerRate = *chaosStraggler
			scfg.ChaosPreemptRate = *chaosPreempt
			scfg.ChaosSeed = *chaosSeed
		} else {
			flag.Visit(func(f *flag.Flag) {
				if f.Name == "chaos-seed" {
					log.Fatal("-chaos-seed requires a -chaos-* rate")
				}
			})
		}
	} else {
		// Reject explicitly-set routing flags rather than silently
		// dropping them on a single-engine server.
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "routing", "max-backlog", "batch-max-backlog", "autoscale", "min-instances",
				"chaos-crash-rate", "chaos-straggler", "chaos-preempt", "chaos-seed":
				log.Fatalf("-%s requires -instances > 1", f.Name)
			}
		})
	}
	srv, err := prefillonly.NewServer(scfg)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("prefillserve: %s on %s, MIL profile %d tokens, λ=%g, speedup %gx\n",
		m.Name, g.Name, *maxLen, *lambda, *speedup)
	if *instances > 1 {
		fmt.Printf("prefillserve: %d instances routed by %s policy (max backlog %gs)\n",
			*instances, *routing, *maxBacklog)
	}
	if *batchBacklog > 0 || *batchWeight > 1 {
		fmt.Printf("prefillserve: SLO classes on (batch budget %gs, batch weight %g)\n",
			*batchBacklog, *batchWeight)
	}
	if *autoscaleOn {
		fmt.Printf("prefillserve: autoscaling pool between %d and %d instances (cold start %.2fs)\n",
			*minInstances, *instances, prefillonly.ColdStartSeconds(m, g, 1))
	}
	if *chaosCrash > 0 || *chaosStraggler > 0 || *chaosPreempt > 0 {
		fmt.Printf("prefillserve: chaos on (seed %d; crash %g/s, straggler %g/s, preempt %g/s) — watch /v1/stats faults\n",
			*chaosSeed, *chaosCrash, *chaosStraggler, *chaosPreempt)
	}
	if *traceOn {
		fmt.Println("prefillserve: flight recorder on — fetch /v1/trace and open in https://ui.perfetto.dev")
	}
	if *tsOn {
		fmt.Printf("prefillserve: time-series collector on (%gs windows) — fetch /v1/timeseries\n",
			scfg.TimeseriesSeconds)
	}
	fmt.Printf("prefillserve: listening on %s\n", *addr)
	log.Fatal(http.ListenAndServe(*addr, srv.Handler()))
}
