// Command milcalc computes the maximum input length (MIL) of each prefill
// strategy for a model/GPU pair, like the paper's Table 2 and Figure 10.
//
// Usage:
//
//	milcalc [-model qwen-32b-fp8] [-gpu a100] [-chunk 512]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro"
	"repro/internal/graph"
)

func main() {
	modelName := flag.String("model", "qwen-32b-fp8", "model preset")
	gpuName := flag.String("gpu", "a100", "GPU preset")
	chunk := flag.Int("chunk", graph.DefaultChunkSize, "chunk size for chunked/hybrid modes")
	flag.Parse()

	m, ok := prefillonly.Models()[*modelName]
	if !ok {
		log.Fatalf("unknown model %q", *modelName)
	}
	g, ok := prefillonly.GPUs()[*gpuName]
	if !ok {
		log.Fatalf("unknown gpu %q", *gpuName)
	}
	budget := g.UsableBytes() - m.WeightBytes()
	if budget <= 0 {
		log.Fatalf("%s does not fit on %s (weights %.1f GiB, usable %.1f GiB)",
			m.Name, g.Name, float64(m.WeightBytes())/(1<<30), float64(g.UsableBytes())/(1<<30))
	}
	exec := graph.New(m, g)
	configs := []struct {
		name string
		opts graph.Options
	}{
		{"standard (vanilla vLLM)", graph.StandardOptions()},
		{"chunked prefill", graph.ChunkedOptions(*chunk)},
		{"hybrid: chunking only", graph.Options{Mode: graph.Hybrid, ChunkSize: *chunk, KV: graph.RetainOneLayer}},
		{"hybrid: +prealloc", graph.Options{Mode: graph.Hybrid, ChunkSize: *chunk, KV: graph.RetainOneLayer, OutputPrealloc: true}},
		{"hybrid: +prealloc +in-place (PrefillOnly)", graph.HybridOptions(*chunk)},
	}
	fmt.Printf("model %s on %s — weights %.1f GiB, budget %.1f GiB\n",
		m.Name, g.Name, float64(m.WeightBytes())/(1<<30), float64(budget)/(1<<30))
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "strategy\tmax input length (tokens)")
	for _, c := range configs {
		mil, err := exec.MaxInputLength(c.opts, budget)
		if err != nil {
			log.Fatalf("%s: %v", c.name, err)
		}
		fmt.Fprintf(w, "%s\t%d\n", c.name, mil)
	}
	w.Flush()
}
