// Command prefillvet runs the repo's invariant analyzers (internal/lint)
// over Go packages. It speaks the `go vet -vettool=` driver protocol,
// and when invoked with package patterns instead of a .cfg file it
// re-execs `go vet` on itself, so both forms work:
//
//	go build -o prefillvet ./cmd/prefillvet
//	go vet -vettool=./prefillvet ./...
//	./prefillvet ./...
//
// Individual analyzers can be disabled with boolean flags, e.g.
// `./prefillvet -nilguard=false ./...`. Findings are suppressed per
// site with a `//prefill:allow(<analyzer>): <reason>` comment; see the
// README's "Enforced invariants" section.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	fs := flag.NewFlagSet("prefillvet", flag.ExitOnError)
	fs.Usage = usage(fs)
	versionFlag := fs.String("V", "", "print version and exit (-V=full is used by the go command)")
	flagsFlag := fs.Bool("flags", false, "print the analyzer flags in JSON (used by the go command)")
	enabled := make(map[string]*bool, len(lint.Analyzers))
	for _, a := range lint.Analyzers {
		enabled[a.Name] = fs.Bool(a.Name, true, "enable the "+a.Name+" analyzer")
	}
	fs.Parse(os.Args[1:])

	switch {
	case *versionFlag != "":
		printVersion()
		return
	case *flagsFlag:
		printFlags()
		return
	}

	var analyzers []*lint.Analyzer
	for _, a := range lint.Analyzers {
		if *enabled[a.Name] {
			analyzers = append(analyzers, a)
		}
	}

	args := fs.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(lint.RunVet(args[0], analyzers, os.Stderr))
	}
	if len(args) > 0 && args[0] == "help" {
		help()
		return
	}
	// Standalone mode: let the go command drive the builds and call us
	// back per package with a .cfg file.
	execGoVet(os.Args[1:])
}

// printVersion implements -V=full: the go command hashes this line into
// its build cache key, so it must change whenever the tool does.
func printVersion() {
	progname := filepath.Base(os.Args[0])
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("%s version devel buildID=%x\n", progname, h.Sum(nil)[:12])
}

// printFlags implements -flags: the go command asks for the tool's flag
// set so it can accept the same flags on the `go vet` command line.
func printFlags() {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	flags := []jsonFlag{}
	for _, a := range lint.Analyzers {
		flags = append(flags, jsonFlag{Name: a.Name, Bool: true, Usage: "enable the " + a.Name + " analyzer"})
	}
	out, err := json.Marshal(flags)
	if err != nil {
		fmt.Fprintln(os.Stderr, "prefillvet:", err)
		os.Exit(2)
	}
	os.Stdout.Write(out)
	fmt.Println()
}

func execGoVet(args []string) {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, "prefillvet:", err)
		os.Exit(2)
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + exe}, args...)...)
	cmd.Stdin = os.Stdin
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			os.Exit(ee.ExitCode())
		}
		fmt.Fprintln(os.Stderr, "prefillvet:", err)
		os.Exit(2)
	}
}

func usage(fs *flag.FlagSet) func() {
	return func() {
		fmt.Fprintln(os.Stderr, "usage: prefillvet [flags] ./... | prefillvet help")
		fs.PrintDefaults()
	}
}

func help() {
	fmt.Println("prefillvet enforces the repo's determinism, zero-alloc and queue-discipline invariants.")
	fmt.Println()
	for _, a := range lint.Analyzers {
		fmt.Printf("%s\n    %s\n", a.Name, a.Doc)
	}
	fmt.Println()
	fmt.Println(`Suppress a finding with "//prefill:allow(<analyzer>): <reason>" on the`)
	fmt.Println("finding's line or the line above it.")
}
