package prefillonly

import (
	"fmt"
	"net/http"

	"repro/internal/autoscale"
	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/router"
	"repro/internal/server"
	"repro/internal/trace"
)

// ServerConfig configures NewServer. Zero values take the low-end paper
// setup (Llama-3.1-8B on one L4).
type ServerConfig struct {
	// Model is the served model (default Llama31_8B()).
	Model *ModelConfig
	// GPU is the modelled device (default L4()).
	GPU *GPUSpec
	// MaxInputLen is the profile-run length (default 20000).
	MaxInputLen int
	// Lambda is the fairness parameter (default 500).
	Lambda float64
	// Speedup scales simulated time against the wall clock: a request
	// with 2 s of modelled GPU latency returns after 2/Speedup wall
	// seconds (default 1000).
	Speedup float64
	// ModelName is the name reported by /v1/models (defaults to the
	// model config's name).
	ModelName string
	// Instances is the engine instance count (default 1). With more than
	// one, requests route by live load and prefix-cache affinity through
	// internal/router.
	Instances int
	// RoutingPolicy selects the multi-instance routing policy: "userhash",
	// "leastloaded" or "affinity" (default). Requires Instances > 1.
	RoutingPolicy string
	// MaxBacklogSeconds enables admission control in routed mode: requests
	// whose projected completion wait exceeds the bound are answered with
	// HTTP 429. Requires Instances > 1.
	MaxBacklogSeconds float64
	// ClassBacklogSeconds overrides MaxBacklogSeconds per SLO class
	// (clients select a class via the slo_class body field or X-SLO-Class
	// header): a batch budget below the interactive bound sheds batch
	// load first. Requires Instances > 1.
	ClassBacklogSeconds map[Class]float64
	// ClassWeights deprioritizes SLO classes in the calibrated scheduler
	// (batch weight > 1 makes batch yield to interactive).
	ClassWeights map[Class]float64
	// Autoscale enables the elastic instance pool (internal/autoscale):
	// the cluster starts at MinInstances engines and scales between that
	// floor and the Instances ceiling from live backlog and admission
	// signals, paying a model-load cold start per scale-up. Requires
	// Instances > 1.
	Autoscale bool
	// MinInstances is the elastic pool's floor (default 1). Requires
	// Autoscale.
	MinInstances int
	// TraceSpans enables the sim-time flight recorder when non-zero: the
	// ring keeps that many recent spans (negative = DefaultMaxSpans).
	// The recorder feeds the /v1/trace endpoint (Perfetto-loadable
	// Chrome trace JSON) and the trace families of /v1/metrics.
	TraceSpans int
	// TimeseriesSeconds enables the windowed sim-time-series collector
	// when positive: throughput, latency quantiles, shed rate, pool and
	// cache gauges, and per-class SLO burn rate aggregated per window of
	// this many simulated seconds, served at /v1/timeseries. Size it
	// relative to Speedup — the server clock free-runs at Speedup sim
	// seconds per wall second, so TimeseriesSeconds = Speedup gives one
	// window per wall second (prefillserve's default).
	TimeseriesSeconds float64
	// ChaosCrashRate, ChaosStragglerRate and ChaosPreemptRate enable the
	// deterministic fault injector (internal/chaos) when positive:
	// instance crashes, slow-node episodes and spot preemptions at these
	// rates per simulated second, with orphaned requests re-admitted
	// through admission under a retry budget and — when Autoscale is on —
	// lost capacity replaced by cold starts. Fault-shed requests answer
	// with HTTP 503 and a Retry-After header. Require Instances > 1.
	ChaosCrashRate     float64
	ChaosStragglerRate float64
	ChaosPreemptRate   float64
	// ChaosSeed seeds the injector's fault-time and victim streams
	// (meaningful only with a chaos rate set; same seed, same faults).
	ChaosSeed int64
}

// Server is the OpenAI-compatible serving frontend over a PrefillOnly
// engine.
type Server struct {
	backend *server.Backend
	handler *server.Handler
}

// ServerResult is a served completion (re-exported from the frontend).
type ServerResult = server.Result

// NewServer builds the engine (profile run included) and its HTTP handler.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Model == nil {
		cfg.Model = Llama31_8B()
	}
	if cfg.GPU == nil {
		cfg.GPU = L4()
	}
	if cfg.MaxInputLen == 0 {
		cfg.MaxInputLen = 20000
	}
	if cfg.ModelName == "" {
		cfg.ModelName = cfg.Model.Name
	}
	ecfg := engine.Config{
		Model:         cfg.Model,
		GPU:           cfg.GPU,
		ProfileMaxLen: cfg.MaxInputLen,
	}
	if cfg.TraceSpans != 0 {
		ecfg.Tracer = trace.New(cfg.TraceSpans)
	}
	opts := core.Options{Lambda: cfg.Lambda, ClassWeights: cfg.ClassWeights}
	var b *server.Backend
	var err error
	chaosCfg := chaos.Config{
		Seed:          cfg.ChaosSeed,
		CrashRate:     cfg.ChaosCrashRate,
		StragglerRate: cfg.ChaosStragglerRate,
		PreemptRate:   cfg.ChaosPreemptRate,
	}
	if cfg.Instances <= 1 && (cfg.RoutingPolicy != "" || cfg.MaxBacklogSeconds != 0 ||
		len(cfg.ClassBacklogSeconds) != 0 || cfg.Autoscale || chaosCfg.Enabled()) {
		return nil, fmt.Errorf("prefillonly: RoutingPolicy, MaxBacklogSeconds, ClassBacklogSeconds, Autoscale and chaos rates require Instances > 1")
	}
	if !cfg.Autoscale && cfg.MinInstances != 0 {
		return nil, fmt.Errorf("prefillonly: MinInstances requires Autoscale")
	}
	if !chaosCfg.Enabled() && cfg.ChaosSeed != 0 {
		return nil, fmt.Errorf("prefillonly: ChaosSeed requires a chaos rate")
	}
	if cfg.Instances > 1 {
		// A nil Policy lets router.New apply its default (AffinityLoad).
		var pol router.Policy
		if cfg.RoutingPolicy != "" {
			pol, err = router.PolicyByName(cfg.RoutingPolicy)
			if err != nil {
				return nil, err
			}
		}
		rcfg := router.Config{
			Policy:              pol,
			MaxBacklogSeconds:   cfg.MaxBacklogSeconds,
			ClassBacklogSeconds: cfg.ClassBacklogSeconds,
		}
		if cfg.Autoscale {
			b, err = server.NewAutoscaledBackend(ecfg, opts, cfg.Speedup, rcfg, autoscale.Config{
				MinInstances: cfg.MinInstances,
				MaxInstances: cfg.Instances,
			})
		} else {
			b, err = server.NewRoutedBackend(ecfg, opts, cfg.Speedup, cfg.Instances, rcfg)
		}
	} else {
		b, err = server.NewBackend(ecfg, opts, cfg.Speedup)
	}
	if err != nil {
		return nil, err
	}
	if cfg.TimeseriesSeconds > 0 {
		b.EnableTimeseries(cfg.TimeseriesSeconds)
	}
	// After EnableTimeseries: the injector captures the collector, so this
	// order is what puts fault counts in the time-series windows.
	if chaosCfg.Enabled() {
		if err := b.EnableChaos(chaosCfg); err != nil {
			return nil, err
		}
	}
	return &Server{backend: b, handler: server.NewHandler(b, cfg.ModelName)}, nil
}

// Handler returns the http.Handler exposing /v1/completions, /v1/models,
// /v1/stats, /v1/metrics, /v1/trace, /v1/timeseries and /healthz.
func (s *Server) Handler() http.Handler { return s.handler }

// Trace returns the server's flight recorder (nil unless TraceSpans was
// set).
func (s *Server) Trace() *TraceRecorder { return s.backend.Trace() }

// Timeseries returns a snapshot of the windowed time-series at the
// current sim time; ok is false unless TimeseriesSeconds was set.
func (s *Server) Timeseries() (TimeseriesExport, bool) { return s.backend.Timeseries() }

// Stats returns the live cluster snapshot served at /v1/stats: router
// per-instance loads, the admission tally, and the autoscaler's pool
// state.
func (s *Server) Stats() server.StatsSnapshot { return s.backend.Stats() }

// Submit serves one prompt directly (bypassing HTTP), interactive-class.
func (s *Server) Submit(prompt string, allowed []string, userID int) (ServerResult, error) {
	return s.backend.Submit(prompt, allowed, userID)
}

// SubmitClass is Submit with an explicit SLO class.
func (s *Server) SubmitClass(prompt string, allowed []string, userID int, class Class) (ServerResult, error) {
	return s.backend.SubmitClass(prompt, allowed, userID, class)
}

// Close stops the backend clock.
func (s *Server) Close() { s.backend.Close() }
